#include "sparse/scaling.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsouth::sparse {
namespace {

TEST(Scaling, ProducesUnitDiagonal) {
  auto a = poisson2d_5pt(6, 7);
  auto s = symmetric_unit_diagonal_scale(a);
  auto d = s.a.diagonal();
  for (value_t v : d) EXPECT_NEAR(v, 1.0, 1e-14);
}

TEST(Scaling, PreservesSymmetry) {
  StencilOptions opt;
  opt.jump_contrast = 100.0;
  opt.jump_block = 2;
  auto a = poisson3d_7pt(4, 4, 4, opt);
  auto s = symmetric_unit_diagonal_scale(a);
  EXPECT_TRUE(s.a.is_symmetric(1e-13));
}

TEST(Scaling, ScaledSystemSolvesTheSameProblem) {
  // If A x = b then A' x' = b' with x' = D^{1/2} x, b' = D^{-1/2} b.
  auto a = poisson2d_5pt(5, 5);
  util::Rng rng(5);
  std::vector<value_t> x(static_cast<std::size_t>(a.rows()));
  rng.fill_uniform(x, -1.0, 1.0);
  std::vector<value_t> b(x.size());
  a.spmv(x, b);

  auto s = symmetric_unit_diagonal_scale(a);
  auto b_scaled = scale_rhs(s, b);
  // x' = D^{1/2} x = x / scale_i
  std::vector<value_t> x_scaled(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) x_scaled[i] = x[i] / s.scale[i];
  std::vector<value_t> r(x.size());
  s.a.residual(b_scaled, x_scaled, r);
  EXPECT_LT(norm2(r), 1e-12);
  // And unscale_solution inverts the transform.
  auto back = unscale_solution(s, x_scaled);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(back[i], x[i], 1e-13);
}

TEST(Scaling, NonPositiveDiagonalThrows) {
  CsrMatrix bad(1, 1, {0, 1}, {0}, {-1.0});
  EXPECT_THROW(symmetric_unit_diagonal_scale(bad), util::CheckError);
}

TEST(NormalizeInitialResidual, MakesNormOne) {
  auto a = poisson2d_5pt(6, 6);
  util::Rng rng(17);
  std::vector<value_t> x(static_cast<std::size_t>(a.rows()));
  rng.fill_uniform(x, -1.0, 1.0);
  std::vector<value_t> b(x.size(), 0.0);
  const value_t original = normalize_initial_residual(a, b, x);
  EXPECT_GT(original, 0.0);
  std::vector<value_t> r(x.size());
  a.residual(b, x, r);
  EXPECT_NEAR(norm2(r), 1.0, 1e-12);
}

TEST(NormalizeInitialResidual, RequiresZeroRhs) {
  auto a = poisson2d_5pt(3, 3);
  std::vector<value_t> x(9, 1.0), b(9, 1.0);
  EXPECT_THROW(normalize_initial_residual(a, b, x), util::CheckError);
}

TEST(NormalizeInitialResidual, ZeroResidualThrows) {
  auto a = poisson2d_5pt(3, 3);
  std::vector<value_t> x(9, 0.0), b(9, 0.0);
  EXPECT_THROW(normalize_initial_residual(a, b, x), util::CheckError);
}

}  // namespace
}  // namespace dsouth::sparse
