#include "dist/layout.hpp"

#include <gtest/gtest.h>

#include "sparse/proxy_suite.hpp"
#include "sparse/stencils.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsouth::dist {
namespace {

graph::Partition make_partition(const CsrMatrix& a, index_t k) {
  auto g = graph::Graph::from_matrix_structure(a);
  return graph::partition_recursive_bisection(g, k);
}

TEST(DistLayout, ValidatesOnPoissonGrid) {
  auto a = sparse::poisson2d_5pt(12, 12);
  auto p = make_partition(a, 8);
  DistLayout layout(a, p);
  EXPECT_EQ(layout.num_ranks(), 8);
  EXPECT_EQ(layout.global_rows(), 144);
  EXPECT_TRUE(layout.validate(a));
}

TEST(DistLayout, ValidatesOnElasticityProxy) {
  auto proxy = sparse::make_proxy("msdoorp", 0.02);
  auto p = make_partition(proxy.a, 12);
  DistLayout layout(proxy.a, p);
  EXPECT_TRUE(layout.validate(proxy.a));
}

TEST(DistLayout, SingletonPartitionHasOneRowPerRank) {
  auto a = sparse::poisson2d_5pt(4, 4);
  graph::Partition p;
  p.num_parts = 16;
  p.part.resize(16);
  for (index_t i = 0; i < 16; ++i) p.part[static_cast<std::size_t>(i)] = i;
  DistLayout layout(a, p);
  EXPECT_TRUE(layout.validate(a));
  for (int r = 0; r < 16; ++r) {
    EXPECT_EQ(layout.rank(r).num_rows(), 1);
    // Interior rank 5 (grid point (1,1)) has 4 neighbors.
  }
  EXPECT_EQ(layout.rank(5).neighbors.size(), 4u);
  EXPECT_EQ(layout.rank(0).neighbors.size(), 2u);
}

TEST(DistLayout, RowMapsAreConsistent) {
  auto a = sparse::poisson2d_5pt(10, 7);
  auto p = make_partition(a, 5);
  DistLayout layout(a, p);
  for (index_t g = 0; g < a.rows(); ++g) {
    const int r = layout.rank_of_row(g);
    const index_t l = layout.local_of_row(g);
    EXPECT_EQ(layout.rank(r).rows[static_cast<std::size_t>(l)], g);
  }
}

TEST(DistLayout, ScatterGatherRoundTrip) {
  auto a = sparse::poisson2d_5pt(9, 9);
  auto p = make_partition(a, 6);
  DistLayout layout(a, p);
  util::Rng rng(3);
  std::vector<value_t> v(81);
  rng.fill_uniform(v, -5.0, 5.0);
  auto locals = layout.scatter(v);
  auto back = layout.gather(locals);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_DOUBLE_EQ(back[i], v[i]);
}

TEST(DistLayout, LocalBlocksPartitionTheMatrix) {
  // nnz(A) = Σ nnz(A_pp) + Σ nnz(A_pq): every entry lands in exactly one
  // block.
  auto a = sparse::poisson2d_9pt(8, 8);
  auto p = make_partition(a, 4);
  DistLayout layout(a, p);
  index_t total = 0;
  for (int r = 0; r < layout.num_ranks(); ++r) {
    const auto& rd = layout.rank(r);
    total += rd.a_local.nnz();
    for (const auto& nb : rd.neighbors) total += nb.a_pq.nnz();
  }
  EXPECT_EQ(total, a.nnz());
}

TEST(DistLayout, TransposedBlocksMatch) {
  auto a = sparse::poisson2d_5pt(8, 8);
  auto p = make_partition(a, 4);
  DistLayout layout(a, p);
  for (int r = 0; r < layout.num_ranks(); ++r) {
    for (const auto& nb : layout.rank(r).neighbors) {
      // a_qp == a_pqᵀ entry by entry.
      auto t = nb.a_pq.transpose();
      ASSERT_EQ(t.nnz(), nb.a_qp.nnz());
      for (index_t i = 0; i < t.rows(); ++i) {
        for (index_t j : t.row_cols(i)) {
          EXPECT_DOUBLE_EQ(t.at(i, j), nb.a_qp.at(i, j));
        }
      }
    }
  }
}

TEST(DistLayout, NeighborRelationIsSymmetric) {
  auto a = sparse::poisson2d_5pt(10, 10);
  auto p = make_partition(a, 7);
  DistLayout layout(a, p);
  for (int r = 0; r < layout.num_ranks(); ++r) {
    for (const auto& nb : layout.rank(r).neighbors) {
      EXPECT_GE(layout.rank(nb.rank).neighbor_index(r), 0);
    }
  }
}

TEST(DistLayout, RejectsInvalidPartition) {
  auto a = sparse::poisson2d_5pt(3, 3);
  graph::Partition bad;
  bad.num_parts = 2;
  bad.part = {0, 0, 0};  // wrong size
  EXPECT_THROW(DistLayout(a, bad), util::CheckError);
}

TEST(DistLayout, ContiguousBlocksWork) {
  auto a = sparse::poisson2d_5pt(6, 6);
  auto p = graph::partition_contiguous_blocks(36, 5);
  DistLayout layout(a, p);
  EXPECT_TRUE(layout.validate(a));
}

}  // namespace
}  // namespace dsouth::dist
