#include "util/indexed_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace dsouth::util {
namespace {

TEST(IndexedMaxHeap, EmptyState) {
  IndexedMaxHeap<double> h(10);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_FALSE(h.contains(3));
  EXPECT_THROW(h.top(), CheckError);
  EXPECT_THROW(h.pop(), CheckError);
}

TEST(IndexedMaxHeap, PushPopOrdering) {
  IndexedMaxHeap<double> h(5);
  h.push(0, 1.0);
  h.push(1, 5.0);
  h.push(2, 3.0);
  h.push(3, 4.0);
  h.push(4, 2.0);
  EXPECT_EQ(h.pop(), 1u);
  EXPECT_EQ(h.pop(), 3u);
  EXPECT_EQ(h.pop(), 2u);
  EXPECT_EQ(h.pop(), 4u);
  EXPECT_EQ(h.pop(), 0u);
  EXPECT_TRUE(h.empty());
}

TEST(IndexedMaxHeap, DuplicatePushThrows) {
  IndexedMaxHeap<int> h(3);
  h.push(1, 10);
  EXPECT_THROW(h.push(1, 20), CheckError);
}

TEST(IndexedMaxHeap, UpdateMovesKeyBothDirections) {
  IndexedMaxHeap<int> h(4);
  h.push(0, 10);
  h.push(1, 20);
  h.push(2, 30);
  h.update(0, 100);  // up
  EXPECT_EQ(h.top(), 0u);
  h.update(0, 5);  // down
  EXPECT_EQ(h.top(), 2u);
  EXPECT_EQ(h.key_of(0), 5);
  EXPECT_TRUE(h.invariants_hold());
}

TEST(IndexedMaxHeap, PushOrUpdateInsertsOrChanges) {
  IndexedMaxHeap<int> h(4);
  h.push_or_update(2, 7);
  EXPECT_TRUE(h.contains(2));
  h.push_or_update(2, 50);
  EXPECT_EQ(h.key_of(2), 50);
  EXPECT_EQ(h.size(), 1u);
}

TEST(IndexedMaxHeap, EraseRemovesOnly) {
  IndexedMaxHeap<int> h(5);
  for (std::size_t i = 0; i < 5; ++i) h.push(i, static_cast<int>(i));
  h.erase(4);  // the current max
  EXPECT_FALSE(h.contains(4));
  EXPECT_EQ(h.top(), 3u);
  h.erase(0);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_TRUE(h.invariants_hold());
  EXPECT_THROW(h.erase(0), CheckError);
}

TEST(IndexedMaxHeap, KeyOfRequiresPresence) {
  IndexedMaxHeap<int> h(2);
  EXPECT_THROW(h.key_of(0), CheckError);
}

TEST(IndexedMaxHeap, TiesReturnSomeMaxElement) {
  IndexedMaxHeap<int> h(3);
  h.push(0, 9);
  h.push(1, 9);
  h.push(2, 1);
  std::size_t first = h.pop();
  std::size_t second = h.pop();
  EXPECT_TRUE((first == 0 && second == 1) || (first == 1 && second == 0));
}

/// Property test: random op sequences keep invariants and pop order matches
/// a reference sort.
class IndexedHeapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IndexedHeapProperty, RandomOpsMatchReference) {
  Rng rng(GetParam());
  const std::size_t n = 200;
  IndexedMaxHeap<std::uint64_t> h(n);
  std::vector<bool> present(n, false);
  std::vector<std::uint64_t> key(n, 0);
  for (int op = 0; op < 3000; ++op) {
    const std::size_t id = static_cast<std::size_t>(rng.next_below(n));
    switch (rng.next_below(4)) {
      case 0:
        if (!present[id]) {
          key[id] = rng.next_below(1000);
          h.push(id, key[id]);
          present[id] = true;
        }
        break;
      case 1:
        if (present[id]) {
          key[id] = rng.next_below(1000);
          h.update(id, key[id]);
        }
        break;
      case 2:
        if (present[id]) {
          h.erase(id);
          present[id] = false;
        }
        break;
      case 3:
        if (!h.empty()) {
          const std::size_t top = h.top();
          // Top must hold a maximal key.
          for (std::size_t v = 0; v < n; ++v) {
            if (present[v]) {
              EXPECT_LE(key[v], key[top]);
            }
          }
          h.pop();
          present[top] = false;
        }
        break;
    }
  }
  ASSERT_TRUE(h.invariants_hold());
  // Drain: keys must come out non-increasing.
  std::uint64_t last = ~std::uint64_t{0};
  while (!h.empty()) {
    const std::size_t id = h.pop();
    EXPECT_LE(key[id], last);
    last = key[id];
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexedHeapProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 99u, 12345u));

}  // namespace
}  // namespace dsouth::util
