/// Integration tests pinning the paper's qualitative claims at reduced
/// scale. Each test is a miniature of one of the evaluation's headline
/// observations; the bench binaries reproduce them at full (proxy) scale.

#include <gtest/gtest.h>

#include "core/classic.hpp"
#include "core/dist_southwell_scalar.hpp"
#include "core/parallel_southwell.hpp"
#include "core/southwell.hpp"
#include "dist/driver.hpp"
#include "graph/partition.hpp"
#include "sparse/fem.hpp"
#include "sparse/mesh.hpp"
#include "sparse/proxy_suite.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace dsouth {
namespace {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

struct DistProblem {
  CsrMatrix a;
  std::vector<value_t> b, x0;
};

DistProblem dist_problem(CsrMatrix a, std::uint64_t seed) {
  DistProblem p;
  p.a = std::move(a);
  p.b.assign(static_cast<std::size_t>(p.a.rows()), 0.0);
  p.x0.resize(p.b.size());
  util::Rng rng(seed);
  rng.fill_uniform(p.x0, -1.0, 1.0);
  sparse::normalize_initial_residual(p.a, p.b, p.x0);
  return p;
}

graph::Partition partition_of(const CsrMatrix& a, index_t k) {
  auto g = graph::Graph::from_matrix_structure(a);
  return graph::partition_recursive_bisection(g, k);
}

/// Fig. 2 shape: ordering of methods by relaxations to a low-accuracy
/// target on the small FEM problem (reduced mesh).
TEST(PaperProperties, Fig2MethodOrderingAtLowAccuracy) {
  auto mesh = sparse::make_perturbed_grid_mesh(27, 14, 0.25, 201);
  auto a = sparse::symmetric_unit_diagonal_scale(
               sparse::assemble_p1_poisson(mesh)).a;
  std::vector<value_t> b(static_cast<std::size_t>(a.rows()));
  std::vector<value_t> x0(b.size(), 0.0);
  util::Rng rng(202);
  rng.fill_uniform(b, -1.0, 1.0);
  sparse::scale(1.0 / sparse::norm2(b), b);

  core::ScalarRunOptions sweeps3;
  sweeps3.max_sweeps = 3;
  auto gs = core::run_gauss_seidel(a, b, x0, sweeps3);
  auto sw = core::run_sequential_southwell(a, b, x0, sweeps3);
  auto jac = core::run_jacobi(a, b, x0, sweeps3);
  core::ParallelSouthwellOptions popt;
  popt.base.max_sweeps = 3;
  auto psw = core::run_parallel_southwell(a, b, x0, popt);

  const double target = 0.6;
  auto c_gs = gs.relaxations_to_reach(target);
  auto c_sw = sw.relaxations_to_reach(target);
  auto c_psw = psw.relaxations_to_reach(target);
  auto c_jac = jac.relaxations_to_reach(target);
  ASSERT_TRUE(c_gs && c_sw && c_psw && c_jac);
  // Southwell fastest, Jacobi slowest; Par SW close to SW.
  EXPECT_LT(*c_sw, *c_gs);
  EXPECT_LT(*c_psw, *c_gs);
  EXPECT_GT(*c_jac, *c_gs);
}

/// Fig. 5 shape: scalar Distributed Southwell tracks Parallel Southwell at
/// low accuracy.
TEST(PaperProperties, Fig5DistSouthwellTracksParallelSouthwell) {
  auto mesh = sparse::make_perturbed_grid_mesh(27, 14, 0.25, 203);
  auto a = sparse::symmetric_unit_diagonal_scale(
               sparse::assemble_p1_poisson(mesh)).a;
  std::vector<value_t> b(static_cast<std::size_t>(a.rows()));
  std::vector<value_t> x0(b.size(), 0.0);
  util::Rng rng(204);
  rng.fill_uniform(b, -1.0, 1.0);
  sparse::scale(1.0 / sparse::norm2(b), b);

  core::ParallelSouthwellOptions popt;
  popt.base.max_sweeps = 3;
  auto psw = core::run_parallel_southwell(a, b, x0, popt);
  core::DistSouthwellScalarOptions dopt;
  dopt.base.max_sweeps = 3;
  auto ds = core::run_distributed_southwell_scalar(a, b, x0, dopt);
  auto c_psw = psw.relaxations_to_reach(0.6);
  auto c_ds = ds.history.relaxations_to_reach(0.6);
  ASSERT_TRUE(c_psw && c_ds);
  EXPECT_NEAR(*c_ds, *c_psw, 0.6 * *c_psw);
}

/// Table 2 shape: on an M-matrix problem where everything converges, DS
/// needs less communication and fewer steps than PS; relaxations are
/// similar; DS has more active processes.
TEST(PaperProperties, Table2DsVersusPsShape) {
  auto p = dist_problem(
      sparse::symmetric_unit_diagonal_scale(sparse::poisson3d_7pt(12, 12, 12))
          .a,
      205);
  auto part = partition_of(p.a, 64);
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 300;
  opt.stop_at_residual = 0.1;
  auto ps = dist::run_distributed(dist::DistMethod::kParallelSouthwell, p.a,
                                  part, p.b, p.x0, opt);
  auto ds = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                  p.a, part, p.b, p.x0, opt);
  auto ps_at = ps.at_target(0.1);
  auto ds_at = ds.at_target(0.1);
  ASSERT_TRUE(ps_at && ds_at);
  EXPECT_LT(ds_at->comm_cost, ps_at->comm_cost);
  EXPECT_LE(ds_at->steps, ps_at->steps * 1.2);
  EXPECT_GE(ds_at->active_fraction, ps_at->active_fraction * 0.9);
  EXPECT_LT(ds_at->model_time, ps_at->model_time);
}

/// Table 3 shape: explicit residual updates dominate PS's communication
/// and are a small share of DS's.
TEST(PaperProperties, Table3ResidualCommBreakdown) {
  auto p = dist_problem(
      sparse::symmetric_unit_diagonal_scale(sparse::poisson3d_7pt(12, 12, 12))
          .a,
      206);
  auto part = partition_of(p.a, 64);
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 100;
  auto ps = dist::run_distributed(dist::DistMethod::kParallelSouthwell, p.a,
                                  part, p.b, p.x0, opt);
  auto ds = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                  p.a, part, p.b, p.x0, opt);
  EXPECT_GT(ps.res_comm.back(), ps.solve_comm.back());
  EXPECT_LT(ds.res_comm.back(), ps.res_comm.back());
}

/// Fig. 9 shape: increasing the rank count degrades Block Jacobi far more
/// than Distributed Southwell on an elasticity-type matrix.
TEST(PaperProperties, Fig9BlockJacobiDegradesWithRankCount) {
  auto proxy = sparse::make_proxy("msdoorp", 0.08);
  auto p = dist_problem(proxy.a, 207);
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 50;

  auto part_small = partition_of(p.a, 8);
  auto part_large = partition_of(p.a, p.a.rows() / 3);
  auto bj_small = dist::run_distributed(dist::DistMethod::kBlockJacobi, p.a,
                                        part_small, p.b, p.x0, opt);
  auto bj_large = dist::run_distributed(dist::DistMethod::kBlockJacobi, p.a,
                                        part_large, p.b, p.x0, opt);
  auto ds_large = dist::run_distributed(
      dist::DistMethod::kDistributedSouthwell, p.a, part_large, p.b, p.x0,
      opt);
  // BJ converges with big subdomains, diverges with small ones.
  EXPECT_LT(bj_small.residual_norm.back(), 0.1);
  EXPECT_GT(bj_large.residual_norm.back(), 1.0);
  // DS on the same fine partition still converges.
  EXPECT_LT(ds_large.residual_norm.back(), 1.0);
}

/// Fig. 6 shape: Distributed Southwell smoothing is at least as effective
/// per relaxation as Gauss-Seidel and grid-size independent — covered in
/// test_multigrid_vcycle.cpp; here pin the "1 sweep beats GS" claim on one
/// grid via the scalar runner.
TEST(PaperProperties, Fig6DsSmootherCompetitiveWithGs) {
  auto a = sparse::poisson2d_5pt(31, 31);
  util::Rng rng(208);
  std::vector<value_t> b(static_cast<std::size_t>(a.rows()));
  rng.fill_uniform(b, -1.0, 1.0);
  std::vector<value_t> x_gs(b.size(), 0.0), x_ds(b.size(), 0.0);

  core::ScalarRunOptions gs1;
  gs1.max_sweeps = 1;
  gs1.record_each_relaxation = false;
  auto gs = core::run_gauss_seidel(a, b, x_gs, gs1);

  core::DistSouthwellScalarOptions ds1;
  ds1.max_relaxations = a.rows();
  ds1.max_parallel_steps = 10 * a.rows();
  auto ds = core::run_distributed_southwell_scalar(a, b, x_ds, ds1);
  // Same relaxation budget: DS targets the large residuals, so it should
  // be at least comparable (allow slack — different orderings).
  EXPECT_EQ(ds.history.total_relaxations(), a.rows());
  EXPECT_LT(ds.history.final_residual_norm(),
            1.5 * gs.final_residual_norm());
}

}  // namespace
}  // namespace dsouth
