/// Cross-validation tests: independent implementations in this library
/// that must agree exactly (or to rounding) on overlapping cases. These
/// are the strongest correctness checks in the suite, because the two
/// sides are coded from different formulations of the same math.

#include <gtest/gtest.h>

#include <numeric>

#include "core/classic.hpp"
#include "core/parallel_southwell.hpp"
#include "dist/block_jacobi.hpp"
#include "dist/driver.hpp"
#include "dist/parallel_southwell.hpp"
#include "multigrid/vcycle.hpp"
#include "sparse/dense.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace dsouth {
namespace {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

struct Problem {
  CsrMatrix a;
  std::vector<value_t> b, x0;
};

Problem scaled_poisson(index_t nx, index_t ny, std::uint64_t seed) {
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(nx, ny)).a;
  p.b.resize(static_cast<std::size_t>(p.a.rows()));
  p.x0.assign(p.b.size(), 0.0);
  util::Rng rng(seed);
  rng.fill_uniform(p.b, -1.0, 1.0);
  return p;
}

graph::Partition singleton_partition(index_t n) {
  graph::Partition part;
  part.num_parts = n;
  part.part.resize(static_cast<std::size_t>(n));
  std::iota(part.part.begin(), part.part.end(), index_t{0});
  return part;
}

/// Block Jacobi with one row per rank IS point Jacobi: the distributed
/// engine must match the scalar engine step for step.
TEST(CrossValidation, SingletonBlockJacobiIsPointJacobi) {
  auto p = scaled_poisson(7, 7, 1);
  const index_t n = p.a.rows();
  dist::DistLayout layout(p.a, singleton_partition(n));
  simmpi::Runtime rt(static_cast<int>(n));
  dist::BlockJacobi solver(layout, rt, p.b, p.x0);

  core::ScalarRelaxationEngine eng(p.a, p.b, p.x0);
  std::vector<index_t> all(static_cast<std::size_t>(n));
  std::iota(all.begin(), all.end(), index_t{0});

  for (int step = 0; step < 8; ++step) {
    solver.step();
    eng.relax_simultaneously(all, 1.0);
    auto x = solver.gather_x();
    for (index_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[static_cast<std::size_t>(i)], eng.x()[i], 1e-12)
          << "step " << step << " row " << i;
    }
  }
}

/// Parallel Southwell with one row per rank matches the scalar Parallel
/// Southwell runner (same criterion, same simultaneous-relaxation
/// semantics) for a full trajectory.
TEST(CrossValidation, SingletonParallelSouthwellMatchesScalar) {
  auto p = scaled_poisson(8, 8, 2);
  const index_t n = p.a.rows();
  dist::DistLayout layout(p.a, singleton_partition(n));
  simmpi::Runtime rt(static_cast<int>(n));
  dist::ParallelSouthwell solver(layout, rt, p.b, p.x0);

  core::ParallelSouthwellOptions opt;
  opt.base.max_sweeps = 100000;
  opt.max_parallel_steps = 12;
  auto scalar = core::run_parallel_southwell(p.a, p.b, p.x0, opt);

  for (std::size_t k = 0; k < scalar.step_marks.size(); ++k) {
    auto stats = solver.step();
    const auto mark = scalar.step_marks[k];
    const index_t scalar_relaxed =
        scalar.points[mark].relaxations -
        (mark > 0 ? scalar.points[mark - 1].relaxations : 0);
    EXPECT_EQ(stats.relaxations, scalar_relaxed) << "step " << k;
    EXPECT_NEAR(solver.global_residual_norm(),
                scalar.points[mark].residual_norm, 1e-10)
        << "step " << k;
  }
}

/// SOR with ω = 1 is Gauss–Seidel, bit for bit.
TEST(CrossValidation, SorWithUnitOmegaIsGaussSeidel) {
  auto p = scaled_poisson(6, 6, 3);
  core::ScalarRunOptions opt;
  opt.max_sweeps = 4;
  auto gs = core::run_gauss_seidel(p.a, p.b, p.x0, opt);
  auto sor = core::run_sor(p.a, p.b, p.x0, 1.0, opt);
  ASSERT_EQ(gs.points.size(), sor.points.size());
  for (std::size_t k = 0; k < gs.points.size(); ++k) {
    EXPECT_DOUBLE_EQ(gs.points[k].residual_norm,
                     sor.points[k].residual_norm);
  }
}

/// A multigrid hierarchy whose finest level is the coarsest grid solves
/// exactly — compare against dense Cholesky on the same operator.
TEST(CrossValidation, CoarsestVcycleMatchesDirectSolve) {
  multigrid::MultigridHierarchy mg(3);
  util::Rng rng(4);
  std::vector<value_t> b(9);
  rng.fill_uniform(b, -1.0, 1.0);
  std::vector<value_t> x(9, 0.0);
  auto smoother = multigrid::make_gauss_seidel_smoother();
  mg.vcycle(b, x, *smoother);

  sparse::DenseCholesky chol(mg.level_matrix(0));
  std::vector<value_t> x_direct(9);
  chol.solve(b, x_direct);
  for (int i = 0; i < 9; ++i) EXPECT_NEAR(x[i], x_direct[i], 1e-12);
}

/// The distributed initial residual (assembled from per-rank blocks) must
/// equal the globally computed one for any partition.
TEST(CrossValidation, DistributedInitialResidualMatchesGlobal) {
  auto p = scaled_poisson(9, 9, 5);
  util::Rng rng(6);
  rng.fill_uniform(p.x0, -1.0, 1.0);
  auto g = graph::Graph::from_matrix_structure(p.a);
  for (index_t parts : {1, 3, 7, 20}) {
    auto part = graph::partition_recursive_bisection(g, parts);
    dist::DistLayout layout(p.a, part);
    simmpi::Runtime rt(static_cast<int>(parts));
    dist::BlockJacobi solver(layout, rt, p.b, p.x0);
    std::vector<value_t> r(p.b.size());
    p.a.residual(p.b, p.x0, r);
    EXPECT_NEAR(solver.global_residual_norm(), sparse::norm2(r), 1e-12)
        << parts << " parts";
  }
}

/// One-part Block Jacobi, Parallel Southwell and Distributed Southwell all
/// degenerate to the same method (a global GS sweep per step, always
/// active) and must produce identical iterates.
TEST(CrossValidation, OnePartDistributedMethodsCoincide) {
  auto p = scaled_poisson(8, 8, 7);
  util::Rng rng(8);
  rng.fill_uniform(p.x0, -1.0, 1.0);
  auto part = graph::partition_contiguous_blocks(p.a.rows(), 1);
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 6;
  auto bj = dist::run_distributed(dist::DistMethod::kBlockJacobi, p.a, part,
                                  p.b, p.x0, opt);
  auto ps = dist::run_distributed(dist::DistMethod::kParallelSouthwell, p.a,
                                  part, p.b, p.x0, opt);
  auto ds = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                  p.a, part, p.b, p.x0, opt);
  for (std::size_t k = 0; k < bj.residual_norm.size(); ++k) {
    EXPECT_DOUBLE_EQ(bj.residual_norm[k], ps.residual_norm[k]);
    EXPECT_DOUBLE_EQ(bj.residual_norm[k], ds.residual_norm[k]);
  }
  // And nobody sends any messages (no neighbors).
  EXPECT_DOUBLE_EQ(bj.comm_cost.back(), 0.0);
  EXPECT_DOUBLE_EQ(ps.comm_cost.back(), 0.0);
  EXPECT_DOUBLE_EQ(ds.comm_cost.back(), 0.0);
}

}  // namespace
}  // namespace dsouth
