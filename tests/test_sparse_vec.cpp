#include "sparse/vec.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace dsouth::sparse {
namespace {

TEST(Vec, DotAndNorms) {
  std::vector<value_t> x{3.0, -4.0}, y{1.0, 2.0};
  EXPECT_DOUBLE_EQ(dot(x, y), -5.0);
  EXPECT_DOUBLE_EQ(norm2_sq(x), 25.0);
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(x), 4.0);
}

TEST(Vec, DotSizeMismatchThrows) {
  std::vector<value_t> x{1.0}, y{1.0, 2.0};
  EXPECT_THROW(dot(x, y), util::CheckError);
}

TEST(Vec, AxpyAndScale) {
  std::vector<value_t> x{1.0, 2.0}, y{10.0, 20.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  scale(0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
}

TEST(Vec, SubtractAndFill) {
  std::vector<value_t> x{5.0, 3.0}, y{1.0, 1.0}, z(2);
  subtract(x, y, z);
  EXPECT_DOUBLE_EQ(z[0], 4.0);
  EXPECT_DOUBLE_EQ(z[1], 2.0);
  fill(z, -1.5);
  EXPECT_DOUBLE_EQ(z[0], -1.5);
  EXPECT_DOUBLE_EQ(z[1], -1.5);
}

TEST(Vec, ArgmaxAbs) {
  std::vector<value_t> x{1.0, -7.0, 7.0, 2.0};
  EXPECT_EQ(argmax_abs(x), 1);  // first on ties
  EXPECT_EQ(argmax_abs(std::vector<value_t>{}), -1);
  EXPECT_EQ(argmax_abs(std::vector<value_t>{0.0}), 0);
}

TEST(Vec, ZerosOnes) {
  auto z = zeros(3);
  auto o = ones(2);
  EXPECT_EQ(z.size(), 3u);
  EXPECT_DOUBLE_EQ(z[2], 0.0);
  EXPECT_EQ(o.size(), 2u);
  EXPECT_DOUBLE_EQ(o[0], 1.0);
}

TEST(Vec, EmptyNorms) {
  std::vector<value_t> e;
  EXPECT_DOUBLE_EQ(norm2(e), 0.0);
  EXPECT_DOUBLE_EQ(norm_inf(e), 0.0);
}

}  // namespace
}  // namespace dsouth::sparse
