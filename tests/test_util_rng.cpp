#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/error.hpp"

namespace dsouth::util {
namespace {

TEST(SplitMix64, IsDeterministicAndVaries) {
  SplitMix64 a(42), b(42), c(43);
  const auto a1 = a.next();
  EXPECT_EQ(a1, b.next());
  EXPECT_NE(a1, c.next());
  EXPECT_NE(a.next(), a1);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(-3.5, 2.25);
    EXPECT_GE(v, -3.5);
    EXPECT_LT(v, 2.25);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(13);
  double sum = 0.0;
  const int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform(-1.0, 1.0);
  EXPECT_NEAR(sum / kSamples, 0.0, 0.01);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
  }
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), CheckError);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(19);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalHasRoughStandardMoments) {
  Rng rng(23);
  const int kSamples = 100000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    double v = rng.normal();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sumsq / kSamples, 1.0, 0.03);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(29);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto original = v;
  rng.shuffle(std::span<int>(v));
  EXPECT_NE(v, original);  // 1/100! chance of false failure
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(31);
  auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (auto s : sample) EXPECT_LT(s, 50u);
}

TEST(Rng, SampleFullRangeIsPermutation) {
  Rng rng(37);
  auto sample = rng.sample_without_replacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, SampleTooManyThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), CheckError);
}

TEST(Rng, FillUniformFillsEverySlot) {
  Rng rng(41);
  std::vector<double> v(64, -100.0);
  rng.fill_uniform(v, 2.0, 3.0);
  for (double x : v) {
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

}  // namespace
}  // namespace dsouth::util
