/// Round-trip and algebraic-identity property sweeps over randomly
/// generated matrices (seeded TEST_P suites).

#include <gtest/gtest.h>

#include <sstream>

#include "sparse/binary_io.hpp"
#include "sparse/coo.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/scaling.hpp"
#include "sparse/spgemm.hpp"
#include "sparse/stencils.hpp"
#include "util/rng.hpp"

namespace dsouth::sparse {
namespace {

CsrMatrix random_matrix(index_t rows, index_t cols, index_t entries,
                        std::uint64_t seed) {
  util::Rng rng(seed);
  CooBuilder coo(rows, cols);
  for (index_t e = 0; e < entries; ++e) {
    coo.add(static_cast<index_t>(
                rng.next_below(static_cast<std::uint64_t>(rows))),
            static_cast<index_t>(
                rng.next_below(static_cast<std::uint64_t>(cols))),
            rng.uniform(-2.0, 2.0));
  }
  return coo.to_csr();
}

void expect_equal(const CsrMatrix& a, const CsrMatrix& b, double tol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.nnz(), b.nnz());
  for (index_t i = 0; i < a.rows(); ++i) {
    auto ca = a.row_cols(i);
    auto cb = b.row_cols(i);
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t k = 0; k < ca.size(); ++k) {
      EXPECT_EQ(ca[k], cb[k]);
      EXPECT_NEAR(a.row_vals(i)[k], b.row_vals(i)[k], tol);
    }
  }
}

class RoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTrip, MatrixMarketThenBinaryPreservesEverything) {
  auto a = random_matrix(23, 17, 140, GetParam());
  // Matrix Market text (full precision).
  std::stringstream mm;
  write_matrix_market(mm, a, /*symmetric=*/false);
  auto via_mm = read_matrix_market(mm);
  expect_equal(a, via_mm, 0.0);  // 17 significant digits round-trip doubles
  // Binary.
  std::stringstream bin;
  write_binary_csr(bin, via_mm);
  auto via_bin = read_binary_csr(bin);
  expect_equal(a, via_bin, 0.0);
}

TEST_P(RoundTrip, TransposeIsAnInvolution) {
  auto a = random_matrix(19, 31, 200, GetParam() + 1000);
  expect_equal(a, a.transpose().transpose(), 0.0);
}

TEST_P(RoundTrip, SpgemmIsAssociative) {
  auto a = random_matrix(8, 9, 30, GetParam() + 2000);
  auto b = random_matrix(9, 7, 28, GetParam() + 3000);
  auto c = random_matrix(7, 10, 26, GetParam() + 4000);
  auto left = spgemm(spgemm(a, b), c);
  auto right = spgemm(a, spgemm(b, c));
  // Structural nnz can differ through explicit zeros; compare values.
  for (index_t i = 0; i < left.rows(); ++i) {
    for (index_t j = 0; j < left.cols(); ++j) {
      EXPECT_NEAR(left.at(i, j), right.at(i, j), 1e-11);
    }
  }
}

TEST_P(RoundTrip, IdentityProlongatorGalerkinIsIdentityMap) {
  auto n = index_t{12};
  auto a = symmetric_unit_diagonal_scale(poisson2d_5pt(4, 3)).a;
  // Identity P.
  std::vector<index_t> rp(static_cast<std::size_t>(n) + 1);
  std::vector<index_t> ci(static_cast<std::size_t>(n));
  std::vector<value_t> v(static_cast<std::size_t>(n), 1.0);
  for (index_t i = 0; i <= n; ++i) rp[static_cast<std::size_t>(i)] = i;
  for (index_t i = 0; i < n; ++i) ci[static_cast<std::size_t>(i)] = i;
  CsrMatrix p(n, n, std::move(rp), std::move(ci), std::move(v));
  auto ac = galerkin_product(a, p);
  expect_equal(a, ac, 1e-14);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace dsouth::sparse
