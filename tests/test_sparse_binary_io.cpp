#include "sparse/binary_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "sparse/mm_io.hpp"
#include "sparse/proxy_suite.hpp"
#include "sparse/stencils.hpp"
#include "util/error.hpp"

namespace dsouth::sparse {
namespace {

void expect_equal(const CsrMatrix& a, const CsrMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.nnz(), b.nnz());
  for (index_t i = 0; i < a.rows(); ++i) {
    auto ca = a.row_cols(i);
    auto cb = b.row_cols(i);
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t k = 0; k < ca.size(); ++k) {
      EXPECT_EQ(ca[k], cb[k]);
      EXPECT_DOUBLE_EQ(a.row_vals(i)[k], b.row_vals(i)[k]);
    }
  }
}

TEST(BinaryCsr, RoundTripStream) {
  auto a = poisson2d_9pt(9, 7);
  std::stringstream buf;
  write_binary_csr(buf, a);
  auto b = read_binary_csr(buf);
  expect_equal(a, b);
}

TEST(BinaryCsr, RoundTripFile) {
  auto a = make_proxy("msdoorp", 0.01).a;
  const std::string path = ::testing::TempDir() + "/dsouth_csr.bin";
  write_binary_csr_file(path, a);
  auto b = read_binary_csr_file(path);
  expect_equal(a, b);
  std::remove(path.c_str());
}

TEST(BinaryCsr, EmptyMatrixRoundTrips) {
  CsrMatrix a(0, 0, {0}, {}, {});
  std::stringstream buf;
  write_binary_csr(buf, a);
  auto b = read_binary_csr(buf);
  EXPECT_EQ(b.rows(), 0);
  EXPECT_EQ(b.nnz(), 0);
}

TEST(BinaryCsr, BadMagicThrows) {
  std::stringstream buf;
  buf << "NOTACSR!garbagegarbage";
  EXPECT_THROW(read_binary_csr(buf), util::CheckError);
}

TEST(BinaryCsr, TruncationThrows) {
  auto a = poisson2d_5pt(4, 4);
  std::stringstream buf;
  write_binary_csr(buf, a);
  std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_binary_csr(cut), util::CheckError);
}

TEST(BinaryCsr, CorruptIndicesDetected) {
  auto a = poisson2d_5pt(3, 3);
  std::stringstream buf;
  write_binary_csr(buf, a);
  std::string bytes = buf.str();
  // Smash a column index deep in the payload to an out-of-range value.
  const std::size_t col_region = 8 + 4 + 3 * 8 + 10 * 8 + 8;
  std::int64_t bogus = 1 << 20;
  std::memcpy(bytes.data() + col_region, &bogus, sizeof(bogus));
  std::stringstream corrupt(bytes);
  EXPECT_THROW(read_binary_csr(corrupt), util::CheckError);
}

TEST(BinaryCsr, MissingFileThrows) {
  EXPECT_THROW(read_binary_csr_file("/no/such/file.bin"), util::CheckError);
}

TEST(LoadMatrixAny, DispatchesByExtension) {
  auto a = poisson2d_5pt(5, 5);
  const std::string bin = ::testing::TempDir() + "/dsouth_any.bin";
  const std::string mtx = ::testing::TempDir() + "/dsouth_any.mtx";
  write_binary_csr_file(bin, a);
  write_matrix_market_file(mtx, a, /*symmetric=*/true);
  expect_equal(a, load_matrix_any(bin));
  expect_equal(a, load_matrix_any(mtx));
  std::remove(bin.c_str());
  std::remove(mtx.c_str());
}

}  // namespace
}  // namespace dsouth::sparse
