/// Tests for batched multi-tenant serving (DESIGN.md §14, docs/serving.md):
/// the tenant-frame codec, the batched SoA kernels' per-lane bit-identity
/// (including the signed-zero subtlety), ChannelSet's batch sink and
/// ship_batch's (peer, tag) grouping with per-tenant accounting, the
/// runtime's tenant tallies across reset_stats(), the B = 1 degeneracy
/// (byte-identical to run_distributed — iterates AND traces — for all four
/// solvers, both backends, composed with coalescing / async / faults /
/// node routing), and the B >= 2 serving invariants: per-tenant
/// trajectories bit-identical to solo runs, cross-backend bit-identity,
/// physical-message reduction with logical invariance, and dropout that
/// never perturbs the surviving tenants.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <vector>

#include "dist/batch.hpp"
#include "dist/driver.hpp"
#include "dist/layout.hpp"
#include "graph/partition.hpp"
#include "kernels/kernels.hpp"
#include "simmpi/rank_context.hpp"
#include "simmpi/runtime.hpp"
#include "sparse/proxy_suite.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "trace/export.hpp"
#include "util/rng.hpp"
#include "wire/comm_plan.hpp"
#include "wire/wire.hpp"

namespace dsouth {
namespace {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

// ---------------------------------------------------------------------------
// Tenant-frame codec.

TEST(TenantFrame, RoundTripsEntriesInOrder) {
  const std::vector<double> b0 = {1.5, -2.5, 3.0};
  const std::vector<double> b1 = {7.0};
  const std::vector<double> b2 = {0.25, 0.5};
  const wire::TenantEntry entries[] = {{0, b0}, {3, b1}, {1, b2}};
  const std::size_t lens[] = {3, 1, 2};
  std::vector<double> frame(wire::tenant_frame_doubles(lens));
  EXPECT_EQ(frame.size(), 3u + 3 * 2 + 6);
  wire::encode_tenant_frame(entries, frame);
  EXPECT_TRUE(wire::is_tenant_frame(frame));
  EXPECT_FALSE(wire::is_frame(frame));
  EXPECT_FALSE(wire::is_forward_frame(frame));

  std::vector<int> tenants;
  std::vector<std::vector<double>> bodies;
  wire::for_each_tenant(frame, [&](const wire::TenantEntry& e) {
    tenants.push_back(e.tenant);
    bodies.emplace_back(e.body.begin(), e.body.end());
  });
  EXPECT_EQ(tenants, (std::vector<int>{0, 3, 1}));
  ASSERT_EQ(bodies.size(), 3u);
  EXPECT_EQ(bodies[0], b0);
  EXPECT_EQ(bodies[1], b1);
  EXPECT_EQ(bodies[2], b2);
}

TEST(TenantFrame, MalformedFramesThrowStructuredErrors) {
  const std::vector<double> body = {1.0, 2.0};
  const wire::TenantEntry entries[] = {{2, body}};
  const std::size_t lens[] = {2};
  std::vector<double> frame(wire::tenant_frame_doubles(lens));
  wire::encode_tenant_frame(entries, frame);
  auto sink = [](const wire::TenantEntry&) {};
  auto mutate = [&](std::size_t i, double v) {
    std::vector<double> bad = frame;
    bad[i] = v;
    return bad;
  };

  // Wrong magic: not a tenant frame at all, and the walker refuses it.
  EXPECT_FALSE(wire::is_tenant_frame(mutate(0, 0.0)));
  EXPECT_THROW(wire::for_each_tenant(mutate(0, 0.0), sink),
               wire::DecodeError);
  // Bad version / non-integral count / negative tenant / zero or
  // non-integral body length.
  EXPECT_THROW(wire::for_each_tenant(mutate(1, 99.0), sink),
               wire::DecodeError);
  EXPECT_THROW(wire::for_each_tenant(mutate(2, 1.5), sink),
               wire::DecodeError);
  EXPECT_THROW(wire::for_each_tenant(mutate(3, -1.0), sink),
               wire::DecodeError);
  EXPECT_THROW(wire::for_each_tenant(mutate(4, 0.0), sink),
               wire::DecodeError);
  EXPECT_THROW(wire::for_each_tenant(mutate(4, 2.5), sink),
               wire::DecodeError);
  // Truncated body and trailing garbage.
  std::vector<double> cut(frame.begin(), frame.end() - 1);
  EXPECT_THROW(wire::for_each_tenant(std::span<const double>(cut), sink),
               wire::DecodeError);
  std::vector<double> extra = frame;
  extra.push_back(9.0);
  EXPECT_THROW(wire::for_each_tenant(std::span<const double>(extra), sink),
               wire::DecodeError);
}

// ---------------------------------------------------------------------------
// Batched kernels: per-lane bit-identity with the scalar ones.

CsrMatrix kernel_matrix() {
  return sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(7, 7)).a;
}

TEST(Kernels, GsSweepBatchMatchesScalarPerLaneBitwise) {
  const CsrMatrix a = kernel_matrix();
  const auto m = static_cast<std::size_t>(a.rows());
  for (std::size_t lanes : {1u, 3u, 4u, 8u}) {
    // Scalar reference state per lane.
    std::vector<std::vector<value_t>> xs(lanes), rs(lanes);
    util::Rng rng(0xBA7C0 + lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      xs[l].resize(m);
      rs[l].resize(m);
      rng.fill_uniform(xs[l], -1.0, 1.0);
      rng.fill_uniform(rs[l], -1.0, 1.0);
      // Exercise the per-lane zero-delta skip, including the signed zero
      // the masked-arithmetic shortcut would destroy.
      rs[l][l % m] = 0.0;
      rs[l][(l + 3) % m] = -0.0;
    }
    // SoA copies.
    std::vector<value_t> xb(m * lanes), rb(m * lanes);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t l = 0; l < lanes; ++l) {
        xb[i * lanes + l] = xs[l][i];
        rb[i * lanes + l] = rs[l][i];
      }
    }
    double scalar_flops = 0.0;
    for (std::size_t l = 0; l < lanes; ++l) {
      scalar_flops += kernels::gs_sweep(a, xs[l], rs[l]);
    }
    const double batch_flops = kernels::gs_sweep_batch(a, lanes, xb, rb);
    EXPECT_EQ(batch_flops, scalar_flops);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t l = 0; l < lanes; ++l) {
        // Bit-exact, sign of zero included.
        EXPECT_EQ(std::bit_cast<std::uint64_t>(xb[i * lanes + l]),
                  std::bit_cast<std::uint64_t>(xs[l][i]))
            << "x row " << i << " lane " << l << " of " << lanes;
        EXPECT_EQ(std::bit_cast<std::uint64_t>(rb[i * lanes + l]),
                  std::bit_cast<std::uint64_t>(rs[l][i]))
            << "r row " << i << " lane " << l << " of " << lanes;
      }
    }
  }
}

TEST(Kernels, NormSqBatchMatchesScalarPerLaneBitwise) {
  const std::size_t m = 33;
  for (std::size_t lanes : {1u, 2u, 5u, 16u}) {
    std::vector<std::vector<value_t>> rs(lanes);
    std::vector<value_t> rb(m * lanes);
    util::Rng rng(0x5EED + lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      rs[l].resize(m);
      rng.fill_uniform(rs[l], -2.0, 2.0);
      for (std::size_t i = 0; i < m; ++i) rb[i * lanes + l] = rs[l][i];
    }
    std::vector<value_t> out(lanes, 0.0);
    kernels::norm_sq_batch(rb, lanes, out);
    for (std::size_t l = 0; l < lanes; ++l) {
      EXPECT_EQ(out[l], kernels::norm_sq(rs[l])) << "lane " << l;
    }
    // Accumulators carry across blocks: two calls over disjoint row halves
    // produce the SAME addition sequence per lane as one full call, so the
    // split is bitwise invisible (how the coordinator walks rank blocks).
    const std::size_t half_rows = m / 2;
    std::vector<value_t> acc(lanes, 0.0);
    const auto all = std::span<const value_t>(rb);
    kernels::norm_sq_batch(all.first(half_rows * lanes), lanes, acc);
    kernels::norm_sq_batch(all.subspan(half_rows * lanes), lanes, acc);
    for (std::size_t l = 0; l < lanes; ++l) {
      EXPECT_EQ(acc[l], out[l]) << "split lane " << l;
    }
  }
}

// ---------------------------------------------------------------------------
// ChannelSet batch sink + ship_batch grouping.

TEST(ShipBatch, GroupsByPeerAndTagWithPerTenantAccounting) {
  // Two ranks, one directed channel each way, width 2.
  std::vector<std::vector<wire::CommPlan::Peer>> peers(2);
  peers[0].push_back({1, 2, 2});
  peers[1].push_back({0, 2, 2});
  const wire::CommPlan plan(std::move(peers));

  simmpi::Runtime rt(2);
  rt.set_num_tenants(2);
  wire::ChannelSet s0(plan, 0), s1(plan, 0);
  s0.set_batch_staging(true);
  s1.set_batch_staging(true);
  EXPECT_TRUE(s0.batch_staging());

  simmpi::RankContext ctx(rt, 0);
  // Tenant 0: one kSolve record. Tenant 1: one kSolve and one kResidual.
  {
    auto rec = s0.open(ctx, 0, wire::RecordType::kGhostDelta);
    rec.dx[0] = 1.0;
    rec.dx[1] = 2.0;
    s0.flush(ctx);
  }
  {
    auto rec = s1.open(ctx, 0, wire::RecordType::kGhostDelta);
    rec.dx[0] = 3.0;
    rec.dx[1] = 4.0;
    auto rn = s1.open(ctx, 0, wire::RecordType::kResidualNorm, 0.625);
    (void)rn;
    s1.flush(ctx);
  }
  wire::ChannelSet* sets[] = {&s0, &s1};
  const int tenants[] = {0, 1};
  wire::ChannelSet::ship_batch(ctx, sets, tenants);
  // Buffers are cleared; a second ship with nothing staged sends nothing.
  EXPECT_EQ(s0.buffered(0), 0u);
  EXPECT_EQ(s1.buffered(0), 0u);
  wire::ChannelSet::ship_batch(ctx, sets, tenants);
  rt.fence();

  // One physical frame per (peer, tag): kSolve first (tag-enum order).
  const auto win = rt.window(1);
  ASSERT_EQ(win.size(), 2u);
  EXPECT_EQ(win[0].tag, simmpi::MsgTag::kSolve);
  EXPECT_EQ(win[1].tag, simmpi::MsgTag::kResidual);
  ASSERT_TRUE(wire::is_tenant_frame(win[0].payload));
  ASSERT_TRUE(wire::is_tenant_frame(win[1].payload));
  std::vector<int> solve_tenants;
  wire::for_each_tenant(win[0].payload, [&](const wire::TenantEntry& e) {
    solve_tenants.push_back(e.tenant);
    ASSERT_EQ(e.body.size(), 2u);  // kGhostDelta is headerless: nb doubles
    EXPECT_EQ(e.body[0], e.tenant == 0 ? 1.0 : 3.0);
  });
  EXPECT_EQ(solve_tenants, (std::vector<int>{0, 1}));
  std::vector<int> res_tenants;
  wire::for_each_tenant(win[1].payload, [&](const wire::TenantEntry& e) {
    res_tenants.push_back(e.tenant);
    const auto rec = wire::decode_record(wire::Family::kNorm, e.body, 2);
    EXPECT_EQ(rec.norm2, 0.625);
  });
  EXPECT_EQ(res_tenants, (std::vector<int>{1}));

  // Physical = 2 frames, logical = 3 records; per-tenant attribution.
  const auto& cs = rt.stats();
  EXPECT_EQ(cs.total_messages(), 2u);
  EXPECT_EQ(cs.logical_messages(), 3u);
  EXPECT_EQ(cs.num_tenants(), 2u);
  EXPECT_EQ(cs.tenant_records(0), 1u);
  EXPECT_EQ(cs.tenant_records(1), 2u);
  EXPECT_EQ(cs.tenant_doubles(0), 2u);
  const auto norm_len =
      wire::encoded_doubles(wire::RecordType::kResidualNorm, 2);
  EXPECT_EQ(cs.tenant_doubles(1), 2u + norm_len);
}

TEST(ShipBatch, TenantTalliesSurviveMidEpochResetStats) {
  simmpi::Runtime rt(2);
  rt.set_num_tenants(3);
  {
    simmpi::RankContext ctx(rt, 0);
    auto out = ctx.stage(1, simmpi::MsgTag::kSolve, 4, 1);
    for (auto& v : out) v = 1.0;
    ctx.add_tenant_records(2, 1, 4);
  }
  rt.fence();
  EXPECT_EQ(rt.stats().tenant_records(2), 1u);
  EXPECT_EQ(rt.stats().tenant_doubles(2), 4u);
  EXPECT_EQ(rt.stats().tenant_records(0), 0u);

  // Tallies staged mid-epoch are discarded by reset_stats(), not leaked
  // into the next fence (the between-batched-runs regression).
  {
    simmpi::RankContext ctx(rt, 1);
    auto out = ctx.stage(0, simmpi::MsgTag::kSolve, 2, 1);
    for (auto& v : out) v = 2.0;
    ctx.add_tenant_records(1, 1, 2);
  }
  rt.reset_stats();
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(rt.stats().tenant_records(t), 0u) << t;
    EXPECT_EQ(rt.stats().tenant_doubles(t), 0u) << t;
  }
  rt.fence();  // the staged message still delivers, but charges no tenant
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(rt.stats().tenant_records(t), 0u) << t;
    EXPECT_EQ(rt.stats().tenant_doubles(t), 0u) << t;
  }
  // Slot count survives reset; out-of-range tenants are rejected.
  EXPECT_EQ(rt.stats().num_tenants(), 3u);
}

// ---------------------------------------------------------------------------
// Driver-level: problem setup shared by the serving tests.

struct Problem {
  CsrMatrix a;
  std::vector<value_t> b, x0;
  graph::Partition part;
};

Problem make_problem(index_t nx, index_t ranks, std::uint64_t seed) {
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(nx, nx)).a;
  p.b.assign(static_cast<std::size_t>(p.a.rows()), 0.0);
  p.x0.resize(p.b.size());
  util::Rng rng(seed);
  rng.fill_uniform(p.x0, -1.0, 1.0);
  sparse::normalize_initial_residual(p.a, p.b, p.x0);
  p.part = graph::partition_recursive_bisection(
      graph::Graph::from_matrix_structure(p.a), ranks);
  return p;
}

std::string trace_bytes(const std::shared_ptr<const trace::TraceLog>& log) {
  EXPECT_TRUE(log != nullptr);
  if (!log) return {};
  std::ostringstream os;
  trace::write_jsonl(os, *log, {});
  return os.str();
}

const std::vector<dist::DistMethod>& all_methods() {
  static const std::vector<dist::DistMethod> ms = {
      dist::DistMethod::kBlockJacobi, dist::DistMethod::kMulticolorBlockGs,
      dist::DistMethod::kParallelSouthwell,
      dist::DistMethod::kDistributedSouthwell};
  return ms;
}

// ---------------------------------------------------------------------------
// B = 1 degeneracy: byte-identical to the unbatched driver, composed with
// every comm-stack feature, on both backends.

TEST(BatchDegeneracy, SingleTenantIsByteIdenticalToUnbatched) {
  auto p = make_problem(10, 6, 23);
  dist::DistLayout layout(p.a, p.part);
  const dist::DistLayout* layouts[] = {&layout};

  struct Config {
    const char* name;
    dist::DistRunOptions opt;
  };
  std::vector<Config> configs;
  {
    dist::DistRunOptions base;
    base.max_parallel_steps = 12;
    base.trace.enabled = true;
    configs.push_back({"plain", base});
    auto coal = base;
    coal.coalesce_messages = true;
    configs.push_back({"coalesce", coal});
    auto async = base;
    async.async = true;
    configs.push_back({"async", async});
    auto faulty = base;
    faulty.resilience.enabled = true;
    faulty.faults.defaults.drop_probability = 0.05;
    configs.push_back({"faults", faulty});
    auto routed = base;
    routed.num_nodes = 2;
    configs.push_back({"node-route", routed});
  }
  for (const auto backend :
       {simmpi::BackendKind::kSequential, simmpi::BackendKind::kThreadPool}) {
    for (const auto& cfg : configs) {
      for (const auto m : all_methods()) {
        auto opt = cfg.opt;
        opt.backend = backend;
        if (backend == simmpi::BackendKind::kThreadPool) opt.num_threads = 3;
        const auto solo = dist::run_distributed(m, layout, p.b, p.x0, opt);
        const dist::TenantSpec spec{p.b, p.x0, 0.0};
        const auto batched =
            dist::run_distributed_batch(m, layouts, {&spec, 1}, opt);
        const std::string what = std::string(dist::method_name(m)) + "/" +
                                 cfg.name + "/" + solo.backend;
        EXPECT_EQ(batched.batch, 1u);
        ASSERT_EQ(batched.tenants.size(), 1u);
        EXPECT_EQ(batched.tenants[0].residual_norm, solo.residual_norm)
            << what;
        EXPECT_EQ(batched.tenants[0].final_x, solo.final_x) << what;
        EXPECT_EQ(batched.comm_totals.msgs, solo.comm_totals.msgs) << what;
        EXPECT_EQ(batched.comm_totals.bytes, solo.comm_totals.bytes) << what;
        EXPECT_EQ(batched.comm_totals.msgs_logical,
                  solo.comm_totals.msgs_logical)
            << what;
        EXPECT_EQ(trace_bytes(batched.trace_log), trace_bytes(solo.trace_log))
            << what;
        ASSERT_TRUE(batched.solo.has_value());
        EXPECT_EQ(batched.solo->residual_norm, solo.residual_norm) << what;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// B >= 2: per-tenant trajectories are the solo ones, bit for bit.

TEST(BatchServing, PerTenantTrajectoriesMatchSoloBitwise) {
  auto p = make_problem(10, 6, 31);
  dist::DistLayout layout(p.a, p.part);
  // Tenant 0: the base system. Tenant 1: different RHS/x0 on the same
  // matrix. Tenant 2: different coefficients (seeded sweep, same sparsity).
  const CsrMatrix a2 = sparse::make_tenant_variant(p.a, 0x7e4a47, 0.25);
  dist::DistLayout layout2(a2, p.part);
  std::vector<value_t> b1(p.b.size(), 0.0), x1(p.x0.size());
  util::Rng rng(97);
  rng.fill_uniform(x1, -1.0, 1.0);
  sparse::normalize_initial_residual(p.a, b1, x1);
  std::vector<value_t> x2 = p.x0;

  const dist::DistLayout* layouts[] = {&layout, &layout, &layout2};
  const dist::TenantSpec specs[] = {
      {p.b, p.x0, 0.0}, {b1, x1, 0.0}, {p.b, x2, 0.0}};

  dist::DistRunOptions opt;
  opt.max_parallel_steps = 15;
  for (const auto m : all_methods()) {
    const auto batched = dist::run_distributed_batch(m, layouts, specs, opt);
    ASSERT_EQ(batched.tenants.size(), 3u);
    std::uint64_t solo_msgs = 0;
    double solo_model_time = 0.0;
    for (std::size_t t = 0; t < 3; ++t) {
      const auto solo = dist::run_distributed(m, *layouts[t], specs[t].b,
                                              specs[t].x0, opt);
      const std::string what =
          std::string(dist::method_name(m)) + " tenant " + std::to_string(t);
      EXPECT_EQ(batched.tenants[t].residual_norm, solo.residual_norm) << what;
      EXPECT_EQ(batched.tenants[t].final_x, solo.final_x) << what;
      EXPECT_EQ(batched.tenants[t].relaxations,
                static_cast<std::uint64_t>(solo.relaxations.back()))
          << what;
      // Logical invariance: the tenant's share of the shared frames is
      // exactly its solo logical traffic, records and doubles both.
      EXPECT_EQ(batched.tenants[t].wire_records,
                solo.comm_totals.msgs_logical)
          << what;
      EXPECT_EQ(batched.tenants[t].wire_doubles,
                (solo.comm_totals.bytes -
                 simmpi::kMessageHeaderBytes * solo.comm_totals.msgs) /
                    8)
          << what;
      solo_msgs += solo.comm_totals.msgs;
      solo_model_time += solo.model_time.back();
    }
    // The whole point: fewer physical messages and less modeled time than
    // running the B tenants separately.
    EXPECT_LT(batched.comm_totals.msgs, solo_msgs) << dist::method_name(m);
    EXPECT_LT(batched.model_time, solo_model_time) << dist::method_name(m);
    EXPECT_EQ(batched.comm_totals.msgs_logical,
              batched.tenants[0].wire_records +
                  batched.tenants[1].wire_records +
                  batched.tenants[2].wire_records)
        << dist::method_name(m);
  }
}

TEST(BatchServing, ThreadedBatchIsBitIdenticalToSequential) {
  auto p = make_problem(10, 6, 41);
  dist::DistLayout layout(p.a, p.part);
  std::vector<value_t> b1(p.b.size(), 0.0), x1(p.x0.size());
  util::Rng rng(5);
  rng.fill_uniform(x1, -1.0, 1.0);
  sparse::normalize_initial_residual(p.a, b1, x1);
  const dist::DistLayout* layouts[] = {&layout};
  const dist::TenantSpec specs[] = {{p.b, p.x0, 0.0}, {b1, x1, 0.0}};

  dist::DistRunOptions seq;
  seq.max_parallel_steps = 12;
  auto thr = seq;
  thr.backend = simmpi::BackendKind::kThreadPool;
  thr.num_threads = 3;
  for (const auto m : {dist::DistMethod::kParallelSouthwell,
                       dist::DistMethod::kDistributedSouthwell}) {
    const auto a = dist::run_distributed_batch(m, layouts, specs, seq);
    const auto b = dist::run_distributed_batch(m, layouts, specs, thr);
    for (std::size_t t = 0; t < 2; ++t) {
      EXPECT_EQ(a.tenants[t].residual_norm, b.tenants[t].residual_norm)
          << dist::method_name(m) << " tenant " << t;
      EXPECT_EQ(a.tenants[t].final_x, b.tenants[t].final_x)
          << dist::method_name(m) << " tenant " << t;
      EXPECT_EQ(a.tenants[t].wire_records, b.tenants[t].wire_records);
      EXPECT_EQ(a.tenants[t].wire_doubles, b.tenants[t].wire_doubles);
    }
    EXPECT_EQ(a.comm_totals.msgs, b.comm_totals.msgs);
    EXPECT_EQ(a.comm_totals.bytes, b.comm_totals.bytes);
    EXPECT_EQ(a.model_time, b.model_time);
  }
}

TEST(BatchServing, DropoutNeverPerturbsSurvivors) {
  auto p = make_problem(10, 6, 53);
  dist::DistLayout layout(p.a, p.part);
  std::vector<value_t> b1(p.b.size(), 0.0), x1(p.x0.size());
  util::Rng rng(11);
  rng.fill_uniform(x1, -1.0, 1.0);
  sparse::normalize_initial_residual(p.a, b1, x1);
  const dist::DistLayout* layouts[] = {&layout};
  // Tenant 1 converges (loose target) and drops out mid-run; tenants 0
  // and 2 run all steps.
  const dist::TenantSpec specs[] = {
      {p.b, p.x0, 0.0}, {b1, x1, 0.5}, {b1, x1, 0.0}};
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 20;
  const auto m = dist::DistMethod::kDistributedSouthwell;
  const auto batched = dist::run_distributed_batch(m, layouts, specs, opt);
  ASSERT_EQ(batched.tenants.size(), 3u);
  EXPECT_TRUE(batched.tenants[1].converged);
  EXPECT_LT(batched.tenants[1].steps, 20);
  EXPECT_EQ(batched.tenants[1].residual_norm.size(),
            static_cast<std::size_t>(batched.tenants[1].steps) + 1);

  // The dropped tenant's trajectory equals its solo stop_at_residual run…
  auto stop_opt = opt;
  stop_opt.stop_at_residual = 0.5;
  const auto solo1 = dist::run_distributed(m, layout, b1, x1, stop_opt);
  EXPECT_EQ(batched.tenants[1].residual_norm, solo1.residual_norm);
  // …and the SURVIVORS' trajectories equal full-length solo runs: the
  // dropout changed the shared wire, not any surviving tenant's stream.
  const auto solo0 = dist::run_distributed(m, layout, p.b, p.x0, opt);
  const auto solo2 = dist::run_distributed(m, layout, b1, x1, opt);
  EXPECT_EQ(batched.tenants[0].residual_norm, solo0.residual_norm);
  EXPECT_EQ(batched.tenants[0].final_x, solo0.final_x);
  EXPECT_EQ(batched.tenants[2].residual_norm, solo2.residual_norm);
  EXPECT_EQ(batched.tenants[2].final_x, solo2.final_x);
  // Dropped tenants stop paying for the wire once they leave.
  EXPECT_LT(batched.tenants[1].wire_records, batched.tenants[2].wire_records);
}

TEST(BatchServing, UnsupportedObserverPoliciesAreRejected) {
  auto p = make_problem(8, 4, 3);
  dist::DistLayout layout(p.a, p.part);
  const dist::DistLayout* layouts[] = {&layout};
  const dist::TenantSpec specs[] = {{p.b, p.x0, 0.0}, {p.b, p.x0, 0.0}};
  dist::DistRunOptions opt;
  opt.watchdog.enabled = true;
  EXPECT_THROW(dist::run_distributed_batch(dist::DistMethod::kBlockJacobi,
                                           layouts, specs, opt),
               util::CheckError);
  dist::DistRunOptions opt2;
  opt2.divergence_abort = 1e6;
  EXPECT_THROW(dist::run_distributed_batch(dist::DistMethod::kBlockJacobi,
                                           layouts, specs, opt2),
               util::CheckError);
}

TEST(BatchServing, TracedBatchedRunIsDeterministic) {
  auto p = make_problem(10, 6, 61);
  dist::DistLayout layout(p.a, p.part);
  const dist::DistLayout* layouts[] = {&layout};
  std::vector<value_t> b1(p.b.size(), 0.0), x1(p.x0.size());
  util::Rng rng(13);
  rng.fill_uniform(x1, -1.0, 1.0);
  sparse::normalize_initial_residual(p.a, b1, x1);
  const dist::TenantSpec specs[] = {{p.b, p.x0, 0.0}, {b1, x1, 0.0}};
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 10;
  opt.trace.enabled = true;
  auto thr = opt;
  thr.backend = simmpi::BackendKind::kThreadPool;
  thr.num_threads = 3;
  const auto a = dist::run_distributed_batch(
      dist::DistMethod::kDistributedSouthwell, layouts, specs, opt);
  const auto b = dist::run_distributed_batch(
      dist::DistMethod::kDistributedSouthwell, layouts, specs, thr);
  // The merged event stream of a batched run is byte-identical across
  // backends, like every other trace in the library.
  EXPECT_EQ(trace_bytes(a.trace_log), trace_bytes(b.trace_log));
}

}  // namespace
}  // namespace dsouth
