/// Edge cases and less-traveled options across modules: empty parts in a
/// layout, damped scalar methods, empty extractions, driver option
/// plumb-through, oversized proxies.

#include <gtest/gtest.h>

#include "core/classic.hpp"
#include "dist/driver.hpp"
#include "graph/partition.hpp"
#include "sparse/proxy_suite.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace dsouth {
namespace {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

TEST(EdgeCases, LayoutToleratesEmptyParts) {
  auto a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(4, 4))
               .a;
  graph::Partition part;
  part.num_parts = 5;  // part 4 owns nothing
  part.part.assign(16, 0);
  for (index_t i = 8; i < 16; ++i) part.part[static_cast<std::size_t>(i)] = 2;
  dist::DistLayout layout(a, part);
  EXPECT_TRUE(layout.validate(a));
  EXPECT_EQ(layout.rank(4).num_rows(), 0);
  // All three solvers run with the idle rank present.
  std::vector<value_t> b(16, 0.0), x0(16);
  util::Rng rng(1);
  rng.fill_uniform(x0, -1.0, 1.0);
  sparse::normalize_initial_residual(a, b, x0);
  for (auto method : {dist::DistMethod::kBlockJacobi,
                      dist::DistMethod::kParallelSouthwell,
                      dist::DistMethod::kDistributedSouthwell,
                      dist::DistMethod::kMulticolorBlockGs}) {
    dist::DistRunOptions opt;
    opt.max_parallel_steps = 5;
    auto r = dist::run_distributed(method, layout, b, x0, opt);
    EXPECT_LT(r.residual_norm.back(), r.residual_norm.front())
        << dist::method_name(method);
  }
}

TEST(EdgeCases, DriverPsAblationFlagPlumbsThrough) {
  auto a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(10, 10))
               .a;
  std::vector<value_t> b(100, 0.0), x0(100);
  util::Rng rng(2);
  rng.fill_uniform(x0, -1.0, 1.0);
  sparse::normalize_initial_residual(a, b, x0);
  auto part = graph::partition_recursive_bisection(
      graph::Graph::from_matrix_structure(a), 9);
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 100;
  opt.ps_explicit_residual_updates = false;
  auto r = dist::run_distributed(dist::DistMethod::kParallelSouthwell, a,
                                 part, b, x0, opt);
  // The Ref. [18] scheme sends no explicit residual messages at all.
  EXPECT_DOUBLE_EQ(r.res_comm.back(), 0.0);
  // And it stalls well above convergence (§4.2).
  EXPECT_GT(r.residual_norm.back(), 0.1);
}

TEST(EdgeCases, DampedJacobiConvergesWhereUndampedOscillates) {
  // On the unit-scaled 5-pt Laplacian, undamped Jacobi has spectral radius
  // just below 1 with eigenvalues near ±ρ; ω = 2/3 damps the oscillatory
  // end. Both converge; the damped error decays smoothly. Just pin that
  // the omega option reaches the engine.
  auto a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(6, 6))
               .a;
  std::vector<value_t> b(36);
  util::Rng rng(3);
  rng.fill_uniform(b, -1.0, 1.0);
  std::vector<value_t> x0(36, 0.0);
  core::ScalarRunOptions full;
  full.max_sweeps = 1;
  core::ScalarRunOptions damped = full;
  damped.omega = 2.0 / 3.0;
  auto rf = core::run_jacobi(a, b, x0, full);
  auto rd = core::run_jacobi(a, b, x0, damped);
  EXPECT_NE(rf.final_residual_norm(), rd.final_residual_norm());
}

TEST(EdgeCases, ExtractEmptyRowSelection) {
  auto a = sparse::poisson2d_5pt(3, 3);
  std::vector<index_t> none;
  std::vector<index_t> col_map(9, -1);
  auto s = a.extract(none, col_map, 0);
  EXPECT_EQ(s.rows(), 0);
  EXPECT_EQ(s.nnz(), 0);
  EXPECT_TRUE(s.validate());
}

TEST(EdgeCases, ProxySizeFactorAboveOneGrows) {
  auto base = sparse::make_proxy("af_5_k101p", 0.02);
  auto bigger = sparse::make_proxy("af_5_k101p", 0.08);
  EXPECT_GT(bigger.info.rows, base.info.rows);
}

TEST(EdgeCases, StopAtResidualZeroRunsAllSteps) {
  auto a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(6, 6))
               .a;
  std::vector<value_t> b(36, 0.0), x0(36);
  util::Rng rng(4);
  rng.fill_uniform(x0, -1.0, 1.0);
  sparse::normalize_initial_residual(a, b, x0);
  auto part = graph::partition_contiguous_blocks(36, 4);
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 7;  // stop_at_residual defaults to 0 (off)
  auto r = dist::run_distributed(dist::DistMethod::kBlockJacobi, a, part, b,
                                 x0, opt);
  EXPECT_EQ(r.steps_taken(), 7u);
}

TEST(EdgeCases, FinalXMatchesResidualSeries) {
  auto a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(8, 8))
               .a;
  std::vector<value_t> b(64, 0.0), x0(64);
  util::Rng rng(5);
  rng.fill_uniform(x0, -1.0, 1.0);
  sparse::normalize_initial_residual(a, b, x0);
  auto part = graph::partition_recursive_bisection(
      graph::Graph::from_matrix_structure(a), 6);
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 9;
  auto r = dist::run_distributed(dist::DistMethod::kDistributedSouthwell, a,
                                 part, b, x0, opt);
  ASSERT_EQ(r.final_x.size(), b.size());
  std::vector<value_t> res(b.size());
  a.residual(b, r.final_x, res);
  EXPECT_NEAR(sparse::norm2(res), r.residual_norm.back(), 1e-10);
}

}  // namespace
}  // namespace dsouth
