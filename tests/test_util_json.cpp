/// Tests for util/json: escaping edge cases (control characters, UTF-8
/// pass-through), number emission (exact double round-trips, non-finite →
/// null as documented), and the strict parser (escapes, surrogate pairs,
/// malformed inputs, duplicate keys, parse(dump(v)) round-trips).

#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>

#include "util/error.hpp"

namespace dsouth::util {
namespace {

// ---------------------------------------------------------------------------
// json_escape
// ---------------------------------------------------------------------------

TEST(JsonEscape, PlainAsciiUntouched) {
  EXPECT_EQ(json_escape("hello world_42"), "hello world_42");
}

TEST(JsonEscape, QuotesAndBackslash) {
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(JsonEscape, NamedControlCharacters) {
  EXPECT_EQ(json_escape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
}

TEST(JsonEscape, UnnamedControlCharactersUseUnicodeEscapes) {
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(json_escape(std::string("\x1f", 1)), "\\u001f");
  // NUL must not truncate the string.
  EXPECT_EQ(json_escape(std::string("a\0b", 3)), "a\\u0000b");
}

TEST(JsonEscape, Utf8PassesThroughByteWise) {
  const std::string snowman = "\xe2\x98\x83";           // U+2603
  const std::string emoji = "\xf0\x9f\x98\x80";         // U+1F600
  EXPECT_EQ(json_escape(snowman), snowman);
  EXPECT_EQ(json_escape("x" + emoji + "y"), "x" + emoji + "y");
}

TEST(JsonQuote, WrapsAndEscapes) {
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote(""), "\"\"");
}

// ---------------------------------------------------------------------------
// Number emission
// ---------------------------------------------------------------------------

TEST(JsonNumber, IntegersPrintCompactly) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(-7.0), "-7");
}

TEST(JsonNumber, NonFiniteEmitsNullAsDocumented) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonNumber, ExactDoubleRoundTrip) {
  // Values with no short decimal form must still round-trip bit-exactly.
  const double cases[] = {0.1,
                          1.0 / 3.0,
                          1e-300,
                          1e300,
                          5e-324,  // min subnormal
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::min(),
                          -2.5e-6,
                          3.141592653589793};
  for (double v : cases) {
    const std::string s = json_number(v);
    const JsonValue parsed = parse_json(s);
    ASSERT_TRUE(parsed.is_number()) << s;
    EXPECT_EQ(parsed.as_number(), v) << s;
  }
}

TEST(JsonNumber, RandomDoubleRoundTrip) {
  std::mt19937_64 rng(20260805);
  for (int i = 0; i < 2000; ++i) {
    double v;
    do {
      const std::uint64_t bits = rng();
      static_assert(sizeof(bits) == sizeof(v));
      std::memcpy(&v, &bits, sizeof(v));
    } while (!std::isfinite(v));
    const JsonValue parsed = parse_json(json_number(v));
    ASSERT_TRUE(parsed.is_number());
    // Compare bit patterns so -0.0 vs 0.0 is caught too.
    const double back = parsed.as_number();
    EXPECT_EQ(std::memcmp(&back, &v, sizeof(v)), 0)
        << v << " -> " << json_number(v) << " -> " << back;
  }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_EQ(parse_json("-12.5e2").as_number(), -1250.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
  EXPECT_EQ(parse_json(" 3 ").as_int(), 3);
}

TEST(JsonParse, NestedStructure) {
  const auto v = parse_json(R"({"a":[1,2,{"b":null}],"c":{"d":true}})");
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_EQ(v.at("a").as_array()[1].as_int(), 2);
  EXPECT_TRUE(v.at("a").as_array()[2].at("b").is_null());
  EXPECT_EQ(v.at("c").at("d").as_bool(), true);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, ObjectPreservesInsertionOrder) {
  const auto v = parse_json(R"({"z":1,"a":2,"m":3})");
  const auto& members = v.as_object();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(JsonParse, DuplicateKeysKeepLast) {
  EXPECT_EQ(parse_json(R"({"k":1,"k":2})").at("k").as_int(), 2);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\/d\b\f\n\r\t")").as_string(),
            "a\"b\\c/d\b\f\n\r\t");
  EXPECT_EQ(parse_json(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
  EXPECT_EQ(parse_json(R"("\u2603")").as_string(), "\xe2\x98\x83");
}

TEST(JsonParse, SurrogatePairsDecodeToUtf8) {
  // U+1F600 as a surrogate pair.
  EXPECT_EQ(parse_json(R"("\ud83d\ude00")").as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonParse, EscapeRoundTripWithControlCharacters) {
  std::string all;
  for (int c = 0; c < 32; ++c) all += static_cast<char>(c);
  all += "plain \"text\" \\ and UTF-8 \xe2\x98\x83";
  EXPECT_EQ(parse_json(json_quote(all)).as_string(), all);
}

TEST(JsonParse, RejectsMalformedInput) {
  const char* bad[] = {
      "",           "{",         "[1,]",     "{\"a\":}",   "01",
      "1.",         ".5",        "+1",       "nul",        "\"unterminated",
      "\"\\q\"",    "\"\\u12\"", "[1] junk", "{\"a\" 1}",  "nan",
      "\"\\ud83d\"",  // lone high surrogate
  };
  for (const char* s : bad) {
    EXPECT_THROW(parse_json(s), CheckError) << "input: " << s;
  }
}

TEST(JsonParse, RejectsRawControlCharactersInStrings) {
  EXPECT_THROW(parse_json("\"a\nb\""), CheckError);
  EXPECT_THROW(parse_json(std::string("\"a\x01b\"", 6)), CheckError);
}

TEST(JsonParse, PrefixParserAdvancesAcrossLines) {
  const std::string two = "{\"a\":1}\n[2,3]\n";
  std::size_t pos = 0;
  const auto first = parse_json_prefix(two, pos);
  EXPECT_EQ(first.at("a").as_int(), 1);
  const auto second = parse_json_prefix(two, pos);
  EXPECT_EQ(second.as_array()[1].as_int(), 3);
  EXPECT_EQ(pos, two.size());
}

TEST(JsonValue, DumpParseRoundTrip) {
  using JV = JsonValue;
  const JV doc = JV::make_object(
      {{"s", JV::make_string("x\n\"y\"")},
       {"n", JV::make_number(0.1)},
       {"nan", JV::make_number(std::numeric_limits<double>::quiet_NaN())},
       {"arr", JV::make_array({JV::make_bool(true), JV::make_null()})},
       {"o", JV::make_object({{"k", JV::make_number(-3.0)}})}});
  const std::string text = doc.dump();
  const JV back = parse_json(text);
  EXPECT_EQ(back.at("s").as_string(), "x\n\"y\"");
  EXPECT_EQ(back.at("n").as_number(), 0.1);
  EXPECT_TRUE(back.at("nan").is_null());  // documented NaN -> null policy
  EXPECT_EQ(back.at("arr").as_array()[0].as_bool(), true);
  EXPECT_EQ(back.at("o").at("k").as_number(), -3.0);
  // Serialization is stable: dump(parse(dump(v))) == dump(v).
  EXPECT_EQ(back.dump(), text);
}

TEST(JsonValue, AccessorKindMismatchThrows) {
  const auto v = parse_json("[1]");
  EXPECT_THROW(v.as_object(), CheckError);
  EXPECT_THROW(v.as_number(), CheckError);
  EXPECT_THROW(v.at("k"), CheckError);
  EXPECT_THROW(parse_json("1.5").as_int(), CheckError);
}

}  // namespace
}  // namespace dsouth::util
