#include "sparse/dense.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsouth::sparse {
namespace {

TEST(DenseMatrix, FromCsrAndMatvec) {
  auto a = poisson2d_5pt(3, 3);
  auto d = DenseMatrix::from_csr(a);
  EXPECT_EQ(d.rows(), 9);
  EXPECT_DOUBLE_EQ(d(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(d(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(d(0, 8), 0.0);
  std::vector<value_t> x(9, 1.0), yd(9), ys(9);
  d.matvec(x, yd);
  a.spmv(x, ys);
  for (int i = 0; i < 9; ++i) EXPECT_DOUBLE_EQ(yd[i], ys[i]);
}

TEST(DenseCholesky, SolvesKnownSystem) {
  // 2x2 SPD: [[4, 2], [2, 3]], b = (10, 8) -> x = (1.75, 1.5)
  DenseMatrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 3;
  DenseCholesky chol(a);
  std::vector<value_t> b{10.0, 8.0}, x(2);
  chol.solve(b, x);
  EXPECT_NEAR(x[0], 1.75, 1e-14);
  EXPECT_NEAR(x[1], 1.5, 1e-14);
}

TEST(DenseCholesky, ResidualSmallOnPoisson) {
  auto a = poisson2d_5pt(5, 4);
  DenseCholesky chol(a);
  util::Rng rng(3);
  std::vector<value_t> b(static_cast<std::size_t>(a.rows()));
  rng.fill_uniform(b, -1.0, 1.0);
  std::vector<value_t> x(b.size()), r(b.size());
  chol.solve(b, x);
  a.residual(b, x, r);
  EXPECT_LT(norm2(r), 1e-11);
}

TEST(DenseCholesky, RejectsNonSpd) {
  DenseMatrix indef(2, 2);
  indef(0, 0) = 1;
  indef(0, 1) = 2;
  indef(1, 0) = 2;
  indef(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_THROW(DenseCholesky{indef}, util::CheckError);
}

TEST(DenseCholesky, LogDetMatchesKnown) {
  DenseMatrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 0;
  a(1, 0) = 0;
  a(1, 1) = 9;
  DenseCholesky chol(a);
  EXPECT_NEAR(chol.log_det(), std::log(36.0), 1e-13);
}

TEST(DenseCholesky, OrderAccessor) {
  auto a = poisson2d_5pt(3, 2);
  DenseCholesky chol(a);
  EXPECT_EQ(chol.order(), 6);
}

}  // namespace
}  // namespace dsouth::sparse
