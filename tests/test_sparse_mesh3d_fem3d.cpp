#include <gtest/gtest.h>

#include <cmath>

#include "sparse/dense.hpp"
#include "sparse/fem.hpp"
#include "sparse/mesh3d.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "util/error.hpp"

namespace dsouth::sparse {
namespace {

TEST(TetMesh, UnperturbedBoxCounts) {
  auto mesh = make_perturbed_box_mesh(4, 3, 5, 0.0, 1);
  EXPECT_EQ(mesh.num_vertices(), 60);
  EXPECT_EQ(mesh.num_tets(), 6 * 3 * 2 * 4);
  EXPECT_EQ(mesh.num_interior(), 2 * 1 * 3);
  EXPECT_TRUE(mesh.is_valid());
}

TEST(TetMesh, KuhnSplitFillsTheCellExactly) {
  // The six tets of each cell partition it: total volume equals the box
  // volume (unperturbed).
  auto mesh = make_perturbed_box_mesh(3, 3, 3, 0.0, 1);
  double vol = 0.0;
  for (index_t t = 0; t < mesh.num_tets(); ++t) vol += mesh.signed_volume(t);
  EXPECT_NEAR(vol, 1.0, 1e-12);  // unit cube (longest axis spans [0,1])
}

TEST(TetMesh, PerturbationKeepsPositiveOrientation) {
  auto mesh = make_perturbed_box_mesh(8, 8, 8, 0.15, 42);
  EXPECT_TRUE(mesh.is_valid());
  for (index_t t = 0; t < mesh.num_tets(); ++t) {
    EXPECT_GT(mesh.signed_volume(t), 0.0);
  }
}

TEST(TetMesh, AnisotropicSlabScalesAxes) {
  // Longest axis spans [0,1]; the thin axis spans proportionally less.
  auto mesh = make_perturbed_box_mesh(11, 11, 3, 0.0, 1);
  double max_z = 0.0, max_x = 0.0;
  for (index_t v = 0; v < mesh.num_vertices(); ++v) {
    max_x = std::max(max_x, mesh.vx[static_cast<std::size_t>(v)]);
    max_z = std::max(max_z, mesh.vz[static_cast<std::size_t>(v)]);
  }
  EXPECT_NEAR(max_x, 1.0, 1e-12);
  EXPECT_NEAR(max_z, 0.2, 1e-12);
}

TEST(TetMesh, InvalidArgsThrow) {
  EXPECT_THROW(make_perturbed_box_mesh(1, 3, 3, 0.0, 1), util::CheckError);
  EXPECT_THROW(make_perturbed_box_mesh(3, 3, 3, 0.4, 1), util::CheckError);
}

TEST(Fem3dElasticity, SpdThreeDofsPerVertex) {
  auto mesh = make_perturbed_box_mesh(5, 5, 5, 0.1, 7);
  DofMap map;
  ElasticityOptions opt;
  opt.poisson_ratio = 0.3;
  auto a = assemble_p1_elasticity_3d(mesh, opt, &map);
  EXPECT_EQ(map.dofs_per_vertex, 3);
  EXPECT_EQ(a.rows(), 3 * mesh.num_interior());
  EXPECT_TRUE(a.is_symmetric(1e-10));
  EXPECT_NO_THROW(DenseCholesky{a});
}

TEST(Fem3dElasticity, RigidTranslationIsInStiffnessKernelPreBc) {
  // Element-level sanity through the assembled operator: applying the
  // operator to a constant displacement field must reproduce only boundary
  // effects. Verify via the residual of the constant field against the
  // matching Dirichlet lift: A·1 equals the (negated) coupling to the
  // eliminated boundary values, so here check instead that row sums of the
  // full stiffness (interior + boundary columns) would vanish — i.e., each
  // interior row sum equals minus its boundary couplings. We assemble on a
  // mesh where one vertex ring is interior and check A·1 ≠ 0 but small
  // relative to diagonal (the constant field is nearly rigid).
  auto mesh = make_perturbed_box_mesh(6, 6, 6, 0.0, 1);
  ElasticityOptions opt;
  opt.poisson_ratio = 0.25;
  auto a = assemble_p1_elasticity_3d(mesh, opt);
  // Stronger, exact property: the full (no-BC) operator annihilates
  // translations. With Dirichlet elimination, (A·1)_i = -Σ_boundary a_ib.
  // For a deep-interior dof (all neighbors interior), the row sum is 0.
  // Center vertex of the 6^3 grid has a fully interior stencil ring only
  // if the mesh is at least 7^3; use 8^3 to be safe.
  auto mesh8 = make_perturbed_box_mesh(8, 8, 8, 0.0, 1);
  DofMap map;
  auto a8 = assemble_p1_elasticity_3d(mesh8, opt, &map);
  // Vertex (3,3,3) is two layers from every boundary.
  const index_t v = (3 * 8 + 3) * 8 + 3;
  const index_t dof = map.vertex_to_dof[static_cast<std::size_t>(v)];
  ASSERT_GE(dof, 0);
  for (int c = 0; c < 3; ++c) {
    value_t row_sum = 0.0;
    for (value_t x : a8.row_vals(dof + c)) row_sum += x;
    EXPECT_NEAR(row_sum, 0.0, 1e-10);
  }
  (void)a;
}

TEST(Fem3dElasticity, ScaledSpectrumExceedsJacobiLimit) {
  auto mesh = make_perturbed_box_mesh(10, 10, 10, 0.15, 11);
  ElasticityOptions opt;
  opt.poisson_ratio = 0.4;
  auto a = assemble_p1_elasticity_3d(mesh, opt);
  auto s = symmetric_unit_diagonal_scale(a);
  EXPECT_GT(lambda_max_estimate(s.a, 300), 2.0);
}

TEST(Fem3dElasticity, JumpContrastChangesEntries) {
  auto mesh = make_perturbed_box_mesh(7, 7, 7, 0.0, 1);
  ElasticityOptions plain;
  plain.poisson_ratio = 0.3;
  ElasticityOptions jump = plain;
  jump.jump_contrast = 100.0;
  jump.jump_blocks = 2;
  auto a = assemble_p1_elasticity_3d(mesh, plain);
  auto b = assemble_p1_elasticity_3d(mesh, jump);
  ASSERT_EQ(a.nnz(), b.nnz());
  bool any_bigger = false;
  for (index_t i = 0; i < a.rows() && !any_bigger; ++i) {
    if (std::abs(b.at(i, i)) > 10.0 * std::abs(a.at(i, i))) any_bigger = true;
  }
  EXPECT_TRUE(any_bigger);
  EXPECT_NO_THROW(DenseCholesky{b});
}

TEST(Fem3dElasticity, NnzPerRowMatchesStructuralMatrices) {
  // The paper's 3-D structural matrices have ~45-80 nnz/row; the tet
  // elasticity proxy should land in that neighborhood (~40+).
  auto mesh = make_perturbed_box_mesh(10, 10, 10, 0.1, 3);
  auto a = assemble_p1_elasticity_3d(mesh);
  const double per_row =
      static_cast<double>(a.nnz()) / static_cast<double>(a.rows());
  EXPECT_GT(per_row, 30.0);
  EXPECT_LT(per_row, 60.0);
}

TEST(Fem3dElasticity, InvalidOptionsThrow) {
  auto mesh = make_perturbed_box_mesh(4, 4, 4, 0.0, 1);
  ElasticityOptions opt;
  opt.poisson_ratio = 0.5;
  EXPECT_THROW(assemble_p1_elasticity_3d(mesh, opt), util::CheckError);
  opt.poisson_ratio = 0.3;
  opt.jump_contrast = -1.0;
  EXPECT_THROW(assemble_p1_elasticity_3d(mesh, opt), util::CheckError);
}

}  // namespace
}  // namespace dsouth::sparse
