#include "multigrid/transfer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sparse/vec.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsouth::multigrid {
namespace {

TEST(Transfer, CoarseDimHalves) {
  EXPECT_EQ(coarse_dim(3), 1);
  EXPECT_EQ(coarse_dim(7), 3);
  EXPECT_EQ(coarse_dim(255), 127);
  EXPECT_THROW(coarse_dim(4), util::CheckError);
  EXPECT_THROW(coarse_dim(1), util::CheckError);
}

TEST(Transfer, RestrictionOfConstantIsNearConstant) {
  // Full weighting of an interior constant returns the constant; near the
  // Dirichlet boundary the value is damped (zero outside).
  const index_t nf = 7, nc = 3;
  std::vector<value_t> fine(static_cast<std::size_t>(nf * nf), 1.0);
  std::vector<value_t> coarse(static_cast<std::size_t>(nc * nc), 0.0);
  restrict_full_weighting(nf, fine, coarse);
  // Center coarse point (1,1) maps to fine (3,3): full interior stencil.
  EXPECT_NEAR(coarse[4], 1.0, 1e-14);
  // Corner coarse point (0,0) -> fine (1,1): all 9 points inside too.
  EXPECT_NEAR(coarse[0], 1.0, 1e-14);
}

TEST(Transfer, RestrictionWeightsMatchTheStencil) {
  const index_t nf = 7, nc = 3;
  // A delta at a coarse-aligned fine point (3,3) feeds only coarse (1,1),
  // with the center weight 4/16.
  std::vector<value_t> fine(static_cast<std::size_t>(nf * nf), 0.0);
  std::vector<value_t> coarse(static_cast<std::size_t>(nc * nc), 0.0);
  fine[3 * 7 + 3] = 16.0;
  restrict_full_weighting(nf, fine, coarse);
  EXPECT_NEAR(coarse[4], 4.0, 1e-14);
  EXPECT_NEAR(coarse[0], 0.0, 1e-14);
  EXPECT_NEAR(coarse[1], 0.0, 1e-14);
  // A delta at the cell-center fine point (2,2) is a corner (weight 1/16)
  // of all four surrounding coarse stencils.
  std::fill(fine.begin(), fine.end(), 0.0);
  fine[2 * 7 + 2] = 16.0;
  restrict_full_weighting(nf, fine, coarse);
  EXPECT_NEAR(coarse[0], 1.0, 1e-14);
  EXPECT_NEAR(coarse[1], 1.0, 1e-14);
  EXPECT_NEAR(coarse[3], 1.0, 1e-14);
  EXPECT_NEAR(coarse[4], 1.0, 1e-14);
  EXPECT_NEAR(coarse[8], 0.0, 1e-14);
  // A delta at an edge-midpoint fine point (2,3) is an edge neighbor
  // (weight 2/16) of the two horizontally adjacent coarse stencils.
  std::fill(fine.begin(), fine.end(), 0.0);
  fine[3 * 7 + 2] = 16.0;
  restrict_full_weighting(nf, fine, coarse);
  EXPECT_NEAR(coarse[3], 2.0, 1e-14);
  EXPECT_NEAR(coarse[4], 2.0, 1e-14);
  EXPECT_NEAR(coarse[0], 0.0, 1e-14);
}

TEST(Transfer, ProlongationOfConstantIsConstantInside) {
  const index_t nf = 7, nc = 3;
  std::vector<value_t> coarse(static_cast<std::size_t>(nc * nc), 1.0);
  std::vector<value_t> fine(static_cast<std::size_t>(nf * nf), 0.0);
  prolong_bilinear_add(nf, coarse, fine);
  // Fine point aligned with a coarse point: exactly 1.
  EXPECT_NEAR(fine[3 * 7 + 3], 1.0, 1e-14);
  // Fine point between two coarse points horizontally: average = 1.
  EXPECT_NEAR(fine[3 * 7 + 2], 1.0, 1e-14);
  // Fine boundary-adjacent point: half-weight (zero Dirichlet outside).
  EXPECT_NEAR(fine[3 * 7 + 0], 0.5, 1e-14);
  // Fine cell-center point: average of 4 coarse = 1.
  EXPECT_NEAR(fine[2 * 7 + 2], 1.0, 1e-14);
}

TEST(Transfer, ProlongationAccumulates) {
  const index_t nf = 3;
  std::vector<value_t> coarse{2.0};
  std::vector<value_t> fine(9, 10.0);
  prolong_bilinear_add(nf, coarse, fine);
  EXPECT_NEAR(fine[4], 12.0, 1e-14);  // center += 2
}

TEST(Transfer, VariationalScaling) {
  // For these stencils, P = 4·Rᵀ: check ⟨P c, f⟩ == 4·⟨c, R f⟩ for random
  // vectors (the classical variational pair on 2-D grids).
  const index_t nf = 15, nc = 7;
  util::Rng rng(9);
  std::vector<value_t> f(static_cast<std::size_t>(nf * nf));
  std::vector<value_t> c(static_cast<std::size_t>(nc * nc));
  rng.fill_uniform(f, -1.0, 1.0);
  rng.fill_uniform(c, -1.0, 1.0);
  std::vector<value_t> pc(f.size(), 0.0);
  prolong_bilinear_add(nf, c, pc);
  std::vector<value_t> rf(c.size(), 0.0);
  restrict_full_weighting(nf, f, rf);
  EXPECT_NEAR(sparse::dot(pc, f), 4.0 * sparse::dot(c, rf), 1e-10);
}

TEST(Transfer, SizeValidation) {
  std::vector<value_t> wrong(5, 0.0), coarse(9, 0.0);
  EXPECT_THROW(restrict_full_weighting(7, wrong, coarse), util::CheckError);
  EXPECT_THROW(prolong_bilinear_add(7, coarse, wrong), util::CheckError);
}

}  // namespace
}  // namespace dsouth::multigrid
