#include "core/dist_southwell_scalar.hpp"

#include <gtest/gtest.h>

#include "core/parallel_southwell.hpp"
#include "sparse/proxy_suite.hpp"
#include "sparse/fem.hpp"
#include "sparse/mesh.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace dsouth::core {
namespace {

struct Problem {
  CsrMatrix a;
  std::vector<value_t> b, x0;
};

Problem scaled_poisson(index_t nx, index_t ny, std::uint64_t seed) {
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(nx, ny)).a;
  p.b.resize(static_cast<std::size_t>(p.a.rows()));
  p.x0.assign(p.b.size(), 0.0);
  util::Rng rng(seed);
  rng.fill_uniform(p.b, -1.0, 1.0);
  sparse::scale(1.0 / sparse::norm2(p.b), p.b);
  return p;
}

TEST(DistSouthwellScalar, ConvergesToTarget) {
  auto p = scaled_poisson(8, 8, 31);
  DistSouthwellScalarOptions opt;
  opt.base.max_sweeps = 1000;
  opt.base.target_residual = 1e-6;
  opt.max_parallel_steps = 100000;
  auto r = run_distributed_southwell_scalar(p.a, p.b, p.x0, opt);
  EXPECT_LE(r.history.final_residual_norm(), 1e-6);
  EXPECT_FALSE(r.stalled);
  // x in the result must reproduce the history's final residual.
  std::vector<value_t> res(p.b.size());
  p.a.residual(p.b, r.x, res);
  EXPECT_NEAR(sparse::norm2(res), r.history.final_residual_norm(), 1e-9);
}

TEST(DistSouthwellScalar, NoDeadlockWithCorrections) {
  // Long run: every step must make progress (possibly after a correction
  // step); the run ends by budget, never by stall.
  auto p = scaled_poisson(10, 10, 32);
  DistSouthwellScalarOptions opt;
  opt.base.max_sweeps = 5;
  opt.max_parallel_steps = 100000;
  auto r = run_distributed_southwell_scalar(p.a, p.b, p.x0, opt);
  EXPECT_FALSE(r.stalled);
  EXPECT_EQ(r.history.total_relaxations(), 5 * 100);
}

TEST(DistSouthwellScalar, CorrectionsAreSentOnlySometimes) {
  auto p = scaled_poisson(10, 10, 33);
  DistSouthwellScalarOptions opt;
  opt.base.max_sweeps = 3;
  auto r = run_distributed_southwell_scalar(p.a, p.b, p.x0, opt);
  // The deadlock-avoidance channel is exercised...
  EXPECT_GT(r.residual_messages, 0u);
  // ...but it must be a fraction of the solve traffic (the paper's
  // communication claim, Table 3 reversed: in PS the explicit updates
  // dominate; in DS they do not).
  EXPECT_LT(r.residual_messages, r.solve_messages);
}

TEST(DistSouthwellScalar, ExactRelaxationBudgetViaRandomSubset) {
  auto p = scaled_poisson(9, 9, 34);
  DistSouthwellScalarOptions opt;
  opt.max_relaxations = 37;  // awkward number to force a final subset
  opt.max_parallel_steps = 100000;
  auto r = run_distributed_southwell_scalar(p.a, p.b, p.x0, opt);
  EXPECT_EQ(r.history.total_relaxations(), 37);
  index_t sum = 0;
  for (index_t c : r.relaxed_per_step) sum += c;
  EXPECT_EQ(sum, 37);
}

TEST(DistSouthwellScalar, HalfSweepBudget) {
  auto p = scaled_poisson(8, 8, 35);
  DistSouthwellScalarOptions opt;
  opt.max_relaxations = 32;  // n/2
  opt.max_parallel_steps = 100000;
  auto r = run_distributed_southwell_scalar(p.a, p.b, p.x0, opt);
  EXPECT_EQ(r.history.total_relaxations(), 32);
  EXPECT_LT(r.history.final_residual_norm(),
            r.history.points[0].residual_norm);
}

TEST(DistSouthwellScalar, TracksParallelSouthwellAtLowAccuracy) {
  // Fig. 5: DS closely matches Par SW down to ‖r‖ ≈ 0.6 on the FEM
  // problem. Reduced mesh for test speed.
  auto mesh = sparse::make_perturbed_grid_mesh(21, 11, 0.25, 102);
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(
            sparse::assemble_p1_poisson(mesh)).a;
  p.b.resize(static_cast<std::size_t>(p.a.rows()));
  p.x0.assign(p.b.size(), 0.0);
  util::Rng rng(36);
  rng.fill_uniform(p.b, -1.0, 1.0);
  sparse::scale(1.0 / sparse::norm2(p.b), p.b);

  ParallelSouthwellOptions popt;
  popt.base.max_sweeps = 3;
  auto psw = run_parallel_southwell(p.a, p.b, p.x0, popt);
  DistSouthwellScalarOptions dopt;
  dopt.base.max_sweeps = 3;
  auto ds = run_distributed_southwell_scalar(p.a, p.b, p.x0, dopt);
  auto psw_cost = psw.relaxations_to_reach(0.6);
  auto ds_cost = ds.history.relaxations_to_reach(0.6);
  ASSERT_TRUE(psw_cost.has_value());
  ASSERT_TRUE(ds_cost.has_value());
  EXPECT_LT(*ds_cost, 1.5 * *psw_cost);
  EXPECT_GT(*ds_cost, 0.5 * *psw_cost);
}

TEST(DistSouthwellScalar, MoreRelaxationsPerStepThanParallelSouthwell) {
  // §3: "with inexact residual estimates, Distributed Southwell relaxes
  // more equations per parallel step".
  auto p = scaled_poisson(12, 12, 37);
  ParallelSouthwellOptions popt;
  popt.base.max_sweeps = 2;
  auto psw = run_parallel_southwell(p.a, p.b, p.x0, popt);
  DistSouthwellScalarOptions dopt;
  dopt.base.max_sweeps = 2;
  auto ds = run_distributed_southwell_scalar(p.a, p.b, p.x0, dopt);
  const double psw_rate = static_cast<double>(psw.total_relaxations()) /
                          static_cast<double>(psw.num_parallel_steps());
  const double ds_rate = static_cast<double>(ds.history.total_relaxations()) /
                         static_cast<double>(ds.history.num_parallel_steps());
  EXPECT_GE(ds_rate, psw_rate * 0.95);
}

TEST(DistSouthwellScalar, DisabledCorrectionsCanOnlyStallNotCrash) {
  auto p = scaled_poisson(8, 8, 38);
  DistSouthwellScalarOptions opt;
  opt.base.max_sweeps = 50;
  opt.enable_corrections = false;
  opt.max_parallel_steps = 100000;
  auto r = run_distributed_southwell_scalar(p.a, p.b, p.x0, opt);
  // Either it finished the budget or it stalled; both are legal without
  // corrections — but a stall must be flagged.
  if (r.history.total_relaxations() < 50 * 64) {
    EXPECT_TRUE(r.stalled);
    EXPECT_GT(r.history.final_residual_norm(), 0.0);
  }
}

TEST(DistSouthwellScalar, DeterministicAcrossRuns) {
  auto p = scaled_poisson(7, 7, 39);
  DistSouthwellScalarOptions opt;
  opt.base.max_sweeps = 2;
  auto r1 = run_distributed_southwell_scalar(p.a, p.b, p.x0, opt);
  auto r2 = run_distributed_southwell_scalar(p.a, p.b, p.x0, opt);
  ASSERT_EQ(r1.history.points.size(), r2.history.points.size());
  for (std::size_t k = 0; k < r1.history.points.size(); ++k) {
    EXPECT_DOUBLE_EQ(r1.history.points[k].residual_norm,
                     r2.history.points[k].residual_norm);
  }
  EXPECT_EQ(r1.solve_messages, r2.solve_messages);
  EXPECT_EQ(r1.residual_messages, r2.residual_messages);
}

}  // namespace
}  // namespace dsouth::core
