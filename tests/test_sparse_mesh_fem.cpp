#include <gtest/gtest.h>

#include <cmath>

#include "sparse/dense.hpp"
#include "sparse/fem.hpp"
#include "sparse/mesh.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "util/error.hpp"

namespace dsouth::sparse {
namespace {

TEST(TriMesh, UnperturbedGridCounts) {
  auto mesh = make_perturbed_grid_mesh(5, 4, 0.0, 1);
  EXPECT_EQ(mesh.num_vertices(), 20);
  EXPECT_EQ(mesh.num_triangles(), 2 * 4 * 3);
  EXPECT_EQ(mesh.num_interior(), 3 * 2);
  EXPECT_TRUE(mesh.is_valid());
}

TEST(TriMesh, PerturbationKeepsValidity) {
  auto mesh = make_perturbed_grid_mesh(12, 12, 0.25, 42);
  EXPECT_TRUE(mesh.is_valid());
  // Boundary vertices stay on the unit square boundary.
  for (index_t v = 0; v < mesh.num_vertices(); ++v) {
    if (mesh.on_boundary[static_cast<std::size_t>(v)]) {
      const double x = mesh.vx[static_cast<std::size_t>(v)];
      const double y = mesh.vy[static_cast<std::size_t>(v)];
      EXPECT_TRUE(x == 0.0 || x == 1.0 || y == 0.0 || y == 1.0);
    }
  }
}

TEST(TriMesh, DeterministicForSeed) {
  auto a = make_perturbed_grid_mesh(8, 8, 0.2, 5);
  auto b = make_perturbed_grid_mesh(8, 8, 0.2, 5);
  for (index_t v = 0; v < a.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(a.vx[static_cast<std::size_t>(v)],
                     b.vx[static_cast<std::size_t>(v)]);
  }
}

TEST(TriMesh, InvalidArgsThrow) {
  EXPECT_THROW(make_perturbed_grid_mesh(1, 5, 0.0, 1), util::CheckError);
  EXPECT_THROW(make_perturbed_grid_mesh(5, 5, 0.5, 1), util::CheckError);
}

TEST(FemPoisson, UnperturbedMatchesFiveMinusOneStencilScale) {
  // On a uniform right-triangle mesh, the P1 stiffness matrix for the unit
  // Laplacian is exactly the 5-point stencil (values 4 / -1) regardless of
  // h — a classical identity worth pinning down.
  auto mesh = make_perturbed_grid_mesh(6, 6, 0.0, 1);
  DofMap map;
  auto a = assemble_p1_poisson(mesh, &map);
  EXPECT_EQ(a.rows(), 16);
  EXPECT_TRUE(a.is_symmetric(1e-12));
  // Center unknowns: diagonal 4, orthogonal neighbors -1.
  // Interior vertex (2,2) -> dof index 5 in a 4x4 interior grid.
  EXPECT_NEAR(a.at(5, 5), 4.0, 1e-12);
  EXPECT_NEAR(a.at(5, 4), -1.0, 1e-12);
  EXPECT_NEAR(a.at(5, 6), -1.0, 1e-12);
  EXPECT_NEAR(a.at(5, 1), -1.0, 1e-12);
  EXPECT_NEAR(a.at(5, 9), -1.0, 1e-12);
}

TEST(FemPoisson, PerturbedIsSpd) {
  auto mesh = make_perturbed_grid_mesh(8, 7, 0.25, 77);
  auto a = assemble_p1_poisson(mesh);
  EXPECT_TRUE(a.is_symmetric(1e-12));
  EXPECT_NO_THROW(DenseCholesky{a});
}

TEST(FemPoisson, DofMapSkipsBoundary) {
  auto mesh = make_perturbed_grid_mesh(5, 5, 0.1, 3);
  DofMap map;
  auto a = assemble_p1_poisson(mesh, &map);
  EXPECT_EQ(map.num_dofs, a.rows());
  EXPECT_EQ(map.dofs_per_vertex, 1);
  index_t mapped = 0;
  for (index_t v = 0; v < mesh.num_vertices(); ++v) {
    const auto uv = static_cast<std::size_t>(v);
    if (mesh.on_boundary[uv]) {
      EXPECT_EQ(map.vertex_to_dof[uv], -1);
    } else {
      EXPECT_GE(map.vertex_to_dof[uv], 0);
      ++mapped;
    }
  }
  EXPECT_EQ(mapped, map.num_dofs);
}

TEST(FemElasticity, SpdAndTwoDofsPerVertex) {
  auto mesh = make_perturbed_grid_mesh(7, 7, 0.2, 11);
  DofMap map;
  ElasticityOptions opt;
  opt.poisson_ratio = 0.4;
  auto a = assemble_p1_elasticity(mesh, opt, &map);
  EXPECT_EQ(map.dofs_per_vertex, 2);
  EXPECT_EQ(a.rows(), 2 * mesh.num_interior());
  EXPECT_TRUE(a.is_symmetric(1e-11));
  EXPECT_NO_THROW(DenseCholesky{a});
}

TEST(FemElasticity, HasPositiveOffDiagonals) {
  // The property that makes elasticity a non-M-matrix (and small-block
  // Jacobi divergent, per DESIGN.md §5).
  auto mesh = make_perturbed_grid_mesh(7, 7, 0.2, 11);
  auto a = assemble_p1_elasticity(mesh);
  bool found_positive_offdiag = false;
  for (index_t i = 0; i < a.rows() && !found_positive_offdiag; ++i) {
    auto cols = a.row_cols(i);
    auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] != i && vals[k] > 1e-12) found_positive_offdiag = true;
    }
  }
  EXPECT_TRUE(found_positive_offdiag);
}

TEST(FemElasticity, UnitScaledSpectrumExceedsJacobiLimit) {
  // After unit-diagonal scaling, λ_max ≥ 2 means point Jacobi diverges —
  // the Block Jacobi failure mode the paper's evaluation shows. High
  // Poisson ratio pushes the spectrum past the limit.
  auto mesh = make_perturbed_grid_mesh(17, 17, 0.2, 13);
  ElasticityOptions opt;
  opt.poisson_ratio = 0.45;
  auto a = assemble_p1_elasticity(mesh, opt);
  auto s = symmetric_unit_diagonal_scale(a);
  EXPECT_GT(lambda_max_estimate(s.a, 300), 2.0);
}

TEST(FemElasticity, InvalidPoissonRatioThrows) {
  auto mesh = make_perturbed_grid_mesh(4, 4, 0.0, 1);
  ElasticityOptions opt;
  opt.poisson_ratio = 0.5;
  EXPECT_THROW(assemble_p1_elasticity(mesh, opt), util::CheckError);
}

TEST(FemPoisson, SolvesManufacturedProblem) {
  // Manufactured solution u = x(1-x)y(1-y): f = -Δu = 2[y(1-y) + x(1-x)].
  // The FEM solution with an exact-integration RHS converges O(h²); at
  // this resolution we only require qualitative agreement.
  auto mesh = make_perturbed_grid_mesh(17, 17, 0.0, 1);
  DofMap map;
  auto a = assemble_p1_poisson(mesh, &map);
  const double h = 1.0 / 16.0;
  std::vector<value_t> f(static_cast<std::size_t>(a.rows()));
  std::vector<value_t> exact(static_cast<std::size_t>(a.rows()));
  for (index_t v = 0; v < mesh.num_vertices(); ++v) {
    const auto uv = static_cast<std::size_t>(v);
    const index_t dof = map.vertex_to_dof[uv];
    if (dof < 0) continue;
    const double x = mesh.vx[uv], y = mesh.vy[uv];
    // Lumped load: f_i ≈ f(x_i) * h².
    f[static_cast<std::size_t>(dof)] =
        2.0 * (y * (1 - y) + x * (1 - x)) * h * h;
    exact[static_cast<std::size_t>(dof)] = x * (1 - x) * y * (1 - y);
  }
  DenseCholesky chol(a);
  std::vector<value_t> u(f.size());
  chol.solve(f, u);
  double err = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    err += (u[i] - exact[i]) * (u[i] - exact[i]);
    norm += exact[i] * exact[i];
  }
  EXPECT_LT(std::sqrt(err / norm), 0.05);
}

}  // namespace
}  // namespace dsouth::sparse
