#include "sparse/proxy_suite.hpp"

#include <gtest/gtest.h>

#include "sparse/dense.hpp"
#include "sparse/stencils.hpp"
#include "util/error.hpp"

namespace dsouth::sparse {
namespace {

TEST(ProxySuite, FourteenNamesInTableOrder) {
  const auto& names = proxy_names();
  ASSERT_EQ(names.size(), 14u);
  EXPECT_EQ(names.front(), "Flan_1565p");
  EXPECT_EQ(names.back(), "af_5_k101p");
  for (const auto& n : names) EXPECT_TRUE(is_proxy_name(n));
  EXPECT_FALSE(is_proxy_name("not_a_matrix"));
}

TEST(ProxySuite, UnknownNameThrows) {
  EXPECT_THROW(make_proxy("bogus"), util::CheckError);
}

/// Small-size instantiation of every proxy: SPD (via Cholesky), symmetric,
/// unit diagonal — the §4.2 preprocessing contract.
class ProxyContract : public ::testing::TestWithParam<std::string> {};

TEST_P(ProxyContract, SmallInstanceIsUnitDiagonalSpd) {
  auto proxy = make_proxy(GetParam(), 0.005);
  EXPECT_EQ(proxy.info.name, GetParam());
  EXPECT_GT(proxy.info.rows, 0);
  EXPECT_EQ(proxy.info.rows, proxy.a.rows());
  EXPECT_EQ(proxy.info.nnz, proxy.a.nnz());
  EXPECT_TRUE(proxy.a.is_symmetric(1e-11));
  for (value_t d : proxy.a.diagonal()) EXPECT_NEAR(d, 1.0, 1e-12);
  if (proxy.a.rows() <= 1500) {
    EXPECT_NO_THROW(DenseCholesky{proxy.a});
  }
}

INSTANTIATE_TEST_SUITE_P(AllProxies, ProxyContract,
                         ::testing::ValuesIn(proxy_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ProxySuite, ElasticityProxiesAreJacobiDivergent) {
  // The matrices standing in for the paper's structural-FEM problems must
  // actually exhibit the Block Jacobi failure mode: scaled λ_max ≥ 2.
  for (const char* name :
       {"audikw_1p", "bone010p", "ldoorp", "msdoorp", "Flan_1565p",
        "Emilia_923p", "Fault_639p", "Serenap", "StocF-1465p"}) {
    auto proxy = make_proxy(name, 0.05);
    EXPECT_GT(lambda_max_estimate(proxy.a, 300), 2.0)
        << "proxy " << name << " is not Jacobi-divergent";
  }
}

TEST(ProxySuite, Af5ProxyIsJacobiConvergent) {
  // af_5_k101 is the one paper matrix on which Block Jacobi never
  // diverges; its proxy is the suite's only M-matrix.
  auto proxy = make_proxy("af_5_k101p", 0.05);
  EXPECT_LT(lambda_max_estimate(proxy.a, 300), 2.0);
}

TEST(ProxySuite, SizeFactorScalesRows) {
  auto small = make_proxy("inline_1p", 0.01);
  auto large = make_proxy("inline_1p", 0.05);
  EXPECT_LT(small.info.rows, large.info.rows);
}

TEST(ProxySuite, DeterministicAcrossCalls) {
  auto a = make_proxy("Fault_639p", 0.01);
  auto b = make_proxy("Fault_639p", 0.01);
  ASSERT_EQ(a.a.nnz(), b.a.nnz());
  for (index_t i = 0; i < a.a.rows(); ++i) {
    for (index_t j : a.a.row_cols(i)) {
      EXPECT_DOUBLE_EQ(a.a.at(i, j), b.a.at(i, j));
    }
  }
}

TEST(SmallFemProblem, MatchesPaperDimensions) {
  auto p = make_small_fem_problem();
  EXPECT_EQ(p.a.rows(), 3081);  // the paper's example has 3081 rows
  EXPECT_TRUE(p.a.is_symmetric(1e-11));
  for (value_t d : p.a.diagonal()) EXPECT_NEAR(d, 1.0, 1e-12);
  EXPECT_TRUE(p.mesh.is_valid());
  EXPECT_EQ(p.mesh.num_interior(), 3081);
}

}  // namespace
}  // namespace dsouth::sparse
