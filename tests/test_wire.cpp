/// Tests for the wire-format codec (wire/wire.hpp) and the CommPlan /
/// ChannelSet staging layer (wire/comm_plan.hpp): v1 layouts are
/// byte-identical to the legacy ad-hoc encodings, frames round-trip and
/// reject every malformed variant, coalescing preserves solver behavior
/// bit-for-bit, and the pooled encode-in-place hot path performs no heap
/// allocation once warm.

#include "wire/wire.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "dist/driver.hpp"
#include "dist/solver_base.hpp"
#include "simmpi/rank_context.hpp"
#include "simmpi/runtime.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "wire/comm_plan.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter for the zero-allocation hot-path test. Counting
// happens unconditionally (it is two relaxed atomic ops); the test reads the
// counter delta around a window of solver steps.
//
// The replacement pair routes through malloc/free, which is consistent, but
// GCC cannot see that once it inlines the operators into the test bodies
// and warns about new/free mismatches.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t align =
      std::max(static_cast<std::size_t>(al), sizeof(void*));
  void* p = nullptr;
  if (::posix_memalign(&p, align, n ? n : 1) == 0) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dsouth::wire {
namespace {

using util::CheckError;

// Encode one record with recognizable field values: dx[i] = base + i,
// rb[i] = -(base + i).
std::vector<double> encode(RecordType t, double norm2, double gamma2,
                           std::size_t nb, double base = 10.0) {
  std::vector<double> out(encoded_doubles(t, nb));
  auto rec = begin_record(t, norm2, gamma2, out, nb);
  for (std::size_t i = 0; i < rec.dx.size(); ++i) {
    rec.dx[i] = base + static_cast<double>(i);
  }
  for (std::size_t i = 0; i < rec.rb.size(); ++i) {
    rec.rb[i] = -(base + static_cast<double>(i));
  }
  return out;
}

TEST(Codec, EncodedSizesFollowLayoutV1) {
  for (const std::size_t nb : {std::size_t{0}, std::size_t{1}, std::size_t{7}}) {
    EXPECT_EQ(encoded_doubles(RecordType::kGhostDelta, nb), nb);
    EXPECT_EQ(encoded_doubles(RecordType::kNormUpdate, nb), 2 + nb);
    EXPECT_EQ(encoded_doubles(RecordType::kResidualNorm, nb), 2u);
    EXPECT_EQ(encoded_doubles(RecordType::kSolveUpdate, nb), 3 + 2 * nb);
    EXPECT_EQ(encoded_doubles(RecordType::kCorrection, nb), 3 + nb);
  }
}

TEST(Codec, TagAndFamilyMapping) {
  EXPECT_EQ(tag_of(RecordType::kGhostDelta), simmpi::MsgTag::kSolve);
  EXPECT_EQ(tag_of(RecordType::kNormUpdate), simmpi::MsgTag::kSolve);
  EXPECT_EQ(tag_of(RecordType::kSolveUpdate), simmpi::MsgTag::kSolve);
  EXPECT_EQ(tag_of(RecordType::kResidualNorm), simmpi::MsgTag::kResidual);
  EXPECT_EQ(tag_of(RecordType::kCorrection), simmpi::MsgTag::kResidual);

  EXPECT_EQ(family_of(RecordType::kGhostDelta), Family::kDelta);
  EXPECT_EQ(family_of(RecordType::kNormUpdate), Family::kNorm);
  EXPECT_EQ(family_of(RecordType::kResidualNorm), Family::kNorm);
  EXPECT_EQ(family_of(RecordType::kSolveUpdate), Family::kEstimate);
  EXPECT_EQ(family_of(RecordType::kCorrection), Family::kEstimate);

  for (int t = 0; t < kNumRecordTypes; ++t) {
    EXPECT_NE(record_type_name(static_cast<RecordType>(t)), nullptr);
  }
}

TEST(Codec, RoundTripsAllRecordTypes) {
  const RecordType kAll[] = {RecordType::kGhostDelta, RecordType::kNormUpdate,
                             RecordType::kResidualNorm,
                             RecordType::kSolveUpdate, RecordType::kCorrection};
  for (const RecordType t : kAll) {
    for (const std::size_t nb :
         {std::size_t{0}, std::size_t{1}, std::size_t{5}}) {
      SCOPED_TRACE(std::string(record_type_name(t)) + " nb=" +
                   std::to_string(nb));
      const auto buf = encode(t, 0.5, 0.25, nb);
      const Record rec = decode_record(family_of(t), buf, nb);
      EXPECT_EQ(rec.type, t);
      if (t != RecordType::kGhostDelta) {
        EXPECT_EQ(rec.norm2, 0.5);
      }
      if (t == RecordType::kSolveUpdate || t == RecordType::kCorrection) {
        EXPECT_EQ(rec.gamma2, 0.25);
      }
      const bool has_dx =
          t == RecordType::kGhostDelta || t == RecordType::kNormUpdate ||
          t == RecordType::kSolveUpdate;
      const bool has_rb =
          t == RecordType::kSolveUpdate || t == RecordType::kCorrection;
      ASSERT_EQ(rec.dx.size(), has_dx ? nb : 0u);
      ASSERT_EQ(rec.rb.size(), has_rb ? nb : 0u);
      for (std::size_t i = 0; i < rec.dx.size(); ++i) {
        EXPECT_EQ(rec.dx[i], 10.0 + static_cast<double>(i));
      }
      for (std::size_t i = 0; i < rec.rb.size(); ++i) {
        EXPECT_EQ(rec.rb[i], -(10.0 + static_cast<double>(i)));
      }
    }
  }
}

// The byte-compatibility contract: the encoder must produce EXACTLY the
// layouts the solvers historically hand-rolled, or the committed bench
// baselines would drift.
TEST(Codec, EncodingMatchesLegacyByteLayout) {
  EXPECT_EQ(encode(RecordType::kGhostDelta, 0, 0, 3),
            (std::vector<double>{10, 11, 12}));
  EXPECT_EQ(encode(RecordType::kNormUpdate, 0.5, 0, 3),
            (std::vector<double>{0.0, 0.5, 10, 11, 12}));
  EXPECT_EQ(encode(RecordType::kResidualNorm, 0.5, 0, 3),
            (std::vector<double>{1.0, 0.5}));
  EXPECT_EQ(encode(RecordType::kSolveUpdate, 0.5, 0.25, 3),
            (std::vector<double>{0.0, 0.5, 0.25, 10, 11, 12, -10, -11, -12}));
  EXPECT_EQ(encode(RecordType::kCorrection, 0.5, 0.25, 3),
            (std::vector<double>{1.0, 0.5, 0.25, -10, -11, -12}));
}

TEST(Codec, RejectsWrongSizeAndDiscriminator) {
  // Wrong payload length for the channel width.
  const std::vector<double> three{0.0, 1.0, 2.0};
  EXPECT_THROW(decode_record(Family::kDelta, three, 5), CheckError);
  EXPECT_THROW(decode_record(Family::kNorm, three, 5), CheckError);
  EXPECT_THROW(decode_record(Family::kEstimate, three, 5), CheckError);
  // Unknown discriminator (neither 0 nor 1).
  const std::vector<double> bad_disc{2.0, 1.0};
  EXPECT_THROW(decode_record(Family::kNorm, bad_disc, 0), CheckError);
  // Empty payload on a non-empty channel.
  EXPECT_THROW(decode_record(Family::kDelta, std::vector<double>{}, 1),
               CheckError);
}

// Width-0 channels (a neighbor with an empty ghost layer) are legal: the
// GhostDelta encoding is an empty payload and must decode back.
TEST(Codec, EmptyGhostLayerRoundTrips) {
  const auto buf = encode(RecordType::kGhostDelta, 0, 0, 0);
  EXPECT_TRUE(buf.empty());
  const Record rec = decode_record(Family::kDelta, buf, 0);
  EXPECT_EQ(rec.type, RecordType::kGhostDelta);
  EXPECT_TRUE(rec.dx.empty());
}

// ---------------------------------------------------------------------------
// Frames.

std::vector<double> make_frame(const std::vector<RecordType>& types,
                               std::size_t nb) {
  std::vector<std::size_t> lengths;
  std::vector<double> bodies;
  for (std::size_t i = 0; i < types.size(); ++i) {
    const auto body = encode(types[i], 0.5 + static_cast<double>(i), 0.25, nb,
                             10.0 * static_cast<double>(i + 1));
    lengths.push_back(body.size());
    bodies.insert(bodies.end(), body.begin(), body.end());
  }
  std::vector<double> frame(frame_doubles(lengths));
  encode_frame(types, lengths, bodies, frame);
  return frame;
}

TEST(Frame, SizesAndMagic) {
  const std::vector<std::size_t> lengths{7, 7};
  EXPECT_EQ(frame_doubles(lengths),
            kFrameHeaderDoubles + 2 * kFrameEntryDoubles + 14);
  EXPECT_NE(frame_magic(), frame_magic());  // a NaN, as documented
  const auto frame =
      make_frame({RecordType::kSolveUpdate, RecordType::kSolveUpdate}, 2);
  EXPECT_TRUE(is_frame(frame));
  EXPECT_EQ(frame[1], static_cast<double>(kWireVersion));
  EXPECT_EQ(frame[2], 2.0);
}

TEST(Frame, RoundTripMixedRecords) {
  const std::size_t nb = 2;
  const auto frame = make_frame(
      {RecordType::kSolveUpdate, RecordType::kCorrection,
       RecordType::kSolveUpdate},
      nb);
  std::vector<Record> seen;
  std::vector<std::vector<double>> dx_copies, rb_copies;
  for_each_record(Family::kEstimate, frame, nb, [&](const Record& rec) {
    seen.push_back(rec);
    dx_copies.emplace_back(rec.dx.begin(), rec.dx.end());
    rb_copies.emplace_back(rec.rb.begin(), rec.rb.end());
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].type, RecordType::kSolveUpdate);
  EXPECT_EQ(seen[1].type, RecordType::kCorrection);
  EXPECT_EQ(seen[2].type, RecordType::kSolveUpdate);
  EXPECT_EQ(seen[0].norm2, 0.5);
  EXPECT_EQ(seen[1].norm2, 1.5);
  EXPECT_EQ(seen[2].norm2, 2.5);
  EXPECT_EQ(dx_copies[0], (std::vector<double>{10, 11}));
  EXPECT_TRUE(dx_copies[1].empty());  // corrections carry no dx
  EXPECT_EQ(rb_copies[1], (std::vector<double>{-20, -21}));
  EXPECT_EQ(dx_copies[2], (std::vector<double>{30, 31}));
}

TEST(Frame, BareRecordsAreNeverMistakenForFrames) {
  const RecordType kAll[] = {RecordType::kGhostDelta, RecordType::kNormUpdate,
                             RecordType::kResidualNorm,
                             RecordType::kSolveUpdate, RecordType::kCorrection};
  for (const RecordType t : kAll) {
    EXPECT_FALSE(is_frame(encode(t, 0.5, 0.25, 4)));
  }
}

TEST(Frame, RejectsMalformedFrames) {
  const std::size_t nb = 2;
  const auto good =
      make_frame({RecordType::kSolveUpdate, RecordType::kSolveUpdate}, nb);
  const auto walk = [nb](std::span<const double> payload) {
    std::size_t n = 0;
    for_each_record(Family::kEstimate, payload, nb,
                    [&](const Record&) { ++n; });
    return n;
  };
  ASSERT_EQ(walk(good), 2u);

  auto tampered = good;
  tampered[1] = static_cast<double>(kWireVersion + 1);  // future version
  EXPECT_THROW(walk(tampered), CheckError);

  tampered = good;
  tampered[2] = 3.0;  // count claims more records than present
  EXPECT_THROW(walk(tampered), CheckError);

  tampered = good;
  tampered[2] = 1.5;  // non-integral count
  EXPECT_THROW(walk(tampered), CheckError);

  tampered = good;
  tampered[3] = 9.0;  // unknown record type in the first entry
  EXPECT_THROW(walk(tampered), CheckError);

  tampered = good;
  tampered[4] = tampered[4] - 1.0;  // length inconsistent with the type/width
  EXPECT_THROW(walk(tampered), CheckError);

  // Truncated payload.
  EXPECT_THROW(walk(std::span<const double>(good).first(good.size() - 1)),
               CheckError);

  // Trailing garbage after the last record.
  tampered = good;
  tampered.push_back(0.0);
  EXPECT_THROW(walk(tampered), CheckError);
}

// ---------------------------------------------------------------------------
// CommPlan / ChannelSet.

TEST(CommPlan, ReportsPeersAndBufferSizingHint) {
  CommPlan plan({{{1, 2, 3}, {2, 4, 1}}, {{0, 3, 2}}, {{0, 1, 4}}});
  EXPECT_EQ(plan.num_ranks(), 3);
  ASSERT_EQ(plan.peers(0).size(), 2u);
  EXPECT_EQ(plan.peers(0)[1].rank, 2);
  EXPECT_EQ(plan.peers(0)[1].send_width, 4u);
  EXPECT_EQ(plan.peers(0)[1].recv_width, 1u);
  // Largest record: a SolveUpdate on the width-4 channel = 3 + 2*4.
  EXPECT_EQ(plan.max_record_doubles(), 11u);
}

TEST(ChannelSet, DirectModeStagesBareRecords) {
  CommPlan plan({{{1, 2, 3}}, {{0, 3, 2}}});
  simmpi::Runtime rt(2);
  ChannelSet ch(plan, 0);
  simmpi::RankContext ctx(rt, 0);
  auto rec = ch.open(ctx, 0, RecordType::kNormUpdate, 0.25);
  ASSERT_EQ(rec.dx.size(), 2u);
  rec.dx[0] = 1.5;
  rec.dx[1] = 2.5;
  ch.flush(ctx);  // no-op in direct mode
  rt.fence();
  const auto win = rt.window(1);
  ASSERT_EQ(win.size(), 1u);
  EXPECT_EQ(win[0].source, 0);
  EXPECT_EQ(win[0].tag, simmpi::MsgTag::kSolve);
  EXPECT_EQ(win[0].payload, (std::vector<double>{0.0, 0.25, 1.5, 2.5}));
  EXPECT_EQ(rt.stats().total_messages(), 1u);
  EXPECT_EQ(rt.stats().logical_messages(), 1u);
}

TEST(ChannelSet, CoalescingPacksOnePhysicalMessage) {
  CommPlan plan({{{1, 2, 3}}, {{0, 3, 2}}});
  simmpi::Runtime rt(2);
  ChannelSet ch(plan, 0);
  ch.set_coalescing(true);
  simmpi::RankContext ctx(rt, 0);
  for (int i = 0; i < 2; ++i) {
    auto rec = ch.open(ctx, 0, RecordType::kSolveUpdate,
                       0.5 + static_cast<double>(i), 0.25);
    for (std::size_t g = 0; g < 2; ++g) {
      rec.dx[g] = static_cast<double>(10 * (i + 1) + static_cast<int>(g));
      rec.rb[g] = -rec.dx[g];
    }
  }
  EXPECT_EQ(ch.buffered(0), 2u);
  ch.flush(ctx);
  EXPECT_EQ(ch.buffered(0), 0u);
  rt.fence();

  // One physical message carrying two logical records.
  EXPECT_EQ(rt.stats().total_messages(), 1u);
  EXPECT_EQ(rt.stats().logical_messages(), 2u);
  EXPECT_EQ(rt.stats().logical_messages(simmpi::MsgTag::kSolve), 2u);
  const auto win = rt.window(1);
  ASSERT_EQ(win.size(), 1u);
  ASSERT_TRUE(is_frame(win[0].payload));
  std::vector<double> norms;
  for_each_record(Family::kEstimate, win[0].payload, 2,
                  [&](const Record& rec) {
                    EXPECT_EQ(rec.type, RecordType::kSolveUpdate);
                    norms.push_back(rec.norm2);
                    EXPECT_EQ(rec.dx[0], -rec.rb[0]);
                  });
  EXPECT_EQ(norms, (std::vector<double>{0.5, 1.5}));
}

// A coalesced group of ONE record must ship in the bare encoding —
// byte-identical to direct mode. This is what makes -coalesce provably
// behavior-preserving for the paper's one-record-per-(neighbor, epoch)
// solvers.
TEST(ChannelSet, SingleRecordGroupShipsBare) {
  CommPlan plan({{{1, 2, 3}}, {{0, 3, 2}}});
  std::vector<double> payloads[2];
  for (const bool coalesce : {false, true}) {
    simmpi::Runtime rt(2);
    ChannelSet ch(plan, 0);
    ch.set_coalescing(coalesce);
    simmpi::RankContext ctx(rt, 0);
    auto rec = ch.open(ctx, 0, RecordType::kCorrection, 0.5, 0.25);
    rec.rb[0] = 3.0;
    rec.rb[1] = 4.0;
    ch.flush(ctx);
    rt.fence();
    const auto win = rt.window(1);
    ASSERT_EQ(win.size(), 1u);
    EXPECT_EQ(rt.stats().logical_messages(), 1u);
    payloads[coalesce ? 1 : 0] = win[0].payload;
  }
  EXPECT_FALSE(is_frame(payloads[1]));
  EXPECT_EQ(payloads[0], payloads[1]);
}

TEST(ChannelSet, MixedTagFlushIsRejected) {
  CommPlan plan({{{1, 2, 3}}, {{0, 3, 2}}});
  simmpi::Runtime rt(2);
  ChannelSet ch(plan, 0);
  ch.set_coalescing(true);
  simmpi::RankContext ctx(rt, 0);
  auto a = ch.open(ctx, 0, RecordType::kSolveUpdate, 0.5, 0.25);
  a.dx[0] = a.dx[1] = a.rb[0] = a.rb[1] = 0.0;
  auto b = ch.open(ctx, 0, RecordType::kCorrection, 0.5, 0.25);
  b.rb[0] = b.rb[1] = 0.0;
  // kSolveUpdate travels as kSolve, kCorrection as kResidual: a frame
  // mixing them would make the Table 3 per-tag accounting ambiguous.
  EXPECT_THROW(ch.flush(ctx), CheckError);
}

TEST(ChannelSet, TogglingWithBufferedRecordsIsRejected) {
  CommPlan plan({{{1, 2, 3}}, {{0, 3, 2}}});
  simmpi::Runtime rt(2);
  ChannelSet ch(plan, 0);
  ch.set_coalescing(true);
  simmpi::RankContext ctx(rt, 0);
  auto rec = ch.open(ctx, 0, RecordType::kResidualNorm, 0.5);
  (void)rec;
  EXPECT_THROW(ch.set_coalescing(false), CheckError);
}

TEST(ChannelSet, ZeroWidthChannelsAndZeroNeighborRanks) {
  // Rank 0 sends a width-0 GhostDelta to rank 1; rank 1 has no peers at
  // all (an interior-only partition piece).
  CommPlan plan({{{1, 0, 0}}, {}});
  EXPECT_TRUE(plan.peers(1).empty());
  simmpi::Runtime rt(2);
  ChannelSet ch0(plan, 0), ch1(plan, 1);
  simmpi::RankContext c0(rt, 0), c1(rt, 1);
  auto rec = ch0.open(c0, 0, RecordType::kGhostDelta);
  EXPECT_TRUE(rec.dx.empty());
  ch0.flush(c0);
  ch1.flush(c1);  // nothing to do, must not throw
  rt.fence();
  const auto win = rt.window(1);
  ASSERT_EQ(win.size(), 1u);
  EXPECT_TRUE(win[0].payload.empty());
  std::size_t n = 0;
  for_each_record(Family::kDelta, win[0].payload, 0, [&](const Record& r) {
    EXPECT_TRUE(r.dx.empty());
    ++n;
  });
  EXPECT_EQ(n, 1u);
}

}  // namespace
}  // namespace dsouth::wire

// ---------------------------------------------------------------------------
// Solver-level properties.

namespace dsouth::dist {
namespace {

struct Problem {
  CsrMatrix a;
  std::vector<value_t> b, x0;
  graph::Partition part;
};

Problem make_problem(index_t nx, index_t k, std::uint64_t seed) {
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(nx, nx)).a;
  p.b.assign(static_cast<std::size_t>(p.a.rows()), 0.0);
  p.x0.resize(p.b.size());
  util::Rng rng(seed);
  rng.fill_uniform(p.x0, -1.0, 1.0);
  sparse::normalize_initial_residual(p.a, p.b, p.x0);
  auto g = graph::Graph::from_matrix_structure(p.a);
  p.part = graph::partition_recursive_bisection(g, k);
  return p;
}

const DistMethod kAllMethods[] = {
    DistMethod::kBlockJacobi, DistMethod::kParallelSouthwell,
    DistMethod::kDistributedSouthwell, DistMethod::kMulticolorBlockGs};

// Coalescing is behavior-preserving: every trajectory and every logical
// count is identical, and — because the paper's protocols stage at most one
// record per (neighbor, epoch), so every group ships bare — the physical
// counts and bytes are identical too.
TEST(Coalescing, AllSolversBitIdenticalWithCoalescing) {
  auto p = make_problem(8, 4, 3);
  for (const auto method : kAllMethods) {
    SCOPED_TRACE(method_name(method));
    DistRunOptions opt;
    opt.max_parallel_steps = 12;
    const auto direct = run_distributed(method, p.a, p.part, p.b, p.x0, opt);
    opt.coalesce_messages = true;
    const auto coal = run_distributed(method, p.a, p.part, p.b, p.x0, opt);

    EXPECT_EQ(direct.residual_norm, coal.residual_norm);
    EXPECT_EQ(direct.model_time, coal.model_time);
    EXPECT_EQ(direct.final_x, coal.final_x);
    EXPECT_EQ(direct.comm_totals.msgs_logical, coal.comm_totals.msgs_logical);
    EXPECT_EQ(direct.comm_totals.msgs_logical_solve,
              coal.comm_totals.msgs_logical_solve);
    EXPECT_EQ(direct.comm_totals.msgs_logical_residual,
              coal.comm_totals.msgs_logical_residual);
    // Never more physical messages than logical records...
    EXPECT_LE(coal.comm_totals.msgs, coal.comm_totals.msgs_logical);
    // ...and for these protocols the counts coincide exactly (per-pair
    // minimality: there is never a second record to merge).
    EXPECT_EQ(direct.comm_totals.msgs, coal.comm_totals.msgs);
    EXPECT_EQ(direct.comm_totals.bytes, coal.comm_totals.bytes);
    EXPECT_EQ(direct.comm_totals.msgs, direct.comm_totals.msgs_logical);
  }
}

// The acceptance bar for the pooled encode-in-place hot path: once buffers
// are warm, stepping a solver performs ZERO heap allocations — stage
// buffers, window buffers, scratch vectors, and std::function thunks are
// all recycled or in SBO.
TEST(Allocation, SolverStepsAreAllocationFreeOnceWarm) {
  auto p = make_problem(8, 4, 7);
  for (const auto method : kAllMethods) {
    SCOPED_TRACE(method_name(method));
    DistLayout layout(p.a, p.part);
    simmpi::Runtime rt(4);
    DistRunOptions opt;
    auto solver = make_dist_solver(method, layout, rt, p.b, p.x0, opt);
    // Warm-up: long enough for every (rank, neighbor, record-type) pattern
    // the run exercises to have grown its pooled buffers to steady state
    // (DS correction sets vary from step to step).
    for (int s = 0; s < 60; ++s) solver->step();
    const auto before = g_allocations.load(std::memory_order_relaxed);
    for (int s = 0; s < 10; ++s) solver->step();
    const auto after = g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u);
  }
}

}  // namespace
}  // namespace dsouth::dist
