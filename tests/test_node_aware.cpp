/// Tests for node-aware hierarchical communication (DESIGN.md §13,
/// docs/communication.md): NodeTopology construction and deterministic
/// leader election, the NodeCommPlan static channel lists, the
/// forward-frame codec round trip, the runtime's tiered hop accounting
/// (hand-computed byte math), the core invariant that routing never
/// changes what the wire *delivers* (solver results bit-identical with
/// the topology off, on as a classifier, and on with leader routing;
/// flat topologies byte-identical to no topology), cross-backend
/// bit-identity, composition with coalescing / faults / async delivery,
/// and the analyzer's tiered model reconstruction + metric cross-checks.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/run_trace.hpp"
#include "dist/driver.hpp"
#include "dist/layout.hpp"
#include "graph/partition.hpp"
#include "simmpi/node_topology.hpp"
#include "simmpi/runtime.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "trace/export.hpp"
#include "util/rng.hpp"
#include "wire/comm_plan.hpp"
#include "wire/wire.hpp"

namespace dsouth {
namespace {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

// ---------------------------------------------------------------------------
// NodeTopology: construction, leader election, degeneracy.

TEST(NodeTopology, RanksPerNodePacksConsecutiveBlocks) {
  const auto topo = simmpi::NodeTopology::ranks_per_node(10, 4);
  EXPECT_EQ(topo.num_ranks(), 10);
  EXPECT_EQ(topo.num_nodes(), 3);  // 4 + 4 + 2
  EXPECT_FALSE(topo.is_flat());
  for (int r = 0; r < 10; ++r) EXPECT_EQ(topo.node_of(r), r / 4);
  // Leaders are deterministically the lowest rank on each node.
  EXPECT_EQ(topo.leader_of(0), 0);
  EXPECT_EQ(topo.leader_of(1), 4);
  EXPECT_EQ(topo.leader_of(2), 8);
  EXPECT_TRUE(topo.is_leader(4));
  EXPECT_FALSE(topo.is_leader(5));
  EXPECT_TRUE(topo.same_node(4, 7));
  EXPECT_FALSE(topo.same_node(3, 4));
  EXPECT_EQ(topo.ranks_on(1), (std::vector<int>{4, 5, 6, 7}));
}

TEST(NodeTopology, ExplicitMapElectsLowestRankLeader) {
  // Interleaved assignment: leaders must still be the lowest rank per
  // node, independent of rank order in the map.
  const auto topo =
      simmpi::NodeTopology::explicit_map({1, 0, 1, 0, 1, 0});
  EXPECT_EQ(topo.num_nodes(), 2);
  EXPECT_EQ(topo.leader_of(0), 1);
  EXPECT_EQ(topo.leader_of(1), 0);
  EXPECT_EQ(topo.ranks_on(0), (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(topo.ranks_on(1), (std::vector<int>{0, 2, 4}));
}

TEST(NodeTopology, FlatTopologiesAreDetected) {
  EXPECT_TRUE(simmpi::NodeTopology::ranks_per_node(4, 1).is_flat());
  EXPECT_TRUE(simmpi::NodeTopology::explicit_map({2, 0, 1}).is_flat());
  EXPECT_FALSE(simmpi::NodeTopology::ranks_per_node(4, 2).is_flat());
  // One node holding everything is not flat (all traffic is intra-node).
  EXPECT_FALSE(simmpi::NodeTopology::ranks_per_node(4, 4).is_flat());
}

TEST(NodeTopology, RuntimeTreatsFlatTopologyAsDetached) {
  simmpi::Runtime rt(4);
  const auto flat = simmpi::NodeTopology::ranks_per_node(4, 1);
  rt.set_node_topology(&flat);
  EXPECT_EQ(rt.node_topology(), nullptr);
}

// ---------------------------------------------------------------------------
// Problem setup shared by the layout/driver tests.

struct Problem {
  CsrMatrix a;
  std::vector<value_t> b, x0;
  graph::Partition part;
};

Problem make_problem(index_t nx, index_t ranks, std::uint64_t seed) {
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(nx, nx)).a;
  p.b.assign(static_cast<std::size_t>(p.a.rows()), 0.0);
  p.x0.resize(p.b.size());
  util::Rng rng(seed);
  rng.fill_uniform(p.x0, -1.0, 1.0);
  sparse::normalize_initial_residual(p.a, p.b, p.x0);
  p.part = graph::partition_recursive_bisection(
      graph::Graph::from_matrix_structure(p.a), ranks);
  return p;
}

// ---------------------------------------------------------------------------
// NodeCommPlan: static per-node-pair channel lists.

TEST(NodeCommPlan, ChannelListsAreDeterministicAndExcludeIntraNode) {
  auto p = make_problem(12, 8, 7);
  dist::DistLayout layout(p.a, p.part);
  const auto topo = simmpi::NodeTopology::ranks_per_node(8, 4);
  const wire::NodeCommPlan nplan(layout.comm_plan(), topo);
  EXPECT_EQ(nplan.num_nodes(), 2);

  std::size_t total = 0;
  for (int sn = 0; sn < 2; ++sn) {
    for (int dn = 0; dn < 2; ++dn) {
      const auto chans = nplan.channels(sn, dn);
      if (sn == dn) {
        EXPECT_TRUE(chans.empty());
        continue;
      }
      total += chans.size();
      for (std::size_t i = 0; i < chans.size(); ++i) {
        EXPECT_EQ(topo.node_of(chans[i].src), sn);
        EXPECT_EQ(topo.node_of(chans[i].dst), dn);
        EXPECT_GT(chans[i].width, 0u);
        if (i > 0) {  // strictly ascending (src, dst) order
          const bool asc = chans[i - 1].src < chans[i].src ||
                           (chans[i - 1].src == chans[i].src &&
                            chans[i - 1].dst < chans[i].dst);
          EXPECT_TRUE(asc) << "channel list out of order at " << i;
        }
        EXPECT_EQ(nplan.channel_index(sn, dn, chans[i].src, chans[i].dst),
                  static_cast<int>(i));
      }
    }
  }
  EXPECT_GT(total, 0u);  // bisected Poisson grid always crosses nodes
  EXPECT_EQ(nplan.channel_index(0, 1, 0, 0), -1);  // intra pair: absent

  const auto counts = nplan.pair_channel_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0 * 2 + 1], nplan.channels(0, 1).size());
  EXPECT_EQ(counts[1 * 2 + 0], nplan.channels(1, 0).size());
}

// ---------------------------------------------------------------------------
// Forward-frame codec.

TEST(ForwardFrame, RoundTripsBareBodiesInChannelOrder) {
  // Channel list of 3; records present on channels 0 and 2 with distinct
  // widths. Bodies are bare kGhostDelta records (headerless: nb doubles).
  const std::vector<double> body0 = {1.5, -2.5};
  const std::vector<double> body2 = {7.0};
  const wire::ForwardEntry entries[] = {{0, body0}, {2, body2}};
  std::vector<double> frame(wire::forward_frame_doubles(3, 3));
  wire::encode_forward_frame(3, entries, frame);
  EXPECT_TRUE(wire::is_forward_frame(frame));

  const std::size_t widths[] = {2, 5, 1};  // per-channel incoming widths
  std::vector<std::size_t> seen;
  wire::for_each_forwarded(
      frame, 3,
      [&](std::size_t c, std::span<const double> rest) {
        return wire::forwarded_body_doubles(wire::Family::kDelta, widths[c],
                                            rest);
      },
      [&](const wire::ForwardEntry& e) {
        seen.push_back(e.channel);
        if (e.channel == 0) {
          ASSERT_EQ(e.body.size(), 2u);
          EXPECT_EQ(e.body[0], 1.5);
          EXPECT_EQ(e.body[1], -2.5);
        } else {
          ASSERT_EQ(e.body.size(), 1u);
          EXPECT_EQ(e.body[0], 7.0);
        }
      });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 2}));
}

TEST(ForwardFrame, BitmapSpansMultipleWordsPast64Channels) {
  // 70 channels -> 2 bitmap words; a record on channel 65 exercises the
  // second word on both sides.
  const std::vector<double> body = {3.0, 4.0, 5.0};
  const wire::ForwardEntry entries[] = {{65, body}};
  std::vector<double> frame(wire::forward_frame_doubles(70, 3));
  wire::encode_forward_frame(70, entries, frame);
  EXPECT_EQ(wire::forward_bitmap_words(70), 2u);

  std::size_t hits = 0;
  wire::for_each_forwarded(
      frame, 70,
      [&](std::size_t, std::span<const double> rest) {
        return wire::forwarded_body_doubles(wire::Family::kDelta, 3, rest);
      },
      [&](const wire::ForwardEntry& e) {
        ++hits;
        EXPECT_EQ(e.channel, 65u);
        EXPECT_EQ(e.body.size(), 3u);
      });
  EXPECT_EQ(hits, 1u);
}

TEST(ForwardFrame, MalformedFramesThrowStructuredErrors) {
  const std::vector<double> body = {1.0};
  const wire::ForwardEntry entries[] = {{1, body}};
  std::vector<double> frame(wire::forward_frame_doubles(2, 1));
  wire::encode_forward_frame(2, entries, frame);
  auto len = [&](std::size_t, std::span<const double> rest) {
    return wire::forwarded_body_doubles(wire::Family::kDelta, 1, rest);
  };
  auto sink = [](const wire::ForwardEntry&) {};

  // Truncated: drop the body.
  std::vector<double> cut(frame.begin(), frame.end() - 1);
  EXPECT_THROW(wire::for_each_forwarded(std::span<const double>(cut), 2, len,
                                        sink),
               wire::DecodeError);
  // Wrong magic.
  std::vector<double> bad = frame;
  bad[0] = 0.0;
  EXPECT_THROW(wire::for_each_forwarded(std::span<const double>(bad), 2, len,
                                        sink),
               wire::DecodeError);
  // Trailing doubles after the declared bodies.
  std::vector<double> extra = frame;
  extra.push_back(9.0);
  EXPECT_THROW(wire::for_each_forwarded(std::span<const double>(extra), 2,
                                        len, sink),
               wire::DecodeError);
  // A stray bit past the plan's channel count.
  std::vector<double> stray = frame;
  stray[1] = std::bit_cast<double>(std::bit_cast<std::uint64_t>(stray[1]) |
                                   (1ULL << 5));
  EXPECT_THROW(wire::for_each_forwarded(std::span<const double>(stray), 2,
                                        len, sink),
               wire::DecodeError);
}

// ---------------------------------------------------------------------------
// Runtime tier accounting: hand-computed hop and byte math.

TEST(NodeRuntime, TierAccountingMatchesHandComputedHops) {
  // 4 ranks on 2 nodes: node0 = {0, 1} (leader 0), node1 = {2, 3}
  // (leader 2). Pretend the plan has 4 channels per inter-node pair.
  const auto topo = simmpi::NodeTopology::ranks_per_node(4, 2);
  simmpi::Runtime rt(4);
  simmpi::NodeRoutingOptions nro;
  nro.route_via_leaders = true;
  nro.pair_channel_counts = {0, 4, 4, 0};
  rt.set_node_topology(&topo, nro);
  ASSERT_NE(rt.node_topology(), nullptr);
  EXPECT_TRUE(rt.node_routing());

  // Two puts cross node0 -> node1 under one tag: a group of 2.
  rt.put(0, 2, simmpi::MsgTag::kSolve, std::vector<double>{1.0});
  rt.put(1, 3, simmpi::MsgTag::kSolve, std::vector<double>{2.0, 3.0});
  // One intra-node put: always a direct hop.
  rt.put(0, 1, simmpi::MsgTag::kSolve, std::vector<double>{4.0});
  rt.fence();

  // Delivery is unchanged by routing (hop accounting only).
  ASSERT_EQ(rt.window(2).size(), 1u);
  EXPECT_EQ(rt.window(2)[0].source, 0);
  ASSERT_EQ(rt.window(3).size(), 1u);
  EXPECT_EQ(rt.window(3)[0].source, 1);
  ASSERT_EQ(rt.window(1).size(), 1u);

  const auto& cs = rt.stats();
  // Intra tier: relay-up 1 -> leader 0 (2 doubles = 32B), relay-down
  // leader 2 -> 3 (2 doubles = 32B), direct 0 -> 1 (1 double = 24B).
  EXPECT_EQ(cs.intra_messages(), 3u);
  EXPECT_EQ(cs.intra_bytes(), 32u + 32u + 24u);
  // Inter tier: one leader->leader frame. W = ceil(4/64) = 1 bitmap word;
  // bytes = message_bytes(1 magic + 1 word + 3 body doubles) = 16 + 40.
  EXPECT_EQ(cs.inter_messages(), 1u);
  EXPECT_EQ(cs.inter_bytes(), simmpi::message_bytes(5));
  EXPECT_EQ(cs.forward_frames(), 1u);
  EXPECT_EQ(cs.forwarded_records(), 2u);
}

TEST(NodeRuntime, SingleRecordGroupsShipBareAndClassifierChargesDirect) {
  const auto topo = simmpi::NodeTopology::ranks_per_node(4, 2);
  // Routing on: a lone inter-node put from a leader to a leader pays
  // exactly its direct cost (no frame overhead, no relays).
  {
    simmpi::Runtime rt(4);
    simmpi::NodeRoutingOptions nro;
    nro.pair_channel_counts = {0, 4, 4, 0};
    rt.set_node_topology(&topo, nro);
    rt.put(0, 2, simmpi::MsgTag::kSolve, std::vector<double>{1.0});
    rt.fence();
    EXPECT_EQ(rt.stats().inter_messages(), 1u);
    EXPECT_EQ(rt.stats().inter_bytes(), simmpi::message_bytes(1));
    EXPECT_EQ(rt.stats().intra_messages(), 0u);
    EXPECT_EQ(rt.stats().forward_frames(), 1u);
    EXPECT_EQ(rt.stats().forwarded_records(), 1u);
  }
  // Routing off: the topology only classifies; every put is a direct hop
  // in its tier and no forwarding happens.
  {
    simmpi::Runtime rt(4);
    simmpi::NodeRoutingOptions nro;
    nro.route_via_leaders = false;
    rt.set_node_topology(&topo, nro);
    EXPECT_FALSE(rt.node_routing());
    rt.put(1, 3, simmpi::MsgTag::kSolve, std::vector<double>{2.0, 3.0});
    rt.put(0, 1, simmpi::MsgTag::kSolve, std::vector<double>{4.0});
    rt.fence();
    EXPECT_EQ(rt.stats().inter_messages(), 1u);
    EXPECT_EQ(rt.stats().inter_bytes(), simmpi::message_bytes(2));
    EXPECT_EQ(rt.stats().intra_messages(), 1u);
    EXPECT_EQ(rt.stats().intra_bytes(), simmpi::message_bytes(1));
    EXPECT_EQ(rt.stats().forward_frames(), 0u);
    EXPECT_EQ(rt.stats().forwarded_records(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Driver-level invariants.

std::string trace_bytes(const dist::DistRunResult& r) {
  EXPECT_TRUE(r.trace_log != nullptr);
  if (!r.trace_log) return {};
  std::ostringstream os;
  trace::write_jsonl(os, *r.trace_log, {});
  return os.str();
}

dist::DistRunOptions node_options(int num_nodes, bool route) {
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 30;
  opt.num_nodes = num_nodes;
  opt.node_route = route;
  return opt;
}

TEST(NodeDriver, TopologyNeverChangesSolverResults) {
  auto p = make_problem(12, 8, 17);
  for (auto m : {dist::DistMethod::kBlockJacobi,
                 dist::DistMethod::kMulticolorBlockGs,
                 dist::DistMethod::kParallelSouthwell,
                 dist::DistMethod::kDistributedSouthwell}) {
    dist::DistRunOptions flat;
    flat.max_parallel_steps = 30;
    auto base = dist::run_distributed(m, p.a, p.part, p.b, p.x0, flat);
    // 2 nodes x 4 ranks: big enough groups that aggregation strictly
    // shrinks bytes for every method (a group of N saves 16N - 24 - 8W
    // bytes, so pairs of puts alone would only break even).
    auto direct = dist::run_distributed(m, p.a, p.part, p.b, p.x0,
                                        node_options(2, /*route=*/false));
    auto routed = dist::run_distributed(m, p.a, p.part, p.b, p.x0,
                                        node_options(2, /*route=*/true));
    // Bit-identical trajectories: the topology re-prices the wire, it
    // never changes what the wire delivers.
    EXPECT_EQ(base.residual_norm, direct.residual_norm)
        << dist::method_name(m);
    EXPECT_EQ(base.residual_norm, routed.residual_norm)
        << dist::method_name(m);
    EXPECT_EQ(base.final_x, direct.final_x) << dist::method_name(m);
    EXPECT_EQ(base.final_x, routed.final_x) << dist::method_name(m);
    // Logical comm totals (what solvers sent) are identical too.
    EXPECT_EQ(base.comm_totals.msgs, routed.comm_totals.msgs);
    EXPECT_EQ(base.comm_totals.bytes, routed.comm_totals.bytes);
    // Tier totals exist exactly when a topology was attached.
    EXPECT_FALSE(base.node_totals.has_value());
    ASSERT_TRUE(direct.node_totals.has_value());
    ASSERT_TRUE(routed.node_totals.has_value());
    // Routing strictly reduces the inter-node tier on both axes and never
    // invents inter-node traffic.
    EXPECT_LT(routed.node_totals->msgs_inter, direct.node_totals->msgs_inter)
        << dist::method_name(m);
    EXPECT_LT(routed.node_totals->bytes_inter,
              direct.node_totals->bytes_inter)
        << dist::method_name(m);
    EXPECT_GT(routed.node_totals->forward_frames, 0u);
    // The classifier's two tiers partition the flat physical traffic.
    EXPECT_EQ(direct.node_totals->msgs_intra + direct.node_totals->msgs_inter,
              base.comm_totals.msgs);
  }
}

TEST(NodeDriver, FlatTopologyTraceIsByteIdenticalToNoTopology) {
  auto p = make_problem(12, 6, 11);
  dist::DistRunOptions none;
  none.max_parallel_steps = 25;
  none.trace.enabled = true;
  auto flat = none;
  flat.ranks_per_node = 1;  // flat: one rank per node
  auto a = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                 p.a, p.part, p.b, p.x0, none);
  auto b = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                 p.a, p.part, p.b, p.x0, flat);
  EXPECT_FALSE(b.node_totals.has_value());
  EXPECT_EQ(trace_bytes(a), trace_bytes(b));
}

TEST(NodeDriver, RoutedRunsAreBitIdenticalAcrossBackends) {
  auto p = make_problem(12, 8, 17);
  for (auto m : {dist::DistMethod::kParallelSouthwell,
                 dist::DistMethod::kDistributedSouthwell}) {
    auto seq_opt = node_options(4, true);
    seq_opt.trace.enabled = true;
    auto thr_opt = seq_opt;
    thr_opt.backend = simmpi::BackendKind::kThreadPool;
    thr_opt.num_threads = 3;
    auto a = dist::run_distributed(m, p.a, p.part, p.b, p.x0, seq_opt);
    auto b = dist::run_distributed(m, p.a, p.part, p.b, p.x0, thr_opt);
    EXPECT_EQ(a.residual_norm, b.residual_norm) << dist::method_name(m);
    EXPECT_EQ(a.final_x, b.final_x) << dist::method_name(m);
    ASSERT_TRUE(a.node_totals.has_value());
    ASSERT_TRUE(b.node_totals.has_value());
    EXPECT_EQ(a.node_totals->msgs_inter, b.node_totals->msgs_inter);
    EXPECT_EQ(a.node_totals->bytes_inter, b.node_totals->bytes_inter);
    EXPECT_EQ(a.node_totals->forwarded_records,
              b.node_totals->forwarded_records);
    // The whole event stream (hop events included) is byte-identical.
    EXPECT_EQ(trace_bytes(a), trace_bytes(b)) << dist::method_name(m);
  }
}

// ---------------------------------------------------------------------------
// Composition with the other comm-stack features.

TEST(NodeComposition, RoutingComposesWithCoalescing) {
  auto p = make_problem(12, 8, 17);
  auto plain = node_options(4, true);
  auto coal = plain;
  coal.coalesce_messages = true;
  auto a = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                 p.a, p.part, p.b, p.x0, plain);
  auto b = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                 p.a, p.part, p.b, p.x0, coal);
  EXPECT_EQ(a.residual_norm, b.residual_norm);
  EXPECT_EQ(a.final_x, b.final_x);
  ASSERT_TRUE(b.node_totals.has_value());
  // Coalescing shrinks the physical put count, so the routed inter-node
  // tier can only get cheaper; forwarded records still count logical
  // records per physical put, so they drop with coalescing.
  EXPECT_LE(b.node_totals->msgs_inter, a.node_totals->msgs_inter);
  EXPECT_GT(b.node_totals->forward_frames, 0u);
}

TEST(NodeComposition, RoutingComposesWithFaultInjection) {
  auto p = make_problem(14, 12, 31);
  auto base = node_options(4, true);
  base.max_parallel_steps = 150;
  base.watchdog.enabled = true;
  base.resilience.enabled = true;  // lost records need refresh to converge
  auto faulty = base;
  faulty.faults.defaults.drop_probability = 0.02;
  faulty.faults.defaults.duplicate_probability = 0.01;
  auto clean = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                     p.a, p.part, p.b, p.x0, base);
  auto r = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                 p.a, p.part, p.b, p.x0, faulty);
  EXPECT_FALSE(r.watchdog.fired) << r.watchdog.reason;
  EXPECT_LT(r.residual_norm.back(), 0.05);
  ASSERT_TRUE(r.fault_summary.has_value());
  EXPECT_GT(r.fault_summary->msgs_dropped, 0u);
  ASSERT_TRUE(r.node_totals.has_value());
  // Fault draws are identical with or without a topology (the hop
  // pre-pass re-asks the same stateless hash), so the faulty run still
  // converges and its tier totals stay well-formed.
  EXPECT_GT(r.node_totals->msgs_inter, 0u);
  EXPECT_GT(clean.node_totals->forward_frames, 0u);
}

TEST(NodeComposition, RoutingComposesWithAsyncDelivery) {
  auto p = make_problem(12, 8, 17);
  auto opt = node_options(4, true);
  opt.async = true;
  opt.async_min_latency = 0;
  opt.async_max_latency = 3;
  opt.max_staleness = 4;
  auto bare = opt;
  bare.num_nodes = 0;  // same async run without a topology
  auto a = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                 p.a, p.part, p.b, p.x0, opt);
  auto b = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                 p.a, p.part, p.b, p.x0, bare);
  // The topology changes neither the async trajectory nor the delivery
  // schedule.
  EXPECT_EQ(a.residual_norm, b.residual_norm);
  EXPECT_EQ(a.final_x, b.final_x);
  ASSERT_TRUE(a.async_totals.has_value());
  ASSERT_TRUE(b.async_totals.has_value());
  EXPECT_EQ(a.async_totals->delivered, b.async_totals->delivered);
  EXPECT_EQ(a.async_totals->staleness_sum, b.async_totals->staleness_sum);
  ASSERT_TRUE(a.node_totals.has_value());
  EXPECT_GT(a.node_totals->forward_frames, 0u);
}

// ---------------------------------------------------------------------------
// Analyzer: tiered reconstruction and metric cross-checks.

TEST(NodeAnalysis, TieredCriticalPathReproducesModeledSeconds) {
  auto p = make_problem(12, 8, 17);
  auto opt = node_options(4, true);
  opt.trace.enabled = true;
  auto r = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                 p.a, p.part, p.b, p.x0, opt);
  ASSERT_TRUE(r.trace_log != nullptr);
  auto run = analysis::from_trace_log(*r.trace_log, "node routed");
  const auto cp = analysis::analyze_critical_path(run, simmpi::MachineModel{});
  EXPECT_TRUE(cp.tiered);
  EXPECT_TRUE(cp.model_matches)
      << "tiered critical path must rebuild every fence's modeled seconds "
         "bit-exactly";
}

TEST(NodeAnalysis, NodeReportMatchesRuntimeTotalsAndMetrics) {
  auto p = make_problem(12, 8, 17);
  auto opt = node_options(4, true);
  opt.trace.enabled = true;
  auto r = dist::run_distributed(dist::DistMethod::kParallelSouthwell,
                                 p.a, p.part, p.b, p.x0, opt);
  ASSERT_TRUE(r.trace_log != nullptr);
  ASSERT_TRUE(r.node_totals.has_value());
  auto run = analysis::from_trace_log(*r.trace_log, "node routed");
  const auto rep = analysis::analyze_node_routing(run);
  EXPECT_TRUE(rep.any());
  // Event tallies reproduce the runtime's CommStats tier totals...
  EXPECT_EQ(rep.msgs_intra, r.node_totals->msgs_intra);
  EXPECT_EQ(rep.bytes_intra, r.node_totals->bytes_intra);
  EXPECT_EQ(rep.msgs_inter, r.node_totals->msgs_inter);
  EXPECT_EQ(rep.bytes_inter, r.node_totals->bytes_inter);
  EXPECT_EQ(rep.forwarded_records, r.node_totals->forwarded_records);
  EXPECT_EQ(rep.hops_by_kind[trace::kHopInterLeader],
            r.node_totals->forward_frames);
  // ...and the simmpi.node_* metrics the tracer captured agree as well.
  ASSERT_TRUE(rep.metric_msgs_intra.has_value());
  EXPECT_EQ(static_cast<std::uint64_t>(*rep.metric_msgs_intra),
            rep.msgs_intra);
  ASSERT_TRUE(rep.metric_forward_frames.has_value());
  EXPECT_EQ(static_cast<std::uint64_t>(*rep.metric_forward_frames),
            rep.hops_by_kind[trace::kHopInterLeader]);
  // Leader pairs name actual leaders and account for every frame.
  const auto topo = simmpi::NodeTopology::ranks_per_node(8, 2);
  std::uint64_t frames = 0;
  for (const auto& lp : rep.leader_pairs) {
    EXPECT_TRUE(topo.is_leader(lp.src));
    EXPECT_TRUE(topo.is_leader(lp.dst));
    frames += lp.frames;
  }
  EXPECT_EQ(frames, rep.hops_by_kind[trace::kHopInterLeader]);
}

}  // namespace
}  // namespace dsouth
