/// Parameterized property sweeps: invariants that must hold across matrix
/// families, partition sizes and seeds (TEST_P suites, as the project's
/// testing guideline prescribes for property-style coverage).

#include <gtest/gtest.h>

#include <tuple>

#include "core/dist_southwell_scalar.hpp"
#include "dist/driver.hpp"
#include "graph/partition.hpp"
#include "sparse/fem.hpp"
#include "sparse/mesh.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace dsouth {
namespace {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

CsrMatrix family_matrix(const std::string& family) {
  if (family == "poisson5") {
    return sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(14, 14))
        .a;
  }
  if (family == "poisson9") {
    return sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_9pt(13, 13))
        .a;
  }
  if (family == "poisson3d") {
    return sparse::symmetric_unit_diagonal_scale(
               sparse::poisson3d_7pt(6, 6, 6))
        .a;
  }
  if (family == "aniso") {
    sparse::StencilOptions opt;
    opt.eps_y = 0.05;
    return sparse::symmetric_unit_diagonal_scale(
               sparse::poisson2d_5pt(14, 14, opt))
        .a;
  }
  if (family == "jump") {
    sparse::StencilOptions opt;
    opt.jump_contrast = 1e3;
    opt.jump_block = 4;
    return sparse::symmetric_unit_diagonal_scale(
               sparse::poisson2d_5pt(14, 14, opt))
        .a;
  }
  if (family == "fem") {
    auto mesh = sparse::make_perturbed_grid_mesh(15, 15, 0.25, 9);
    return sparse::symmetric_unit_diagonal_scale(
               sparse::assemble_p1_poisson(mesh))
        .a;
  }
  if (family == "elasticity") {
    auto mesh = sparse::make_perturbed_grid_mesh(11, 11, 0.2, 9);
    sparse::ElasticityOptions opt;
    opt.poisson_ratio = 0.4;
    return sparse::symmetric_unit_diagonal_scale(
               sparse::assemble_p1_elasticity(mesh, opt))
        .a;
  }
  ADD_FAILURE() << "unknown family " << family;
  return CsrMatrix();
}

// ---------------------------------------------------------------------
// Distributed-method invariants across (family, ranks).

class DistInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, index_t>> {};

TEST_P(DistInvariants, ResidualsExactAndCommAccounted) {
  const auto& [family, ranks] = GetParam();
  auto a = family_matrix(family);
  std::vector<value_t> b(static_cast<std::size_t>(a.rows()), 0.0);
  std::vector<value_t> x0(b.size());
  util::Rng rng(31);
  rng.fill_uniform(x0, -1.0, 1.0);
  sparse::normalize_initial_residual(a, b, x0);
  auto g = graph::Graph::from_matrix_structure(a);
  auto part = graph::partition_recursive_bisection(
      g, std::min<index_t>(ranks, a.rows()));
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 12;
  for (auto method : {dist::DistMethod::kBlockJacobi,
                      dist::DistMethod::kParallelSouthwell,
                      dist::DistMethod::kDistributedSouthwell}) {
    auto r = dist::run_distributed(method, a, part, b, x0, opt);
    // Initial state normalized.
    EXPECT_NEAR(r.residual_norm[0], 1.0, 1e-12);
    // Cumulative series monotone; comm decomposes by tag.
    for (std::size_t k = 1; k < r.comm_cost.size(); ++k) {
      EXPECT_GE(r.comm_cost[k] + 1e-15, r.comm_cost[k - 1]);
      EXPECT_NEAR(r.comm_cost[k], r.solve_comm[k] + r.res_comm[k], 1e-12);
    }
    // Active counts within [0, P].
    for (index_t active : r.active_ranks) {
      EXPECT_GE(active, 0);
      EXPECT_LE(active, static_cast<index_t>(r.num_ranks));
    }
    // All these SPD problems converge under every method at these sizes.
    EXPECT_LT(r.residual_norm.back(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndRanks, DistInvariants,
    ::testing::Combine(::testing::Values("poisson5", "poisson9", "poisson3d",
                                         "aniso", "jump", "fem",
                                         "elasticity"),
                       ::testing::Values<index_t>(4, 16, 49)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_P" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Scalar Distributed Southwell invariants across seeds.

class DsScalarSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DsScalarSeeds, ConvergesWithBoundedCorrections) {
  auto a = family_matrix("fem");
  std::vector<value_t> b(static_cast<std::size_t>(a.rows()));
  std::vector<value_t> x0(b.size(), 0.0);
  util::Rng rng(GetParam());
  rng.fill_uniform(b, -1.0, 1.0);
  sparse::scale(1.0 / sparse::norm2(b), b);
  core::DistSouthwellScalarOptions opt;
  opt.base.max_sweeps = 4;
  auto r = core::run_distributed_southwell_scalar(a, b, x0, opt);
  EXPECT_FALSE(r.stalled);
  EXPECT_LT(r.history.final_residual_norm(), 0.5);
  // Residual-update traffic exists but does not dominate solve traffic in
  // the scalar form.
  EXPECT_GT(r.solve_messages, 0u);
  EXPECT_LT(r.residual_messages, 2 * r.solve_messages);
  // Relaxations per step never exceed n.
  for (index_t c : r.relaxed_per_step) {
    EXPECT_GE(c, 0);
    EXPECT_LE(c, a.rows());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DsScalarSeeds,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u));

// ---------------------------------------------------------------------
// Partitioner invariants across (k, seed).

class PartitionSweep
    : public ::testing::TestWithParam<std::tuple<index_t, std::uint64_t>> {};

TEST_P(PartitionSweep, ValidBalancedNoEmpty) {
  const auto& [k, seed] = GetParam();
  auto a = sparse::poisson2d_9pt(18, 18);
  auto g = graph::Graph::from_matrix_structure(a);
  graph::PartitionOptions opt;
  opt.seed = seed;
  auto p = graph::partition_recursive_bisection(g, k, opt);
  ASSERT_TRUE(p.is_valid(g.num_vertices()));
  auto q = graph::evaluate_partition(g, p);
  EXPECT_EQ(q.empty_parts, 0);
  // Every part within one of the slack band around ideal.
  auto sizes = p.part_sizes();
  const double ideal =
      static_cast<double>(g.num_vertices()) / static_cast<double>(k);
  for (index_t s : sizes) {
    EXPECT_GE(static_cast<double>(s), ideal * 0.5 - 2.0);
    EXPECT_LE(static_cast<double>(s), ideal * 1.6 + 2.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KAndSeed, PartitionSweep,
    ::testing::Combine(::testing::Values<index_t>(2, 3, 8, 27, 81, 324),
                       ::testing::Values<std::uint64_t>(1, 99)),
    [](const auto& info) {
      // Built by append (not operator+ chains): GCC 12's -Wrestrict
      // false-positives on const char* + std::string&& under -O3.
      std::string name = "k";
      name += std::to_string(std::get<0>(info.param));
      name += "_s";
      name += std::to_string(std::get<1>(info.param));
      return name;
    });

}  // namespace
}  // namespace dsouth
