#include "graph/rcm.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sparse/stencils.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsouth::graph {
namespace {

TEST(Rcm, OrderIsAPermutation) {
  auto g = Graph::from_matrix_structure(sparse::poisson2d_5pt(7, 6));
  auto perm = rcm_order(g);
  ASSERT_EQ(perm.size(), 42u);
  auto sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (index_t i = 0; i < 42; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Rcm, ReducesBandwidthOfShuffledPoisson) {
  // Shuffle a Poisson matrix to destroy its natural banding, then check
  // RCM restores a bandwidth close to the grid dimension.
  auto a = sparse::poisson2d_5pt(12, 12);
  util::Rng rng(3);
  std::vector<index_t> shuffle(static_cast<std::size_t>(a.rows()));
  for (index_t i = 0; i < a.rows(); ++i) {
    shuffle[static_cast<std::size_t>(i)] = i;
  }
  rng.shuffle(std::span<index_t>(shuffle));
  auto shuffled = permute_symmetric(a, shuffle);
  const index_t bw_shuffled = bandwidth(shuffled);

  auto g = Graph::from_matrix_structure(shuffled);
  auto perm = rcm_order(g);
  auto ordered = permute_symmetric(shuffled, perm);
  const index_t bw_rcm = bandwidth(ordered);
  EXPECT_LT(bw_rcm, bw_shuffled / 2);
  EXPECT_LE(bw_rcm, 30);  // grid dim 12 -> RCM bandwidth ~O(12)
}

TEST(Rcm, PermuteSymmetricPreservesValues) {
  auto a = sparse::poisson2d_9pt(4, 4);
  auto g = Graph::from_matrix_structure(a);
  auto perm = rcm_order(g);
  auto b = permute_symmetric(a, perm);
  EXPECT_EQ(b.nnz(), a.nnz());
  EXPECT_TRUE(b.is_symmetric(1e-14));
  for (index_t ni = 0; ni < b.rows(); ++ni) {
    for (index_t nj : b.row_cols(ni)) {
      EXPECT_DOUBLE_EQ(
          b.at(ni, nj),
          a.at(perm[static_cast<std::size_t>(ni)],
               perm[static_cast<std::size_t>(nj)]));
    }
  }
}

TEST(Rcm, InvertPermutationRoundTrip) {
  std::vector<index_t> perm{2, 0, 3, 1};
  auto inv = invert_permutation(perm);
  EXPECT_EQ(inv[2], 0);
  EXPECT_EQ(inv[0], 1);
  EXPECT_EQ(inv[3], 2);
  EXPECT_EQ(inv[1], 3);
  auto back = invert_permutation(inv);
  EXPECT_EQ(back, perm);
}

TEST(Rcm, InvertRejectsNonPermutations) {
  EXPECT_THROW(invert_permutation({0, 0}), util::CheckError);
  EXPECT_THROW(invert_permutation({0, 5}), util::CheckError);
}

TEST(Rcm, DisconnectedGraphCoversAllVertices) {
  std::vector<std::pair<index_t, index_t>> edges{{0, 1}, {2, 3}};
  auto g = Graph::from_edges(5, edges);
  auto perm = rcm_order(g);
  auto sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (index_t i = 0; i < 5; ++i) {
    EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  }
}

TEST(Rcm, BandwidthOfDiagonalIsZero) {
  sparse::CsrMatrix d(3, 3, {0, 1, 2, 3}, {0, 1, 2}, {1.0, 1.0, 1.0});
  EXPECT_EQ(bandwidth(d), 0);
}

}  // namespace
}  // namespace dsouth::graph
