#include "core/parallel_southwell.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/classic.hpp"
#include "core/southwell.hpp"
#include "sparse/fem.hpp"
#include "sparse/mesh.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace dsouth::core {
namespace {

struct Problem {
  CsrMatrix a;
  std::vector<value_t> b, x0;
};

Problem scaled_poisson(index_t nx, index_t ny, std::uint64_t seed) {
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(nx, ny)).a;
  p.b.resize(static_cast<std::size_t>(p.a.rows()));
  p.x0.assign(p.b.size(), 0.0);
  util::Rng rng(seed);
  rng.fill_uniform(p.b, -1.0, 1.0);
  sparse::scale(1.0 / sparse::norm2(p.b), p.b);
  return p;
}

TEST(Selection, PicksLocalMaximaOnly) {
  auto a = sparse::symmetric_unit_diagonal_scale(
               sparse::poisson2d_5pt(3, 3)).a;
  // Weights on a 3x3 grid: make the center dominant, plus one corner that
  // dominates its own neighborhood.
  std::vector<value_t> w{0.9, 0.1, 0.1,
                         0.1, 1.0, 0.1,
                         0.1, 0.1, 0.2};
  auto sel = parallel_southwell_selection(a, w);
  std::set<index_t> s(sel.begin(), sel.end());
  EXPECT_TRUE(s.count(4));  // global max
  EXPECT_TRUE(s.count(0));  // corner 0.9: neighbors are 1 and 3 (0.1 each)
  EXPECT_TRUE(s.count(8));  // corner 0.2: neighbors 5 and 7 (0.1 each)
  EXPECT_FALSE(s.count(1));
  EXPECT_FALSE(s.count(3));
}

TEST(Selection, SelectedSetIsIndependentUnderDistinctWeights) {
  // With pairwise-distinct weights, two adjacent rows can't both be local
  // maxima.
  auto p = scaled_poisson(6, 6, 21);
  util::Rng rng(99);
  std::vector<value_t> w(36);
  rng.fill_uniform(w, 0.1, 1.0);
  auto sel = parallel_southwell_selection(p.a, w);
  std::set<index_t> s(sel.begin(), sel.end());
  for (index_t i : sel) {
    for (index_t j : p.a.row_cols(i)) {
      if (j != i) {
        EXPECT_FALSE(s.count(j)) << i << " adj " << j;
      }
    }
  }
}

TEST(Selection, ZeroWeightsNeverSelected) {
  auto p = scaled_poisson(3, 3, 22);
  std::vector<value_t> w(9, 0.0);
  EXPECT_TRUE(parallel_southwell_selection(p.a, w).empty());
}

TEST(Selection, TiesSelectBothSides) {
  auto p = scaled_poisson(3, 3, 23);
  std::vector<value_t> w(9, 1.0);
  auto sel = parallel_southwell_selection(p.a, w);
  EXPECT_EQ(sel.size(), 9u);
}

TEST(ParallelSouthwell, GlobalMaxAlwaysRelaxesSoNoStall) {
  auto p = scaled_poisson(8, 8, 24);
  ParallelSouthwellOptions opt;
  opt.base.max_sweeps = 2;
  auto h = run_parallel_southwell(p.a, p.b, p.x0, opt);
  EXPECT_GE(h.num_parallel_steps(), 1u);
  // Every step relaxed at least one row.
  for (std::size_t k = 1; k < h.points.size(); ++k) {
    EXPECT_GT(h.points[k].relaxations, h.points[k - 1].relaxations);
  }
}

TEST(ParallelSouthwell, ConvergesToTarget) {
  auto p = scaled_poisson(8, 8, 25);
  ParallelSouthwellOptions opt;
  opt.base.max_sweeps = 1000;
  opt.base.target_residual = 1e-6;
  auto h = run_parallel_southwell(p.a, p.b, p.x0, opt);
  EXPECT_LE(h.final_residual_norm(), 1e-6);
}

TEST(ParallelSouthwell, FewerParallelStepsThanSequentialRelaxations) {
  // The point of the method: many rows per parallel step.
  auto p = scaled_poisson(10, 10, 26);
  ParallelSouthwellOptions opt;
  opt.base.max_sweeps = 2;
  auto h = run_parallel_southwell(p.a, p.b, p.x0, opt);
  EXPECT_LT(h.num_parallel_steps(),
            static_cast<std::size_t>(h.total_relaxations()));
}

TEST(ParallelSouthwell, TracksSequentialSouthwellAtLowAccuracy) {
  // Fig. 2: Par SW converges almost as fast as sequential SW in
  // relaxations at low accuracy.
  auto mesh = sparse::make_perturbed_grid_mesh(21, 11, 0.25, 101);
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(
            sparse::assemble_p1_poisson(mesh)).a;
  p.b.resize(static_cast<std::size_t>(p.a.rows()));
  p.x0.assign(p.b.size(), 0.0);
  util::Rng rng(27);
  rng.fill_uniform(p.b, -1.0, 1.0);
  sparse::scale(1.0 / sparse::norm2(p.b), p.b);

  ScalarRunOptions sopt;
  sopt.max_sweeps = 3;
  auto sw = run_sequential_southwell(p.a, p.b, p.x0, sopt);
  ParallelSouthwellOptions popt;
  popt.base.max_sweeps = 3;
  auto psw = run_parallel_southwell(p.a, p.b, p.x0, popt);
  auto sw_cost = sw.relaxations_to_reach(0.6);
  auto psw_cost = psw.relaxations_to_reach(0.6);
  ASSERT_TRUE(sw_cost.has_value());
  ASSERT_TRUE(psw_cost.has_value());
  EXPECT_LT(*psw_cost, 1.6 * *sw_cost);
}

TEST(ParallelSouthwell, StepCapRespected) {
  auto p = scaled_poisson(6, 6, 28);
  ParallelSouthwellOptions opt;
  opt.base.max_sweeps = 100;
  opt.max_parallel_steps = 5;
  auto h = run_parallel_southwell(p.a, p.b, p.x0, opt);
  EXPECT_LE(h.num_parallel_steps(), 5u);
}

}  // namespace
}  // namespace dsouth::core
