/// Tests for the host-side profiling subsystem (src/prof): aggregation
/// and histogram bookkeeping, the ScopedPhase null-test contract, the
/// allocation hook (this binary links it via
/// dsouth_enable_alloc_tracking), and the deterministic-safety acceptance
/// criteria — attaching a profiler never changes solver iterates or the
/// deterministic trace content, and with no profiler the exported trace
/// is byte-identical across execution backends. Plus the observability
/// satellites: MetricsRegistry under concurrent rank writers and
/// ChromeTraceWriter JSON string escaping.

#include "prof/prof.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dist/driver.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "trace/export.hpp"
#include "trace/metrics.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace dsouth::prof {
namespace {

using dist::DistMethod;
using dist::DistRunOptions;
using dist::DistRunResult;
using sparse::index_t;
using sparse::value_t;

// ---------------------------------------------------------------------------
// (a) Profiler aggregation.
// ---------------------------------------------------------------------------

TEST(Profiler, AggregatesSpansPerLaneAndPhase) {
  Profiler prof(2);
  EXPECT_EQ(prof.num_lanes(), 3);
  EXPECT_EQ(prof.runtime_lane(), 2);

  prof.record(0, PhaseId::kRelax, 0, 5);   // bit_width(5) = 3
  prof.record(0, PhaseId::kRelax, 10, 9);  // bit_width(9) = 4
  prof.record(1, PhaseId::kRelax, 0, 100);
  prof.record(2, PhaseId::kFence, 0, 0);  // bucket 0 holds 0-ns spans

  const PhaseStats& r0 = prof.stats(0, PhaseId::kRelax);
  EXPECT_EQ(r0.count, 2u);
  EXPECT_EQ(r0.total_ns, 14u);
  EXPECT_EQ(r0.max_ns, 9u);
  EXPECT_EQ(r0.hist[3], 1u);
  EXPECT_EQ(r0.hist[4], 1u);

  EXPECT_EQ(prof.stats(2, PhaseId::kFence).hist[0], 1u);
  EXPECT_EQ(prof.stats(1, PhaseId::kAbsorb).count, 0u);

  const PhaseStats all = prof.lane_sum(PhaseId::kRelax);
  EXPECT_EQ(all.count, 3u);
  EXPECT_EQ(all.total_ns, 114u);
  EXPECT_EQ(all.max_ns, 100u);
}

TEST(Profiler, SpanLogIsBoundedAndDropsAreCounted) {
  Profiler prof(1, /*span_capacity=*/2);
  prof.record(0, PhaseId::kStage, 0, 1);
  prof.record(0, PhaseId::kStage, 2, 1);
  prof.record(0, PhaseId::kStage, 4, 1);  // past capacity: dropped
  EXPECT_EQ(prof.spans(0).size(), 2u);
  EXPECT_EQ(prof.dropped_spans(), 1u);
  // Aggregates still see every span.
  EXPECT_EQ(prof.stats(0, PhaseId::kStage).count, 3u);
}

TEST(ScopedPhase, NullProfilerIsANoOp) {
  // The zero-cost-when-off contract: both ctor and dtor must tolerate a
  // null profiler (that is the permanent state of un-profiled runs).
  const ScopedPhase scope(nullptr, 0, PhaseId::kRelax);
}

TEST(ScopedPhase, RecordsOneSpanOnItsLane) {
  Profiler prof(2);
  {
    const ScopedPhase scope(&prof, 1, PhaseId::kAbsorb);
  }
  EXPECT_EQ(prof.stats(1, PhaseId::kAbsorb).count, 1u);
  EXPECT_EQ(prof.stats(0, PhaseId::kAbsorb).count, 0u);
  EXPECT_EQ(prof.lane_sum(PhaseId::kAbsorb).count, 1u);
}

// ---------------------------------------------------------------------------
// (b) Allocation hook (linked into this binary — see tests/CMakeLists.txt).
// ---------------------------------------------------------------------------

TEST(AllocHook, CountsOperatorNewTraffic) {
  ASSERT_TRUE(alloc_hook::available());
  const std::uint64_t allocs0 = alloc_hook::allocations();
  const std::uint64_t bytes0 = alloc_hook::bytes();
  {
    std::vector<double> v(1000);
    EXPECT_GT(v.size(), 0u);  // keep the allocation live
  }
  EXPECT_GE(alloc_hook::allocations(), allocs0 + 1);
  EXPECT_GE(alloc_hook::bytes(), bytes0 + 1000 * sizeof(double));
  EXPECT_GE(alloc_hook::frees(), 1u);
}

TEST(AllocHook, ProfilerWindowCapturesDeltas) {
  Profiler prof(1);
  prof.begin_alloc_window();
  { std::vector<char> v(1 << 12); EXPECT_EQ(v[0], 0); }
  prof.end_alloc_window();
  EXPECT_TRUE(prof.alloc_tracking());
  EXPECT_GE(prof.allocs_total(), 1u);
  EXPECT_GE(prof.allocs_bytes(), std::uint64_t{1} << 12);
}

// ---------------------------------------------------------------------------
// (c) Deterministic safety through the driver (the PR's acceptance bar).
// ---------------------------------------------------------------------------

struct Problem {
  sparse::CsrMatrix a;
  std::vector<value_t> b;
  std::vector<value_t> x0;
  graph::Partition part;
};

Problem make_problem() {
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(12, 12)).a;
  p.b.assign(static_cast<std::size_t>(p.a.rows()), 0.0);
  p.x0.resize(p.b.size());
  util::Rng rng(77);
  rng.fill_uniform(p.x0, -1.0, 1.0);
  sparse::normalize_initial_residual(p.a, p.b, p.x0);
  auto g = graph::Graph::from_matrix_structure(p.a);
  p.part = graph::partition_recursive_bisection(g, 4);
  return p;
}

DistRunResult run_once(Profiler* prof, simmpi::BackendKind backend) {
  auto p = make_problem();
  DistRunOptions opt;
  opt.max_parallel_steps = 12;
  opt.trace.enabled = true;
  opt.backend = backend;
  if (backend == simmpi::BackendKind::kThreadPool) opt.num_threads = 3;
  opt.profiler = prof;
  return dist::run_distributed(DistMethod::kDistributedSouthwell, p.a, p.part,
                               p.b, p.x0, opt);
}

std::string jsonl_of(const DistRunResult& r) {
  std::ostringstream os;
  trace::write_jsonl(os, *r.trace_log, {});
  return os.str();
}

/// The exported trace minus lines mentioning prof.* metrics — what must
/// be identical between prof-on and prof-off captures of the same run.
std::string strip_prof_lines(const std::string& jsonl) {
  std::istringstream is(jsonl);
  std::string out, line;
  while (std::getline(is, line)) {
    if (line.find("\"prof.") == std::string::npos) out += line + "\n";
  }
  return out;
}

TEST(ProfDriver, AttachingAProfilerNeverChangesIterates) {
  const auto plain = run_once(nullptr, simmpi::BackendKind::kSequential);
  Profiler prof(4);
  const auto profiled = run_once(&prof, simmpi::BackendKind::kSequential);

  ASSERT_EQ(plain.final_x.size(), profiled.final_x.size());
  for (std::size_t i = 0; i < plain.final_x.size(); ++i) {
    EXPECT_EQ(plain.final_x[i], profiled.final_x[i]) << "at " << i;
  }
  EXPECT_EQ(plain.comm_totals.msgs, profiled.comm_totals.msgs);
  EXPECT_EQ(plain.comm_totals.bytes, profiled.comm_totals.bytes);
  EXPECT_EQ(plain.residual_norm, profiled.residual_norm);

  // The traces agree everywhere except the advisory prof.* gauges the
  // driver registers only when a profiler rides along.
  const std::string with = jsonl_of(profiled);
  EXPECT_NE(with.find("prof.allocs_total"), std::string::npos);
  EXPECT_EQ(jsonl_of(plain), strip_prof_lines(with));
}

TEST(ProfDriver, ProfOffTraceIsByteIdenticalAcrossBackends) {
  const auto seq = run_once(nullptr, simmpi::BackendKind::kSequential);
  const auto thr = run_once(nullptr, simmpi::BackendKind::kThreadPool);
  EXPECT_EQ(jsonl_of(seq), jsonl_of(thr));
}

TEST(ProfDriver, ProfiledThreadedRunStaysBitIdentical) {
  const auto plain = run_once(nullptr, simmpi::BackendKind::kSequential);
  Profiler prof(4);
  const auto profiled = run_once(&prof, simmpi::BackendKind::kThreadPool);
  ASSERT_EQ(plain.final_x.size(), profiled.final_x.size());
  for (std::size_t i = 0; i < plain.final_x.size(); ++i) {
    EXPECT_EQ(plain.final_x[i], profiled.final_x[i]) << "at " << i;
  }
  // Deterministic trace content matches too (prof.* values are advisory
  // and excluded; they legitimately differ run to run).
  EXPECT_EQ(jsonl_of(plain), strip_prof_lines(jsonl_of(profiled)));
}

TEST(ProfDriver, PhaseAggregatesFollowTheLaneDiscipline) {
  Profiler prof(4);
  const auto res = run_once(&prof, simmpi::BackendKind::kSequential);

  // One kStep span per parallel step, on the runtime lane only.
  const auto& step = prof.stats(prof.runtime_lane(), PhaseId::kStep);
  EXPECT_EQ(step.count, res.steps_taken());
  EXPECT_EQ(prof.lane_sum(PhaseId::kStep).count, step.count);

  // Solver phases land on rank lanes; fence work on the runtime lane.
  EXPECT_GT(prof.lane_sum(PhaseId::kRelax).count, 0u);
  EXPECT_GT(prof.lane_sum(PhaseId::kAbsorb).count, 0u);
  EXPECT_EQ(prof.stats(prof.runtime_lane(), PhaseId::kRelax).count, 0u);
  const auto& fence = prof.stats(prof.runtime_lane(), PhaseId::kFence);
  EXPECT_GE(fence.count, step.count);

  // Nesting invariants (the same rules dsouth-analyze -check gates on).
  const auto nested =
      prof.stats(prof.runtime_lane(), PhaseId::kDeliveryPolicy).total_ns +
      prof.stats(prof.runtime_lane(), PhaseId::kNodePrepass).total_ns;
  EXPECT_LE(nested, fence.total_ns);
  for (int lane = 0; lane < prof.num_ranks(); ++lane) {
    const auto disjoint = prof.stats(lane, PhaseId::kAbsorb).total_ns +
                          prof.stats(lane, PhaseId::kRelax).total_ns +
                          prof.stats(lane, PhaseId::kStage).total_ns;
    EXPECT_LE(disjoint, step.total_ns) << "lane " << lane;
  }

  // The driver brackets the run with the allocation window.
  EXPECT_TRUE(prof.alloc_tracking());
  EXPECT_GT(prof.allocs_total(), 0u);
}

// ---------------------------------------------------------------------------
// (d) Satellite: MetricsRegistry under concurrent rank writers.
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, ConcurrentPerRankWritersAreExact) {
  // The registry's thread contract (one writer per rank slot, no atomics)
  // is what the threaded backend relies on; hammer it from real threads.
  constexpr int kRanks = 8;
  constexpr int kAdds = 20000;
  trace::MetricsRegistry m(kRanks);
  const auto id = m.register_metric("test.hits", trace::MetricKind::kCounter);
  std::vector<std::thread> threads;
  threads.reserve(kRanks);
  for (int rank = 0; rank < kRanks; ++rank) {
    threads.emplace_back([&m, id, rank] {
      for (int i = 0; i < kAdds; ++i) m.add(id, rank, 1.0);
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(m.find("test.hits"), id);
  EXPECT_EQ(m.total(id), static_cast<double>(kRanks) * kAdds);
  for (int rank = 0; rank < kRanks; ++rank) {
    EXPECT_EQ(m.value(id, rank), kAdds);
  }
}

// ---------------------------------------------------------------------------
// (e) Satellite: ChromeTraceWriter string escaping.
// ---------------------------------------------------------------------------

TEST(ChromeTraceWriter, EscapesSpanAndThreadNames) {
  const auto res = run_once(nullptr, simmpi::BackendKind::kSequential);
  std::ostringstream os;
  trace::ChromeTraceWriter writer(os);
  writer.add_run(*res.trace_log);
  const int pid = writer.last_pid();
  ASSERT_GE(pid, 0);
  const std::string hostile = "ph\"ase\\ with\nnewline\tand\x01" "ctl";
  writer.add_thread_name(pid, 99, hostile);
  writer.add_span(pid, 99, hostile, 1.5, 2.5);
  writer.finish();

  const std::string out = os.str();
  EXPECT_NE(out.find("ph\\\"ase\\\\ with\\nnewline\\tand\\u0001ctl"),
            std::string::npos);
  // The document survives a round-trip through a strict JSON parser, and
  // the hostile name comes back exactly.
  const auto doc = util::parse_json(out);
  int span_hits = 0, meta_hits = 0;
  for (const auto& ev : doc.at("traceEvents").as_array()) {
    if (const auto* name = ev.find("name")) {
      if (name->as_string() == hostile) ++span_hits;
    }
    if (const auto* args = ev.find("args")) {
      if (const auto* name = args->find("name")) {
        if (name->as_string() == hostile) ++meta_hits;
      }
    }
  }
  EXPECT_EQ(span_hits, 1);  // the X span carries the name directly
  EXPECT_EQ(meta_hits, 1);  // the thread_name metadata carries it in args
}

}  // namespace
}  // namespace dsouth::prof
