#include "dist/multicolor_block_gs.hpp"

#include <gtest/gtest.h>

#include "core/scalar_engine.hpp"
#include "dist/driver.hpp"
#include "sparse/proxy_suite.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace dsouth::dist {
namespace {

struct Problem {
  CsrMatrix a;
  std::vector<value_t> b, x0;
};

Problem scaled_poisson(index_t nx, index_t ny, std::uint64_t seed) {
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(nx, ny)).a;
  p.b.assign(static_cast<std::size_t>(p.a.rows()), 0.0);
  p.x0.resize(p.b.size());
  util::Rng rng(seed);
  rng.fill_uniform(p.x0, -1.0, 1.0);
  sparse::normalize_initial_residual(p.a, p.b, p.x0);
  return p;
}

DistLayout make_layout(const CsrMatrix& a, index_t k) {
  auto g = graph::Graph::from_matrix_structure(a);
  return DistLayout(a, graph::partition_recursive_bisection(g, k));
}

TEST(MulticolorBlockGs, OneColorPerStepCoversAllRanksPerSweep) {
  auto p = scaled_poisson(10, 10, 1);
  auto layout = make_layout(p.a, 8);
  simmpi::Runtime rt(8);
  MulticolorBlockGs solver(layout, rt, p.b, p.x0);
  const int colors = solver.num_colors();
  EXPECT_GE(colors, 2);
  index_t total_active = 0, total_relaxed = 0;
  for (int c = 0; c < colors; ++c) {
    auto stats = solver.step();
    total_active += stats.active_ranks;
    total_relaxed += stats.relaxations;
  }
  // One full sweep: every rank exactly once, every row exactly once.
  EXPECT_EQ(total_active, 8);
  EXPECT_EQ(total_relaxed, 100);
}

TEST(MulticolorBlockGs, LocalResidualsStayExact) {
  auto p = scaled_poisson(12, 12, 2);
  auto layout = make_layout(p.a, 9);
  simmpi::Runtime rt(9);
  MulticolorBlockGs solver(layout, rt, p.b, p.x0);
  for (int k = 0; k < 12; ++k) {
    solver.step();
    auto x = solver.gather_x();
    std::vector<value_t> r(x.size());
    p.a.residual(p.b, x, r);
    EXPECT_NEAR(solver.global_residual_norm(), sparse::norm2(r), 1e-11);
  }
}

TEST(MulticolorBlockGs, SingleRankDegeneratesToGlobalSweep) {
  auto p = scaled_poisson(7, 7, 3);
  auto layout = make_layout(p.a, 1);
  simmpi::Runtime rt(1);
  MulticolorBlockGs solver(layout, rt, p.b, p.x0);
  EXPECT_EQ(solver.num_colors(), 1);
  solver.step();
  core::ScalarRelaxationEngine eng(p.a, p.b, p.x0);
  for (index_t i = 0; i < p.a.rows(); ++i) eng.relax_row(i);
  EXPECT_NEAR(solver.global_residual_norm(), eng.residual_norm_exact(),
              1e-12);
}

TEST(MulticolorBlockGs, ConvergesOnSpdProblems) {
  auto p = scaled_poisson(10, 10, 4);
  auto part = graph::partition_recursive_bisection(
      graph::Graph::from_matrix_structure(p.a), 6);
  DistRunOptions opt;
  opt.max_parallel_steps = 400;
  opt.stop_at_residual = 1e-5;
  auto r = run_distributed(DistMethod::kMulticolorBlockGs, p.a, part, p.b,
                           p.x0, opt);
  EXPECT_LE(r.residual_norm.back(), 1e-5);
}

TEST(MulticolorBlockGs, ConvergesWhereBlockJacobiDiverges) {
  // The paper's §1 motivation for multicoloring: Gauss-Seidel-type sweeps
  // converge for all SPD matrices. Small-block Jacobi diverges on the
  // elasticity proxy; multicolor block GS must not.
  auto proxy = sparse::make_proxy("msdoorp", 0.05);
  std::vector<value_t> b(static_cast<std::size_t>(proxy.a.rows()), 0.0);
  std::vector<value_t> x0(b.size());
  util::Rng rng(5);
  rng.fill_uniform(x0, -1.0, 1.0);
  sparse::normalize_initial_residual(proxy.a, b, x0);
  auto part = graph::partition_recursive_bisection(
      graph::Graph::from_matrix_structure(proxy.a), proxy.a.rows() / 2);
  DistRunOptions opt;
  opt.max_parallel_steps = 60;
  auto bj = run_distributed(DistMethod::kBlockJacobi, proxy.a, part, b, x0,
                            opt);
  auto mc = run_distributed(DistMethod::kMulticolorBlockGs, proxy.a, part, b,
                            x0, opt);
  EXPECT_GT(bj.residual_norm.back(), 1.0);   // diverged
  EXPECT_LT(mc.residual_norm.back(), 1.0);   // monotone progress
  EXPECT_LT(mc.residual_norm.back(), mc.residual_norm.front());
}

TEST(MulticolorBlockGs, MethodNameWiredThrough) {
  EXPECT_STREQ(method_name(DistMethod::kMulticolorBlockGs),
               "MulticolorBlockGs");
  EXPECT_STREQ(method_abbrev(DistMethod::kMulticolorBlockGs), "MCBGS");
}

}  // namespace
}  // namespace dsouth::dist
