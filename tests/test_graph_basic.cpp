#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sparse/stencils.hpp"
#include "util/error.hpp"

namespace dsouth::graph {
namespace {

TEST(Graph, FromEdgesDedupsAndDropsSelfLoops) {
  std::vector<std::pair<index_t, index_t>> edges{
      {0, 1}, {1, 0}, {1, 1}, {1, 2}, {2, 1}};
  auto g = Graph::from_edges(3, edges);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.degree(0), 1);
}

TEST(Graph, NeighborListsAreSorted) {
  std::vector<std::pair<index_t, index_t>> edges{{3, 0}, {3, 2}, {3, 1}};
  auto g = Graph::from_edges(4, edges);
  auto nb = g.neighbors(3);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
}

TEST(Graph, FromMatrixStructureMatchesStencil) {
  auto a = sparse::poisson2d_5pt(3, 3);
  auto g = Graph::from_matrix_structure(a);
  EXPECT_EQ(g.num_vertices(), 9);
  // 5-pt on 3x3: 6 horizontal + 6 vertical edges.
  EXPECT_EQ(g.num_edges(), 12);
  EXPECT_EQ(g.degree(4), 4);  // center
  EXPECT_EQ(g.degree(0), 2);  // corner
  EXPECT_EQ(g.max_degree(), 4);
}

TEST(Graph, OutOfRangeEdgeThrows) {
  std::vector<std::pair<index_t, index_t>> edges{{0, 5}};
  EXPECT_THROW(Graph::from_edges(3, edges), util::CheckError);
}

TEST(Graph, BfsVisitsComponentInLevelOrder) {
  // Path 0-1-2-3.
  std::vector<std::pair<index_t, index_t>> edges{{0, 1}, {1, 2}, {2, 3}};
  auto g = Graph::from_edges(4, edges);
  auto order = g.bfs_order(1);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1);
  // Levels: {0, 2} then {3}.
  EXPECT_EQ(order[3], 3);
}

TEST(Graph, BfsRespectsMask) {
  std::vector<std::pair<index_t, index_t>> edges{{0, 1}, {1, 2}, {2, 3}};
  auto g = Graph::from_edges(4, edges);
  std::vector<char> mask{1, 1, 0, 1};  // block vertex 2
  auto order = g.bfs_order(0, mask);
  std::set<index_t> visited(order.begin(), order.end());
  EXPECT_TRUE(visited.count(0));
  EXPECT_TRUE(visited.count(1));
  EXPECT_FALSE(visited.count(2));
  EXPECT_FALSE(visited.count(3));  // unreachable through the mask
}

TEST(Graph, ConnectedComponents) {
  std::vector<std::pair<index_t, index_t>> edges{{0, 1}, {2, 3}, {3, 4}};
  auto g = Graph::from_edges(6, edges);
  std::vector<index_t> comp;
  EXPECT_EQ(g.connected_components(comp), 3);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[5], comp[0]);
  EXPECT_FALSE(g.is_connected());
  EXPECT_TRUE(
      Graph::from_matrix_structure(sparse::poisson2d_5pt(4, 4)).is_connected());
}

TEST(Graph, PseudoPeripheralOnPathFindsAnEnd) {
  std::vector<std::pair<index_t, index_t>> edges;
  for (index_t i = 0; i + 1 < 20; ++i) edges.emplace_back(i, i + 1);
  auto g = Graph::from_edges(20, edges);
  index_t v = g.pseudo_peripheral_vertex(10);
  EXPECT_TRUE(v == 0 || v == 19);
}

TEST(Graph, EmptyGraphBehaves) {
  auto g = Graph::from_edges(0, {});
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_TRUE(g.is_connected());
}

}  // namespace
}  // namespace dsouth::graph
