#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace dsouth::util {
namespace {

TEST(Table, BasicLayoutAlignsColumns) {
  Table t({"Matrix", "BJ", "DS"});
  t.row().cell("Flan_1565").cell(0.547, 3).cell(0.234, 3);
  t.row().cell("x").dagger().cell(1.0, 3);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Flan_1565"), std::string::npos);
  EXPECT_NE(s.find("0.547"), std::string::npos);
  EXPECT_NE(s.find("†"), std::string::npos);
  // Header, rule, two rows.
  int lines = 0;
  for (char c : s) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);
}

TEST(Table, DaggerCountsAsOneDisplayColumn) {
  Table t({"A", "B"});
  t.row().cell("x").dagger();
  t.row().cell("y").cell("1");
  std::istringstream in(t.to_string());
  std::string header, rule, row1, row2;
  std::getline(in, header);
  std::getline(in, rule);
  std::getline(in, row1);
  std::getline(in, row2);
  // Rows must have equal display width; row1 has the 3-byte dagger.
  EXPECT_EQ(row1.size(), row2.size() + 2);
}

TEST(Table, IncompleteRowFailsOnPrint) {
  Table t({"A", "B"});
  t.row().cell("only-one");
  std::ostringstream os;
  EXPECT_THROW(t.print(os), CheckError);
}

TEST(Table, OverfullRowThrows) {
  Table t({"A"});
  t.row().cell("1");
  EXPECT_THROW(t.cell("2"), CheckError);
}

TEST(Table, CellBeforeRowThrows) {
  Table t({"A"});
  EXPECT_THROW(t.cell("x"), CheckError);
}

TEST(Table, NumericFormatting) {
  EXPECT_EQ(format_double(1.23456, 3), "1.235");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/dsouth_test.csv";
  {
    CsvWriter w(path, {"a", "b"});
    w.write_row(std::vector<std::string>{"1", "hello"});
    w.write_row(std::vector<double>{2.5, -1.0});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,hello");
  std::getline(in, line);
  EXPECT_EQ(line, "2.5,-1");
  std::remove(path.c_str());
}

TEST(Csv, QuotesSpecialCharacters) {
  const std::string path = ::testing::TempDir() + "/dsouth_quote.csv";
  {
    CsvWriter w(path, {"x"});
    w.write_row(std::vector<std::string>{"has,comma"});
    w.write_row(std::vector<std::string>{"has\"quote"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);
  EXPECT_EQ(line, "\"has,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "\"has\"\"quote\"");
  std::remove(path.c_str());
}

TEST(Csv, WrongArityThrows) {
  const std::string path = ::testing::TempDir() + "/dsouth_arity.csv";
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.write_row(std::vector<std::string>{"only-one"}), CheckError);
  std::remove(path.c_str());
}

TEST(Csv, UnopenablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}), CheckError);
}

}  // namespace
}  // namespace dsouth::util
