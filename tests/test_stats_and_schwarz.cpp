#include <gtest/gtest.h>

#include <cmath>

#include "dist/driver.hpp"
#include "dist/greedy_schwarz.hpp"
#include "graph/partition.hpp"
#include "sparse/fem.hpp"
#include "sparse/mesh.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stats.hpp"
#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace dsouth {
namespace {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

TEST(MatrixStats, PoissonFiveStencil) {
  auto a = sparse::poisson2d_5pt(6, 6);
  auto s = sparse::compute_matrix_stats(a);
  EXPECT_EQ(s.rows, 36);
  EXPECT_EQ(s.nnz, a.nnz());
  EXPECT_EQ(s.nnz_per_row_min, 3);   // corners
  EXPECT_EQ(s.nnz_per_row_max, 5);   // interior
  EXPECT_EQ(s.bandwidth, 6);         // grid width
  EXPECT_TRUE(s.structurally_symmetric);
  EXPECT_TRUE(s.numerically_symmetric);
  EXPECT_TRUE(s.has_full_diagonal);
  EXPECT_DOUBLE_EQ(s.diag_dominant_fraction, 1.0);  // M-matrix
  EXPECT_DOUBLE_EQ(s.positive_offdiag_fraction, 0.0);
  EXPECT_GT(s.scaled_lambda_max, 1.0);
  EXPECT_LT(s.scaled_lambda_max, 2.0);
}

TEST(MatrixStats, ElasticityFlagsNonMStructure) {
  auto mesh = sparse::make_perturbed_grid_mesh(13, 13, 0.2, 5);
  sparse::ElasticityOptions opt;
  opt.poisson_ratio = 0.45;
  auto a = sparse::assemble_p1_elasticity(mesh, opt);
  auto s = sparse::compute_matrix_stats(a, 200);
  EXPECT_GT(s.positive_offdiag_fraction, 0.1);
  EXPECT_LT(s.diag_dominant_fraction, 1.0);
  EXPECT_GT(s.scaled_lambda_max, 2.0);  // the Jacobi-divergence flag
}

TEST(MatrixStats, AsymmetricMatrixDetected) {
  CsrMatrix asym(2, 2, {0, 2, 3}, {0, 1, 1}, {1.0, 0.5, 1.0});
  auto s = sparse::compute_matrix_stats(asym, 0);
  EXPECT_FALSE(s.structurally_symmetric);
  EXPECT_FALSE(s.numerically_symmetric);
}

TEST(MatrixStats, PrintIncludesJacobiVerdict) {
  auto a = sparse::poisson2d_5pt(5, 5);
  auto s = sparse::compute_matrix_stats(a);
  std::ostringstream os;
  sparse::print_matrix_stats(os, s);
  EXPECT_NE(os.str().find("point Jacobi converges"), std::string::npos);
}

struct Problem {
  CsrMatrix a;
  std::vector<value_t> b, x0;
  dist::DistLayout layout;
};

Problem make_problem(index_t nx, index_t ranks, std::uint64_t seed) {
  auto a = sparse::symmetric_unit_diagonal_scale(
               sparse::poisson2d_5pt(nx, nx))
               .a;
  std::vector<value_t> b(static_cast<std::size_t>(a.rows()), 0.0);
  std::vector<value_t> x0(b.size());
  util::Rng rng(seed);
  rng.fill_uniform(x0, -1.0, 1.0);
  sparse::normalize_initial_residual(a, b, x0);
  auto part = graph::partition_recursive_bisection(
      graph::Graph::from_matrix_structure(a), ranks);
  dist::DistLayout layout(a, part);
  return Problem{std::move(a), std::move(b), std::move(x0),
                 std::move(layout)};
}

TEST(GreedySchwarz, PicksTheLargestSubdomainFirst) {
  auto p = make_problem(10, 6, 1);
  // Find the rank with the largest initial residual norm directly.
  auto r0 = p.b;
  std::vector<value_t> rr(p.b.size());
  p.a.residual(p.b, p.x0, rr);
  double best = -1.0;
  int best_rank = -1;
  for (int q = 0; q < p.layout.num_ranks(); ++q) {
    double sq = 0.0;
    for (index_t g : p.layout.rank(q).rows) {
      sq += rr[static_cast<std::size_t>(g)] * rr[static_cast<std::size_t>(g)];
    }
    if (sq > best) {
      best = sq;
      best_rank = q;
    }
  }
  dist::GreedySchwarzOptions opt;
  opt.max_block_relaxations = 1;
  auto result = dist::run_greedy_schwarz(p.layout, p.b, p.x0, opt);
  ASSERT_EQ(result.relaxed_rank.size(), 1u);
  EXPECT_EQ(result.relaxed_rank[0], best_rank);
}

TEST(GreedySchwarz, ResidualTrackingMatchesTruth) {
  auto p = make_problem(12, 7, 2);
  dist::GreedySchwarzOptions opt;
  opt.max_block_relaxations = 20;
  auto result = dist::run_greedy_schwarz(p.layout, p.b, p.x0, opt);
  std::vector<value_t> r(p.b.size());
  p.a.residual(p.b, result.x, r);
  EXPECT_NEAR(result.residual_norm.back(), sparse::norm2(r), 1e-10);
}

TEST(GreedySchwarz, ConvergesToTarget) {
  auto p = make_problem(10, 8, 3);
  dist::GreedySchwarzOptions opt;
  opt.max_block_relaxations = 100000;
  opt.target_residual = 1e-6;
  auto result = dist::run_greedy_schwarz(p.layout, p.b, p.x0, opt);
  EXPECT_LE(result.residual_norm.back(), 1e-6);
}

TEST(GreedySchwarz, BeatsBlockJacobiPerBlockRelaxation) {
  // The Southwell economy at block level: to a low-accuracy target, greedy
  // selection needs fewer block relaxations than relaxing everything
  // (Block Jacobi does P block relaxations per parallel step).
  auto p = make_problem(16, 16, 4);
  dist::GreedySchwarzOptions gopt;
  gopt.max_block_relaxations = 100000;
  gopt.target_residual = 0.1;
  auto greedy = dist::run_greedy_schwarz(p.layout, p.b, p.x0, gopt);

  dist::DistRunOptions bopt;
  bopt.max_parallel_steps = 200;
  bopt.stop_at_residual = 0.1;
  auto bj = dist::run_distributed(dist::DistMethod::kBlockJacobi, p.layout,
                                  p.b, p.x0, bopt);
  const auto bj_block_relaxations =
      static_cast<index_t>(bj.steps_taken()) * 16;
  EXPECT_LT(static_cast<index_t>(greedy.relaxed_rank.size()),
            bj_block_relaxations);
}

TEST(GreedySchwarz, DefaultBudgetIsOneSweep) {
  auto p = make_problem(8, 5, 5);
  auto result = dist::run_greedy_schwarz(p.layout, p.b, p.x0);
  EXPECT_EQ(result.relaxed_rank.size(), 5u);
}

}  // namespace
}  // namespace dsouth
