/// Tests for the pluggable delivery policies (src/simmpi/delivery.hpp) and
/// epochless asynchronous execution: EventDriven latency draws are
/// stateless and seed-dependent, the runtime matures messages on the
/// virtual clock and enforces the staleness bound, a staleness-0 policy
/// reduces byte-identically to BulkSynchronous, async runs are
/// bit-identical across execution backends (traces included), deliver
/// events agree with the simmpi.async_* metrics, every solver converges
/// relax-on-arrival, and asynchrony composes with fault injection.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "dist/driver.hpp"
#include "faults/fault_plan.hpp"
#include "graph/partition.hpp"
#include "simmpi/delivery.hpp"
#include "simmpi/runtime.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "trace/export.hpp"
#include "util/rng.hpp"

namespace dsouth {
namespace {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

// ---------------------------------------------------------------------------
// EventDrivenPolicy draw semantics.

TEST(DeliveryPolicy, LatencyDrawsAreStatelessBoundedAndSeedDependent) {
  simmpi::EventDrivenOptions opt;
  opt.min_latency_epochs = 1;
  opt.max_latency_epochs = 4;
  simmpi::EventDrivenPolicy p1(opt);
  simmpi::EventDrivenPolicy p2(opt);
  opt.seed ^= 1;
  simmpi::EventDrivenPolicy p3(opt);

  bool seed_changed_something = false;
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    const auto a = p1.extra_latency(7, 1, 2, seq);
    EXPECT_GE(a, 1u);
    EXPECT_LE(a, 4u);
    // Stateless: call order and instance independent.
    EXPECT_EQ(a, p1.extra_latency(7, 1, 2, seq));
    EXPECT_EQ(a, p2.extra_latency(7, 1, 2, seq));
    if (a != p3.extra_latency(7, 1, 2, seq)) seed_changed_something = true;
  }
  EXPECT_TRUE(seed_changed_something);
}

TEST(DeliveryPolicy, DegenerateWindowIsConstant) {
  simmpi::EventDrivenOptions opt;
  opt.min_latency_epochs = 2;
  opt.max_latency_epochs = 2;
  simmpi::EventDrivenPolicy p(opt);
  for (std::uint64_t seq = 0; seq < 50; ++seq) {
    EXPECT_EQ(p.extra_latency(0, 0, 1, seq), 2u);
  }
}

// ---------------------------------------------------------------------------
// Runtime maturation on the virtual clock.

TEST(AsyncRuntime, MessagesMatureAfterTheirLatencyDraw) {
  simmpi::EventDrivenOptions opt;
  opt.min_latency_epochs = 2;
  opt.max_latency_epochs = 2;  // deterministic: always +2 epochs
  opt.max_staleness = 8;
  simmpi::EventDrivenPolicy policy(opt);
  simmpi::Runtime rt(2);
  rt.set_delivery_policy(&policy);
  EXPECT_TRUE(rt.async_delivery());

  rt.put(0, 1, simmpi::MsgTag::kSolve, std::vector<double>{1.0, 2.0});
  rt.fence();  // closes epoch 0: message targets epoch 2
  EXPECT_TRUE(rt.window(1).empty());
  EXPECT_EQ(rt.delayed_in_flight(), 1u);
  rt.fence();  // closes epoch 1: still in flight
  EXPECT_TRUE(rt.window(1).empty());
  rt.fence();  // closes epoch 2: matured
  ASSERT_EQ(rt.window(1).size(), 1u);
  EXPECT_EQ(rt.window(1)[0].source, 0);
  EXPECT_EQ(rt.delayed_in_flight(), 0u);
  EXPECT_EQ(rt.stats().async_delivered(), 1u);
  EXPECT_EQ(rt.stats().async_staleness_sum(), 2u);
  EXPECT_EQ(rt.stats().async_staleness_max(), 2u);
}

TEST(AsyncRuntime, StalenessBoundClampsTheDraw) {
  simmpi::EventDrivenOptions opt;
  opt.min_latency_epochs = 10;
  opt.max_latency_epochs = 10;
  opt.max_staleness = 3;
  simmpi::EventDrivenPolicy policy(opt);
  simmpi::Runtime rt(2);
  rt.set_delivery_policy(&policy);
  rt.put(0, 1, simmpi::MsgTag::kSolve, std::vector<double>{1.0});
  for (int e = 0; e < 3; ++e) {
    rt.fence();
    EXPECT_TRUE(rt.window(1).empty()) << "epoch " << e;
  }
  rt.fence();  // closes epoch 3 = staged(0) + max_staleness(3)
  ASSERT_EQ(rt.window(1).size(), 1u);
  EXPECT_EQ(rt.stats().async_staleness_max(), 3u);
}

TEST(AsyncRuntime, StalenessZeroDegeneratesToBulkSynchronous) {
  simmpi::EventDrivenOptions opt;
  opt.min_latency_epochs = 0;
  opt.max_latency_epochs = 5;  // draws are irrelevant: the bound is 0
  opt.max_staleness = 0;
  simmpi::EventDrivenPolicy policy(opt);
  simmpi::Runtime rt(2);
  rt.set_delivery_policy(&policy);
  EXPECT_FALSE(rt.async_delivery());
  rt.put(0, 1, simmpi::MsgTag::kSolve, std::vector<double>{1.0});
  rt.fence();
  ASSERT_EQ(rt.window(1).size(), 1u);  // next fence, the BSP contract
  EXPECT_EQ(rt.stats().async_delivered(), 0u);
}

TEST(AsyncRuntime, DrainDelayedFlushesMaturingTraffic) {
  simmpi::EventDrivenOptions opt;
  opt.min_latency_epochs = 3;
  opt.max_latency_epochs = 3;
  opt.max_staleness = 5;
  simmpi::EventDrivenPolicy policy(opt);
  simmpi::Runtime rt(2);
  rt.set_delivery_policy(&policy);
  rt.put(0, 1, simmpi::MsgTag::kSolve, std::vector<double>{4.0});
  rt.fence();
  EXPECT_EQ(rt.delayed_in_flight(), 1u);
  rt.drain_delayed();
  EXPECT_EQ(rt.delayed_in_flight(), 0u);
  ASSERT_EQ(rt.window(1).size(), 1u);
  EXPECT_EQ(rt.stats().async_delivered(), 1u);
}

// ---------------------------------------------------------------------------
// Driver-level identity, reduction and reproducibility.

struct Problem {
  CsrMatrix a;
  std::vector<value_t> b, x0;
  graph::Partition part;
};

Problem make_problem(index_t nx, index_t ranks, std::uint64_t seed) {
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(nx, nx)).a;
  p.b.assign(static_cast<std::size_t>(p.a.rows()), 0.0);
  p.x0.resize(p.b.size());
  util::Rng rng(seed);
  rng.fill_uniform(p.x0, -1.0, 1.0);
  sparse::normalize_initial_residual(p.a, p.b, p.x0);
  p.part = graph::partition_recursive_bisection(
      graph::Graph::from_matrix_structure(p.a), ranks);
  return p;
}

std::string trace_bytes(const dist::DistRunResult& r) {
  EXPECT_TRUE(r.trace_log != nullptr);
  if (!r.trace_log) return {};
  std::ostringstream os;
  trace::write_jsonl(os, *r.trace_log, {});
  return os.str();
}

dist::DistRunOptions async_options() {
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 30;
  opt.async = true;
  opt.async_min_latency = 0;
  opt.async_max_latency = 3;
  opt.max_staleness = 4;
  return opt;
}

TEST(AsyncDriver, AsyncRunsAreBitIdenticalAcrossBackends) {
  auto p = make_problem(12, 8, 17);
  for (auto m : {dist::DistMethod::kBlockJacobi,
                 dist::DistMethod::kParallelSouthwell,
                 dist::DistMethod::kDistributedSouthwell,
                 dist::DistMethod::kMulticolorBlockGs}) {
    auto seq_opt = async_options();
    seq_opt.trace.enabled = true;
    seq_opt.backend = simmpi::BackendKind::kSequential;
    auto thr_opt = seq_opt;
    thr_opt.backend = simmpi::BackendKind::kThreadPool;
    thr_opt.num_threads = 3;
    auto a = dist::run_distributed(m, p.a, p.part, p.b, p.x0, seq_opt);
    auto b = dist::run_distributed(m, p.a, p.part, p.b, p.x0, thr_opt);
    EXPECT_EQ(a.residual_norm, b.residual_norm) << dist::method_name(m);
    EXPECT_EQ(a.final_x, b.final_x) << dist::method_name(m);
    ASSERT_TRUE(a.async_totals.has_value());
    ASSERT_TRUE(b.async_totals.has_value());
    EXPECT_EQ(a.async_totals->delivered, b.async_totals->delivered);
    EXPECT_EQ(a.async_totals->staleness_sum, b.async_totals->staleness_sum);
    EXPECT_EQ(a.async_totals->staleness_max, b.async_totals->staleness_max);
    EXPECT_EQ(a.async_totals->epochs, b.async_totals->epochs);
    EXPECT_GT(a.async_totals->delivered, 0u) << dist::method_name(m);
    // The runtime-enforced bound held.
    EXPECT_LE(a.async_totals->staleness_max, 4u) << dist::method_name(m);
    // The whole event stream (deliver events included) is byte-identical.
    EXPECT_EQ(trace_bytes(a), trace_bytes(b)) << dist::method_name(m);
  }
}

TEST(AsyncDriver, StalenessZeroReducesToResilientBulkSynchronous) {
  auto p = make_problem(12, 8, 17);
  for (auto m : {dist::DistMethod::kParallelSouthwell,
                 dist::DistMethod::kDistributedSouthwell}) {
    auto async0 = async_options();
    async0.max_staleness = 0;  // degenerate policy: BSP timing
    async0.trace.enabled = true;
    // The async driver path auto-enables resilience, so the reference run
    // is a plain bulk-synchronous run with resilience on.
    dist::DistRunOptions bsp;
    bsp.max_parallel_steps = async0.max_parallel_steps;
    bsp.resilience.enabled = true;
    bsp.trace.enabled = true;
    auto a = dist::run_distributed(m, p.a, p.part, p.b, p.x0, async0);
    auto b = dist::run_distributed(m, p.a, p.part, p.b, p.x0, bsp);
    EXPECT_EQ(a.residual_norm, b.residual_norm) << dist::method_name(m);
    EXPECT_EQ(a.final_x, b.final_x) << dist::method_name(m);
    EXPECT_EQ(a.comm_totals.msgs, b.comm_totals.msgs);
    EXPECT_EQ(a.comm_totals.bytes, b.comm_totals.bytes);
    EXPECT_FALSE(a.async_totals.has_value());
    EXPECT_EQ(trace_bytes(a), trace_bytes(b)) << dist::method_name(m);
  }
}

TEST(AsyncDriver, DeliverEventsMatchAsyncMetrics) {
  auto p = make_problem(12, 8, 17);
  auto opt = async_options();
  opt.trace.enabled = true;
  auto r = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                 p.a, p.part, p.b, p.x0, opt);
  ASSERT_TRUE(r.trace_log != nullptr);
  ASSERT_TRUE(r.async_totals.has_value());
  std::uint64_t deliver_events = 0;
  std::uint64_t staleness_sum = 0;
  std::uint64_t staleness_max = 0;
  for (const auto& e : r.trace_log->events) {
    if (e.kind != trace::EventKind::kDeliver) continue;
    ++deliver_events;
    const auto s = static_cast<std::uint64_t>(e.a0);
    staleness_sum += s;
    if (s > staleness_max) staleness_max = s;
  }
  EXPECT_GT(deliver_events, 0u);
  EXPECT_EQ(deliver_events, r.async_totals->delivered);
  EXPECT_EQ(staleness_sum, r.async_totals->staleness_sum);
  EXPECT_EQ(staleness_max, r.async_totals->staleness_max);
}

// ---------------------------------------------------------------------------
// Convergence: every method keeps converging relax-on-arrival, and
// asynchrony composes with fault injection.

class AsyncConvergence : public ::testing::TestWithParam<dist::DistMethod> {};

TEST_P(AsyncConvergence, ConvergesRelaxOnArrival) {
  auto p = make_problem(14, 12, 31);
  auto opt = async_options();
  opt.max_parallel_steps = 120;
  opt.max_staleness = 6;
  opt.watchdog.enabled = true;
  auto r = dist::run_distributed(GetParam(), p.a, p.part, p.b, p.x0, opt);
  EXPECT_FALSE(r.watchdog.fired)
      << dist::method_name(GetParam()) << ": " << r.watchdog.reason;
  EXPECT_LT(r.residual_norm.back(), 0.05) << dist::method_name(GetParam());
  ASSERT_TRUE(r.async_totals.has_value());
  EXPECT_GT(r.async_totals->delivered, 0u);
  EXPECT_LE(r.async_totals->staleness_max, 6u);
}

INSTANTIATE_TEST_SUITE_P(
    Methods, AsyncConvergence,
    ::testing::Values(dist::DistMethod::kBlockJacobi,
                      dist::DistMethod::kParallelSouthwell,
                      dist::DistMethod::kDistributedSouthwell,
                      dist::DistMethod::kMulticolorBlockGs),
    [](const auto& info) {
      return std::string(dist::method_name(info.param));
    });

TEST(AsyncFaults, ConvergesUnderDropsAndDuplication) {
  auto p = make_problem(14, 12, 31);
  auto opt = async_options();
  opt.max_parallel_steps = 150;
  opt.faults.defaults.drop_probability = 0.02;
  opt.faults.defaults.duplicate_probability = 0.01;
  opt.watchdog.enabled = true;
  for (auto m : {dist::DistMethod::kBlockJacobi,
                 dist::DistMethod::kDistributedSouthwell}) {
    auto r = dist::run_distributed(m, p.a, p.part, p.b, p.x0, opt);
    EXPECT_FALSE(r.watchdog.fired)
        << dist::method_name(m) << ": " << r.watchdog.reason;
    EXPECT_LT(r.residual_norm.back(), 0.05) << dist::method_name(m);
    ASSERT_TRUE(r.fault_summary.has_value());
    EXPECT_GT(r.fault_summary->msgs_dropped, 0u);
    ASSERT_TRUE(r.async_totals.has_value());
    EXPECT_GT(r.async_totals->delivered, 0u);
  }
}

}  // namespace
}  // namespace dsouth
