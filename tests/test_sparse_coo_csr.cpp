#include <gtest/gtest.h>

#include <vector>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/stencils.hpp"
#include "util/error.hpp"

namespace dsouth::sparse {
namespace {

CsrMatrix small_example() {
  // [ 2 -1  0 ]
  // [-1  2 -1 ]
  // [ 0 -1  2 ]
  CooBuilder coo(3, 3);
  coo.add(0, 0, 2.0);
  coo.add_sym(0, 1, -1.0);
  coo.add(1, 1, 2.0);
  coo.add_sym(1, 2, -1.0);
  coo.add(2, 2, 2.0);
  return coo.to_csr();
}

TEST(CooBuilder, BoundsChecked) {
  CooBuilder coo(2, 2);
  EXPECT_THROW(coo.add(2, 0, 1.0), util::CheckError);
  EXPECT_THROW(coo.add(0, -1, 1.0), util::CheckError);
}

TEST(CooBuilder, DuplicatesAreSummed) {
  CooBuilder coo(2, 2);
  coo.add(0, 1, 1.5);
  coo.add(0, 1, 2.5);
  coo.add(1, 1, 1.0);
  auto a = coo.to_csr();
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 4.0);
}

TEST(CooBuilder, DropZerosOnCancellation) {
  CooBuilder coo(1, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 0, -1.0);
  coo.add(0, 1, 3.0);
  EXPECT_EQ(coo.to_csr(false).nnz(), 2);
  EXPECT_EQ(coo.to_csr(true).nnz(), 1);
}

TEST(CsrMatrix, StructureAndAccessors) {
  auto a = small_example();
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 3);
  EXPECT_EQ(a.nnz(), 7);
  EXPECT_TRUE(a.validate());
  EXPECT_EQ(a.row_nnz(1), 3);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 0.0);
  auto d = a.diagonal();
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[2], 2.0);
  EXPECT_TRUE(a.has_full_diagonal());
}

TEST(CsrMatrix, RowSpansAreSorted) {
  auto a = small_example();
  auto cols = a.row_cols(1);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0], 0);
  EXPECT_EQ(cols[1], 1);
  EXPECT_EQ(cols[2], 2);
}

TEST(CsrMatrix, SpmvMatchesDense) {
  auto a = poisson2d_5pt(4, 5);
  auto d = DenseMatrix::from_csr(a);
  std::vector<value_t> x(static_cast<std::size_t>(a.cols()));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.1 * static_cast<double>(i) - 0.7;
  }
  std::vector<value_t> ys(x.size()), yd(x.size());
  a.spmv(x, ys);
  d.matvec(x, yd);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(ys[i], yd[i], 1e-13);
}

TEST(CsrMatrix, SpmvAccAccumulates) {
  auto a = small_example();
  std::vector<value_t> x{1.0, 2.0, 3.0}, y{10.0, 10.0, 10.0};
  a.spmv_acc(-1.0, x, y);
  // A x = (0, 0, 4); y = 10 - Ax
  EXPECT_DOUBLE_EQ(y[0], 10.0);
  EXPECT_DOUBLE_EQ(y[1], 10.0);
  EXPECT_DOUBLE_EQ(y[2], 6.0);
}

TEST(CsrMatrix, ResidualDefinition) {
  auto a = small_example();
  std::vector<value_t> x{1.0, 1.0, 1.0}, b{1.0, 0.0, 1.0}, r(3);
  a.residual(b, x, r);
  EXPECT_DOUBLE_EQ(r[0], 0.0);
  EXPECT_DOUBLE_EQ(r[1], 0.0);
  EXPECT_DOUBLE_EQ(r[2], 0.0);
}

TEST(CsrMatrix, TransposeRoundTrip) {
  CooBuilder coo(3, 4);
  coo.add(0, 3, 1.0);
  coo.add(1, 0, 2.0);
  coo.add(2, 2, 3.0);
  coo.add(0, 1, 4.0);
  auto a = coo.to_csr();
  auto t = a.transpose();
  EXPECT_EQ(t.rows(), 4);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_TRUE(t.validate());
  EXPECT_DOUBLE_EQ(t.at(3, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.at(0, 1), 2.0);
  auto tt = t.transpose();
  EXPECT_EQ(tt.nnz(), a.nnz());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j : a.row_cols(i)) {
      EXPECT_DOUBLE_EQ(tt.at(i, j), a.at(i, j));
    }
  }
}

TEST(CsrMatrix, SymmetryCheck) {
  EXPECT_TRUE(small_example().is_symmetric(0.0));
  CooBuilder coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 1.0);
  coo.add(0, 1, 0.5);
  auto a = coo.to_csr();
  EXPECT_FALSE(a.is_symmetric(0.0));
  EXPECT_TRUE(a.is_symmetric(0.6));  // tolerance covers the asymmetry
}

TEST(CsrMatrix, ExtractSubmatrix) {
  auto a = small_example();
  // Keep rows {1, 2}, columns {1, 2} -> 2x2 trailing block.
  std::vector<index_t> rows{1, 2};
  std::vector<index_t> col_map{-1, 0, 1};
  auto s = a.extract(rows, col_map, 2);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_EQ(s.cols(), 2);
  EXPECT_TRUE(s.validate());
  EXPECT_DOUBLE_EQ(s.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(s.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(s.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(s.at(1, 1), 2.0);
}

TEST(CsrMatrix, ExtractWithReorderingSortsRows) {
  auto a = small_example();
  // Reverse the ordering entirely.
  std::vector<index_t> rows{2, 1, 0};
  std::vector<index_t> col_map{2, 1, 0};
  auto s = a.extract(rows, col_map, 3);
  EXPECT_TRUE(s.validate());
  EXPECT_DOUBLE_EQ(s.at(0, 0), 2.0);   // old (2,2)
  EXPECT_DOUBLE_EQ(s.at(0, 1), -1.0);  // old (2,1)
  EXPECT_DOUBLE_EQ(s.at(2, 2), 2.0);   // old (0,0)
}

TEST(CsrMatrix, ConstructorValidatesShape) {
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1}, {0}, {1.0}), util::CheckError);
  EXPECT_THROW(CsrMatrix(1, 1, {0, 2}, {0}, {1.0}), util::CheckError);
}

}  // namespace
}  // namespace dsouth::sparse
