#include "core/classic.hpp"

#include <gtest/gtest.h>

#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsouth::core {
namespace {

struct Problem {
  CsrMatrix a;
  std::vector<value_t> b, x0;
};

Problem scaled_poisson(index_t nx, index_t ny, std::uint64_t seed) {
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(nx, ny)).a;
  p.b.resize(static_cast<std::size_t>(p.a.rows()));
  p.x0.assign(p.b.size(), 0.0);
  util::Rng rng(seed);
  rng.fill_uniform(p.b, -1.0, 1.0);
  const value_t norm = sparse::norm2(p.b);
  sparse::scale(1.0 / norm, p.b);  // ‖r⁰‖ = ‖b‖ = 1, as in the paper
  return p;
}

TEST(Jacobi, OneSweepPerParallelStep) {
  auto p = scaled_poisson(5, 5, 1);
  ScalarRunOptions opt;
  opt.max_sweeps = 3;
  auto h = run_jacobi(p.a, p.b, p.x0, opt);
  ASSERT_EQ(h.points.size(), 4u);  // initial + 3 sweeps
  EXPECT_EQ(h.step_marks.size(), 3u);
  EXPECT_EQ(h.points[1].relaxations, 25);
  EXPECT_EQ(h.total_relaxations(), 75);
  EXPECT_LT(h.final_residual_norm(), h.points[0].residual_norm);
}

TEST(Jacobi, ConvergesOnScaledPoisson) {
  auto p = scaled_poisson(5, 5, 2);
  ScalarRunOptions opt;
  opt.max_sweeps = 500;
  opt.target_residual = 1e-8;
  auto h = run_jacobi(p.a, p.b, p.x0, opt);
  EXPECT_LE(h.final_residual_norm(), 1e-8);
}

TEST(GaussSeidel, RecordsEveryRelaxation) {
  auto p = scaled_poisson(4, 4, 3);
  ScalarRunOptions opt;
  opt.max_sweeps = 2;
  auto h = run_gauss_seidel(p.a, p.b, p.x0, opt);
  ASSERT_EQ(h.points.size(), 33u);  // initial + 2*16
  EXPECT_TRUE(h.step_marks.empty());
  // Relaxation counter strictly increases by one.
  for (std::size_t k = 1; k < h.points.size(); ++k) {
    EXPECT_EQ(h.points[k].relaxations,
              static_cast<index_t>(k));
  }
}

TEST(GaussSeidel, FasterThanJacobiPerSweep) {
  auto p = scaled_poisson(8, 8, 4);
  ScalarRunOptions opt;
  opt.max_sweeps = 10;
  opt.record_each_relaxation = false;
  auto gs = run_gauss_seidel(p.a, p.b, p.x0, opt);
  auto j = run_jacobi(p.a, p.b, p.x0, opt);
  EXPECT_LT(gs.final_residual_norm(), j.final_residual_norm());
}

TEST(GaussSeidel, TargetStopsEarly) {
  auto p = scaled_poisson(6, 6, 5);
  ScalarRunOptions opt;
  opt.max_sweeps = 1000;
  opt.target_residual = 0.1;
  auto h = run_gauss_seidel(p.a, p.b, p.x0, opt);
  EXPECT_LE(h.final_residual_norm(), 0.1);
  EXPECT_LT(h.total_relaxations(), 1000 * 36);
}

TEST(Sor, OmegaValidation) {
  auto p = scaled_poisson(3, 3, 6);
  EXPECT_THROW(run_sor(p.a, p.b, p.x0, 0.0), util::CheckError);
  EXPECT_THROW(run_sor(p.a, p.b, p.x0, 2.0), util::CheckError);
}

TEST(Sor, OverrelaxationBeatsGaussSeidelOnPoisson) {
  auto p = scaled_poisson(10, 10, 7);
  ScalarRunOptions opt;
  opt.max_sweeps = 30;
  opt.record_each_relaxation = false;
  auto gs = run_gauss_seidel(p.a, p.b, p.x0, opt);
  // Near-optimal omega for this grid size.
  auto sor = run_sor(p.a, p.b, p.x0, 1.6, opt);
  EXPECT_LT(sor.final_residual_norm(), gs.final_residual_norm());
}

TEST(MulticolorGs, OneParallelStepPerColor) {
  auto p = scaled_poisson(6, 6, 8);
  // 5-pt grid is 2-colorable.
  ScalarRunOptions opt;
  opt.max_sweeps = 3;
  auto h = run_multicolor_gs(p.a, p.b, p.x0, opt);
  EXPECT_EQ(h.step_marks.size(), 6u);  // 3 sweeps × 2 colors
  EXPECT_EQ(h.total_relaxations(), 3 * 36);
}

TEST(MulticolorGs, MatchesProvidedColoring) {
  auto p = scaled_poisson(5, 5, 9);
  auto g = graph::Graph::from_matrix_structure(p.a);
  auto coloring = graph::greedy_coloring(g, graph::ColoringOrder::kNatural);
  ScalarRunOptions opt;
  opt.max_sweeps = 2;
  auto h = run_multicolor_gs(p.a, p.b, p.x0, opt, &coloring);
  EXPECT_EQ(h.step_marks.size(),
            2u * static_cast<std::size_t>(coloring.num_colors));
  EXPECT_LT(h.final_residual_norm(), h.points[0].residual_norm);
}

TEST(MulticolorGs, ConvergesLikeGaussSeidel) {
  auto p = scaled_poisson(8, 8, 10);
  ScalarRunOptions opt;
  opt.max_sweeps = 50;
  opt.record_each_relaxation = false;
  auto mc = run_multicolor_gs(p.a, p.b, p.x0, opt);
  EXPECT_LT(mc.final_residual_norm(), 1e-3);
}

TEST(History, RelaxationsToReachInterpolates) {
  ConvergenceHistory h;
  h.points = {{0, 1.0}, {10, 0.5}, {20, 0.05}};
  auto r = h.relaxations_to_reach(0.5);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 10.0);
  auto r2 = h.relaxations_to_reach(0.275);
  ASSERT_TRUE(r2.has_value());
  EXPECT_GT(*r2, 10.0);
  EXPECT_LT(*r2, 20.0);
  EXPECT_FALSE(h.relaxations_to_reach(0.001).has_value());
}

}  // namespace
}  // namespace dsouth::core
