#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "dist/driver.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "simmpi/rank_context.hpp"
#include "simmpi/runtime.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "trace/export.hpp"
#include "trace/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsouth::trace {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry.
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, RegisterIsIdempotentAndFindable) {
  MetricsRegistry m(4);
  const MetricId a = m.register_metric("x.count", MetricKind::kCounter);
  const MetricId b = m.register_metric("x.count", MetricKind::kCounter);
  EXPECT_EQ(a, b);
  EXPECT_EQ(m.find("x.count"), a);
  EXPECT_EQ(m.find("missing"), kInvalidMetric);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.name(a), "x.count");
  EXPECT_EQ(m.kind(a), MetricKind::kCounter);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry m(2);
  m.register_metric("v", MetricKind::kCounter);
  EXPECT_THROW(m.register_metric("v", MetricKind::kGauge), util::CheckError);
}

TEST(MetricsRegistry, CounterAndGaugeSemantics) {
  MetricsRegistry m(3);
  const MetricId c = m.register_metric("c", MetricKind::kCounter);
  const MetricId g = m.register_metric("g", MetricKind::kGauge);
  m.add(c, 0, 2.0);
  m.add(c, 0, 3.0);
  m.add(c, 2, 1.0);
  m.set(g, 1, 7.0);
  m.set(g, 1, 9.0);
  EXPECT_EQ(m.value(c, 0), 5.0);
  EXPECT_EQ(m.value(c, 1), 0.0);
  EXPECT_EQ(m.total(c), 6.0);
  EXPECT_EQ(m.value(g, 1), 9.0);  // last write wins
  EXPECT_EQ(m.per_rank(c), (std::vector<double>{5.0, 0.0, 1.0}));
}

TEST(MetricsRegistry, InvalidIdIsANoOp) {
  MetricsRegistry m(2);
  m.add(kInvalidMetric, 0, 1.0);  // must not crash or register anything
  m.set(kInvalidMetric, 1, 1.0);
  EXPECT_EQ(m.size(), 0u);
}

// ---------------------------------------------------------------------------
// Tracer: lane merge ordering and ring-drop behavior.
// ---------------------------------------------------------------------------

TEST(Tracer, FenceMergesLanesInRankThenRecordOrder) {
  Tracer t(3);
  // Record out of rank order; the merge must come back rank-ascending,
  // FIFO within a rank, with the fence event appended last.
  t.record(2, EventKind::kRelax, -1, -1, 1.0, 0.0, 0, 0.0);
  t.record(0, EventKind::kRelax, -1, -1, 2.0, 0.0, 0, 0.0);
  t.record(2, EventKind::kPut, 0, 0, 3.0, 0.0, 0, 0.0);
  t.end_epoch(0, 0.5, 0.5, 1);
  const auto& ev = t.events();
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(ev[0].rank, 0);
  EXPECT_EQ(ev[1].rank, 2);
  EXPECT_EQ(ev[1].kind, EventKind::kRelax);
  EXPECT_EQ(ev[2].rank, 2);
  EXPECT_EQ(ev[2].kind, EventKind::kPut);
  EXPECT_EQ(ev[3].kind, EventKind::kFence);
  EXPECT_EQ(ev[3].rank, -1);
  for (std::size_t k = 0; k < ev.size(); ++k) {
    EXPECT_EQ(ev[k].seq, k);  // global order is assigned densely
  }
}

TEST(Tracer, RingDropsOldestDeterministically) {
  TraceOptions opt;
  opt.ring_capacity = 2;
  Tracer t(1, opt);
  for (int k = 0; k < 5; ++k) {
    t.record(0, EventKind::kRelax, -1, -1, static_cast<double>(k), 0.0, 0,
             0.0);
  }
  t.end_epoch(0, 0.0, 0.0, 0);
  EXPECT_EQ(t.dropped_events(), 3u);
  const auto& ev = t.events();
  ASSERT_EQ(ev.size(), 3u);  // 2 survivors + the fence
  EXPECT_EQ(ev[0].a0, 3.0);  // oldest dropped, newest kept
  EXPECT_EQ(ev[1].a0, 4.0);
  auto log = t.take_log();
  EXPECT_EQ(log.dropped_events, 3u);
}

TEST(Tracer, FlushCollectsPostFenceEvents) {
  Tracer t(2);
  t.end_epoch(0, 0.0, 0.0, 0);
  // The absorb phase runs after the fence; its events sit in lanes until
  // the next fence — or a final flush.
  t.record(1, EventKind::kAbsorb, -1, -1, 2.0, 8.0, 1, 0.0);
  t.flush();
  const auto& ev = t.events();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[1].kind, EventKind::kAbsorb);
  EXPECT_EQ(ev[1].epoch, 1u);
}

// ---------------------------------------------------------------------------
// Runtime integration: put/fence hooks and the simmpi.* metrics.
// ---------------------------------------------------------------------------

TEST(RuntimeTracing, PutAndFenceAreRecordedWithMetrics) {
  simmpi::Runtime rt(3);
  Tracer tracer(3);
  rt.set_tracer(&tracer);
  simmpi::RankContext c0(rt, 0);
  const double payload[3] = {1.0, 2.0, 3.0};
  c0.put(2, simmpi::MsgTag::kSolve, payload);
  c0.put(1, simmpi::MsgTag::kResidual, std::span<const double>(payload, 1));
  rt.fence();

  const auto& ev = tracer.events();
  ASSERT_EQ(ev.size(), 3u);  // 2 puts + fence
  EXPECT_EQ(ev[0].kind, EventKind::kPut);
  EXPECT_EQ(ev[0].rank, 0);
  EXPECT_EQ(ev[0].peer, 2);
  EXPECT_EQ(ev[0].tag, 0);
  EXPECT_EQ(ev[0].a0, 3.0);  // payload doubles
  EXPECT_EQ(ev[1].peer, 1);
  EXPECT_EQ(ev[1].tag, 1);
  EXPECT_EQ(ev[2].kind, EventKind::kFence);
  EXPECT_EQ(ev[2].a1, 2.0);  // epoch messages

  const auto& m = tracer.metrics();
  EXPECT_EQ(m.total(m.find("simmpi.msgs_sent")), 2.0);
  EXPECT_EQ(m.value(m.find("simmpi.msgs_sent"), 0), 2.0);
  EXPECT_EQ(m.total(m.find("simmpi.msgs_solve")), 1.0);
  EXPECT_EQ(m.total(m.find("simmpi.msgs_residual")), 1.0);
  EXPECT_EQ(m.total(m.find("simmpi.msgs_other")), 0.0);
  EXPECT_GT(m.total(m.find("simmpi.bytes_sent")), 0.0);
  rt.set_tracer(nullptr);
}

TEST(RuntimeTracing, RankCountMismatchIsRejected) {
  simmpi::Runtime rt(3);
  Tracer tracer(2);
  EXPECT_THROW(rt.set_tracer(&tracer), util::CheckError);
}

// ---------------------------------------------------------------------------
// Minimal JSON validity checker for the exporter tests (structure only; no
// value model). Accepts exactly the RFC 8259 grammar the exporters emit.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') return ++pos_, true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k) {
            ++pos_;
            if (pos_ >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }
  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

bool is_valid_json(std::string_view s) { return JsonChecker(s).valid(); }

TEST(JsonChecker, SelfTest) {
  EXPECT_TRUE(is_valid_json(R"({"a": [1, -2.5e3, "x\n"], "b": null})"));
  EXPECT_FALSE(is_valid_json(R"({"a": })"));
  EXPECT_FALSE(is_valid_json(R"({"a": 1} trailing)"));
  EXPECT_FALSE(is_valid_json("{'a': 1}"));
  EXPECT_FALSE(is_valid_json(R"([1,])"));
}

}  // namespace
}  // namespace dsouth::trace

// ---------------------------------------------------------------------------
// End-to-end: traced distributed runs. The merged trace stream — and hence
// the default exporter output — must be byte-identical across execution
// backends and thread counts, for every solver and rank count; the per-tag
// trace counters must reproduce the CommStats breakdown exactly; and
// tracing must be invisible to the simulation itself.
// ---------------------------------------------------------------------------

namespace dsouth::dist {
namespace {

struct Problem {
  CsrMatrix a;
  std::vector<value_t> b, x0;
  graph::Partition part;
};

Problem make_problem(index_t nx, index_t k, std::uint64_t seed) {
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(nx, nx)).a;
  p.b.assign(static_cast<std::size_t>(p.a.rows()), 0.0);
  p.x0.resize(p.b.size());
  util::Rng rng(seed);
  rng.fill_uniform(p.x0, -1.0, 1.0);
  sparse::normalize_initial_residual(p.a, p.b, p.x0);
  auto g = graph::Graph::from_matrix_structure(p.a);
  p.part = graph::partition_recursive_bisection(g, k);
  return p;
}

std::string jsonl_of(const trace::TraceLog& log,
                     const trace::TraceExportOptions& opt = {}) {
  std::ostringstream os;
  trace::write_jsonl(os, log, opt);
  return os.str();
}

std::string chrome_of(const trace::TraceLog& log) {
  std::ostringstream os;
  trace::write_chrome_trace(os, log);
  return os.str();
}

class TraceDeterminism
    : public ::testing::TestWithParam<std::tuple<DistMethod, index_t>> {};

TEST_P(TraceDeterminism, ExportIsByteIdenticalAcrossBackends) {
  const auto [method, nranks] = GetParam();
  auto p = make_problem(10, nranks, 23 + static_cast<std::uint64_t>(nranks));

  DistRunOptions opt;
  opt.max_parallel_steps = 12;
  opt.trace.enabled = true;

  DistRunOptions seq_opt = opt;
  seq_opt.backend = simmpi::BackendKind::kSequential;
  auto seq = run_distributed(method, p.a, p.part, p.b, p.x0, seq_opt);

  DistRunOptions thr_opt = opt;
  thr_opt.backend = simmpi::BackendKind::kThreadPool;
  thr_opt.num_threads = 4;
  auto thr = run_distributed(method, p.a, p.part, p.b, p.x0, thr_opt);

  ASSERT_TRUE(seq.trace_log);
  ASSERT_TRUE(thr.trace_log);
  EXPECT_GT(seq.trace_log->events.size(), 0u);
  EXPECT_EQ(seq.trace_log->dropped_events, 0u);

  // Default exports (no wall clock) are pure functions of the deterministic
  // trace, so a string comparison is the whole determinism check.
  EXPECT_EQ(jsonl_of(*seq.trace_log), jsonl_of(*thr.trace_log));
  EXPECT_EQ(chrome_of(*seq.trace_log), chrome_of(*thr.trace_log));
}

TEST_P(TraceDeterminism, StreamIsWellFormed) {
  const auto [method, nranks] = GetParam();
  auto p = make_problem(8, nranks, 31);
  DistRunOptions opt;
  opt.max_parallel_steps = 8;
  opt.trace.enabled = true;
  auto r = run_distributed(method, p.a, p.part, p.b, p.x0, opt);
  ASSERT_TRUE(r.trace_log);
  const auto& ev = r.trace_log->events;
  std::uint64_t last_epoch = 0;
  for (std::size_t k = 0; k < ev.size(); ++k) {
    EXPECT_EQ(ev[k].seq, k);
    EXPECT_GE(ev[k].epoch, last_epoch);  // epochs are nondecreasing
    last_epoch = ev[k].epoch;
    switch (ev[k].kind) {
      case trace::EventKind::kPut:
        EXPECT_GE(ev[k].peer, 0);
        EXPECT_GE(ev[k].tag, 0);
        EXPECT_GE(ev[k].rank, 0);
        break;
      case trace::EventKind::kFence:
        EXPECT_EQ(ev[k].rank, -1);
        break;
      default:
        EXPECT_GE(ev[k].rank, 0);
        EXPECT_EQ(ev[k].peer, -1);
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethodsRanks, TraceDeterminism,
    ::testing::Combine(
        ::testing::Values(DistMethod::kBlockJacobi,
                          DistMethod::kParallelSouthwell,
                          DistMethod::kDistributedSouthwell,
                          DistMethod::kMulticolorBlockGs),
        ::testing::Values<index_t>(1, 4, 13)),
    [](const auto& info) {
      return std::string(method_name(std::get<0>(info.param))) + "_P" +
             std::to_string(std::get<1>(info.param));
    });

// Exporter output parses as JSON: every JSONL line and the whole Chrome
// document (which is what Perfetto ingests).
TEST(TraceExport, JsonlAndChromeAreValidJson) {
  auto p = make_problem(8, 4, 7);
  DistRunOptions opt;
  opt.max_parallel_steps = 6;
  opt.trace.enabled = true;
  auto r = run_distributed(DistMethod::kDistributedSouthwell, p.a, p.part,
                           p.b, p.x0, opt);
  ASSERT_TRUE(r.trace_log);

  trace::TraceExportOptions eopt;
  eopt.include_wall_clock = true;  // exercise the optional field too
  eopt.run_label = "unit \"quoted\" label\n";
  std::istringstream lines(jsonl_of(*r.trace_log, eopt));
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(trace::is_valid_json(line)) << "line " << count << ": "
                                            << line;
    ++count;
  }
  // header + every event + every metric.
  EXPECT_EQ(count, 1 + r.trace_log->events.size() +
                       r.trace_log->metrics.size());

  EXPECT_TRUE(trace::is_valid_json(chrome_of(*r.trace_log)));
}

// The Table-3 cross-check: per-tag trace counters reproduce the CommStats
// communication breakdown exactly (they share no code path past put()).
TEST(TraceMetrics, PerTagCountersMatchCommStatsExactly) {
  auto p = make_problem(10, 13, 3);
  for (auto method : {DistMethod::kParallelSouthwell,
                      DistMethod::kDistributedSouthwell}) {
    DistRunOptions opt;
    opt.max_parallel_steps = 15;
    opt.trace.enabled = true;
    auto r = run_distributed(method, p.a, p.part, p.b, p.x0, opt);
    ASSERT_TRUE(r.trace_log);
    const auto& m = r.trace_log->metrics;
    const double pcount = static_cast<double>(r.num_ranks);
    EXPECT_EQ(m.total(m.find("simmpi.msgs_solve")) / pcount,
              r.solve_comm.back());
    EXPECT_EQ(m.total(m.find("simmpi.msgs_residual")) / pcount,
              r.res_comm.back());
    EXPECT_EQ(m.total(m.find("simmpi.msgs_sent")) / pcount,
              r.comm_cost.back());
    // Event counts agree with the counters when nothing was dropped.
    ASSERT_EQ(r.trace_log->dropped_events, 0u);
    std::size_t puts = 0;
    for (const auto& ev : r.trace_log->events) {
      puts += ev.kind == trace::EventKind::kPut;
    }
    EXPECT_EQ(static_cast<double>(puts), m.total(m.find("simmpi.msgs_sent")));
  }
}

// DS-specific counters mirror the solver's own per-rank tallies.
TEST(TraceMetrics, DistributedSouthwellCountersMatchSolver) {
  auto p = make_problem(10, 8, 5);
  DistRunOptions opt;
  opt.max_parallel_steps = 15;
  opt.trace.enabled = true;
  opt.ds.send_threshold = 0.05;  // exercise the deferral counter too
  auto r = run_distributed(DistMethod::kDistributedSouthwell, p.a, p.part,
                           p.b, p.x0, opt);
  ASSERT_TRUE(r.trace_log);
  const auto& m = r.trace_log->metrics;
  // res_comm counts exactly the correction messages, so the ds counter must
  // agree with the runtime's per-tag stats.
  EXPECT_EQ(m.total(m.find("ds.corrections_sent")),
            m.total(m.find("simmpi.msgs_residual")));
  EXPECT_NE(m.find("ds.deferred_sends"), trace::kInvalidMetric);
}

// Tracing must be invisible: the simulation's results with tracing enabled
// are bit-identical to a run without it, and a run without it carries no
// trace log.
TEST(TraceOverhead, TracingDoesNotPerturbTheSimulation) {
  auto p = make_problem(10, 6, 11);
  DistRunOptions off;
  off.max_parallel_steps = 12;
  auto a = run_distributed(DistMethod::kDistributedSouthwell, p.a, p.part,
                           p.b, p.x0, off);
  EXPECT_FALSE(a.trace_log);

  DistRunOptions on = off;
  on.trace.enabled = true;
  auto b = run_distributed(DistMethod::kDistributedSouthwell, p.a, p.part,
                           p.b, p.x0, on);
  ASSERT_TRUE(b.trace_log);

  EXPECT_EQ(a.residual_norm, b.residual_norm);
  EXPECT_EQ(a.model_time, b.model_time);
  EXPECT_EQ(a.comm_cost, b.comm_cost);
  EXPECT_EQ(a.solve_comm, b.solve_comm);
  EXPECT_EQ(a.res_comm, b.res_comm);
  EXPECT_EQ(a.relaxations, b.relaxations);
  EXPECT_EQ(a.final_x, b.final_x);
}

// Ring overflow drops the same events no matter which backend ran the
// epochs — drop accounting is part of the determinism contract.
TEST(TraceOverhead, RingDropsAreBackendIndependent) {
  auto p = make_problem(10, 4, 13);
  DistRunOptions opt;
  opt.max_parallel_steps = 10;
  opt.trace.enabled = true;
  opt.trace.ring_capacity = 2;  // absurdly small: force drops

  DistRunOptions seq_opt = opt;
  seq_opt.backend = simmpi::BackendKind::kSequential;
  auto seq = run_distributed(DistMethod::kParallelSouthwell, p.a, p.part,
                             p.b, p.x0, seq_opt);

  DistRunOptions thr_opt = opt;
  thr_opt.backend = simmpi::BackendKind::kThreadPool;
  thr_opt.num_threads = 3;
  auto thr = run_distributed(DistMethod::kParallelSouthwell, p.a, p.part,
                             p.b, p.x0, thr_opt);

  ASSERT_TRUE(seq.trace_log);
  ASSERT_TRUE(thr.trace_log);
  EXPECT_GT(seq.trace_log->dropped_events, 0u);
  EXPECT_EQ(seq.trace_log->dropped_events, thr.trace_log->dropped_events);
  EXPECT_EQ(jsonl_of(*seq.trace_log), jsonl_of(*thr.trace_log));
}

}  // namespace
}  // namespace dsouth::dist
