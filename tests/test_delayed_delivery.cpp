/// Tests for the weak-delivery (message delay) model: runtime semantics,
/// and the robustness of the three distributed methods when one-sided
/// writes land late — the asynchronous regime the paper's deadlock
/// discussion (§2.4, §3) is ultimately about.

#include <gtest/gtest.h>

#include "dist/driver.hpp"
#include "graph/partition.hpp"
#include "simmpi/runtime.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace dsouth {
namespace {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

TEST(DelayedDelivery, NoDelayModelDeliversNextFence) {
  simmpi::Runtime rt(2);
  rt.put(0, 1, simmpi::MsgTag::kSolve, std::vector<double>{1.0});
  rt.fence();
  EXPECT_EQ(rt.window(1).size(), 1u);
  EXPECT_EQ(rt.delayed_in_flight(), 0u);
}

TEST(DelayedDelivery, AllMessagesDelayedLandLater) {
  simmpi::DeliveryModel dm;
  dm.delay_probability = 1.0;
  dm.max_delay_epochs = 1;  // exactly one extra fence
  simmpi::Runtime rt(2, simmpi::MachineModel{}, dm);
  rt.put(0, 1, simmpi::MsgTag::kSolve, std::vector<double>{1.0});
  rt.fence();
  EXPECT_TRUE(rt.window(1).empty());
  EXPECT_EQ(rt.delayed_in_flight(), 1u);
  rt.fence();
  EXPECT_EQ(rt.window(1).size(), 1u);
  EXPECT_EQ(rt.delayed_in_flight(), 0u);
}

TEST(DelayedDelivery, DrainDelaysFlushesEverything) {
  simmpi::DeliveryModel dm;
  dm.delay_probability = 1.0;
  dm.max_delay_epochs = 3;
  simmpi::Runtime rt(3, simmpi::MachineModel{}, dm);
  for (int k = 0; k < 5; ++k) {
    rt.put(0, 1, simmpi::MsgTag::kSolve, std::vector<double>{double(k)});
    rt.put(2, 1, simmpi::MsgTag::kSolve, std::vector<double>{double(k)});
  }
  rt.drain_delayed();
  EXPECT_EQ(rt.delayed_in_flight(), 0u);
}

TEST(DelayedDelivery, DeterministicForSeed) {
  auto run = [] {
    simmpi::DeliveryModel dm;
    dm.delay_probability = 0.5;
    dm.seed = 42;
    simmpi::Runtime rt(2, simmpi::MachineModel{}, dm);
    std::vector<std::size_t> arrivals;
    for (int k = 0; k < 20; ++k) {
      rt.put(0, 1, simmpi::MsgTag::kSolve, std::vector<double>{double(k)});
      rt.fence();
      arrivals.push_back(rt.window(1).size());
    }
    return arrivals;
  };
  EXPECT_EQ(run(), run());
}

struct Problem {
  CsrMatrix a;
  std::vector<value_t> b, x0;
  graph::Partition part;
};

Problem make_problem(index_t nx, index_t ranks, std::uint64_t seed) {
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(nx, nx)).a;
  p.b.assign(static_cast<std::size_t>(p.a.rows()), 0.0);
  p.x0.resize(p.b.size());
  util::Rng rng(seed);
  rng.fill_uniform(p.x0, -1.0, 1.0);
  sparse::normalize_initial_residual(p.a, p.b, p.x0);
  p.part = graph::partition_recursive_bisection(
      graph::Graph::from_matrix_structure(p.a), ranks);
  return p;
}

/// Every method keeps converging under moderate message delays (the
/// updates are linear corrections, so late application is still correct).
class DelayRobustness
    : public ::testing::TestWithParam<dist::DistMethod> {};

TEST_P(DelayRobustness, ConvergesUnderSingleEpochDelays) {
  // Delays bounded by one epoch preserve per-source ordering across the
  // two fences of a parallel step; every method stays convergent.
  auto p = make_problem(14, 12, 31);
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 120;
  opt.delivery.delay_probability = 0.3;
  opt.delivery.max_delay_epochs = 1;
  auto r = dist::run_distributed(GetParam(), p.a, p.part, p.b, p.x0, opt);
  EXPECT_LT(r.residual_norm.back(), 0.05)
      << dist::method_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Methods, DelayRobustness,
    ::testing::Values(dist::DistMethod::kBlockJacobi,
                      dist::DistMethod::kParallelSouthwell,
                      dist::DistMethod::kDistributedSouthwell,
                      dist::DistMethod::kMulticolorBlockGs),
    [](const auto& info) {
      return std::string(dist::method_name(info.param));
    });

TEST(DelayRobustness, PlainDsCanLivelockUnderReordering) {
  // Pin the honest finding: multi-epoch delays can reorder a rank's own
  // messages, after which DS's Γ̃ bookkeeping lies permanently (a
  // neighbor's overestimate the owner believes it already corrected) and
  // the method stalls — while Parallel Southwell's unconditional
  // re-advertising self-heals. Deterministic seeds make the stall a
  // stable regression anchor rather than flakiness.
  auto p = make_problem(14, 12, 31);
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 120;
  opt.delivery.delay_probability = 0.3;
  opt.delivery.max_delay_epochs = 3;
  auto ds = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                  p.a, p.part, p.b, p.x0, opt);
  EXPECT_GT(ds.residual_norm.back(), 0.05);  // stalled
  auto ps = dist::run_distributed(dist::DistMethod::kParallelSouthwell, p.a,
                                  p.part, p.b, p.x0, opt);
  EXPECT_LT(ps.residual_norm.back(), 0.05);  // PS self-heals
}

TEST(DelayRobustness, HeartbeatHardensDsAgainstReordering) {
  // The extension fix: a periodic unconditional residual broadcast bounds
  // the Γ̃ staleness and restores convergence in the same regime.
  auto p = make_problem(14, 12, 31);
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 120;
  opt.delivery.delay_probability = 0.3;
  opt.delivery.max_delay_epochs = 3;
  opt.ds.heartbeat_period = 10;
  auto r = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                 p.a, p.part, p.b, p.x0, opt);
  EXPECT_LT(r.residual_norm.back(), 0.05);
}

TEST(DelayRobustness, HeartbeatIsFreeWithoutDelays) {
  // Heartbeats add messages but must not change convergence without
  // delays; with the period larger than the run they change nothing.
  auto p = make_problem(10, 8, 33);
  dist::DistRunOptions plain;
  plain.max_parallel_steps = 25;
  dist::DistRunOptions hb = plain;
  hb.ds.heartbeat_period = 100;  // never fires in 25 steps
  auto a = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                 p.a, p.part, p.b, p.x0, plain);
  auto b = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                 p.a, p.part, p.b, p.x0, hb);
  for (std::size_t k = 0; k < a.residual_norm.size(); ++k) {
    EXPECT_DOUBLE_EQ(a.residual_norm[k], b.residual_norm[k]);
  }
}

TEST(DelayRobustness, ResidualStaysConsistentAfterDrain) {
  // Under delays, in-flight Δx makes the concatenated local residuals
  // differ from the true residual of the gathered iterate — but the local
  // view is exactly "true residual minus unapplied linear corrections",
  // so once everything lands the two agree. Verified via the solver
  // directly (the driver's run loop doesn't drain).
  auto p = make_problem(12, 8, 32);
  dist::DistLayout layout(p.a, p.part);
  simmpi::DeliveryModel dm;
  dm.delay_probability = 0.5;
  dm.max_delay_epochs = 2;
  simmpi::Runtime rt(8, simmpi::MachineModel{}, dm);
  dist::DistRunOptions opt;
  auto solver = dist::make_dist_solver(dist::DistMethod::kBlockJacobi,
                                       layout, rt, p.b, p.x0, opt);
  for (int k = 0; k < 10; ++k) solver->step();
  rt.drain_delayed();
  // Absorb what the drain delivered (Block Jacobi applies pending deltas
  // in its next step; emulate by one more step which first absorbs).
  solver->step();
  rt.drain_delayed();
  solver->step();
  auto x = solver->gather_x();
  std::vector<value_t> r(x.size());
  p.a.residual(p.b, x, r);
  // After two drain+step rounds, the windows are nearly caught up; allow
  // residual slack for still-in-flight messages from the last step.
  EXPECT_NEAR(solver->global_residual_norm(), sparse::norm2(r),
              0.15 * sparse::norm2(r) + 1e-9);
}

}  // namespace
}  // namespace dsouth
