/// Tests for the weak-delivery (message delay) model: runtime semantics,
/// and the robustness of the three distributed methods when one-sided
/// writes land late — the asynchronous regime the paper's deadlock
/// discussion (§2.4, §3) is ultimately about.

#include <gtest/gtest.h>

#include "dist/driver.hpp"
#include "graph/partition.hpp"
#include "simmpi/runtime.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "simmpi/rank_context.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"
#include "wire/comm_plan.hpp"
#include "wire/wire.hpp"

namespace dsouth {
namespace {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

TEST(DelayedDelivery, NoDelayModelDeliversNextFence) {
  simmpi::Runtime rt(2);
  rt.put(0, 1, simmpi::MsgTag::kSolve, std::vector<double>{1.0});
  rt.fence();
  EXPECT_EQ(rt.window(1).size(), 1u);
  EXPECT_EQ(rt.delayed_in_flight(), 0u);
}

TEST(DelayedDelivery, AllMessagesDelayedLandLater) {
  simmpi::DeliveryModel dm;
  dm.delay_probability = 1.0;
  dm.max_delay_epochs = 1;  // exactly one extra fence
  simmpi::Runtime rt(2, simmpi::MachineModel{}, dm);
  rt.put(0, 1, simmpi::MsgTag::kSolve, std::vector<double>{1.0});
  rt.fence();
  EXPECT_TRUE(rt.window(1).empty());
  EXPECT_EQ(rt.delayed_in_flight(), 1u);
  rt.fence();
  EXPECT_EQ(rt.window(1).size(), 1u);
  EXPECT_EQ(rt.delayed_in_flight(), 0u);
}

TEST(DelayedDelivery, DrainDelaysFlushesEverything) {
  simmpi::DeliveryModel dm;
  dm.delay_probability = 1.0;
  dm.max_delay_epochs = 3;
  simmpi::Runtime rt(3, simmpi::MachineModel{}, dm);
  for (int k = 0; k < 5; ++k) {
    rt.put(0, 1, simmpi::MsgTag::kSolve, std::vector<double>{double(k)});
    rt.put(2, 1, simmpi::MsgTag::kSolve, std::vector<double>{double(k)});
  }
  rt.drain_delayed();
  EXPECT_EQ(rt.delayed_in_flight(), 0u);
}

TEST(DelayedDelivery, DeterministicForSeed) {
  auto run = [] {
    simmpi::DeliveryModel dm;
    dm.delay_probability = 0.5;
    dm.seed = 42;
    simmpi::Runtime rt(2, simmpi::MachineModel{}, dm);
    std::vector<std::size_t> arrivals;
    for (int k = 0; k < 20; ++k) {
      rt.put(0, 1, simmpi::MsgTag::kSolve, std::vector<double>{double(k)});
      rt.fence();
      arrivals.push_back(rt.window(1).size());
    }
    return arrivals;
  };
  EXPECT_EQ(run(), run());
}

struct Problem {
  CsrMatrix a;
  std::vector<value_t> b, x0;
  graph::Partition part;
};

Problem make_problem(index_t nx, index_t ranks, std::uint64_t seed) {
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(nx, nx)).a;
  p.b.assign(static_cast<std::size_t>(p.a.rows()), 0.0);
  p.x0.resize(p.b.size());
  util::Rng rng(seed);
  rng.fill_uniform(p.x0, -1.0, 1.0);
  sparse::normalize_initial_residual(p.a, p.b, p.x0);
  p.part = graph::partition_recursive_bisection(
      graph::Graph::from_matrix_structure(p.a), ranks);
  return p;
}

/// Every method keeps converging under moderate message delays (the
/// updates are linear corrections, so late application is still correct).
class DelayRobustness
    : public ::testing::TestWithParam<dist::DistMethod> {};

TEST_P(DelayRobustness, ConvergesUnderSingleEpochDelays) {
  // Delays bounded by one epoch preserve per-source ordering across the
  // two fences of a parallel step; every method stays convergent.
  auto p = make_problem(14, 12, 31);
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 120;
  opt.delivery.delay_probability = 0.3;
  opt.delivery.max_delay_epochs = 1;
  auto r = dist::run_distributed(GetParam(), p.a, p.part, p.b, p.x0, opt);
  EXPECT_LT(r.residual_norm.back(), 0.05)
      << dist::method_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Methods, DelayRobustness,
    ::testing::Values(dist::DistMethod::kBlockJacobi,
                      dist::DistMethod::kParallelSouthwell,
                      dist::DistMethod::kDistributedSouthwell,
                      dist::DistMethod::kMulticolorBlockGs),
    [](const auto& info) {
      return std::string(dist::method_name(info.param));
    });

TEST(DelayRobustness, PlainDsCanLivelockUnderReordering) {
  // Pin the honest finding: multi-epoch delays can reorder a rank's own
  // messages, after which DS's Γ̃ bookkeeping lies permanently (a
  // neighbor's overestimate the owner believes it already corrected) and
  // the method stalls — while Parallel Southwell's unconditional
  // re-advertising self-heals. Deterministic seeds make the stall a
  // stable regression anchor rather than flakiness.
  auto p = make_problem(14, 12, 31);
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 120;
  opt.delivery.delay_probability = 0.3;
  opt.delivery.max_delay_epochs = 3;
  auto ds = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                  p.a, p.part, p.b, p.x0, opt);
  EXPECT_GT(ds.residual_norm.back(), 0.05);  // stalled
  auto ps = dist::run_distributed(dist::DistMethod::kParallelSouthwell, p.a,
                                  p.part, p.b, p.x0, opt);
  EXPECT_LT(ps.residual_norm.back(), 0.05);  // PS self-heals
}

TEST(DelayRobustness, HeartbeatHardensDsAgainstReordering) {
  // The extension fix: a periodic unconditional residual broadcast bounds
  // the Γ̃ staleness and restores convergence in the same regime.
  auto p = make_problem(14, 12, 31);
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 120;
  opt.delivery.delay_probability = 0.3;
  opt.delivery.max_delay_epochs = 3;
  opt.ds.heartbeat_period = 10;
  auto r = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                 p.a, p.part, p.b, p.x0, opt);
  EXPECT_LT(r.residual_norm.back(), 0.05);
}

TEST(DelayRobustness, HeartbeatIsFreeWithoutDelays) {
  // Heartbeats add messages but must not change convergence without
  // delays; with the period larger than the run they change nothing.
  auto p = make_problem(10, 8, 33);
  dist::DistRunOptions plain;
  plain.max_parallel_steps = 25;
  dist::DistRunOptions hb = plain;
  hb.ds.heartbeat_period = 100;  // never fires in 25 steps
  auto a = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                 p.a, p.part, p.b, p.x0, plain);
  auto b = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                 p.a, p.part, p.b, p.x0, hb);
  for (std::size_t k = 0; k < a.residual_norm.size(); ++k) {
    EXPECT_DOUBLE_EQ(a.residual_norm[k], b.residual_norm[k]);
  }
}

TEST(DelayRobustness, ResidualStaysConsistentAfterDrain) {
  // Under delays, in-flight Δx makes the concatenated local residuals
  // differ from the true residual of the gathered iterate — but the local
  // view is exactly "true residual minus unapplied linear corrections",
  // so once everything lands the two agree. Verified via the solver
  // directly (the driver's run loop doesn't drain).
  auto p = make_problem(12, 8, 32);
  dist::DistLayout layout(p.a, p.part);
  simmpi::DeliveryModel dm;
  dm.delay_probability = 0.5;
  dm.max_delay_epochs = 2;
  simmpi::Runtime rt(8, simmpi::MachineModel{}, dm);
  dist::DistRunOptions opt;
  auto solver = dist::make_dist_solver(dist::DistMethod::kBlockJacobi,
                                       layout, rt, p.b, p.x0, opt);
  for (int k = 0; k < 10; ++k) solver->step();
  rt.drain_delayed();
  // Absorb what the drain delivered (Block Jacobi applies pending deltas
  // in its next step; emulate by one more step which first absorbs).
  solver->step();
  rt.drain_delayed();
  solver->step();
  auto x = solver->gather_x();
  std::vector<value_t> r(x.size());
  p.a.residual(p.b, x, r);
  // After two drain+step rounds, the windows are nearly caught up; allow
  // residual slack for still-in-flight messages from the last step.
  EXPECT_NEAR(solver->global_residual_norm(), sparse::norm2(r),
              0.15 * sparse::norm2(r) + 1e-9);
}

TEST(DelayedDelivery, DelayNeverExceedsConfiguredBound) {
  // Every message lands at most max_delay_epochs fences after the fence
  // that would have delivered it — the staleness bound the heartbeat
  // hardening relies on.
  simmpi::DeliveryModel dm;
  dm.delay_probability = 1.0;
  dm.max_delay_epochs = 3;
  simmpi::Runtime rt(2, simmpi::MachineModel{}, dm);
  std::vector<int> send_fence(10), arrive_fence(10, -1);
  for (int f = 0; f < 10 + dm.max_delay_epochs; ++f) {
    if (f < 10) {
      rt.put(0, 1, simmpi::MsgTag::kSolve, std::vector<double>{double(f)});
      send_fence[static_cast<std::size_t>(f)] = f;
    }
    rt.fence();
    for (const auto& m : rt.window(1)) {
      arrive_fence[static_cast<std::size_t>(m.payload[0])] = f;
    }
    rt.consume(1);
  }
  for (int k = 0; k < 10; ++k) {
    ASSERT_GE(arrive_fence[static_cast<std::size_t>(k)], 0) << "msg " << k;
    const int delay = arrive_fence[static_cast<std::size_t>(k)] -
                      send_fence[static_cast<std::size_t>(k)];
    EXPECT_GE(delay, 0);
    EXPECT_LE(delay, dm.max_delay_epochs);
  }
}

TEST(DelayedDelivery, SameSourceCanBeObservedOutOfOrder) {
  // Two same-epoch puts from one source: if the first draws a delay and
  // the second does not, the receiver observes them out of order across
  // fences — the staleness regime the DS livelock test pins down. Scan
  // seeds until the reordering shows up (deterministically).
  bool reordered = false;
  for (std::uint64_t seed = 0; seed < 200 && !reordered; ++seed) {
    simmpi::DeliveryModel dm;
    dm.delay_probability = 0.5;
    dm.max_delay_epochs = 2;
    dm.seed = seed;
    simmpi::Runtime rt(2, simmpi::MachineModel{}, dm);
    rt.put(0, 1, simmpi::MsgTag::kSolve, std::vector<double>{0.0});
    rt.put(0, 1, simmpi::MsgTag::kSolve, std::vector<double>{1.0});
    rt.fence();
    const auto win = rt.window(1);
    if (win.size() == 1 && win[0].payload[0] == 1.0) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST(DelayedDelivery, CoalescedFramesComposeWithDelays) {
  // A delayed or reordered frame is still a frame: the magic-NaN marker
  // and the validated entry walk mean late delivery can never make the
  // decoder misparse — every logical record eventually arrives intact.
  simmpi::DeliveryModel dm;
  dm.delay_probability = 0.5;
  dm.max_delay_epochs = 2;
  dm.seed = 7;
  simmpi::Runtime rt(2, simmpi::MachineModel{}, dm);
  wire::CommPlan plan({{{1, 2, 2}}, {{0, 2, 2}}});
  wire::ChannelSet ch(plan, 0);
  ch.set_coalescing(true);
  simmpi::RankContext ctx(rt, 0);

  std::size_t records_seen = 0;
  double norm_sum = 0.0;
  const auto absorb = [&] {
    for (const auto& m : rt.window(1)) {
      wire::for_each_record(wire::Family::kEstimate, m.payload, 2,
                            [&](const wire::Record& rec) {
                              ++records_seen;
                              norm_sum += rec.norm2;
                            });
    }
    rt.consume(1);
  };

  double sent_norm_sum = 0.0;
  for (int e = 0; e < 6; ++e) {
    for (int i = 0; i < 2; ++i) {
      const double n2 = 1.0 + 2.0 * e + i;
      sent_norm_sum += n2;
      auto rec = ch.open(ctx, 0, wire::RecordType::kSolveUpdate, n2, 0.5);
      rec.dx[0] = rec.dx[1] = rec.rb[0] = rec.rb[1] = 0.0;
    }
    ch.flush(ctx);
    rt.fence();
    absorb();
  }
  rt.drain_delayed();
  absorb();
  EXPECT_EQ(records_seen, 12u);
  EXPECT_EQ(norm_sum, sent_norm_sum);
  // Frames count once physically, per-record logically.
  EXPECT_EQ(rt.stats().total_messages(), 6u);
  EXPECT_EQ(rt.stats().logical_messages(), 12u);
}

}  // namespace
}  // namespace dsouth
