#include "multigrid/amg.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sparse/dense.hpp"
#include "sparse/fem.hpp"
#include "sparse/mesh.hpp"
#include "sparse/proxy_suite.hpp"
#include "sparse/spgemm.hpp"
#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsouth::multigrid {
namespace {

using sparse::CsrMatrix;
using sparse::value_t;

// ------------------------------------------------------------- spgemm

TEST(Spgemm, MatchesDenseProduct) {
  auto a = sparse::poisson2d_5pt(4, 5);     // 20x20
  auto b = sparse::poisson2d_9pt(4, 5);     // 20x20
  auto c = sparse::spgemm(a, b);
  auto da = sparse::DenseMatrix::from_csr(a);
  auto db = sparse::DenseMatrix::from_csr(b);
  for (index_t i = 0; i < c.rows(); ++i) {
    for (index_t j = 0; j < c.cols(); ++j) {
      value_t ref = 0.0;
      for (index_t k = 0; k < a.cols(); ++k) ref += da(i, k) * db(k, j);
      EXPECT_NEAR(c.at(i, j), ref, 1e-12) << i << "," << j;
    }
  }
  EXPECT_TRUE(c.validate());
}

TEST(Spgemm, RectangularShapes) {
  // (2x3) * (3x2) = 2x2.
  CsrMatrix a(2, 3, {0, 2, 3}, {0, 2, 1}, {1.0, 2.0, 3.0});
  CsrMatrix b(3, 2, {0, 1, 2, 3}, {1, 0, 0}, {4.0, 5.0, 6.0});
  auto c = sparse::spgemm(a, b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 4.0);   // 1*4
  EXPECT_DOUBLE_EQ(c.at(0, 0), 12.0);  // 2*6
  EXPECT_DOUBLE_EQ(c.at(1, 0), 15.0);  // 3*5
}

TEST(Spgemm, DimensionMismatchThrows) {
  auto a = sparse::poisson2d_5pt(3, 3);
  CsrMatrix b(4, 4, {0, 0, 0, 0, 0}, {}, {});
  EXPECT_THROW(sparse::spgemm(a, b), util::CheckError);
}

TEST(Spgemm, GalerkinPreservesSpd) {
  auto a = sparse::poisson2d_5pt(8, 8);
  index_t num_agg = 0;
  auto agg = aggregate(a, 0.08, &num_agg);
  auto p = aggregation_prolongator(agg, num_agg);
  auto ac = sparse::galerkin_product(a, p);
  EXPECT_EQ(ac.rows(), num_agg);
  EXPECT_TRUE(ac.is_symmetric(1e-12));
  EXPECT_NO_THROW(sparse::DenseCholesky{ac});
}

// ---------------------------------------------------------- aggregation

TEST(Aggregation, CoversEveryRowWithDenseIds) {
  auto a = sparse::poisson2d_5pt(10, 10);
  index_t num_agg = 0;
  auto agg = aggregate(a, 0.08, &num_agg);
  ASSERT_EQ(agg.size(), 100u);
  std::set<index_t> ids(agg.begin(), agg.end());
  EXPECT_EQ(static_cast<index_t>(ids.size()), num_agg);
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), num_agg - 1);
  // Meaningful coarsening on a mesh graph.
  EXPECT_LT(num_agg, 50);
  EXPECT_GT(num_agg, 5);
}

TEST(Aggregation, HugeThresholdMakesSingletons) {
  auto a = sparse::poisson2d_5pt(4, 4);
  index_t num_agg = 0;
  auto agg = aggregate(a, 1e9, &num_agg);
  EXPECT_EQ(num_agg, 16);  // nothing is "strong": all singletons
  (void)agg;
}

TEST(Aggregation, ProlongatorHasOneEntryPerRow) {
  auto a = sparse::poisson2d_5pt(6, 6);
  index_t num_agg = 0;
  auto agg = aggregate(a, 0.08, &num_agg);
  auto p = aggregation_prolongator(agg, num_agg);
  EXPECT_EQ(p.rows(), 36);
  EXPECT_EQ(p.cols(), num_agg);
  EXPECT_EQ(p.nnz(), 36);
  for (index_t i = 0; i < p.rows(); ++i) {
    ASSERT_EQ(p.row_nnz(i), 1);
    EXPECT_DOUBLE_EQ(p.row_vals(i)[0], 1.0);
  }
}

// ----------------------------------------------------------------- AMG

TEST(Amg, BuildsMultiLevelHierarchyOnPoisson) {
  AmgHierarchy amg(sparse::poisson2d_5pt(24, 24));
  EXPECT_GE(amg.num_levels(), 2);
  EXPECT_LE(amg.level_rows(amg.num_levels() - 1), 64);
  // Levels shrink monotonically.
  for (int l = 1; l < amg.num_levels(); ++l) {
    EXPECT_LT(amg.level_rows(l), amg.level_rows(l - 1));
  }
  EXPECT_LT(amg.operator_complexity(), 2.0);
}

TEST(Amg, VcycleContractsOnPoisson) {
  auto a = sparse::poisson2d_5pt(24, 24);
  AmgHierarchy amg(a);
  util::Rng rng(1);
  std::vector<value_t> b(static_cast<std::size_t>(a.rows()));
  rng.fill_uniform(b, -1.0, 1.0);
  std::vector<value_t> x(b.size(), 0.0);
  auto smoother = make_gauss_seidel_smoother();
  const double rel = amg.solve_relative_residual(b, x, *smoother, 12);
  EXPECT_LT(rel, 1e-6);
}

TEST(Amg, WorksOnUnstructuredFemProblem) {
  auto mesh = sparse::make_perturbed_grid_mesh(25, 25, 0.25, 3);
  auto a = sparse::assemble_p1_poisson(mesh);
  AmgHierarchy amg(a);
  util::Rng rng(2);
  std::vector<value_t> b(static_cast<std::size_t>(a.rows()));
  rng.fill_uniform(b, -1.0, 1.0);
  std::vector<value_t> x(b.size(), 0.0);
  auto smoother = make_gauss_seidel_smoother();
  const double rel = amg.solve_relative_residual(b, x, *smoother, 15);
  EXPECT_LT(rel, 1e-5);
}

TEST(Amg, DistSouthwellSmootherWorksInAmg) {
  auto mesh = sparse::make_perturbed_grid_mesh(21, 21, 0.25, 4);
  auto a = sparse::assemble_p1_poisson(mesh);
  AmgHierarchy amg(a);
  util::Rng rng(3);
  std::vector<value_t> b(static_cast<std::size_t>(a.rows()));
  rng.fill_uniform(b, -1.0, 1.0);
  std::vector<value_t> x(b.size(), 0.0);
  auto smoother = make_distributed_southwell_smoother(1.0);
  const double rel = amg.solve_relative_residual(b, x, *smoother, 15);
  EXPECT_LT(rel, 1e-5);
}

TEST(Amg, ElasticityConvergesWithGsSmoothing) {
  // Scalar smoothed aggregation on elasticity is known to be slow (the
  // near-null space is rigid-body modes, not constants, and this AMG has
  // no null-space input), but V-cycles must still make steady progress.
  auto proxy = sparse::make_proxy("msdoorp", 0.02);
  AmgHierarchy amg(proxy.a);
  util::Rng rng(4);
  std::vector<value_t> b(static_cast<std::size_t>(proxy.a.rows()));
  rng.fill_uniform(b, -1.0, 1.0);
  std::vector<value_t> x(b.size(), 0.0);
  auto smoother = make_gauss_seidel_smoother();
  const double rel = amg.solve_relative_residual(b, x, *smoother, 25);
  EXPECT_LT(rel, 5e-2);
}

TEST(Amg, TinyMatrixIsSingleLevelDirectSolve) {
  auto a = sparse::poisson2d_5pt(4, 4);  // 16 <= coarse_size
  AmgHierarchy amg(a);
  EXPECT_EQ(amg.num_levels(), 1);
  util::Rng rng(5);
  std::vector<value_t> b(16);
  rng.fill_uniform(b, -1.0, 1.0);
  std::vector<value_t> x(16, 0.0);
  auto smoother = make_gauss_seidel_smoother();
  const double rel = amg.solve_relative_residual(b, x, *smoother, 1);
  EXPECT_LT(rel, 1e-12);
}

}  // namespace
}  // namespace dsouth::multigrid
