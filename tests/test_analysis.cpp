/// Tests for the trace-analysis layer (src/analysis): the golden P=4
/// Distributed Southwell run the ISSUE acceptance criteria name — comm
/// matrix totals equal to CommStats exactly, critical-path terms equal to
/// a hand-computed α–β–γ breakdown, byte-identical analyzer output across
/// execution backends — plus JSONL round-trip fidelity and the timeline /
/// convergence invariants.

#include "analysis/analyzer.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "analysis/render.hpp"
#include "analysis/run_trace.hpp"
#include "dist/driver.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "trace/export.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsouth::analysis {
namespace {

using dist::DistMethod;
using dist::DistRunOptions;
using dist::DistRunResult;
using sparse::index_t;
using sparse::value_t;

struct Problem {
  sparse::CsrMatrix a;
  std::vector<value_t> b;
  std::vector<value_t> x0;
  graph::Partition part;
};

Problem make_problem(index_t nx, index_t ranks, std::uint64_t seed) {
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(nx, nx)).a;
  p.b.assign(static_cast<std::size_t>(p.a.rows()), 0.0);
  p.x0.resize(p.b.size());
  util::Rng rng(seed);
  rng.fill_uniform(p.x0, -1.0, 1.0);
  sparse::normalize_initial_residual(p.a, p.b, p.x0);
  auto g = graph::Graph::from_matrix_structure(p.a);
  p.part = graph::partition_recursive_bisection(g, ranks);
  return p;
}

/// The golden run: P=4 Distributed Southwell, 12 steps, traced.
DistRunResult golden_ds_run(simmpi::BackendKind backend =
                                simmpi::BackendKind::kSequential) {
  auto p = make_problem(12, 4, 77);
  DistRunOptions opt;
  opt.max_parallel_steps = 12;
  opt.trace.enabled = true;
  opt.backend = backend;
  if (backend == simmpi::BackendKind::kThreadPool) opt.num_threads = 3;
  return dist::run_distributed(DistMethod::kDistributedSouthwell, p.a, p.part,
                               p.b, p.x0, opt);
}

// ---------------------------------------------------------------------------
// (b) Comm matrix vs CommStats: exact.
// ---------------------------------------------------------------------------

TEST(CommMatrix, TotalsEqualCommStatsExactly) {
  const auto r = golden_ds_run();
  ASSERT_TRUE(r.trace_log);
  ASSERT_EQ(r.trace_log->dropped_events, 0u);
  const auto run = from_trace_log(*r.trace_log, "golden");
  const auto cm = analyze_comm_matrix(run);

  EXPECT_EQ(cm.total_msgs, r.comm_totals.msgs);
  EXPECT_EQ(cm.total_bytes, r.comm_totals.bytes);
  EXPECT_EQ(cm.total_by_tag[static_cast<int>(simmpi::MsgTag::kSolve)],
            r.comm_totals.msgs_solve);
  EXPECT_EQ(cm.total_by_tag[static_cast<int>(simmpi::MsgTag::kResidual)],
            r.comm_totals.msgs_residual);
  EXPECT_EQ(cm.total_by_tag[static_cast<int>(simmpi::MsgTag::kOther)],
            r.comm_totals.msgs_other);
  // The paper's comm-cost metric (msgs / P) falls out of the matrix too —
  // Table 3's breakdown reproduced from the trace alone.
  EXPECT_EQ(cm.comm_cost(), r.comm_cost.back());
  EXPECT_EQ(cm.comm_cost(simmpi::MsgTag::kSolve), r.solve_comm.back());
  EXPECT_EQ(cm.comm_cost(simmpi::MsgTag::kResidual), r.res_comm.back());
}

TEST(CommMatrix, MatrixCellsAreConsistentWithTotals) {
  const auto r = golden_ds_run();
  const auto run = from_trace_log(*r.trace_log, "golden");
  const auto cm = analyze_comm_matrix(run);
  ASSERT_EQ(cm.num_ranks, 4);
  ASSERT_FALSE(cm.pairs.empty());

  std::uint64_t msgs = 0, bytes = 0;
  for (std::size_t i = 0; i < cm.pairs.size(); ++i) {
    const auto& cell = cm.pairs[i];
    EXPECT_NE(cell.src, cell.dst) << "self-messages are impossible";
    EXPECT_GT(cell.msgs, 0u) << "only touched cells are stored";
    msgs += cell.msgs;
    bytes += cell.bytes;
    // Per-tag counts partition each cell's message count.
    std::uint64_t by_tag = 0;
    for (auto m : cell.msgs_by_tag) by_tag += m;
    EXPECT_EQ(by_tag, cell.msgs);
    // Sparse lookup round-trips, and the list is (src, dst) ascending.
    EXPECT_EQ(cm.find(cell.src, cell.dst), &cell);
    if (i > 0) {
      const auto& prev = cm.pairs[i - 1];
      EXPECT_TRUE(prev.src < cell.src ||
                  (prev.src == cell.src && prev.dst < cell.dst));
    }
  }
  EXPECT_EQ(msgs, cm.total_msgs);
  EXPECT_EQ(bytes, cm.total_bytes);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(cm.find(s, s), nullptr) << "self-messages are impossible";
  }
  // Hot pairs are exactly the touched cells, ranked msgs-descending.
  EXPECT_EQ(cm.hot_pairs.size(), cm.pairs.size());
  for (std::size_t i = 1; i < cm.hot_pairs.size(); ++i) {
    EXPECT_GE(cm.hot_pairs[i - 1].msgs, cm.hot_pairs[i].msgs);
  }
}

// ---------------------------------------------------------------------------
// (c) Critical path: bit-exact model reconstruction + hand-computed check.
// ---------------------------------------------------------------------------

TEST(CriticalPath, ReproducesFenceModelSecondsBitExactly) {
  const auto r = golden_ds_run();
  const auto run = from_trace_log(*r.trace_log, "golden");
  const auto cp = analyze_critical_path(run, simmpi::MachineModel{});

  EXPECT_TRUE(cp.model_matches);
  for (const auto& step : cp.steps) {
    EXPECT_EQ(step.modeled_seconds, step.recorded_seconds)
        << "epoch " << step.epoch;
  }
  // Total modeled time re-derived from the trace equals the runtime's own
  // accumulation bit-for-bit (same addends, same order).
  EXPECT_EQ(cp.total_recorded_seconds, r.model_time.back());
  EXPECT_EQ(cp.total_modeled_seconds, r.model_time.back());
}

TEST(CriticalPath, TermsMatchHandComputedBreakdownOnSyntheticTrace) {
  // Hand-built two-epoch trace with round numbers so every α–β–γ term is
  // computable on paper. Model: c_flop=2, α=10, β=0.5, γ=8, σ=1.
  simmpi::MachineModel m;
  m.flop_time = 2.0;
  m.alpha = 10.0;
  m.beta = 0.5;
  m.gamma = 8.0;
  m.sigma = 1.0;

  RunTrace run;
  run.label = "synthetic";
  run.num_ranks = 2;
  auto ev = [&](trace::EventKind kind, int rank, int peer, int tag,
                std::uint64_t epoch, double a0, double a1) {
    trace::Event e;
    e.kind = kind;
    e.rank = rank;
    e.peer = peer;
    e.tag = tag;
    e.epoch = epoch;
    e.seq = run.events.size();
    e.a0 = a0;
    e.a1 = a1;
    run.events.push_back(e);
  };
  using trace::EventKind;
  // Epoch 0: rank 0 does 3 flops (cost 6) and sends 2 msgs of 16 bytes
  // (cost 2*10 + 32*0.5 = 36); rank 1 does 5 flops (cost 10). Straggler is
  // rank 0 at 42; latency (20) dominates its terms. Epoch-wide: network
  // gamma*2/2 = 8, sync 1. T = 42 + 8 + 1 = 51.
  ev(EventKind::kCompute, 0, -1, -1, 0, 3.0, 0.0);
  ev(EventKind::kPut, 0, 1, 0, 0, 2.0, 16.0);
  ev(EventKind::kPut, 0, 1, 1, 0, 2.0, 16.0);
  ev(EventKind::kCompute, 1, -1, -1, 0, 5.0, 0.0);
  ev(EventKind::kFence, -1, -1, -1, 0, 51.0, 2.0);
  // Epoch 1: rank 1 does 20 flops (cost 40), no messages. Straggler rank 1,
  // compute dominates. T = 40 + 0 + 1 = 41.
  ev(EventKind::kCompute, 1, -1, -1, 1, 20.0, 0.0);
  ev(EventKind::kFence, -1, -1, -1, 1, 41.0, 0.0);

  const auto cp = analyze_critical_path(run, m);
  ASSERT_EQ(cp.steps.size(), 2u);
  EXPECT_TRUE(cp.model_matches);

  const auto& s0 = cp.steps[0];
  EXPECT_EQ(s0.straggler, 0);
  EXPECT_EQ(s0.terms[static_cast<int>(CostTerm::kCompute)], 6.0);
  EXPECT_EQ(s0.terms[static_cast<int>(CostTerm::kLatency)], 20.0);
  EXPECT_EQ(s0.terms[static_cast<int>(CostTerm::kBandwidth)], 16.0);
  EXPECT_EQ(s0.terms[static_cast<int>(CostTerm::kNetwork)], 8.0);
  EXPECT_EQ(s0.terms[static_cast<int>(CostTerm::kSync)], 1.0);
  EXPECT_EQ(s0.modeled_seconds, 51.0);
  EXPECT_EQ(s0.dominant, CostTerm::kLatency);

  const auto& s1 = cp.steps[1];
  EXPECT_EQ(s1.straggler, 1);
  EXPECT_EQ(s1.terms[static_cast<int>(CostTerm::kCompute)], 40.0);
  EXPECT_EQ(s1.terms[static_cast<int>(CostTerm::kLatency)], 0.0);
  EXPECT_EQ(s1.modeled_seconds, 41.0);
  EXPECT_EQ(s1.dominant, CostTerm::kCompute);

  EXPECT_EQ(cp.epochs_dominated[static_cast<int>(CostTerm::kLatency)], 1u);
  EXPECT_EQ(cp.epochs_dominated[static_cast<int>(CostTerm::kCompute)], 1u);
  ASSERT_EQ(cp.straggler_epochs.size(), 2u);
  EXPECT_EQ(cp.straggler_epochs[0], 1u);
  EXPECT_EQ(cp.straggler_epochs[1], 1u);
  EXPECT_EQ(cp.total_modeled_seconds, 92.0);
}

TEST(CriticalPath, MismatchedModelIsDetected) {
  // The bit-exact flag is the analyzer's alarm for "you analyzed with the
  // wrong machine model" — make sure it actually trips.
  const auto r = golden_ds_run();
  const auto run = from_trace_log(*r.trace_log, "golden");
  simmpi::MachineModel wrong;
  wrong.alpha *= 2.0;
  EXPECT_FALSE(analyze_critical_path(run, wrong).model_matches);
}

// ---------------------------------------------------------------------------
// (a) Timeline invariants.
// ---------------------------------------------------------------------------

TEST(Timeline, PerRankAccountingMatchesRunTotals) {
  const auto r = golden_ds_run();
  const auto run = from_trace_log(*r.trace_log, "golden");
  const auto tl = analyze_timeline(run, simmpi::MachineModel{});

  ASSERT_EQ(tl.num_ranks, 4);
  std::uint64_t msgs = 0, rows = 0;
  for (const auto& rk : tl.ranks) {
    msgs += rk.msgs_sent;
    rows += rk.rows_relaxed;
    EXPECT_GE(rk.compute_seconds, 0.0);
    EXPECT_GE(rk.send_seconds, 0.0);
    EXPECT_GE(rk.wait_seconds, 0.0);
  }
  EXPECT_EQ(msgs, r.comm_totals.msgs);
  EXPECT_EQ(static_cast<double>(rows), r.relaxations.back());
  EXPECT_EQ(tl.total_model_seconds, r.model_time.back());
  EXPECT_GE(tl.max_imbalance, 1.0);
  // Every epoch's per-rank busy time is bounded by the epoch duration.
  for (const auto& step : tl.steps) {
    EXPECT_LE(step.max_cost, step.epoch_seconds);
    EXPECT_LE(step.mean_cost, step.max_cost);
  }
}

// ---------------------------------------------------------------------------
// (d) Convergence diagnostics.
// ---------------------------------------------------------------------------

TEST(Convergence, PointsTrackEpochsAndDsCountersSurface) {
  const auto r = golden_ds_run();
  const auto run = from_trace_log(*r.trace_log, "golden");
  const auto cv = analyze_convergence(run);

  ASSERT_FALSE(cv.points.empty());
  for (std::size_t i = 1; i < cv.points.size(); ++i) {
    EXPECT_GT(cv.points[i].epoch, cv.points[i - 1].epoch);
    EXPECT_GE(cv.points[i].t_model, cv.points[i - 1].t_model);
  }
  EXPECT_EQ(cv.points.back().ranks_reporting, 4);
  EXPECT_GT(cv.points.back().residual_estimate, 0.0);
  // Distributed Southwell registers its deferral counters.
  EXPECT_TRUE(cv.ds_corrections_sent.has_value());
  EXPECT_TRUE(cv.ds_deferred_sends.has_value());
  std::uint64_t stall_total = 0;
  for (const auto& s : cv.stalls) stall_total += s.epochs();
  EXPECT_EQ(stall_total, cv.stalled_epochs);
}

// ---------------------------------------------------------------------------
// Backend determinism: the whole analyzer output, byte for byte.
// ---------------------------------------------------------------------------

TEST(AnalyzerDeterminism, EveryRenderedFormatIsByteIdenticalAcrossBackends) {
  const auto seq = golden_ds_run(simmpi::BackendKind::kSequential);
  const auto thr = golden_ds_run(simmpi::BackendKind::kThreadPool);
  ASSERT_TRUE(seq.trace_log && thr.trace_log);

  const AnalyzeOptions opt;
  auto render_all = [&](const DistRunResult& r) {
    const auto run = from_trace_log(*r.trace_log, "golden");
    const auto a = analyze_run(run, opt);
    std::ostringstream ascii;
    render_ascii(ascii, a, opt);
    return ascii.str() + "\x1f" + timeline_csv(a) + "\x1f" + steps_csv(a) +
           "\x1f" + comm_matrix_csv(a) + "\x1f" + critical_path_csv(a) +
           "\x1f" + convergence_csv(a) + "\x1f" + to_json(a, opt);
  };
  EXPECT_EQ(render_all(seq), render_all(thr));
}

// ---------------------------------------------------------------------------
// JSONL round trip: parse(write_jsonl(log)) == from_trace_log(log).
// ---------------------------------------------------------------------------

TEST(RunTrace, JsonlRoundTripPreservesEveryDeterministicField) {
  const auto r = golden_ds_run();
  auto direct = from_trace_log(*r.trace_log, "golden");

  std::ostringstream os;
  trace::TraceExportOptions eopt;
  eopt.run_label = "golden";
  trace::write_jsonl(os, *r.trace_log, eopt);
  const auto parsed_runs = parse_jsonl(os.str());
  ASSERT_EQ(parsed_runs.size(), 1u);
  const auto& parsed = parsed_runs[0];

  EXPECT_EQ(parsed.label, "golden");
  EXPECT_EQ(parsed.version, 2);  // compute events -> schema v2
  EXPECT_EQ(parsed.num_ranks, direct.num_ranks);
  EXPECT_EQ(parsed.dropped_events, direct.dropped_events);
  ASSERT_EQ(parsed.events.size(), direct.events.size());
  for (std::size_t i = 0; i < parsed.events.size(); ++i) {
    const auto& a = parsed.events[i];
    const auto& b = direct.events[i];
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.rank, b.rank) << i;
    EXPECT_EQ(a.peer, b.peer) << i;
    EXPECT_EQ(a.tag, b.tag) << i;
    EXPECT_EQ(a.epoch, b.epoch) << i;
    EXPECT_EQ(a.seq, b.seq) << i;
    EXPECT_EQ(a.a0, b.a0) << i;
    EXPECT_EQ(a.a1, b.a1) << i;
    EXPECT_EQ(a.t_model, b.t_model) << i;
    // t_wall is non-deterministic and excluded from the default export.
  }
  ASSERT_EQ(parsed.metrics.size(), direct.metrics.size());
  for (std::size_t i = 0; i < parsed.metrics.size(); ++i) {
    EXPECT_EQ(parsed.metrics[i].name, direct.metrics[i].name);
    EXPECT_EQ(parsed.metrics[i].kind, direct.metrics[i].kind);
    EXPECT_EQ(parsed.metrics[i].per_rank, direct.metrics[i].per_rank);
  }
  // And the analyses built from both paths agree byte-for-byte.
  // trace_version records provenance (0 = in-memory log, 2 = JSONL) and is
  // the one legitimate difference; align it so the rest must match exactly.
  direct.version = parsed.version;
  EXPECT_EQ(to_json(analyze_run(parsed)), to_json(analyze_run(direct)));
}

TEST(RunTrace, ParserRejectsGarbageAndUnknownVersions) {
  EXPECT_THROW(parse_jsonl("not json\n"), util::CheckError);
  EXPECT_THROW(
      parse_jsonl(R"({"type":"header","version":99,"num_ranks":2,)"
                  R"("events":0,"dropped_events":0})"
                  "\n"),
      util::CheckError);
  // Events before any header have no run to belong to.
  EXPECT_THROW(
      parse_jsonl(R"({"type":"event","kind":"fence","seq":0,"epoch":0,)"
                  R"("rank":-1,"t_model":0,"a0":0,"a1":0})"
                  "\n"),
      util::CheckError);
  EXPECT_TRUE(parse_jsonl("\n\n").empty());
}

TEST(RunTrace, FindMetricLooksUpByName) {
  const auto r = golden_ds_run();
  const auto run = from_trace_log(*r.trace_log, "golden");
  const auto* m = run.find_metric("simmpi.msgs_sent");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(m->total()), r.comm_totals.msgs);
  EXPECT_EQ(run.find_metric("no.such.metric"), nullptr);
}

}  // namespace
}  // namespace dsouth::analysis
