#include "dist/block_jacobi.hpp"

#include <gtest/gtest.h>

#include "core/scalar_engine.hpp"
#include "dist/driver.hpp"
#include "sparse/proxy_suite.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace dsouth::dist {
namespace {

struct Problem {
  CsrMatrix a;
  std::vector<value_t> b, x0;
};

Problem scaled_poisson(index_t nx, index_t ny, std::uint64_t seed) {
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(nx, ny)).a;
  p.b.assign(static_cast<std::size_t>(p.a.rows()), 0.0);
  p.x0.resize(p.b.size());
  util::Rng rng(seed);
  rng.fill_uniform(p.x0, -1.0, 1.0);
  sparse::normalize_initial_residual(p.a, p.b, p.x0);
  return p;
}

DistLayout make_layout(const CsrMatrix& a, index_t k) {
  auto g = graph::Graph::from_matrix_structure(a);
  auto p = graph::partition_recursive_bisection(g, k);
  return DistLayout(a, p);
}

TEST(BlockJacobi, SingleRankEqualsGlobalGaussSeidelSweep) {
  // With P = 1, one Block Jacobi step is exactly one GS sweep over the
  // whole matrix — cross-validate against the scalar engine.
  auto p = scaled_poisson(6, 6, 1);
  auto layout = make_layout(p.a, 1);
  simmpi::Runtime rt(1);
  BlockJacobi solver(layout, rt, p.b, p.x0);
  solver.step();

  core::ScalarRelaxationEngine eng(p.a, p.b, p.x0);
  for (index_t i = 0; i < p.a.rows(); ++i) eng.relax_row(i);
  auto x = solver.gather_x();
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], eng.x()[i], 1e-13);
  }
  EXPECT_NEAR(solver.global_residual_norm(), eng.residual_norm_exact(),
              1e-12);
}

TEST(BlockJacobi, LocalResidualsStayExact) {
  // After any number of steps, the distributed residual must equal the
  // recomputed global residual — the fundamental correctness invariant of
  // the update exchange.
  auto p = scaled_poisson(10, 10, 2);
  auto layout = make_layout(p.a, 7);
  simmpi::Runtime rt(7);
  BlockJacobi solver(layout, rt, p.b, p.x0);
  for (int k = 0; k < 5; ++k) {
    solver.step();
    auto x = solver.gather_x();
    std::vector<value_t> r(x.size());
    p.a.residual(p.b, x, r);
    EXPECT_NEAR(solver.global_residual_norm(), sparse::norm2(r), 1e-11);
  }
}

TEST(BlockJacobi, EveryRankActiveEveryStep) {
  auto p = scaled_poisson(8, 8, 3);
  auto layout = make_layout(p.a, 4);
  simmpi::Runtime rt(4);
  BlockJacobi solver(layout, rt, p.b, p.x0);
  for (int k = 0; k < 3; ++k) {
    auto stats = solver.step();
    EXPECT_EQ(stats.active_ranks, 4);
    EXPECT_EQ(stats.relaxations, 64);
  }
}

TEST(BlockJacobi, MessageCountMatchesNeighborPairs) {
  auto p = scaled_poisson(8, 8, 4);
  auto layout = make_layout(p.a, 4);
  simmpi::Runtime rt(4);
  BlockJacobi solver(layout, rt, p.b, p.x0);
  std::uint64_t pairs = 0;
  for (int r = 0; r < layout.num_ranks(); ++r) {
    pairs += layout.rank(r).neighbors.size();
  }
  solver.step();
  EXPECT_EQ(rt.stats().total_messages(), pairs);
  solver.step();
  EXPECT_EQ(rt.stats().total_messages(), 2 * pairs);
  // BJ sends no explicit residual messages.
  EXPECT_EQ(rt.stats().total_messages(simmpi::MsgTag::kResidual), 0u);
}

TEST(BlockJacobi, ConvergesOnPoisson) {
  auto p = scaled_poisson(10, 10, 5);
  DistRunOptions opt;
  opt.max_parallel_steps = 200;
  opt.stop_at_residual = 1e-6;
  auto g = graph::Graph::from_matrix_structure(p.a);
  auto part = graph::partition_recursive_bisection(g, 5);
  auto result = run_distributed(DistMethod::kBlockJacobi, p.a, part, p.b,
                                p.x0, opt);
  EXPECT_LE(result.residual_norm.back(), 1e-6);
}

TEST(BlockJacobi, DivergesOnElasticityWithManySmallBlocks) {
  // The paper's headline Block Jacobi failure: small subdomains on an
  // elasticity-type (non-M) matrix diverge.
  auto proxy = sparse::make_proxy("msdoorp", 0.05);
  std::vector<value_t> b(static_cast<std::size_t>(proxy.a.rows()), 0.0);
  std::vector<value_t> x0(b.size());
  util::Rng rng(6);
  rng.fill_uniform(x0, -1.0, 1.0);
  sparse::normalize_initial_residual(proxy.a, b, x0);
  auto g = graph::Graph::from_matrix_structure(proxy.a);
  const auto k = proxy.a.rows() / 2;  // 2 rows per block
  auto part = graph::partition_recursive_bisection(g, k);
  DistRunOptions opt;
  opt.max_parallel_steps = 50;
  auto result = run_distributed(DistMethod::kBlockJacobi, proxy.a, part, b,
                                x0, opt);
  EXPECT_GT(result.residual_norm.back(), 1.0);  // diverged
}

}  // namespace
}  // namespace dsouth::dist
