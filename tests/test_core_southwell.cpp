#include "core/southwell.hpp"

#include <gtest/gtest.h>

#include "core/classic.hpp"
#include "sparse/proxy_suite.hpp"
#include "sparse/fem.hpp"
#include "sparse/mesh.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace dsouth::core {
namespace {

struct Problem {
  CsrMatrix a;
  std::vector<value_t> b, x0;
};

Problem scaled_problem(CsrMatrix raw, std::uint64_t seed) {
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(raw).a;
  p.b.resize(static_cast<std::size_t>(p.a.rows()));
  p.x0.assign(p.b.size(), 0.0);
  util::Rng rng(seed);
  rng.fill_uniform(p.b, -1.0, 1.0);
  sparse::scale(1.0 / sparse::norm2(p.b), p.b);
  return p;
}

TEST(SequentialSouthwell, FirstRelaxationPicksGlobalMax) {
  // b concentrated on one row: Southwell must relax it first.
  auto a = sparse::symmetric_unit_diagonal_scale(
               sparse::poisson2d_5pt(4, 4)).a;
  std::vector<value_t> b(16, 0.01), x0(16, 0.0);
  b[9] = 5.0;
  ScalarRunOptions opt;
  opt.max_sweeps = 1;
  auto h = run_sequential_southwell(a, b, x0, opt);
  // After the first relaxation the dominant residual is annihilated. It
  // spreads a quarter of its magnitude to each of 4 neighbors (scaled
  // 5-point stencil), so the norm drops to ≈ √(4·(5/4)²)/5 ≈ 0.50 of the
  // initial value — relaxing any other row would leave it at ≈ 1.0.
  ASSERT_GE(h.points.size(), 2u);
  EXPECT_LT(h.points[1].residual_norm, 0.55 * h.points[0].residual_norm);
}

TEST(SequentialSouthwell, ResidualNormNearlyMonotone) {
  // The residual 2-norm is not strictly monotone under Gauss-Southwell
  // (each relaxation spreads mass to neighbors), but any transient
  // increase is small on Poisson-type problems, and the overall trend is
  // strongly downward. Pin both properties as a regression check.
  auto p = scaled_problem(sparse::poisson2d_5pt(6, 6), 11);
  ScalarRunOptions opt;
  opt.max_sweeps = 3;
  auto h = run_sequential_southwell(p.a, p.b, p.x0, opt);
  for (std::size_t k = 1; k < h.points.size(); ++k) {
    EXPECT_LE(h.points[k].residual_norm,
              1.05 * h.points[k - 1].residual_norm);
  }
  EXPECT_LT(h.final_residual_norm(), 0.5 * h.points[0].residual_norm);
}

TEST(SequentialSouthwell, ConvergesToTarget) {
  auto p = scaled_problem(sparse::poisson2d_5pt(8, 8), 12);
  ScalarRunOptions opt;
  opt.max_sweeps = 500;
  opt.target_residual = 1e-6;
  opt.record_each_relaxation = false;
  auto h = run_sequential_southwell(p.a, p.b, p.x0, opt);
  EXPECT_LE(h.final_residual_norm(), 1e-6);
}

TEST(SequentialSouthwell, BeatsGaussSeidelAtLowAccuracyOnFem) {
  // The paper's headline scalar observation (Fig. 2): for low accuracy
  // (residual 0.6), Southwell needs roughly half the relaxations of
  // Gauss-Seidel on the small FEM problem. Use a reduced mesh for speed.
  auto mesh = sparse::make_perturbed_grid_mesh(21, 11, 0.25, 100);
  auto p = scaled_problem(sparse::assemble_p1_poisson(mesh), 13);
  ScalarRunOptions opt;
  opt.max_sweeps = 3;
  auto sw = run_sequential_southwell(p.a, p.b, p.x0, opt);
  auto gs = run_gauss_seidel(p.a, p.b, p.x0, opt);
  auto sw_cost = sw.relaxations_to_reach(0.6);
  auto gs_cost = gs.relaxations_to_reach(0.6);
  ASSERT_TRUE(sw_cost.has_value());
  ASSERT_TRUE(gs_cost.has_value());
  EXPECT_LT(*sw_cost, 0.8 * *gs_cost);
}

TEST(SequentialSouthwell, SweepBudgetRespected) {
  auto p = scaled_problem(sparse::poisson2d_5pt(5, 5), 14);
  ScalarRunOptions opt;
  opt.max_sweeps = 2;
  auto h = run_sequential_southwell(p.a, p.b, p.x0, opt);
  EXPECT_EQ(h.total_relaxations(), 2 * 25);
}

TEST(SequentialSouthwell, SparseRecordingStillEndsAtFinalCount) {
  auto p = scaled_problem(sparse::poisson2d_5pt(5, 5), 15);
  ScalarRunOptions opt;
  opt.max_sweeps = 2;
  opt.record_each_relaxation = false;
  auto h = run_sequential_southwell(p.a, p.b, p.x0, opt);
  EXPECT_EQ(h.total_relaxations(), 50);
  EXPECT_LE(h.points.size(), 4u);  // initial + per-sweep records
}

}  // namespace
}  // namespace dsouth::core
