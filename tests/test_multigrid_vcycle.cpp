#include "multigrid/vcycle.hpp"

#include <gtest/gtest.h>

#include "sparse/dense.hpp"
#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsouth::multigrid {
namespace {

std::vector<value_t> random_rhs(index_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<value_t> b(static_cast<std::size_t>(n * n));
  rng.fill_uniform(b, -1.0, 1.0);
  return b;
}

TEST(Hierarchy, LevelsHalveDownToThree) {
  MultigridHierarchy mg(31);
  EXPECT_EQ(mg.num_levels(), 4);
  EXPECT_EQ(mg.level_dim(0), 31);
  EXPECT_EQ(mg.level_dim(1), 15);
  EXPECT_EQ(mg.level_dim(2), 7);
  EXPECT_EQ(mg.level_dim(3), 3);
  EXPECT_EQ(mg.level_matrix(3).rows(), 9);
}

TEST(Hierarchy, RejectsBadDimensions) {
  EXPECT_THROW(MultigridHierarchy(4), util::CheckError);
  // 9 -> 4 is even; the sequence does not reach 3.
  EXPECT_THROW(MultigridHierarchy(9), util::CheckError);
}

TEST(Hierarchy, CoarsestIsDirectSolve) {
  MultigridHierarchy mg(3);
  EXPECT_EQ(mg.num_levels(), 1);
  auto b = random_rhs(3, 1);
  std::vector<value_t> x(9, 0.0);
  auto smoother = make_gauss_seidel_smoother();
  const double rel = mg.solve_relative_residual(b, x, *smoother, 1);
  EXPECT_LT(rel, 1e-12);  // single exact solve
}

TEST(VCycle, GsSmoothedCycleContractsStrongly) {
  MultigridHierarchy mg(31);
  auto b = random_rhs(31, 2);
  std::vector<value_t> x(b.size(), 0.0);
  auto smoother = make_gauss_seidel_smoother();
  const auto& a = mg.level_matrix(0);
  std::vector<value_t> r(b.size());
  a.residual(b, x, r);
  double prev = sparse::norm2(r);
  for (int c = 0; c < 3; ++c) {
    mg.vcycle(b, x, *smoother);
    a.residual(b, x, r);
    const double now = sparse::norm2(r);
    EXPECT_LT(now, 0.2 * prev);  // classical V(1,1) factor ~0.1
    prev = now;
  }
}

TEST(VCycle, NineCyclesReachDeepResidual) {
  MultigridHierarchy mg(31);
  auto b = random_rhs(31, 3);
  std::vector<value_t> x(b.size(), 0.0);
  auto smoother = make_gauss_seidel_smoother();
  const double rel = mg.solve_relative_residual(b, x, *smoother, 9);
  EXPECT_LT(rel, 1e-7);  // the Figure-6 regime
}

TEST(VCycle, GridSizeIndependentConvergence) {
  // The Figure 6 property: relative residual after 9 V-cycles does not
  // degrade with grid size.
  auto smoother = make_gauss_seidel_smoother();
  double rel15 = 0, rel63 = 0;
  {
    MultigridHierarchy mg(15);
    auto b = random_rhs(15, 4);
    std::vector<value_t> x(b.size(), 0.0);
    rel15 = mg.solve_relative_residual(b, x, *smoother, 9);
  }
  {
    MultigridHierarchy mg(63);
    auto b = random_rhs(63, 5);
    std::vector<value_t> x(b.size(), 0.0);
    rel63 = mg.solve_relative_residual(b, x, *smoother, 9);
  }
  EXPECT_LT(rel63, rel15 * 100.0);  // same order of magnitude
  EXPECT_LT(rel63, 1e-6);
}

TEST(VCycle, DistSouthwellSmootherAlsoContracts) {
  MultigridHierarchy mg(31);
  auto b = random_rhs(31, 6);
  std::vector<value_t> x(b.size(), 0.0);
  auto smoother = make_distributed_southwell_smoother(1.0);
  const double rel = mg.solve_relative_residual(b, x, *smoother, 9);
  EXPECT_LT(rel, 1e-7);
}

TEST(VCycle, HalfSweepDistSouthwellStillConverges) {
  // §4.1: even a 1/2 sweep of Distributed Southwell gives
  // grid-independent convergence.
  MultigridHierarchy mg(31);
  auto b = random_rhs(31, 7);
  std::vector<value_t> x(b.size(), 0.0);
  auto smoother = make_distributed_southwell_smoother(0.5);
  const double rel = mg.solve_relative_residual(b, x, *smoother, 9);
  EXPECT_LT(rel, 1e-4);
}

TEST(VCycle, JacobiSmootherWorksDamped) {
  MultigridHierarchy mg(15);
  auto b = random_rhs(15, 8);
  std::vector<value_t> x(b.size(), 0.0);
  auto smoother = make_jacobi_smoother(2.0 / 3.0);
  const double rel = mg.solve_relative_residual(b, x, *smoother, 9);
  // Damped Jacobi V(1,1) contracts ≈ 0.35/cycle — much weaker than GS but
  // still multigrid-convergent.
  EXPECT_LT(rel, 1e-3);
}

TEST(Smoothers, GaussSeidelReducesResidualStandalone) {
  auto a = sparse::poisson2d_5pt(9, 9);
  util::Rng rng(9);
  std::vector<value_t> b(81), x(81, 0.0), r(81);
  rng.fill_uniform(b, -1.0, 1.0);
  auto smoother = make_gauss_seidel_smoother(2);
  a.residual(b, x, r);
  const double r0 = sparse::norm2(r);
  smoother->smooth(a, b, x);
  a.residual(b, x, r);
  EXPECT_LT(sparse::norm2(r), r0);
}

TEST(Smoothers, DistSouthwellBudgetIsExactPerApplication) {
  // One application of the "1 sweep" smoother relaxes exactly n rows.
  auto a = sparse::poisson2d_5pt(7, 7);
  util::Rng rng(10);
  std::vector<value_t> b(49), x(49, 0.0);
  rng.fill_uniform(b, -1.0, 1.0);
  auto smoother = make_distributed_southwell_smoother(1.0);
  std::vector<value_t> r(49);
  a.residual(b, x, r);
  const double r0 = sparse::norm2(r);
  smoother->smooth(a, b, x);
  a.residual(b, x, r);
  EXPECT_LT(sparse::norm2(r), r0);
}


TEST(MuCycle, WCycleAtLeastAsGoodAsVCycle) {
  MultigridHierarchy mg(31);
  auto b = random_rhs(31, 11);
  std::vector<value_t> xv(b.size(), 0.0), xw(b.size(), 0.0);
  auto smoother = make_gauss_seidel_smoother();
  MultigridHierarchy::CycleOptions v;  // defaults: V(1,1)
  MultigridHierarchy::CycleOptions w;
  w.mu = 2;
  const auto& a = mg.level_matrix(0);
  std::vector<value_t> r(b.size());
  for (int c = 0; c < 4; ++c) {
    mg.cycle(b, xv, *smoother, v);
    mg.cycle(b, xw, *smoother, w);
  }
  a.residual(b, xv, r);
  const double rv = sparse::norm2(r);
  a.residual(b, xw, r);
  const double rw = sparse::norm2(r);
  EXPECT_LE(rw, rv * 1.5);  // W never much worse; usually better
  EXPECT_LT(rw, 1e-3 * sparse::norm2(b));  // strong relative reduction
}

TEST(MuCycle, MoreSmoothingStepsContractFaster) {
  MultigridHierarchy mg(31);
  auto b = random_rhs(31, 12);
  std::vector<value_t> x1(b.size(), 0.0), x2(b.size(), 0.0);
  auto smoother = make_gauss_seidel_smoother();
  MultigridHierarchy::CycleOptions one;
  MultigridHierarchy::CycleOptions two;
  two.pre = 2;
  two.post = 2;
  const auto& a = mg.level_matrix(0);
  std::vector<value_t> r(b.size());
  mg.cycle(b, x1, *smoother, one);
  mg.cycle(b, x2, *smoother, two);
  a.residual(b, x1, r);
  const double r1 = sparse::norm2(r);
  a.residual(b, x2, r);
  const double r2 = sparse::norm2(r);
  EXPECT_LT(r2, r1);
}

TEST(MuCycle, InvalidOptionsThrow) {
  MultigridHierarchy mg(7);
  auto b = random_rhs(7, 13);
  std::vector<value_t> x(b.size(), 0.0);
  auto smoother = make_gauss_seidel_smoother();
  MultigridHierarchy::CycleOptions bad;
  bad.pre = 0;
  bad.post = 0;
  EXPECT_THROW(mg.cycle(b, x, *smoother, bad), util::CheckError);
  bad = {};
  bad.mu = 9;
  EXPECT_THROW(mg.cycle(b, x, *smoother, bad), util::CheckError);
}


TEST(Chebyshev, SmootherReducesResidualStandalone) {
  auto a = sparse::poisson2d_5pt(15, 15);
  util::Rng rng(14);
  std::vector<value_t> b(static_cast<std::size_t>(a.rows()));
  rng.fill_uniform(b, -1.0, 1.0);
  std::vector<value_t> x(b.size(), 0.0), r(b.size());
  auto smoother = make_chebyshev_smoother(4);
  a.residual(b, x, r);
  const double r0 = sparse::norm2(r);
  smoother->smooth(a, b, x);
  a.residual(b, x, r);
  EXPECT_LT(sparse::norm2(r), r0);
}

TEST(Chebyshev, MultigridConvergesGridIndependently) {
  // Chebyshev(3) V(1,1) is a classical massively-parallel smoother; the
  // multigrid rate must be grid-independent like GS's.
  auto smoother = make_chebyshev_smoother(3);
  double rel31 = 0.0, rel127 = 0.0;
  {
    MultigridHierarchy mg(31);
    auto b = random_rhs(31, 15);
    std::vector<value_t> x(b.size(), 0.0);
    rel31 = mg.solve_relative_residual(b, x, *smoother, 9);
  }
  {
    MultigridHierarchy mg(127);
    auto b = random_rhs(127, 16);
    std::vector<value_t> x(b.size(), 0.0);
    rel127 = mg.solve_relative_residual(b, x, *smoother, 9);
  }
  // Chebyshev(3) contracts ≈ 0.3/cycle here (weaker than GS, stronger
  // than damped Jacobi) — the property under test is grid independence.
  EXPECT_LT(rel31, 1e-4);
  EXPECT_LT(rel127, 100.0 * rel31);  // same order: grid independence
}

TEST(Chebyshev, HigherDegreeSmoothsHarder) {
  MultigridHierarchy mg(31);
  auto b = random_rhs(31, 17);
  std::vector<value_t> x1(b.size(), 0.0), x4(b.size(), 0.0);
  auto deg1 = make_chebyshev_smoother(1);
  auto deg4 = make_chebyshev_smoother(4);
  const double r1 = mg.solve_relative_residual(b, x1, *deg1, 5);
  const double r4 = mg.solve_relative_residual(b, x4, *deg4, 5);
  EXPECT_LT(r4, r1);
}

TEST(Chebyshev, InvalidOptionsThrow) {
  EXPECT_THROW(make_chebyshev_smoother(0), util::CheckError);
  EXPECT_THROW(make_chebyshev_smoother(3, 0.5), util::CheckError);
}

}  // namespace
}  // namespace dsouth::multigrid
