#include <gtest/gtest.h>

#include <cmath>

#include "krylov/cg.hpp"
#include "krylov/preconditioner.hpp"
#include "sparse/dense.hpp"
#include "sparse/fem.hpp"
#include "sparse/mesh.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsouth::krylov {
namespace {

struct Problem {
  CsrMatrix a;
  std::vector<value_t> b, x;
};

Problem poisson_problem(index_t nx, index_t ny, std::uint64_t seed) {
  Problem p;
  p.a = sparse::poisson2d_5pt(nx, ny);
  p.b.resize(static_cast<std::size_t>(p.a.rows()));
  p.x.assign(p.b.size(), 0.0);
  util::Rng rng(seed);
  rng.fill_uniform(p.b, -1.0, 1.0);
  return p;
}

double true_relative_residual(const Problem& p) {
  std::vector<value_t> r(p.b.size());
  p.a.residual(p.b, p.x, r);
  return sparse::norm2(r) / sparse::norm2(p.b);
}

TEST(Cg, SolvesSmallSystemExactlyInNSteps) {
  // CG converges in at most n iterations in exact arithmetic.
  auto p = poisson_problem(4, 4, 1);
  CgOptions opt;
  opt.rel_tolerance = 1e-12;
  auto result = run_pcg(p.a, p.b, p.x, nullptr, opt);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 16);
  EXPECT_LT(true_relative_residual(p), 1e-11);
}

TEST(Cg, MatchesDirectSolve) {
  auto p = poisson_problem(7, 6, 2);
  CgOptions opt;
  opt.rel_tolerance = 1e-12;
  run_pcg(p.a, p.b, p.x, nullptr, opt);
  sparse::DenseCholesky chol(p.a);
  std::vector<value_t> x_direct(p.b.size());
  chol.solve(p.b, x_direct);
  for (std::size_t i = 0; i < p.x.size(); ++i) {
    EXPECT_NEAR(p.x[i], x_direct[i], 1e-9);
  }
}

TEST(Cg, ResidualHistoryEndsBelowTolerance) {
  auto p = poisson_problem(12, 12, 3);
  CgOptions opt;
  opt.rel_tolerance = 1e-9;
  auto result = run_pcg(p.a, p.b, p.x, nullptr, opt);
  ASSERT_TRUE(result.converged);
  ASSERT_EQ(result.residual_history.size(),
            static_cast<std::size_t>(result.iterations) + 1);
  EXPECT_LE(result.residual_history.back(),
            1e-9 * result.residual_history.front());
}

TEST(Cg, IterationCapReportsNotConverged) {
  auto p = poisson_problem(20, 20, 4);
  CgOptions opt;
  opt.max_iterations = 3;
  opt.rel_tolerance = 1e-14;
  auto result = run_pcg(p.a, p.b, p.x, nullptr, opt);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 3);
}

TEST(Cg, ZeroRhsConvergesImmediately) {
  auto p = poisson_problem(5, 5, 5);
  std::fill(p.b.begin(), p.b.end(), 0.0);
  auto result = run_pcg(p.a, p.b, p.x);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0);
}

TEST(Cg, IndefiniteMatrixThrows) {
  // [[1, 2], [2, 1]] has a negative eigenvalue: CG must detect pᵀAp <= 0.
  CsrMatrix indef(2, 2, {0, 2, 4}, {0, 1, 0, 1}, {1.0, 2.0, 2.0, 1.0});
  std::vector<value_t> b{1.0, -1.0}, x{0.0, 0.0};
  EXPECT_THROW(run_pcg(indef, b, x), util::CheckError);
}

TEST(Preconditioners, JacobiReducesIterationsOnScaledProblem) {
  // On a badly diagonally-scaled system, Jacobi preconditioning recovers
  // the well-scaled iteration count.
  auto base = sparse::poisson2d_5pt(14, 14);
  // Scale rows/cols badly: D^(1/2) A D^(1/2) with wildly varying D.
  util::Rng rng(6);
  std::vector<value_t> s(static_cast<std::size_t>(base.rows()));
  for (auto& v : s) v = std::pow(10.0, rng.uniform(-1.0, 1.0));
  CsrMatrix bad = base;
  {
    auto vals = bad.mutable_values();
    auto rp = bad.row_ptr();
    auto ci = bad.col_idx();
    for (index_t i = 0; i < bad.rows(); ++i) {
      for (index_t k = rp[i]; k < rp[i + 1]; ++k) {
        vals[k] *= s[static_cast<std::size_t>(i)] *
                   s[static_cast<std::size_t>(ci[k])];
      }
    }
  }
  std::vector<value_t> b(s.size());
  rng.fill_uniform(b, -1.0, 1.0);
  std::vector<value_t> x_plain(b.size(), 0.0), x_pc(b.size(), 0.0);
  CgOptions opt;
  opt.rel_tolerance = 1e-8;
  opt.max_iterations = 5000;
  auto plain = run_pcg(bad, b, x_plain, nullptr, opt);
  auto jacobi = make_jacobi_preconditioner(bad);
  auto pc = run_pcg(bad, b, x_pc, jacobi.get(), opt);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(pc.converged);
  EXPECT_LT(pc.iterations, plain.iterations);
}

TEST(Preconditioners, SymmetricGsBeatsJacobiOnPoisson) {
  auto p = poisson_problem(20, 20, 7);
  CgOptions opt;
  opt.rel_tolerance = 1e-8;
  std::vector<value_t> x_j(p.b.size(), 0.0), x_gs(p.b.size(), 0.0);
  auto jacobi = make_jacobi_preconditioner(p.a);
  auto ssor = make_symmetric_gs_preconditioner(p.a);
  auto rj = run_pcg(p.a, p.b, x_j, jacobi.get(), opt);
  auto rg = run_pcg(p.a, p.b, x_gs, ssor.get(), opt);
  ASSERT_TRUE(rj.converged);
  ASSERT_TRUE(rg.converged);
  EXPECT_LT(rg.iterations, rj.iterations);
}

TEST(Preconditioners, IdentityEqualsPlainCg) {
  auto p1 = poisson_problem(10, 10, 8);
  auto p2 = p1;
  auto ident = make_identity_preconditioner();
  CgOptions opt;
  opt.rel_tolerance = 1e-8;
  auto a1 = run_pcg(p1.a, p1.b, p1.x, nullptr, opt);
  auto a2 = run_pcg(p2.a, p2.b, p2.x, ident.get(), opt);
  EXPECT_EQ(a1.iterations, a2.iterations);
  for (std::size_t i = 0; i < p1.x.size(); ++i) {
    EXPECT_DOUBLE_EQ(p1.x[i], p2.x[i]);
  }
}

class DistPrecondSweep
    : public ::testing::TestWithParam<dist::DistMethod> {};

TEST_P(DistPrecondSweep, AcceleratesFlexibleCg) {
  auto a = sparse::symmetric_unit_diagonal_scale(
               sparse::poisson2d_5pt(16, 16))
               .a;
  std::vector<value_t> b(static_cast<std::size_t>(a.rows()));
  util::Rng rng(9);
  rng.fill_uniform(b, -1.0, 1.0);
  auto g = graph::Graph::from_matrix_structure(a);
  auto part = graph::partition_recursive_bisection(g, 16);

  CgOptions opt;
  opt.rel_tolerance = 1e-8;
  opt.max_iterations = 2000;
  std::vector<value_t> x_plain(b.size(), 0.0), x_pc(b.size(), 0.0);
  auto plain = run_pcg(a, b, x_plain, nullptr, opt);

  DistPreconditionerOptions popt;
  popt.method = GetParam();
  // Southwell-style preconditioners need enough parallel steps that most
  // subdomains relax at least once per application; with too few steps
  // the operator is nearly identity-but-variable and *hurts* CG (a
  // finding pinned by UndersteppedSouthwellPreconditionerHurts below).
  popt.steps = 16;
  auto precond = make_distributed_preconditioner(a, part, popt);
  auto pc = run_pcg(a, b, x_pc, precond.get(), opt);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(pc.converged) << precond->name();
  EXPECT_LT(pc.iterations, plain.iterations) << precond->name();
  // The distributed preconditioner reports its communication.
  EXPECT_GT(precond->comm_cost(), 0.0);
  // The solution is right.
  std::vector<value_t> r(b.size());
  a.residual(b, x_pc, r);
  EXPECT_LE(sparse::norm2(r), 1e-7 * sparse::norm2(b));
}

TEST(Preconditioners, UndersteppedSouthwellPreconditionerHurts) {
  auto a = sparse::symmetric_unit_diagonal_scale(
               sparse::poisson2d_5pt(16, 16))
               .a;
  std::vector<value_t> b(static_cast<std::size_t>(a.rows()));
  util::Rng rng(10);
  rng.fill_uniform(b, -1.0, 1.0);
  auto g = graph::Graph::from_matrix_structure(a);
  auto part = graph::partition_recursive_bisection(g, 16);
  CgOptions opt;
  opt.rel_tolerance = 1e-8;
  opt.max_iterations = 2000;
  std::vector<value_t> x_plain(b.size(), 0.0), x_pc(b.size(), 0.0);
  auto plain = run_pcg(a, b, x_plain, nullptr, opt);
  DistPreconditionerOptions popt;
  popt.method = dist::DistMethod::kParallelSouthwell;
  popt.steps = 3;  // far too few for 16 subdomains
  auto precond = make_distributed_preconditioner(a, part, popt);
  auto pc = run_pcg(a, b, x_pc, precond.get(), opt);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(pc.converged);
  EXPECT_GT(pc.iterations, plain.iterations);
}

INSTANTIATE_TEST_SUITE_P(
    Methods, DistPrecondSweep,
    ::testing::Values(dist::DistMethod::kBlockJacobi,
                      dist::DistMethod::kParallelSouthwell,
                      dist::DistMethod::kDistributedSouthwell),
    [](const auto& info) {
      return std::string(dist::method_name(info.param));
    });

}  // namespace
}  // namespace dsouth::krylov
