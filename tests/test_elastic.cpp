/// Tests for the elastic-ranks subsystem (src/elastic, docs/resilience.md
/// "Permanent failure and recovery"): permanent-kill schedule semantics,
/// dead-rank silencing at the runtime fence, the versioned checkpoint
/// codec (round-trip determinism, corruption rejection), byte-identical
/// restore-continuation across backends and composed with coalescing /
/// async delivery / node topologies, fault-free byte-identity of
/// run_elastic against run_distributed (series AND trace bytes), full
/// kill-and-repartition recovery for all four solvers, and the
/// Runtime::reset_stats / CommStats save-load audit.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/run_trace.hpp"
#include "dist/driver.hpp"
#include "dist/harness.hpp"
#include "elastic/checkpoint.hpp"
#include "elastic/elastic.hpp"
#include "faults/fault_plan.hpp"
#include "graph/partition.hpp"
#include "simmpi/runtime.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "trace/export.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsouth {
namespace {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

struct Problem {
  CsrMatrix a;
  std::vector<value_t> b, x0;
  graph::Partition part;
};

Problem make_problem(index_t nx, index_t k, std::uint64_t seed) {
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(nx, nx)).a;
  p.b.assign(static_cast<std::size_t>(p.a.rows()), 0.0);
  p.x0.resize(p.b.size());
  util::Rng rng(seed);
  rng.fill_uniform(p.x0, -1.0, 1.0);
  sparse::normalize_initial_residual(p.a, p.b, p.x0);
  auto g = graph::Graph::from_matrix_structure(p.a);
  p.part = graph::partition_recursive_bisection(g, k);
  return p;
}

// ---------------------------------------------------------------------------
// Kill-schedule semantics (faults::RankKill / RandomKills).

TEST(KillSchedule, ExplicitKillsAndEarliestWins) {
  faults::FaultPlan plan;
  EXPECT_FALSE(plan.any());
  plan.kills.push_back({2, 7});
  EXPECT_TRUE(plan.any());  // kills alone make the plan nonzero
  plan.kills.push_back({2, 4});  // earliest entry wins
  plan.kills.push_back({0, 9});
  faults::FaultSchedule sched(plan, 4);
  EXPECT_TRUE(sched.any_kills());
  EXPECT_EQ(sched.kill_epoch(2), 4u);
  EXPECT_EQ(sched.kill_epoch(0), 9u);
  EXPECT_EQ(sched.kill_epoch(1), faults::FaultSchedule::kNeverKilled);
  EXPECT_EQ(sched.kill_epoch(3), faults::FaultSchedule::kNeverKilled);
  // dead() is monotone in the epoch counter.
  EXPECT_FALSE(sched.dead(2, 3));
  EXPECT_TRUE(sched.dead(2, 4));
  EXPECT_TRUE(sched.dead(2, 1000));
  EXPECT_FALSE(sched.dead(1, 1000));
}

TEST(KillSchedule, RandomKillDrawsAreSeededAndDeterministic) {
  faults::FaultPlan plan;
  // Draws are per-(rank, epoch): survival chance is (1-p)^max, so keep p
  // small enough that both fates occur across 32 ranks.
  plan.random_kills.probability = 0.05;
  plan.random_kills.max_kill_epoch = 16;
  EXPECT_TRUE(plan.any());
  faults::FaultSchedule s1(plan, 32);
  faults::FaultSchedule s2(plan, 32);
  bool someone_died = false, someone_survived = false;
  for (int r = 0; r < 32; ++r) {
    EXPECT_EQ(s1.kill_epoch(r), s2.kill_epoch(r));  // same seed, same fate
    if (s1.kill_epoch(r) != faults::FaultSchedule::kNeverKilled) {
      someone_died = true;
      EXPECT_LT(s1.kill_epoch(r), 16u);  // draws cover [0, max) only
    } else {
      someone_survived = true;
    }
  }
  EXPECT_TRUE(someone_died);
  EXPECT_TRUE(someone_survived);
  plan.seed ^= 1;
  faults::FaultSchedule s3(plan, 32);
  bool seed_changed_something = false;
  for (int r = 0; r < 32; ++r) {
    if (s1.kill_epoch(r) != s3.kill_epoch(r)) seed_changed_something = true;
  }
  EXPECT_TRUE(seed_changed_something);

  // Certain death: probability 1 kills everyone at the first covered epoch.
  plan.random_kills.probability = 1.0;
  faults::FaultSchedule s4(plan, 8);
  for (int r = 0; r < 8; ++r) EXPECT_EQ(s4.kill_epoch(r), 0u);
}

TEST(KillSchedule, DeadRankTrafficIsSwallowed) {
  auto p = make_problem(12, 4, 11);
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 12;
  opt.faults.kills.push_back({1, 3});
  auto r = dist::run_distributed(dist::DistMethod::kBlockJacobi, p.a, p.part,
                                 p.b, p.x0, opt);
  ASSERT_TRUE(r.fault_summary.has_value());
  // The dead rank's in-flight and incoming traffic is dropped at the fence.
  EXPECT_GT(r.fault_summary->msgs_dead_dropped, 0u);
  // Without recovery the lost subdomain stalls convergence vs a clean run.
  dist::DistRunOptions clean_opt;
  clean_opt.max_parallel_steps = 12;
  auto clean = dist::run_distributed(dist::DistMethod::kBlockJacobi, p.a,
                                     p.part, p.b, p.x0, clean_opt);
  EXPECT_GT(r.residual_norm.back(), clean.residual_norm.back());
}

// ---------------------------------------------------------------------------
// Checkpoint codec.

elastic::Checkpoint capture_checkpoint(dist::RunHarness& h, int method,
                                       index_t step) {
  elastic::Checkpoint c;
  c.num_ranks = h.runtime().num_ranks();
  c.method = method;
  c.flags = elastic::kFlagCoalescing;  // arbitrary nonzero flag stamp
  c.epoch = h.runtime().epochs_completed();
  c.step = step;
  c.runtime = h.runtime().capture_state();
  c.solver = h.solver().capture_state();
  return c;
}

TEST(CheckpointCodec, EncodeDecodeRoundTripIsByteStable) {
  auto p = make_problem(10, 4, 21);
  dist::DistRunOptions opt;
  dist::DistLayout layout(p.a, p.part);
  dist::RunHarness h(dist::DistMethod::kDistributedSouthwell, layout, p.b,
                     p.x0, opt);
  for (int k = 0; k < 3; ++k) h.solver().step();
  const auto c = capture_checkpoint(h, 3, 3);
  const auto bytes = elastic::encode(c);
  EXPECT_FALSE(bytes.empty());
  EXPECT_EQ(bytes.size() % 8, 0u);

  const auto d = elastic::decode(bytes);
  EXPECT_EQ(d.num_ranks, c.num_ranks);
  EXPECT_EQ(d.method, c.method);
  EXPECT_EQ(d.flags, c.flags);
  EXPECT_EQ(d.epoch, c.epoch);
  EXPECT_EQ(d.step, c.step);
  EXPECT_EQ(d.runtime.epochs, c.runtime.epochs);
  EXPECT_EQ(d.solver.x, c.solver.x);  // bitwise: doubles travel as u64
  EXPECT_EQ(d.solver.r, c.solver.r);
  EXPECT_EQ(d.solver.ghost_x, c.solver.ghost_x);
  // Re-encoding the decoded checkpoint reproduces the buffer byte for byte.
  EXPECT_EQ(elastic::encode(d), bytes);
}

TEST(CheckpointCodec, RejectsCorruptionTruncationAndBadHeaders) {
  auto p = make_problem(8, 2, 22);
  dist::DistRunOptions opt;
  dist::DistLayout layout(p.a, p.part);
  dist::RunHarness h(dist::DistMethod::kBlockJacobi, layout, p.b, p.x0, opt);
  h.solver().step();
  const auto bytes = elastic::encode(capture_checkpoint(h, 0, 1));

  // Payload bit flip -> checksum mismatch.
  auto corrupt = bytes;
  corrupt[corrupt.size() - 1] ^= 0x40;
  EXPECT_THROW(elastic::decode(corrupt), util::CheckError);

  // Bad magic.
  auto magic = bytes;
  magic[0] ^= 0xff;
  EXPECT_THROW(elastic::decode(magic), util::CheckError);

  // Unsupported version.
  auto version = bytes;
  version[8] ^= 0xff;
  EXPECT_THROW(elastic::decode(version), util::CheckError);

  // Truncation: drop the tail (word-aligned and not).
  auto truncated = bytes;
  truncated.resize(truncated.size() - 8);
  EXPECT_THROW(elastic::decode(truncated), util::CheckError);
  auto ragged = bytes;
  ragged.resize(ragged.size() - 3);
  EXPECT_THROW(elastic::decode(ragged), util::CheckError);

  // Trailing garbage past the declared payload length.
  auto trailing = bytes;
  trailing.insert(trailing.end(), 8, std::uint8_t{0});
  EXPECT_THROW(elastic::decode(trailing), util::CheckError);
}

// ---------------------------------------------------------------------------
// Restore-continuation determinism: snapshot at step s, restore into a
// fresh stack over the SAME layout, run to completion — byte-identical to
// the uninterrupted run, under every delivery/wire composition.

void expect_restore_continuation_identical(const dist::DistRunOptions& opt,
                                           simmpi::BackendKind backend) {
  auto p = make_problem(12, 4, 31);
  auto run_opt = opt;
  run_opt.backend = backend;
  dist::DistLayout layout(p.a, p.part);
  const auto method = dist::DistMethod::kDistributedSouthwell;

  // Uninterrupted reference, with a checkpoint captured mid-flight
  // (capture is non-destructive — the run continues unperturbed).
  dist::RunHarness ref(method, layout, p.b, p.x0, run_opt);
  std::vector<std::uint8_t> bytes;
  for (int k = 0; k < 10; ++k) {
    if (k == 4) bytes = elastic::encode(capture_checkpoint(ref, 3, 4));
    ref.solver().step();
  }
  const auto x_ref = ref.solver().gather_x();
  std::vector<std::uint64_t> stats_ref;
  ref.runtime().stats().save(stats_ref);

  // Fresh stack, restore the decoded checkpoint, run the remaining steps.
  const auto c = elastic::decode(bytes);
  dist::RunHarness resumed(method, layout, p.b, p.x0, run_opt);
  resumed.runtime().restore_state(c.runtime);
  resumed.solver().restore_state(c.solver);
  for (int k = 4; k < 10; ++k) resumed.solver().step();
  const auto x_resumed = resumed.solver().gather_x();
  std::vector<std::uint64_t> stats_resumed;
  resumed.runtime().stats().save(stats_resumed);

  EXPECT_EQ(x_resumed, x_ref);  // bitwise (vector<double> operator==)
  EXPECT_EQ(stats_resumed, stats_ref);
  EXPECT_EQ(resumed.runtime().epochs_completed(),
            ref.runtime().epochs_completed());
  EXPECT_EQ(resumed.runtime().model_time_seconds(),
            ref.runtime().model_time_seconds());
}

TEST(RestoreContinuation, PlainBulkSynchronous) {
  dist::DistRunOptions opt;
  expect_restore_continuation_identical(opt, simmpi::BackendKind::kSequential);
  expect_restore_continuation_identical(opt, simmpi::BackendKind::kThreadPool);
}

TEST(RestoreContinuation, WithCoalescing) {
  dist::DistRunOptions opt;
  opt.coalesce_messages = true;
  expect_restore_continuation_identical(opt, simmpi::BackendKind::kSequential);
  expect_restore_continuation_identical(opt, simmpi::BackendKind::kThreadPool);
}

TEST(RestoreContinuation, WithAsyncDelivery) {
  dist::DistRunOptions opt;
  opt.async = true;  // in-flight deferred messages ride the checkpoint
  expect_restore_continuation_identical(opt, simmpi::BackendKind::kSequential);
  expect_restore_continuation_identical(opt, simmpi::BackendKind::kThreadPool);
}

TEST(RestoreContinuation, WithNodeTopologyRouting) {
  dist::DistRunOptions opt;
  opt.ranks_per_node = 2;
  expect_restore_continuation_identical(opt, simmpi::BackendKind::kSequential);
  expect_restore_continuation_identical(opt, simmpi::BackendKind::kThreadPool);
}

// ---------------------------------------------------------------------------
// Fault-free byte-identity: run_elastic with recovery attached but no
// kills is run_distributed — series for series, trace byte for byte.

std::string jsonl_bytes(const std::shared_ptr<const trace::TraceLog>& log,
                        const std::string& label) {
  std::ostringstream os;
  trace::TraceExportOptions topt;
  topt.run_label = label;
  trace::write_jsonl(os, *log, topt);
  return os.str();
}

TEST(ElasticDriver, FaultFreeRunIsByteIdenticalToRunDistributed) {
  auto p = make_problem(12, 4, 41);
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 12;
  opt.trace.enabled = true;
  auto plain = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                     p.a, p.part, p.b, p.x0, opt);
  elastic::RecoveryOptions rec;
  rec.checkpoint_every = 3;
  auto er = elastic::run_elastic(dist::DistMethod::kDistributedSouthwell,
                                 p.a, p.part, p.b, p.x0, opt, rec);
  // Checkpoints were taken — the observer ran — yet nothing changed.
  EXPECT_GT(er.checkpoints_taken, 1);
  EXPECT_GT(er.last_checkpoint_bytes, 0u);
  EXPECT_TRUE(er.recoveries.empty());
  EXPECT_EQ(er.run.final_x, plain.final_x);
  EXPECT_EQ(er.run.residual_norm, plain.residual_norm);
  EXPECT_EQ(er.run.model_time, plain.model_time);
  EXPECT_EQ(er.run.comm_cost, plain.comm_cost);
  EXPECT_EQ(er.run.comm_totals.msgs, plain.comm_totals.msgs);
  EXPECT_EQ(er.run.comm_totals.bytes, plain.comm_totals.bytes);
  ASSERT_NE(er.run.trace_log, nullptr);
  ASSERT_NE(plain.trace_log, nullptr);
  // No kills configured -> no kElastic events -> identical trace bytes.
  EXPECT_EQ(jsonl_bytes(er.run.trace_log, "t"),
            jsonl_bytes(plain.trace_log, "t"));

  // Recovery disabled degenerates to run_distributed by construction.
  elastic::RecoveryOptions off;
  off.enabled = false;
  auto er_off = elastic::run_elastic(dist::DistMethod::kDistributedSouthwell,
                                     p.a, p.part, p.b, p.x0, opt, off);
  EXPECT_EQ(er_off.checkpoints_taken, 0);
  EXPECT_EQ(er_off.run.final_x, plain.final_x);
}

// ---------------------------------------------------------------------------
// Full recovery: kill 2 of 16 mid-solve, every solver converges.

TEST(ElasticDriver, AllFourSolversRecoverFromTwoDeaths) {
  auto p = make_problem(24, 16, 51);
  const double r0 = 1.0;  // normalized initial residual
  const dist::DistMethod methods[4] = {
      dist::DistMethod::kBlockJacobi, dist::DistMethod::kMulticolorBlockGs,
      dist::DistMethod::kParallelSouthwell,
      dist::DistMethod::kDistributedSouthwell};
  for (auto m : methods) {
    dist::DistRunOptions opt;
    opt.max_parallel_steps = 40;
    opt.faults.kills.push_back({3, 6});
    opt.faults.kills.push_back({11, 14});
    elastic::RecoveryOptions rec;
    rec.checkpoint_every = 4;
    auto er = elastic::run_elastic(m, p.a, p.part, p.b, p.x0, opt, rec);
    ASSERT_EQ(er.recoveries.size(), 2u) << er.run.method;
    EXPECT_EQ(er.recoveries[0].dead_rank, 3);
    EXPECT_EQ(er.recoveries[1].dead_rank, 11);
    for (const auto& ev : er.recoveries) {
      EXPECT_GT(ev.rows_moved, 0) << er.run.method;
      EXPECT_GT(ev.checkpoint_bytes, 0u);
      EXPECT_LE(ev.resumed_step, ev.detected_step);
    }
    // The dead parts end empty; every row lives on a survivor.
    const auto sizes = er.final_partition.part_sizes();
    EXPECT_EQ(sizes[3], 0) << er.run.method;
    EXPECT_EQ(sizes[11], 0) << er.run.method;
    index_t total = 0;
    for (index_t s : sizes) total += s;
    EXPECT_EQ(total, p.a.rows());
    // Series stay well-formed through the rollbacks.
    ASSERT_EQ(er.run.residual_norm.size(), er.run.steps_taken() + 1);
    ASSERT_EQ(er.run.model_time.size(), er.run.steps_taken() + 1);
    // And the run still converges to the Table-2 tolerance.
    EXPECT_LE(er.run.residual_norm.back(), 0.1 * r0) << er.run.method;
  }
}

TEST(ElasticDriver, RecoveryIsBitIdenticalAcrossBackends) {
  auto p = make_problem(16, 8, 61);
  auto run_once = [&](simmpi::BackendKind backend) {
    dist::DistRunOptions opt;
    opt.max_parallel_steps = 24;
    opt.backend = backend;
    opt.faults.kills.push_back({2, 5});
    elastic::RecoveryOptions rec;
    rec.checkpoint_every = 4;
    return elastic::run_elastic(dist::DistMethod::kParallelSouthwell, p.a,
                                p.part, p.b, p.x0, opt, rec);
  };
  auto seq = run_once(simmpi::BackendKind::kSequential);
  auto thr = run_once(simmpi::BackendKind::kThreadPool);
  ASSERT_EQ(seq.recoveries.size(), 1u);
  ASSERT_EQ(thr.recoveries.size(), 1u);
  EXPECT_EQ(seq.recoveries[0].resumed_step, thr.recoveries[0].resumed_step);
  EXPECT_EQ(seq.last_checkpoint_bytes, thr.last_checkpoint_bytes);
  EXPECT_EQ(seq.run.final_x, thr.run.final_x);  // bitwise
  EXPECT_EQ(seq.run.residual_norm, thr.run.residual_norm);
  EXPECT_EQ(seq.final_partition.part, thr.final_partition.part);
}

// ---------------------------------------------------------------------------
// Trace + analyzer integration: kElastic events round-trip through JSONL
// and the ElasticReport tallies the recovery shape.

TEST(ElasticDriver, TraceEventsRoundTripThroughAnalyzer) {
  auto p = make_problem(16, 8, 71);
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 20;
  opt.trace.enabled = true;
  opt.faults.kills.push_back({5, 4});
  elastic::RecoveryOptions rec;
  rec.checkpoint_every = 4;
  auto er = elastic::run_elastic(dist::DistMethod::kBlockJacobi, p.a, p.part,
                                 p.b, p.x0, opt, rec);
  ASSERT_EQ(er.recoveries.size(), 1u);
  ASSERT_NE(er.run.trace_log, nullptr);
  const std::string text = jsonl_bytes(er.run.trace_log, "elastic");
  auto runs = analysis::parse_jsonl(text);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].version, 6);  // elastic events bump the stream version

  const auto rep = analysis::analyze_elastic(runs[0]);
  EXPECT_TRUE(rep.any());
  EXPECT_TRUE(rep.restores_ordered);
  EXPECT_EQ(rep.by_action[analysis::ElasticReport::kKill], 1u);
  EXPECT_EQ(rep.by_action[analysis::ElasticReport::kRestore], 1u);
  EXPECT_EQ(rep.by_action[analysis::ElasticReport::kRepartition], 1u);
  ASSERT_EQ(rep.dead_ranks.size(), 1u);
  EXPECT_EQ(rep.dead_ranks[0], 5);
  EXPECT_GT(rep.checkpoint_bytes_min, 0u);
  EXPECT_EQ(rep.checkpoint_bytes_last, er.last_checkpoint_bytes);
  // The final generation's tracer only saw the post-recovery checkpoints,
  // so the event tally counts those, not every checkpoint ever taken.
  EXPECT_LE(rep.by_action[analysis::ElasticReport::kCheckpoint],
            static_cast<std::uint64_t>(er.checkpoints_taken));
  EXPECT_EQ(rep.rows_moved,
            static_cast<std::uint64_t>(er.recoveries[0].rows_moved));
}

// ---------------------------------------------------------------------------
// Runtime::reset_stats / CommStats audit (the save() stream makes "every
// counter" checkable without naming each field).

TEST(CommStatsAudit, ResetZeroesEveryCounterSincePr5) {
  auto p = make_problem(12, 4, 81);
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 8;
  opt.async = true;        // async_* counters (force-enables resilience,
                           // which is why coalescing is left off here)
  opt.ranks_per_node = 2;  // node_* counters
  opt.faults.defaults.drop_probability = 0.2;  // fault counters
  opt.faults.kills.push_back({1, 3});          // msgs_dead_dropped
  dist::DistLayout layout(p.a, p.part);
  dist::RunHarness h(dist::DistMethod::kDistributedSouthwell, layout, p.b,
                     p.x0, opt);
  for (int k = 0; k < 8; ++k) h.solver().step();

  std::vector<std::uint64_t> before;
  h.runtime().stats().save(before);
  ASSERT_EQ(before.size(), simmpi::CommStats::saved_words(4, 0));
  // The run exercised enough subsystems that many words moved.
  int nonzero = 0;
  for (std::size_t i = 2; i < before.size(); ++i) {
    if (before[i] != 0) ++nonzero;
  }
  EXPECT_GT(nonzero, 5);

  h.runtime().reset_stats();
  std::vector<std::uint64_t> after;
  h.runtime().stats().save(after);
  ASSERT_EQ(after.size(), before.size());
  EXPECT_EQ(after[0], before[0]);  // shape: rank count survives reset
  EXPECT_EQ(after[1], before[1]);  // shape: tenant count survives reset
  for (std::size_t i = 2; i < after.size(); ++i) {
    EXPECT_EQ(after[i], 0u) << "counter word " << i << " not cleared";
  }
}

TEST(CommStatsAudit, SaveLoadRoundTripsAndValidates) {
  auto p = make_problem(10, 4, 91);
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 5;
  opt.faults.defaults.duplicate_probability = 0.1;
  dist::DistLayout layout(p.a, p.part);
  dist::RunHarness h(dist::DistMethod::kBlockJacobi, layout, p.b, p.x0, opt);
  for (int k = 0; k < 5; ++k) h.solver().step();

  std::vector<std::uint64_t> saved;
  h.runtime().stats().save(saved);
  simmpi::CommStats fresh(4);
  fresh.load(saved);
  std::vector<std::uint64_t> resaved;
  fresh.save(resaved);
  EXPECT_EQ(resaved, saved);

  // Rank-count mismatch and truncated streams are rejected.
  simmpi::CommStats wrong_ranks(5);
  EXPECT_THROW(wrong_ranks.load(saved), util::CheckError);
  auto truncated = saved;
  truncated.pop_back();
  simmpi::CommStats short_stats(4);
  EXPECT_THROW(short_stats.load(truncated), util::CheckError);
}

}  // namespace
}  // namespace dsouth
