#include "dist/parallel_southwell.hpp"

#include <gtest/gtest.h>

#include "dist/driver.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace dsouth::dist {
namespace {

struct Problem {
  CsrMatrix a;
  std::vector<value_t> b, x0;
};

Problem scaled_poisson(index_t nx, index_t ny, std::uint64_t seed) {
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(nx, ny)).a;
  p.b.assign(static_cast<std::size_t>(p.a.rows()), 0.0);
  p.x0.resize(p.b.size());
  util::Rng rng(seed);
  rng.fill_uniform(p.x0, -1.0, 1.0);
  sparse::normalize_initial_residual(p.a, p.b, p.x0);
  return p;
}

graph::Partition make_partition(const CsrMatrix& a, index_t k) {
  auto g = graph::Graph::from_matrix_structure(a);
  return graph::partition_recursive_bisection(g, k);
}

TEST(ParallelSouthwellDist, LocalResidualsStayExact) {
  auto p = scaled_poisson(10, 10, 11);
  auto part = make_partition(p.a, 8);
  DistLayout layout(p.a, part);
  simmpi::Runtime rt(8);
  ParallelSouthwell solver(layout, rt, p.b, p.x0);
  for (int k = 0; k < 10; ++k) {
    solver.step();
    auto x = solver.gather_x();
    std::vector<value_t> r(x.size());
    p.a.residual(p.b, x, r);
    EXPECT_NEAR(solver.global_residual_norm(), sparse::norm2(r), 1e-11);
  }
}

TEST(ParallelSouthwellDist, AtLeastOneRankRelaxesPerStep) {
  // Γ is exact in PS, so the global-max rank always satisfies the
  // criterion: no deadlock, ever.
  auto p = scaled_poisson(12, 12, 12);
  auto part = make_partition(p.a, 9);
  DistLayout layout(p.a, part);
  simmpi::Runtime rt(9);
  ParallelSouthwell solver(layout, rt, p.b, p.x0);
  for (int k = 0; k < 30; ++k) {
    auto stats = solver.step();
    EXPECT_GE(stats.active_ranks, 1);
  }
}

TEST(ParallelSouthwellDist, NotAllRanksRelaxEachStep) {
  // The whole point: only local-max subdomains relax.
  auto p = scaled_poisson(12, 12, 13);
  auto part = make_partition(p.a, 9);
  DistLayout layout(p.a, part);
  simmpi::Runtime rt(9);
  ParallelSouthwell solver(layout, rt, p.b, p.x0);
  index_t max_active = 0;
  for (int k = 0; k < 10; ++k) {
    max_active = std::max(max_active, solver.step().active_ranks);
  }
  EXPECT_LT(max_active, 9);
}

TEST(ParallelSouthwellDist, SendsExplicitResidualUpdates) {
  auto p = scaled_poisson(10, 10, 14);
  auto part = make_partition(p.a, 8);
  DistLayout layout(p.a, part);
  simmpi::Runtime rt(8);
  ParallelSouthwell solver(layout, rt, p.b, p.x0);
  for (int k = 0; k < 10; ++k) solver.step();
  EXPECT_GT(rt.stats().total_messages(simmpi::MsgTag::kResidual), 0u);
  EXPECT_GT(rt.stats().total_messages(simmpi::MsgTag::kSolve), 0u);
}

TEST(ParallelSouthwellDist, ConvergesToLowResidual) {
  auto p = scaled_poisson(10, 10, 15);
  auto part = make_partition(p.a, 6);
  DistRunOptions opt;
  opt.max_parallel_steps = 400;
  opt.stop_at_residual = 1e-5;
  auto result = run_distributed(DistMethod::kParallelSouthwell, p.a, part,
                                p.b, p.x0, opt);
  EXPECT_LE(result.residual_norm.back(), 1e-5);
}

TEST(ParallelSouthwellDist, Ref18SchemeWithoutExplicitUpdatesStalls) {
  // §4.2: "Parallel Southwell as defined in [18] deadlocks for all our
  // test problems." Without Epoch B, stale Γ entries eventually make
  // every rank think a neighbor is bigger.
  auto p = scaled_poisson(12, 12, 16);
  auto part = make_partition(p.a, 9);
  DistLayout layout(p.a, part);
  simmpi::Runtime rt(9);
  ParallelSouthwell solver(layout, rt, p.b, p.x0,
                           /*explicit_residual_updates=*/false);
  bool stalled = false;
  for (int k = 0; k < 200 && !stalled; ++k) {
    stalled = (solver.step().active_ranks == 0);
  }
  EXPECT_TRUE(stalled);
  EXPECT_GT(solver.global_residual_norm(), 0.0);
}

TEST(ParallelSouthwellDist, DeterministicAcrossRuns) {
  auto p = scaled_poisson(8, 8, 17);
  auto part = make_partition(p.a, 5);
  DistRunOptions opt;
  opt.max_parallel_steps = 20;
  auto r1 = run_distributed(DistMethod::kParallelSouthwell, p.a, part, p.b,
                            p.x0, opt);
  auto r2 = run_distributed(DistMethod::kParallelSouthwell, p.a, part, p.b,
                            p.x0, opt);
  ASSERT_EQ(r1.residual_norm.size(), r2.residual_norm.size());
  for (std::size_t k = 0; k < r1.residual_norm.size(); ++k) {
    EXPECT_DOUBLE_EQ(r1.residual_norm[k], r2.residual_norm[k]);
  }
  EXPECT_EQ(r1.comm_cost.back(), r2.comm_cost.back());
}

}  // namespace
}  // namespace dsouth::dist
