#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace dsouth::util {
namespace {

ArgParser parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, ParsesNameValuePairs) {
  auto p = parse({"-mat_file", "ecology2.mtx", "-sweep_max", "20"});
  EXPECT_EQ(p.get_or("mat_file", ""), "ecology2.mtx");
  EXPECT_EQ(p.get_int_or("sweep_max", 0), 20);
}

TEST(ArgParser, FlagsHaveEmptyValue) {
  auto p = parse({"-x_zeros", "-solver", "sos_sds"});
  EXPECT_TRUE(p.has("x_zeros"));
  EXPECT_EQ(*p.get("x_zeros"), "");
  EXPECT_EQ(p.get_or("solver", ""), "sos_sds");
}

TEST(ArgParser, TrailingFlag) {
  auto p = parse({"-a", "1", "-verbose"});
  EXPECT_TRUE(p.has("verbose"));
  EXPECT_EQ(p.get_int_or("a", 0), 1);
}

TEST(ArgParser, MissingReturnsDefaults) {
  auto p = parse({});
  EXPECT_FALSE(p.has("anything"));
  EXPECT_EQ(p.get_or("s", "dflt"), "dflt");
  EXPECT_EQ(p.get_int_or("i", -3), -3);
  EXPECT_DOUBLE_EQ(p.get_double_or("d", 2.5), 2.5);
}

TEST(ArgParser, NegativeNumbersAreValuesNotOptions) {
  auto p = parse({"-shift", "-0.5", "-count", "-3"});
  EXPECT_DOUBLE_EQ(p.get_double_or("shift", 0.0), -0.5);
  EXPECT_EQ(p.get_int_or("count", 0), -3);
}

TEST(ArgParser, MalformedNumberThrows) {
  auto p = parse({"-n", "abc"});
  EXPECT_THROW(p.get_int_or("n", 0), CheckError);
  EXPECT_THROW(p.get_double_or("n", 0.0), CheckError);
}

TEST(ArgParser, IntListParses) {
  auto p = parse({"-procs", "32,64,128,8192"});
  auto v = p.get_int_list_or("procs", {});
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 32);
  EXPECT_EQ(v[3], 8192);
}

TEST(ArgParser, IntListDefaultAndErrors) {
  auto p = parse({"-procs", "1,x"});
  EXPECT_THROW(p.get_int_list_or("procs", {}), CheckError);
  auto q = parse({});
  auto v = q.get_int_list_or("procs", {5, 6});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[1], 6);
}

TEST(ArgParser, BareValueWithoutOptionThrows) {
  std::vector<const char*> argv{"prog", "stray"};
  EXPECT_THROW(ArgParser(2, argv.data()), CheckError);
}

TEST(ArgParser, UnqueriedReportsTypos) {
  auto p = parse({"-real", "1", "-typo_opt", "2"});
  (void)p.get_int_or("real", 0);
  auto u = p.unqueried();
  ASSERT_EQ(u.size(), 1u);
  EXPECT_EQ(u[0], "typo_opt");
}

}  // namespace
}  // namespace dsouth::util
