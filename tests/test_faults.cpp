/// Tests for the deterministic fault-injection subsystem (src/faults) and
/// the solver-side recovery path (docs/resilience.md): FaultSchedule
/// semantics, runtime fence application, zero-plan byte-identity,
/// cross-backend bit-reproducibility of faulted runs, wire corruption
/// properties (malformed payloads reject with structured reasons, never
/// misparse), solver convergence under faults with resilience on, and the
/// driver's divergence watchdog.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "dist/driver.hpp"
#include "faults/fault_plan.hpp"
#include "graph/partition.hpp"
#include "simmpi/runtime.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"
#include "wire/wire.hpp"

namespace dsouth {
namespace {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

// ---------------------------------------------------------------------------
// FaultPlan / FaultSchedule semantics.

TEST(FaultPlan, AnyDetectsEveryKnob) {
  EXPECT_FALSE(faults::FaultPlan{}.any());

  faults::FaultPlan drop;
  drop.defaults.drop_probability = 0.1;
  EXPECT_TRUE(drop.any());

  faults::FaultPlan edge;
  edge.edges.push_back({0, 1, {.corrupt_probability = 0.5}});
  EXPECT_TRUE(edge.any());

  faults::FaultPlan straggler;
  straggler.stragglers.push_back({2, 4.0});
  EXPECT_TRUE(straggler.any());
  straggler.stragglers.back().slowdown = 1.0;  // a non-straggler straggler
  EXPECT_FALSE(straggler.any());

  faults::FaultPlan stall;
  stall.stalls.push_back({1, 5, 3});
  EXPECT_TRUE(stall.any());
  stall.stalls.back().epochs = 0;  // an empty stall window
  EXPECT_FALSE(stall.any());
}

TEST(FaultSchedule, DecisionsAreStatelessAndSeedDependent) {
  faults::FaultPlan plan;
  plan.defaults.drop_probability = 0.3;
  plan.defaults.duplicate_probability = 0.3;
  plan.defaults.corrupt_probability = 0.3;
  faults::FaultSchedule s1(plan, 4);
  faults::FaultSchedule s2(plan, 4);
  plan.seed ^= 1;
  faults::FaultSchedule s3(plan, 4);

  bool seed_changed_something = false;
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    const auto a = s1.decide(7, 1, 2, seq, 16);
    const auto b = s1.decide(7, 1, 2, seq, 16);  // stateless: call order
    const auto c = s2.decide(7, 1, 2, seq, 16);  // and instance independent
    EXPECT_EQ(a.drop, b.drop);
    EXPECT_EQ(a.duplicate, b.duplicate);
    EXPECT_EQ(a.corrupt, b.corrupt);
    EXPECT_EQ(a.corrupt_index, b.corrupt_index);
    EXPECT_EQ(a.corrupt_bit, b.corrupt_bit);
    EXPECT_EQ(a.drop, c.drop);
    EXPECT_EQ(a.duplicate, c.duplicate);
    EXPECT_EQ(a.corrupt, c.corrupt);
    const auto d = s3.decide(7, 1, 2, seq, 16);
    if (a.drop != d.drop || a.duplicate != d.duplicate ||
        a.corrupt != d.corrupt) {
      seed_changed_something = true;
    }
  }
  EXPECT_TRUE(seed_changed_something);
}

TEST(FaultSchedule, DropShortCircuitsAndOverridesWin) {
  faults::FaultPlan plan;  // defaults stay zero
  plan.edges.push_back({0, 1,
                        {.drop_probability = 1.0,
                         .duplicate_probability = 1.0,
                         .corrupt_probability = 1.0}});
  faults::FaultSchedule s(plan, 3);
  for (std::uint64_t seq = 0; seq < 50; ++seq) {
    const auto hit = s.decide(0, 0, 1, seq, 8);
    EXPECT_TRUE(hit.drop);
    EXPECT_FALSE(hit.duplicate);  // a dropped message suffers nothing else
    EXPECT_FALSE(hit.corrupt);
    const auto other = s.decide(0, 0, 2, seq, 8);  // un-overridden edge
    EXPECT_FALSE(other.drop);
    EXPECT_FALSE(other.duplicate);
    EXPECT_FALSE(other.corrupt);
  }
}

TEST(FaultSchedule, TruncationSupersedesCorruptionAndShortens) {
  faults::FaultPlan plan;
  plan.defaults.corrupt_probability = 1.0;
  plan.defaults.truncate_probability = 1.0;
  faults::FaultSchedule s(plan, 2);
  for (std::uint64_t seq = 0; seq < 50; ++seq) {
    const auto d = s.decide(3, 0, 1, seq, 10);
    EXPECT_TRUE(d.truncate);
    EXPECT_FALSE(d.corrupt);
    EXPECT_LT(d.truncate_len, 10u);
  }
}

TEST(FaultSchedule, StallWindowsAndStragglers) {
  faults::FaultPlan plan;
  plan.stalls.push_back({1, 3, 2});  // rank 1 silent in epochs 3 and 4
  plan.stragglers.push_back({0, 8.0});
  faults::FaultSchedule s(plan, 2);
  EXPECT_EQ(s.hold_until(1, 2), 2u);
  EXPECT_EQ(s.hold_until(1, 3), 5u);
  EXPECT_EQ(s.hold_until(1, 4), 5u);
  EXPECT_EQ(s.hold_until(1, 5), 5u);
  EXPECT_FALSE(s.stalled(1, 2));
  EXPECT_TRUE(s.stalled(1, 3));
  EXPECT_FALSE(s.stalled(0, 3));
  EXPECT_EQ(s.slowdown(0), 8.0);
  EXPECT_EQ(s.slowdown(1), 1.0);
}

// ---------------------------------------------------------------------------
// Runtime application at the fence.

TEST(FaultRuntime, DropLosesTheMessageButChargesTheSender) {
  faults::FaultPlan plan;
  plan.defaults.drop_probability = 1.0;
  faults::FaultSchedule schedule(plan, 2);
  simmpi::Runtime rt(2);
  rt.set_fault_schedule(&schedule);
  rt.put(0, 1, simmpi::MsgTag::kSolve, std::vector<double>{1.0, 2.0});
  rt.fence();
  EXPECT_TRUE(rt.window(1).empty());
  EXPECT_EQ(rt.stats().dropped_messages(), 1u);
  EXPECT_EQ(rt.stats().total_messages(), 1u);  // the sender still paid
}

TEST(FaultRuntime, DuplicateDeliversTwoIdenticalCopies) {
  faults::FaultPlan plan;
  plan.defaults.duplicate_probability = 1.0;
  faults::FaultSchedule schedule(plan, 2);
  simmpi::Runtime rt(2);
  rt.set_fault_schedule(&schedule);
  rt.put(0, 1, simmpi::MsgTag::kSolve, std::vector<double>{1.0, 2.0, 3.0});
  rt.fence();
  ASSERT_EQ(rt.window(1).size(), 2u);
  EXPECT_EQ(rt.window(1)[0].payload, rt.window(1)[1].payload);
  EXPECT_EQ(rt.stats().duplicated_messages(), 1u);
}

TEST(FaultRuntime, CorruptFlipsExactlyOneBit) {
  faults::FaultPlan plan;
  plan.defaults.corrupt_probability = 1.0;
  faults::FaultSchedule schedule(plan, 2);
  simmpi::Runtime rt(2);
  rt.set_fault_schedule(&schedule);
  const std::vector<double> sent{1.0, 2.0, 3.0, 4.0};
  rt.put(0, 1, simmpi::MsgTag::kSolve, std::vector<double>(sent));
  rt.fence();
  ASSERT_EQ(rt.window(1).size(), 1u);
  const auto& got = rt.window(1)[0].payload;
  ASSERT_EQ(got.size(), sent.size());
  int flipped_bits = 0;
  for (std::size_t i = 0; i < sent.size(); ++i) {
    flipped_bits += std::popcount(std::bit_cast<std::uint64_t>(got[i]) ^
                                  std::bit_cast<std::uint64_t>(sent[i]));
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_EQ(rt.stats().corrupted_messages(), 1u);
}

TEST(FaultRuntime, TruncateDeliversAPrefix) {
  faults::FaultPlan plan;
  plan.defaults.truncate_probability = 1.0;
  faults::FaultSchedule schedule(plan, 2);
  simmpi::Runtime rt(2);
  rt.set_fault_schedule(&schedule);
  const std::vector<double> sent{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  rt.put(0, 1, simmpi::MsgTag::kSolve, std::vector<double>(sent));
  rt.fence();
  ASSERT_EQ(rt.window(1).size(), 1u);
  const auto& got = rt.window(1)[0].payload;
  ASSERT_LT(got.size(), sent.size());
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], sent[i]);
  EXPECT_EQ(rt.stats().corrupted_messages(), 1u);  // truncation counts here
}

TEST(FaultRuntime, StalledSenderTrafficLandsWhenTheWindowCloses) {
  faults::FaultPlan plan;
  plan.stalls.push_back({0, 0, 2});  // rank 0 silent in epochs 0 and 1
  faults::FaultSchedule schedule(plan, 2);
  simmpi::Runtime rt(2);
  rt.set_fault_schedule(&schedule);
  rt.put(0, 1, simmpi::MsgTag::kSolve, std::vector<double>{1.0});
  rt.fence();  // closes epoch 0: held
  EXPECT_TRUE(rt.window(1).empty());
  EXPECT_EQ(rt.delayed_in_flight(), 1u);
  rt.fence();  // closes epoch 1: still held
  EXPECT_TRUE(rt.window(1).empty());
  rt.fence();  // closes epoch 2: the stall is over
  EXPECT_EQ(rt.window(1).size(), 1u);
  EXPECT_EQ(rt.delayed_in_flight(), 0u);
}

/// Regression: reset_stats must clear the fault counters too.
TEST(FaultRuntime, ResetStatsClearsFaultCounters) {
  faults::FaultPlan plan;
  plan.defaults.drop_probability = 1.0;
  faults::FaultSchedule schedule(plan, 2);
  simmpi::Runtime rt(2);
  rt.set_fault_schedule(&schedule);
  rt.put(0, 1, simmpi::MsgTag::kSolve, std::vector<double>{1.0});
  rt.fence();
  EXPECT_EQ(rt.stats().dropped_messages(), 1u);
  rt.reset_stats();
  EXPECT_EQ(rt.stats().dropped_messages(), 0u);
  EXPECT_EQ(rt.stats().duplicated_messages(), 0u);
  EXPECT_EQ(rt.stats().corrupted_messages(), 0u);
  EXPECT_EQ(rt.stats().total_messages(), 0u);
}

// ---------------------------------------------------------------------------
// Wire corruption properties: malformed payloads reject with a structured
// DecodeError, never misparse or crash.

TEST(WireCorruption, EveryEnvelopeBitFlipIsDetected) {
  const std::size_t nb = 3;
  const std::size_t body_len = wire::encoded_doubles(
      wire::RecordType::kNormUpdate, nb);
  std::vector<double> env(wire::kEnvelopeDoubles + body_len);
  auto body = wire::begin_envelope(env, /*seq=*/41);
  auto rec = wire::begin_record(wire::RecordType::kNormUpdate, 0.25, 0.0,
                                body, nb);
  for (std::size_t i = 0; i < nb; ++i) rec.dx[i] = 0.5 * double(i + 1);
  wire::seal_envelope(env);
  ASSERT_NO_THROW(wire::decode_envelope(env));

  // The checksum covers seq, inner_len and the body; magic and version
  // flips are caught structurally. So EVERY single-bit flip must reject.
  for (std::size_t slot = 0; slot < env.size(); ++slot) {
    for (int bit = 0; bit < 64; ++bit) {
      std::vector<double> bad = env;
      bad[slot] = std::bit_cast<double>(
          std::bit_cast<std::uint64_t>(bad[slot]) ^ (1ULL << bit));
      EXPECT_THROW(wire::decode_envelope(bad), wire::DecodeError)
          << "slot " << slot << " bit " << bit;
    }
  }
}

TEST(WireCorruption, EveryEnvelopeTruncationIsDetected) {
  const std::size_t nb = 4;
  const std::size_t body_len =
      wire::encoded_doubles(wire::RecordType::kSolveUpdate, nb);
  std::vector<double> env(wire::kEnvelopeDoubles + body_len);
  auto body = wire::begin_envelope(env, /*seq=*/7);
  auto rec = wire::begin_record(wire::RecordType::kSolveUpdate, 0.5, 0.25,
                                body, nb);
  for (std::size_t i = 0; i < nb; ++i) {
    rec.dx[i] = double(i);
    rec.rb[i] = -double(i);
  }
  wire::seal_envelope(env);
  for (std::size_t len = 0; len < env.size(); ++len) {
    std::span<const double> prefix(env.data(), len);
    EXPECT_THROW(wire::decode_envelope(prefix), wire::DecodeError)
        << "length " << len;
  }
}

/// Random bit flips and truncations of bare v1 records either decode (a
/// flipped *value* bit is indistinguishable from a legitimate payload —
/// that is exactly why resilient mode wraps records in checksummed
/// envelopes) or throw DecodeError; nothing else may happen.
TEST(WireCorruption, BareRecordsRejectStructurallyOrDecode) {
  struct Case {
    wire::Family family;
    wire::RecordType type;
    double norm2, gamma2;
  };
  const Case cases[] = {
      {wire::Family::kDelta, wire::RecordType::kGhostDelta, 0.0, 0.0},
      {wire::Family::kNorm, wire::RecordType::kNormUpdate, 0.5, 0.0},
      {wire::Family::kNorm, wire::RecordType::kResidualNorm, 0.5, 0.0},
      {wire::Family::kEstimate, wire::RecordType::kSolveUpdate, 0.5, 0.25},
      {wire::Family::kEstimate, wire::RecordType::kCorrection, 0.5, 0.25},
  };
  const std::size_t nb = 3;
  util::Rng rng(0xC0FFEEULL);
  for (const auto& c : cases) {
    std::vector<double> payload(wire::encoded_doubles(c.type, nb));
    auto rec = wire::begin_record(c.type, c.norm2, c.gamma2, payload, nb);
    for (std::size_t i = 0; i < rec.dx.size(); ++i) rec.dx[i] = 0.125;
    for (std::size_t i = 0; i < rec.rb.size(); ++i) rec.rb[i] = -0.125;
    ASSERT_NO_THROW(wire::decode_record(c.family, payload, nb));

    for (int trial = 0; trial < 500; ++trial) {
      std::vector<double> bad = payload;
      if (rng.next_u64() % 2 == 0 && !bad.empty()) {
        const auto slot = rng.next_u64() % bad.size();
        const auto bit = rng.next_u64() % 64;
        bad[slot] = std::bit_cast<double>(
            std::bit_cast<std::uint64_t>(bad[slot]) ^ (1ULL << bit));
      } else {
        bad.resize(rng.next_u64() % (bad.size() + 1));
      }
      try {
        (void)wire::decode_record(c.family, bad, nb);
      } catch (const wire::DecodeError& e) {
        // Structured rejection: the reason must be a known kind.
        EXPECT_NE(wire::decode_error_kind_name(e.kind()), nullptr);
      }
      // Any other exception type escapes and fails the test.
    }
  }
}

// ---------------------------------------------------------------------------
// Driver-level identity and reproducibility.

struct Problem {
  CsrMatrix a;
  std::vector<value_t> b, x0;
  graph::Partition part;
};

Problem make_problem(index_t nx, index_t ranks, std::uint64_t seed) {
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(nx, nx)).a;
  p.b.assign(static_cast<std::size_t>(p.a.rows()), 0.0);
  p.x0.resize(p.b.size());
  util::Rng rng(seed);
  rng.fill_uniform(p.x0, -1.0, 1.0);
  sparse::normalize_initial_residual(p.a, p.b, p.x0);
  p.part = graph::partition_recursive_bisection(
      graph::Graph::from_matrix_structure(p.a), ranks);
  return p;
}

faults::FaultPlan lossy_plan() {
  faults::FaultPlan plan;
  plan.defaults.drop_probability = 0.02;
  plan.defaults.duplicate_probability = 0.01;
  plan.defaults.corrupt_probability = 0.01;
  plan.defaults.truncate_probability = 0.005;
  return plan;
}

TEST(FaultDriver, ZeroPlanIsBitIdenticalToNoPlan) {
  auto p = make_problem(12, 8, 17);
  dist::DistRunOptions plain;
  plain.max_parallel_steps = 20;
  dist::DistRunOptions zeroed = plain;
  zeroed.faults = faults::FaultPlan{};  // all-zero: must never attach
  zeroed.watchdog.enabled = true;       // pure observer on a sane run
  for (auto m : {dist::DistMethod::kParallelSouthwell,
                 dist::DistMethod::kDistributedSouthwell}) {
    auto a = dist::run_distributed(m, p.a, p.part, p.b, p.x0, plain);
    auto b = dist::run_distributed(m, p.a, p.part, p.b, p.x0, zeroed);
    EXPECT_EQ(a.residual_norm, b.residual_norm);
    EXPECT_EQ(a.final_x, b.final_x);
    EXPECT_EQ(a.comm_totals.msgs, b.comm_totals.msgs);
    EXPECT_EQ(a.comm_totals.bytes, b.comm_totals.bytes);
    EXPECT_FALSE(a.fault_summary.has_value());
    EXPECT_FALSE(b.fault_summary.has_value());
    EXPECT_FALSE(b.watchdog.fired);
  }
}

TEST(FaultDriver, FaultedRunsAreBitIdenticalAcrossBackends) {
  auto p = make_problem(12, 8, 17);
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 30;
  opt.faults = lossy_plan();
  opt.resilience.enabled = true;
  for (auto m : {dist::DistMethod::kBlockJacobi,
                 dist::DistMethod::kParallelSouthwell,
                 dist::DistMethod::kDistributedSouthwell,
                 dist::DistMethod::kMulticolorBlockGs}) {
    auto seq_opt = opt;
    seq_opt.backend = simmpi::BackendKind::kSequential;
    auto thr_opt = opt;
    thr_opt.backend = simmpi::BackendKind::kThreadPool;
    thr_opt.num_threads = 3;
    auto a = dist::run_distributed(m, p.a, p.part, p.b, p.x0, seq_opt);
    auto b = dist::run_distributed(m, p.a, p.part, p.b, p.x0, thr_opt);
    EXPECT_EQ(a.residual_norm, b.residual_norm) << dist::method_name(m);
    EXPECT_EQ(a.final_x, b.final_x) << dist::method_name(m);
    ASSERT_TRUE(a.fault_summary.has_value());
    ASSERT_TRUE(b.fault_summary.has_value());
    EXPECT_EQ(a.fault_summary->msgs_dropped, b.fault_summary->msgs_dropped);
    EXPECT_EQ(a.fault_summary->msgs_corrupted,
              b.fault_summary->msgs_corrupted);
    EXPECT_EQ(a.fault_summary->rejected_corrupt,
              b.fault_summary->rejected_corrupt);
    EXPECT_EQ(a.fault_summary->rejected_stale,
              b.fault_summary->rejected_stale);
    EXPECT_EQ(a.fault_summary->refreshes_sent,
              b.fault_summary->refreshes_sent);
    EXPECT_GT(a.fault_summary->msgs_dropped, 0u) << dist::method_name(m);
  }
}

// ---------------------------------------------------------------------------
// Recovery: every method keeps converging under message loss, duplication
// and corruption once resilience is on.

class FaultRecovery : public ::testing::TestWithParam<dist::DistMethod> {};

TEST_P(FaultRecovery, ConvergesUnderLossDuplicationAndCorruption) {
  auto p = make_problem(14, 12, 31);
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 120;
  opt.faults = lossy_plan();
  opt.resilience.enabled = true;
  opt.resilience.refresh_period = 6;
  opt.watchdog.enabled = true;
  auto r = dist::run_distributed(GetParam(), p.a, p.part, p.b, p.x0, opt);
  EXPECT_FALSE(r.watchdog.fired)
      << dist::method_name(GetParam()) << ": " << r.watchdog.reason;
  EXPECT_LT(r.residual_norm.back(), 0.05) << dist::method_name(GetParam());
  ASSERT_TRUE(r.fault_summary.has_value());
  EXPECT_GT(r.fault_summary->msgs_dropped, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Methods, FaultRecovery,
    ::testing::Values(dist::DistMethod::kBlockJacobi,
                      dist::DistMethod::kParallelSouthwell,
                      dist::DistMethod::kDistributedSouthwell,
                      dist::DistMethod::kMulticolorBlockGs),
    [](const auto& info) {
      return std::string(dist::method_name(info.param));
    });

// ---------------------------------------------------------------------------
// Watchdog: faulted runs stop deterministically, they never hang.

TEST(Watchdog, ReportsDivergenceUnderUncheckedCorruption) {
  // Resilience OFF: corrupted kGhostDelta payloads decode as legitimate
  // boundary deltas (no checksum on the v1 path), so bit flips in an
  // exponent eventually blow the iterate up. The watchdog must stop the
  // run and say why, well before the step budget.
  auto p = make_problem(12, 8, 17);
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 400;
  opt.faults.defaults.corrupt_probability = 0.2;
  opt.watchdog.enabled = true;
  auto r = dist::run_distributed(dist::DistMethod::kBlockJacobi, p.a, p.part,
                                 p.b, p.x0, opt);
  EXPECT_TRUE(r.watchdog.fired);
  EXPECT_FALSE(r.watchdog.reason.empty());
  EXPECT_LE(r.steps_taken(), 400u);
  // The recorded history keeps everything up to the stop.
  EXPECT_EQ(r.residual_norm.size(), r.steps_taken() + 1);
}

TEST(Watchdog, StallCheckFiresWhenNothingImproves) {
  // Drop every message: each solver converges to its block-local fixed
  // point and then cannot improve. The stall check must end the run.
  auto p = make_problem(12, 8, 17);
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 400;
  opt.faults.defaults.drop_probability = 1.0;
  opt.resilience.enabled = true;
  opt.watchdog.enabled = true;
  opt.watchdog.stall_steps = 10;
  auto r = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                 p.a, p.part, p.b, p.x0, opt);
  EXPECT_TRUE(r.watchdog.fired);
  EXPECT_LT(r.steps_taken(), 400u);
}

}  // namespace
}  // namespace dsouth
