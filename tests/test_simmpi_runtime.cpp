#include "simmpi/runtime.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"

namespace dsouth::simmpi {
namespace {

TEST(Runtime, MessagesInvisibleUntilFence) {
  Runtime rt(3);
  std::vector<double> data{1.0, 2.0};
  rt.put(0, 1, MsgTag::kSolve, data);
  EXPECT_TRUE(rt.window(1).empty());
  rt.fence();
  ASSERT_EQ(rt.window(1).size(), 1u);
  EXPECT_EQ(rt.window(1)[0].source, 0);
  EXPECT_EQ(rt.window(1)[0].tag, MsgTag::kSolve);
  EXPECT_EQ(rt.window(1)[0].payload, data);
}

TEST(Runtime, WindowAccumulatesUntilConsumed) {
  // One-sided semantics: delivered data persists until the target
  // processes it (consume); it is NOT dropped by an unrelated fence.
  Runtime rt(2);
  rt.put(0, 1, MsgTag::kSolve, std::vector<double>{1.0});
  rt.fence();
  EXPECT_EQ(rt.window(1).size(), 1u);
  rt.fence();  // no traffic this epoch
  EXPECT_EQ(rt.window(1).size(), 1u);
  rt.put(0, 1, MsgTag::kSolve, std::vector<double>{2.0});
  rt.fence();
  EXPECT_EQ(rt.window(1).size(), 2u);
  rt.consume(1);
  EXPECT_TRUE(rt.window(1).empty());
}

TEST(Runtime, DeliveryIsSortedBySourceThenSendOrder) {
  Runtime rt(4);
  rt.put(2, 0, MsgTag::kSolve, std::vector<double>{20.0});
  rt.put(1, 0, MsgTag::kSolve, std::vector<double>{10.0});
  rt.put(2, 0, MsgTag::kResidual, std::vector<double>{21.0});
  rt.fence();
  auto win = rt.window(0);
  ASSERT_EQ(win.size(), 3u);
  EXPECT_EQ(win[0].source, 1);
  EXPECT_EQ(win[1].source, 2);
  EXPECT_DOUBLE_EQ(win[1].payload[0], 20.0);
  EXPECT_EQ(win[2].source, 2);
  EXPECT_DOUBLE_EQ(win[2].payload[0], 21.0);
}

TEST(Runtime, SelfPutThrows) {
  Runtime rt(2);
  EXPECT_THROW(rt.put(0, 0, MsgTag::kSolve, std::vector<double>{}),
               util::CheckError);
}

TEST(Runtime, StatsCountPerTagAndPerRank) {
  Runtime rt(4);
  rt.put(0, 1, MsgTag::kSolve, std::vector<double>{1.0, 2.0});
  rt.put(0, 2, MsgTag::kSolve, std::vector<double>{1.0});
  rt.put(3, 0, MsgTag::kResidual, std::vector<double>{5.0});
  rt.fence();
  const auto& s = rt.stats();
  EXPECT_EQ(s.total_messages(), 3u);
  EXPECT_EQ(s.total_messages(MsgTag::kSolve), 2u);
  EXPECT_EQ(s.total_messages(MsgTag::kResidual), 1u);
  EXPECT_EQ(s.messages_from(0), 2u);
  EXPECT_EQ(s.messages_from(3), 1u);
  EXPECT_DOUBLE_EQ(s.comm_cost(), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(s.comm_cost(MsgTag::kResidual), 0.25);
  EXPECT_EQ(s.total_bytes(),
            message_bytes(2) + message_bytes(1) + message_bytes(1));
}

TEST(Runtime, StatsAccumulateAcrossEpochs) {
  Runtime rt(2);
  rt.put(0, 1, MsgTag::kSolve, std::vector<double>{1.0});
  rt.fence();
  rt.put(1, 0, MsgTag::kSolve, std::vector<double>{1.0});
  rt.fence();
  EXPECT_EQ(rt.stats().total_messages(), 2u);
  EXPECT_EQ(rt.epochs_completed(), 2u);
}

TEST(MachineModel, RankCostIsAffine) {
  MachineModel m;
  m.alpha = 1e-6;
  m.beta = 1e-9;
  m.flop_time = 1e-10;
  EXPECT_DOUBLE_EQ(m.rank_cost(1000.0, 2, 100),
                   1000.0 * 1e-10 + 2 * 1e-6 + 100 * 1e-9);
}

TEST(MachineModel, EpochAddsContentionAndOverhead) {
  MachineModel m;
  m.gamma = 1e-6;
  m.sigma = 5e-7;
  const double t = m.epoch_seconds(1e-5, 100, 10);
  EXPECT_DOUBLE_EQ(t, 1e-5 + 1e-6 * 10.0 + 5e-7);
}

TEST(Runtime, ModelTimeTracksCriticalPath) {
  MachineModel m;
  m.alpha = 1.0;  // 1 second per message, everything else 0
  m.beta = 0.0;
  m.flop_time = 0.0;
  m.gamma = 0.0;
  m.sigma = 0.0;
  Runtime rt(3, m);
  // Rank 0 sends two messages, rank 1 sends one: critical path = 2.
  rt.put(0, 1, MsgTag::kSolve, std::vector<double>{});
  rt.put(0, 2, MsgTag::kSolve, std::vector<double>{});
  rt.put(1, 2, MsgTag::kSolve, std::vector<double>{});
  rt.fence();
  EXPECT_DOUBLE_EQ(rt.model_time_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(rt.last_epoch_seconds(), 2.0);
  // Idle epoch costs only sigma (0 here).
  rt.fence();
  EXPECT_DOUBLE_EQ(rt.model_time_seconds(), 2.0);
}

TEST(Runtime, FlopsEnterTheMax) {
  MachineModel m;
  m.alpha = 0.0;
  m.beta = 0.0;
  m.gamma = 0.0;
  m.sigma = 0.0;
  m.flop_time = 0.5;
  Runtime rt(2, m);
  rt.add_flops(0, 10.0);
  rt.add_flops(1, 4.0);
  rt.fence();
  EXPECT_DOUBLE_EQ(rt.model_time_seconds(), 5.0);
  // Counters reset per epoch.
  rt.fence();
  EXPECT_DOUBLE_EQ(rt.model_time_seconds(), 5.0);
}

TEST(Runtime, InvalidRanksThrow) {
  Runtime rt(2);
  EXPECT_THROW(rt.put(0, 5, MsgTag::kSolve, std::vector<double>{}),
               util::CheckError);
  EXPECT_THROW(rt.add_flops(-1, 1.0), util::CheckError);
  EXPECT_THROW(rt.window(2), util::CheckError);
  EXPECT_THROW(rt.add_flops(0, -1.0), util::CheckError);
}

TEST(CommStats, ResetClearsEverything) {
  CommStats s(2);
  s.record_send(0, MsgTag::kSolve, 100);
  s.reset();
  EXPECT_EQ(s.total_messages(), 0u);
  EXPECT_EQ(s.total_bytes(), 0u);
  EXPECT_EQ(s.messages_from(0), 0u);
  EXPECT_EQ(s.logical_messages(), 0u);
}

TEST(CommStats, LogicalRecordsDefaultToOnePerMessage) {
  CommStats s(2);
  s.record_send(0, MsgTag::kSolve, 100);
  s.record_send(1, MsgTag::kResidual, 100, 3);  // a coalesced frame
  EXPECT_EQ(s.total_messages(), 2u);
  EXPECT_EQ(s.logical_messages(), 4u);
  EXPECT_EQ(s.logical_messages(MsgTag::kSolve), 1u);
  EXPECT_EQ(s.logical_messages(MsgTag::kResidual), 3u);
  // A physical message carries at least one record.
  EXPECT_THROW(s.record_send(0, MsgTag::kSolve, 100, 0), util::CheckError);
}

TEST(Runtime, StageIsEquivalentToPut) {
  // stage() is put() minus the copy: same delivery, same accounting, same
  // modeled time.
  Runtime a(2), b(2);
  const std::vector<double> data{1.0, 2.0, 3.0};
  a.put(0, 1, MsgTag::kSolve, data);
  auto out = b.stage(0, 1, MsgTag::kSolve, data.size());
  ASSERT_EQ(out.size(), data.size());
  std::copy(data.begin(), data.end(), out.begin());
  a.fence();
  b.fence();
  ASSERT_EQ(a.window(1).size(), 1u);
  ASSERT_EQ(b.window(1).size(), 1u);
  EXPECT_EQ(a.window(1)[0].payload, b.window(1)[0].payload);
  EXPECT_EQ(a.window(1)[0].tag, b.window(1)[0].tag);
  EXPECT_EQ(a.stats().total_messages(), b.stats().total_messages());
  EXPECT_EQ(a.stats().total_bytes(), b.stats().total_bytes());
  EXPECT_EQ(a.model_time_seconds(), b.model_time_seconds());
}

TEST(Runtime, StageCountsLogicalRecords) {
  Runtime rt(2);
  auto out = rt.stage(0, 1, MsgTag::kSolve, 4, /*logical_records=*/3);
  std::fill(out.begin(), out.end(), 0.0);
  rt.fence();
  EXPECT_EQ(rt.stats().total_messages(), 1u);
  EXPECT_EQ(rt.stats().logical_messages(), 3u);
}

TEST(Runtime, BufferPoolsRecycleSteadyStateTraffic) {
  // After one full cycle the staging buffer and the window buffer both
  // come from their pools: the exact allocations are reused.
  Runtime rt(2);
  auto s1 = rt.stage(0, 1, MsgTag::kSolve, 8);
  const double* stage_ptr = s1.data();
  std::fill(s1.begin(), s1.end(), 1.0);
  rt.fence();
  const double* window_ptr = rt.window(1)[0].payload.data();
  rt.consume(1);

  auto s2 = rt.stage(0, 1, MsgTag::kSolve, 8);
  EXPECT_EQ(s2.data(), stage_ptr);
  std::fill(s2.begin(), s2.end(), 2.0);
  rt.fence();
  ASSERT_EQ(rt.window(1).size(), 1u);
  EXPECT_EQ(rt.window(1)[0].payload.data(), window_ptr);
  EXPECT_EQ(rt.window(1)[0].payload, std::vector<double>(8, 2.0));
  rt.consume(1);
}

TEST(Runtime, WindowsStayCorrectAcrossBurstAndShrink) {
  // A delivery burst grows a window far beyond steady state; the next
  // small consume() swap-shrinks it (capacity > 4x the consumed size).
  // Observable behavior must be unchanged either side of the shrink.
  Runtime rt(2);
  for (int k = 0; k < 100; ++k) {
    rt.put(0, 1, MsgTag::kSolve, std::vector<double>{double(k)});
  }
  rt.fence();
  ASSERT_EQ(rt.window(1).size(), 100u);
  rt.consume(1);

  for (int round = 0; round < 3; ++round) {
    rt.put(0, 1, MsgTag::kSolve, std::vector<double>{1.0});
    rt.put(0, 1, MsgTag::kSolve, std::vector<double>{2.0});
    rt.fence();
    ASSERT_EQ(rt.window(1).size(), 2u);
    EXPECT_EQ(rt.window(1)[0].payload, std::vector<double>{1.0});
    EXPECT_EQ(rt.window(1)[1].payload, std::vector<double>{2.0});
    rt.consume(1);  // round 0 triggers the swap-shrink
  }
  EXPECT_TRUE(rt.window(1).empty());
}

}  // namespace
}  // namespace dsouth::simmpi
