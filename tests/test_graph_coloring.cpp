#include "graph/coloring.hpp"

#include <gtest/gtest.h>

#include "sparse/fem.hpp"
#include "sparse/mesh.hpp"
#include "sparse/stencils.hpp"

namespace dsouth::graph {
namespace {

TEST(Coloring, FivePointGridIsTwoColorable) {
  // The 5-pt stencil graph is bipartite (red-black): greedy BFS finds the
  // optimal 2 colors.
  auto g = Graph::from_matrix_structure(sparse::poisson2d_5pt(8, 8));
  auto c = greedy_coloring(g, ColoringOrder::kBfs);
  EXPECT_TRUE(coloring_is_valid(g, c));
  EXPECT_EQ(c.num_colors, 2);
}

TEST(Coloring, NinePointGridNeedsFourColors) {
  auto g = Graph::from_matrix_structure(sparse::poisson2d_9pt(8, 8));
  auto c = greedy_coloring(g, ColoringOrder::kBfs);
  EXPECT_TRUE(coloring_is_valid(g, c));
  EXPECT_GE(c.num_colors, 4);  // contains 4-cliques
  EXPECT_LE(c.num_colors, 5);
}

TEST(Coloring, FemMeshUsesFewColors) {
  // The paper reports 6 colors for its irregular FEM problem with BFS
  // traversal; our perturbed triangulations are similar.
  auto mesh = sparse::make_perturbed_grid_mesh(21, 21, 0.25, 7);
  auto a = sparse::assemble_p1_poisson(mesh);
  auto g = Graph::from_matrix_structure(a);
  auto c = greedy_coloring(g, ColoringOrder::kBfs);
  EXPECT_TRUE(coloring_is_valid(g, c));
  EXPECT_GE(c.num_colors, 3);
  EXPECT_LE(c.num_colors, 8);
}

TEST(Coloring, AllOrdersProduceValidColorings) {
  auto g = Graph::from_matrix_structure(sparse::poisson2d_9pt(6, 7));
  for (auto order : {ColoringOrder::kBfs, ColoringOrder::kNatural,
                     ColoringOrder::kLargestFirst}) {
    auto c = greedy_coloring(g, order);
    EXPECT_TRUE(coloring_is_valid(g, c));
    EXPECT_LE(c.num_colors, g.max_degree() + 1);  // greedy bound
  }
}

TEST(Coloring, GroupsPartitionTheVertices) {
  auto g = Graph::from_matrix_structure(sparse::poisson2d_5pt(5, 5));
  auto c = greedy_coloring(g);
  auto groups = c.groups();
  ASSERT_EQ(static_cast<index_t>(groups.size()), c.num_colors);
  index_t total = 0;
  for (const auto& grp : groups) {
    total += static_cast<index_t>(grp.size());
    for (index_t v : grp) {
      EXPECT_EQ(c.color[static_cast<std::size_t>(v)],
                &grp - groups.data());
    }
  }
  EXPECT_EQ(total, g.num_vertices());
}

TEST(Coloring, DisconnectedGraphHandled) {
  std::vector<std::pair<index_t, index_t>> edges{{0, 1}, {3, 4}};
  auto g = Graph::from_edges(6, edges);
  auto c = greedy_coloring(g, ColoringOrder::kBfs);
  EXPECT_TRUE(coloring_is_valid(g, c));
  EXPECT_EQ(c.num_colors, 2);
}

TEST(ColoringValidation, DetectsConflicts) {
  auto g = Graph::from_edges(2, std::vector<std::pair<index_t, index_t>>{
                                    {0, 1}});
  Coloring bad;
  bad.color = {0, 0};
  bad.num_colors = 1;
  EXPECT_FALSE(coloring_is_valid(g, bad));
  Coloring wrong_size;
  wrong_size.color = {0};
  wrong_size.num_colors = 1;
  EXPECT_FALSE(coloring_is_valid(g, wrong_size));
}

}  // namespace
}  // namespace dsouth::graph
