#include "sparse/stencils.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sparse/dense.hpp"
#include "sparse/scaling.hpp"
#include "util/error.hpp"

namespace dsouth::sparse {
namespace {

TEST(Poisson2D5pt, ClassicalStencilValues) {
  auto a = poisson2d_5pt(3, 3);
  EXPECT_EQ(a.rows(), 9);
  EXPECT_TRUE(a.is_symmetric(0.0));
  // Interior point (1,1) = row 4: diagonal 4, four -1 neighbors.
  EXPECT_DOUBLE_EQ(a.at(4, 4), 4.0);
  EXPECT_DOUBLE_EQ(a.at(4, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(4, 3), -1.0);
  EXPECT_DOUBLE_EQ(a.at(4, 5), -1.0);
  EXPECT_DOUBLE_EQ(a.at(4, 7), -1.0);
  EXPECT_DOUBLE_EQ(a.at(4, 0), 0.0);  // no diagonal coupling in 5-pt
  // Corner row 0: still diagonal 4 (Dirichlet boundary contributions).
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
  EXPECT_EQ(a.row_nnz(0), 3);
}

TEST(Poisson2D5pt, IsSpd) {
  auto a = poisson2d_5pt(5, 4);
  EXPECT_NO_THROW(DenseCholesky{a});
}

TEST(Poisson2D5pt, KnownExtremeEigenvalue) {
  // λ_max = 4 + 2cos(π/(n+1)) + 2cos(π/(n+1)) -> 8 as n grows; for n = 20
  // λ_max = 4 + 4 cos(π/21).
  auto a = poisson2d_5pt(20, 20);
  const double expected = 4.0 + 4.0 * std::cos(M_PI / 21.0);
  EXPECT_NEAR(lambda_max_estimate(a, 300), expected, 1e-3);
}

TEST(Poisson2D9pt, NeighborCount) {
  auto a = poisson2d_9pt(5, 5);
  // Center row has 8 neighbors + diagonal.
  EXPECT_EQ(a.row_nnz(12), 9);
  EXPECT_TRUE(a.is_symmetric(0.0));
  EXPECT_NO_THROW(DenseCholesky{a});
}

TEST(Poisson3D7pt, StructureAndSpd) {
  auto a = poisson3d_7pt(3, 3, 3);
  EXPECT_EQ(a.rows(), 27);
  // Center of the cube: 6 neighbors + diagonal = 7.
  EXPECT_EQ(a.row_nnz(13), 7);
  EXPECT_DOUBLE_EQ(a.at(13, 13), 6.0);
  EXPECT_TRUE(a.is_symmetric(0.0));
  EXPECT_NO_THROW(DenseCholesky{a});
}

TEST(Poisson3D27pt, StructureAndSpd) {
  auto a = poisson3d_27pt(3, 3, 3);
  EXPECT_EQ(a.rows(), 27);
  EXPECT_EQ(a.row_nnz(13), 27);  // 26 neighbors + diagonal
  EXPECT_DOUBLE_EQ(a.at(13, 13), 26.0);
  EXPECT_TRUE(a.is_symmetric(0.0));
  EXPECT_NO_THROW(DenseCholesky{a});
}

TEST(Stencils, RowSumsVanishInTheInterior) {
  // Pure Dirichlet diffusion: interior rows (away from the boundary) have
  // zero row sum; boundary rows have positive row sums.
  auto a = poisson3d_7pt(5, 5, 5);
  const index_t center = 2 * 25 + 2 * 5 + 2;
  value_t sum = 0.0;
  for (value_t v : a.row_vals(center)) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-14);
  value_t corner_sum = 0.0;
  for (value_t v : a.row_vals(0)) corner_sum += v;
  EXPECT_GT(corner_sum, 0.0);
}

TEST(Stencils, AnisotropyWeakensDirectionalCoupling) {
  StencilOptions opt;
  opt.eps_y = 0.1;
  auto a = poisson2d_5pt(3, 3, opt);
  // Horizontal neighbor keeps weight 1, vertical is scaled by eps_y.
  EXPECT_DOUBLE_EQ(a.at(4, 3), -1.0);
  EXPECT_DOUBLE_EQ(a.at(4, 1), -0.1);
  EXPECT_TRUE(a.is_symmetric(1e-15));
  EXPECT_NO_THROW(DenseCholesky{a});
}

TEST(Stencils, JumpCoefficientsUseHarmonicMeans) {
  StencilOptions opt;
  opt.jump_contrast = 100.0;
  opt.jump_block = 2;
  auto a = poisson2d_5pt(4, 4, opt);
  EXPECT_TRUE(a.is_symmetric(1e-12));
  // Edge within the first block (coeff 1 on both sides): weight 1.
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  // Edge crossing blocks (1 vs 100): harmonic mean 2*100/101.
  EXPECT_NEAR(a.at(1, 2), -200.0 / 101.0, 1e-12);
  EXPECT_NO_THROW(DenseCholesky{a});
}

TEST(Stencils, DiagShiftAddsToDiagonal) {
  StencilOptions opt;
  opt.diag_shift = 3.0;
  auto a = poisson2d_5pt(3, 3, opt);
  EXPECT_DOUBLE_EQ(a.at(4, 4), 7.0);
}

TEST(Stencils, InvalidSizesThrow) {
  EXPECT_THROW(poisson2d_5pt(0, 3), util::CheckError);
  EXPECT_THROW(poisson3d_7pt(2, -1, 2), util::CheckError);
}

TEST(RandomSpd, DiagonallyDominantAndSpd) {
  auto a = random_spd(40, 6, 1.1, 99);
  EXPECT_EQ(a.rows(), 40);
  EXPECT_TRUE(a.is_symmetric(0.0));
  for (index_t i = 0; i < a.rows(); ++i) {
    value_t diag = 0.0, off = 0.0;
    auto cols = a.row_cols(i);
    auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == i) {
        diag = vals[k];
      } else {
        off += std::abs(vals[k]);
      }
    }
    EXPECT_GT(diag, off);  // strict dominance -> SPD
  }
  EXPECT_NO_THROW(DenseCholesky{a});
}

TEST(RandomSpd, DeterministicForSeed) {
  auto a = random_spd(30, 4, 1.2, 7);
  auto b = random_spd(30, 4, 1.2, 7);
  ASSERT_EQ(a.nnz(), b.nnz());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j : a.row_cols(i)) EXPECT_DOUBLE_EQ(a.at(i, j), b.at(i, j));
  }
}

TEST(LambdaMax, MatchesDiagonalMatrix) {
  CsrMatrix d(3, 3, {0, 1, 2, 3}, {0, 1, 2}, {1.0, 5.0, 2.0});
  EXPECT_NEAR(lambda_max_estimate(d, 200), 5.0, 1e-8);
}

TEST(Stencils, UnitScaledMMatrixJacobiAlwaysConverges) {
  // Any unit-diagonal SPD matrix with non-positive off-diagonals has
  // λ_max < 2 (see DESIGN.md §5) — point Jacobi converges. Spot-check the
  // diffusion generators.
  for (auto* a : {new CsrMatrix(poisson2d_5pt(12, 12)),
                  new CsrMatrix(poisson3d_27pt(5, 5, 5))}) {
    auto s = symmetric_unit_diagonal_scale(*a);
    EXPECT_LT(lambda_max_estimate(s.a, 200), 2.0);
    delete a;
  }
}

}  // namespace
}  // namespace dsouth::sparse
