#include "graph/partition.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sparse/proxy_suite.hpp"
#include "sparse/stencils.hpp"
#include "util/error.hpp"

namespace dsouth::graph {
namespace {

TEST(Partition, ContiguousBlocksAreBalanced) {
  auto p = partition_contiguous_blocks(10, 3);
  EXPECT_TRUE(p.is_valid(10));
  auto sizes = p.part_sizes();
  ASSERT_EQ(sizes.size(), 3u);
  for (index_t s : sizes) {
    EXPECT_GE(s, 3);
    EXPECT_LE(s, 4);
  }
  // Blocks are contiguous and ordered.
  for (index_t i = 1; i < 10; ++i) {
    EXPECT_GE(p.part[static_cast<std::size_t>(i)],
              p.part[static_cast<std::size_t>(i - 1)]);
  }
}

TEST(Partition, SinglePartAndOnePerVertex) {
  auto g = Graph::from_matrix_structure(sparse::poisson2d_5pt(4, 4));
  auto one = partition_recursive_bisection(g, 1);
  EXPECT_TRUE(one.is_valid(16));
  for (index_t v : one.part) EXPECT_EQ(v, 0);

  auto scalar = partition_recursive_bisection(g, 16);
  EXPECT_TRUE(scalar.is_valid(16));
  auto sizes = scalar.part_sizes();
  for (index_t s : sizes) EXPECT_EQ(s, 1);
}

TEST(Partition, InvalidKThrows) {
  auto g = Graph::from_matrix_structure(sparse::poisson2d_5pt(3, 3));
  EXPECT_THROW(partition_recursive_bisection(g, 0), util::CheckError);
  EXPECT_THROW(partition_recursive_bisection(g, 10), util::CheckError);
}

class BisectionQuality
    : public ::testing::TestWithParam<std::tuple<index_t, index_t>> {};

TEST_P(BisectionQuality, BalancedWithReasonableCut) {
  const auto [dim, k] = GetParam();
  auto a = sparse::poisson2d_5pt(dim, dim);
  auto g = Graph::from_matrix_structure(a);
  auto p = partition_recursive_bisection(g, k);
  ASSERT_TRUE(p.is_valid(g.num_vertices()));
  auto q = evaluate_partition(g, p);
  EXPECT_EQ(q.empty_parts, 0);
  EXPECT_LE(q.imbalance, 1.25);
  // A k-way partition of a dim×dim grid should have cut O(dim·√k); allow a
  // generous constant, but far below the total edge count.
  const double cut_bound = 4.0 * static_cast<double>(dim) *
                           std::sqrt(static_cast<double>(k));
  EXPECT_LE(static_cast<double>(q.edge_cut), cut_bound);
}

INSTANTIATE_TEST_SUITE_P(
    GridSweep, BisectionQuality,
    ::testing::Values(std::make_tuple<index_t, index_t>(16, 2),
                      std::make_tuple<index_t, index_t>(16, 4),
                      std::make_tuple<index_t, index_t>(24, 8),
                      std::make_tuple<index_t, index_t>(32, 16),
                      std::make_tuple<index_t, index_t>(32, 7),
                      std::make_tuple<index_t, index_t>(24, 3)));

TEST(Partition, RefinementImprovesOverGreedyGrowing) {
  auto a = sparse::poisson2d_5pt(24, 24);
  auto g = Graph::from_matrix_structure(a);
  auto refined = partition_recursive_bisection(g, 8);
  auto greedy = partition_greedy_growing(g, 8);
  ASSERT_TRUE(greedy.is_valid(g.num_vertices()));
  auto qr = evaluate_partition(g, refined);
  auto qg = evaluate_partition(g, greedy);
  // Not a strict theorem, but holds comfortably on grids.
  EXPECT_LE(qr.edge_cut, qg.edge_cut + 10);
}

TEST(Partition, WorksOnFemAndJumpMatrices) {
  auto proxy = sparse::make_proxy("msdoorp", 0.02);
  auto g = Graph::from_matrix_structure(proxy.a);
  auto p = partition_recursive_bisection(g, 12);
  auto q = evaluate_partition(g, p);
  EXPECT_EQ(q.empty_parts, 0);
  EXPECT_LE(q.imbalance, 1.3);
}

TEST(Partition, DeterministicForFixedOptions) {
  auto g = Graph::from_matrix_structure(sparse::poisson2d_5pt(16, 16));
  auto p1 = partition_recursive_bisection(g, 8);
  auto p2 = partition_recursive_bisection(g, 8);
  EXPECT_EQ(p1.part, p2.part);
}

TEST(Partition, GreedyGrowingCoversDisconnected) {
  std::vector<std::pair<index_t, index_t>> edges{{0, 1}, {2, 3}, {4, 5}};
  auto g = Graph::from_edges(6, edges);
  auto p = partition_greedy_growing(g, 2);
  EXPECT_TRUE(p.is_valid(6));
  auto q = evaluate_partition(g, p);
  EXPECT_EQ(q.empty_parts, 0);
}

TEST(Partition, EvaluateCountsCutEdges) {
  // Path 0-1-2-3 split in the middle: cut = 1.
  std::vector<std::pair<index_t, index_t>> edges{{0, 1}, {1, 2}, {2, 3}};
  auto g = Graph::from_edges(4, edges);
  Partition p;
  p.num_parts = 2;
  p.part = {0, 0, 1, 1};
  auto q = evaluate_partition(g, p);
  EXPECT_EQ(q.edge_cut, 1);
  EXPECT_DOUBLE_EQ(q.imbalance, 1.0);
}

}  // namespace
}  // namespace dsouth::graph
