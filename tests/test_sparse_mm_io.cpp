#include "sparse/mm_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sparse/stencils.hpp"
#include "util/error.hpp"

namespace dsouth::sparse {
namespace {

TEST(MatrixMarket, ReadGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "2 3 3\n"
      "1 1 1.5\n"
      "2 3 -2\n"
      "1 2 0.25\n");
  auto a = read_matrix_market(in);
  EXPECT_EQ(a.rows(), 2);
  EXPECT_EQ(a.cols(), 3);
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(a.at(1, 2), -2.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 0.25);
}

TEST(MatrixMarket, ReadSymmetricMirrorsEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "2 2 2\n"
      "1 1 2.0\n"
      "2 1 -1.0\n");
  auto a = read_matrix_market(in);
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_TRUE(a.is_symmetric(0.0));
}

TEST(MatrixMarket, ReadPatternGivesOnes) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 2\n");
  auto a = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 1.0);
}

TEST(MatrixMarket, RejectsUnsupportedVariants) {
  std::istringstream complex_field(
      "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n");
  EXPECT_THROW(read_matrix_market(complex_field), util::CheckError);
  std::istringstream array_fmt(
      "%%MatrixMarket matrix array real general\n1 1\n1.0\n");
  EXPECT_THROW(read_matrix_market(array_fmt), util::CheckError);
  std::istringstream bad_banner("%%NotMM matrix coordinate real general\n");
  EXPECT_THROW(read_matrix_market(bad_banner), util::CheckError);
}

TEST(MatrixMarket, TruncatedEntriesThrow) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 3\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), util::CheckError);
}

TEST(MatrixMarket, RoundTripGeneral) {
  auto a = poisson2d_5pt(4, 3);
  std::ostringstream out;
  write_matrix_market(out, a, /*symmetric=*/false);
  std::istringstream in(out.str());
  auto b = read_matrix_market(in);
  ASSERT_EQ(b.rows(), a.rows());
  ASSERT_EQ(b.nnz(), a.nnz());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j : a.row_cols(i)) {
      EXPECT_DOUBLE_EQ(b.at(i, j), a.at(i, j));
    }
  }
}

TEST(MatrixMarket, RoundTripSymmetricHalvesStorage) {
  auto a = poisson2d_5pt(4, 4);
  std::ostringstream out;
  write_matrix_market(out, a, /*symmetric=*/true);
  const std::string text = out.str();
  EXPECT_NE(text.find("symmetric"), std::string::npos);
  std::istringstream in(text);
  auto b = read_matrix_market(in);
  ASSERT_EQ(b.nnz(), a.nnz());
  EXPECT_TRUE(b.is_symmetric(0.0));
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j : a.row_cols(i)) {
      EXPECT_DOUBLE_EQ(b.at(i, j), a.at(i, j));
    }
  }
}

TEST(MatrixMarket, SymmetricWriteOfAsymmetricThrows) {
  CsrMatrix a(2, 2, {0, 1, 1}, {1}, {3.0});
  std::ostringstream out;
  EXPECT_THROW(write_matrix_market(out, a, true), util::CheckError);
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/no/such/file.mtx"),
               util::CheckError);
}

}  // namespace
}  // namespace dsouth::sparse
