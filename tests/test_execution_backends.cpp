#include "simmpi/execution.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dist/driver.hpp"
#include "dist/greedy_schwarz.hpp"
#include "simmpi/rank_context.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "util/rng.hpp"

namespace dsouth::simmpi {
namespace {

// ---------------------------------------------------------------------------
// ExecutionBackend unit tests.
// ---------------------------------------------------------------------------

TEST(SequentialBackend, RunsEveryIndexAscending) {
  SequentialBackend backend;
  EXPECT_STREQ(backend.name(), "sequential");
  EXPECT_EQ(backend.num_threads(), 1);
  std::vector<int> order;
  backend.run_epoch(5, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolBackend, RunsEveryIndexExactlyOnce) {
  ThreadPoolBackend backend(4);
  EXPECT_STREQ(backend.name(), "threads");
  EXPECT_EQ(backend.num_threads(), 4);
  constexpr int kCount = 257;  // more indices than threads, odd size
  std::vector<std::atomic<int>> hits(kCount);
  backend.run_epoch(kCount, [&](int i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolBackend, IsReusableAcrossEpochs) {
  ThreadPoolBackend backend(3);
  for (int epoch = 0; epoch < 20; ++epoch) {
    std::atomic<int> sum{0};
    backend.run_epoch(13, [&](int i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 13 * 12 / 2);
  }
}

TEST(ThreadPoolBackend, ZeroAndEmptyEpochsAreNoops) {
  ThreadPoolBackend backend(2);
  int calls = 0;
  backend.run_epoch(0, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolBackend, PropagatesFirstExceptionAndSurvives) {
  ThreadPoolBackend backend(4);
  EXPECT_THROW(backend.run_epoch(64,
                                 [&](int i) {
                                   if (i == 7) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool must stay usable after an epoch that threw.
  std::atomic<int> ok{0};
  backend.run_epoch(8, [&](int) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPoolBackend, DefaultThreadCountIsPositive) {
  ThreadPoolBackend backend(0);  // 0 = hardware concurrency
  EXPECT_GE(backend.num_threads(), 1);
}

TEST(BackendFactory, ParseAndMake) {
  EXPECT_EQ(parse_backend_kind("sequential"), BackendKind::kSequential);
  EXPECT_EQ(parse_backend_kind("seq"), BackendKind::kSequential);
  EXPECT_EQ(parse_backend_kind("threads"), BackendKind::kThreadPool);
  EXPECT_EQ(parse_backend_kind("threadpool"), BackendKind::kThreadPool);
  EXPECT_EQ(parse_backend_kind("bogus"), std::nullopt);
  EXPECT_STREQ(backend_kind_name(BackendKind::kSequential), "sequential");
  EXPECT_STREQ(backend_kind_name(BackendKind::kThreadPool), "threads");
  auto seq = make_backend(BackendKind::kSequential);
  EXPECT_STREQ(seq->name(), "sequential");
  auto pool = make_backend(BackendKind::kThreadPool, 2);
  EXPECT_STREQ(pool->name(), "threads");
  EXPECT_EQ(pool->num_threads(), 2);
}

// ---------------------------------------------------------------------------
// RankContext: the rank-scoped facade routes to the right Runtime slots.
// ---------------------------------------------------------------------------

TEST(RankContext, ScopesWindowPutAndFlopsToOneRank) {
  Runtime rt(3);
  RankContext c0(rt, 0), c2(rt, 2);
  EXPECT_EQ(c0.rank(), 0);
  EXPECT_EQ(c0.num_ranks(), 3);

  const std::vector<double> payload = {1.0, 2.5};
  c0.put(2, MsgTag::kSolve, payload);
  c0.add_flops(100.0);
  rt.fence();

  EXPECT_TRUE(c0.window().empty());
  ASSERT_EQ(c2.window().size(), 1u);
  EXPECT_EQ(c2.window()[0].source, 0);
  EXPECT_EQ(c2.window()[0].tag, MsgTag::kSolve);
  EXPECT_EQ(c2.window()[0].payload, payload);
  c2.consume();
  EXPECT_TRUE(c2.window().empty());

  EXPECT_EQ(rt.stats().total_messages(), 1u);
  EXPECT_GT(rt.model_time_seconds(), 0.0);
}

// Concurrent puts from distinct ranks land in deterministic (source, send
// order) regardless of real interleaving — the core fence-merge guarantee.
TEST(RankContext, ConcurrentPutsMergeDeterministically) {
  constexpr int kRanks = 8;
  for (int trial = 0; trial < 5; ++trial) {
    Runtime rt(kRanks);
    ThreadPoolBackend backend(4);
    backend.run_epoch(kRanks, [&](int p) {
      if (p == 0) return;  // self-puts are forbidden
      RankContext ctx(rt, p);
      for (int k = 0; k < 3; ++k) {
        const double v[] = {static_cast<double>(p), static_cast<double>(k)};
        ctx.put(0, MsgTag::kOther, v);
      }
    });
    rt.fence();
    auto win = rt.window(0);
    ASSERT_EQ(win.size(), static_cast<std::size_t>((kRanks - 1) * 3));
    for (int p = 1; p < kRanks; ++p) {
      for (int k = 0; k < 3; ++k) {
        const auto& m = win[static_cast<std::size_t>((p - 1) * 3 + k)];
        EXPECT_EQ(m.source, p);
        EXPECT_EQ(m.payload[0], static_cast<double>(p));
        EXPECT_EQ(m.payload[1], static_cast<double>(k));
      }
    }
  }
}

}  // namespace
}  // namespace dsouth::simmpi

// ---------------------------------------------------------------------------
// Bit-identical determinism across backends, end to end: for every solver,
// with and without delivery delays, the threaded backend must reproduce the
// sequential backend's results *exactly* — residual histories, machine-model
// time, per-tag communication cost, relaxation counts, and the final iterate.
// ---------------------------------------------------------------------------

namespace dsouth::dist {
namespace {

struct Problem {
  CsrMatrix a;
  std::vector<value_t> b, x0;
  graph::Partition part;
};

Problem make_problem(index_t nx, index_t k, std::uint64_t seed) {
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(nx, nx)).a;
  p.b.assign(static_cast<std::size_t>(p.a.rows()), 0.0);
  p.x0.resize(p.b.size());
  util::Rng rng(seed);
  rng.fill_uniform(p.x0, -1.0, 1.0);
  sparse::normalize_initial_residual(p.a, p.b, p.x0);
  auto g = graph::Graph::from_matrix_structure(p.a);
  p.part = graph::partition_recursive_bisection(g, k);
  return p;
}

// Exact (bitwise for finite doubles) equality of every recorded series.
void expect_bit_identical(const DistRunResult& seq, const DistRunResult& thr) {
  EXPECT_EQ(seq.residual_norm, thr.residual_norm);
  EXPECT_EQ(seq.model_time, thr.model_time);
  EXPECT_EQ(seq.comm_cost, thr.comm_cost);
  EXPECT_EQ(seq.solve_comm, thr.solve_comm);
  EXPECT_EQ(seq.res_comm, thr.res_comm);
  EXPECT_EQ(seq.relaxations, thr.relaxations);
  EXPECT_EQ(seq.active_ranks, thr.active_ranks);
  EXPECT_EQ(seq.final_x, thr.final_x);
}

class BackendDeterminism
    : public ::testing::TestWithParam<std::tuple<DistMethod, bool, index_t>> {
};

TEST_P(BackendDeterminism, ThreadedMatchesSequentialBitForBit) {
  const auto [method, delays, nranks] = GetParam();
  auto p = make_problem(10, nranks, 17 + static_cast<std::uint64_t>(nranks));

  DistRunOptions opt;
  opt.max_parallel_steps = 12;
  if (delays) {
    opt.delivery.delay_probability = 0.3;
    opt.delivery.max_delay_epochs = 3;
  }

  DistRunOptions seq_opt = opt;
  seq_opt.backend = simmpi::BackendKind::kSequential;
  auto seq = run_distributed(method, p.a, p.part, p.b, p.x0, seq_opt);
  EXPECT_EQ(seq.backend, "sequential");
  EXPECT_EQ(seq.num_threads, 1);

  DistRunOptions thr_opt = opt;
  thr_opt.backend = simmpi::BackendKind::kThreadPool;
  thr_opt.num_threads = 4;
  auto thr = run_distributed(method, p.a, p.part, p.b, p.x0, thr_opt);
  EXPECT_EQ(thr.backend, "threads");
  EXPECT_EQ(thr.num_threads, 4);

  expect_bit_identical(seq, thr);

  // Re-running the threaded backend is itself deterministic.
  auto thr2 = run_distributed(method, p.a, p.part, p.b, p.x0, thr_opt);
  expect_bit_identical(thr, thr2);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethodsDelaysRanks, BackendDeterminism,
    ::testing::Combine(
        ::testing::Values(DistMethod::kBlockJacobi,
                          DistMethod::kParallelSouthwell,
                          DistMethod::kDistributedSouthwell,
                          DistMethod::kMulticolorBlockGs),
        ::testing::Bool(),                 // delivery delays off / on
        ::testing::Values<index_t>(1, 4, 13)),
    [](const auto& info) {
      std::string name = method_name(std::get<0>(info.param));
      name += std::get<1>(info.param) ? "_delays" : "_faithful";
      name += "_P" + std::to_string(std::get<2>(info.param));
      return name;
    });

// The greedy-Schwarz setup phase accepts a backend too and must not depend
// on it.
TEST(BackendDeterminism, GreedySchwarzSetupBackendAgnostic) {
  auto p = make_problem(10, 6, 41);
  DistLayout layout(p.a, p.part);

  GreedySchwarzOptions seq_opt;
  auto seq = run_greedy_schwarz(layout, p.b, p.x0, seq_opt);

  simmpi::ThreadPoolBackend pool(4);
  GreedySchwarzOptions thr_opt;
  thr_opt.backend = &pool;
  auto thr = run_greedy_schwarz(layout, p.b, p.x0, thr_opt);

  EXPECT_EQ(seq.residual_norm, thr.residual_norm);
  EXPECT_EQ(seq.relaxed_rank, thr.relaxed_rank);
  EXPECT_EQ(seq.x, thr.x);
}

}  // namespace
}  // namespace dsouth::dist
