#include "dist/distributed_southwell.hpp"

#include <gtest/gtest.h>

#include "core/dist_southwell_scalar.hpp"
#include "dist/driver.hpp"
#include "sparse/proxy_suite.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace dsouth::dist {
namespace {

struct Problem {
  CsrMatrix a;
  std::vector<value_t> b, x0;
};

Problem scaled_poisson(index_t nx, index_t ny, std::uint64_t seed) {
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(nx, ny)).a;
  p.b.assign(static_cast<std::size_t>(p.a.rows()), 0.0);
  p.x0.resize(p.b.size());
  util::Rng rng(seed);
  rng.fill_uniform(p.x0, -1.0, 1.0);
  sparse::normalize_initial_residual(p.a, p.b, p.x0);
  return p;
}

graph::Partition make_partition(const CsrMatrix& a, index_t k) {
  auto g = graph::Graph::from_matrix_structure(a);
  return graph::partition_recursive_bisection(g, k);
}

graph::Partition singleton_partition(index_t n) {
  graph::Partition p;
  p.num_parts = n;
  p.part.resize(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) p.part[static_cast<std::size_t>(i)] = i;
  return p;
}

TEST(DistributedSouthwellDist, LocalResidualsStayExact) {
  auto p = scaled_poisson(10, 10, 21);
  auto part = make_partition(p.a, 8);
  DistLayout layout(p.a, part);
  simmpi::Runtime rt(8);
  DistributedSouthwell solver(layout, rt, p.b, p.x0);
  for (int k = 0; k < 10; ++k) {
    solver.step();
    auto x = solver.gather_x();
    std::vector<value_t> r(x.size());
    p.a.residual(p.b, x, r);
    EXPECT_NEAR(solver.global_residual_norm(), sparse::norm2(r), 1e-11);
  }
}

TEST(DistributedSouthwellDist, NoDeadlockOverLongRun) {
  auto p = scaled_poisson(12, 12, 22);
  auto part = make_partition(p.a, 9);
  DistLayout layout(p.a, part);
  simmpi::Runtime rt(9);
  DistributedSouthwell solver(layout, rt, p.b, p.x0);
  int zero_streak = 0, max_zero_streak = 0;
  for (int k = 0; k < 100; ++k) {
    if (solver.step().active_ranks == 0) {
      ++zero_streak;
    } else {
      zero_streak = 0;
    }
    max_zero_streak = std::max(max_zero_streak, zero_streak);
  }
  // An idle step can happen while corrections propagate, but the
  // correction mechanism guarantees it cannot persist.
  EXPECT_LE(max_zero_streak, 2);
  EXPECT_LT(solver.global_residual_norm(), 1.0);
}

TEST(DistributedSouthwellDist, ConvergesToLowResidual) {
  auto p = scaled_poisson(10, 10, 23);
  auto part = make_partition(p.a, 6);
  DistRunOptions opt;
  opt.max_parallel_steps = 500;
  opt.stop_at_residual = 1e-5;
  auto result = run_distributed(DistMethod::kDistributedSouthwell, p.a, part,
                                p.b, p.x0, opt);
  EXPECT_LE(result.residual_norm.back(), 1e-5);
}

TEST(DistributedSouthwellDist, LessCommunicationThanParallelSouthwell) {
  // The paper's central claim (Tables 2-3): DS needs a fraction of PS's
  // messages for the same accuracy.
  auto p = scaled_poisson(16, 16, 24);
  auto part = make_partition(p.a, 16);
  DistRunOptions opt;
  opt.max_parallel_steps = 2000;
  opt.stop_at_residual = 0.1;
  auto ps = run_distributed(DistMethod::kParallelSouthwell, p.a, part, p.b,
                            p.x0, opt);
  auto ds = run_distributed(DistMethod::kDistributedSouthwell, p.a, part,
                            p.b, p.x0, opt);
  ASSERT_LE(ps.residual_norm.back(), 0.1);
  ASSERT_LE(ds.residual_norm.back(), 0.1);
  EXPECT_LT(ds.comm_cost.back(), ps.comm_cost.back());
  // And the saving comes from explicit residual updates specifically.
  EXPECT_LT(ds.res_comm.back(), ps.res_comm.back());
}

TEST(DistributedSouthwellDist, CorrectionsOnlyWhenOverestimated) {
  auto p = scaled_poisson(10, 10, 25);
  auto part = make_partition(p.a, 8);
  DistLayout layout(p.a, part);
  simmpi::Runtime rt(8);
  DistributedSouthwell solver(layout, rt, p.b, p.x0);
  for (int k = 0; k < 20; ++k) solver.step();
  // Some corrections fire...
  EXPECT_GT(solver.corrections_sent(), 0u);
  // ...and they match the runtime's explicit-residual tally.
  EXPECT_EQ(solver.corrections_sent(),
            rt.stats().total_messages(simmpi::MsgTag::kResidual));
}

TEST(DistributedSouthwellDist, ScalarPartitionMatchesCoreScalarSolver) {
  // Cross-validation of two independent implementations of Algorithm 3:
  // the block solver on singleton subdomains must follow the same
  // trajectory as the scalar implementation in core/ (unit diagonal makes
  // the norm-based and weight-based criteria identical).
  auto p = scaled_poisson(7, 7, 26);
  const index_t n = p.a.rows();
  auto part = singleton_partition(n);
  DistLayout layout(p.a, part);
  simmpi::Runtime rt(static_cast<int>(n));
  DistributedSouthwell solver(layout, rt, p.b, p.x0);

  core::DistSouthwellScalarOptions copt;
  copt.base.max_sweeps = 1000000;  // no budget; we drive steps manually
  copt.max_parallel_steps = 15;
  auto scalar = core::run_distributed_southwell_scalar(p.a, p.b, p.x0, copt);

  for (std::size_t k = 0; k < scalar.history.step_marks.size(); ++k) {
    auto stats = solver.step();
    EXPECT_EQ(stats.relaxations,
              scalar.relaxed_per_step[k])
        << "step " << k;
    const double block_norm = solver.global_residual_norm();
    const double scalar_norm =
        scalar.history.points[scalar.history.step_marks[k]].residual_norm;
    EXPECT_NEAR(block_norm, scalar_norm, 1e-9) << "step " << k;
  }
}

TEST(DistributedSouthwellDist, AblationLocalEstimatesIsSafe) {
  // Disabling the local ghost-layer estimation leaves Γ at its
  // last-received values. Empirically the effect on this workload is
  // small (see bench/ablation_design_choices for the full sweep); what
  // must hold is that the ablated variant remains deadlock-free and
  // converges, with communication in the same regime.
  auto p = scaled_poisson(14, 14, 27);
  auto part = make_partition(p.a, 12);
  DistRunOptions with;
  with.max_parallel_steps = 200;
  with.stop_at_residual = 0.1;
  DistRunOptions without = with;
  without.ds.enable_local_estimates = false;
  auto r_with = run_distributed(DistMethod::kDistributedSouthwell, p.a, part,
                                p.b, p.x0, with);
  auto r_without = run_distributed(DistMethod::kDistributedSouthwell, p.a,
                                   part, p.b, p.x0, without);
  EXPECT_LE(r_with.residual_norm.back(), 0.1);
  EXPECT_LE(r_without.residual_norm.back(), 0.1);
  EXPECT_LT(r_without.comm_cost.back(), 2.0 * r_with.comm_cost.back());
  EXPECT_GT(r_without.comm_cost.back(), 0.5 * r_with.comm_cost.back());
}

TEST(DistributedSouthwellDist, DeterministicAcrossRuns) {
  auto p = scaled_poisson(8, 8, 28);
  auto part = make_partition(p.a, 5);
  DistRunOptions opt;
  opt.max_parallel_steps = 25;
  auto r1 = run_distributed(DistMethod::kDistributedSouthwell, p.a, part,
                            p.b, p.x0, opt);
  auto r2 = run_distributed(DistMethod::kDistributedSouthwell, p.a, part,
                            p.b, p.x0, opt);
  ASSERT_EQ(r1.residual_norm.size(), r2.residual_norm.size());
  for (std::size_t k = 0; k < r1.residual_norm.size(); ++k) {
    EXPECT_DOUBLE_EQ(r1.residual_norm[k], r2.residual_norm[k]);
  }
}

}  // namespace
}  // namespace dsouth::dist
