#include "dist/driver.hpp"

#include <gtest/gtest.h>

#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "util/rng.hpp"

namespace dsouth::dist {
namespace {

struct Problem {
  CsrMatrix a;
  std::vector<value_t> b, x0;
  graph::Partition part;
};

Problem make_problem(index_t nx, index_t k, std::uint64_t seed) {
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(nx, nx)).a;
  p.b.assign(static_cast<std::size_t>(p.a.rows()), 0.0);
  p.x0.resize(p.b.size());
  util::Rng rng(seed);
  rng.fill_uniform(p.x0, -1.0, 1.0);
  sparse::normalize_initial_residual(p.a, p.b, p.x0);
  auto g = graph::Graph::from_matrix_structure(p.a);
  p.part = graph::partition_recursive_bisection(g, k);
  return p;
}

TEST(Driver, SeriesAreWellFormed) {
  auto p = make_problem(8, 4, 1);
  DistRunOptions opt;
  opt.max_parallel_steps = 10;
  auto r = run_distributed(DistMethod::kDistributedSouthwell, p.a, p.part,
                           p.b, p.x0, opt);
  EXPECT_EQ(r.method, "DistributedSouthwell");
  EXPECT_EQ(r.num_ranks, 4);
  EXPECT_EQ(r.n, 64);
  EXPECT_EQ(r.steps_taken(), 10u);
  ASSERT_EQ(r.residual_norm.size(), 11u);
  ASSERT_EQ(r.model_time.size(), 11u);
  ASSERT_EQ(r.comm_cost.size(), 11u);
  ASSERT_EQ(r.relaxations.size(), 11u);
  EXPECT_NEAR(r.residual_norm[0], 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.model_time[0], 0.0);
  // Cumulative series are non-decreasing.
  for (std::size_t k = 1; k < r.model_time.size(); ++k) {
    EXPECT_GE(r.model_time[k], r.model_time[k - 1]);
    EXPECT_GE(r.comm_cost[k], r.comm_cost[k - 1]);
    EXPECT_GE(r.relaxations[k], r.relaxations[k - 1]);
  }
  // Tag costs decompose the total.
  EXPECT_NEAR(r.comm_cost.back(), r.solve_comm.back() + r.res_comm.back(),
              1e-12);
}

TEST(Driver, StopAtResidualCutsRunShort) {
  auto p = make_problem(8, 4, 2);
  DistRunOptions opt;
  opt.max_parallel_steps = 10000;
  opt.stop_at_residual = 0.1;
  auto r = run_distributed(DistMethod::kBlockJacobi, p.a, p.part, p.b, p.x0,
                           opt);
  EXPECT_LE(r.residual_norm.back(), 0.1);
  EXPECT_LT(r.steps_taken(), 10000u);
}

TEST(Driver, AtTargetInterpolatesBetweenSteps) {
  auto p = make_problem(10, 5, 3);
  DistRunOptions opt;
  opt.max_parallel_steps = 300;
  auto r = run_distributed(DistMethod::kBlockJacobi, p.a, p.part, p.b, p.x0,
                           opt);
  auto at = r.at_target(0.1);
  ASSERT_TRUE(at.has_value());
  EXPECT_GT(at->steps, 0.0);
  EXPECT_LE(at->steps, static_cast<double>(r.steps_taken()));
  EXPECT_GT(at->model_time, 0.0);
  EXPECT_LE(at->model_time, r.model_time.back());
  EXPECT_GT(at->comm_cost, 0.0);
  EXPECT_GT(at->relaxations_per_n, 0.0);
  EXPECT_GT(at->active_fraction, 0.0);
  EXPECT_LE(at->active_fraction, 1.0);
  // BJ relaxes everything every step: relaxations/n == steps, active = 1.
  EXPECT_NEAR(at->relaxations_per_n, at->steps, 1e-9);
  EXPECT_NEAR(at->active_fraction, 1.0, 1e-12);
}

TEST(Driver, AtTargetReturnsNulloptWhenUnreached) {
  auto p = make_problem(8, 4, 4);
  DistRunOptions opt;
  opt.max_parallel_steps = 1;
  auto r = run_distributed(DistMethod::kDistributedSouthwell, p.a, p.part,
                           p.b, p.x0, opt);
  EXPECT_FALSE(r.at_target(1e-9).has_value());
}

TEST(Driver, DivergenceAbortStopsEarly) {
  // Force divergence artificially with an indefinite iteration: use the
  // elasticity-free route — BJ on Poisson converges, so instead abort on a
  // tiny threshold that any step exceeds... use threshold below initial
  // residual to trigger at step 1.
  auto p = make_problem(8, 4, 5);
  DistRunOptions opt;
  opt.max_parallel_steps = 100;
  opt.divergence_abort = 1e-6;  // any recorded norm >= this aborts
  auto r = run_distributed(DistMethod::kBlockJacobi, p.a, p.part, p.b, p.x0,
                           opt);
  EXPECT_EQ(r.steps_taken(), 1u);
}

TEST(Driver, MeanHelpers) {
  auto p = make_problem(8, 4, 6);
  DistRunOptions opt;
  opt.max_parallel_steps = 5;
  auto r = run_distributed(DistMethod::kBlockJacobi, p.a, p.part, p.b, p.x0,
                           opt);
  EXPECT_NEAR(r.mean_step_time() * 5.0, r.model_time.back(), 1e-15);
  EXPECT_NEAR(r.mean_step_comm() * 5.0, r.comm_cost.back(), 1e-15);
  EXPECT_DOUBLE_EQ(r.mean_active_fraction(), 1.0);
}

TEST(Driver, MethodNames) {
  EXPECT_STREQ(method_name(DistMethod::kBlockJacobi), "BlockJacobi");
  EXPECT_STREQ(method_abbrev(DistMethod::kBlockJacobi), "BJ");
  EXPECT_STREQ(method_abbrev(DistMethod::kParallelSouthwell), "PS");
  EXPECT_STREQ(method_abbrev(DistMethod::kDistributedSouthwell), "DS");
}

TEST(Driver, MachineModelScalesModelTime) {
  auto p = make_problem(8, 4, 7);
  DistRunOptions slow;
  slow.max_parallel_steps = 5;
  slow.machine.alpha = 1.0;
  DistRunOptions fast = slow;
  fast.machine.alpha = 1e-9;
  auto r_slow = run_distributed(DistMethod::kBlockJacobi, p.a, p.part, p.b,
                                p.x0, slow);
  auto r_fast = run_distributed(DistMethod::kBlockJacobi, p.a, p.part, p.b,
                                p.x0, fast);
  EXPECT_GT(r_slow.model_time.back(), r_fast.model_time.back());
}

}  // namespace
}  // namespace dsouth::dist
