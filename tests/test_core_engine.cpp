#include "core/scalar_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsouth::core {
namespace {

CsrMatrix tridiag() {
  // [ 2 -1  0; -1  2 -1; 0 -1  2 ]
  return CsrMatrix(3, 3, {0, 2, 5, 7}, {0, 1, 0, 1, 2, 1, 2},
                   {2, -1, -1, 2, -1, -1, 2});
}

TEST(ScalarEngine, InitialResidualMatchesDefinition) {
  auto a = tridiag();
  std::vector<value_t> b{1.0, 2.0, 3.0}, x0{0.0, 0.0, 0.0};
  ScalarRelaxationEngine eng(a, b, x0);
  EXPECT_DOUBLE_EQ(eng.residual(0), 1.0);
  EXPECT_DOUBLE_EQ(eng.residual(1), 2.0);
  EXPECT_DOUBLE_EQ(eng.residual(2), 3.0);
  EXPECT_NEAR(eng.residual_norm(), std::sqrt(14.0), 1e-14);
}

TEST(ScalarEngine, RelaxRowZeroesItsResidualAndUpdatesNeighbors) {
  auto a = tridiag();
  std::vector<value_t> b{1.0, 2.0, 3.0}, x0{0.0, 0.0, 0.0};
  ScalarRelaxationEngine eng(a, b, x0);
  const value_t delta = eng.relax_row(1);
  EXPECT_DOUBLE_EQ(delta, 1.0);  // r1/a11 = 2/2
  EXPECT_DOUBLE_EQ(eng.residual(1), 0.0);
  EXPECT_DOUBLE_EQ(eng.residual(0), 2.0);  // 1 - (-1)*1
  EXPECT_DOUBLE_EQ(eng.residual(2), 4.0);
  EXPECT_DOUBLE_EQ(eng.x()[1], 1.0);
  EXPECT_EQ(eng.relaxation_count(), 1);
}

TEST(ScalarEngine, IncrementalNormTracksExactNorm) {
  auto a = sparse::poisson2d_5pt(6, 6);
  util::Rng rng(4);
  std::vector<value_t> b(36), x0(36, 0.0);
  rng.fill_uniform(b, -1.0, 1.0);
  ScalarRelaxationEngine eng(a, b, x0);
  for (int k = 0; k < 200; ++k) {
    eng.relax_row(k % 36);
    const double inc = eng.residual_norm();
    // Exact recompute must agree with the incremental value.
    std::vector<value_t> r(36);
    a.residual(b, eng.x(), r);
    EXPECT_NEAR(inc, sparse::norm2(r), 1e-10);
  }
}

TEST(ScalarEngine, DampedRelaxationScalesDelta) {
  auto a = tridiag();
  std::vector<value_t> b{2.0, 0.0, 0.0}, x0{0.0, 0.0, 0.0};
  ScalarRelaxationEngine eng(a, b, x0);
  const value_t delta = eng.relax_row(0, 0.5);
  EXPECT_DOUBLE_EQ(delta, 0.5);
  EXPECT_DOUBLE_EQ(eng.residual(0), 1.0);  // 2 - 2*0.5, not pinned to zero
}

TEST(ScalarEngine, SimultaneousRelaxationUsesPreStepResiduals) {
  auto a = tridiag();
  std::vector<value_t> b{2.0, 2.0, 2.0}, x0{0.0, 0.0, 0.0};
  ScalarRelaxationEngine eng(a, b, x0);
  std::vector<index_t> rows{0, 1, 2};
  eng.relax_simultaneously(rows);
  // Jacobi step: x = D^{-1} b = (1, 1, 1); r = b - A x = (1, 2, 1)... wait:
  // A x = (2-1, -1+2-1, -1+2) = (1, 0, 1); r = (1, 2, 1).
  EXPECT_DOUBLE_EQ(eng.x()[0], 1.0);
  EXPECT_DOUBLE_EQ(eng.x()[1], 1.0);
  EXPECT_DOUBLE_EQ(eng.x()[2], 1.0);
  EXPECT_NEAR(eng.residual(0), 1.0, 1e-15);
  EXPECT_NEAR(eng.residual(1), 2.0, 1e-15);
  EXPECT_NEAR(eng.residual(2), 1.0, 1e-15);
  EXPECT_EQ(eng.relaxation_count(), 3);
}

TEST(ScalarEngine, SouthwellWeightIsScaledResidual) {
  auto a = tridiag();
  std::vector<value_t> b{-3.0, 1.0, 0.0}, x0{0.0, 0.0, 0.0};
  ScalarRelaxationEngine eng(a, b, x0);
  EXPECT_DOUBLE_EQ(eng.southwell_weight(0), 1.5);
  EXPECT_DOUBLE_EQ(eng.southwell_weight(1), 0.5);
  EXPECT_DOUBLE_EQ(eng.southwell_weight(2), 0.0);
}

TEST(ScalarEngine, RequiresSymmetricMatrix) {
  CsrMatrix asym(2, 2, {0, 2, 3}, {0, 1, 1}, {1.0, 0.5, 1.0});
  std::vector<value_t> b{0.0, 0.0}, x0{0.0, 0.0};
  EXPECT_THROW(ScalarRelaxationEngine(asym, b, x0), util::CheckError);
}

TEST(ScalarEngine, RejectsZeroDiagonal) {
  CsrMatrix a(2, 2, {0, 1, 2}, {1, 0}, {1.0, 1.0});
  std::vector<value_t> b{0.0, 0.0}, x0{0.0, 0.0};
  EXPECT_THROW(ScalarRelaxationEngine(a, b, x0), util::CheckError);
}

TEST(ScalarEngine, GaussSeidelSweepSolvesEventually) {
  auto a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(5, 5)).a;
  util::Rng rng(8);
  std::vector<value_t> b(25), x0(25, 0.0);
  rng.fill_uniform(b, -1.0, 1.0);
  ScalarRelaxationEngine eng(a, b, x0);
  const double r0 = eng.residual_norm();
  for (int sweep = 0; sweep < 200; ++sweep) {
    for (index_t i = 0; i < 25; ++i) eng.relax_row(i);
  }
  EXPECT_LT(eng.residual_norm_exact(), 1e-10 * r0);
}

}  // namespace
}  // namespace dsouth::core
