/// Tests for the related-work baselines (paper §5) and the communication
/// extensions layered on Distributed Southwell.

#include <gtest/gtest.h>

#include "core/adaptive_relaxation.hpp"
#include "core/classic.hpp"
#include "dist/driver.hpp"
#include "graph/partition.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsouth {
namespace {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

struct Problem {
  CsrMatrix a;
  std::vector<value_t> b, x0;
};

Problem scaled_poisson(index_t nx, index_t ny, std::uint64_t seed,
                       bool random_b) {
  Problem p;
  p.a = sparse::symmetric_unit_diagonal_scale(sparse::poisson2d_5pt(nx, ny)).a;
  p.b.assign(static_cast<std::size_t>(p.a.rows()), 0.0);
  p.x0.assign(p.b.size(), 0.0);
  util::Rng rng(seed);
  if (random_b) {
    rng.fill_uniform(p.b, -1.0, 1.0);
    sparse::scale(1.0 / sparse::norm2(p.b), p.b);
  } else {
    rng.fill_uniform(p.x0, -1.0, 1.0);
    sparse::normalize_initial_residual(p.a, p.b, p.x0);
  }
  return p;
}

// ---------------------------------------------------------------- §5 [14]

TEST(SequentialAdaptive, DrainsActiveSetAndConverges) {
  auto p = scaled_poisson(8, 8, 1, true);
  core::SequentialAdaptiveOptions opt;
  opt.base.max_sweeps = 500;
  opt.significance = 1e-8;
  auto h = core::run_sequential_adaptive_relaxation(p.a, p.b, p.x0, opt);
  // With a tiny significance threshold the method keeps relaxing until
  // every queued update is negligible — i.e. it nearly solves the system.
  EXPECT_LT(h.final_residual_norm(), 1e-5);
}

TEST(SequentialAdaptive, LargeSignificanceStopsEarly) {
  auto p = scaled_poisson(8, 8, 2, true);
  core::SequentialAdaptiveOptions loose;
  loose.base.max_sweeps = 500;
  loose.significance = 1e-1;
  core::SequentialAdaptiveOptions tight = loose;
  tight.significance = 1e-6;
  auto h_loose =
      core::run_sequential_adaptive_relaxation(p.a, p.b, p.x0, loose);
  auto h_tight =
      core::run_sequential_adaptive_relaxation(p.a, p.b, p.x0, tight);
  EXPECT_LT(h_loose.total_relaxations(), h_tight.total_relaxations());
  EXPECT_GT(h_loose.final_residual_norm(), h_tight.final_residual_norm());
}

TEST(SequentialAdaptive, InitialActiveSubsetIsRespected) {
  auto p = scaled_poisson(6, 6, 3, true);
  core::SequentialAdaptiveOptions opt;
  opt.base.max_sweeps = 1;
  opt.initial_active = 5;
  opt.significance = 1e300;  // discard everything: only the set drains
  auto h = core::run_sequential_adaptive_relaxation(p.a, p.b, p.x0, opt);
  EXPECT_EQ(h.total_relaxations(), 0);
}

TEST(SimultaneousAdaptive, ThresholdSelectsLargeResiduals) {
  auto p = scaled_poisson(8, 8, 4, true);
  core::SimultaneousAdaptiveOptions opt;
  opt.base.max_sweeps = 100;
  opt.base.target_residual = 1e-5;
  opt.threshold_fraction = 0.5;
  auto h = core::run_simultaneous_adaptive_relaxation(p.a, p.b, p.x0, opt);
  EXPECT_LE(h.final_residual_norm(), 1e-5);
  // Parallel steps relax several rows at once but rarely all of them.
  EXPECT_GT(h.num_parallel_steps(), 0u);
  EXPECT_LT(static_cast<index_t>(h.num_parallel_steps()),
            h.total_relaxations());
}

TEST(SimultaneousAdaptive, FractionOneIsGaussSouthwellLike) {
  // threshold_fraction = 1 relaxes only rows tied with the max — close to
  // (parallel) Southwell; just verify it converges and selects few rows.
  auto p = scaled_poisson(7, 7, 5, true);
  core::SimultaneousAdaptiveOptions opt;
  opt.base.max_sweeps = 200;
  opt.base.target_residual = 1e-3;
  opt.threshold_fraction = 1.0;
  auto h = core::run_simultaneous_adaptive_relaxation(p.a, p.b, p.x0, opt);
  EXPECT_LE(h.final_residual_norm(), 1e-3);
}

TEST(SimultaneousAdaptive, InvalidFractionThrows) {
  auto p = scaled_poisson(4, 4, 6, true);
  core::SimultaneousAdaptiveOptions opt;
  opt.threshold_fraction = 0.0;
  EXPECT_THROW(
      core::run_simultaneous_adaptive_relaxation(p.a, p.b, p.x0, opt),
      util::CheckError);
}

// ------------------------------------------------- DS send-threshold ext.

TEST(SendThreshold, ZeroThresholdIsAlgorithmThreeExactly) {
  auto p = scaled_poisson(10, 10, 7, false);
  auto g = graph::Graph::from_matrix_structure(p.a);
  auto part = graph::partition_recursive_bisection(g, 9);
  dist::DistRunOptions plain;
  plain.max_parallel_steps = 20;
  dist::DistRunOptions zero = plain;
  zero.ds.send_threshold = 0.0;
  auto a = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                 p.a, part, p.b, p.x0, plain);
  auto b = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                 p.a, part, p.b, p.x0, zero);
  for (std::size_t k = 0; k < a.residual_norm.size(); ++k) {
    EXPECT_DOUBLE_EQ(a.residual_norm[k], b.residual_norm[k]);
  }
  EXPECT_DOUBLE_EQ(a.comm_cost.back(), b.comm_cost.back());
}

TEST(SendThreshold, LargeThresholdCutsSolveTraffic) {
  auto p = scaled_poisson(16, 16, 8, false);
  auto g = graph::Graph::from_matrix_structure(p.a);
  auto part = graph::partition_recursive_bisection(g, 32);
  dist::DistRunOptions plain;
  plain.max_parallel_steps = 30;
  dist::DistRunOptions deferred = plain;
  deferred.ds.send_threshold = 3.0;
  auto a = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                 p.a, part, p.b, p.x0, plain);
  auto b = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                 p.a, part, p.b, p.x0, deferred);
  EXPECT_LT(b.solve_comm.back(), a.solve_comm.back());
  // And it still makes real progress on the TRUE residual.
  std::vector<value_t> r(p.b.size());
  p.a.residual(p.b, b.final_x, r);
  EXPECT_LT(sparse::norm2(r), 0.5);
}

TEST(SendThreshold, TrueResidualMatchesKnownAtFlushConvergence) {
  // Without deferral the concatenated local residuals equal the true
  // residual of the gathered iterate at every step.
  auto p = scaled_poisson(12, 12, 9, false);
  auto g = graph::Graph::from_matrix_structure(p.a);
  auto part = graph::partition_recursive_bisection(g, 16);
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 15;
  auto run = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                   p.a, part, p.b, p.x0, opt);
  std::vector<value_t> r(p.b.size());
  p.a.residual(p.b, run.final_x, r);
  EXPECT_NEAR(sparse::norm2(r), run.residual_norm.back(), 1e-10);
}

}  // namespace
}  // namespace dsouth
