#include "util/interp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace dsouth::util {
namespace {

TEST(FirstCrossing, AlreadyBelowAtStart) {
  EXPECT_DOUBLE_EQ(*first_crossing_log10({0.05, 0.01}, 0.1), 0.0);
}

TEST(FirstCrossing, NeverReached) {
  EXPECT_FALSE(first_crossing_log10({1.0, 0.9, 0.8}, 0.1).has_value());
  EXPECT_FALSE(first_crossing_log10({}, 0.1).has_value());
}

TEST(FirstCrossing, ExactHitAtSample) {
  auto s = first_crossing_log10({1.0, 0.1}, 0.1);
  ASSERT_TRUE(s.has_value());
  EXPECT_NEAR(*s, 1.0, 1e-12);
}

TEST(FirstCrossing, LogLinearInterpolation) {
  // From 1.0 to 0.01 in one step: target 0.1 is the log-midpoint.
  auto s = first_crossing_log10({1.0, 0.01}, 0.1);
  ASSERT_TRUE(s.has_value());
  EXPECT_NEAR(*s, 0.5, 1e-12);
}

TEST(FirstCrossing, FirstDownwardCrossingWinsOnNonMonotone) {
  // Dips below at step 2, rises, dips again later: report the first.
  auto s = first_crossing_log10({1.0, 0.5, 0.05, 0.7, 0.01}, 0.1);
  ASSERT_TRUE(s.has_value());
  EXPECT_GT(*s, 1.0);
  EXPECT_LT(*s, 2.0);
}

TEST(FirstCrossing, ZeroResidualLandsOnRightEndpoint) {
  auto s = first_crossing_log10({1.0, 0.0}, 0.1);
  ASSERT_TRUE(s.has_value());
  EXPECT_DOUBLE_EQ(*s, 1.0);
}

TEST(FirstCrossing, NonPositiveTargetThrows) {
  EXPECT_THROW(first_crossing_log10({1.0}, 0.0), CheckError);
}

TEST(InterpolateSeries, EndpointsAndMidpoints) {
  std::vector<double> s{0.0, 10.0, 30.0};
  EXPECT_DOUBLE_EQ(interpolate_series(s, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(interpolate_series(s, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(interpolate_series(s, 2.0), 30.0);
  EXPECT_DOUBLE_EQ(interpolate_series(s, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interpolate_series(s, 1.25), 15.0);
}

TEST(InterpolateSeries, SingleElement) {
  EXPECT_DOUBLE_EQ(interpolate_series({7.0}, 0.0), 7.0);
}

TEST(InterpolateSeries, OutOfRangeThrows) {
  std::vector<double> s{0.0, 1.0};
  EXPECT_THROW(interpolate_series(s, -0.1), CheckError);
  EXPECT_THROW(interpolate_series(s, 1.5), CheckError);
  EXPECT_THROW(interpolate_series({}, 0.0), CheckError);
}

TEST(Integration, CrossingThenInterpolateRecoversConsistentCost) {
  // Residuals decay geometrically; cost grows linearly. The interpolated
  // cost at the crossing must lie between the bracketing samples.
  std::vector<double> residuals, cost;
  double r = 1.0;
  for (int k = 0; k <= 20; ++k) {
    residuals.push_back(r);
    cost.push_back(3.0 * k);
    r *= 0.7;
  }
  auto s = first_crossing_log10(residuals, 0.1);
  ASSERT_TRUE(s.has_value());
  // 0.7^k = 0.1 -> k = log(0.1)/log(0.7) ≈ 6.456
  EXPECT_NEAR(*s, std::log(0.1) / std::log(0.7), 1e-9);
  const double c = interpolate_series(cost, *s);
  EXPECT_NEAR(c, 3.0 * (*s), 1e-9);
}

}  // namespace
}  // namespace dsouth::util
