#include "util/ascii_plot.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace dsouth::util {
namespace {

std::string render(const std::vector<PlotSeries>& series,
                   PlotOptions opt = {}) {
  std::ostringstream os;
  render_plot(os, series, opt);
  return os.str();
}

TEST(AsciiPlot, CornersLandAtExpectedRasterCells) {
  PlotSeries s{"a", {0.0, 1.0}, {0.0, 1.0}};
  PlotOptions opt;
  opt.width = 10;
  opt.height = 5;
  opt.log_y = false;
  const std::string out = render({s}, opt);
  std::istringstream in(out);
  std::vector<std::string> lines;
  std::string l;
  while (std::getline(in, l)) lines.push_back(l);
  // First raster row holds the max-y point at the right edge; the last
  // raster row (index height-1) holds the min-y point at the left edge.
  EXPECT_NE(lines[0].find('*'), std::string::npos);
  EXPECT_NE(lines[4].find('*'), std::string::npos);
  EXPECT_LT(lines[4].find('*'), lines[0].find('*'));
}

TEST(AsciiPlot, LegendNamesAllSeries) {
  PlotSeries a{"alpha", {1.0, 2.0}, {1.0, 2.0}};
  PlotSeries b{"beta", {1.0, 2.0}, {2.0, 1.0}};
  const std::string out = render({a, b});
  EXPECT_NE(out.find("*=alpha"), std::string::npos);
  EXPECT_NE(out.find("o=beta"), std::string::npos);
}

TEST(AsciiPlot, LogAxisLabelsPowersOfTen) {
  PlotSeries s{"r", {0.0, 1.0, 2.0}, {1.0, 0.1, 0.01}};
  PlotOptions opt;
  opt.log_y = true;
  const std::string out = render({s}, opt);
  EXPECT_NE(out.find("1"), std::string::npos);    // top label 1
  EXPECT_NE(out.find("0.01"), std::string::npos);  // bottom label
}

TEST(AsciiPlot, SkipsNonPositiveOnLogAxis) {
  PlotSeries s{"r", {0.0, 1.0, 2.0}, {1.0, 0.0, 0.5}};
  EXPECT_NO_THROW(render({s}));  // the zero sample is skipped, not fatal
}

TEST(AsciiPlot, AllNonPositiveThrows) {
  PlotSeries s{"r", {1.0}, {0.0}};
  EXPECT_THROW(render({s}), CheckError);
}

TEST(AsciiPlot, MismatchedSizesThrow) {
  PlotSeries s{"r", {1.0, 2.0}, {1.0}};
  EXPECT_THROW(render({s}), CheckError);
}

TEST(AsciiPlot, TinyDimensionsRejected) {
  PlotSeries s{"r", {1.0}, {1.0}};
  PlotOptions opt;
  opt.width = 2;
  EXPECT_THROW(render({s}, opt), CheckError);
}

TEST(AsciiPlot, ConstantSeriesRendered) {
  PlotSeries s{"flat", {0.0, 1.0, 2.0}, {3.0, 3.0, 3.0}};
  PlotOptions opt;
  opt.log_y = false;
  EXPECT_NO_THROW(render({s}, opt));
}

TEST(AsciiPlot, InterpolatedTraceConnectsDistantPoints) {
  // Two points at opposite raster corners: intermediate columns get '.'.
  PlotSeries s{"line", {0.0, 100.0}, {1.0, 1000.0}};
  PlotOptions opt;
  opt.width = 40;
  opt.height = 10;
  const std::string out = render({s}, opt);
  EXPECT_NE(out.find('.'), std::string::npos);
}

}  // namespace
}  // namespace dsouth::util
