#include "util/ascii_plot.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.hpp"

namespace dsouth::util {
namespace {

std::string render(const std::vector<PlotSeries>& series,
                   PlotOptions opt = {}) {
  std::ostringstream os;
  render_plot(os, series, opt);
  return os.str();
}

TEST(AsciiPlot, CornersLandAtExpectedRasterCells) {
  PlotSeries s{"a", {0.0, 1.0}, {0.0, 1.0}};
  PlotOptions opt;
  opt.width = 10;
  opt.height = 5;
  opt.log_y = false;
  const std::string out = render({s}, opt);
  std::istringstream in(out);
  std::vector<std::string> lines;
  std::string l;
  while (std::getline(in, l)) lines.push_back(l);
  // First raster row holds the max-y point at the right edge; the last
  // raster row (index height-1) holds the min-y point at the left edge.
  EXPECT_NE(lines[0].find('*'), std::string::npos);
  EXPECT_NE(lines[4].find('*'), std::string::npos);
  EXPECT_LT(lines[4].find('*'), lines[0].find('*'));
}

TEST(AsciiPlot, LegendNamesAllSeries) {
  PlotSeries a{"alpha", {1.0, 2.0}, {1.0, 2.0}};
  PlotSeries b{"beta", {1.0, 2.0}, {2.0, 1.0}};
  const std::string out = render({a, b});
  EXPECT_NE(out.find("*=alpha"), std::string::npos);
  EXPECT_NE(out.find("o=beta"), std::string::npos);
}

TEST(AsciiPlot, LogAxisLabelsPowersOfTen) {
  PlotSeries s{"r", {0.0, 1.0, 2.0}, {1.0, 0.1, 0.01}};
  PlotOptions opt;
  opt.log_y = true;
  const std::string out = render({s}, opt);
  EXPECT_NE(out.find("1"), std::string::npos);    // top label 1
  EXPECT_NE(out.find("0.01"), std::string::npos);  // bottom label
}

TEST(AsciiPlot, SkipsNonPositiveOnLogAxis) {
  PlotSeries s{"r", {0.0, 1.0, 2.0}, {1.0, 0.0, 0.5}};
  EXPECT_NO_THROW(render({s}));  // the zero sample is skipped, not fatal
}

TEST(AsciiPlot, AllNonPositiveThrows) {
  PlotSeries s{"r", {1.0}, {0.0}};
  EXPECT_THROW(render({s}), CheckError);
}

TEST(AsciiPlot, MismatchedSizesThrow) {
  PlotSeries s{"r", {1.0, 2.0}, {1.0}};
  EXPECT_THROW(render({s}), CheckError);
}

TEST(AsciiPlot, TinyDimensionsRejected) {
  PlotSeries s{"r", {1.0}, {1.0}};
  PlotOptions opt;
  opt.width = 2;
  EXPECT_THROW(render({s}, opt), CheckError);
}

TEST(AsciiPlot, ConstantSeriesRendered) {
  PlotSeries s{"flat", {0.0, 1.0, 2.0}, {3.0, 3.0, 3.0}};
  PlotOptions opt;
  opt.log_y = false;
  EXPECT_NO_THROW(render({s}, opt));
}

TEST(AsciiPlot, InterpolatedTraceConnectsDistantPoints) {
  // Two points at opposite raster corners: intermediate columns get '.'.
  PlotSeries s{"line", {0.0, 100.0}, {1.0, 1000.0}};
  PlotOptions opt;
  opt.width = 40;
  opt.height = 10;
  const std::string out = render({s}, opt);
  EXPECT_NE(out.find('.'), std::string::npos);
}

// ---------------------------------------------------------------------------
// log_ticks: decade tick placement for the log y-axis
// ---------------------------------------------------------------------------

TEST(LogTicks, EveryDecadeWhenTheyFit) {
  EXPECT_EQ(log_ticks(1e-3, 1.0, 10),
            (std::vector<double>{1.0, 1e-1, 1e-2, 1e-3}));
}

TEST(LogTicks, DescendingFromLargestDecade) {
  const auto t = log_ticks(0.5, 500.0, 10);
  EXPECT_EQ(t, (std::vector<double>{100.0, 10.0, 1.0}));
}

TEST(LogTicks, ThinnedToIntegerDecadeStride) {
  // 13 decades, at most 4 ticks -> stride 4: 1e6, 1e2, 1e-2, 1e-6.
  EXPECT_EQ(log_ticks(1e-6, 1e6, 4),
            (std::vector<double>{1e6, 1e2, 1e-2, 1e-6}));
}

TEST(LogTicks, TicksAreExactPowersOfTenInsideRange) {
  const auto t = log_ticks(3.7e-5, 8.1e3, 6);
  ASSERT_FALSE(t.empty());
  for (double v : t) {
    EXPECT_GE(v, 3.7e-5);
    EXPECT_LE(v, 8.1e3);
    const double d = std::log10(v);
    EXPECT_NEAR(d, std::round(d), 1e-9) << v;
  }
  for (std::size_t i = 1; i < t.size(); ++i) EXPECT_LT(t[i], t[i - 1]);
}

TEST(LogTicks, BoundsThatArePowersOfTenAreIncluded) {
  // An epsilon-free implementation loses the endpoint decades to rounding.
  const auto t = log_ticks(0.01, 100.0, 10);
  EXPECT_EQ(t.front(), 100.0);
  EXPECT_EQ(t.back(), 0.01);
}

TEST(LogTicks, EmptyWhenNoDecadeInsideRange) {
  EXPECT_TRUE(log_ticks(2.0, 5.0, 10).empty());
}

TEST(LogTicks, SingleDecadeRange) {
  EXPECT_EQ(log_ticks(1.0, 1.0, 10), (std::vector<double>{1.0}));
}

TEST(LogTicks, ZeroAndNegativeBoundsThrow) {
  EXPECT_THROW(log_ticks(0.0, 1.0, 5), CheckError);
  EXPECT_THROW(log_ticks(-1.0, 1.0, 5), CheckError);
  EXPECT_THROW(log_ticks(1.0, -1.0, 5), CheckError);
}

TEST(LogTicks, NonFiniteBoundsAndBadTickBudgetThrow) {
  EXPECT_THROW(log_ticks(1.0, std::numeric_limits<double>::infinity(), 5),
               CheckError);
  EXPECT_THROW(log_ticks(std::numeric_limits<double>::quiet_NaN(), 1.0, 5),
               CheckError);
  EXPECT_THROW(log_ticks(1.0, 10.0, 0), CheckError);  // no room for ticks
}

TEST(LogTicks, InvertedBoundsAreSwapped) {
  EXPECT_EQ(log_ticks(100.0, 1.0, 10), log_ticks(1.0, 100.0, 10));
}

TEST(LogTicks, InteriorDecadesAppearAsAxisLabels) {
  // A 4-decade span tall enough for interior labels: 0.1 and 0.01 must
  // show up on the axis (not only the corner labels 1 and 0.001).
  PlotSeries s{"r", {0.0, 1.0, 2.0, 3.0}, {1.0, 0.1, 0.01, 0.001}};
  PlotOptions opt;
  opt.height = 16;
  const std::string out = render({s}, opt);
  EXPECT_NE(out.find("0.1"), std::string::npos);
  EXPECT_NE(out.find("0.01"), std::string::npos);
}

}  // namespace
}  // namespace dsouth::util
