/// Related-work bench (paper §5): the Southwell-family variants the paper
/// discusses, run on the small FEM problem of Figures 2/5 so the numbers
/// sit on the same axis:
///   - Rüde's sequential adaptive relaxation (active set + significance)
///   - Rüde's simultaneous adaptive relaxation (threshold θ)
///   - greedy multiplicative Schwarz (Ref. [10]) at block level, compared
///     against Block Jacobi's all-blocks-per-step policy.
/// Plus Sequential Southwell and scalar Distributed Southwell as anchors.

#include <iostream>

#include "core/adaptive_relaxation.hpp"
#include "core/classic.hpp"
#include "core/dist_southwell_scalar.hpp"
#include "core/southwell.hpp"
#include "dist/greedy_schwarz.hpp"
#include "sparse/proxy_suite.hpp"
#include "sparse/vec.hpp"
#include "support/bench_support.hpp"
#include "util/rng.hpp"

namespace dsouth::bench {
namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto sweeps = static_cast<index_t>(args.get_int_or("sweeps", 3));

  auto fem = sparse::make_small_fem_problem();
  const index_t n = fem.a.rows();
  print_header("Related work — the paper's §5 method family",
               "context for §5 (no direct paper artifact)",
               "small FEM problem (n=" + std::to_string(n) +
                   "), same setup as Figures 2/5");

  std::vector<value_t> b(static_cast<std::size_t>(n));
  util::Rng rng(0xF162ULL);  // identical RHS to the Figure 2/5 benches
  rng.fill_uniform(b, -1.0, 1.0);
  sparse::scale(1.0 / sparse::norm2(b), b);
  std::vector<value_t> x0(b.size(), 0.0);

  core::ScalarRunOptions sopt;
  sopt.max_sweeps = sweeps;
  auto sw = core::run_sequential_southwell(fem.a, b, x0, sopt);
  core::DistSouthwellScalarOptions dopt;
  dopt.base.max_sweeps = sweeps;
  auto ds = core::run_distributed_southwell_scalar(fem.a, b, x0, dopt);

  core::SequentialAdaptiveOptions aopt;
  aopt.base.max_sweeps = sweeps;
  aopt.significance = 1e-3;
  auto seq_adapt =
      core::run_sequential_adaptive_relaxation(fem.a, b, x0, aopt);

  util::Table table({"Method", "to 0.8", "to 0.6", "to 0.4",
                     "relaxations", "parallel steps"});
  auto row = [&](const char* name, const core::ConvergenceHistory& h) {
    table.row().cell(name);
    for (double target : {0.8, 0.6, 0.4}) {
      table.cell(value_or_dagger(h.relaxations_to_reach(target), 0));
    }
    table.cell(static_cast<std::size_t>(h.total_relaxations()));
    table.cell(h.step_marks.empty()
                   ? std::string("(sequential)")
                   : std::to_string(h.num_parallel_steps()));
  };
  row("Sequential Southwell", sw);
  row("Dist SW (scalar)", ds.history);
  row("Seq. adaptive (Ruede)", seq_adapt);
  for (double frac : {0.25, 0.5, 0.75}) {
    core::SimultaneousAdaptiveOptions mopt;
    mopt.base.max_sweeps = sweeps;
    mopt.threshold_fraction = frac;
    auto h = core::run_simultaneous_adaptive_relaxation(fem.a, b, x0, mopt);
    std::string label =
        "Sim. adaptive theta=" + util::format_double(frac, 2);
    table.row().cell(label);
    for (double target : {0.8, 0.6, 0.4}) {
      table.cell(value_or_dagger(h.relaxations_to_reach(target), 0));
    }
    table.cell(static_cast<std::size_t>(h.total_relaxations()));
    table.cell(std::to_string(h.num_parallel_steps()));
  }
  table.print(std::cout);

  // Block level: greedy multiplicative Schwarz vs Block Jacobi, on the
  // same problem partitioned into subdomains.
  const auto procs = static_cast<index_t>(args.get_int_or("procs", 64));
  std::cout << "\nBlock level (P=" << procs
            << " subdomains, block relaxations to reach ||r||=0.1):\n";
  auto part = partition_for(fem.a, procs);
  dist::DistLayout layout(fem.a, part);
  dist::GreedySchwarzOptions gopt;
  gopt.max_block_relaxations = 100000;
  gopt.target_residual = 0.1;
  auto greedy = dist::run_greedy_schwarz(layout, b, x0, gopt);
  dist::DistRunOptions bopt;
  bopt.max_parallel_steps = 1000;
  bopt.stop_at_residual = 0.1;
  TraceCapture capture(args);
  BenchRecorder record("related_work", args);
  capture.apply(bopt);
  auto bj = dist::run_distributed(dist::DistMethod::kBlockJacobi, layout, b,
                                  x0, bopt);
  auto dsb = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                   layout, b, x0, bopt);
  capture.add_run("fem BJ", bj);
  capture.add_run("fem DS", dsb);
  record.add_run("fem BJ", "fem", bj);
  record.add_run("fem DS", "fem", dsb);
  util::Table blocks({"Method", "block relaxations", "parallel steps"});
  blocks.row()
      .cell("greedy Schwarz (Ref. 10)")
      .cell(greedy.relaxed_rank.size())
      .cell(std::string("(sequential)"));
  blocks.row()
      .cell("Block Jacobi")
      .cell(static_cast<std::size_t>(bj.steps_taken()) *
            static_cast<std::size_t>(procs))
      .cell(bj.steps_taken());
  std::size_t ds_blocks = 0;
  for (index_t a_count : dsb.active_ranks) {
    ds_blocks += static_cast<std::size_t>(a_count);
  }
  blocks.row()
      .cell("Distributed Southwell")
      .cell(ds_blocks)
      .cell(dsb.steps_taken());
  blocks.print(std::cout);
  std::cout << "\nGreedy Schwarz anchors the block-relaxation economy the "
               "same way Sequential Southwell anchors the scalar one; "
               "Distributed Southwell approaches it while remaining "
               "parallel.\n";
  return 0;
}

}  // namespace
}  // namespace dsouth::bench

int main(int argc, char** argv) { return dsouth::bench::run(argc, argv); }
