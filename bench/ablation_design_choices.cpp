/// Ablation bench for the design choices DESIGN.md calls out. Not a paper
/// artifact, but evidence for *why* Distributed Southwell is built the way
/// it is:
///   A. Parallel Southwell without explicit residual updates — the
///      deadlock-prone Ref. [18] scheme the paper says "deadlocks for all
///      our test problems" (§4.2). We measure how quickly it stalls.
///   B. Distributed Southwell without the Epoch-B deadlock-avoidance
///      corrections — the risk §2.4 describes.
///   C. Distributed Southwell without local ghost-layer estimation — Γ
///      refreshes only on message arrival.
///   D. Partitioner quality: recursive bisection + FM vs greedy growing vs
///      contiguous row blocks, and its effect on DS communication.

#include <iostream>
#include <span>
#include <sstream>

#include "graph/graph.hpp"
#include "graph/rcm.hpp"
#include "sparse/vec.hpp"
#include "support/bench_support.hpp"
#include "util/rng.hpp"

namespace dsouth::bench {
namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto procs = static_cast<index_t>(args.get_int_or("procs", 1024));
  const double size_factor = args.get_double_or("size_factor", 0.25);
  std::vector<std::string> matrices{"Serenap", "af_5_k101p", "msdoorp"};
  if (args.has("matrices")) matrices = select_matrices(args);
  TraceCapture capture(args);
  BenchRecorder record("ablation", args);

  print_header("Ablations — deadlock avoidance, local estimates, "
               "partitioner",
               "DESIGN.md design-choice evidence (no direct paper artifact)",
               "P=" + std::to_string(procs) + ", reduced-size proxies");

  // --- A/B/C: algorithm switches.
  util::Table alg({"Matrix", "Variant", "r after 50", "comm", "res comm",
                   "stalled at step"});
  util::CsvWriter csv(csv_path("ablation_design_choices.csv"),
                      {"matrix", "variant", "residual_after_50", "comm_cost",
                       "res_comm", "stall_step"});
  for (const auto& name : matrices) {
    auto problem = make_dist_problem(name, size_factor);
    auto part = partition_for(problem.a, procs);
    dist::DistLayout layout(problem.a, part);

    auto run_options = default_run_options();
    apply_backend_args(args, run_options);
    capture.apply(run_options);

    struct Variant {
      std::string label;
      dist::DistMethod method;
      dist::DistRunOptions opt;
    };
    std::vector<Variant> variants;
    {
      Variant v{"PS (Alg. 2)", dist::DistMethod::kParallelSouthwell,
                run_options};
      variants.push_back(v);
      v.label = "PS w/o explicit res updates (Ref. 18)";
      v.opt.ps_explicit_residual_updates = false;
      variants.push_back(v);
      Variant d{"DS (Alg. 3)", dist::DistMethod::kDistributedSouthwell,
                run_options};
      variants.push_back(d);
      d.label = "DS w/o corrections";
      d.opt.ds.enable_corrections = false;
      variants.push_back(d);
      Variant e{"DS w/o local estimates",
                dist::DistMethod::kDistributedSouthwell,
                run_options};
      e.opt.ds.enable_local_estimates = false;
      variants.push_back(e);
    }
    for (const auto& v : variants) {
      auto r = dist::run_distributed(v.method, layout, problem.b, problem.x0,
                                     v.opt);
      capture.add_run(name + " " + v.label, r);
      record.add_run(name + " " + v.label, name, r);
      // Stall = the first step after which no rank ever relaxes again.
      std::string stall = "-";
      for (std::size_t k = 0; k < r.active_ranks.size(); ++k) {
        if (r.active_ranks[k] == 0) {
          bool forever = true;
          for (std::size_t j = k; j < r.active_ranks.size(); ++j) {
            if (r.active_ranks[j] > 0) forever = false;
          }
          if (forever) {
            stall = std::to_string(k + 1);
            break;
          }
        }
      }
      std::ostringstream res;
      res.setf(std::ios::scientific);
      res.precision(2);
      res << r.residual_norm.back();
      alg.row().cell(name).cell(v.label).cell(res.str());
      alg.cell(r.comm_cost.back(), 2).cell(r.res_comm.back(), 2).cell(stall);
      csv.write_row(std::vector<std::string>{
          name, v.label, util::format_double(r.residual_norm.back(), 9),
          util::format_double(r.comm_cost.back(), 6),
          util::format_double(r.res_comm.back(), 6), stall});
    }
    std::cerr << "  [" << name << "] algorithm variants done\n";
  }
  alg.print(std::cout);

  // --- D: partitioner quality vs DS communication.
  std::cout << "\nPartitioner ablation (Distributed Southwell, comm to "
               "reach ||r||=0.1):\n";
  util::Table part_table({"Matrix", "Partitioner", "edge cut", "imbalance",
                          "comm to 0.1", "steps to 0.1"});
  for (const auto& name : matrices) {
    auto problem = make_dist_problem(name, size_factor);
    // Random row permutation: generated meshes come in a banded natural
    // order where naive contiguous blocks form decent strips; real
    // matrices offer no such gift, so level the field.
    {
      util::Rng shuffle_rng(4096);
      std::vector<index_t> perm(static_cast<std::size_t>(problem.a.rows()));
      for (index_t i = 0; i < problem.a.rows(); ++i) {
        perm[static_cast<std::size_t>(i)] = i;
      }
      shuffle_rng.shuffle(std::span<index_t>(perm));
      problem.a = graph::permute_symmetric(problem.a, perm);
      // b is all zeros (permutation-invariant); permute x0 consistently.
      auto x_old = problem.x0;
      for (std::size_t k = 0; k < perm.size(); ++k) {
        problem.x0[k] = x_old[static_cast<std::size_t>(perm[k])];
      }
    }
    auto g = graph::Graph::from_matrix_structure(problem.a);
    struct P {
      std::string label;
      graph::Partition part;
    };
    std::vector<P> parts;
    parts.push_back({"bisection+FM",
                     graph::partition_recursive_bisection(g, procs)});
    parts.push_back({"greedy grow",
                     graph::partition_greedy_growing(g, procs)});
    parts.push_back({"contiguous blocks",
                     graph::partition_contiguous_blocks(problem.a.rows(),
                                                        procs)});
    for (auto& pp : parts) {
      auto q = graph::evaluate_partition(g, pp.part);
      auto opt = default_run_options();
      apply_backend_args(args, opt);
      auto r = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                     problem.a, pp.part, problem.b,
                                     problem.x0, opt);
      auto at = r.at_target(0.1);
      part_table.row().cell(name).cell(pp.label);
      part_table.cell(static_cast<std::size_t>(q.edge_cut));
      part_table.cell(q.imbalance, 2);
      part_table.cell(value_or_dagger(
          at ? std::optional<double>(at->comm_cost) : std::nullopt, 2));
      part_table.cell(value_or_dagger(
          at ? std::optional<double>(at->steps) : std::nullopt, 1));
    }
    std::cerr << "  [" << name << "] partitioner variants done\n";
  }
  part_table.print(std::cout);

  // --- E: the §5 / Ref. [8] extension — defer solve messages until the
  // accumulated boundary Δx is large relative to the local residual.
  // "known ||r||" is the residual the ranks believe (stale under
  // deferral); "true ||r||" is recomputed from the gathered iterate.
  std::cout << "\nSend-threshold extension (Distributed Southwell, 50 "
               "steps):\n";
  util::Table th_table({"Matrix", "threshold", "comm", "solve comm",
                        "known ||r||", "true ||r||"});
  for (const auto& name : matrices) {
    auto problem = make_dist_problem(name, size_factor);
    auto part = partition_for(problem.a, procs);
    dist::DistLayout layout(problem.a, part);
    std::vector<value_t> r(problem.b.size());
    for (double th : {0.0, 1.0, 2.0, 4.0}) {
      auto opt = default_run_options();
      apply_backend_args(args, opt);
      opt.ds.send_threshold = th;
      auto run = dist::run_distributed(
          dist::DistMethod::kDistributedSouthwell, layout, problem.b,
          problem.x0, opt);
      problem.a.residual(problem.b, run.final_x, r);
      const double true_r = sparse::norm2(r);
      std::ostringstream known, truth;
      known.setf(std::ios::scientific);
      known.precision(2);
      known << run.residual_norm.back();
      truth.setf(std::ios::scientific);
      truth.precision(2);
      truth << true_r;
      th_table.row().cell(name).cell(th, 1);
      th_table.cell(run.comm_cost.back(), 2);
      th_table.cell(run.solve_comm.back(), 2);
      th_table.cell(known.str()).cell(truth.str());
    }
    std::cerr << "  [" << name << "] threshold sweep done\n";
  }
  th_table.print(std::cout);

  // --- F: robustness under weakly-ordered delivery (message delays).
  // Multi-epoch reordering can permanently desynchronize DS's Γ̃
  // bookkeeping (livelock); Parallel Southwell's unconditional
  // re-advertising self-heals; the heartbeat extension hardens DS.
  std::cout << "\nDelay robustness (30% of messages delayed by 1-3 "
               "epochs, 50 steps):\n";
  util::Table delay_table({"Matrix", "Variant", "r after 50", "comm"});
  for (const auto& name : matrices) {
    auto problem = make_dist_problem(name, size_factor);
    auto part = partition_for(problem.a, procs);
    dist::DistLayout layout(problem.a, part);
    struct V {
      std::string label;
      dist::DistMethod method;
      index_t heartbeat;
    };
    const V variants2[] = {
        {"PS under delays", dist::DistMethod::kParallelSouthwell, 0},
        {"DS under delays", dist::DistMethod::kDistributedSouthwell, 0},
        {"DS + heartbeat(10)", dist::DistMethod::kDistributedSouthwell, 10},
    };
    for (const auto& v : variants2) {
      auto opt = default_run_options();
      apply_backend_args(args, opt);
      opt.delivery.delay_probability = 0.3;
      opt.delivery.max_delay_epochs = 3;
      opt.ds.heartbeat_period = v.heartbeat;
      auto r = dist::run_distributed(v.method, layout, problem.b,
                                     problem.x0, opt);
      std::ostringstream res;
      res.setf(std::ios::scientific);
      res.precision(2);
      res << r.residual_norm.back();
      delay_table.row().cell(name).cell(v.label).cell(res.str());
      delay_table.cell(r.comm_cost.back(), 2);
    }
    std::cerr << "  [" << name << "] delay variants done\n";
  }
  delay_table.print(std::cout);
  std::cout << "\nCSV: " << csv.path() << "\n";
  return 0;
}

}  // namespace
}  // namespace dsouth::bench

int main(int argc, char** argv) { return dsouth::bench::run(argc, argv); }
