/// Regenerates **Table 2** of the paper: Block Jacobi vs Parallel Southwell
/// vs Distributed Southwell reducing ‖r‖₂ to 0.1 with 8192 (simulated) MPI
/// processes, on the 14-matrix proxy suite. Reports modeled wall-clock
/// time, communication cost (total messages / P), parallel steps,
/// relaxations/n, and active processes — with linear interpolation on
/// log10(‖r‖₂) and the † marker for methods that fail within 50 steps,
/// exactly as the paper's caption specifies.

#include <iostream>

#include "support/bench_support.hpp"

namespace dsouth::bench {
namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto procs = static_cast<index_t>(args.get_int_or("procs", 8192));
  const double size_factor = args.get_double_or("size_factor", 1.0);
  const double target = args.get_double_or("target", 0.1);
  const auto matrices = select_matrices(args);
  TraceCapture capture(args);
  BenchRecorder record("table2", args);

  print_header(
      "Table 2 — reducing ||r||_2 to 0.1",
      "paper Table 2 (and the source runs for Tables 3-4)",
      "14 SuiteSparse proxies (DESIGN.md §5), P=" + std::to_string(procs) +
          " simulated ranks, b=0, random x0 with ||r0||=1, local solve = "
          "1 GS sweep, 50 parallel steps");

  util::Table table({"Matrix", "t:BJ", "t:PS", "t:DS", "comm:BJ", "comm:PS",
                     "comm:DS", "steps:BJ", "steps:PS", "steps:DS",
                     "rlx/n:BJ", "rlx/n:PS", "rlx/n:DS", "act:BJ", "act:PS",
                     "act:DS"});
  util::CsvWriter csv(csv_path("table2_target_residual.csv"),
                      {"matrix", "method", "reached", "model_time",
                       "comm_cost", "steps", "relaxations_per_n",
                       "active_fraction"});

  for (const auto& name : matrices) {
    auto problem = make_dist_problem(name, size_factor);
    auto opt = default_run_options();
    apply_backend_args(args, opt);
    capture.apply(opt);
    auto runs = run_three_methods(problem, procs, opt);
    table.row().cell(name);
    const dist::DistRunResult* results[3] = {&runs.bj, &runs.ps, &runs.ds};
    for (const auto* r : results) {
      capture.add_run(name + " " + r->method, *r);
      record.add_run(name + " " + r->method, name, *r);
    }
    std::optional<dist::DistRunResult::AtTarget> at[3];
    for (int m = 0; m < 3; ++m) at[m] = results[m]->at_target(target);
    auto emit = [&](auto getter, int precision) {
      for (int m = 0; m < 3; ++m) {
        table.cell(value_or_dagger(
            at[m] ? std::optional<double>(getter(*at[m])) : std::nullopt,
            precision));
      }
    };
    emit([](const auto& t) { return t.model_time * 1e3; }, 3);  // ms
    emit([](const auto& t) { return t.comm_cost; }, 3);
    emit([](const auto& t) { return t.steps; }, 3);
    emit([](const auto& t) { return t.relaxations_per_n; }, 3);
    emit([](const auto& t) { return t.active_fraction; }, 3);
    for (int m = 0; m < 3; ++m) {
      csv.write_row(std::vector<std::string>{
          name, results[m]->method, at[m] ? "1" : "0",
          at[m] ? util::format_double(at[m]->model_time, 9) : "",
          at[m] ? util::format_double(at[m]->comm_cost, 6) : "",
          at[m] ? util::format_double(at[m]->steps, 6) : "",
          at[m] ? util::format_double(at[m]->relaxations_per_n, 6) : "",
          at[m] ? util::format_double(at[m]->active_fraction, 6) : ""});
    }
    std::cerr << "  [" << name << "] done\n";
  }
  std::cout << "Model time in milliseconds (simulated machine; shapes, not "
               "absolute values, are comparable to the paper).\n\n";
  table.print(std::cout);
  std::cout << "\nCSV: " << csv.path() << "\n";
  return 0;
}

}  // namespace
}  // namespace dsouth::bench

int main(int argc, char** argv) { return dsouth::bench::run(argc, argv); }
