/// Regenerates **Figure 6** of the paper: relative residual norm after 9
/// V-cycles of geometric multigrid on the 2-D Poisson equation, for grid
/// dimensions 15 → 255, comparing Gauss–Seidel smoothing (1 sweep) against
/// Distributed Southwell smoothing with exactly the same number of
/// relaxations ("1 sweep") and half of them ("1/2 sweep", random-subset
/// final step). The paper's findings to reproduce: grid-size-independent
/// convergence in all cases, and DS at least as effective per relaxation
/// as GS.

#include <iostream>
#include <sstream>

#include "multigrid/vcycle.hpp"
#include "support/bench_support.hpp"
#include "util/rng.hpp"

namespace dsouth::bench {
namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto cycles = static_cast<int>(args.get_int_or("cycles", 9));
  auto dims = args.get_int_list_or("dims", {15, 31, 63, 127, 255});

  print_header(
      "Figure 6 — multigrid smoothing with Distributed Southwell",
      "paper Figure 6",
      "2-D Poisson, 5-pt FD, V(1,1) cycles to a 3x3 exact coarse solve, "
      "random RHS in U(-1,1), " + std::to_string(cycles) + " V-cycles");

  util::Table table({"Grid", "GS 1 sweep", "DistSW 1/2 sweep",
                     "DistSW 1 sweep"});
  util::CsvWriter csv(csv_path("fig6_multigrid_smoothing.csv"),
                      {"grid_dim", "smoother", "rel_residual"});

  for (auto dim64 : dims) {
    const auto dim = static_cast<index_t>(dim64);
    multigrid::MultigridHierarchy mg(dim);
    util::Rng rng(0xF166ULL + static_cast<std::uint64_t>(dim));
    std::vector<value_t> b(static_cast<std::size_t>(dim * dim));
    rng.fill_uniform(b, -1.0, 1.0);

    struct Config {
      const char* name;
      std::unique_ptr<multigrid::Smoother> smoother;
    };
    Config configs[3];
    configs[0] = {"GS 1 sweep", multigrid::make_gauss_seidel_smoother(1)};
    configs[1] = {"DistSW 1/2 sweep",
                  multigrid::make_distributed_southwell_smoother(0.5)};
    configs[2] = {"DistSW 1 sweep",
                  multigrid::make_distributed_southwell_smoother(1.0)};

    table.row().cell(std::to_string(dim) + "x" + std::to_string(dim));
    for (auto& cfg : configs) {
      std::vector<value_t> x(b.size(), 0.0);
      const double rel =
          mg.solve_relative_residual(b, x, *cfg.smoother, cycles);
      std::ostringstream os;
      os.setf(std::ios::scientific);
      os.precision(3);
      os << rel;
      table.cell(os.str());
      csv.write_row(std::vector<std::string>{std::to_string(dim), cfg.name,
                                             os.str()});
    }
    std::cerr << "  [" << dim << "x" << dim << "] done\n";
  }
  table.print(std::cout);
  std::cout << "\nExpect grid-size-independent convergence in every column "
               "and DistSW at least as effective as GS per relaxation "
               "(paper §4.1).\nCSV: "
            << csv.path() << "\n";
  return 0;
}

}  // namespace
}  // namespace dsouth::bench

int main(int argc, char** argv) { return dsouth::bench::run(argc, argv); }
