/// Regenerates **Table 3** of the paper: the communication-cost breakdown
/// for Parallel Southwell vs Distributed Southwell into "solve comm"
/// (boundary updates after a subdomain relaxation) and "res comm"
/// (explicit residual-norm updates), measured at the ‖r‖₂ = 0.1 crossing
/// with 8192 simulated ranks. The paper's observation: explicit residual
/// updates dominate PS's traffic and are cut ~3-4× by DS's
/// only-when-necessary rule.

#include <iostream>

#include "support/bench_support.hpp"
#include "util/error.hpp"

namespace dsouth::bench {
namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto procs = static_cast<index_t>(args.get_int_or("procs", 8192));
  const double size_factor = args.get_double_or("size_factor", 1.0);
  const double target = args.get_double_or("target", 0.1);
  const auto matrices = select_matrices(args);
  TraceCapture capture(args);
  BenchRecorder record("table3", args);

  print_header("Table 3 — communication breakdown (PS vs DS)",
               "paper Table 3",
               "same runs as Table 2; message categories tagged per put");

  // With -trace, re-derive the breakdown from the per-tag trace counters
  // and cross-check it against the CommStats the table is built from. The
  // counters never drop (only ring events can), so the match must be exact.
  std::size_t checked = 0, mismatched = 0;
  auto cross_check = [&](const dist::DistRunResult& r,
                         const std::string& label) {
    if (!r.trace_log) return;
    const auto& m = r.trace_log->metrics;
    const double pcount = static_cast<double>(r.num_ranks);
    const trace::MetricId solve_id = m.find("simmpi.msgs_solve");
    const trace::MetricId res_id = m.find("simmpi.msgs_residual");
    DSOUTH_CHECK(solve_id != trace::kInvalidMetric &&
                 res_id != trace::kInvalidMetric);
    ++checked;
    if (m.total(solve_id) / pcount != r.solve_comm.back() ||
        m.total(res_id) / pcount != r.res_comm.back()) {
      ++mismatched;
      std::cerr << "  [" << label << "] trace/CommStats MISMATCH: trace "
                << m.total(solve_id) / pcount << "/"
                << m.total(res_id) / pcount << " vs stats "
                << r.solve_comm.back() << "/" << r.res_comm.back() << "\n";
    }
  };

  util::Table table({"Matrix", "Solve:PS", "Solve:DS", "Res:PS", "Res:DS"});
  util::CsvWriter csv(csv_path("table3_comm_breakdown.csv"),
                      {"matrix", "method", "reached", "solve_comm",
                       "res_comm"});

  for (const auto& name : matrices) {
    auto problem = make_dist_problem(name, size_factor);
    auto part = partition_for(problem.a, procs);
    dist::DistLayout layout(problem.a, part);
    auto opt = default_run_options();
    apply_backend_args(args, opt);
    capture.apply(opt);
    auto ps = dist::run_distributed(dist::DistMethod::kParallelSouthwell,
                                    layout, problem.b, problem.x0, opt);
    auto ds = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                    layout, problem.b, problem.x0, opt);
    capture.add_run(name + " PS", ps);
    capture.add_run(name + " DS", ds);
    record.add_run(name + " PS", name, ps);
    record.add_run(name + " DS", name, ds);
    cross_check(ps, name + " PS");
    cross_check(ds, name + " DS");
    if (opt.coalesce_messages) {
      // The wire-layer split (-coalesce): physical puts vs the logical
      // records they carry. Equal counts mean every (neighbor, epoch)
      // pair already had at most one record — the protocols' per-pair
      // minimality, which coalescing measures rather than improves.
      std::cout << "  [" << name << "] coalesced msgs physical/logical: PS "
                << ps.comm_totals.msgs << "/" << ps.comm_totals.msgs_logical
                << ", DS " << ds.comm_totals.msgs << "/"
                << ds.comm_totals.msgs_logical << "\n";
    }
    auto ps_at = ps.at_target(target);
    auto ds_at = ds.at_target(target);
    table.row().cell(name);
    table.cell(value_or_dagger(
        ps_at ? std::optional<double>(ps_at->solve_comm) : std::nullopt, 3));
    table.cell(value_or_dagger(
        ds_at ? std::optional<double>(ds_at->solve_comm) : std::nullopt, 3));
    table.cell(value_or_dagger(
        ps_at ? std::optional<double>(ps_at->res_comm) : std::nullopt, 3));
    table.cell(value_or_dagger(
        ds_at ? std::optional<double>(ds_at->res_comm) : std::nullopt, 3));
    csv.write_row(std::vector<std::string>{
        name, "PS", ps_at ? "1" : "0",
        ps_at ? util::format_double(ps_at->solve_comm, 6) : "",
        ps_at ? util::format_double(ps_at->res_comm, 6) : ""});
    csv.write_row(std::vector<std::string>{
        name, "DS", ds_at ? "1" : "0",
        ds_at ? util::format_double(ds_at->solve_comm, 6) : "",
        ds_at ? util::format_double(ds_at->res_comm, 6) : ""});
    std::cerr << "  [" << name << "] done\n";
  }
  table.print(std::cout);
  if (checked > 0) {
    std::cout << "\nTrace cross-check: " << (checked - mismatched) << "/"
              << checked
              << " runs where the per-tag trace counters reproduce the "
                 "CommStats breakdown exactly\n";
  }
  std::cout << "\nCSV: " << csv.path() << "\n";
  return mismatched == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dsouth::bench

int main(int argc, char** argv) { return dsouth::bench::run(argc, argv); }
