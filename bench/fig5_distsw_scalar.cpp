/// Regenerates **Figure 5** of the paper: scalar Distributed Southwell
/// compared to Sequential Southwell, Parallel Southwell and Multicolor
/// Gauss–Seidel on the same small FEM problem as Figure 2 (all methods in
/// scalar form, subdomain size 1). The paper's observations to look for:
/// DS closely matches Par SW down to ‖r‖ ≈ 0.6 (the Southwell "sweet
/// spot"), relaxes more equations per parallel step, and degrades mildly
/// at higher accuracy.

#include <iostream>

#include "core/classic.hpp"
#include "core/dist_southwell_scalar.hpp"
#include "core/parallel_southwell.hpp"
#include "core/southwell.hpp"
#include "graph/coloring.hpp"
#include "sparse/proxy_suite.hpp"
#include "sparse/vec.hpp"
#include "support/bench_support.hpp"
#include "util/ascii_plot.hpp"
#include "util/rng.hpp"

namespace dsouth::bench {
namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto sweeps = static_cast<index_t>(args.get_int_or("sweeps", 3));

  auto fem = sparse::make_small_fem_problem();
  const index_t n = fem.a.rows();
  print_header("Figure 5 — scalar Distributed Southwell vs the other "
               "scalar methods",
               "paper Figure 5",
               "same FEM problem and setup as Figure 2, n=" +
                   std::to_string(n));

  std::vector<value_t> b(static_cast<std::size_t>(n));
  util::Rng rng(0xF162ULL);  // same RHS as the Figure 2 bench
  rng.fill_uniform(b, -1.0, 1.0);
  sparse::scale(1.0 / sparse::norm2(b), b);
  std::vector<value_t> x0(b.size(), 0.0);

  core::ScalarRunOptions sopt;
  sopt.max_sweeps = sweeps;
  auto sw = core::run_sequential_southwell(fem.a, b, x0, sopt);
  auto mcgs = core::run_multicolor_gs(fem.a, b, x0, sopt);
  core::ParallelSouthwellOptions popt;
  popt.base.max_sweeps = sweeps;
  auto psw = core::run_parallel_southwell(fem.a, b, x0, popt);
  core::DistSouthwellScalarOptions dopt;
  dopt.base.max_sweeps = sweeps;
  auto ds = core::run_distributed_southwell_scalar(fem.a, b, x0, dopt);

  util::Table summary({"Method", "to 0.8", "to 0.6", "to 0.4",
                       "parallel steps", "relax/step"});
  struct Entry {
    const char* name;
    const core::ConvergenceHistory* h;
  };
  const Entry entries[] = {{"SW", &sw},
                           {"Par SW", &psw},
                           {"MC GS", &mcgs},
                           {"Dist SW", &ds.history}};
  for (const auto& e : entries) {
    summary.row().cell(e.name);
    for (double target : {0.8, 0.6, 0.4}) {
      summary.cell(value_or_dagger(e.h->relaxations_to_reach(target), 0));
    }
    if (e.h->step_marks.empty()) {
      summary.cell(std::string("(sequential)")).cell(std::string("1"));
    } else {
      summary.cell(std::to_string(e.h->num_parallel_steps()));
      summary.cell(static_cast<double>(e.h->total_relaxations()) /
                       static_cast<double>(e.h->num_parallel_steps()),
                   1);
    }
  }
  summary.print(std::cout);
  std::cout << "\nDist SW messages: solve=" << ds.solve_messages
            << ", explicit residual=" << ds.residual_messages << "\n";

  std::cout << "\nResidual norm vs. relaxations (log y):\n";
  std::vector<util::PlotSeries> plot;
  for (const auto& e : entries) {
    util::PlotSeries ps;
    ps.name = e.name;
    for (const auto& pt : e.h->points) {
      ps.x.push_back(static_cast<double>(pt.relaxations));
      ps.y.push_back(pt.residual_norm);
    }
    plot.push_back(std::move(ps));
  }
  util::PlotOptions popts2;
  popts2.x_label = "relaxations";
  popts2.y_label = "||r||_2";
  util::render_plot(std::cout, plot, popts2);

  util::CsvWriter csv(csv_path("fig5_distsw_scalar.csv"),
                      {"method", "relaxations", "residual_norm"});
  for (const auto& e : entries) {
    for (const auto& pt : e.h->points) {
      csv.write_row(std::vector<std::string>{
          e.name, std::to_string(pt.relaxations),
          util::format_double(pt.residual_norm, 9)});
    }
  }
  std::cout << "CSV: " << csv.path() << "\n";
  return 0;
}

}  // namespace
}  // namespace dsouth::bench

int main(int argc, char** argv) { return dsouth::bench::run(argc, argv); }
