/// Regenerates **Figure 9** of the paper: residual norm after 50 parallel
/// steps as a function of the simulated rank count P ∈ {32 … 8192}.
/// Shapes to reproduce: Block Jacobi's convergence severely degrades — or
/// diverges outright (norm above 1) — as P grows, while Parallel and
/// Distributed Southwell degrade only mildly. This is the paper's case
/// for Distributed Southwell as a massively-parallel smoother.

#include <iostream>
#include <sstream>

#include "support/bench_support.hpp"
#include "util/ascii_plot.hpp"

namespace dsouth::bench {
namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const double size_factor = args.get_double_or("size_factor", 1.0);
  auto procs = args.get_int_list_or(
      "procs", {32, 64, 128, 256, 512, 1024, 2048, 4096, 8192});
  std::vector<std::string> matrices = scaling_figure_matrices();
  if (args.has("matrices")) matrices = select_matrices(args);
  TraceCapture capture(args);
  BenchRecorder record("fig9", args);

  print_header("Figure 9 — residual after 50 parallel steps vs P",
               "paper Figure 9",
               "P in {32..8192} simulated ranks; norm > 1 means divergence");

  util::CsvWriter csv(csv_path("fig9_residual_after_50.csv"),
                      {"matrix", "procs", "method", "residual_after_50"});
  for (const auto& name : matrices) {
    auto problem = make_dist_problem(name, size_factor);
    std::cout << "--- " << name << " ---\n";
    util::Table table({"P", "BJ", "PS", "DS"});
    std::vector<util::PlotSeries> plot(3);
    plot[0].name = "BJ";
    plot[1].name = "PS";
    plot[2].name = "DS";
    for (auto p64 : procs) {
      const auto p = static_cast<index_t>(p64);
      auto opt = default_run_options();
      apply_backend_args(args, opt);
      capture.apply(opt);
      auto runs = run_three_methods(problem, p, opt);
      const dist::DistRunResult* results[3] = {&runs.bj, &runs.ps, &runs.ds};
      for (const auto* r : results) {
        capture.add_run(name + " P=" + std::to_string(p) + " " + r->method,
                        *r);
        record.add_run(name + " P=" + std::to_string(p) + " " + r->method,
                       name, *r);
      }
      table.row().cell(static_cast<std::size_t>(p));
      for (int m = 0; m < 3; ++m) {
        const auto* r = results[m];
        plot[static_cast<std::size_t>(m)].x.push_back(
            static_cast<double>(p));
        plot[static_cast<std::size_t>(m)].y.push_back(
            r->residual_norm.back());
        std::ostringstream os;
        os.setf(std::ios::scientific);
        os.precision(2);
        os << r->residual_norm.back();
        table.cell(os.str());
        csv.write_row(std::vector<std::string>{
            name, std::to_string(p), r->method,
            util::format_double(r->residual_norm.back(), 9)});
      }
      std::cerr << "  [" << name << " P=" << p << "] done\n";
    }
    table.print(std::cout);
    util::PlotOptions popts;
    popts.height = 12;
    popts.log_x = true;
    popts.x_label = "P (log)";
    popts.y_label = "||r|| after 50 steps (log)";
    util::render_plot(std::cout, plot, popts);
    std::cout << "\n";
  }
  std::cout << "CSV: " << csv.path() << "\n";
  return 0;
}

}  // namespace
}  // namespace dsouth::bench

int main(int argc, char** argv) { return dsouth::bench::run(argc, argv); }
