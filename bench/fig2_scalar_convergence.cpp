/// Regenerates **Figure 2** of the paper: convergence (residual norm vs
/// number of relaxations) of Gauss–Seidel, Sequential Southwell, Parallel
/// Southwell, Multicolor Gauss–Seidel and Jacobi for three sweeps on the
/// small irregular-FEM Poisson problem (3081 rows; see
/// sparse::make_small_fem_problem). The full curves go to CSV; the console
/// shows the residual at half-sweep checkpoints plus the paper's headline
/// readings (relaxations to reach 0.8/0.6/0.4, parallel-step counts,
/// number of colors).

#include <algorithm>
#include <iostream>

#include "core/classic.hpp"
#include "core/parallel_southwell.hpp"
#include "core/southwell.hpp"
#include "graph/coloring.hpp"
#include "sparse/proxy_suite.hpp"
#include "sparse/vec.hpp"
#include "support/bench_support.hpp"
#include "util/ascii_plot.hpp"
#include "util/rng.hpp"

namespace dsouth::bench {
namespace {

using core::ConvergenceHistory;

/// Residual at a relaxation count, interpolating between recorded points.
double residual_at(const ConvergenceHistory& h, double relaxations) {
  if (h.points.empty()) return 0.0;
  if (relaxations <= static_cast<double>(h.points.front().relaxations)) {
    return h.points.front().residual_norm;
  }
  for (std::size_t k = 1; k < h.points.size(); ++k) {
    if (static_cast<double>(h.points[k].relaxations) >= relaxations) {
      const auto& a = h.points[k - 1];
      const auto& b = h.points[k];
      const double span = static_cast<double>(b.relaxations - a.relaxations);
      const double frac =
          span == 0.0
              ? 1.0
              : (relaxations - static_cast<double>(a.relaxations)) / span;
      return a.residual_norm + frac * (b.residual_norm - a.residual_norm);
    }
  }
  return h.points.back().residual_norm;
}

void dump_series(util::CsvWriter& csv, const std::string& method,
                 const ConvergenceHistory& h) {
  for (std::size_t k = 0; k < h.points.size(); ++k) {
    const bool mark =
        std::find(h.step_marks.begin(), h.step_marks.end(), k) !=
        h.step_marks.end();
    csv.write_row(std::vector<std::string>{
        method, std::to_string(h.points[k].relaxations),
        util::format_double(h.points[k].residual_norm, 9),
        mark ? "1" : "0"});
  }
}

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto sweeps = static_cast<index_t>(args.get_int_or("sweeps", 3));

  auto fem = sparse::make_small_fem_problem();
  const index_t n = fem.a.rows();
  print_header("Figure 2 — scalar method convergence on the small FEM "
               "problem",
               "paper Figure 2",
               "P1 FEM Poisson on a perturbed 81x41 triangulation, n=" +
                   std::to_string(n) + ", b random with ||b||=1, x0=0, " +
                   std::to_string(sweeps) + " sweeps");

  // RHS: uniform random, mean zero, scaled so ‖b‖₂ = 1 (paper §2.3).
  std::vector<value_t> b(static_cast<std::size_t>(n));
  util::Rng rng(0xF162ULL);
  rng.fill_uniform(b, -1.0, 1.0);
  sparse::scale(1.0 / sparse::norm2(b), b);
  std::vector<value_t> x0(b.size(), 0.0);

  core::ScalarRunOptions sopt;
  sopt.max_sweeps = sweeps;
  auto gs = core::run_gauss_seidel(fem.a, b, x0, sopt);
  auto sw = core::run_sequential_southwell(fem.a, b, x0, sopt);
  auto jac = core::run_jacobi(fem.a, b, x0, sopt);
  auto coloring = graph::greedy_coloring(
      graph::Graph::from_matrix_structure(fem.a), graph::ColoringOrder::kBfs);
  auto mcgs = core::run_multicolor_gs(fem.a, b, x0, sopt, &coloring);
  core::ParallelSouthwellOptions popt;
  popt.base.max_sweeps = sweeps;
  auto psw = core::run_parallel_southwell(fem.a, b, x0, popt);

  struct Entry {
    const char* name;
    const ConvergenceHistory* h;
  };
  const Entry entries[] = {{"GS", &gs},
                           {"SW", &sw},
                           {"Par SW", &psw},
                           {"MC GS", &mcgs},
                           {"Jacobi", &jac}};

  util::Table curve({"Relaxations", "GS", "SW", "Par SW", "MC GS", "Jacobi"});
  for (index_t c = 0; c <= 2 * sweeps; ++c) {
    const double rlx = 0.5 * static_cast<double>(c) * static_cast<double>(n);
    curve.row().cell(static_cast<std::size_t>(rlx));
    for (const auto& e : entries) curve.cell(residual_at(*e.h, rlx), 4);
  }
  curve.print(std::cout);

  std::cout << "\nRelaxations to reach a residual norm target "
               "(interpolated):\n";
  util::Table summary({"Method", "to 0.8", "to 0.6", "to 0.4",
                       "parallel steps"});
  for (const auto& e : entries) {
    summary.row().cell(e.name);
    for (double target : {0.8, 0.6, 0.4}) {
      auto c = e.h->relaxations_to_reach(target);
      summary.cell(value_or_dagger(c, 0));
    }
    summary.cell(e.h->step_marks.empty()
                     ? std::string("(sequential)")
                     : std::to_string(e.h->num_parallel_steps()));
  }
  summary.print(std::cout);
  std::cout << "\nMulticolor GS uses " << coloring.num_colors
            << " colors (BFS greedy; the paper reports 6).\n";

  std::cout << "\nResidual norm vs. relaxations (log y):\n";
  std::vector<util::PlotSeries> plot;
  for (const auto& e : entries) {
    util::PlotSeries ps;
    ps.name = e.name;
    for (const auto& pt : e.h->points) {
      ps.x.push_back(static_cast<double>(pt.relaxations));
      ps.y.push_back(pt.residual_norm);
    }
    plot.push_back(std::move(ps));
  }
  util::PlotOptions popts2;
  popts2.x_label = "relaxations";
  popts2.y_label = "||r||_2";
  util::render_plot(std::cout, plot, popts2);

  util::CsvWriter csv(csv_path("fig2_scalar_convergence.csv"),
                      {"method", "relaxations", "residual_norm",
                       "parallel_step_mark"});
  for (const auto& e : entries) dump_series(csv, e.name, *e.h);
  std::cout << "CSV: " << csv.path() << "\n";
  return 0;
}

}  // namespace
}  // namespace dsouth::bench

int main(int argc, char** argv) { return dsouth::bench::run(argc, argv); }
