/// Google-benchmark microbenchmarks for the library's hot kernels: SpMV,
/// the local Gauss–Seidel sweep, Sequential Southwell's heap-driven
/// relaxation, graph coloring, partitioning, and one full parallel step of
/// each distributed method. These guard the constant factors the
/// simulation's throughput depends on (all experiment "timings" come from
/// the machine model, not from these).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <string>

#include "core/scalar_engine.hpp"
#include "core/southwell.hpp"
#include "dist/driver.hpp"
#include "dist/subdomain.hpp"
#include "kernels/kernels.hpp"
#include "graph/coloring.hpp"
#include "graph/partition.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "util/indexed_heap.hpp"
#include "util/rng.hpp"
#include "wire/wire.hpp"

namespace dsouth {
namespace {

sparse::CsrMatrix bench_matrix(sparse::index_t dim) {
  return sparse::symmetric_unit_diagonal_scale(
             sparse::poisson2d_5pt(dim, dim))
      .a;
}

void BM_Spmv(benchmark::State& state) {
  const auto dim = static_cast<sparse::index_t>(state.range(0));
  auto a = bench_matrix(dim);
  std::vector<double> x(static_cast<std::size_t>(a.rows()), 1.0);
  std::vector<double> y(x.size());
  for (auto _ : state) {
    a.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_Spmv)->Arg(64)->Arg(256);

void BM_LocalGsSweep(benchmark::State& state) {
  const auto dim = static_cast<sparse::index_t>(state.range(0));
  auto a = bench_matrix(dim);
  std::vector<double> x(static_cast<std::size_t>(a.rows()), 0.0);
  std::vector<double> r(x.size(), 1.0);
  for (auto _ : state) {
    dist::local_gauss_seidel_sweep(a, x, r);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * a.rows());
}
BENCHMARK(BM_LocalGsSweep)->Arg(64)->Arg(256);

void BM_GsSweepBatch(benchmark::State& state) {
  // Batched SoA sweep (kernels.hpp): `lanes` tenants relaxed together,
  // batch innermost so the per-row arithmetic vectorizes across tenants.
  // Compare items/sec against lanes = 1 (and BM_LocalGsSweep) to see the
  // SIMD win; per-lane results are bit-identical to the scalar sweep
  // (tests/test_batch.cpp), so the speedup is free.
  const auto dim = static_cast<sparse::index_t>(state.range(0));
  const auto lanes = static_cast<std::size_t>(state.range(1));
  auto a = bench_matrix(dim);
  const auto m = static_cast<std::size_t>(a.rows());
  std::vector<double> x(m * lanes, 0.0);
  std::vector<double> r(m * lanes);
  util::Rng rng(7);
  rng.fill_uniform(r, -1.0, 1.0);
  for (auto _ : state) {
    kernels::gs_sweep_batch(a, lanes, x, r);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetLabel("lanes=" + std::to_string(lanes));
  state.SetItemsProcessed(state.iterations() * a.rows() *
                          static_cast<std::int64_t>(lanes));
}
BENCHMARK(BM_GsSweepBatch)
    ->Args({64, 1})
    ->Args({64, 4})
    ->Args({64, 8})
    ->Args({64, 16})
    ->Args({256, 1})
    ->Args({256, 4})
    ->Args({256, 8})
    ->Args({256, 16});

void BM_NormSqBatch(benchmark::State& state) {
  // Per-lane residual norms of a batched SoA block — the coordinator's
  // per-step convergence sweep (dist/batch.cpp).
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto lanes = static_cast<std::size_t>(state.range(1));
  std::vector<double> r(rows * lanes);
  util::Rng rng(9);
  rng.fill_uniform(r, -1.0, 1.0);
  std::vector<double> out(lanes);
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), 0.0);
    kernels::norm_sq_batch(r, lanes, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel("lanes=" + std::to_string(lanes));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rows * lanes));
}
BENCHMARK(BM_NormSqBatch)
    ->Args({4096, 1})
    ->Args({4096, 4})
    ->Args({4096, 8})
    ->Args({4096, 16});

void BM_SequentialSouthwellSweep(benchmark::State& state) {
  const auto dim = static_cast<sparse::index_t>(state.range(0));
  auto a = bench_matrix(dim);
  util::Rng rng(1);
  std::vector<double> b(static_cast<std::size_t>(a.rows()));
  rng.fill_uniform(b, -1.0, 1.0);
  std::vector<double> x0(b.size(), 0.0);
  core::ScalarRunOptions opt;
  opt.max_sweeps = 1;
  opt.record_each_relaxation = false;
  for (auto _ : state) {
    auto h = core::run_sequential_southwell(a, b, x0, opt);
    benchmark::DoNotOptimize(h.points.data());
  }
  state.SetItemsProcessed(state.iterations() * a.rows());
}
BENCHMARK(BM_SequentialSouthwellSweep)->Arg(64);

void BM_IndexedHeapChurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  for (auto _ : state) {
    util::IndexedMaxHeap<double> heap(n);
    for (std::size_t i = 0; i < n; ++i) heap.push(i, rng.next_double());
    for (std::size_t i = 0; i < n; ++i) {
      heap.update(static_cast<std::size_t>(rng.next_below(n)),
                  rng.next_double());
    }
    while (!heap.empty()) benchmark::DoNotOptimize(heap.pop());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(3 * n));
}
BENCHMARK(BM_IndexedHeapChurn)->Arg(1024)->Arg(16384);

void BM_GreedyColoring(benchmark::State& state) {
  const auto dim = static_cast<sparse::index_t>(state.range(0));
  auto g = graph::Graph::from_matrix_structure(
      sparse::poisson2d_9pt(dim, dim));
  for (auto _ : state) {
    auto c = graph::greedy_coloring(g);
    benchmark::DoNotOptimize(c.color.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_GreedyColoring)->Arg(128);

void BM_PartitionBisection(benchmark::State& state) {
  const auto dim = static_cast<sparse::index_t>(state.range(0));
  auto g = graph::Graph::from_matrix_structure(
      sparse::poisson2d_5pt(dim, dim));
  for (auto _ : state) {
    auto p = graph::partition_recursive_bisection(g, 64);
    benchmark::DoNotOptimize(p.part.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_PartitionBisection)->Arg(64)->Arg(128);

void BM_DistStep(benchmark::State& state) {
  const auto method = static_cast<dist::DistMethod>(state.range(0));
  auto a = bench_matrix(96);
  util::Rng rng(3);
  std::vector<double> b(static_cast<std::size_t>(a.rows()), 0.0);
  std::vector<double> x0(b.size());
  rng.fill_uniform(x0, -1.0, 1.0);
  sparse::normalize_initial_residual(a, b, x0);
  auto g = graph::Graph::from_matrix_structure(a);
  auto part = graph::partition_recursive_bisection(g, 128);
  dist::DistLayout layout(a, part);
  simmpi::Runtime rt(128);
  dist::DistRunOptions opt;
  auto solver = dist::make_dist_solver(method, layout, rt, b, x0, opt);
  for (auto _ : state) {
    auto stats = solver->step();
    benchmark::DoNotOptimize(stats.relaxations);
  }
  state.SetLabel(dist::method_name(method));
}
BENCHMARK(BM_DistStep)
    ->Arg(static_cast<int>(dist::DistMethod::kBlockJacobi))
    ->Arg(static_cast<int>(dist::DistMethod::kParallelSouthwell))
    ->Arg(static_cast<int>(dist::DistMethod::kDistributedSouthwell));

void BM_WireEncode(benchmark::State& state) {
  const auto nb = static_cast<std::size_t>(state.range(0));
  std::vector<double> out(wire::encoded_doubles(
      wire::RecordType::kSolveUpdate, nb));
  for (auto _ : state) {
    auto rec = wire::begin_record(wire::RecordType::kSolveUpdate, 0.5, 0.25,
                                  out, nb);
    for (std::size_t i = 0; i < nb; ++i) {
      rec.dx[i] = static_cast<double>(i);
      rec.rb[i] = static_cast<double>(i) * 0.5;
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_WireEncode)->Arg(8)->Arg(64);

void BM_WireDecode(benchmark::State& state) {
  const auto nb = static_cast<std::size_t>(state.range(0));
  std::vector<double> buf(wire::encoded_doubles(
      wire::RecordType::kSolveUpdate, nb));
  auto enc = wire::begin_record(wire::RecordType::kSolveUpdate, 0.5, 0.25,
                                buf, nb);
  for (std::size_t i = 0; i < nb; ++i) enc.dx[i] = enc.rb[i] = 1.0;
  double sink = 0.0;
  for (auto _ : state) {
    wire::for_each_record(wire::Family::kEstimate, buf, nb,
                          [&](const wire::Record& rec) {
                            sink += rec.norm2 + rec.dx[0] + rec.rb[nb - 1];
                          });
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_WireDecode)->Arg(8)->Arg(64);

void BM_WireFrameRoundTrip(benchmark::State& state) {
  // Coalesced frame: `count` Correction records for one peer, encoded and
  // then walked — the synthetic multi-record traffic the solvers' one
  // record per (neighbor, epoch) never produces.
  const auto count = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kNb = 16;
  const std::size_t len =
      wire::encoded_doubles(wire::RecordType::kCorrection, kNb);
  std::vector<wire::RecordType> types(count, wire::RecordType::kCorrection);
  std::vector<std::size_t> lengths(count, len);
  std::vector<double> bodies(count * len);
  for (std::size_t i = 0; i < count; ++i) {
    auto rec = wire::begin_record(
        wire::RecordType::kCorrection, 1.0, 2.0,
        std::span<double>(bodies).subspan(i * len, len), kNb);
    for (std::size_t g = 0; g < kNb; ++g) rec.rb[g] = static_cast<double>(g);
  }
  std::vector<double> frame(wire::frame_doubles(lengths));
  double sink = 0.0;
  for (auto _ : state) {
    wire::encode_frame(types, lengths, bodies, frame);
    wire::for_each_record(wire::Family::kEstimate, frame, kNb,
                          [&](const wire::Record& rec) { sink += rec.norm2; });
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_WireFrameRoundTrip)->Arg(2)->Arg(8);

void BM_ChannelStaging(benchmark::State& state) {
  // put()-with-copy vs stage()-in-place for one epoch of boundary traffic
  // between two ranks (range(1) selects the path). The pools make both
  // allocation-free once warm; stage() additionally skips the memcpy at
  // put time (the fence's delivery copy remains in both).
  const bool use_stage = state.range(1) != 0;
  const auto nb = static_cast<std::size_t>(state.range(0));
  simmpi::Runtime rt(2);
  std::vector<double> payload(nb, 1.5);
  for (auto _ : state) {
    if (use_stage) {
      auto out = rt.stage(0, 1, simmpi::MsgTag::kSolve, nb);
      for (std::size_t i = 0; i < nb; ++i) out[i] = 1.5;
    } else {
      rt.put(0, 1, simmpi::MsgTag::kSolve, payload);
    }
    rt.fence();
    rt.consume(1);
  }
  state.SetLabel(use_stage ? "stage" : "put");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(nb));
}
BENCHMARK(BM_ChannelStaging)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({1024, 0})
    ->Args({1024, 1});

}  // namespace
}  // namespace dsouth

BENCHMARK_MAIN();
