/// Regenerates **Figure 7** of the paper: full residual traces — residual
/// norm against modeled wall-clock time, communication cost, and parallel
/// step — for the four problems whose Block Jacobi behavior differs:
/// Geo_1438 and Hook_1498 (BJ reaches 0.1 then diverges), bone010 (BJ
/// never reaches 0.1) and af_5_k101 (BJ never diverges), at 8192 simulated
/// ranks. Full series go to CSV; the console shows the per-step residual
/// table and a divergence classification.

#include <iostream>
#include <sstream>

#include "support/bench_support.hpp"
#include "util/ascii_plot.hpp"

namespace dsouth::bench {
namespace {

const char* classify(const dist::DistRunResult& r, double target) {
  const bool reached = r.at_target(target).has_value();
  double max_after = 0.0;
  for (double v : r.residual_norm) max_after = std::max(max_after, v);
  const bool diverged = r.residual_norm.back() > 1.0 || max_after > 10.0;
  if (reached && diverged) return "reaches 0.1, later diverges";
  if (reached && r.residual_norm.back() > target) {
    return "reaches 0.1, later degrades above it";
  }
  if (reached) return "reaches 0.1, stays stable";
  if (diverged) return "diverges";
  return "does not reach 0.1 in 50 steps";
}

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto procs = static_cast<index_t>(args.get_int_or("procs", 8192));
  const double size_factor = args.get_double_or("size_factor", 1.0);
  std::vector<std::string> matrices{"Geo_1438p", "Hook_1498p", "bone010p",
                                    "af_5_k101p"};
  if (args.has("matrices")) matrices = select_matrices(args);
  TraceCapture capture(args);
  BenchRecorder record("fig7", args);

  print_header("Figure 7 — residual traces vs time / comm / step",
               "paper Figure 7",
               "four representative proxies, P=" + std::to_string(procs) +
                   ", 50 parallel steps");

  util::CsvWriter csv(csv_path("fig7_traces.csv"),
                      {"matrix", "method", "step", "model_time", "comm_cost",
                       "residual_norm"});
  for (const auto& name : matrices) {
    auto problem = make_dist_problem(name, size_factor);
    auto opt = default_run_options();
    apply_backend_args(args, opt);
    capture.apply(opt);
    auto runs = run_three_methods(problem, procs, opt);
    const dist::DistRunResult* results[3] = {&runs.bj, &runs.ps, &runs.ds};
    for (const auto* r : results) {
      capture.add_run(name + " " + r->method, *r);
      record.add_run(name + " " + r->method, name, *r);
    }

    std::cout << "--- " << name << " ---\n";
    util::Table table({"Step", "r:BJ", "r:PS", "r:DS"});
    const std::size_t steps = results[0]->residual_norm.size();
    for (std::size_t k = 0; k < steps; k += 5) {
      table.row().cell(k);
      for (const auto* r : results) {
        std::ostringstream os;
        os.setf(std::ios::scientific);
        os.precision(2);
        os << (k < r->residual_norm.size() ? r->residual_norm[k]
                                           : r->residual_norm.back());
        table.cell(os.str());
      }
    }
    table.print(std::cout);
    {
      std::vector<util::PlotSeries> plot;
      for (const auto* r : results) {
        util::PlotSeries ps;
        ps.name = dist::method_abbrev(
            r->method == "BlockJacobi"
                ? dist::DistMethod::kBlockJacobi
                : (r->method == "ParallelSouthwell"
                       ? dist::DistMethod::kParallelSouthwell
                       : dist::DistMethod::kDistributedSouthwell));
        for (std::size_t k = 0; k < r->residual_norm.size(); ++k) {
          ps.x.push_back(static_cast<double>(k));
          ps.y.push_back(r->residual_norm[k]);
        }
        plot.push_back(std::move(ps));
      }
      util::PlotOptions popts;
      popts.height = 14;
      popts.x_label = "parallel step";
      popts.y_label = "||r||_2";
      util::render_plot(std::cout, plot, popts);
    }
    for (const auto* r : results) {
      std::cout << "  " << r->method << ": " << classify(*r, 0.1) << "\n";
      for (std::size_t k = 0; k < r->residual_norm.size(); ++k) {
        csv.write_row(std::vector<std::string>{
            name, r->method, std::to_string(k),
            util::format_double(r->model_time[k], 9),
            util::format_double(r->comm_cost[k], 6),
            util::format_double(r->residual_norm[k], 9)});
      }
    }
    std::cout << "\n";
  }
  std::cout << "CSV: " << csv.path() << "\n";
  return 0;
}

}  // namespace
}  // namespace dsouth::bench

int main(int argc, char** argv) { return dsouth::bench::run(argc, argv); }
