/// Elastic recovery gate (docs/resilience.md "Permanent failure and
/// recovery"): kill k of P ranks mid-solve and require all four
/// distributed solvers to still converge. Each method runs under
/// elastic::run_elastic with periodic checkpoints; at the configured kill
/// epochs the fault schedule silences the victims permanently, the driver
/// detects the deaths, rolls back to the last checkpoint, redistributes
/// the dead ranks' rows over the survivors (graph::repartition_after_
/// failure) and resumes. The bench fails (nonzero exit) unless every
/// method's final residual reaches the Table-2 tolerance — that exit code,
/// plus the `-json` record gated against the committed BENCH_elastic.json
/// baseline, is the CI "Elastic matrix" job.
///
/// Everything reported except wall clock is deterministic: kill epochs are
/// explicit (or seeded stateless draws), checkpoints are versioned byte
/// buffers, and repartitioning is incremental FM — so the whole table is
/// bit-identical across execution backends.
///
/// Quickstart: `elastic_recovery -kill-rank 3 -kill-epoch 12 -ckpt-every 4`
/// kills one rank; the default grid kills 2 of 16 (`-kill-ranks 3@12,11@24`).

#include <iostream>
#include <sstream>

#include "elastic/elastic.hpp"
#include "support/bench_support.hpp"

namespace dsouth::bench {
namespace {

std::vector<faults::RankKill> parse_kills(const util::ArgParser& args) {
  std::vector<faults::RankKill> kills;
  if (args.get("kill-rank")) {
    // Single-kill quickstart form.
    faults::RankKill k;
    k.rank = static_cast<int>(args.get_int_or("kill-rank", 3));
    k.epoch = static_cast<std::uint64_t>(args.get_int_or("kill-epoch", 12));
    kills.push_back(k);
    return kills;
  }
  // Grid form: comma list of rank@epoch pairs.
  const std::string spec = args.get_or("kill-ranks", "3@12,11@24");
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto at = item.find('@');
    DSOUTH_CHECK_MSG(at != std::string::npos && at > 0 &&
                         at + 1 < item.size(),
                     "-kill-ranks entries must look like RANK@EPOCH, got '"
                         << item << "'");
    faults::RankKill k;
    k.rank = std::stoi(item.substr(0, at));
    k.epoch = std::stoull(item.substr(at + 1));
    kills.push_back(k);
  }
  DSOUTH_CHECK_MSG(!kills.empty(), "-kill-ranks must name at least one kill");
  return kills;
}

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto procs = static_cast<index_t>(args.get_int_or("procs", 16));
  const double size_factor = args.get_double_or("size_factor", 1.0);
  const double target = args.get_double_or("target", 0.1);
  const auto ckpt_every =
      static_cast<index_t>(args.get_int_or("ckpt-every", 8));
  const auto kills = parse_kills(args);
  for (const auto& k : kills) {
    DSOUTH_CHECK_MSG(k.rank >= 0 && k.rank < procs,
                     "kill rank " << k.rank << " out of range for P="
                                  << procs);
  }
  DSOUTH_CHECK_MSG(static_cast<index_t>(kills.size()) < procs,
                   "cannot kill every rank — nothing would survive");
  std::vector<std::string> matrices;
  if (args.get("matrices")) {
    matrices = select_matrices(args);
  } else {
    matrices = {"ldoorp"};  // one proxy keeps the CI gate fast
  }
  TraceCapture capture(args);
  BenchRecorder record("elastic", args);

  std::string kill_desc;
  for (const auto& k : kills) {
    if (!kill_desc.empty()) kill_desc += ", ";
    kill_desc += "r" + std::to_string(k.rank) + "@" +
                 std::to_string(k.epoch);
  }
  print_header(
      "Elastic recovery — convergence after permanent rank failure",
      "docs/resilience.md recovery study (no paper artifact; the paper "
      "assumes a reliable fabric)",
      "kill " + std::to_string(kills.size()) + " of P=" +
          std::to_string(procs) + " ranks (" + kill_desc +
          "), checkpoint every " + std::to_string(ckpt_every) +
          " steps, 50 parallel steps, target ||r|| <= " +
          util::format_double(target, 3));

  util::Table table({"Matrix", "method", "final_r", "reached", "kills",
                     "ckpts", "ckpt_bytes", "rows_moved", "resumed@"});
  util::CsvWriter csv(csv_path("elastic_recovery.csv"),
                      {"matrix", "method", "steps", "final_residual",
                       "reached", "kills_detected", "checkpoints_taken",
                       "checkpoint_bytes", "rows_moved", "resumed_steps"});

  const dist::DistMethod methods[4] = {
      dist::DistMethod::kBlockJacobi, dist::DistMethod::kMulticolorBlockGs,
      dist::DistMethod::kParallelSouthwell,
      dist::DistMethod::kDistributedSouthwell};

  bool all_reached = true;
  for (const auto& name : matrices) {
    auto problem = make_dist_problem(name, size_factor);
    auto part = partition_for(problem.a, procs);
    for (auto m : methods) {
      auto opt = default_run_options();
      apply_backend_args(args, opt);
      capture.apply(opt);
      opt.faults.kills = kills;
      elastic::RecoveryOptions rec;
      rec.checkpoint_every = ckpt_every;
      auto er = elastic::run_elastic(m, problem.a, part, problem.b,
                                     problem.x0, opt, rec);
      const auto& r = er.run;
      const double rn =
          r.residual_norm.empty() ? 0.0 : r.residual_norm.back();
      const bool reached = rn <= target;
      all_reached = all_reached && reached;

      std::uint64_t rows_moved = 0;
      std::string resumed;
      for (const auto& ev : er.recoveries) {
        rows_moved += static_cast<std::uint64_t>(ev.rows_moved);
        if (!resumed.empty()) resumed += ";";
        resumed += std::to_string(ev.resumed_step);
      }
      const std::string label = name + " kill" +
                                std::to_string(kills.size()) + " " +
                                dist::method_abbrev(m);
      capture.add_run(label, r);
      // Recovery extras ride in the deterministic block: the CI gate
      // (tools/bench_compare.py vs BENCH_elastic.json) pins not just the
      // final residual but the whole recovery shape.
      std::vector<std::pair<std::string, std::uint64_t>> extra = {
          {"recovery_reached", reached ? 1U : 0U},
          {"recovery_kills", er.recoveries.size()},
          {"recovery_checkpoints",
           static_cast<std::uint64_t>(er.checkpoints_taken)},
          {"recovery_checkpoint_bytes", er.last_checkpoint_bytes},
          {"recovery_rows_moved", rows_moved},
      };
      for (std::size_t i = 0; i < er.recoveries.size(); ++i) {
        const auto& ev = er.recoveries[i];
        const std::string sfx = "_" + std::to_string(i);
        extra.emplace_back("recovery_dead_rank" + sfx,
                           static_cast<std::uint64_t>(ev.dead_rank));
        extra.emplace_back("recovery_resumed_step" + sfx,
                           static_cast<std::uint64_t>(ev.resumed_step));
      }
      record.add_run(label, name, r, extra);

      table.row()
          .cell(name)
          .cell(r.method)
          .cell(util::format_double(rn, 4))
          .cell(reached ? "yes" : "NO")
          .cell(std::to_string(er.recoveries.size()))
          .cell(std::to_string(er.checkpoints_taken))
          .cell(std::to_string(er.last_checkpoint_bytes))
          .cell(std::to_string(rows_moved))
          .cell(resumed.empty() ? "-" : resumed);
      csv.write_row(std::vector<std::string>{
          name, r.method, std::to_string(r.steps_taken()),
          util::format_double(rn, 9), reached ? "1" : "0",
          std::to_string(er.recoveries.size()),
          std::to_string(er.checkpoints_taken),
          std::to_string(er.last_checkpoint_bytes),
          std::to_string(rows_moved), resumed.empty() ? "-" : resumed});
    }
    std::cerr << "  [" << name << "] done\n";
  }
  std::cout << "Final ||r||_2 after 50 surviving parallel steps; each "
               "method lost the same ranks and recovered from its own "
               "checkpoints.\n\n";
  table.print(std::cout);
  std::cout << "\nCSV: " << csv.path() << "\n";
  if (!all_reached) {
    std::cout << "\nELASTIC GATE FAILED: a method missed the target "
                 "residual after recovery\n";
    return 1;
  }
  std::cout << "\nElastic gate passed: every method reached ||r|| <= "
            << util::format_double(target, 3) << " after losing "
            << kills.size() << " rank(s).\n";
  return 0;
}

}  // namespace
}  // namespace dsouth::bench

int main(int argc, char** argv) { return dsouth::bench::run(argc, argv); }
