/// Async sweep (DESIGN.md §12): Distributed Southwell vs. the other three
/// solvers under the EventDriven delivery policy, as asynchrony grows
/// along two axes — the per-message latency spread (uniform [0, L] epoch
/// draws) and the runtime-enforced staleness bound S. For each grid point
/// every solver runs relax-on-arrival for 50 parallel steps and the bench
/// reports the final residual, modeled seconds, epochs closed, and the
/// delivery/staleness totals from CommStats.
///
/// The L=0, S=0 column is the sanity anchor: every message matures at the
/// next fence, so the schedule timing is bulk-synchronous (the trajectory
/// still differs from the BSP step — async mode fuses each step into one
/// absorb→relax epoch). Everything reported except wall clock is
/// deterministic: latency draws are stateless hashes of (seed, epoch, src,
/// dst, seq), so the whole grid is bit-identical across execution
/// backends. The `-json` record feeds the CI async-matrix gate
/// (tools/bench_compare.py vs the committed BENCH_async.json baseline).

#include <iostream>
#include <sstream>

#include "support/bench_support.hpp"

namespace dsouth::bench {
namespace {

std::vector<int> parse_int_list(const util::ArgParser& args, const char* flag,
                                const std::string& fallback) {
  const std::string spec = args.get_or(flag, fallback);
  std::vector<int> vals;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const int v = std::stoi(item);
    DSOUTH_CHECK_MSG(v >= 0, "-" << flag << " entries must be >= 0");
    vals.push_back(v);
  }
  DSOUTH_CHECK_MSG(!vals.empty(),
                   "-" << flag << " must name at least one value");
  return vals;
}

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto procs = static_cast<index_t>(args.get_int_or("procs", 16));
  const double size_factor = args.get_double_or("size_factor", 0.1);
  // Latency axis: max extra epochs a message can draw (min stays 0 so the
  // spread, not just the mean, grows). Staleness axis: the runtime bound.
  const auto latencies = parse_int_list(args, "latencies", "0,2,4");
  const auto staleness = parse_int_list(args, "staleness-bounds", "0,2,6");
  const auto seed =
      static_cast<std::uint64_t>(args.get_int_or("async-seed", 0xA51CLL));
  std::vector<std::string> matrices;
  if (args.get("matrices")) {
    matrices = select_matrices(args);
  } else {
    matrices = {"ldoorp"};  // one proxy keeps the CI smoke run fast
  }
  TraceCapture capture(args);
  BenchRecorder record("async_sweep", args);

  print_header(
      "Async sweep — solvers under event-driven delivery",
      "DESIGN.md §12 asynchrony study (no paper artifact; the paper's §5 "
      "names asynchronous variants as future work)",
      "latency-spread x staleness-bound grid, P=" + std::to_string(procs) +
          " simulated ranks, 50 relax-on-arrival steps, seeded per-edge "
          "latency draws");

  util::Table table({"Matrix", "L", "S", "r:BJ", "r:MCBGS", "r:PS", "r:DS",
                     "it:DS", "t:DS(ms)", "deliv", "stale:max"});
  util::CsvWriter csv(csv_path("async_sweep.csv"),
                      {"matrix", "max_latency", "staleness_bound", "method",
                       "steps", "epochs", "final_residual", "modeled_time",
                       "async_delivered", "staleness_sum", "staleness_max"});

  const dist::DistMethod methods[4] = {
      dist::DistMethod::kBlockJacobi, dist::DistMethod::kMulticolorBlockGs,
      dist::DistMethod::kParallelSouthwell,
      dist::DistMethod::kDistributedSouthwell};

  for (const auto& name : matrices) {
    auto problem = make_dist_problem(name, size_factor);
    auto part = partition_for(problem.a, procs);
    dist::DistLayout layout(problem.a, part);
    for (int lat : latencies) {
      for (int stale : staleness) {
        auto opt = default_run_options();
        apply_backend_args(args, opt);
        capture.apply(opt);
        opt.async = true;
        opt.async_seed = seed;
        opt.async_min_latency = 0;
        opt.async_max_latency = lat;
        opt.max_staleness = static_cast<std::uint64_t>(stale);
        opt.watchdog.enabled = true;
        table.row().cell(name).cell(std::to_string(lat)).cell(
            std::to_string(stale));
        dist::AsyncTotals grid_totals;  // summed/maxed over the methods
        std::string ds_steps, ds_time;
        for (auto m : methods) {
          auto r =
              dist::run_distributed(m, layout, problem.b, problem.x0, opt);
          const std::string label = name + " L=" + std::to_string(lat) +
                                    " S=" + std::to_string(stale) + " " +
                                    dist::method_abbrev(m);
          capture.add_run(label, r);
          record.add_run(label, name, r);
          table.cell(util::format_double(
              r.residual_norm.empty() ? 0.0 : r.residual_norm.back(), 4));
          dist::AsyncTotals at;
          if (r.async_totals) at = *r.async_totals;
          grid_totals.delivered += at.delivered;
          grid_totals.staleness_sum += at.staleness_sum;
          if (at.staleness_max > grid_totals.staleness_max) {
            grid_totals.staleness_max = at.staleness_max;
          }
          if (m == dist::DistMethod::kDistributedSouthwell) {
            ds_steps = std::to_string(r.steps_taken());
            ds_time = util::format_double(
                (r.model_time.empty() ? 0.0 : r.model_time.back()) * 1e3, 3);
          }
          csv.write_row(std::vector<std::string>{
              name, std::to_string(lat), std::to_string(stale), r.method,
              std::to_string(r.steps_taken()), std::to_string(at.epochs),
              util::format_double(
                  r.residual_norm.empty() ? 0.0 : r.residual_norm.back(), 9),
              util::format_double(
                  r.model_time.empty() ? 0.0 : r.model_time.back(), 9),
              std::to_string(at.delivered),
              std::to_string(at.staleness_sum),
              std::to_string(at.staleness_max)});
        }
        table.cell(ds_steps)
            .cell(ds_time)
            .cell(std::to_string(grid_totals.delivered))
            .cell(std::to_string(grid_totals.staleness_max));
        std::cerr << "  [" << name << " L=" << lat << " S=" << stale
                  << "] done\n";
      }
    }
  }
  std::cout << "Final ||r||_2 after 50 relax-on-arrival steps; delivery "
               "columns are totals over the four methods at each grid "
               "point.\n\n";
  table.print(std::cout);
  std::cout << "\nCSV: " << csv.path() << "\n";
  return 0;
}

}  // namespace
}  // namespace dsouth::bench

int main(int argc, char** argv) { return dsouth::bench::run(argc, argv); }
