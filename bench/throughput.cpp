/// Multi-tenant serving throughput (DESIGN.md §14, docs/serving.md): B
/// independent systems — same sparsity, per-tenant initial guesses plus
/// seeded coefficient sweeps (sparse::make_tenant_variant) for every odd
/// tenant — served batched through ONE simulated runtime, for B in
/// {1, 4, 16, 64} per solver. The batch shares epochs, fences, and
/// physical messages (co-scheduled tenants staging to the same neighbor
/// in the same epoch ride one wire tenant frame), so the numbers to watch
/// are physical messages per solve and modeled seconds per solve against
/// the B-independent-runs baseline, which this bench also runs.
///
/// Everything except wall clock (the solves/sec column) is deterministic
/// and bit-identical across execution backends: per-tenant trajectories
/// equal their solo runs (tests/test_batch.cpp pins this bitwise), and
/// message counts are pure functions of the staged traffic.
///
/// THE GATE: this binary exits nonzero unless batched Distributed
/// Southwell at B = `-gate-batch` (default 16) beats B independent runs
/// on BOTH physical messages and modeled seconds. The `-json` record
/// feeds the CI throughput gate (tools/bench_compare.py vs the committed
/// BENCH_throughput.json baseline); each batch record carries the shared-
/// wire totals, per-tenant logical shares, and the solo aggregate as
/// `solo_msgs_total`.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sparse/proxy_suite.hpp"
#include "support/bench_support.hpp"
#include "util/rng.hpp"

namespace dsouth::bench {
namespace {

/// Deterministic seed namespace for tenant sweeps ("SERVE").
constexpr std::uint64_t kTenantSeedBase = 0x5345525645ULL;

/// Per-tenant initial guess in the paper's §4.2 setup: random, scaled so
/// ‖r⁰‖₂ == 1 against THIS tenant's matrix (b is all zeros everywhere).
std::vector<value_t> tenant_x0(const CsrMatrix& a,
                               std::span<const value_t> b,
                               std::uint64_t seed) {
  const auto n = static_cast<std::size_t>(a.rows());
  std::vector<value_t> x(n);
  util::Rng rng(seed);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  std::vector<value_t> r(n);
  a.residual(b, x, r);
  double norm2 = 0.0;
  for (value_t v : r) norm2 += v * v;
  const double norm = std::sqrt(norm2);
  DSOUTH_CHECK(norm > 0.0);
  for (auto& v : x) v /= norm;
  return x;
}

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto procs = static_cast<index_t>(args.get_int_or("procs", 16));
  const double size_factor = args.get_double_or("size_factor", 0.05);
  const std::string name = args.get_or("matrix", "ldoorp");
  const double sweep = args.get_double_or("sweep", 0.25);
  const auto batch_sizes = args.get_int_list_or("batch", {1, 4, 16, 64});
  DSOUTH_CHECK_MSG(!batch_sizes.empty(), "-batch needs at least one size");
  for (auto b : batch_sizes) DSOUTH_CHECK_MSG(b >= 1, "batch sizes must be >= 1");
  const auto max_b = static_cast<std::size_t>(
      *std::max_element(batch_sizes.begin(), batch_sizes.end()));
  // The gate compares DS at one batch size against that many independent
  // runs. Default 16 (the CI contract); a custom -batch list without 16
  // gates at its largest size >= 2 instead. An explicit -gate-batch must
  // be in the list; a list with no size >= 2 has nothing to gate.
  std::size_t gate_b = 0;
  if (args.get("gate-batch")) {
    gate_b = static_cast<std::size_t>(args.get_int_or("gate-batch", 16));
    DSOUTH_CHECK_MSG(std::find(batch_sizes.begin(), batch_sizes.end(),
                               static_cast<std::int64_t>(gate_b)) !=
                             batch_sizes.end() &&
                         gate_b >= 2,
                     "-gate-batch must be one of the -batch sizes and >= 2");
  } else {
    for (auto b : batch_sizes) {
      const auto bu = static_cast<std::size_t>(b);
      if (bu == 16) gate_b = 16;
      if (gate_b != 16 && bu >= 2 && bu > gate_b) gate_b = bu;
    }
  }

  TraceCapture capture(args);
  BenchRecorder record("throughput", args);

  auto opt = default_run_options();
  apply_backend_args(args, opt);
  capture.apply(opt);

  print_header(
      "Multi-tenant serving throughput — batched vs B independent runs",
      "DESIGN.md §14 batched-serving study (no paper artifact; the paper "
      "solves one system at a time)",
      "four solvers x B in {" + [&] {
        std::string s;
        for (auto b : batch_sizes) s += (s.empty() ? "" : ", ") + std::to_string(b);
        return s;
      }() + "} tenants, P=" + std::to_string(procs) +
          " simulated ranks, 50 parallel steps");

  // Tenant materials, built once for the largest B: even tenants share the
  // base matrix (the different-initial-state case), odd tenants get a
  // seeded coefficient sweep on the same sparsity — so every layout shares
  // the partition and communication structure by construction.
  auto problem = make_dist_problem(name, size_factor);
  auto part = partition_for(problem.a, procs);
  dist::DistLayout base_layout(problem.a, part);
  std::vector<std::unique_ptr<CsrMatrix>> variant_mats;
  std::vector<std::unique_ptr<dist::DistLayout>> variant_layouts;
  std::vector<const dist::DistLayout*> layouts(max_b, &base_layout);
  std::vector<const CsrMatrix*> mats(max_b, &problem.a);
  std::vector<std::vector<value_t>> x0s(max_b);
  x0s[0] = problem.x0;
  for (std::size_t t = 1; t < max_b; ++t) {
    if (t % 2 == 1) {
      variant_mats.push_back(std::make_unique<CsrMatrix>(
          sparse::make_tenant_variant(problem.a, kTenantSeedBase + t, sweep)));
      variant_layouts.push_back(
          std::make_unique<dist::DistLayout>(*variant_mats.back(), part));
      mats[t] = variant_mats.back().get();
      layouts[t] = variant_layouts.back().get();
    }
    x0s[t] = tenant_x0(*mats[t], problem.b, kTenantSeedBase * 31 + t);
  }
  std::vector<dist::TenantSpec> specs(max_b);
  for (std::size_t t = 0; t < max_b; ++t) {
    specs[t] = dist::TenantSpec{problem.b, x0s[t], 0.0};
  }
  std::cerr << "  [" << name << "] n=" << problem.a.rows() << ", " << max_b
            << " tenants built\n";

  util::Table table({"Method", "B", "steps", "msgs/solve", "solo msgs",
                     "msg redux", "model s/solve", "solo s", "solves/s"});
  util::CsvWriter csv(
      csv_path("throughput.csv"),
      {"matrix", "method", "batch", "procs", "steps", "msgs_total",
       "solo_msgs_total", "bytes_total", "modeled_time", "solo_modeled_time",
       "final_residual", "wall_seconds", "solves_per_sec"});

  const dist::DistMethod methods[4] = {
      dist::DistMethod::kBlockJacobi, dist::DistMethod::kMulticolorBlockGs,
      dist::DistMethod::kParallelSouthwell,
      dist::DistMethod::kDistributedSouthwell};

  bool gate_ok = true;
  std::string gate_report;
  for (auto m : methods) {
    // The B-independent-runs baseline, once per tenant: prefix sums give
    // the solo aggregate for every batch size (tenant t's system does not
    // depend on B).
    std::vector<std::uint64_t> solo_msgs(max_b);
    std::vector<double> solo_model(max_b);
    for (std::size_t t = 0; t < max_b; ++t) {
      auto r = dist::run_distributed(m, *layouts[t], problem.b, x0s[t], opt);
      solo_msgs[t] = r.comm_totals.msgs;
      solo_model[t] = r.model_time.empty() ? 0.0 : r.model_time.back();
    }
    for (auto b_signed : batch_sizes) {
      const auto b = static_cast<std::size_t>(b_signed);
      auto br = dist::run_distributed_batch(
          m, std::span<const dist::DistLayout* const>(layouts.data(), b),
          std::span<const dist::TenantSpec>(specs.data(), b), opt);
      std::uint64_t solo_msg_sum = 0;
      double solo_model_sum = 0.0;
      for (std::size_t t = 0; t < b; ++t) {
        solo_msg_sum += solo_msgs[t];
        solo_model_sum += solo_model[t];
      }
      const double bd = static_cast<double>(b);
      const double redux =
          solo_msg_sum == 0
              ? 0.0
              : 100.0 * (1.0 - static_cast<double>(br.comm_totals.msgs) /
                                   static_cast<double>(solo_msg_sum));
      const double solves_per_sec =
          br.wall_seconds > 0.0 ? bd / br.wall_seconds : 0.0;
      double worst = 0.0;
      for (const auto& tr : br.tenants) worst = std::max(worst, tr.final_residual);
      const std::string label =
          name + " " + dist::method_abbrev(m) + " B=" + std::to_string(b);
      capture.add_log(label, br.trace_log);
      record.add_batch_run(label, name, br,
                           {{"solo_msgs_total", solo_msg_sum}});
      table.row()
          .cell(br.method)
          .cell(std::to_string(b))
          .cell(std::to_string(br.steps_taken))
          .cell(util::format_double(
              static_cast<double>(br.comm_totals.msgs) / bd, 1))
          .cell(util::format_double(static_cast<double>(solo_msg_sum) / bd, 1))
          .cell(util::format_double(redux, 1) + "%")
          .cell(util::format_double(br.model_time / bd, 6))
          .cell(util::format_double(solo_model_sum / bd, 6))
          .cell(util::format_double(solves_per_sec, 1));
      csv.write_row(std::vector<std::string>{
          name, br.method, std::to_string(b), std::to_string(br.num_ranks),
          std::to_string(br.steps_taken), std::to_string(br.comm_totals.msgs),
          std::to_string(solo_msg_sum), std::to_string(br.comm_totals.bytes),
          util::format_double(br.model_time, 9),
          util::format_double(solo_model_sum, 9),
          util::format_double(worst, 9),
          util::format_double(br.wall_seconds, 6),
          util::format_double(solves_per_sec, 3)});
      if (m == dist::DistMethod::kDistributedSouthwell && b == gate_b) {
        const bool msgs_win = br.comm_totals.msgs < solo_msg_sum;
        const bool model_win = br.model_time < solo_model_sum;
        gate_ok = msgs_win && model_win;
        gate_report =
            "DS B=" + std::to_string(b) + ": " +
            std::to_string(br.comm_totals.msgs) + " batched vs " +
            std::to_string(solo_msg_sum) + " solo physical msgs, " +
            util::format_double(br.model_time, 6) + " vs " +
            util::format_double(solo_model_sum, 6) + " modeled s";
      }
    }
    std::cerr << "  [" << dist::method_abbrev(m) << "] done\n";
  }

  std::cout << "Per-solve columns divide batch totals by B; \"solo\" columns "
               "are the B-independent-runs baseline (same tenants, one "
               "runtime each). Everything except solves/s is deterministic.\n\n";
  table.print(std::cout);
  std::cout << "\nCSV: " << csv.path() << "\n";
  if (gate_report.empty()) {
    std::cout << "GATE SKIPPED — no batch size >= 2 requested\n";
  } else {
    std::cout << (gate_ok ? "GATE PASS — " : "GATE FAIL — ") << gate_report
              << "\n";
  }
  return gate_ok ? 0 : 1;
}

}  // namespace
}  // namespace dsouth::bench

int main(int argc, char** argv) { return dsouth::bench::run(argc, argv); }
