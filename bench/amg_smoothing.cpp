/// Extension bench: the Figure-6 smoothing question on *unstructured*
/// matrices. The paper's multigrid study uses a structured 2-D Poisson
/// grid; with the library's smoothed-aggregation AMG the same comparison —
/// Gauss–Seidel vs budget-exact Distributed Southwell smoothing — runs on
/// the FEM proxy matrices where no geometric hierarchy exists.

#include <iostream>
#include <sstream>

#include "multigrid/amg.hpp"
#include "sparse/proxy_suite.hpp"
#include "sparse/vec.hpp"
#include "support/bench_support.hpp"
#include "util/rng.hpp"

namespace dsouth::bench {
namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const int cycles = static_cast<int>(args.get_int_or("cycles", 9));
  const double size_factor = args.get_double_or("size_factor", 0.15);
  std::vector<std::string> matrices{"af_5_k101p", "Serenap", "msdoorp",
                                    "Fault_639p"};
  if (args.has("matrices")) matrices = select_matrices(args);

  print_header(
      "AMG smoothing — the Figure-6 question on unstructured matrices",
      "extension of paper Figure 6 (no direct artifact)",
      "smoothed-aggregation AMG V(1,1), " + std::to_string(cycles) +
          " cycles, random RHS");

  util::Table table({"Matrix", "rows", "levels", "op cx", "GS 1 sweep",
                     "DistSW 1/2 sweep", "DistSW 1 sweep"});
  util::CsvWriter csv(csv_path("amg_smoothing.csv"),
                      {"matrix", "smoother", "rel_residual"});
  for (const auto& name : matrices) {
    auto proxy = sparse::make_proxy(name, size_factor);
    multigrid::AmgHierarchy amg(proxy.a);
    util::Rng rng(0xA3136ULL);
    std::vector<value_t> b(static_cast<std::size_t>(proxy.a.rows()));
    rng.fill_uniform(b, -1.0, 1.0);

    table.row().cell(name);
    table.cell(static_cast<std::size_t>(proxy.a.rows()));
    table.cell(static_cast<std::size_t>(amg.num_levels()));
    table.cell(amg.operator_complexity(), 2);
    struct Config {
      const char* label;
      std::unique_ptr<multigrid::Smoother> smoother;
    };
    Config configs[3];
    configs[0] = {"GS 1 sweep", multigrid::make_gauss_seidel_smoother(1)};
    configs[1] = {"DistSW 1/2 sweep",
                  multigrid::make_distributed_southwell_smoother(0.5)};
    configs[2] = {"DistSW 1 sweep",
                  multigrid::make_distributed_southwell_smoother(1.0)};
    for (auto& cfg : configs) {
      std::vector<value_t> x(b.size(), 0.0);
      const double rel =
          amg.solve_relative_residual(b, x, *cfg.smoother, cycles);
      std::ostringstream os;
      os.setf(std::ios::scientific);
      os.precision(3);
      os << rel;
      table.cell(os.str());
      csv.write_row(std::vector<std::string>{name, cfg.label, os.str()});
    }
    std::cerr << "  [" << name << "] done\n";
  }
  table.print(std::cout);
  std::cout << "\n'op cx' = operator complexity (Σ level nnz / fine nnz). "
               "The Figure-6 ordering — DistSW 1 sweep below GS below "
               "DistSW 1/2 sweep — should persist off the structured "
               "grid.\nCSV: "
            << csv.path() << "\n";
  return 0;
}

}  // namespace
}  // namespace dsouth::bench

int main(int argc, char** argv) { return dsouth::bench::run(argc, argv); }
