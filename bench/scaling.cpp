/// Host-side P-scaling bench (ROADMAP: "push P into the hundreds"). Where
/// the paper's figures sweep *modeled* time, this bench sweeps the
/// simulated rank count P on one Section-5 proxy matrix and measures what
/// the **host** pays per run: solve-loop wall time, trace-analysis wall
/// time, and host allocations (src/prof alloc hook) — the curves that
/// expose superlinear-in-P costs in the Runtime/analysis layers long
/// before they dominate a laptop run. Two products:
///
///  * advisory curves (bench_results/scaling_host.csv + ascii plots):
///    solve wall-seconds vs P, analysis wall-seconds vs P, analysis
///    allocations/bytes vs P;
///  * a deterministic record (-json, schema dsouth.bench_record) whose
///    per-run `allocs_per_step` field gates the allocation-free warm
///    steady state in CI. It is measured on a dedicated sequential,
///    untraced, unprofiled solver window, so it is bit-identical whatever
///    `-backend` the instrumented run used.
///
/// Supports the shared `-trace/-metrics/-prof/-prof-record/-json` capture
/// flags; tracing is force-enabled internally because the analysis sweep
/// needs the event log (this never changes deterministic results).

#include <cstdint>
#include <iostream>

#include "analysis/render.hpp"
#include "prof/prof.hpp"
#include "simmpi/execution.hpp"
#include "support/bench_support.hpp"
#include "util/ascii_plot.hpp"
#include "util/stopwatch.hpp"

namespace dsouth::bench {
namespace {

/// Deterministic allocations per warm solver step: warm up, then count
/// operator-new calls across a measured window of direct step() calls.
/// Sequential backend, no tracer, no profiler — the count is a pure
/// function of the solver code path (expected 0: the warm steady state is
/// allocation-free, tests/test_wire.cpp), so the CI gate can require it
/// bit-exactly even when the instrumented run above used `-backend
/// threads`. Returns 0 when the alloc hook is not linked in.
std::uint64_t measure_allocs_per_step(const DistProblem& problem,
                                      const graph::Partition& part,
                                      const dist::DistRunOptions& base) {
  dist::DistLayout layout(problem.a, part);
  dist::DistRunOptions opt = base;
  simmpi::Runtime rt(layout.num_ranks(), opt.machine, opt.delivery);
  auto backend = simmpi::make_backend(simmpi::BackendKind::kSequential, 0);
  auto solver =
      dist::make_dist_solver(dist::DistMethod::kDistributedSouthwell, layout,
                             rt, problem.b, problem.x0, opt);
  solver->set_backend(*backend);
  // DS's active and correction sets vary step to step, so pooled buffers
  // keep growing for tens of steps (tests/test_wire.cpp warms 60); warm
  // long enough that the window sees the allocation-free steady state.
  constexpr int kWarmupSteps = 60;
  constexpr std::uint64_t kMeasuredSteps = 10;
  for (int i = 0; i < kWarmupSteps; ++i) solver->step();
  const std::uint64_t before = prof::alloc_hook::allocations();
  for (std::uint64_t i = 0; i < kMeasuredSteps; ++i) solver->step();
  return (prof::alloc_hook::allocations() - before) / kMeasuredSteps;
}

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const std::string matrix = args.get_or("matrix", "bone010p");
  const double size_factor = args.get_double_or("size_factor", 1.0);
  auto procs = args.get_int_list_or("procs", {16, 32, 64, 128, 256});
  const auto analysis_reps =
      static_cast<int>(args.get_int_or("analysis-reps", 5));

  auto base_opt = default_run_options();
  apply_backend_args(args, base_opt);
  base_opt.max_parallel_steps = static_cast<index_t>(
      args.get_int_or("steps", base_opt.max_parallel_steps));
  // Declared before the TraceCapture so the capture's destructor can still
  // reach the profilers when interleaving the Chrome export.
  ProfCapture profs("scaling", args);
  TraceCapture capture(args);
  capture.set_prof_source(&profs);
  capture.apply(base_opt);
  base_opt.trace.enabled = true;  // the analysis sweep needs the event log
  BenchRecorder record("scaling", args);

  print_header(
      "Host scaling — wall time and allocations vs P",
      "no paper artifact (host-cost observability; docs/observability.md)",
      "DS on " + matrix + ", P in {16..256}, " +
          std::to_string(base_opt.max_parallel_steps) + " parallel steps");

  auto problem = make_dist_problem(matrix, size_factor);
  util::CsvWriter csv(
      csv_path("scaling_host.csv"),
      {"matrix", "procs", "method", "steps", "solve_wall_seconds",
       "analysis_seconds", "analysis_allocs", "analysis_bytes",
       "allocs_per_step", "msgs_total", "backend", "threads"});
  util::Table table({"P", "solve s", "analysis s", "analysis allocs",
                     "analysis KB", "allocs/step"});
  std::vector<util::PlotSeries> wall_plot(2);
  wall_plot[0].name = "solve";
  wall_plot[1].name = "analysis";
  std::vector<util::PlotSeries> alloc_plot(1);
  alloc_plot[0].name = "analysis allocs";

  analysis::AnalyzeOptions aopt;
  aopt.model = base_opt.machine;

  for (auto p64 : procs) {
    const auto p = static_cast<index_t>(p64);
    auto part = partition_for(problem.a, p);
    dist::DistLayout layout(problem.a, part);
    auto opt = base_opt;
    profs.apply(opt, static_cast<int>(p));
    auto res = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                     layout, problem.b, problem.x0, opt);
    const std::string label = matrix + " P=" + std::to_string(p) + " DS";

    // Trace-analysis cost at this P (averaged over -analysis-reps): wall
    // seconds plus host allocations, the two curves a superlinear comm-
    // matrix build shows up in first.
    double analysis_seconds = 0.0;
    std::uint64_t analysis_allocs = 0;
    std::uint64_t analysis_bytes = 0;
    std::size_t hot_pairs = 0;
    {
      const auto prof_analysis = profs.analysis_scope();
      const auto runt = analysis::from_trace_log(*res.trace_log, label);
      const std::uint64_t allocs0 = prof::alloc_hook::allocations();
      const std::uint64_t bytes0 = prof::alloc_hook::bytes();
      util::Stopwatch sw;
      for (int rep = 0; rep < analysis_reps; ++rep) {
        hot_pairs = analysis::analyze_run(runt, aopt).comm.hot_pairs.size();
      }
      const auto reps = static_cast<std::uint64_t>(analysis_reps);
      analysis_seconds = sw.seconds() / static_cast<double>(reps);
      analysis_allocs = (prof::alloc_hook::allocations() - allocs0) / reps;
      analysis_bytes = (prof::alloc_hook::bytes() - bytes0) / reps;
    }
    (void)hot_pairs;

    const std::uint64_t allocs_per_step =
        measure_allocs_per_step(problem, part, base_opt);

    capture.add_run(label, res);
    profs.add_run(label);
    record.add_run(label, matrix, res,
                   {{"allocs_per_step", allocs_per_step}});

    table.row()
        .cell(static_cast<std::size_t>(p))
        .cell(util::format_double(res.wall_seconds, 4))
        .cell(util::format_double(analysis_seconds, 5))
        .cell(static_cast<std::size_t>(analysis_allocs))
        .cell(util::format_double(
            static_cast<double>(analysis_bytes) / 1024.0, 1))
        .cell(static_cast<std::size_t>(allocs_per_step));
    csv.write_row(std::vector<std::string>{
        matrix, std::to_string(p), "DistributedSouthwell",
        std::to_string(res.steps_taken()),
        util::format_double(res.wall_seconds, 6),
        util::format_double(analysis_seconds, 7),
        std::to_string(analysis_allocs), std::to_string(analysis_bytes),
        std::to_string(allocs_per_step),
        std::to_string(res.comm_totals.msgs), res.backend,
        std::to_string(res.num_threads)});
    const auto pd = static_cast<double>(p);
    wall_plot[0].x.push_back(pd);
    wall_plot[0].y.push_back(res.wall_seconds);
    wall_plot[1].x.push_back(pd);
    wall_plot[1].y.push_back(analysis_seconds);
    alloc_plot[0].x.push_back(pd);
    alloc_plot[0].y.push_back(static_cast<double>(analysis_allocs));
    std::cerr << "  [" << matrix << " P=" << p << "] done\n";
  }
  table.print(std::cout);
  if (!prof::alloc_hook::available()) {
    std::cout << "(alloc hook not linked: allocation columns are 0)\n";
  }

  util::PlotOptions popts;
  popts.height = 12;
  popts.log_x = true;
  popts.x_label = "P (log)";
  popts.y_label = "host wall seconds";
  util::render_plot(std::cout, wall_plot, popts);
  popts.y_label = "analysis allocations";
  util::render_plot(std::cout, alloc_plot, popts);
  std::cout << "CSV: " << csv.path() << "\n";
  return 0;
}

}  // namespace
}  // namespace dsouth::bench

int main(int argc, char** argv) { return dsouth::bench::run(argc, argv); }
