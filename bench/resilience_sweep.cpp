/// Resilience sweep (docs/resilience.md): drop-rate × solver grid under
/// deterministic fault injection (src/faults) with solver-side recovery
/// enabled. For each matrix and each message drop probability, runs all
/// four distributed solvers for 50 parallel steps with sequence-numbered
/// envelopes, duplicate/stale rejection and periodic full-state refresh,
/// plus the observer-side divergence watchdog — and reports the final
/// residual, the injected-fault totals (from CommStats) and the recovery
/// totals (from the solver's resilient receive path).
///
/// Everything reported except wall clock is deterministic: fault draws are
/// stateless hashes of (seed, epoch, src, dst, seq), so the whole grid is
/// bit-identical across execution backends. The `-json` record feeds the
/// CI fault-matrix gate (tools/bench_compare.py vs the committed
/// BENCH_resilience.json baseline).

#include <iostream>
#include <sstream>

#include "support/bench_support.hpp"

namespace dsouth::bench {
namespace {

std::vector<double> parse_rates(const util::ArgParser& args) {
  const std::string spec = args.get_or("drop-rates", "0,0.01,0.05");
  std::vector<double> rates;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const double r = std::stod(item);
    DSOUTH_CHECK_MSG(r >= 0.0 && r <= 1.0,
                     "-drop-rates entries must be in [0, 1]");
    rates.push_back(r);
  }
  DSOUTH_CHECK_MSG(!rates.empty(), "-drop-rates must name at least one rate");
  return rates;
}

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto procs = static_cast<index_t>(args.get_int_or("procs", 16));
  const double size_factor = args.get_double_or("size_factor", 1.0);
  const auto rates = parse_rates(args);
  // Companion fault probabilities, applied at every nonzero grid point so
  // the sweep exercises the full recovery path (dedup, corrupt-reject,
  // refresh), not just loss.
  const double dup_prob = args.get_double_or("dup-prob", 0.005);
  const double corrupt_prob = args.get_double_or("corrupt-prob", 0.005);
  const double truncate_prob = args.get_double_or("truncate-prob", 0.002);
  const auto refresh =
      static_cast<index_t>(args.get_int_or("refresh", 8));
  const bool resilience = !args.has("no-resilience");
  // Stall × async coupling: `-stall-epochs K` (default 0 = off) freezes
  // `-stall-rank`'s outgoing traffic for K epochs starting at
  // `-stall-first`, at EVERY grid point. Under bulk-synchronous delivery
  // the held messages land together at the window-closing fence; under
  // `-async` they additionally ride the event-driven latency draws, so the
  // two delay sources compose — the docs/resilience.md stall-recovery
  // study (EXPERIMENTS.md records the grid).
  const int stall_rank = static_cast<int>(args.get_int_or("stall-rank", 1));
  const auto stall_first =
      static_cast<std::uint64_t>(args.get_int_or("stall-first", 10));
  const auto stall_epochs =
      static_cast<std::uint64_t>(args.get_int_or("stall-epochs", 0));
  const std::string stall_label =
      stall_epochs > 0 ? "r" + std::to_string(stall_rank) + "@" +
                             std::to_string(stall_first) + "+" +
                             std::to_string(stall_epochs)
                       : "-";
  std::vector<std::string> matrices;
  if (args.get("matrices")) {
    matrices = select_matrices(args);
  } else {
    matrices = {"ldoorp"};  // one proxy keeps the CI smoke run fast
  }
  TraceCapture capture(args);
  BenchRecorder record("resilience", args);

  print_header(
      "Resilience sweep — solvers under deterministic fault injection",
      "docs/resilience.md robustness study (no paper artifact; the paper "
      "assumes a reliable fabric)",
      "drop-rate x solver grid, P=" + std::to_string(procs) +
          " simulated ranks, 50 parallel steps, sequence-numbered "
          "envelopes + refresh every " + std::to_string(refresh) +
          " steps" + (resilience ? "" : " (recovery DISABLED)"));

  util::Table table({"Matrix", "drop", "stall", "r:BJ", "r:MCBGS", "r:PS",
                     "r:DS", "dropped", "dup", "corrupt", "rej:c", "rej:s",
                     "refresh", "watchdog"});
  util::CsvWriter csv(csv_path("resilience_sweep.csv"),
                      {"matrix", "drop_rate", "stall", "method", "steps",
                       "final_residual", "msgs_dropped", "msgs_duplicated",
                       "msgs_corrupted", "rejected_corrupt", "rejected_stale",
                       "refreshes_sent", "watchdog_fired",
                       "watchdog_reason"});

  const dist::DistMethod methods[4] = {
      dist::DistMethod::kBlockJacobi, dist::DistMethod::kMulticolorBlockGs,
      dist::DistMethod::kParallelSouthwell,
      dist::DistMethod::kDistributedSouthwell};

  for (const auto& name : matrices) {
    auto problem = make_dist_problem(name, size_factor);
    auto part = partition_for(problem.a, procs);
    dist::DistLayout layout(problem.a, part);
    for (double rate : rates) {
      auto opt = default_run_options();
      apply_backend_args(args, opt);
      capture.apply(opt);
      opt.resilience.enabled = resilience;
      opt.resilience.refresh_period = refresh;
      opt.watchdog.enabled = true;
      if (rate > 0.0) {
        opt.faults.defaults.drop_probability = rate;
        opt.faults.defaults.duplicate_probability = dup_prob;
        opt.faults.defaults.corrupt_probability = corrupt_prob;
        opt.faults.defaults.truncate_probability = truncate_prob;
      }
      if (stall_epochs > 0) {
        faults::Stall st;
        st.rank = stall_rank;
        st.first_epoch = stall_first;
        st.epochs = stall_epochs;
        opt.faults.stalls.push_back(st);
      }
      const std::string rate_label = util::format_double(rate, 3);
      table.row().cell(name).cell(rate_label).cell(stall_label);
      dist::FaultSummary grid_totals;  // summed over the four methods
      bool any_watchdog = false;
      std::string watchdog_note;
      for (auto m : methods) {
        auto r = dist::run_distributed(m, layout, problem.b, problem.x0, opt);
        const std::string label =
            name + " drop=" + rate_label +
            (stall_epochs > 0 ? " stall=" + stall_label : "") + " " +
            dist::method_abbrev(m);
        capture.add_run(label, r);
        record.add_run(label, name, r);
        table.cell(util::format_double(
            r.residual_norm.empty() ? 0.0 : r.residual_norm.back(), 4));
        dist::FaultSummary fs;
        if (r.fault_summary) fs = *r.fault_summary;
        grid_totals.msgs_dropped += fs.msgs_dropped;
        grid_totals.msgs_duplicated += fs.msgs_duplicated;
        grid_totals.msgs_corrupted += fs.msgs_corrupted;
        grid_totals.rejected_corrupt += fs.rejected_corrupt;
        grid_totals.rejected_stale += fs.rejected_stale;
        grid_totals.refreshes_sent += fs.refreshes_sent;
        if (r.watchdog.fired) {
          any_watchdog = true;
          if (!watchdog_note.empty()) watchdog_note += "; ";
          watchdog_note += std::string(dist::method_abbrev(m)) + ": " +
                           r.watchdog.reason;
        }
        csv.write_row(std::vector<std::string>{
            name, rate_label, stall_label, r.method,
            std::to_string(r.steps_taken()),
            util::format_double(
                r.residual_norm.empty() ? 0.0 : r.residual_norm.back(), 9),
            std::to_string(fs.msgs_dropped),
            std::to_string(fs.msgs_duplicated),
            std::to_string(fs.msgs_corrupted),
            std::to_string(fs.rejected_corrupt),
            std::to_string(fs.rejected_stale),
            std::to_string(fs.refreshes_sent),
            r.watchdog.fired ? "1" : "0", r.watchdog.reason});
      }
      table.cell(std::to_string(grid_totals.msgs_dropped))
          .cell(std::to_string(grid_totals.msgs_duplicated))
          .cell(std::to_string(grid_totals.msgs_corrupted))
          .cell(std::to_string(grid_totals.rejected_corrupt))
          .cell(std::to_string(grid_totals.rejected_stale))
          .cell(std::to_string(grid_totals.refreshes_sent))
          .cell(any_watchdog ? watchdog_note : "-");
      std::cerr << "  [" << name << " drop=" << rate_label << "] done\n";
    }
  }
  std::cout << "Final ||r||_2 after 50 parallel steps; fault/recovery "
               "columns are totals over the four methods at each grid "
               "point.\n\n";
  table.print(std::cout);
  std::cout << "\nCSV: " << csv.path() << "\n";
  return 0;
}

}  // namespace
}  // namespace dsouth::bench

int main(int argc, char** argv) { return dsouth::bench::run(argc, argv); }
