/// Regenerates **Figure 8** of the paper: strong scaling — modeled
/// wall-clock time to reduce ‖r‖₂ to 0.1 as a function of the simulated
/// rank count P ∈ {32 … 8192}, for the six matrices of the paper's figure.
/// Shapes to reproduce: time initially falls with P then rises (compute
/// shrinks, communication grows), Block Jacobi is fastest *when it
/// converges* but drops out at larger P on most problems, and Distributed
/// Southwell beats Parallel Southwell nearly everywhere.

#include <iostream>

#include "support/bench_support.hpp"
#include "util/ascii_plot.hpp"

namespace dsouth::bench {
namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const double size_factor = args.get_double_or("size_factor", 1.0);
  const double target = args.get_double_or("target", 0.1);
  auto procs = args.get_int_list_or(
      "procs", {32, 64, 128, 256, 512, 1024, 2048, 4096, 8192});
  std::vector<std::string> matrices = scaling_figure_matrices();
  if (args.has("matrices")) matrices = select_matrices(args);

  auto base_opt = default_run_options();
  apply_backend_args(args, base_opt);
  TraceCapture capture(args);
  capture.apply(base_opt);
  BenchRecorder record("fig8", args);

  print_header("Figure 8 — strong scaling: model time to ||r||=0.1 vs P",
               "paper Figure 8",
               "P in {32..8192} simulated ranks, 50 parallel steps max");

  util::CsvWriter csv(csv_path("fig8_strong_scaling.csv"),
                      {"matrix", "procs", "method", "reached", "model_time",
                       "backend", "threads", "wall_seconds"});
  double total_wall = 0.0;
  std::string backend_used;
  int threads_used = 1;
  for (const auto& name : matrices) {
    auto problem = make_dist_problem(name, size_factor);
    std::cout << "--- " << name << " (model ms to target; † = not reached "
                                   "in 50 steps) ---\n";
    util::Table table({"P", "BJ", "PS", "DS"});
    std::vector<util::PlotSeries> plot(3);
    plot[0].name = "BJ";
    plot[1].name = "PS";
    plot[2].name = "DS";
    for (auto p64 : procs) {
      const auto p = static_cast<index_t>(p64);
      auto runs = run_three_methods(problem, p, base_opt);
      const dist::DistRunResult* results[3] = {&runs.bj, &runs.ps, &runs.ds};
      table.row().cell(static_cast<std::size_t>(p));
      for (int m = 0; m < 3; ++m) {
        const auto* r = results[m];
        capture.add_run(name + " P=" + std::to_string(p) + " " + r->method,
                        *r);
        record.add_run(name + " P=" + std::to_string(p) + " " + r->method,
                       name, *r);
        auto at = r->at_target(target);
        if (at) {
          plot[static_cast<std::size_t>(m)].x.push_back(
              static_cast<double>(p));
          plot[static_cast<std::size_t>(m)].y.push_back(at->model_time *
                                                        1e3);
        }
        table.cell(value_or_dagger(
            at ? std::optional<double>(at->model_time * 1e3) : std::nullopt,
            3));
        csv.write_row(std::vector<std::string>{
            name, std::to_string(p), r->method, at ? "1" : "0",
            at ? util::format_double(at->model_time, 9) : "", r->backend,
            std::to_string(r->num_threads),
            util::format_double(r->wall_seconds, 6)});
        total_wall += r->wall_seconds;
        backend_used = r->backend;
        threads_used = r->num_threads;
      }
      std::cerr << "  [" << name << " P=" << p << "] done\n";
    }
    table.print(std::cout);
    util::PlotOptions popts;
    popts.height = 12;
    popts.log_x = true;
    popts.x_label = "P (log)";
    popts.y_label = "model ms to 0.1 (log)";
    util::render_plot(std::cout, plot, popts);
    std::cout << "\n";
  }
  std::cout << "Backend: " << backend_used << " (" << threads_used
            << " thread" << (threads_used == 1 ? "" : "s")
            << "), total solve wall-clock "
            << util::format_double(total_wall, 3) << " s\n";
  std::cout << "CSV: " << csv.path() << "\n";
  return 0;
}

}  // namespace
}  // namespace dsouth::bench

int main(int argc, char** argv) { return dsouth::bench::run(argc, argv); }
