#pragma once

/// \file bench_support.hpp
/// Shared machinery for the reproduction benches (one binary per paper
/// table/figure — see DESIGN.md §4). Handles problem setup exactly as the
/// paper specifies (§4.2: b = 0, random x⁰ scaled so ‖r⁰‖₂ = 1, matrices
/// pre-scaled to unit diagonal by the proxy suite), partitioning, and
/// uniform table/CSV output.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dist/batch.hpp"
#include "dist/driver.hpp"
#include "graph/partition.hpp"
#include "prof/prof.hpp"
#include "sparse/csr.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace dsouth::bench {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

/// A distributed test problem in the paper's §4.2 setup.
struct DistProblem {
  std::string name;
  CsrMatrix a;
  std::vector<value_t> b;   ///< all zeros
  std::vector<value_t> x0;  ///< random, scaled so ‖r⁰‖₂ == 1
};

/// Build a proxy problem by name (see sparse/proxy_suite.hpp). The seed
/// feeds the random initial guess; the default matches the committed
/// EXPERIMENTS.md numbers.
DistProblem make_dist_problem(const std::string& proxy_name,
                              double size_factor = 1.0,
                              std::uint64_t seed = 0xD15717ULL);

/// Partition the matrix graph into `num_ranks` subdomains (our METIS
/// substitute, recursive bisection + FM).
graph::Partition partition_for(const CsrMatrix& a, index_t num_ranks);

/// The matrix list of Table 1 (all 14 proxies) or a user-selected subset
/// via `-matrices name1,name2`.
std::vector<std::string> select_matrices(const util::ArgParser& args);

/// The six matrices the paper uses in Figures 8 and 9.
const std::vector<std::string>& scaling_figure_matrices();

/// Ensure `bench_results/` exists and return "bench_results/<name>".
std::string csv_path(const std::string& name);

/// Format an optional metric: value or the paper's † for "not reached".
std::string value_or_dagger(const std::optional<double>& v, int precision);

/// Standard bench preamble: prints the bench title, what paper artifact it
/// regenerates, and the workload description.
void print_header(const std::string& title, const std::string& regenerates,
                  const std::string& workload);

/// Default run options shared by the distributed benches (50 parallel
/// steps, the calibrated machine model).
dist::DistRunOptions default_run_options();

/// Apply the shared `-backend sequential|threads` / `-threads N` /
/// `-coalesce` flags to `opt`. Results are bit-identical across backends
/// and coalescing modes; backends only change real wall-clock time, and
/// `-coalesce` only lowers the physical message counts (wire/comm_plan.hpp)
/// while the logical counts stay fixed.
///
/// Also applies the weak-delivery knobs `-delay-prob P` (per-message delay
/// probability, default 0 = faithful bulk-synchronous delivery) and
/// `-max-delay K` (delays are 1..K extra fences, default 2), and the
/// event-driven delivery knobs `-async` (switch to the EventDriven policy
/// and relax-on-arrival solver stepping), `-staleness S` (runtime-enforced
/// staleness bound, default 4; 0 reduces to bulk-synchronous timing),
/// `-min-latency`/`-max-latency` (per-message latency window in epochs,
/// defaults 0/3) and `-async-seed`. These DO change the trajectory — they
/// are for robustness/asynchrony studies, not for the bit-identity
/// comparisons above (though each async configuration is itself
/// bit-identical across backends).
///
/// Node-aware topology knobs: `-ranks-per-node R` (consecutive blocks of R
/// ranks per node), `-nodes N` (N equal blocks; ranks-per-node wins when
/// both appear) and `-no-node-route` (tier classification only — the
/// "direct" baseline the node-aware bench compares leader routing
/// against). Like `-coalesce`, these never change solver trajectories:
/// the topology only re-prices the simulated wire (DESIGN.md §13).
void apply_backend_args(const util::ArgParser& args, dist::DistRunOptions& opt);

/// Shared `-prof` / `-prof-record [<path>]` flags: host-side wall-clock
/// profiling (src/prof, docs/observability.md). `-prof` creates one
/// `prof::Profiler` per captured run and attaches it via `apply()`;
/// `-prof-record` additionally writes every run's phase aggregates,
/// log2-ns histograms, and allocation-window counters as one JSON document
/// (schema "dsouth.prof_record"; default path
/// `bench_results/PROF_<bench>.json`) and implies `-prof`. Everything
/// recorded is *advisory* host time: attaching a profiler never changes
/// solver iterates, traces, or deterministic bench fields.
///
/// Per-run protocol: `apply(opt, P)` before the run (fresh profiler),
/// optionally `analysis_scope()` around post-run trace analysis, then
/// `add_run(label)` to file the profiler under the run's label. A
/// TraceCapture can interleave the captured spans into its Chrome export
/// and append a "prof" section to its metrics document via
/// `set_prof_source` — declare the ProfCapture *before* the TraceCapture
/// so it is still alive when the capture's destructor writes.
class ProfCapture {
 public:
  ProfCapture(std::string bench_name, const util::ArgParser& args);
  ~ProfCapture();  ///< writes the record file (best effort; logs failures)

  bool enabled() const { return enabled_; }
  /// Create a fresh profiler for the run about to execute and attach it to
  /// `opt` (no-op when disabled). `num_ranks` must match the run's layout.
  void apply(dist::DistRunOptions& opt, int num_ranks);
  /// kAnalysis span on the current profiler's runtime lane (inert when
  /// disabled). Bind to a local: `const auto sc = profs.analysis_scope();`
  prof::ScopedPhase analysis_scope() const;
  /// File the current profiler under `label` (no-op when disabled).
  void add_run(const std::string& label);
  /// Profiler captured under `label`, or null.
  const prof::Profiler* find(const std::string& label) const;
  /// Write the prof record now (idempotent; the destructor calls it).
  void write();

 private:
  struct Captured {
    std::string label;
    std::unique_ptr<prof::Profiler> prof;
  };
  std::string bench_name_;
  std::string record_path_;  ///< "" = no record file
  bool enabled_ = false;
  bool written_ = false;
  std::unique_ptr<prof::Profiler> current_;
  std::vector<Captured> runs_;
};

/// Shared `-trace <path>` / `-metrics <path>` flags: captures the trace log
/// of every run a bench performs and writes the files on destruction
/// (docs/observability.md).
///
/// `-trace`: path ending in `.jsonl` selects JSON Lines (one
/// header/event/metric object per line, one header per captured run); any
/// other extension selects Chrome trace_event JSON, loadable in Perfetto or
/// chrome://tracing, with one "process" per captured run.
///
/// `-metrics`: writes just the end-of-run MetricsRegistry values (no event
/// stream) as one JSON document — schema "dsouth.metrics", one entry per
/// run with every counter/gauge's total and per-rank values. Either flag
/// alone enables tracing via `apply()`; with neither, the capture is inert.
class TraceCapture {
 public:
  explicit TraceCapture(const util::ArgParser& args);
  ~TraceCapture();  ///< writes the files (best effort; logs failures)

  bool enabled() const { return !path_.empty() || !metrics_path_.empty(); }
  /// Enable tracing in `opt` when either flag was given (no-op otherwise).
  void apply(dist::DistRunOptions& opt) const;
  /// Capture one finished run under `label` (e.g. "fig8 ldoorp P=64 DS").
  /// Runs without a trace log (tracing off) are ignored.
  void add_run(const std::string& label, const dist::DistRunResult& result);
  /// Capture a merged trace log directly — the batched-run path
  /// (bench/throughput), where there is no DistRunResult to hand over.
  /// Null logs (tracing off) are ignored.
  void add_log(const std::string& label,
               std::shared_ptr<const trace::TraceLog> log);
  /// Interleave host-profiler spans from `profs` into the Chrome export
  /// (extra "host:" threads per run) and append a "prof" section to the
  /// metrics document. Runs are matched by label; `profs` must outlive
  /// this capture. JSONL output is unaffected (the prof record carries
  /// the same data there).
  void set_prof_source(const ProfCapture* profs) { profs_ = profs; }
  /// Write the capture file(s) now (idempotent; the destructor calls it).
  void write();

 private:
  struct Captured {
    std::string label;
    std::shared_ptr<const trace::TraceLog> log;
  };
  std::string path_;          ///< -trace target ("" = off)
  std::string metrics_path_;  ///< -metrics target ("" = off)
  bool jsonl_ = false;
  bool written_ = false;
  const ProfCapture* profs_ = nullptr;
  std::vector<Captured> runs_;
};

/// Shared `-json [<path>]` flag: machine-readable bench records for the
/// perf-regression gate (tools/bench_compare.py). Each captured run adds
/// one record — config plus the *deterministic* results (steps, modeled
/// time, CommStats totals, final residual; bit-identical across execution
/// backends) and the advisory wall clock — and destruction writes one
/// versioned JSON document (schema "dsouth.bench_record"). With no path
/// the file is `bench_results/BENCH_<bench>.json`; without `-json` the
/// recorder is inert.
class BenchRecorder {
 public:
  BenchRecorder(std::string bench_name, const util::ArgParser& args);
  ~BenchRecorder();  ///< writes the file (best effort; logs failures)

  bool enabled() const { return !path_.empty(); }
  /// Record one finished run. `matrix` is the problem name ("" if n/a).
  /// `extra_deterministic` appends bench-specific integer fields to the
  /// record's deterministic block (bench/scaling's allocs-per-step gate);
  /// anything listed here MUST be bit-identical across execution backends,
  /// or bench_compare.py's gate will trip on a legitimate rerun.
  void add_run(const std::string& label, const std::string& matrix,
               const dist::DistRunResult& result,
               const std::vector<std::pair<std::string, std::uint64_t>>&
                   extra_deterministic = {});
  /// Record one finished batched multi-tenant run (dist/batch.hpp). The
  /// deterministic block mirrors add_run's — steps, modeled time, shared-
  /// wire CommStats totals, worst tenant final residual — plus the batch
  /// size, runtime epochs, rejected-frame count, and per-tenant
  /// `tenant_{records,doubles,steps}_<t>` fields (the tenant's logical
  /// share of the shared frames; bit-identical across backends).
  /// tools/bench_compare.py groups the tenant_* family into one summary
  /// row so B = 64 records stay readable.
  void add_batch_run(const std::string& label, const std::string& matrix,
                     const dist::BatchRunResult& result,
                     const std::vector<std::pair<std::string, std::uint64_t>>&
                         extra_deterministic = {});
  /// Write the record file now (idempotent; the destructor calls it).
  void write();

 private:
  std::string bench_name_;
  std::string path_;
  bool written_ = false;
  std::vector<std::string> records_;  ///< pre-rendered JSON objects
};

}  // namespace dsouth::bench

namespace dsouth::bench {

/// Results of running BJ, PS and DS on the same problem and partition
/// (the Tables 2-4 protocol).
struct MethodRuns {
  dist::DistRunResult bj, ps, ds;
};

/// Partition once, run all three methods.
MethodRuns run_three_methods(const DistProblem& p, index_t num_ranks,
                             const dist::DistRunOptions& opt);

}  // namespace dsouth::bench
