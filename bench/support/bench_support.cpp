#include "support/bench_support.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "graph/graph.hpp"
#include "sparse/proxy_suite.hpp"
#include "sparse/scaling.hpp"
#include "trace/export.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsouth::bench {

DistProblem make_dist_problem(const std::string& proxy_name,
                              double size_factor, std::uint64_t seed) {
  auto proxy = sparse::make_proxy(proxy_name, size_factor);
  DistProblem p;
  p.name = proxy_name;
  p.a = std::move(proxy.a);
  p.b.assign(static_cast<std::size_t>(p.a.rows()), 0.0);
  p.x0.resize(p.b.size());
  util::Rng rng(seed);
  rng.fill_uniform(p.x0, -1.0, 1.0);
  sparse::normalize_initial_residual(p.a, p.b, p.x0);
  return p;
}

graph::Partition partition_for(const CsrMatrix& a, index_t num_ranks) {
  auto g = graph::Graph::from_matrix_structure(a);
  return graph::partition_recursive_bisection(g, num_ranks);
}

std::vector<std::string> select_matrices(const util::ArgParser& args) {
  auto arg = args.get("matrices");
  if (!arg || arg->empty()) return sparse::proxy_names();
  std::vector<std::string> out;
  std::stringstream ss(*arg);
  std::string item;
  while (std::getline(ss, item, ',')) {
    DSOUTH_CHECK_MSG(sparse::is_proxy_name(item),
                     "unknown matrix '" << item << "'");
    out.push_back(item);
  }
  return out;
}

const std::vector<std::string>& scaling_figure_matrices() {
  static const std::vector<std::string> names = {
      "Flan_1565p", "ldoorp",   "StocF-1465p",
      "inline_1p",  "bone010p", "Hook_1498p"};
  return names;
}

std::string csv_path(const std::string& name) {
  std::filesystem::create_directories("bench_results");
  return "bench_results/" + name;
}

std::string value_or_dagger(const std::optional<double>& v, int precision) {
  if (!v) return "†";
  return util::format_double(*v, precision);
}

void print_header(const std::string& title, const std::string& regenerates,
                  const std::string& workload) {
  std::cout << "=== " << title << " ===\n"
            << "Regenerates: " << regenerates << "\n"
            << "Workload:    " << workload << "\n\n";
}

dist::DistRunOptions default_run_options() {
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 50;  // the paper runs 50 parallel steps
  return opt;
}

void apply_backend_args(const util::ArgParser& args,
                        dist::DistRunOptions& opt) {
  const std::string backend = args.get_choice_or(
      "backend", {"sequential", "seq", "threads", "threadpool", "thread"},
      "sequential");
  const auto kind = simmpi::parse_backend_kind(backend);
  DSOUTH_CHECK(kind.has_value());  // the choice set above is exhaustive
  opt.backend = *kind;
  opt.num_threads = static_cast<int>(args.get_int_or("threads", 0));
}

TraceCapture::TraceCapture(const util::ArgParser& args) {
  if (auto p = args.get("trace"); p && !p->empty()) {
    path_ = *p;
    jsonl_ = path_.size() >= 6 &&
             path_.compare(path_.size() - 6, 6, ".jsonl") == 0;
  }
}

TraceCapture::~TraceCapture() {
  try {
    write();
  } catch (const std::exception& e) {
    std::cerr << "trace capture: " << e.what() << "\n";
  }
}

void TraceCapture::apply(dist::DistRunOptions& opt) const {
  if (enabled()) opt.trace.enabled = true;
}

void TraceCapture::add_run(const std::string& label,
                           const dist::DistRunResult& result) {
  if (!enabled() || !result.trace_log) return;
  runs_.push_back({label, result.trace_log});
}

void TraceCapture::write() {
  if (!enabled() || written_) return;
  written_ = true;
  std::ofstream out(path_);
  DSOUTH_CHECK_MSG(out.good(), "cannot open trace file '" << path_ << "'");
  if (jsonl_) {
    for (const auto& run : runs_) {
      trace::TraceExportOptions opt;
      opt.run_label = run.label;
      trace::write_jsonl(out, *run.log, opt);
    }
  } else {
    trace::ChromeTraceWriter writer(out);
    for (const auto& run : runs_) {
      trace::TraceExportOptions opt;
      opt.run_label = run.label;
      writer.add_run(*run.log, opt);
    }
    writer.finish();
  }
  std::cout << "Trace:       wrote " << runs_.size() << " run"
            << (runs_.size() == 1 ? "" : "s") << " to " << path_ << " ("
            << (jsonl_ ? "JSON Lines" : "Chrome trace_event") << ")\n";
}

}  // namespace dsouth::bench

namespace dsouth::bench {

MethodRuns run_three_methods(const DistProblem& p, index_t num_ranks,
                             const dist::DistRunOptions& opt) {
  auto part = partition_for(p.a, num_ranks);
  dist::DistLayout layout(p.a, part);
  MethodRuns runs;
  runs.bj = dist::run_distributed(dist::DistMethod::kBlockJacobi, layout,
                                  p.b, p.x0, opt);
  runs.ps = dist::run_distributed(dist::DistMethod::kParallelSouthwell,
                                  layout, p.b, p.x0, opt);
  runs.ds = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                  layout, p.b, p.x0, opt);
  return runs;
}

}  // namespace dsouth::bench
