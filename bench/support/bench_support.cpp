#include "support/bench_support.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "graph/graph.hpp"
#include "sparse/proxy_suite.hpp"
#include "sparse/scaling.hpp"
#include "trace/export.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace dsouth::bench {

DistProblem make_dist_problem(const std::string& proxy_name,
                              double size_factor, std::uint64_t seed) {
  auto proxy = sparse::make_proxy(proxy_name, size_factor);
  DistProblem p;
  p.name = proxy_name;
  p.a = std::move(proxy.a);
  p.b.assign(static_cast<std::size_t>(p.a.rows()), 0.0);
  p.x0.resize(p.b.size());
  util::Rng rng(seed);
  rng.fill_uniform(p.x0, -1.0, 1.0);
  sparse::normalize_initial_residual(p.a, p.b, p.x0);
  return p;
}

graph::Partition partition_for(const CsrMatrix& a, index_t num_ranks) {
  auto g = graph::Graph::from_matrix_structure(a);
  return graph::partition_recursive_bisection(g, num_ranks);
}

std::vector<std::string> select_matrices(const util::ArgParser& args) {
  auto arg = args.get("matrices");
  if (!arg || arg->empty()) return sparse::proxy_names();
  std::vector<std::string> out;
  std::stringstream ss(*arg);
  std::string item;
  while (std::getline(ss, item, ',')) {
    DSOUTH_CHECK_MSG(sparse::is_proxy_name(item),
                     "unknown matrix '" << item << "'");
    out.push_back(item);
  }
  return out;
}

const std::vector<std::string>& scaling_figure_matrices() {
  static const std::vector<std::string> names = {
      "Flan_1565p", "ldoorp",   "StocF-1465p",
      "inline_1p",  "bone010p", "Hook_1498p"};
  return names;
}

std::string csv_path(const std::string& name) {
  std::filesystem::create_directories("bench_results");
  return "bench_results/" + name;
}

std::string value_or_dagger(const std::optional<double>& v, int precision) {
  if (!v) return "†";
  return util::format_double(*v, precision);
}

void print_header(const std::string& title, const std::string& regenerates,
                  const std::string& workload) {
  std::cout << "=== " << title << " ===\n"
            << "Regenerates: " << regenerates << "\n"
            << "Workload:    " << workload << "\n\n";
}

dist::DistRunOptions default_run_options() {
  dist::DistRunOptions opt;
  opt.max_parallel_steps = 50;  // the paper runs 50 parallel steps
  return opt;
}

void apply_backend_args(const util::ArgParser& args,
                        dist::DistRunOptions& opt) {
  const std::string backend = args.get_choice_or(
      "backend", {"sequential", "seq", "threads", "threadpool", "thread"},
      "sequential");
  const auto kind = simmpi::parse_backend_kind(backend);
  DSOUTH_CHECK(kind.has_value());  // the choice set above is exhaustive
  opt.backend = *kind;
  opt.num_threads = static_cast<int>(args.get_int_or("threads", 0));
  opt.coalesce_messages = args.has("coalesce");
  // Weak-delivery model knobs (simmpi::DeliveryModel): -delay-prob enables
  // random message delays, -max-delay bounds them. Delayed traffic still
  // drains before the driver returns (Runtime::drain_delayed), so the
  // *final* x is exact; only the trajectory (and the message schedule)
  // changes. Defaults keep faithful bulk-synchronous delivery.
  opt.delivery.delay_probability = args.get_double_or("delay-prob", 0.0);
  opt.delivery.max_delay_epochs =
      static_cast<int>(args.get_int_or("max-delay", 2));
  DSOUTH_CHECK_MSG(opt.delivery.delay_probability >= 0.0 &&
                       opt.delivery.delay_probability <= 1.0,
                   "-delay-prob must be in [0, 1]");
  DSOUTH_CHECK_MSG(opt.delivery.max_delay_epochs >= 1,
                   "-max-delay must be >= 1");
  // Event-driven (asynchronous) delivery knobs: -async switches every
  // solver to relax-on-arrival stepping with per-edge latency draws in
  // [-min-latency, -max-latency] epochs, clamped by the -staleness bound
  // (0 = bulk-synchronous timing). Async runs stay bit-identical across
  // backends (stateless hash draws), but DO change the trajectory — like
  // -delay-prob these are study knobs, not bit-identity knobs.
  opt.async = args.has("async");
  opt.max_staleness =
      static_cast<std::uint64_t>(args.get_int_or("staleness", 4));
  opt.async_min_latency = static_cast<int>(args.get_int_or("min-latency", 0));
  opt.async_max_latency = static_cast<int>(args.get_int_or("max-latency", 3));
  opt.async_seed = static_cast<std::uint64_t>(
      args.get_int_or("async-seed", 0xA51CLL));
  DSOUTH_CHECK_MSG(opt.async_min_latency >= 0 &&
                       opt.async_min_latency <= opt.async_max_latency,
                   "need 0 <= -min-latency <= -max-latency");
  // Node-aware topology knobs (DESIGN.md §13, docs/communication.md):
  // -ranks-per-node R groups ranks into consecutive blocks of R,
  // -nodes N asks the driver for N equal blocks instead (ranks-per-node
  // wins when both are given), and -no-node-route keeps the topology as a
  // tier classifier only (the "direct" baseline). The topology never
  // changes solver trajectories — only the modeled wire costs.
  opt.ranks_per_node =
      static_cast<int>(args.get_int_or("ranks-per-node", 0));
  opt.num_nodes = static_cast<int>(args.get_int_or("nodes", 0));
  DSOUTH_CHECK_MSG(opt.ranks_per_node >= 0, "-ranks-per-node must be >= 0");
  DSOUTH_CHECK_MSG(opt.num_nodes >= 0, "-nodes must be >= 0");
  opt.node_route = !args.has("no-node-route");
}

ProfCapture::ProfCapture(std::string bench_name, const util::ArgParser& args)
    : bench_name_(std::move(bench_name)) {
  enabled_ = args.has("prof");
  if (args.has("prof-record")) {
    enabled_ = true;
    record_path_ = args.get_or("prof-record", "");
    if (record_path_.empty()) {
      record_path_ = csv_path("PROF_" + bench_name_ + ".json");
    }
  }
}

ProfCapture::~ProfCapture() {
  try {
    write();
  } catch (const std::exception& e) {
    std::cerr << "prof record: " << e.what() << "\n";
  }
}

void ProfCapture::apply(dist::DistRunOptions& opt, int num_ranks) {
  if (!enabled_) return;
  current_ = std::make_unique<prof::Profiler>(num_ranks);
  opt.profiler = current_.get();
}

prof::ScopedPhase ProfCapture::analysis_scope() const {
  prof::Profiler* p = current_.get();
  return prof::ScopedPhase(p, p ? p->runtime_lane() : 0,
                           prof::PhaseId::kAnalysis);
}

void ProfCapture::add_run(const std::string& label) {
  if (!enabled_ || !current_) return;
  runs_.push_back({label, std::move(current_)});
}

const prof::Profiler* ProfCapture::find(const std::string& label) const {
  for (const auto& run : runs_) {
    if (run.label == label) return run.prof.get();
  }
  return nullptr;
}

void ProfCapture::write() {
  if (record_path_.empty() || written_) return;
  written_ = true;
  std::ofstream out(record_path_);
  DSOUTH_CHECK_MSG(out.good(),
                   "cannot open prof record file '" << record_path_ << "'");
  out << "{\"schema\":\"dsouth.prof_record\",\"schema_version\":1,"
      << "\"bench\":" << util::json_quote(bench_name_) << ",\"runs\":[";
  for (std::size_t r = 0; r < runs_.size(); ++r) {
    const auto& run = runs_[r];
    const prof::Profiler& pf = *run.prof;
    out << (r == 0 ? "\n " : ",\n ") << "{\"label\":"
        << util::json_quote(run.label) << ",\"num_ranks\":" << pf.num_ranks()
        << ",\"alloc_tracking\":" << (pf.alloc_tracking() ? "true" : "false")
        << ",\"allocs_total\":" << pf.allocs_total()
        << ",\"allocs_bytes\":" << pf.allocs_bytes()
        << ",\"frees_total\":" << pf.frees_total()
        << ",\"dropped_spans\":" << pf.dropped_spans() << ",\"phases\":[";
    bool first_phase = true;
    for (int lane = 0; lane < pf.num_lanes(); ++lane) {
      for (int ph = 0; ph < prof::kNumPhases; ++ph) {
        const auto phase = static_cast<prof::PhaseId>(ph);
        const prof::PhaseStats& st = pf.stats(lane, phase);
        if (st.count == 0) continue;  // zero-count slots are omitted
        out << (first_phase ? "\n  " : ",\n  ") << "{\"phase\":"
            << util::json_quote(prof::phase_name(phase))
            << ",\"lane\":" << lane << ",\"count\":" << st.count
            << ",\"total_ns\":" << st.total_ns << ",\"max_ns\":" << st.max_ns
            << ",\"hist\":[";
        // Trim trailing zero buckets; the bucket index is its position.
        int last = prof::kNumHistBuckets - 1;
        while (last > 0 && st.hist[static_cast<std::size_t>(last)] == 0) {
          --last;
        }
        for (int b = 0; b <= last; ++b) {
          if (b) out << ",";
          out << st.hist[static_cast<std::size_t>(b)];
        }
        out << "]}";
        first_phase = false;
      }
    }
    out << "]}";
  }
  out << "\n]}\n";
  DSOUTH_CHECK_MSG(out.good(), "write to prof record file '" << record_path_
                                                             << "' failed");
  std::cout << "Prof:        wrote " << runs_.size() << " run"
            << (runs_.size() == 1 ? "" : "s") << " to " << record_path_
            << "\n";
}

TraceCapture::TraceCapture(const util::ArgParser& args) {
  if (auto p = args.get("trace"); p && !p->empty()) {
    path_ = *p;
    jsonl_ = path_.size() >= 6 &&
             path_.compare(path_.size() - 6, 6, ".jsonl") == 0;
  }
  if (auto p = args.get("metrics"); p && !p->empty()) metrics_path_ = *p;
}

TraceCapture::~TraceCapture() {
  try {
    write();
  } catch (const std::exception& e) {
    std::cerr << "trace capture: " << e.what() << "\n";
  }
}

void TraceCapture::apply(dist::DistRunOptions& opt) const {
  if (enabled()) opt.trace.enabled = true;
}

void TraceCapture::add_run(const std::string& label,
                           const dist::DistRunResult& result) {
  if (!enabled() || !result.trace_log) return;
  runs_.push_back({label, result.trace_log});
}

void TraceCapture::add_log(const std::string& label,
                           std::shared_ptr<const trace::TraceLog> log) {
  if (!enabled() || !log) return;
  runs_.push_back({label, std::move(log)});
}

void TraceCapture::write() {
  if (!enabled() || written_) return;
  written_ = true;
  if (!path_.empty()) {
    std::ofstream out(path_);
    DSOUTH_CHECK_MSG(out.good(), "cannot open trace file '" << path_ << "'");
    if (jsonl_) {
      for (const auto& run : runs_) {
        trace::TraceExportOptions opt;
        opt.run_label = run.label;
        trace::write_jsonl(out, *run.log, opt);
      }
    } else {
      trace::ChromeTraceWriter writer(out);
      for (const auto& run : runs_) {
        trace::TraceExportOptions opt;
        opt.run_label = run.label;
        writer.add_run(*run.log, opt);
        // Interleave host-profiler spans into the same Chrome process on
        // their own "host:" threads. The modeled timeline and the host
        // timeline are different clocks (both start near 0 µs), so keeping
        // them on separate tracks is what makes the overlay readable.
        const prof::Profiler* pf =
            profs_ ? profs_->find(run.label) : nullptr;
        if (!pf) continue;
        const int pid = writer.last_pid();
        const int base_tid = run.log->num_ranks + 1;
        for (int lane = 0; lane < pf->num_lanes(); ++lane) {
          const auto& spans = pf->spans(lane);
          if (spans.empty()) continue;
          writer.add_thread_name(
              pid, base_tid + lane,
              lane == pf->runtime_lane()
                  ? std::string("host: runtime")
                  : "host: rank " + std::to_string(lane));
          for (const auto& s : spans) {
            writer.add_span(pid, base_tid + lane, prof::phase_name(s.phase),
                            static_cast<double>(s.start_ns) / 1e3,
                            static_cast<double>(s.dur_ns) / 1e3);
          }
        }
      }
      writer.finish();
    }
    std::cout << "Trace:       wrote " << runs_.size() << " run"
              << (runs_.size() == 1 ? "" : "s") << " to " << path_ << " ("
              << (jsonl_ ? "JSON Lines" : "Chrome trace_event") << ")\n";
  }
  if (!metrics_path_.empty()) {
    std::ofstream out(metrics_path_);
    DSOUTH_CHECK_MSG(out.good(),
                     "cannot open metrics file '" << metrics_path_ << "'");
    out << "{\"schema\":\"dsouth.metrics\",\"schema_version\":1,\"runs\":[";
    for (std::size_t r = 0; r < runs_.size(); ++r) {
      const auto& run = runs_[r];
      const auto& m = run.log->metrics;
      if (r > 0) out << ",";
      out << "\n{\"run\":" << util::json_quote(run.label)
          << ",\"num_ranks\":" << run.log->num_ranks << ",\"metrics\":[";
      for (std::size_t id = 0; id < m.size(); ++id) {
        const auto mid = static_cast<trace::MetricId>(id);
        if (id > 0) out << ",";
        out << "\n  {\"name\":" << util::json_quote(m.name(mid))
            << ",\"kind\":" << util::json_quote(metric_kind_name(m.kind(mid)))
            << ",\"total\":" << util::json_number(m.total(mid))
            << ",\"per_rank\":[";
        const auto& slots = m.per_rank(mid);
        for (std::size_t p = 0; p < slots.size(); ++p) {
          if (p > 0) out << ",";
          out << util::json_number(slots[p]);
        }
        out << "]}";
      }
      out << "]";
      // Advisory host-profiling summary for this run: allocation-window
      // counters plus per-phase wall totals aggregated over lanes. The
      // per-lane detail and histograms live in the prof record.
      if (const prof::Profiler* pf =
              profs_ ? profs_->find(run.label) : nullptr) {
        out << ",\"prof\":{\"alloc_tracking\":"
            << (pf->alloc_tracking() ? "true" : "false")
            << ",\"allocs_total\":" << pf->allocs_total()
            << ",\"allocs_bytes\":" << pf->allocs_bytes()
            << ",\"frees_total\":" << pf->frees_total() << ",\"phases\":[";
        bool first_phase = true;
        for (int ph = 0; ph < prof::kNumPhases; ++ph) {
          const auto phase = static_cast<prof::PhaseId>(ph);
          const prof::PhaseStats st = pf->lane_sum(phase);
          if (st.count == 0) continue;
          if (!first_phase) out << ",";
          out << "{\"phase\":" << util::json_quote(prof::phase_name(phase))
              << ",\"count\":" << st.count << ",\"total_ns\":" << st.total_ns
              << ",\"max_ns\":" << st.max_ns << "}";
          first_phase = false;
        }
        out << "]}";
      }
      out << "}";
    }
    out << "]}\n";
    DSOUTH_CHECK_MSG(out.good(),
                     "write to metrics file '" << metrics_path_
                                               << "' failed");
    std::cout << "Metrics:     wrote " << runs_.size() << " run"
              << (runs_.size() == 1 ? "" : "s") << " to " << metrics_path_
              << "\n";
  }
}

namespace {

/// Best-effort revision id for bench records: DSOUTH_GIT_SHA when set (CI
/// exports it; keeps records hermetic), else `git rev-parse HEAD`, else
/// "unknown". Advisory only — bench_compare.py never gates on it.
std::string detect_git_sha() {
  if (const char* env = std::getenv("DSOUTH_GIT_SHA"); env && *env) {
    return env;
  }
  std::string sha;
  if (FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[128];
    if (std::fgets(buf, sizeof(buf), pipe)) sha = buf;
    ::pclose(pipe);
  }
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  if (sha.size() != 40) return "unknown";
  for (char c : sha) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return "unknown";
  }
  return sha;
}

}  // namespace

BenchRecorder::BenchRecorder(std::string bench_name,
                             const util::ArgParser& args)
    : bench_name_(std::move(bench_name)) {
  if (!args.has("json")) return;
  path_ = args.get_or("json", "");
  if (path_.empty()) path_ = csv_path("BENCH_" + bench_name_ + ".json");
}

BenchRecorder::~BenchRecorder() {
  try {
    write();
  } catch (const std::exception& e) {
    std::cerr << "bench record: " << e.what() << "\n";
  }
}

void BenchRecorder::add_run(
    const std::string& label, const std::string& matrix,
    const dist::DistRunResult& result,
    const std::vector<std::pair<std::string, std::uint64_t>>&
        extra_deterministic) {
  if (!enabled()) return;
  const auto& ct = result.comm_totals;
  std::ostringstream os;
  os << "{\"label\":" << util::json_quote(label)
     << ",\n   \"config\":{\"matrix\":" << util::json_quote(matrix)
     << ",\"method\":" << util::json_quote(result.method)
     << ",\"procs\":" << result.num_ranks << ",\"n\":" << result.n
     << ",\"backend\":" << util::json_quote(result.backend)
     << ",\"threads\":" << result.num_threads << "},"
     << "\n   \"deterministic\":{\"steps\":" << result.steps_taken()
     << ",\"modeled_time\":"
     << util::json_number(result.model_time.empty() ? 0.0
                                                    : result.model_time.back())
     << ",\"msgs_total\":" << ct.msgs << ",\"msgs_solve\":" << ct.msgs_solve
     << ",\"msgs_residual\":" << ct.msgs_residual
     << ",\"msgs_other\":" << ct.msgs_other
     << ",\"msgs_logical\":" << ct.msgs_logical
     << ",\"bytes_total\":" << ct.bytes
     << ",\"comm_cost\":"
     << util::json_number(result.comm_cost.empty() ? 0.0
                                                   : result.comm_cost.back())
     << ",\"final_residual\":"
     << util::json_number(
            result.residual_norm.empty() ? 0.0 : result.residual_norm.back());
  // Fault-injection totals, present only when a FaultSchedule was attached
  // (fault-free records stay byte-identical to the pre-fault schema). All
  // six are deterministic: the fault draws are stateless hashes.
  if (result.fault_summary) {
    const auto& fs = *result.fault_summary;
    os << ",\"msgs_dropped\":" << fs.msgs_dropped
       << ",\"msgs_duplicated\":" << fs.msgs_duplicated
       << ",\"msgs_corrupted\":" << fs.msgs_corrupted
       << ",\"rejected_corrupt\":" << fs.rejected_corrupt
       << ",\"rejected_stale\":" << fs.rejected_stale
       << ",\"refreshes_sent\":" << fs.refreshes_sent;
  }
  // Async-delivery totals, present only when the run used the EventDriven
  // policy (bulk-synchronous records stay byte-identical to the previous
  // schema). Deterministic: latency draws are stateless hashes.
  if (result.async_totals) {
    const auto& at = *result.async_totals;
    os << ",\"async_epochs\":" << at.epochs
       << ",\"async_delivered\":" << at.delivered
       << ",\"staleness_sum\":" << at.staleness_sum
       << ",\"staleness_max\":" << at.staleness_max
       << ",\"staleness_mean\":"
       << util::json_number(at.delivered == 0
                                ? 0.0
                                : static_cast<double>(at.staleness_sum) /
                                      static_cast<double>(at.delivered));
  }
  // Node-aware tier totals, present only when the run carried a two-level
  // topology (single-level records stay byte-identical to the previous
  // schema). Deterministic: hop accounting is a pure function of the
  // staged traffic and the rank -> node map.
  if (result.node_totals) {
    const auto& nt = *result.node_totals;
    os << ",\"node_msgs_intra\":" << nt.msgs_intra
       << ",\"node_bytes_intra\":" << nt.bytes_intra
       << ",\"node_msgs_inter\":" << nt.msgs_inter
       << ",\"node_bytes_inter\":" << nt.bytes_inter
       << ",\"node_forward_frames\":" << nt.forward_frames
       << ",\"node_forwarded_records\":" << nt.forwarded_records;
  }
  for (const auto& [key, value] : extra_deterministic) {
    os << ",\"" << key << "\":" << value;
  }
  os << "},"
     << "\n   \"advisory\":{\"wall_seconds\":"
     << util::json_number(result.wall_seconds) << "}}";
  records_.push_back(os.str());
}

void BenchRecorder::add_batch_run(
    const std::string& label, const std::string& matrix,
    const dist::BatchRunResult& result,
    const std::vector<std::pair<std::string, std::uint64_t>>&
        extra_deterministic) {
  if (!enabled()) return;
  const auto& ct = result.comm_totals;
  // The scalar convergence figure for a batch is its slowest tenant.
  double worst_residual = 0.0;
  for (const auto& t : result.tenants) {
    if (t.final_residual > worst_residual) worst_residual = t.final_residual;
  }
  std::ostringstream os;
  os << "{\"label\":" << util::json_quote(label)
     << ",\n   \"config\":{\"matrix\":" << util::json_quote(matrix)
     << ",\"method\":" << util::json_quote(result.method)
     << ",\"procs\":" << result.num_ranks << ",\"n\":" << result.n
     << ",\"batch\":" << result.batch
     << ",\"backend\":" << util::json_quote(result.backend)
     << ",\"threads\":" << result.num_threads << "},"
     << "\n   \"deterministic\":{\"steps\":" << result.steps_taken
     << ",\"modeled_time\":" << util::json_number(result.model_time)
     << ",\"msgs_total\":" << ct.msgs << ",\"msgs_solve\":" << ct.msgs_solve
     << ",\"msgs_residual\":" << ct.msgs_residual
     << ",\"msgs_other\":" << ct.msgs_other
     << ",\"msgs_logical\":" << ct.msgs_logical
     << ",\"bytes_total\":" << ct.bytes
     << ",\"comm_cost\":"
     << util::json_number(result.num_ranks == 0
                              ? 0.0
                              : static_cast<double>(ct.msgs) /
                                    static_cast<double>(result.num_ranks))
     << ",\"epochs\":" << result.epochs
     << ",\"frames_rejected\":" << result.frames_rejected
     << ",\"final_residual\":" << util::json_number(worst_residual);
  // Per-tenant logical shares of the shared wire. All deterministic: the
  // tallies are folded from staged traffic at each fence. bench_compare.py
  // treats tenant_* as one grouped family when reporting.
  for (std::size_t t = 0; t < result.tenants.size(); ++t) {
    const auto& tr = result.tenants[t];
    os << ",\"tenant_records_" << t << "\":" << tr.wire_records
       << ",\"tenant_doubles_" << t << "\":" << tr.wire_doubles
       << ",\"tenant_steps_" << t << "\":" << tr.steps;
  }
  for (const auto& [key, value] : extra_deterministic) {
    os << ",\"" << key << "\":" << value;
  }
  os << "},"
     << "\n   \"advisory\":{\"wall_seconds\":"
     << util::json_number(result.wall_seconds) << "}}";
  records_.push_back(os.str());
}

void BenchRecorder::write() {
  if (!enabled() || written_) return;
  written_ = true;
  std::ofstream out(path_);
  DSOUTH_CHECK_MSG(out.good(),
                   "cannot open bench record file '" << path_ << "'");
  out << "{\"schema\":\"dsouth.bench_record\",\"schema_version\":1,"
      << "\"bench\":" << util::json_quote(bench_name_)
      << ",\"git_sha\":" << util::json_quote(detect_git_sha())
      << ",\"runs\":[";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    out << (i == 0 ? "\n  " : ",\n  ") << records_[i];
  }
  out << "\n]}\n";
  DSOUTH_CHECK_MSG(out.good(),
                   "write to bench record file '" << path_ << "' failed");
  std::cout << "Record:      wrote " << records_.size() << " run"
            << (records_.size() == 1 ? "" : "s") << " to " << path_ << "\n";
}

}  // namespace dsouth::bench

namespace dsouth::bench {

MethodRuns run_three_methods(const DistProblem& p, index_t num_ranks,
                             const dist::DistRunOptions& opt) {
  auto part = partition_for(p.a, num_ranks);
  dist::DistLayout layout(p.a, part);
  MethodRuns runs;
  runs.bj = dist::run_distributed(dist::DistMethod::kBlockJacobi, layout,
                                  p.b, p.x0, opt);
  runs.ps = dist::run_distributed(dist::DistMethod::kParallelSouthwell,
                                  layout, p.b, p.x0, opt);
  runs.ds = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                  layout, p.b, p.x0, opt);
  return runs;
}

}  // namespace dsouth::bench
