/// Regenerates **Table 4** of the paper: mean modeled wall-clock time and
/// mean communication cost *per parallel step* over 50 steps at 8192
/// simulated ranks, for Block Jacobi / Parallel Southwell / Distributed
/// Southwell. This is the cost view relevant to multigrid smoothing and
/// preconditioning, where only a few sweeps are taken; the paper's
/// ordering is BJ > PS > DS on both metrics.

#include <iostream>

#include "support/bench_support.hpp"

namespace dsouth::bench {
namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto procs = static_cast<index_t>(args.get_int_or("procs", 8192));
  const double size_factor = args.get_double_or("size_factor", 1.0);
  const auto matrices = select_matrices(args);
  TraceCapture capture(args);
  BenchRecorder record("table4", args);

  print_header("Table 4 — per-parallel-step cost over 50 steps",
               "paper Table 4",
               "mean over 50 parallel steps, P=" + std::to_string(procs));

  util::Table table({"Matrix", "t/step:BJ", "t/step:PS", "t/step:DS",
                     "comm/step:BJ", "comm/step:PS", "comm/step:DS"});
  util::CsvWriter csv(csv_path("table4_per_step.csv"),
                      {"matrix", "method", "mean_step_time",
                       "mean_step_comm", "mean_active_fraction"});

  for (const auto& name : matrices) {
    auto problem = make_dist_problem(name, size_factor);
    auto opt = default_run_options();
    apply_backend_args(args, opt);
    capture.apply(opt);
    auto runs = run_three_methods(problem, procs, opt);
    const dist::DistRunResult* results[3] = {&runs.bj, &runs.ps, &runs.ds};
    for (const auto* r : results) {
      capture.add_run(name + " " + r->method, *r);
      record.add_run(name + " " + r->method, name, *r);
    }
    table.row().cell(name);
    for (const auto* r : results) table.cell(r->mean_step_time() * 1e3, 4);
    for (const auto* r : results) table.cell(r->mean_step_comm(), 3);
    for (const auto* r : results) {
      csv.write_row(std::vector<std::string>{
          name, r->method, util::format_double(r->mean_step_time(), 9),
          util::format_double(r->mean_step_comm(), 6),
          util::format_double(r->mean_active_fraction(), 6)});
    }
    std::cerr << "  [" << name << "] done\n";
  }
  std::cout << "Time per step in milliseconds (model).\n\n";
  table.print(std::cout);
  std::cout << "\nCSV: " << csv.path() << "\n";
  return 0;
}

}  // namespace
}  // namespace dsouth::bench

int main(int argc, char** argv) { return dsouth::bench::run(argc, argv); }
