/// Node-aware routing bench (DESIGN.md §13, docs/communication.md): all
/// four solvers on the same problem and partition, once with the two-level
/// topology as a pure tier classifier ("direct": every put pays its own
/// inter-node message) and once with leader routing on ("routed":
/// inter-node records fan in through the source node's leader, cross in
/// one leader->leader message per (node pair, tag), and fan out on the far
/// side). Solver trajectories are bit-identical across the two modes — the
/// topology only re-prices the simulated wire — so the interesting columns
/// are the inter-node message and byte counts, which routing must reduce
/// for every method (Table 2-style protocol, 50 parallel steps).
///
/// Everything reported except wall clock is deterministic: hop accounting
/// is a pure function of the staged traffic and the rank -> node map, so
/// the whole table is bit-identical across execution backends. The `-json`
/// record feeds the CI node-aware gate (tools/bench_compare.py vs the
/// committed BENCH_node_aware.json baseline); the mode is encoded in the
/// record's matrix field ("<matrix>/direct" vs "<matrix>/routed") so the
/// two configurations stay distinct keys.

#include <iostream>

#include "support/bench_support.hpp"

namespace dsouth::bench {
namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto procs = static_cast<index_t>(args.get_int_or("procs", 16));
  const double size_factor = args.get_double_or("size_factor", 0.1);
  std::vector<std::string> matrices;
  if (args.get("matrices")) {
    matrices = select_matrices(args);
  } else {
    matrices = {"ldoorp"};  // one proxy keeps the CI smoke run fast
  }
  TraceCapture capture(args);
  BenchRecorder record("node_aware", args);

  auto base_opt = default_run_options();
  apply_backend_args(args, base_opt);
  capture.apply(base_opt);
  // The sweep sets the topology itself; default to 4 nodes unless the
  // shared flags asked for a specific shape.
  if (base_opt.ranks_per_node == 0 && base_opt.num_nodes == 0) {
    base_opt.num_nodes = 4;
  }

  print_header(
      "Node-aware routing — leader fan-in/fan-out vs direct delivery",
      "DESIGN.md §13 hierarchical-communication study (no paper artifact; "
      "the paper's cost model is single-level)",
      "four solvers x {direct, routed}, P=" + std::to_string(procs) +
          " simulated ranks on a two-level topology, 50 parallel steps");

  util::Table table({"Matrix", "Method", "Mode", "inter msgs", "inter bytes",
                     "intra msgs", "frames", "records", "r_final"});
  util::CsvWriter csv(
      csv_path("node_aware.csv"),
      {"matrix", "method", "mode", "procs", "steps", "final_residual",
       "modeled_time", "msgs_intra", "bytes_intra", "msgs_inter",
       "bytes_inter", "forward_frames", "forwarded_records"});

  const dist::DistMethod methods[4] = {
      dist::DistMethod::kBlockJacobi, dist::DistMethod::kMulticolorBlockGs,
      dist::DistMethod::kParallelSouthwell,
      dist::DistMethod::kDistributedSouthwell};

  bool all_reduced = true;
  for (const auto& name : matrices) {
    auto problem = make_dist_problem(name, size_factor);
    auto part = partition_for(problem.a, procs);
    dist::DistLayout layout(problem.a, part);
    for (auto m : methods) {
      dist::NodeTotals totals[2];  // [0] = direct, [1] = routed
      for (int routed = 0; routed < 2; ++routed) {
        auto opt = base_opt;
        opt.node_route = routed != 0;
        const char* mode = routed ? "routed" : "direct";
        auto r = dist::run_distributed(m, layout, problem.b, problem.x0, opt);
        DSOUTH_CHECK_MSG(r.node_totals.has_value(),
                         "node_aware bench run came back without NodeTotals");
        totals[routed] = *r.node_totals;
        const auto& nt = totals[routed];
        const std::string label =
            name + " " + dist::method_abbrev(m) + " " + mode;
        capture.add_run(label, r);
        // Mode goes into the matrix config field so direct and routed
        // records compare against distinct baseline keys.
        record.add_run(label, name + "/" + mode, r);
        const double r_final =
            r.residual_norm.empty() ? 0.0 : r.residual_norm.back();
        table.row()
            .cell(name)
            .cell(r.method)
            .cell(mode)
            .cell(std::to_string(nt.msgs_inter))
            .cell(std::to_string(nt.bytes_inter))
            .cell(std::to_string(nt.msgs_intra))
            .cell(std::to_string(nt.forward_frames))
            .cell(std::to_string(nt.forwarded_records))
            .cell(util::format_double(r_final, 4));
        csv.write_row(std::vector<std::string>{
            name, r.method, mode, std::to_string(r.num_ranks),
            std::to_string(r.steps_taken()),
            util::format_double(r_final, 9),
            util::format_double(
                r.model_time.empty() ? 0.0 : r.model_time.back(), 9),
            std::to_string(nt.msgs_intra), std::to_string(nt.bytes_intra),
            std::to_string(nt.msgs_inter), std::to_string(nt.bytes_inter),
            std::to_string(nt.forward_frames),
            std::to_string(nt.forwarded_records)});
      }
      const bool reduced = totals[1].msgs_inter < totals[0].msgs_inter &&
                           totals[1].bytes_inter < totals[0].bytes_inter;
      if (!reduced) {
        all_reduced = false;
        std::cerr << "WARNING: routing did not reduce inter-node traffic for "
                  << name << " " << dist::method_abbrev(m) << "\n";
      }
    }
    std::cerr << "  [" << name << "] done\n";
  }

  std::cout << "Tier totals over 50 parallel steps; \"routed\" must beat "
               "\"direct\" on both inter-node columns (intra-node traffic "
               "grows by the relay hops instead).\n\n";
  table.print(std::cout);
  std::cout << "\nCSV: " << csv.path() << "\n";
  std::cout << (all_reduced
                    ? "Leader routing reduced inter-node msgs AND bytes for "
                      "every method.\n"
                    : "FAIL: some method saw no inter-node reduction.\n");
  return all_reduced ? 0 : 1;
}

}  // namespace
}  // namespace dsouth::bench

int main(int argc, char** argv) { return dsouth::bench::run(argc, argv); }
