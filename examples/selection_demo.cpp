/// Selection demo — the machine-readable analogue of the paper's Figures 1
/// and 3: visualize which rows / subdomains the Parallel Southwell
/// criterion selects on a small grid, step by step, as ASCII art.
///
/// Scalar mode shows the Figure-1 picture (selected points and their
/// neighbors); block mode shows Figure 3 (selected subdomains).
///
/// Run:  ./selection_demo [-dim 16] [-steps 4] [-procs 16] [-block]

#include <iostream>

#include "core/parallel_southwell.hpp"
#include "core/scalar_engine.hpp"
#include "dist/driver.hpp"
#include "graph/partition.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace dsouth;

void scalar_demo(sparse::index_t dim, sparse::index_t steps,
                 std::uint64_t seed) {
  auto a = sparse::symmetric_unit_diagonal_scale(
               sparse::poisson2d_5pt(dim, dim))
               .a;
  std::vector<double> b(static_cast<std::size_t>(a.rows()));
  util::Rng rng(seed);
  rng.fill_uniform(b, -1.0, 1.0);
  std::vector<double> x0(b.size(), 0.0);
  core::ScalarRelaxationEngine eng(a, b, x0);

  std::cout << "Scalar Parallel Southwell selection on a " << dim << "x"
            << dim << " grid ('#' = relaxed this step, '+' = neighbor of a "
               "relaxed point, '.' = idle):\n";
  std::vector<double> w(static_cast<std::size_t>(a.rows()));
  for (sparse::index_t step = 0; step < steps; ++step) {
    for (sparse::index_t i = 0; i < a.rows(); ++i) {
      w[static_cast<std::size_t>(i)] = eng.southwell_weight(i);
    }
    auto selected = core::parallel_southwell_selection(a, w);
    std::vector<char> mark(static_cast<std::size_t>(a.rows()), '.');
    for (sparse::index_t i : selected) {
      for (sparse::index_t j : a.row_cols(i)) {
        if (j != i && mark[static_cast<std::size_t>(j)] == '.') {
          mark[static_cast<std::size_t>(j)] = '+';
        }
      }
    }
    for (sparse::index_t i : selected) mark[static_cast<std::size_t>(i)] = '#';
    std::cout << "\nstep " << step + 1 << " (" << selected.size()
              << " rows relaxed, ||r|| = " << eng.residual_norm() << ")\n";
    for (sparse::index_t y = 0; y < dim; ++y) {
      for (sparse::index_t x = 0; x < dim; ++x) {
        std::cout << mark[static_cast<std::size_t>(y * dim + x)];
      }
      std::cout << '\n';
    }
    eng.relax_simultaneously(selected);
  }
}

void block_demo(sparse::index_t dim, sparse::index_t steps,
                sparse::index_t procs, std::uint64_t seed) {
  auto a = sparse::symmetric_unit_diagonal_scale(
               sparse::poisson2d_5pt(dim, dim))
               .a;
  auto g = graph::Graph::from_matrix_structure(a);
  auto part = graph::partition_recursive_bisection(g, procs);
  dist::DistLayout layout(a, part);
  std::vector<double> b(static_cast<std::size_t>(a.rows()), 0.0);
  std::vector<double> x0(b.size());
  util::Rng rng(seed);
  rng.fill_uniform(x0, -1.0, 1.0);
  sparse::normalize_initial_residual(a, b, x0);
  simmpi::Runtime rt(static_cast<int>(procs));
  dist::DistRunOptions opt;
  auto solver =
      dist::make_dist_solver(dist::DistMethod::kParallelSouthwell, layout, rt,
                             b, x0, opt);

  std::cout << "Block Parallel Southwell on a " << dim << "x" << dim
            << " grid split into " << procs
            << " subdomains (upper-case letter = subdomain relaxed this "
               "step):\n";
  for (sparse::index_t step = 0; step < steps; ++step) {
    // Record which ranks are active by comparing x before/after.
    std::vector<std::vector<double>> before;
    for (int p = 0; p < layout.num_ranks(); ++p) {
      before.emplace_back(solver->local_x(p).begin(),
                          solver->local_x(p).end());
    }
    auto stats = solver->step();
    std::vector<bool> active(static_cast<std::size_t>(procs), false);
    for (int p = 0; p < layout.num_ranks(); ++p) {
      auto now = solver->local_x(p);
      for (std::size_t i = 0; i < now.size(); ++i) {
        if (now[i] != before[static_cast<std::size_t>(p)][i]) {
          active[static_cast<std::size_t>(p)] = true;
          break;
        }
      }
    }
    std::cout << "\nstep " << step + 1 << " (" << stats.active_ranks
              << " subdomains relaxed, ||r|| = "
              << solver->global_residual_norm() << ")\n";
    for (sparse::index_t y = 0; y < dim; ++y) {
      for (sparse::index_t x = 0; x < dim; ++x) {
        const auto p = static_cast<std::size_t>(
            part.part[static_cast<std::size_t>(y * dim + x)]);
        const char base = static_cast<char>('a' + (p % 26));
        std::cout << (active[p] ? static_cast<char>(base - 'a' + 'A') : base);
      }
      std::cout << '\n';
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsouth;
  util::ArgParser args(argc, argv);
  const auto dim = static_cast<sparse::index_t>(args.get_int_or("dim", 16));
  const auto steps =
      static_cast<sparse::index_t>(args.get_int_or("steps", 4));
  const auto procs =
      static_cast<sparse::index_t>(args.get_int_or("procs", 16));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 5));
  if (args.has("block")) {
    block_demo(dim, steps, procs, seed);
  } else {
    scalar_demo(dim, steps, seed);
    std::cout << "\n(Re-run with -block to see the subdomain version, "
                 "paper Figure 3.)\n";
  }
  return 0;
}
