/// Method comparison on a problem of your choice: Block Jacobi vs Parallel
/// Southwell vs Distributed Southwell side by side, the way the paper's
/// evaluation frames them. Good starting point for benchmarking your own
/// matrices (pass -mat_file) against the generated ones.
///
/// Run:  ./method_comparison [-matrix Serenap] [-size_factor 0.25]
///       [-procs 512] [-steps 50] [-mat_file path.mtx]

#include <iostream>

#include "dist/driver.hpp"
#include "graph/partition.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/proxy_suite.hpp"
#include "sparse/scaling.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dsouth;
  util::ArgParser args(argc, argv);
  const auto procs =
      static_cast<sparse::index_t>(args.get_int_or("procs", 512));
  const auto steps =
      static_cast<sparse::index_t>(args.get_int_or("steps", 50));
  const double size_factor = args.get_double_or("size_factor", 0.25);

  sparse::CsrMatrix a;
  std::string name;
  if (auto path = args.get("mat_file")) {
    name = *path;
    a = sparse::symmetric_unit_diagonal_scale(
            sparse::read_matrix_market_file(*path))
            .a;
  } else {
    name = args.get_or("matrix", "Serenap");
    a = sparse::make_proxy(name, size_factor).a;  // already unit diagonal
  }
  std::cout << "Problem: " << name << " (" << a.rows() << " rows, "
            << a.nnz() << " nnz), P = " << procs << "\n\n";

  std::vector<double> b(static_cast<std::size_t>(a.rows()), 0.0);
  std::vector<double> x0(b.size());
  util::Rng rng(7);
  rng.fill_uniform(x0, -1.0, 1.0);
  sparse::normalize_initial_residual(a, b, x0);

  auto graph = graph::Graph::from_matrix_structure(a);
  auto partition = graph::partition_recursive_bisection(graph, procs);
  dist::DistLayout layout(a, partition);

  dist::DistRunOptions opt;
  opt.max_parallel_steps = steps;

  util::Table table({"Method", "final ||r||", "reached 0.1 at step",
                     "comm cost", "solve comm", "res comm",
                     "mean active", "model ms"});
  for (auto method : {dist::DistMethod::kBlockJacobi,
                      dist::DistMethod::kParallelSouthwell,
                      dist::DistMethod::kDistributedSouthwell}) {
    auto r = dist::run_distributed(method, layout, b, x0, opt);
    auto at = r.at_target(0.1);
    table.row().cell(r.method);
    table.cell(r.residual_norm.back(), 6);
    table.cell(at ? util::format_double(at->steps, 1) : "†");
    table.cell(r.comm_cost.back(), 1);
    table.cell(r.solve_comm.back(), 1);
    table.cell(r.res_comm.back(), 1);
    table.cell(r.mean_active_fraction(), 3);
    table.cell(r.model_time.back() * 1e3, 3);
  }
  table.print(std::cout);
  std::cout << "\n'†' = target not reached within " << steps
            << " parallel steps (the paper's marker).\n";
  return 0;
}
