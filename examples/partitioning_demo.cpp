/// Partitioning demo: compare the library's METIS-substitute (recursive
/// bisection + Fiduccia–Mattheyses refinement) against greedy growing and
/// naive contiguous blocks — in partition quality and in its downstream
/// effect on Distributed Southwell's communication.
///
/// Run:  ./partitioning_demo [-matrix boneS10p] [-size_factor 0.2]
///       [-procs 64] [-keep_order]

#include <iostream>

#include "dist/driver.hpp"
#include "graph/partition.hpp"
#include "graph/rcm.hpp"
#include "sparse/proxy_suite.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dsouth;
  util::ArgParser args(argc, argv);
  const auto procs =
      static_cast<sparse::index_t>(args.get_int_or("procs", 64));
  const double size_factor = args.get_double_or("size_factor", 0.2);
  const std::string name = args.get_or("matrix", "boneS10p");

  auto proxy = sparse::make_proxy(name, size_factor);
  sparse::CsrMatrix a = std::move(proxy.a);
  // Randomly permute the rows unless -keep_order is given: generated
  // meshes come in a banded natural order where naive contiguous blocks
  // happen to form decent strips; real-world matrices offer no such gift,
  // and the shuffle makes "contiguous blocks" mean what it means there.
  if (!args.has("keep_order")) {
    util::Rng shuffle_rng(99);
    std::vector<sparse::index_t> perm(static_cast<std::size_t>(a.rows()));
    for (sparse::index_t i = 0; i < a.rows(); ++i) {
      perm[static_cast<std::size_t>(i)] = i;
    }
    shuffle_rng.shuffle(std::span<sparse::index_t>(perm));
    a = graph::permute_symmetric(a, perm);
  }
  std::cout << "Matrix " << name << ": " << a.rows() << " rows, " << a.nnz()
            << " nnz; partitioning into " << procs << " parts.\n\n";
  auto g = graph::Graph::from_matrix_structure(a);

  std::vector<double> b(static_cast<std::size_t>(a.rows()), 0.0);
  std::vector<double> x0(b.size());
  util::Rng rng(11);
  rng.fill_uniform(x0, -1.0, 1.0);
  sparse::normalize_initial_residual(a, b, x0);

  struct Entry {
    const char* label;
    graph::Partition part;
  };
  Entry entries[] = {
      {"recursive bisection + FM",
       graph::partition_recursive_bisection(g, procs)},
      {"greedy growing", graph::partition_greedy_growing(g, procs)},
      {"contiguous blocks",
       graph::partition_contiguous_blocks(a.rows(), procs)},
  };

  util::Table table({"Partitioner", "edge cut", "imbalance", "DS steps->0.1",
                     "DS comm->0.1", "DS model ms"});
  for (auto& e : entries) {
    auto q = graph::evaluate_partition(g, e.part);
    dist::DistRunOptions opt;
    opt.max_parallel_steps = 200;
    opt.stop_at_residual = 0.1;
    auto r = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                   a, e.part, b, x0, opt);
    auto at = r.at_target(0.1);
    table.row().cell(e.label);
    table.cell(static_cast<std::size_t>(q.edge_cut));
    table.cell(q.imbalance, 2);
    table.cell(at ? util::format_double(at->steps, 1) : "†");
    table.cell(at ? util::format_double(at->comm_cost, 1) : "†");
    table.cell(at ? util::format_double(at->model_time * 1e3, 3) : "†");
  }
  table.print(std::cout);
  std::cout << "\nSmaller edge cuts mean fewer neighbor channels, hence "
               "fewer messages per parallel step — the reason the paper "
               "partitions with METIS and this library ships a partitioner "
               "as a substrate.\n";
  return 0;
}
