/// Preconditioned conjugate gradients with a Distributed Southwell
/// preconditioner — the paper's motivating use case made runnable. Picks a
/// proxy matrix (or your own .mtx), compares plain CG, Jacobi, symmetric
/// GS and the three distributed preconditioners side by side.
///
/// Run:  ./preconditioned_cg [-matrix af_5_k101p] [-size_factor 0.15]
///       [-procs 128] [-steps 12] [-tol 1e-8] [-mat_file path.mtx]

#include <iostream>
#include <sstream>

#include "graph/partition.hpp"
#include "krylov/cg.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/proxy_suite.hpp"
#include "sparse/scaling.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dsouth;
  util::ArgParser args(argc, argv);
  const auto procs =
      static_cast<sparse::index_t>(args.get_int_or("procs", 128));
  const auto steps =
      static_cast<sparse::index_t>(args.get_int_or("steps", 12));
  const double tol = args.get_double_or("tol", 1e-8);
  const double size_factor = args.get_double_or("size_factor", 0.15);

  sparse::CsrMatrix a;
  std::string name;
  if (auto path = args.get("mat_file")) {
    name = *path;
    a = sparse::symmetric_unit_diagonal_scale(
            sparse::read_matrix_market_file(*path))
            .a;
  } else {
    name = args.get_or("matrix", "af_5_k101p");
    a = sparse::make_proxy(name, size_factor).a;
  }
  std::cout << "Solving A x = b with flexible PCG on " << name << " ("
            << a.rows() << " rows), P = " << procs << ", "
            << steps << " parallel steps per preconditioner application.\n\n";

  std::vector<double> b(static_cast<std::size_t>(a.rows()));
  util::Rng rng(21);
  rng.fill_uniform(b, -1.0, 1.0);
  auto g = graph::Graph::from_matrix_structure(a);
  auto part = graph::partition_recursive_bisection(g, procs);

  krylov::CgOptions opt;
  opt.rel_tolerance = tol;
  opt.max_iterations = 5000;

  util::Table table({"Preconditioner", "CG iterations", "precond comm",
                     "rel. residual"});
  auto report = [&](const char* label, krylov::Preconditioner* pc) {
    std::vector<double> x(b.size(), 0.0);
    auto r = krylov::run_pcg(a, b, x, pc, opt);
    std::ostringstream rr;
    rr.setf(std::ios::scientific);
    rr.precision(2);
    rr << r.final_relative_residual;
    table.row().cell(label);
    table.cell(static_cast<std::size_t>(r.iterations));
    table.cell(pc != nullptr ? pc->comm_cost() : 0.0, 1);
    table.cell(r.converged ? "converged" : rr.str());
  };

  report("(none)", nullptr);
  auto jacobi = krylov::make_jacobi_preconditioner(a);
  report("Jacobi", jacobi.get());
  auto ssor = krylov::make_symmetric_gs_preconditioner(a);
  report("symmetric GS", ssor.get());
  for (auto method : {dist::DistMethod::kBlockJacobi,
                      dist::DistMethod::kParallelSouthwell,
                      dist::DistMethod::kDistributedSouthwell}) {
    krylov::DistPreconditionerOptions popt;
    popt.method = method;
    popt.steps = steps;
    auto pc = krylov::make_distributed_preconditioner(a, part, popt);
    report(pc->name(), pc.get());
  }
  table.print(std::cout);
  std::cout << "\nThe Southwell preconditioners are iteration-varying, so "
               "run_pcg switches to the flexible (Polak-Ribiere) beta "
               "automatically.\n";
  return 0;
}
