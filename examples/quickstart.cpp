/// Quickstart: solve a sparse SPD system with Distributed Southwell.
///
/// This example walks the full public API path a downstream user takes:
///   1. assemble (or load) an SPD matrix,
///   2. scale it to unit diagonal (the paper's preprocessing),
///   3. partition it into one subdomain per simulated rank,
///   4. run Distributed Southwell and inspect convergence/communication.
///
/// Run:   ./quickstart [-n 64] [-procs 256] [-steps 50] [-target 0.1]
///        [-mat_file path/to/matrix.mtx] [-threads 4]

#include <iostream>

#include "dist/driver.hpp"
#include "graph/partition.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dsouth;
  util::ArgParser args(argc, argv);
  const auto n = static_cast<sparse::index_t>(args.get_int_or("n", 64));
  const auto procs =
      static_cast<sparse::index_t>(args.get_int_or("procs", 256));
  const auto steps =
      static_cast<sparse::index_t>(args.get_int_or("steps", 50));
  const double target = args.get_double_or("target", 0.1);

  // 1. A matrix: either a Matrix Market file or a generated 3-D Poisson
  //    problem (the artifact's default is a generated Laplacian too).
  sparse::CsrMatrix raw;
  if (auto path = args.get("mat_file")) {
    raw = sparse::read_matrix_market_file(*path);
    std::cout << "Loaded " << *path << ": " << raw.rows() << " rows, "
              << raw.nnz() << " nonzeros\n";
  } else {
    raw = sparse::poisson3d_7pt(n, n, n);
    std::cout << "Generated 3-D Poisson " << n << "^3: " << raw.rows()
              << " rows, " << raw.nnz() << " nonzeros\n";
  }

  // 2. Symmetric unit-diagonal scaling (makes |r_i| the Gauss-Southwell
  //    selection weight, as in the paper).
  auto scaled = sparse::symmetric_unit_diagonal_scale(raw);
  const auto& a = scaled.a;

  // 3. Partition into one subdomain per rank.
  auto graph = graph::Graph::from_matrix_structure(a);
  auto partition = graph::partition_recursive_bisection(graph, procs);
  auto quality = graph::evaluate_partition(graph, partition);
  std::cout << "Partitioned into " << procs << " subdomains (edge cut "
            << quality.edge_cut << ", imbalance " << quality.imbalance
            << ")\n";

  // 4. The paper's experiment setup: b = 0, random x0 with ||r0|| = 1.
  std::vector<double> b(static_cast<std::size_t>(a.rows()), 0.0);
  std::vector<double> x0(b.size());
  util::Rng rng(42);
  rng.fill_uniform(x0, -1.0, 1.0);
  sparse::normalize_initial_residual(a, b, x0);

  dist::DistRunOptions opt;
  opt.max_parallel_steps = steps;
  opt.stop_at_residual = target;
  // `-threads N` steps the simulated ranks on a thread pool; the results
  // are bit-identical to the sequential default (DESIGN.md §9).
  if (args.has("threads")) {
    opt.backend = simmpi::BackendKind::kThreadPool;
    opt.num_threads = static_cast<int>(args.get_int_or("threads", 0));
  }
  auto result = dist::run_distributed(dist::DistMethod::kDistributedSouthwell,
                                      a, partition, b, x0, opt);

  util::Table table({"step", "residual", "comm cost", "active ranks"});
  for (std::size_t k = 0; k < result.steps_taken(); ++k) {
    table.row()
        .cell(k + 1)
        .cell(result.residual_norm[k + 1], 6)
        .cell(result.comm_cost[k + 1], 2)
        .cell(static_cast<std::size_t>(result.active_ranks[k]));
  }
  table.print(std::cout);
  if (auto at = result.at_target(target)) {
    std::cout << "\nReached ||r|| = " << target << " after " << at->steps
              << " parallel steps, " << at->comm_cost
              << " messages per rank, modeled time " << at->model_time * 1e3
              << " ms.\n";
  } else {
    std::cout << "\nDid not reach ||r|| = " << target << " in " << steps
              << " steps (final " << result.residual_norm.back() << ").\n";
  }
  return 0;
}
