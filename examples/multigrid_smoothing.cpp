/// Multigrid smoothing with Distributed Southwell (the paper's §4.1 use
/// case): build a geometric multigrid hierarchy for the 2-D Poisson
/// equation and compare smoothers cycle by cycle — including the "1/2
/// sweep" budgeted Distributed Southwell that still gives grid-independent
/// convergence.
///
/// Run:  ./multigrid_smoothing [-dim 127] [-cycles 9] [-seed 3]

#include <iostream>
#include <sstream>

#include "multigrid/vcycle.hpp"
#include "sparse/vec.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dsouth;
  util::ArgParser args(argc, argv);
  const auto dim = static_cast<sparse::index_t>(args.get_int_or("dim", 127));
  const int cycles = static_cast<int>(args.get_int_or("cycles", 9));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 3));

  multigrid::MultigridHierarchy mg(dim);
  std::cout << "Geometric multigrid on a " << dim << "x" << dim
            << " Poisson grid, " << mg.num_levels()
            << " levels down to 3x3 (exact solve), V(1,1) cycles.\n\n";

  util::Rng rng(seed);
  std::vector<double> b(static_cast<std::size_t>(dim * dim));
  rng.fill_uniform(b, -1.0, 1.0);

  struct Config {
    const char* name;
    std::unique_ptr<multigrid::Smoother> smoother;
    std::vector<double> x;
    double r0 = 0.0;
  };
  Config configs[5];
  configs[0] = {"GS 1 sweep", multigrid::make_gauss_seidel_smoother(1), {}, 0};
  configs[1] = {"Jacobi(2/3) 1 sweep", multigrid::make_jacobi_smoother(), {},
                0};
  configs[2] = {"Chebyshev(3)", multigrid::make_chebyshev_smoother(3), {}, 0};
  configs[3] = {"DistSW 1/2 sweep",
                multigrid::make_distributed_southwell_smoother(0.5), {}, 0};
  configs[4] = {"DistSW 1 sweep",
                multigrid::make_distributed_southwell_smoother(1.0), {}, 0};

  const auto& a = mg.level_matrix(0);
  std::vector<double> r(b.size());
  for (auto& cfg : configs) {
    cfg.x.assign(b.size(), 0.0);
    a.residual(b, cfg.x, r);
    cfg.r0 = sparse::norm2(r);
  }

  util::Table table({"Cycle", "GS 1 sweep", "Jacobi(2/3)", "Chebyshev(3)",
                     "DistSW 1/2", "DistSW 1"});
  for (int c = 1; c <= cycles; ++c) {
    table.row().cell(static_cast<std::size_t>(c));
    for (auto& cfg : configs) {
      mg.vcycle(b, cfg.x, *cfg.smoother);
      a.residual(b, cfg.x, r);
      std::ostringstream os;
      os.setf(std::ios::scientific);
      os.precision(2);
      os << sparse::norm2(r) / cfg.r0;
      table.cell(os.str());
    }
  }
  table.print(std::cout);
  std::cout << "\nEach column shows ||r|| / ||r0|| after each V-cycle. "
               "DistSW spends its relaxation budget where residuals are "
               "largest, which is why '1 sweep' beats GS per relaxation "
               "(paper Figure 6).\n";
  return 0;
}
