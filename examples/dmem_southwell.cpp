/// DMEM_Southwell — a faithful port of the paper artifact's driver
/// interface (Appendix A.4) to the simulated runtime. Accepts the
/// artifact's arguments:
///
///   -mat_file F      load F (.bin = dsouth binary CSR, else Matrix Market);
///                    default: 5-point Laplacian on a -grid N 2-D domain
///                    (the artifact defaults to 1000; we default to 200 so
///                    the demo runs in seconds — pass -grid 1000 for the
///                    artifact's size)
///   -x_zeros         x = 0 and b random (scaled so ||r0|| = 1);
///                    default: b = 0 and x random, as in the paper's runs
///   -sweep_max K     parallel steps (default 20, as in the artifact)
///   -loc_solver gs   local subdomain solver (only 'gs' is supported —
///                    the artifact's PARDISO option needed MKL)
///   -solver S        sos_sds = Distributed Southwell, sos_sps = Parallel
///                    Southwell, bj = Block Jacobi; no solver by default
///                    (setup statistics only, like the artifact)
///   -procs P         simulated MPI ranks (replaces srun -n; default 1024)
///   -format_out      additionally print machine-readable key=value lines

#include <iostream>

#include "dist/driver.hpp"
#include "graph/partition.hpp"
#include "sparse/binary_io.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stats.hpp"
#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dsouth;
  util::ArgParser args(argc, argv);
  const auto procs =
      static_cast<sparse::index_t>(args.get_int_or("procs", 1024));
  const auto sweep_max =
      static_cast<sparse::index_t>(args.get_int_or("sweep_max", 20));
  const std::string loc_solver = args.get_or("loc_solver", "gs");
  const std::string solver = args.get_or("solver", "");
  const bool format_out = args.has("format_out");
  if (loc_solver != "gs") {
    std::cerr << "only -loc_solver gs is supported (the artifact's PARDISO "
                 "option required MKL)\n";
    return 1;
  }

  util::Stopwatch setup_timer;
  sparse::CsrMatrix raw;
  std::string mat_name;
  if (auto path = args.get("mat_file")) {
    raw = sparse::load_matrix_any(*path);
    mat_name = *path;
  } else {
    const auto grid = static_cast<sparse::index_t>(args.get_int_or("grid", 200));
    raw = sparse::poisson2d_5pt(grid, grid);
    mat_name = "laplace2d_" + std::to_string(grid);
  }
  auto a = sparse::symmetric_unit_diagonal_scale(raw).a;

  // Initial data per the artifact: one of x/b is zero, the other random,
  // scaled so the initial residual norm is exactly 1.
  util::Rng rng(7777);
  std::vector<double> b(static_cast<std::size_t>(a.rows()), 0.0);
  std::vector<double> x0(b.size(), 0.0);
  if (args.has("x_zeros")) {
    rng.fill_uniform(b, -1.0, 1.0);
    sparse::scale(1.0 / sparse::norm2(b), b);
  } else {
    rng.fill_uniform(x0, -1.0, 1.0);
    sparse::normalize_initial_residual(a, b, x0);
  }

  auto g = graph::Graph::from_matrix_structure(a);
  auto part = graph::partition_recursive_bisection(g, procs);
  auto quality = graph::evaluate_partition(g, part);
  const double setup_seconds = setup_timer.seconds();

  std::cout << "setup: matrix " << mat_name << " (" << a.rows() << " rows, "
            << a.nnz() << " nnz), " << procs << " ranks, edge cut "
            << quality.edge_cut << ", imbalance " << quality.imbalance
            << ", setup wall time " << setup_seconds << " s\n";
  sparse::print_matrix_stats(std::cout, sparse::compute_matrix_stats(raw));
  if (format_out) {
    std::cout << "out: matrix=" << mat_name << " rows=" << a.rows()
              << " nnz=" << a.nnz() << " procs=" << procs
              << " edge_cut=" << quality.edge_cut
              << " imbalance=" << quality.imbalance << "\n";
  }
  if (solver.empty()) {
    std::cout << "no -solver given; setup phase only (artifact default).\n";
    return 0;
  }

  dist::DistMethod method;
  if (solver == "sos_sds" || solver == "ds") {
    method = dist::DistMethod::kDistributedSouthwell;
  } else if (solver == "sos_sps" || solver == "ps") {
    method = dist::DistMethod::kParallelSouthwell;
  } else if (solver == "bj" || solver == "jacobi_block") {
    method = dist::DistMethod::kBlockJacobi;
  } else {
    std::cerr << "unknown -solver '" << solver
              << "' (use sos_sds, sos_sps or bj)\n";
    return 1;
  }

  util::Stopwatch solve_timer;
  dist::DistRunOptions opt;
  opt.max_parallel_steps = sweep_max;
  auto result = dist::run_distributed(method, a, part, b, x0, opt);
  std::cout << "solver " << result.method << ": " << result.steps_taken()
            << " parallel steps, final ||r|| = "
            << result.residual_norm.back()
            << ", comm cost = " << result.comm_cost.back()
            << " msgs/rank (solve " << result.solve_comm.back() << ", res "
            << result.res_comm.back() << "), model time "
            << result.model_time.back() * 1e3 << " ms, solve wall time "
            << solve_timer.seconds() << " s\n";
  if (auto at = result.at_target(0.1)) {
    std::cout << "reached ||r|| = 0.1 at step " << at->steps << " ("
              << at->comm_cost << " msgs/rank)\n";
  } else {
    std::cout << "did not reach ||r|| = 0.1 within " << sweep_max
              << " steps\n";
  }
  if (format_out) {
    std::cout << "out: solver=" << result.method
              << " steps=" << result.steps_taken()
              << " final_res=" << result.residual_norm.back()
              << " comm=" << result.comm_cost.back()
              << " model_time=" << result.model_time.back() << "\n";
  }
  return 0;
}
