/// \file dsouth_analyze.cpp
/// `dsouth-analyze`: the offline half of the observability stack. Reads a
/// JSON Lines trace capture (the `-trace foo.jsonl` output of any
/// distributed bench, possibly holding several runs) and emits, per run,
/// the four analyzer reports — per-rank timeline & load imbalance, P×P
/// communication matrix with hot-pair ranking, α–β–γ critical-path
/// attribution, and convergence diagnostics — as ASCII, CSV, and/or JSON.
///
/// Because the trace is deterministic (docs/observability.md), every
/// deterministic output of this tool is byte-identical no matter which
/// execution backend produced the capture. `-check` turns that promise
/// into an exit code: it fails unless the critical-path report reproduces
/// every fence's modeled seconds bit-exactly AND the comm-matrix totals
/// equal the run's simmpi.* counters (i.e. CommStats) exactly. Every rule
/// is evaluated — a failure is reported and accumulated, never an early
/// exit — so one pass lists everything wrong with a capture.
///
/// `-prof-record FILE` adds the host-profiling cross-rules: the
/// dsouth.prof_record document (a bench's `-prof-record` output) must
/// satisfy the span-nesting and lane-discipline invariants of src/prof,
/// and its allocation-window counters must equal the prof.* gauges the
/// driver exported into the trace, exactly.
///
/// Usage:
///   dsouth-analyze -trace runs.jsonl [-run SUBSTR] [-format ascii|csv|json|all]
///                  [-out PREFIX] [-top K] [-check] [-prof-record FILE] [-list]
///                  [-alpha A] [-beta B] [-gamma G] [-sigma S] [-flop_time C]
///
/// The machine-model flags must match the traced run's model (the benches
/// all use the MachineModel defaults); `-check` is how you find out when
/// they do not.

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <iterator>
#include <limits>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/render.hpp"
#include "analysis/run_trace.hpp"
#include "simmpi/machine_model.hpp"
#include "simmpi/stats.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

using dsouth::analysis::AnalyzeOptions;
using dsouth::analysis::RunAnalysis;
using dsouth::analysis::RunTrace;

/// Filesystem-friendly run label: [A-Za-z0-9._-] kept, runs of anything
/// else collapsed to one '_'.
std::string slug(const std::string& label) {
  std::string out;
  bool gap = false;
  for (char c : label) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '_';
    if (ok) {
      if (gap && !out.empty()) out += '_';
      gap = false;
      out += c;
    } else {
      gap = true;
    }
  }
  return out.empty() ? "run" : out;
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream os(path, std::ios::binary);
  DSOUTH_CHECK_MSG(os.good(), "cannot open '" << path << "' for writing");
  os << body;
  DSOUTH_CHECK_MSG(os.good(), "write to '" << path << "' failed");
  std::cerr << "wrote " << path << "\n";
}

/// One run of a `dsouth.prof_record` document (the `-prof-record` output
/// of any bench), reduced to what the cross-rules need: per-(lane, phase)
/// aggregates plus the allocation-window counters.
struct ProfRecordRun {
  struct PhaseSlot {
    std::string phase;
    int lane = -1;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
    std::uint64_t hist_sum = 0;
  };
  std::string label;
  int num_ranks = 0;
  bool alloc_tracking = false;
  std::uint64_t allocs_total = 0;
  std::uint64_t allocs_bytes = 0;
  std::uint64_t frees_total = 0;
  std::vector<PhaseSlot> phases;

  /// Summed total_ns of `phase` across rank lanes (lane < num_ranks) or on
  /// the runtime lane only (`runtime_lane` true).
  std::uint64_t phase_total(const std::string& phase,
                            bool runtime_lane) const {
    std::uint64_t sum = 0;
    for (const auto& s : phases) {
      if (s.phase == phase && (s.lane == num_ranks) == runtime_lane) {
        sum += s.total_ns;
      }
    }
    return sum;
  }
};

std::vector<ProfRecordRun> read_prof_record(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DSOUTH_CHECK_MSG(is.good(), "cannot open prof record '" << path << "'");
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  const dsouth::util::JsonValue doc = dsouth::util::parse_json(text);
  DSOUTH_CHECK_MSG(doc.at("schema").as_string() == "dsouth.prof_record",
                   "'" << path << "' is not a dsouth.prof_record document");
  std::vector<ProfRecordRun> runs;
  for (const auto& jr : doc.at("runs").as_array()) {
    ProfRecordRun run;
    run.label = jr.at("label").as_string();
    run.num_ranks = static_cast<int>(jr.at("num_ranks").as_int());
    run.alloc_tracking = jr.at("alloc_tracking").as_bool();
    run.allocs_total =
        static_cast<std::uint64_t>(jr.at("allocs_total").as_int());
    run.allocs_bytes =
        static_cast<std::uint64_t>(jr.at("allocs_bytes").as_int());
    run.frees_total =
        static_cast<std::uint64_t>(jr.at("frees_total").as_int());
    for (const auto& jp : jr.at("phases").as_array()) {
      ProfRecordRun::PhaseSlot slot;
      slot.phase = jp.at("phase").as_string();
      slot.lane = static_cast<int>(jp.at("lane").as_int());
      slot.count = static_cast<std::uint64_t>(jp.at("count").as_int());
      slot.total_ns = static_cast<std::uint64_t>(jp.at("total_ns").as_int());
      slot.max_ns = static_cast<std::uint64_t>(jp.at("max_ns").as_int());
      for (const auto& b : jp.at("hist").as_array()) {
        slot.hist_sum += static_cast<std::uint64_t>(b.as_int());
      }
      run.phases.push_back(std::move(slot));
    }
    runs.push_back(std::move(run));
  }
  return runs;
}

/// The prof cross-rules for one record run: structural invariants every
/// profiler capture must satisfy regardless of backend or timing (lane
/// discipline, span nesting, histogram bookkeeping, alloc-hook
/// consistency). Prints one line per check; returns false if any fails.
bool check_prof_record_run(const ProfRecordRun& pr) {
  bool ok = true;
  auto check = [&](bool cond, const std::string& what) {
    std::cout << (cond ? "CHECK ok:   " : "CHECK FAIL: ") << what << "\n";
    ok = ok && cond;
  };

  check(pr.num_ranks >= 1, "prof run has num_ranks >= 1");
  bool slots_ok = true, lanes_ok = true, hists_ok = true;
  for (const auto& s : pr.phases) {
    // Rank lanes only carry the solver phases; the runtime lane only the
    // driver/fence/analysis phases (prof.hpp's lane discipline).
    const bool solver_phase = s.phase == "absorb" || s.phase == "relax" ||
                              s.phase == "encode" || s.phase == "stage";
    const bool runtime_phase = s.phase == "step" || s.phase == "fence" ||
                               s.phase == "delivery_policy" ||
                               s.phase == "node_prepass" ||
                               s.phase == "analysis";
    if (s.lane < 0 || s.lane > pr.num_ranks ||
        (s.lane == pr.num_ranks ? !runtime_phase : !solver_phase)) {
      lanes_ok = false;
    }
    // count * max_ns can exceed uint64; when it would overflow the
    // product is > UINT64_MAX >= total_ns, so the bound trivially holds.
    const bool prod_overflows =
        s.max_ns != 0 &&
        s.count > std::numeric_limits<std::uint64_t>::max() / s.max_ns;
    if (s.count == 0 || s.max_ns > s.total_ns ||
        (!prod_overflows && s.total_ns > s.count * s.max_ns)) {
      slots_ok = false;
    }
    if (s.hist_sum != s.count) hists_ok = false;
  }
  check(lanes_ok, "every slot is on a valid lane for its phase");
  check(slots_ok, "every slot has count >= 1 and max <= total <= count*max");
  check(hists_ok, "every slot's histogram sums to its span count");

  // Nesting: delivery-policy and node-prepass spans lie strictly inside
  // fence spans; every rank-lane span lies inside a driver step span, and
  // a lane's absorb/relax/stage spans are mutually disjoint, so per lane
  // their wall total cannot exceed the step wall total. (Encode is checked
  // separately: its spans can nest inside relax spans.)
  const std::uint64_t step_total = pr.phase_total("step", true);
  const std::uint64_t fence_total = pr.phase_total("fence", true);
  check(pr.phase_total("delivery_policy", true) +
            pr.phase_total("node_prepass", true) <=
        fence_total,
        "delivery-policy + node-prepass wall <= fence wall (nesting)");
  bool lanes_nested = true, encode_nested = true;
  for (int lane = 0; lane < pr.num_ranks; ++lane) {
    std::uint64_t disjoint = 0, encode = 0;
    for (const auto& s : pr.phases) {
      if (s.lane != lane) continue;
      if (s.phase == "encode") {
        encode = s.total_ns;
      } else {
        disjoint += s.total_ns;
      }
    }
    if (disjoint > step_total) lanes_nested = false;
    if (encode > step_total) encode_nested = false;
  }
  check(lanes_nested,
        "per rank lane: absorb + relax + stage wall <= step wall (nesting)");
  check(encode_nested, "per rank lane: encode wall <= step wall (nesting)");

  // The alloc counters only move when the interposing hook is linked in.
  check(pr.alloc_tracking ||
            (pr.allocs_total == 0 && pr.allocs_bytes == 0 &&
             pr.frees_total == 0),
        "alloc counters are zero when alloc tracking is off");
  return ok;
}

/// Cross-checks one trace run against its prof-record counterpart: the
/// driver exports the profiler's own alloc-window counters as prof.*
/// gauges, so trace and record must agree exactly. Returns false on any
/// mismatch (including a missing record entry).
bool check_prof_vs_trace(const RunTrace& run,
                         const std::vector<ProfRecordRun>& record) {
  bool ok = true;
  auto check = [&](bool cond, const std::string& what) {
    std::cout << (cond ? "CHECK ok:   " : "CHECK FAIL: ") << what << "\n";
    ok = ok && cond;
  };
  const ProfRecordRun* pr = nullptr;
  for (const auto& r : record) {
    if (r.label == run.label) pr = &r;
  }
  check(pr != nullptr, "prof record has an entry for this run label");
  if (pr == nullptr) return ok;
  check(pr->num_ranks == run.num_ranks, "prof record num_ranks == trace P");
  auto metric_total = [&](const char* name) -> std::uint64_t {
    const auto* m = run.find_metric(name);
    return m ? static_cast<std::uint64_t>(m->total()) : 0;
  };
  if (run.find_metric("prof.allocs_total") != nullptr) {
    check(metric_total("prof.alloc_tracking") ==
              (pr->alloc_tracking ? 1U : 0U),
          "prof.alloc_tracking metric == prof record alloc_tracking");
    check(metric_total("prof.allocs_total") == pr->allocs_total,
          "prof.allocs_total metric == prof record allocs_total");
    check(metric_total("prof.allocs_bytes") == pr->allocs_bytes,
          "prof.allocs_bytes metric == prof record allocs_bytes");
    check(metric_total("prof.frees_total") == pr->frees_total,
          "prof.frees_total metric == prof record frees_total");
  } else {
    check(false,
          "trace has prof.* gauges (required when -prof-record is given)");
  }
  return ok;
}

/// The `-check` consistency gate for one run. Prints one line per check;
/// returns false if any fails.
bool run_checks(const RunTrace& run, const RunAnalysis& a) {
  bool ok = true;
  auto check = [&](bool cond, const std::string& what) {
    std::cout << (cond ? "CHECK ok:   " : "CHECK FAIL: ") << what << "\n";
    ok = ok && cond;
  };

  check(run.dropped_events == 0, "trace is drop-free");
  check(a.critical_path.model_matches,
        "critical path reproduces every fence's modeled seconds bit-exactly");

  // Comm-matrix totals vs the run's end-of-run counters (CommStats' view).
  auto counter_total = [&](const char* name) -> std::uint64_t {
    const auto* m = run.find_metric(name);
    return m ? static_cast<std::uint64_t>(m->total()) : 0;
  };
  if (run.find_metric("simmpi.msgs_sent") != nullptr) {
    check(a.comm.total_msgs == counter_total("simmpi.msgs_sent"),
          "comm matrix total msgs == simmpi.msgs_sent");
    check(a.comm.total_bytes == counter_total("simmpi.bytes_sent"),
          "comm matrix total bytes == simmpi.bytes_sent");
    using dsouth::simmpi::MsgTag;
    check(a.comm.total_by_tag[static_cast<int>(MsgTag::kSolve)] ==
              counter_total("simmpi.msgs_solve"),
          "solve-tag msgs == simmpi.msgs_solve");
    check(a.comm.total_by_tag[static_cast<int>(MsgTag::kResidual)] ==
              counter_total("simmpi.msgs_residual"),
          "residual-tag msgs == simmpi.msgs_residual");
    check(a.comm.total_by_tag[static_cast<int>(MsgTag::kOther)] ==
              counter_total("simmpi.msgs_other"),
          "other-tag msgs == simmpi.msgs_other");
    // Wire-layer split (present in traces since the codec landed): kPut
    // events and the comm matrix count physical puts, so msgs_physical
    // must equal the matrix total; logical records can only exceed the
    // physical count (coalesced frames carry several records per put).
    if (run.find_metric("simmpi.msgs_physical") != nullptr) {
      check(a.comm.total_msgs == counter_total("simmpi.msgs_physical"),
            "comm matrix total msgs == simmpi.msgs_physical");
      check(counter_total("simmpi.msgs_logical") >=
                counter_total("simmpi.msgs_physical"),
            "simmpi.msgs_logical >= simmpi.msgs_physical");
    }
  } else {
    check(false, "trace has simmpi.* counters (needed for comm cross-check)");
  }

  // Fault-injection cross-checks: the runtime bumps one simmpi.faults_*
  // counter per fault event it records (faults_corrupted covers both the
  // corrupt and truncate actions; stalls have no counter), so the version-3
  // event tallies must reproduce the metric totals exactly. Traces without
  // the counters (fault-free runs, older captures) skip this block — the
  // fault report is then all-zero and there is nothing to cross-check.
  if (run.find_metric("simmpi.faults_dropped") != nullptr) {
    using dsouth::analysis::FaultReport;
    const auto& f = a.faults;
    check(f.by_action[FaultReport::kDrop] ==
              counter_total("simmpi.faults_dropped"),
          "drop fault events == simmpi.faults_dropped");
    check(f.by_action[FaultReport::kDuplicate] ==
              counter_total("simmpi.faults_duplicated"),
          "duplicate fault events == simmpi.faults_duplicated");
    check(f.by_action[FaultReport::kReorder] ==
              counter_total("simmpi.faults_reordered"),
          "reorder fault events == simmpi.faults_reordered");
    check(f.by_action[FaultReport::kCorrupt] +
                  f.by_action[FaultReport::kTruncate] ==
              counter_total("simmpi.faults_corrupted"),
          "corrupt+truncate fault events == simmpi.faults_corrupted");
  }

  // Async-delivery cross-checks: under the EventDriven policy the runtime
  // records one version-4 deliver event per matured message and bumps the
  // simmpi.async_* metrics in the same place, so event tallies and metric
  // totals must agree exactly. Bulk-synchronous traces lack the counters
  // and skip the block (the async report is then all-zero).
  if (run.find_metric("simmpi.async_delivered") != nullptr) {
    check(a.async.delivered == counter_total("simmpi.async_delivered"),
          "deliver events == simmpi.async_delivered");
    check(a.async.staleness_sum ==
              counter_total("simmpi.async_staleness_sum"),
          "deliver-event staleness sum == simmpi.async_staleness_sum");
    // async_staleness_max is a per-rank gauge: compare against the max
    // slot, not the sum.
    std::uint64_t metric_max = 0;
    if (const auto* m = run.find_metric("simmpi.async_staleness_max")) {
      for (double v : m->per_rank) {
        metric_max = std::max(metric_max, static_cast<std::uint64_t>(v));
      }
    }
    check(a.async.staleness_max == metric_max,
          "deliver-event staleness max == simmpi.async_staleness_max");
  }

  // Node-aware routing cross-checks: the fence pre-pass records one
  // version-5 hop event per physical message and bumps the simmpi.node_*
  // counters in the same place, so the event tier sums must reproduce the
  // metric totals exactly, and the leader->leader hop count must equal the
  // forward-frame counter. Single-level traces lack the counters and skip
  // the block (the node report is then all-zero).
  if (run.find_metric("simmpi.node_msgs_intra") != nullptr) {
    using dsouth::analysis::NodeReport;
    const auto& n = a.node;
    check(n.msgs_intra == counter_total("simmpi.node_msgs_intra"),
          "intra-tier hop events == simmpi.node_msgs_intra");
    check(n.bytes_intra == counter_total("simmpi.node_bytes_intra"),
          "intra-tier hop bytes == simmpi.node_bytes_intra");
    check(n.msgs_inter == counter_total("simmpi.node_msgs_inter"),
          "inter-tier hop events == simmpi.node_msgs_inter");
    check(n.bytes_inter == counter_total("simmpi.node_bytes_inter"),
          "inter-tier hop bytes == simmpi.node_bytes_inter");
    check(n.hops_by_kind[dsouth::trace::kHopInterLeader] ==
              counter_total("simmpi.node_forward_frames"),
          "leader->leader hop events == simmpi.node_forward_frames");
    check(n.forwarded_records ==
              counter_total("simmpi.node_forwarded_records"),
          "forwarded-record tally == simmpi.node_forwarded_records");
  }

  // Elastic recovery cross-checks: the elastic driver records version-6
  // events but no metrics (the final generation's CommStats were restored
  // from a checkpoint, so counters cannot corroborate events), so these
  // rules are internal to the event stream. Every recovery emits exactly
  // one restore, one repartition per dead rank, and one fresh checkpoint,
  // after the mandatory step-0 checkpoint — the stream must show that
  // shape. Kill-free traces carry no elastic events and skip the block.
  if (a.elastic.any()) {
    using dsouth::analysis::ElasticReport;
    const auto& el = a.elastic;
    check(el.by_action[ElasticReport::kCheckpoint] +
                  el.by_action[ElasticReport::kKill] +
                  el.by_action[ElasticReport::kRestore] +
                  el.by_action[ElasticReport::kRepartition] ==
              el.total,
          "every elastic event carries a known action code");
    check(el.by_action[ElasticReport::kCheckpoint] > 0,
          "elastic trace has at least one checkpoint event");
    check(el.checkpoint_bytes_min > 0,
          "every checkpoint event carries a positive byte count");
    check(el.by_action[ElasticReport::kRestore] <=
              el.by_action[ElasticReport::kKill],
          "restore events <= kill events (a restore needs a death)");
    check(el.by_action[ElasticReport::kRepartition] ==
              el.by_action[ElasticReport::kKill],
          "one repartition event per detected kill");
    check(el.restores_ordered,
          "every restore follows a checkpoint and a kill in stream order");
    check(el.by_action[ElasticReport::kKill] <
              static_cast<std::uint64_t>(run.num_ranks),
          "fewer kills than ranks (someone survived to recover)");
    bool ranks_ok = true;
    std::vector<char> seen(static_cast<std::size_t>(run.num_ranks), 0);
    for (int r : el.dead_ranks) {
      if (r < 0 || r >= run.num_ranks || seen[static_cast<std::size_t>(r)]) {
        ranks_ok = false;
        break;
      }
      seen[static_cast<std::size_t>(r)] = 1;
    }
    check(ranks_ok, "kill events name distinct in-range ranks");
  }
  return ok;
}

int run_main(int argc, char** argv) {
  dsouth::util::ArgParser args(argc, argv);

  if (args.has("help")) {
    std::cout
        << "usage: " << args.program() << " -trace FILE [options]\n"
        << "  -trace FILE    JSONL trace capture (required)\n"
        << "  -list          list run labels in the capture and exit\n"
        << "  -run SUBSTR    only analyze runs whose label contains SUBSTR\n"
        << "  -format F      ascii|csv|json|all (default ascii)\n"
        << "  -out PREFIX    file prefix for csv/json output\n"
        << "                 (default: trace path minus .jsonl)\n"
        << "  -top K         hot pairs to list (default 10)\n"
        << "  -check         verify model reconstruction + counter\n"
        << "                 consistency; nonzero exit on failure\n"
        << "                 (every rule runs; failures accumulate)\n"
        << "  -prof-record FILE  dsouth.prof_record to cross-check against\n"
        << "                 the trace's prof.* gauges (implies -check)\n"
        << "  -alpha/-beta/-gamma/-sigma/-flop_time  machine model\n"
        << "                 overrides (defaults match the benches)\n";
    return 0;
  }

  auto trace_path = args.get("trace");
  DSOUTH_CHECK_MSG(trace_path.has_value(),
                   "missing required -trace FILE (see -help)");

  const bool list_only = args.has("list");
  const std::string run_filter = args.get_or("run", "");
  const std::string format =
      args.get_choice_or("format", {"ascii", "csv", "json", "all"}, "ascii");
  const auto prof_record_path = args.get("prof-record");
  const bool check = args.has("check") || prof_record_path.has_value();
  std::string out_prefix = args.get_or("out", "");
  if (out_prefix.empty()) {
    out_prefix = *trace_path;
    const std::string ext = ".jsonl";
    if (out_prefix.size() > ext.size() &&
        out_prefix.compare(out_prefix.size() - ext.size(), ext.size(), ext) ==
            0) {
      out_prefix.resize(out_prefix.size() - ext.size());
    }
  }

  AnalyzeOptions opt;
  opt.top_pairs = static_cast<int>(args.get_int_or("top", 10));
  opt.model.alpha = args.get_double_or("alpha", opt.model.alpha);
  opt.model.beta = args.get_double_or("beta", opt.model.beta);
  opt.model.gamma = args.get_double_or("gamma", opt.model.gamma);
  opt.model.sigma = args.get_double_or("sigma", opt.model.sigma);
  opt.model.flop_time = args.get_double_or("flop_time", opt.model.flop_time);

  auto unknown = args.unqueried();
  DSOUTH_CHECK_MSG(unknown.empty(), "unknown option -" << unknown.front()
                                                       << " (see -help)");

  std::vector<RunTrace> runs =
      dsouth::analysis::read_jsonl_file(*trace_path);
  DSOUTH_CHECK_MSG(!runs.empty(), "no runs found in '" << *trace_path << "'");

  std::vector<ProfRecordRun> prof_record;
  if (prof_record_path.has_value()) {
    prof_record = read_prof_record(*prof_record_path);
    DSOUTH_CHECK_MSG(!prof_record.empty(),
                     "no runs in prof record '" << *prof_record_path << "'");
  }

  if (list_only) {
    for (const auto& r : runs) {
      std::cout << r.label << "  (P=" << r.num_ranks << ", "
                << r.events.size() << " events, v" << r.version << ")\n";
    }
    return 0;
  }

  bool all_ok = true;
  int analyzed = 0;
  for (const auto& run : runs) {
    if (!run_filter.empty() &&
        run.label.find(run_filter) == std::string::npos) {
      continue;
    }
    ++analyzed;
    RunAnalysis a = dsouth::analysis::analyze_run(run, opt);

    if (format == "ascii" || format == "all") {
      dsouth::analysis::render_ascii(std::cout, a, opt);
      std::cout << "\n";
    }
    if (format == "csv" || format == "all") {
      const std::string base = out_prefix + "_" + slug(run.label);
      write_file(base + "_timeline.csv", dsouth::analysis::timeline_csv(a));
      write_file(base + "_steps.csv", dsouth::analysis::steps_csv(a));
      write_file(base + "_comm_matrix.csv",
                 dsouth::analysis::comm_matrix_csv(a));
      write_file(base + "_critical_path.csv",
                 dsouth::analysis::critical_path_csv(a));
      write_file(base + "_convergence.csv",
                 dsouth::analysis::convergence_csv(a));
    }
    if (format == "json" || format == "all") {
      write_file(out_prefix + "_" + slug(run.label) + ".json",
                 dsouth::analysis::to_json(a, opt));
    }
    if (check) {
      std::cout << "consistency checks for '" << run.label << "':\n";
      if (!run_checks(run, a)) all_ok = false;
      if (prof_record_path.has_value() &&
          !check_prof_vs_trace(run, prof_record)) {
        all_ok = false;
      }
      std::cout << "\n";
    }
  }

  // Structural prof-record rules run once per record entry, unfiltered —
  // the record is one document, its invariants hold run by run.
  for (const auto& pr : prof_record) {
    std::cout << "prof record checks for '" << pr.label << "':\n";
    if (!check_prof_record_run(pr)) all_ok = false;
    std::cout << "\n";
  }

  DSOUTH_CHECK_MSG(analyzed > 0, "no run label contains '" << run_filter
                                                           << "'");
  if (check) {
    std::cout << (all_ok ? "all consistency checks passed"
                         : "CONSISTENCY CHECKS FAILED")
              << " (" << analyzed << " run" << (analyzed == 1 ? "" : "s")
              << ")\n";
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_main(argc, argv);
  } catch (const dsouth::util::CheckError& e) {
    std::cerr << "dsouth-analyze: " << e.what() << "\n";
    return 2;
  }
}
