/// \file dsouth_analyze.cpp
/// `dsouth-analyze`: the offline half of the observability stack. Reads a
/// JSON Lines trace capture (the `-trace foo.jsonl` output of any
/// distributed bench, possibly holding several runs) and emits, per run,
/// the four analyzer reports — per-rank timeline & load imbalance, P×P
/// communication matrix with hot-pair ranking, α–β–γ critical-path
/// attribution, and convergence diagnostics — as ASCII, CSV, and/or JSON.
///
/// Because the trace is deterministic (docs/observability.md), every
/// deterministic output of this tool is byte-identical no matter which
/// execution backend produced the capture. `-check` turns that promise
/// into an exit code: it fails unless the critical-path report reproduces
/// every fence's modeled seconds bit-exactly AND the comm-matrix totals
/// equal the run's simmpi.* counters (i.e. CommStats) exactly.
///
/// Usage:
///   dsouth-analyze -trace runs.jsonl [-run SUBSTR] [-format ascii|csv|json|all]
///                  [-out PREFIX] [-top K] [-check] [-list]
///                  [-alpha A] [-beta B] [-gamma G] [-sigma S] [-flop_time C]
///
/// The machine-model flags must match the traced run's model (the benches
/// all use the MachineModel defaults); `-check` is how you find out when
/// they do not.

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/render.hpp"
#include "analysis/run_trace.hpp"
#include "simmpi/machine_model.hpp"
#include "simmpi/stats.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/cli.hpp"

namespace {

using dsouth::analysis::AnalyzeOptions;
using dsouth::analysis::RunAnalysis;
using dsouth::analysis::RunTrace;

/// Filesystem-friendly run label: [A-Za-z0-9._-] kept, runs of anything
/// else collapsed to one '_'.
std::string slug(const std::string& label) {
  std::string out;
  bool gap = false;
  for (char c : label) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '_';
    if (ok) {
      if (gap && !out.empty()) out += '_';
      gap = false;
      out += c;
    } else {
      gap = true;
    }
  }
  return out.empty() ? "run" : out;
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream os(path, std::ios::binary);
  DSOUTH_CHECK_MSG(os.good(), "cannot open '" << path << "' for writing");
  os << body;
  DSOUTH_CHECK_MSG(os.good(), "write to '" << path << "' failed");
  std::cerr << "wrote " << path << "\n";
}

/// The `-check` consistency gate for one run. Prints one line per check;
/// returns false if any fails.
bool run_checks(const RunTrace& run, const RunAnalysis& a) {
  bool ok = true;
  auto check = [&](bool cond, const std::string& what) {
    std::cout << (cond ? "CHECK ok:   " : "CHECK FAIL: ") << what << "\n";
    ok = ok && cond;
  };

  check(run.dropped_events == 0, "trace is drop-free");
  check(a.critical_path.model_matches,
        "critical path reproduces every fence's modeled seconds bit-exactly");

  // Comm-matrix totals vs the run's end-of-run counters (CommStats' view).
  auto counter_total = [&](const char* name) -> std::uint64_t {
    const auto* m = run.find_metric(name);
    return m ? static_cast<std::uint64_t>(m->total()) : 0;
  };
  if (run.find_metric("simmpi.msgs_sent") != nullptr) {
    check(a.comm.total_msgs == counter_total("simmpi.msgs_sent"),
          "comm matrix total msgs == simmpi.msgs_sent");
    check(a.comm.total_bytes == counter_total("simmpi.bytes_sent"),
          "comm matrix total bytes == simmpi.bytes_sent");
    using dsouth::simmpi::MsgTag;
    check(a.comm.total_by_tag[static_cast<int>(MsgTag::kSolve)] ==
              counter_total("simmpi.msgs_solve"),
          "solve-tag msgs == simmpi.msgs_solve");
    check(a.comm.total_by_tag[static_cast<int>(MsgTag::kResidual)] ==
              counter_total("simmpi.msgs_residual"),
          "residual-tag msgs == simmpi.msgs_residual");
    check(a.comm.total_by_tag[static_cast<int>(MsgTag::kOther)] ==
              counter_total("simmpi.msgs_other"),
          "other-tag msgs == simmpi.msgs_other");
    // Wire-layer split (present in traces since the codec landed): kPut
    // events and the comm matrix count physical puts, so msgs_physical
    // must equal the matrix total; logical records can only exceed the
    // physical count (coalesced frames carry several records per put).
    if (run.find_metric("simmpi.msgs_physical") != nullptr) {
      check(a.comm.total_msgs == counter_total("simmpi.msgs_physical"),
            "comm matrix total msgs == simmpi.msgs_physical");
      check(counter_total("simmpi.msgs_logical") >=
                counter_total("simmpi.msgs_physical"),
            "simmpi.msgs_logical >= simmpi.msgs_physical");
    }
  } else {
    check(false, "trace has simmpi.* counters (needed for comm cross-check)");
  }

  // Fault-injection cross-checks: the runtime bumps one simmpi.faults_*
  // counter per fault event it records (faults_corrupted covers both the
  // corrupt and truncate actions; stalls have no counter), so the version-3
  // event tallies must reproduce the metric totals exactly. Traces without
  // the counters (fault-free runs, older captures) skip this block — the
  // fault report is then all-zero and there is nothing to cross-check.
  if (run.find_metric("simmpi.faults_dropped") != nullptr) {
    using dsouth::analysis::FaultReport;
    const auto& f = a.faults;
    check(f.by_action[FaultReport::kDrop] ==
              counter_total("simmpi.faults_dropped"),
          "drop fault events == simmpi.faults_dropped");
    check(f.by_action[FaultReport::kDuplicate] ==
              counter_total("simmpi.faults_duplicated"),
          "duplicate fault events == simmpi.faults_duplicated");
    check(f.by_action[FaultReport::kReorder] ==
              counter_total("simmpi.faults_reordered"),
          "reorder fault events == simmpi.faults_reordered");
    check(f.by_action[FaultReport::kCorrupt] +
                  f.by_action[FaultReport::kTruncate] ==
              counter_total("simmpi.faults_corrupted"),
          "corrupt+truncate fault events == simmpi.faults_corrupted");
  }

  // Async-delivery cross-checks: under the EventDriven policy the runtime
  // records one version-4 deliver event per matured message and bumps the
  // simmpi.async_* metrics in the same place, so event tallies and metric
  // totals must agree exactly. Bulk-synchronous traces lack the counters
  // and skip the block (the async report is then all-zero).
  if (run.find_metric("simmpi.async_delivered") != nullptr) {
    check(a.async.delivered == counter_total("simmpi.async_delivered"),
          "deliver events == simmpi.async_delivered");
    check(a.async.staleness_sum ==
              counter_total("simmpi.async_staleness_sum"),
          "deliver-event staleness sum == simmpi.async_staleness_sum");
    // async_staleness_max is a per-rank gauge: compare against the max
    // slot, not the sum.
    std::uint64_t metric_max = 0;
    if (const auto* m = run.find_metric("simmpi.async_staleness_max")) {
      for (double v : m->per_rank) {
        metric_max = std::max(metric_max, static_cast<std::uint64_t>(v));
      }
    }
    check(a.async.staleness_max == metric_max,
          "deliver-event staleness max == simmpi.async_staleness_max");
  }

  // Node-aware routing cross-checks: the fence pre-pass records one
  // version-5 hop event per physical message and bumps the simmpi.node_*
  // counters in the same place, so the event tier sums must reproduce the
  // metric totals exactly, and the leader->leader hop count must equal the
  // forward-frame counter. Single-level traces lack the counters and skip
  // the block (the node report is then all-zero).
  if (run.find_metric("simmpi.node_msgs_intra") != nullptr) {
    using dsouth::analysis::NodeReport;
    const auto& n = a.node;
    check(n.msgs_intra == counter_total("simmpi.node_msgs_intra"),
          "intra-tier hop events == simmpi.node_msgs_intra");
    check(n.bytes_intra == counter_total("simmpi.node_bytes_intra"),
          "intra-tier hop bytes == simmpi.node_bytes_intra");
    check(n.msgs_inter == counter_total("simmpi.node_msgs_inter"),
          "inter-tier hop events == simmpi.node_msgs_inter");
    check(n.bytes_inter == counter_total("simmpi.node_bytes_inter"),
          "inter-tier hop bytes == simmpi.node_bytes_inter");
    check(n.hops_by_kind[dsouth::trace::kHopInterLeader] ==
              counter_total("simmpi.node_forward_frames"),
          "leader->leader hop events == simmpi.node_forward_frames");
    check(n.forwarded_records ==
              counter_total("simmpi.node_forwarded_records"),
          "forwarded-record tally == simmpi.node_forwarded_records");
  }
  return ok;
}

int run_main(int argc, char** argv) {
  dsouth::util::ArgParser args(argc, argv);

  if (args.has("help")) {
    std::cout
        << "usage: " << args.program() << " -trace FILE [options]\n"
        << "  -trace FILE    JSONL trace capture (required)\n"
        << "  -list          list run labels in the capture and exit\n"
        << "  -run SUBSTR    only analyze runs whose label contains SUBSTR\n"
        << "  -format F      ascii|csv|json|all (default ascii)\n"
        << "  -out PREFIX    file prefix for csv/json output\n"
        << "                 (default: trace path minus .jsonl)\n"
        << "  -top K         hot pairs to list (default 10)\n"
        << "  -check         verify model reconstruction + counter\n"
        << "                 consistency; nonzero exit on failure\n"
        << "  -alpha/-beta/-gamma/-sigma/-flop_time  machine model\n"
        << "                 overrides (defaults match the benches)\n";
    return 0;
  }

  auto trace_path = args.get("trace");
  DSOUTH_CHECK_MSG(trace_path.has_value(),
                   "missing required -trace FILE (see -help)");

  const bool list_only = args.has("list");
  const std::string run_filter = args.get_or("run", "");
  const std::string format =
      args.get_choice_or("format", {"ascii", "csv", "json", "all"}, "ascii");
  const bool check = args.has("check");
  std::string out_prefix = args.get_or("out", "");
  if (out_prefix.empty()) {
    out_prefix = *trace_path;
    const std::string ext = ".jsonl";
    if (out_prefix.size() > ext.size() &&
        out_prefix.compare(out_prefix.size() - ext.size(), ext.size(), ext) ==
            0) {
      out_prefix.resize(out_prefix.size() - ext.size());
    }
  }

  AnalyzeOptions opt;
  opt.top_pairs = static_cast<int>(args.get_int_or("top", 10));
  opt.model.alpha = args.get_double_or("alpha", opt.model.alpha);
  opt.model.beta = args.get_double_or("beta", opt.model.beta);
  opt.model.gamma = args.get_double_or("gamma", opt.model.gamma);
  opt.model.sigma = args.get_double_or("sigma", opt.model.sigma);
  opt.model.flop_time = args.get_double_or("flop_time", opt.model.flop_time);

  auto unknown = args.unqueried();
  DSOUTH_CHECK_MSG(unknown.empty(), "unknown option -" << unknown.front()
                                                       << " (see -help)");

  std::vector<RunTrace> runs =
      dsouth::analysis::read_jsonl_file(*trace_path);
  DSOUTH_CHECK_MSG(!runs.empty(), "no runs found in '" << *trace_path << "'");

  if (list_only) {
    for (const auto& r : runs) {
      std::cout << r.label << "  (P=" << r.num_ranks << ", "
                << r.events.size() << " events, v" << r.version << ")\n";
    }
    return 0;
  }

  bool all_ok = true;
  int analyzed = 0;
  for (const auto& run : runs) {
    if (!run_filter.empty() &&
        run.label.find(run_filter) == std::string::npos) {
      continue;
    }
    ++analyzed;
    RunAnalysis a = dsouth::analysis::analyze_run(run, opt);

    if (format == "ascii" || format == "all") {
      dsouth::analysis::render_ascii(std::cout, a, opt);
      std::cout << "\n";
    }
    if (format == "csv" || format == "all") {
      const std::string base = out_prefix + "_" + slug(run.label);
      write_file(base + "_timeline.csv", dsouth::analysis::timeline_csv(a));
      write_file(base + "_steps.csv", dsouth::analysis::steps_csv(a));
      write_file(base + "_comm_matrix.csv",
                 dsouth::analysis::comm_matrix_csv(a));
      write_file(base + "_critical_path.csv",
                 dsouth::analysis::critical_path_csv(a));
      write_file(base + "_convergence.csv",
                 dsouth::analysis::convergence_csv(a));
    }
    if (format == "json" || format == "all") {
      write_file(out_prefix + "_" + slug(run.label) + ".json",
                 dsouth::analysis::to_json(a, opt));
    }
    if (check) {
      std::cout << "consistency checks for '" << run.label << "':\n";
      if (!run_checks(run, a)) all_ok = false;
      std::cout << "\n";
    }
  }

  DSOUTH_CHECK_MSG(analyzed > 0, "no run label contains '" << run_filter
                                                           << "'");
  if (check) {
    std::cout << (all_ok ? "all consistency checks passed"
                         : "CONSISTENCY CHECKS FAILED")
              << " (" << analyzed << " run" << (analyzed == 1 ? "" : "s")
              << ")\n";
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_main(argc, argv);
  } catch (const dsouth::util::CheckError& e) {
    std::cerr << "dsouth-analyze: " << e.what() << "\n";
    return 2;
  }
}
