#!/usr/bin/env python3
"""Check that local links in the repo's markdown docs resolve.

Usage: tools/check_markdown_links.py FILE [FILE ...]

Verifies every inline markdown link/image target that is not an external
URL or a pure in-page anchor: the referenced path must exist relative to
the containing file (or the repo root, for absolute-style paths). Exits
nonzero listing every broken link. External http(s)/mailto links are not
fetched — this guards against repo-internal drift (renamed docs, moved
sources), not the internet.
"""

import re
import sys
from pathlib import Path

# Inline links/images: [text](target) — tolerates one level of nested
# brackets in the text, strips optional "title" suffixes in the target.
LINK_RE = re.compile(r"!?\[(?:[^\[\]]|\[[^\]]*\])*\]\(([^()\s]+(?:\([^()]*\))?)\)")
EXTERNAL = ("http://", "https://", "mailto:")


def iter_targets(text):
    # Fenced code blocks routinely contain example syntax; skip them.
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield lineno, match.group(1)


def check_file(md_path, repo_root):
    errors = []
    text = md_path.read_text(encoding="utf-8")
    for lineno, target in iter_targets(text):
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        if path_part.startswith("/"):
            resolved = repo_root / path_part.lstrip("/")
        else:
            resolved = md_path.parent / path_part
        if not resolved.exists():
            errors.append(f"{md_path}:{lineno}: broken link -> {target}")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    repo_root = Path(__file__).resolve().parent.parent
    errors = []
    for name in argv[1:]:
        md_path = Path(name)
        if not md_path.exists():
            errors.append(f"{name}: file not found")
            continue
        errors.extend(check_file(md_path, repo_root))
    for err in errors:
        print(err, file=sys.stderr)
    if not errors:
        print(f"ok: {len(argv) - 1} files, all local links resolve")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
