#!/usr/bin/env python3
"""Compare a fresh bench record against a committed baseline.

The benches' `-json` flag writes a versioned record (schema
"dsouth.bench_record", see docs/observability.md) whose `deterministic`
block holds only quantities that are bit-identical across execution
backends and thread counts: parallel steps, modeled time, CommStats
message/byte totals, the final residual, plus any bench-specific extras
(e.g. bench/scaling's allocs_per_step). Every deterministic field the
baseline lists is compared — exactly by default — so any drift is a real
behavior change, not noise; a field the fresh record *lacks* is a hard
failure (stale binary or dropped instrumentation), while fields only the
fresh record has are noted for the next baseline refresh. The `advisory`
block (wall-clock seconds) and the backend/threads config never gate;
advisory drift is printed as a labeled warning table instead.

Usage:
  bench_compare.py BASELINE.json FRESH.json [options]

Options:
  --float-rel-tol X   relative tolerance for the deterministic float
                      fields (modeled_time, comm_cost, final_residual).
                      Default 0.0 = bit-exact. Integers are always exact.
  --ignore-missing    do not fail when the fresh record lacks runs the
                      baseline has (partial reruns, e.g. -matrices subset)

Exit status: 0 = no deterministic drift, 1 = drift or run-set mismatch,
2 = bad invocation / unreadable or malformed record.
"""

import argparse
import json
import sys

SCHEMA = "dsouth.bench_record"
SCHEMA_VERSION = 1

# Every deterministic field the BASELINE lists is compared (fields are
# baseline-driven so bench-specific extras like allocs_per_step gate too);
# these are the fields compared with --float-rel-tol instead of exactly.
FLOAT_DETERMINISTIC_FIELDS = {
    "modeled_time",
    "comm_cost",
    "final_residual",
    "staleness_mean",
}

# The core fields every record carries; a baseline missing one is corrupt.
CORE_DETERMINISTIC_FIELDS = [
    "steps",
    "msgs_total",
    "msgs_solve",
    "msgs_residual",
    "msgs_other",
    "bytes_total",
    "modeled_time",
    "comm_cost",
    "final_residual",
]

# Config fields that must agree for the comparison to be meaningful.
# backend/threads are deliberately absent: results are bit-identical
# across backends, so comparing records from different backends is not
# only legal but the point.
CONFIG_FIELDS = ["matrix", "method", "procs", "n"]

# Batched-serving records (bench/throughput) carry one
# tenant_{records,doubles,steps}_<t> triple per tenant — up to B = 64
# tenants, so per-field reporting would drown the output. Fields in this
# family still gate individually, but FAIL/note lines for them collapse
# into one summary row per run.
TENANT_FIELD_PREFIX = "tenant_"

# Elastic-recovery records (bench/elastic_recovery) carry the analogous
# recovery_* family: run-level recovery totals plus one
# recovery_{dead_rank,resumed_step}_<i> pair per detected kill. Same
# grouped reporting.
RECOVERY_FIELD_PREFIX = "recovery_"

# Field families whose FAIL/note lines collapse into one row per run.
GROUPED_FIELD_PREFIXES = (TENANT_FIELD_PREFIX, RECOVERY_FIELD_PREFIX)


def field_family(key):
    """The grouped-family prefix `key` belongs to, or None."""
    for prefix in GROUPED_FIELD_PREFIXES:
        if key.startswith(prefix):
            return prefix
    return None


def load_record(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read '{path}': {e}")
    if doc.get("schema") != SCHEMA:
        sys.exit(f"bench_compare: '{path}' is not a {SCHEMA} document")
    if doc.get("schema_version") != SCHEMA_VERSION:
        sys.exit(
            f"bench_compare: '{path}' has schema_version "
            f"{doc.get('schema_version')!r}, this tool knows {SCHEMA_VERSION}"
        )
    return doc


def rel_diff(a, b):
    scale = max(abs(a), abs(b))
    return abs(a - b) / scale if scale > 0 else 0.0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--float-rel-tol", type=float, default=0.0)
    ap.add_argument("--ignore-missing", action="store_true")
    args = ap.parse_args()

    base = load_record(args.baseline)
    fresh = load_record(args.fresh)

    if base.get("bench") != fresh.get("bench"):
        print(
            f"NOTE: comparing different benches: baseline "
            f"'{base.get('bench')}' vs fresh '{fresh.get('bench')}'"
        )
    print(
        f"baseline: {args.baseline} (git {base.get('git_sha', '?')[:12]}, "
        f"{len(base.get('runs', []))} runs)"
    )
    print(
        f"fresh:    {args.fresh} (git {fresh.get('git_sha', '?')[:12]}, "
        f"{len(fresh.get('runs', []))} runs)"
    )

    base_runs = {r["label"]: r for r in base.get("runs", [])}
    fresh_runs = {r["label"]: r for r in fresh.get("runs", [])}

    failures = 0
    compared = 0
    advisory_drift = []  # (label, field, baseline, fresh)

    missing = sorted(set(base_runs) - set(fresh_runs))
    extra = sorted(set(fresh_runs) - set(base_runs))
    if missing and not args.ignore_missing:
        failures += len(missing)
        for label in missing:
            print(f"FAIL [{label}]: in baseline but not in fresh record")
    elif missing:
        print(f"note: {len(missing)} baseline run(s) absent from fresh record (ignored)")
    for label in extra:
        # New runs cannot regress anything; surface them for baseline refresh.
        print(f"note: fresh run '{label}' has no baseline (add one to gate it)")

    wall_base = wall_fresh = 0.0
    for label in sorted(set(base_runs) & set(fresh_runs)):
        b, f = base_runs[label], fresh_runs[label]
        compared += 1

        for key in CONFIG_FIELDS:
            bv, fv = b["config"].get(key), f["config"].get(key)
            if bv != fv:
                failures += 1
                print(f"FAIL [{label}] config.{key}: baseline {bv!r} != fresh {fv!r}")

        for key in CORE_DETERMINISTIC_FIELDS:
            if key not in b["deterministic"]:
                failures += 1
                print(
                    f"FAIL [{label}] {key}: baseline record lacks this core "
                    f"deterministic field — the baseline is corrupt, "
                    f"regenerate it"
                )

        # Baseline-driven: every deterministic field the baseline gates on
        # must exist in the fresh record and match. Fields only the fresh
        # record carries are new instrumentation; they gate from the next
        # baseline refresh on. Failures in grouped families (tenant_*,
        # recovery_*) collapse into one summary line per run (they still
        # count individually).
        family_failures = {p: [] for p in GROUPED_FIELD_PREFIXES}
        for key in sorted(b["deterministic"]):
            family = field_family(key)
            if key not in f["deterministic"]:
                failures += 1
                msg = (
                    f"{key}: baseline lists this deterministic field but the "
                    f"fresh record lacks it — stale bench binary or dropped "
                    f"instrumentation; rebuild, or regenerate the baseline if "
                    f"the field was removed deliberately"
                )
                if family:
                    family_failures[family].append(
                        (key, f"{key}: missing from fresh record")
                    )
                else:
                    print(f"FAIL [{label}] {msg}")
                continue
            bv, fv = b["deterministic"][key], f["deterministic"][key]
            if bv == fv:
                continue
            if key in FLOAT_DETERMINISTIC_FIELDS and bv is not None and fv is not None:
                d = rel_diff(float(bv), float(fv))
                if d <= args.float_rel_tol:
                    continue
                failures += 1
                print(
                    f"FAIL [{label}] {key}: baseline {bv} != fresh {fv} "
                    f"(rel diff {d:.3e}, tol {args.float_rel_tol:.3e})"
                )
            else:
                failures += 1
                if family:
                    family_failures[family].append(
                        (key, f"{key}: baseline {bv} != fresh {fv}")
                    )
                else:
                    print(f"FAIL [{label}] {key}: baseline {bv} != fresh {fv}")
        for prefix, failed in family_failures.items():
            if not failed:
                continue
            shown = "; ".join(desc for _, desc in failed[:3])
            more = len(failed) - min(3, len(failed))
            suffix = f" (+{more} more)" if more else ""
            print(
                f"FAIL [{label}] {prefix}*: {len(failed)} field(s) in the "
                f"family drifted — {shown}{suffix}"
            )
        fresh_only = sorted(set(f["deterministic"]) - set(b["deterministic"]))
        for prefix in GROUPED_FIELD_PREFIXES:
            fresh_only_family = [k for k in fresh_only if k.startswith(prefix)]
            if fresh_only_family:
                print(
                    f"note: [{label}] {len(fresh_only_family)} fresh "
                    f"{prefix}* deterministic field(s) have no baseline "
                    f"value (gate after the next baseline refresh)"
                )
        for key in fresh_only:
            if field_family(key):
                continue
            print(
                f"note: [{label}] fresh deterministic field '{key}' has no "
                f"baseline value (gates after the next baseline refresh)"
            )

        for key in sorted(set(b.get("advisory", {})) | set(f.get("advisory", {}))):
            bv = b.get("advisory", {}).get(key)
            fv = f.get("advisory", {}).get(key)
            if bv != fv:
                advisory_drift.append((label, key, bv, fv))

        wall_base += float(b.get("advisory", {}).get("wall_seconds", 0.0))
        wall_fresh += float(f.get("advisory", {}).get("wall_seconds", 0.0))

    if advisory_drift:
        # Labeled warning table — advisory fields (wall clock etc.) are
        # nondeterministic by definition, so drift warns and never gates.
        print(f"ADVISORY drift ({len(advisory_drift)} field(s); never gates):")
        print(f"  {'run':<40} {'field':<16} {'baseline':>14} {'fresh':>14} {'drift':>9}")
        for label, key, bv, fv in advisory_drift:
            try:
                pct = f"{100.0 * (float(fv) - float(bv)) / float(bv):+8.1f}%"
            except (TypeError, ValueError, ZeroDivisionError):
                pct = "      n/a"
            bs = "absent" if bv is None else f"{bv:.6g}" if isinstance(bv, float) else str(bv)
            fs = "absent" if fv is None else f"{fv:.6g}" if isinstance(fv, float) else str(fv)
            print(f"  {label:<40} {key:<16} {bs:>14} {fs:>14} {pct}")

    if compared and wall_base > 0:
        change = 100.0 * (wall_fresh - wall_base) / wall_base
        print(
            f"advisory: wall-clock {wall_base:.3f}s -> {wall_fresh:.3f}s "
            f"({change:+.1f}%; informational only, never gates)"
        )

    if failures:
        print(f"bench_compare: FAILED — {failures} mismatch(es) over {compared} run(s)")
        return 1
    print(f"bench_compare: OK — {compared} run(s), no deterministic drift")
    return 0


if __name__ == "__main__":
    sys.exit(main())
