#!/usr/bin/env python3
"""Compare a fresh bench record against a committed baseline.

The benches' `-json` flag writes a versioned record (schema
"dsouth.bench_record", see docs/observability.md) whose `deterministic`
block holds only quantities that are bit-identical across execution
backends and thread counts: parallel steps, modeled time, CommStats
message/byte totals, and the final residual. Those are compared exactly
by default — any drift is a real behavior change, not noise. The
`advisory` block (wall-clock seconds) and the backend/threads config are
reported but never gate.

Usage:
  bench_compare.py BASELINE.json FRESH.json [options]

Options:
  --float-rel-tol X   relative tolerance for the deterministic float
                      fields (modeled_time, comm_cost, final_residual).
                      Default 0.0 = bit-exact. Integers are always exact.
  --ignore-missing    do not fail when the fresh record lacks runs the
                      baseline has (partial reruns, e.g. -matrices subset)

Exit status: 0 = no deterministic drift, 1 = drift or run-set mismatch,
2 = bad invocation / unreadable or malformed record.
"""

import argparse
import json
import sys

SCHEMA = "dsouth.bench_record"
SCHEMA_VERSION = 1

# (field, is_float): comparison of record["deterministic"].
DETERMINISTIC_FIELDS = [
    ("steps", False),
    ("msgs_total", False),
    ("msgs_solve", False),
    ("msgs_residual", False),
    ("msgs_other", False),
    ("bytes_total", False),
    ("modeled_time", True),
    ("comm_cost", True),
    ("final_residual", True),
]

# Deterministic fields added after some baselines were committed; compared
# exactly, but only when BOTH records carry them, so a new field never
# invalidates an old baseline.
OPTIONAL_DETERMINISTIC_FIELDS = [
    ("msgs_logical", False),
    # Fault-injection totals (resilience_sweep; present only when a
    # FaultSchedule was attached — fault draws are stateless hashes, so
    # these are exactly reproducible).
    ("msgs_dropped", False),
    ("msgs_duplicated", False),
    ("msgs_corrupted", False),
    ("rejected_corrupt", False),
    ("rejected_stale", False),
    ("refreshes_sent", False),
    # Async-delivery totals (async_sweep; present only when the run used
    # the EventDriven policy — latency draws are stateless hashes, so
    # these are exactly reproducible too).
    ("async_epochs", False),
    ("async_delivered", False),
    ("staleness_sum", False),
    ("staleness_max", False),
    ("staleness_mean", True),
    # Node-aware tier totals (node_aware bench; present only when the run
    # carried a two-level topology — hop accounting is a pure function of
    # the staged traffic and the rank -> node map, so exactly
    # reproducible).
    ("node_msgs_intra", False),
    ("node_bytes_intra", False),
    ("node_msgs_inter", False),
    ("node_bytes_inter", False),
    ("node_forward_frames", False),
    ("node_forwarded_records", False),
]

# Config fields that must agree for the comparison to be meaningful.
# backend/threads are deliberately absent: results are bit-identical
# across backends, so comparing records from different backends is not
# only legal but the point.
CONFIG_FIELDS = ["matrix", "method", "procs", "n"]


def load_record(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read '{path}': {e}")
    if doc.get("schema") != SCHEMA:
        sys.exit(f"bench_compare: '{path}' is not a {SCHEMA} document")
    if doc.get("schema_version") != SCHEMA_VERSION:
        sys.exit(
            f"bench_compare: '{path}' has schema_version "
            f"{doc.get('schema_version')!r}, this tool knows {SCHEMA_VERSION}"
        )
    return doc


def rel_diff(a, b):
    scale = max(abs(a), abs(b))
    return abs(a - b) / scale if scale > 0 else 0.0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--float-rel-tol", type=float, default=0.0)
    ap.add_argument("--ignore-missing", action="store_true")
    args = ap.parse_args()

    base = load_record(args.baseline)
    fresh = load_record(args.fresh)

    if base.get("bench") != fresh.get("bench"):
        print(
            f"NOTE: comparing different benches: baseline "
            f"'{base.get('bench')}' vs fresh '{fresh.get('bench')}'"
        )
    print(
        f"baseline: {args.baseline} (git {base.get('git_sha', '?')[:12]}, "
        f"{len(base.get('runs', []))} runs)"
    )
    print(
        f"fresh:    {args.fresh} (git {fresh.get('git_sha', '?')[:12]}, "
        f"{len(fresh.get('runs', []))} runs)"
    )

    base_runs = {r["label"]: r for r in base.get("runs", [])}
    fresh_runs = {r["label"]: r for r in fresh.get("runs", [])}

    failures = 0
    compared = 0

    missing = sorted(set(base_runs) - set(fresh_runs))
    extra = sorted(set(fresh_runs) - set(base_runs))
    if missing and not args.ignore_missing:
        failures += len(missing)
        for label in missing:
            print(f"FAIL [{label}]: in baseline but not in fresh record")
    elif missing:
        print(f"note: {len(missing)} baseline run(s) absent from fresh record (ignored)")
    for label in extra:
        # New runs cannot regress anything; surface them for baseline refresh.
        print(f"note: fresh run '{label}' has no baseline (add one to gate it)")

    wall_base = wall_fresh = 0.0
    for label in sorted(set(base_runs) & set(fresh_runs)):
        b, f = base_runs[label], fresh_runs[label]
        compared += 1

        for key in CONFIG_FIELDS:
            bv, fv = b["config"].get(key), f["config"].get(key)
            if bv != fv:
                failures += 1
                print(f"FAIL [{label}] config.{key}: baseline {bv!r} != fresh {fv!r}")

        optional_present = [
            (key, is_float)
            for key, is_float in OPTIONAL_DETERMINISTIC_FIELDS
            if key in b["deterministic"] and key in f["deterministic"]
        ]
        for key, is_float in DETERMINISTIC_FIELDS + optional_present:
            bv, fv = b["deterministic"].get(key), f["deterministic"].get(key)
            if bv == fv:
                continue
            if is_float and bv is not None and fv is not None:
                d = rel_diff(float(bv), float(fv))
                if d <= args.float_rel_tol:
                    continue
                failures += 1
                print(
                    f"FAIL [{label}] {key}: baseline {bv} != fresh {fv} "
                    f"(rel diff {d:.3e}, tol {args.float_rel_tol:.3e})"
                )
            else:
                failures += 1
                print(f"FAIL [{label}] {key}: baseline {bv} != fresh {fv}")

        wall_base += float(b.get("advisory", {}).get("wall_seconds", 0.0))
        wall_fresh += float(f.get("advisory", {}).get("wall_seconds", 0.0))

    if compared and wall_base > 0:
        change = 100.0 * (wall_fresh - wall_base) / wall_base
        print(
            f"advisory: wall-clock {wall_base:.3f}s -> {wall_fresh:.3f}s "
            f"({change:+.1f}%; informational only, never gates)"
        )

    if failures:
        print(f"bench_compare: FAILED — {failures} mismatch(es) over {compared} run(s)")
        return 1
    print(f"bench_compare: OK — {compared} run(s), no deterministic drift")
    return 0


if __name__ == "__main__":
    sys.exit(main())
