file(REMOVE_RECURSE
  "CMakeFiles/dsouth_graph.dir/coloring.cpp.o"
  "CMakeFiles/dsouth_graph.dir/coloring.cpp.o.d"
  "CMakeFiles/dsouth_graph.dir/graph.cpp.o"
  "CMakeFiles/dsouth_graph.dir/graph.cpp.o.d"
  "CMakeFiles/dsouth_graph.dir/partition.cpp.o"
  "CMakeFiles/dsouth_graph.dir/partition.cpp.o.d"
  "CMakeFiles/dsouth_graph.dir/rcm.cpp.o"
  "CMakeFiles/dsouth_graph.dir/rcm.cpp.o.d"
  "libdsouth_graph.a"
  "libdsouth_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsouth_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
