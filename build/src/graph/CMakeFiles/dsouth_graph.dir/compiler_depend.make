# Empty compiler generated dependencies file for dsouth_graph.
# This may be replaced when dependencies are built.
