file(REMOVE_RECURSE
  "libdsouth_graph.a"
)
