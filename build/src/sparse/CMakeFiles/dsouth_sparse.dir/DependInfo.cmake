
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/binary_io.cpp" "src/sparse/CMakeFiles/dsouth_sparse.dir/binary_io.cpp.o" "gcc" "src/sparse/CMakeFiles/dsouth_sparse.dir/binary_io.cpp.o.d"
  "/root/repo/src/sparse/coo.cpp" "src/sparse/CMakeFiles/dsouth_sparse.dir/coo.cpp.o" "gcc" "src/sparse/CMakeFiles/dsouth_sparse.dir/coo.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/sparse/CMakeFiles/dsouth_sparse.dir/csr.cpp.o" "gcc" "src/sparse/CMakeFiles/dsouth_sparse.dir/csr.cpp.o.d"
  "/root/repo/src/sparse/dense.cpp" "src/sparse/CMakeFiles/dsouth_sparse.dir/dense.cpp.o" "gcc" "src/sparse/CMakeFiles/dsouth_sparse.dir/dense.cpp.o.d"
  "/root/repo/src/sparse/fem.cpp" "src/sparse/CMakeFiles/dsouth_sparse.dir/fem.cpp.o" "gcc" "src/sparse/CMakeFiles/dsouth_sparse.dir/fem.cpp.o.d"
  "/root/repo/src/sparse/mesh.cpp" "src/sparse/CMakeFiles/dsouth_sparse.dir/mesh.cpp.o" "gcc" "src/sparse/CMakeFiles/dsouth_sparse.dir/mesh.cpp.o.d"
  "/root/repo/src/sparse/mesh3d.cpp" "src/sparse/CMakeFiles/dsouth_sparse.dir/mesh3d.cpp.o" "gcc" "src/sparse/CMakeFiles/dsouth_sparse.dir/mesh3d.cpp.o.d"
  "/root/repo/src/sparse/mm_io.cpp" "src/sparse/CMakeFiles/dsouth_sparse.dir/mm_io.cpp.o" "gcc" "src/sparse/CMakeFiles/dsouth_sparse.dir/mm_io.cpp.o.d"
  "/root/repo/src/sparse/proxy_suite.cpp" "src/sparse/CMakeFiles/dsouth_sparse.dir/proxy_suite.cpp.o" "gcc" "src/sparse/CMakeFiles/dsouth_sparse.dir/proxy_suite.cpp.o.d"
  "/root/repo/src/sparse/scaling.cpp" "src/sparse/CMakeFiles/dsouth_sparse.dir/scaling.cpp.o" "gcc" "src/sparse/CMakeFiles/dsouth_sparse.dir/scaling.cpp.o.d"
  "/root/repo/src/sparse/spgemm.cpp" "src/sparse/CMakeFiles/dsouth_sparse.dir/spgemm.cpp.o" "gcc" "src/sparse/CMakeFiles/dsouth_sparse.dir/spgemm.cpp.o.d"
  "/root/repo/src/sparse/stats.cpp" "src/sparse/CMakeFiles/dsouth_sparse.dir/stats.cpp.o" "gcc" "src/sparse/CMakeFiles/dsouth_sparse.dir/stats.cpp.o.d"
  "/root/repo/src/sparse/stencils.cpp" "src/sparse/CMakeFiles/dsouth_sparse.dir/stencils.cpp.o" "gcc" "src/sparse/CMakeFiles/dsouth_sparse.dir/stencils.cpp.o.d"
  "/root/repo/src/sparse/vec.cpp" "src/sparse/CMakeFiles/dsouth_sparse.dir/vec.cpp.o" "gcc" "src/sparse/CMakeFiles/dsouth_sparse.dir/vec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dsouth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
