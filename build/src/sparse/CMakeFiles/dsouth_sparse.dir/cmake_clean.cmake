file(REMOVE_RECURSE
  "CMakeFiles/dsouth_sparse.dir/binary_io.cpp.o"
  "CMakeFiles/dsouth_sparse.dir/binary_io.cpp.o.d"
  "CMakeFiles/dsouth_sparse.dir/coo.cpp.o"
  "CMakeFiles/dsouth_sparse.dir/coo.cpp.o.d"
  "CMakeFiles/dsouth_sparse.dir/csr.cpp.o"
  "CMakeFiles/dsouth_sparse.dir/csr.cpp.o.d"
  "CMakeFiles/dsouth_sparse.dir/dense.cpp.o"
  "CMakeFiles/dsouth_sparse.dir/dense.cpp.o.d"
  "CMakeFiles/dsouth_sparse.dir/fem.cpp.o"
  "CMakeFiles/dsouth_sparse.dir/fem.cpp.o.d"
  "CMakeFiles/dsouth_sparse.dir/mesh.cpp.o"
  "CMakeFiles/dsouth_sparse.dir/mesh.cpp.o.d"
  "CMakeFiles/dsouth_sparse.dir/mesh3d.cpp.o"
  "CMakeFiles/dsouth_sparse.dir/mesh3d.cpp.o.d"
  "CMakeFiles/dsouth_sparse.dir/mm_io.cpp.o"
  "CMakeFiles/dsouth_sparse.dir/mm_io.cpp.o.d"
  "CMakeFiles/dsouth_sparse.dir/proxy_suite.cpp.o"
  "CMakeFiles/dsouth_sparse.dir/proxy_suite.cpp.o.d"
  "CMakeFiles/dsouth_sparse.dir/scaling.cpp.o"
  "CMakeFiles/dsouth_sparse.dir/scaling.cpp.o.d"
  "CMakeFiles/dsouth_sparse.dir/spgemm.cpp.o"
  "CMakeFiles/dsouth_sparse.dir/spgemm.cpp.o.d"
  "CMakeFiles/dsouth_sparse.dir/stats.cpp.o"
  "CMakeFiles/dsouth_sparse.dir/stats.cpp.o.d"
  "CMakeFiles/dsouth_sparse.dir/stencils.cpp.o"
  "CMakeFiles/dsouth_sparse.dir/stencils.cpp.o.d"
  "CMakeFiles/dsouth_sparse.dir/vec.cpp.o"
  "CMakeFiles/dsouth_sparse.dir/vec.cpp.o.d"
  "libdsouth_sparse.a"
  "libdsouth_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsouth_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
