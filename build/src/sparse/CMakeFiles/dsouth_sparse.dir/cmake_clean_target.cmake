file(REMOVE_RECURSE
  "libdsouth_sparse.a"
)
