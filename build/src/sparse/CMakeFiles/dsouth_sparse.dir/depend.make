# Empty dependencies file for dsouth_sparse.
# This may be replaced when dependencies are built.
