file(REMOVE_RECURSE
  "CMakeFiles/dsouth_krylov.dir/cg.cpp.o"
  "CMakeFiles/dsouth_krylov.dir/cg.cpp.o.d"
  "CMakeFiles/dsouth_krylov.dir/preconditioner.cpp.o"
  "CMakeFiles/dsouth_krylov.dir/preconditioner.cpp.o.d"
  "libdsouth_krylov.a"
  "libdsouth_krylov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsouth_krylov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
