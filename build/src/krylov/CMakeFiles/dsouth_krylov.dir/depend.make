# Empty dependencies file for dsouth_krylov.
# This may be replaced when dependencies are built.
