file(REMOVE_RECURSE
  "libdsouth_krylov.a"
)
