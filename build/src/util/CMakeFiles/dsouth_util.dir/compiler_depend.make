# Empty compiler generated dependencies file for dsouth_util.
# This may be replaced when dependencies are built.
