file(REMOVE_RECURSE
  "libdsouth_util.a"
)
