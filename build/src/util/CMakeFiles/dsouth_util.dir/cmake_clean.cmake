file(REMOVE_RECURSE
  "CMakeFiles/dsouth_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/dsouth_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/dsouth_util.dir/cli.cpp.o"
  "CMakeFiles/dsouth_util.dir/cli.cpp.o.d"
  "CMakeFiles/dsouth_util.dir/csv.cpp.o"
  "CMakeFiles/dsouth_util.dir/csv.cpp.o.d"
  "CMakeFiles/dsouth_util.dir/interp.cpp.o"
  "CMakeFiles/dsouth_util.dir/interp.cpp.o.d"
  "CMakeFiles/dsouth_util.dir/rng.cpp.o"
  "CMakeFiles/dsouth_util.dir/rng.cpp.o.d"
  "CMakeFiles/dsouth_util.dir/table.cpp.o"
  "CMakeFiles/dsouth_util.dir/table.cpp.o.d"
  "libdsouth_util.a"
  "libdsouth_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsouth_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
