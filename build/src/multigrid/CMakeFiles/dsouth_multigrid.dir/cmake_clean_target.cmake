file(REMOVE_RECURSE
  "libdsouth_multigrid.a"
)
