
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multigrid/amg.cpp" "src/multigrid/CMakeFiles/dsouth_multigrid.dir/amg.cpp.o" "gcc" "src/multigrid/CMakeFiles/dsouth_multigrid.dir/amg.cpp.o.d"
  "/root/repo/src/multigrid/smoother.cpp" "src/multigrid/CMakeFiles/dsouth_multigrid.dir/smoother.cpp.o" "gcc" "src/multigrid/CMakeFiles/dsouth_multigrid.dir/smoother.cpp.o.d"
  "/root/repo/src/multigrid/transfer.cpp" "src/multigrid/CMakeFiles/dsouth_multigrid.dir/transfer.cpp.o" "gcc" "src/multigrid/CMakeFiles/dsouth_multigrid.dir/transfer.cpp.o.d"
  "/root/repo/src/multigrid/vcycle.cpp" "src/multigrid/CMakeFiles/dsouth_multigrid.dir/vcycle.cpp.o" "gcc" "src/multigrid/CMakeFiles/dsouth_multigrid.dir/vcycle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dsouth_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/dsouth_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dsouth_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dsouth_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
