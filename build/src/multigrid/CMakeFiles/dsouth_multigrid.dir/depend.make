# Empty dependencies file for dsouth_multigrid.
# This may be replaced when dependencies are built.
