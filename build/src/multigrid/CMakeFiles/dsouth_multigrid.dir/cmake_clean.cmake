file(REMOVE_RECURSE
  "CMakeFiles/dsouth_multigrid.dir/amg.cpp.o"
  "CMakeFiles/dsouth_multigrid.dir/amg.cpp.o.d"
  "CMakeFiles/dsouth_multigrid.dir/smoother.cpp.o"
  "CMakeFiles/dsouth_multigrid.dir/smoother.cpp.o.d"
  "CMakeFiles/dsouth_multigrid.dir/transfer.cpp.o"
  "CMakeFiles/dsouth_multigrid.dir/transfer.cpp.o.d"
  "CMakeFiles/dsouth_multigrid.dir/vcycle.cpp.o"
  "CMakeFiles/dsouth_multigrid.dir/vcycle.cpp.o.d"
  "libdsouth_multigrid.a"
  "libdsouth_multigrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsouth_multigrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
