file(REMOVE_RECURSE
  "libdsouth_core.a"
)
