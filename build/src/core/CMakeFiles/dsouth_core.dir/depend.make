# Empty dependencies file for dsouth_core.
# This may be replaced when dependencies are built.
