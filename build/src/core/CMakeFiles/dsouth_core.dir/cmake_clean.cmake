file(REMOVE_RECURSE
  "CMakeFiles/dsouth_core.dir/adaptive_relaxation.cpp.o"
  "CMakeFiles/dsouth_core.dir/adaptive_relaxation.cpp.o.d"
  "CMakeFiles/dsouth_core.dir/classic.cpp.o"
  "CMakeFiles/dsouth_core.dir/classic.cpp.o.d"
  "CMakeFiles/dsouth_core.dir/dist_southwell_scalar.cpp.o"
  "CMakeFiles/dsouth_core.dir/dist_southwell_scalar.cpp.o.d"
  "CMakeFiles/dsouth_core.dir/history.cpp.o"
  "CMakeFiles/dsouth_core.dir/history.cpp.o.d"
  "CMakeFiles/dsouth_core.dir/parallel_southwell.cpp.o"
  "CMakeFiles/dsouth_core.dir/parallel_southwell.cpp.o.d"
  "CMakeFiles/dsouth_core.dir/scalar_engine.cpp.o"
  "CMakeFiles/dsouth_core.dir/scalar_engine.cpp.o.d"
  "CMakeFiles/dsouth_core.dir/southwell.cpp.o"
  "CMakeFiles/dsouth_core.dir/southwell.cpp.o.d"
  "libdsouth_core.a"
  "libdsouth_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsouth_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
