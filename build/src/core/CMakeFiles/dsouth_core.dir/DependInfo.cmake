
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_relaxation.cpp" "src/core/CMakeFiles/dsouth_core.dir/adaptive_relaxation.cpp.o" "gcc" "src/core/CMakeFiles/dsouth_core.dir/adaptive_relaxation.cpp.o.d"
  "/root/repo/src/core/classic.cpp" "src/core/CMakeFiles/dsouth_core.dir/classic.cpp.o" "gcc" "src/core/CMakeFiles/dsouth_core.dir/classic.cpp.o.d"
  "/root/repo/src/core/dist_southwell_scalar.cpp" "src/core/CMakeFiles/dsouth_core.dir/dist_southwell_scalar.cpp.o" "gcc" "src/core/CMakeFiles/dsouth_core.dir/dist_southwell_scalar.cpp.o.d"
  "/root/repo/src/core/history.cpp" "src/core/CMakeFiles/dsouth_core.dir/history.cpp.o" "gcc" "src/core/CMakeFiles/dsouth_core.dir/history.cpp.o.d"
  "/root/repo/src/core/parallel_southwell.cpp" "src/core/CMakeFiles/dsouth_core.dir/parallel_southwell.cpp.o" "gcc" "src/core/CMakeFiles/dsouth_core.dir/parallel_southwell.cpp.o.d"
  "/root/repo/src/core/scalar_engine.cpp" "src/core/CMakeFiles/dsouth_core.dir/scalar_engine.cpp.o" "gcc" "src/core/CMakeFiles/dsouth_core.dir/scalar_engine.cpp.o.d"
  "/root/repo/src/core/southwell.cpp" "src/core/CMakeFiles/dsouth_core.dir/southwell.cpp.o" "gcc" "src/core/CMakeFiles/dsouth_core.dir/southwell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/dsouth_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dsouth_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dsouth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
