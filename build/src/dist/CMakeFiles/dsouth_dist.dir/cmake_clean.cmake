file(REMOVE_RECURSE
  "CMakeFiles/dsouth_dist.dir/block_jacobi.cpp.o"
  "CMakeFiles/dsouth_dist.dir/block_jacobi.cpp.o.d"
  "CMakeFiles/dsouth_dist.dir/distributed_southwell.cpp.o"
  "CMakeFiles/dsouth_dist.dir/distributed_southwell.cpp.o.d"
  "CMakeFiles/dsouth_dist.dir/driver.cpp.o"
  "CMakeFiles/dsouth_dist.dir/driver.cpp.o.d"
  "CMakeFiles/dsouth_dist.dir/greedy_schwarz.cpp.o"
  "CMakeFiles/dsouth_dist.dir/greedy_schwarz.cpp.o.d"
  "CMakeFiles/dsouth_dist.dir/layout.cpp.o"
  "CMakeFiles/dsouth_dist.dir/layout.cpp.o.d"
  "CMakeFiles/dsouth_dist.dir/multicolor_block_gs.cpp.o"
  "CMakeFiles/dsouth_dist.dir/multicolor_block_gs.cpp.o.d"
  "CMakeFiles/dsouth_dist.dir/parallel_southwell.cpp.o"
  "CMakeFiles/dsouth_dist.dir/parallel_southwell.cpp.o.d"
  "CMakeFiles/dsouth_dist.dir/solver_base.cpp.o"
  "CMakeFiles/dsouth_dist.dir/solver_base.cpp.o.d"
  "CMakeFiles/dsouth_dist.dir/subdomain.cpp.o"
  "CMakeFiles/dsouth_dist.dir/subdomain.cpp.o.d"
  "libdsouth_dist.a"
  "libdsouth_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsouth_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
