
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/block_jacobi.cpp" "src/dist/CMakeFiles/dsouth_dist.dir/block_jacobi.cpp.o" "gcc" "src/dist/CMakeFiles/dsouth_dist.dir/block_jacobi.cpp.o.d"
  "/root/repo/src/dist/distributed_southwell.cpp" "src/dist/CMakeFiles/dsouth_dist.dir/distributed_southwell.cpp.o" "gcc" "src/dist/CMakeFiles/dsouth_dist.dir/distributed_southwell.cpp.o.d"
  "/root/repo/src/dist/driver.cpp" "src/dist/CMakeFiles/dsouth_dist.dir/driver.cpp.o" "gcc" "src/dist/CMakeFiles/dsouth_dist.dir/driver.cpp.o.d"
  "/root/repo/src/dist/greedy_schwarz.cpp" "src/dist/CMakeFiles/dsouth_dist.dir/greedy_schwarz.cpp.o" "gcc" "src/dist/CMakeFiles/dsouth_dist.dir/greedy_schwarz.cpp.o.d"
  "/root/repo/src/dist/layout.cpp" "src/dist/CMakeFiles/dsouth_dist.dir/layout.cpp.o" "gcc" "src/dist/CMakeFiles/dsouth_dist.dir/layout.cpp.o.d"
  "/root/repo/src/dist/multicolor_block_gs.cpp" "src/dist/CMakeFiles/dsouth_dist.dir/multicolor_block_gs.cpp.o" "gcc" "src/dist/CMakeFiles/dsouth_dist.dir/multicolor_block_gs.cpp.o.d"
  "/root/repo/src/dist/parallel_southwell.cpp" "src/dist/CMakeFiles/dsouth_dist.dir/parallel_southwell.cpp.o" "gcc" "src/dist/CMakeFiles/dsouth_dist.dir/parallel_southwell.cpp.o.d"
  "/root/repo/src/dist/solver_base.cpp" "src/dist/CMakeFiles/dsouth_dist.dir/solver_base.cpp.o" "gcc" "src/dist/CMakeFiles/dsouth_dist.dir/solver_base.cpp.o.d"
  "/root/repo/src/dist/subdomain.cpp" "src/dist/CMakeFiles/dsouth_dist.dir/subdomain.cpp.o" "gcc" "src/dist/CMakeFiles/dsouth_dist.dir/subdomain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/dsouth_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dsouth_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/dsouth_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dsouth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
