# Empty compiler generated dependencies file for dsouth_dist.
# This may be replaced when dependencies are built.
