file(REMOVE_RECURSE
  "libdsouth_dist.a"
)
