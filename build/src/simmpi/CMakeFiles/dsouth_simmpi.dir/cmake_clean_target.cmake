file(REMOVE_RECURSE
  "libdsouth_simmpi.a"
)
