file(REMOVE_RECURSE
  "CMakeFiles/dsouth_simmpi.dir/runtime.cpp.o"
  "CMakeFiles/dsouth_simmpi.dir/runtime.cpp.o.d"
  "CMakeFiles/dsouth_simmpi.dir/stats.cpp.o"
  "CMakeFiles/dsouth_simmpi.dir/stats.cpp.o.d"
  "libdsouth_simmpi.a"
  "libdsouth_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsouth_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
