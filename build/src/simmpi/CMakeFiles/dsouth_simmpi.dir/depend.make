# Empty dependencies file for dsouth_simmpi.
# This may be replaced when dependencies are built.
