# Empty compiler generated dependencies file for test_sparse_coo_csr.
# This may be replaced when dependencies are built.
