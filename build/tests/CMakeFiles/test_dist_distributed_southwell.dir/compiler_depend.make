# Empty compiler generated dependencies file for test_dist_distributed_southwell.
# This may be replaced when dependencies are built.
