file(REMOVE_RECURSE
  "CMakeFiles/test_dist_distributed_southwell.dir/test_dist_distributed_southwell.cpp.o"
  "CMakeFiles/test_dist_distributed_southwell.dir/test_dist_distributed_southwell.cpp.o.d"
  "test_dist_distributed_southwell"
  "test_dist_distributed_southwell.pdb"
  "test_dist_distributed_southwell[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_distributed_southwell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
