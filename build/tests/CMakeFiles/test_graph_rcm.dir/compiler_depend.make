# Empty compiler generated dependencies file for test_graph_rcm.
# This may be replaced when dependencies are built.
