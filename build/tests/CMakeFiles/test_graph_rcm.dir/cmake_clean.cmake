file(REMOVE_RECURSE
  "CMakeFiles/test_graph_rcm.dir/test_graph_rcm.cpp.o"
  "CMakeFiles/test_graph_rcm.dir/test_graph_rcm.cpp.o.d"
  "test_graph_rcm"
  "test_graph_rcm.pdb"
  "test_graph_rcm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_rcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
