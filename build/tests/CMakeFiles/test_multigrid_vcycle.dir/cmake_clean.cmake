file(REMOVE_RECURSE
  "CMakeFiles/test_multigrid_vcycle.dir/test_multigrid_vcycle.cpp.o"
  "CMakeFiles/test_multigrid_vcycle.dir/test_multigrid_vcycle.cpp.o.d"
  "test_multigrid_vcycle"
  "test_multigrid_vcycle.pdb"
  "test_multigrid_vcycle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multigrid_vcycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
