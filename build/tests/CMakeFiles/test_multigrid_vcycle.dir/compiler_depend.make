# Empty compiler generated dependencies file for test_multigrid_vcycle.
# This may be replaced when dependencies are built.
