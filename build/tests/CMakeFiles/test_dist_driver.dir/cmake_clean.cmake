file(REMOVE_RECURSE
  "CMakeFiles/test_dist_driver.dir/test_dist_driver.cpp.o"
  "CMakeFiles/test_dist_driver.dir/test_dist_driver.cpp.o.d"
  "test_dist_driver"
  "test_dist_driver.pdb"
  "test_dist_driver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
