# Empty compiler generated dependencies file for test_dist_driver.
# This may be replaced when dependencies are built.
