# Empty compiler generated dependencies file for test_property_roundtrips.
# This may be replaced when dependencies are built.
