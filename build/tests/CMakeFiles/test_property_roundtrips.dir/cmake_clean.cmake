file(REMOVE_RECURSE
  "CMakeFiles/test_property_roundtrips.dir/test_property_roundtrips.cpp.o"
  "CMakeFiles/test_property_roundtrips.dir/test_property_roundtrips.cpp.o.d"
  "test_property_roundtrips"
  "test_property_roundtrips.pdb"
  "test_property_roundtrips[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_roundtrips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
