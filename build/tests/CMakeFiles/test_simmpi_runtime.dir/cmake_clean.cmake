file(REMOVE_RECURSE
  "CMakeFiles/test_simmpi_runtime.dir/test_simmpi_runtime.cpp.o"
  "CMakeFiles/test_simmpi_runtime.dir/test_simmpi_runtime.cpp.o.d"
  "test_simmpi_runtime"
  "test_simmpi_runtime.pdb"
  "test_simmpi_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simmpi_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
