# Empty compiler generated dependencies file for test_simmpi_runtime.
# This may be replaced when dependencies are built.
