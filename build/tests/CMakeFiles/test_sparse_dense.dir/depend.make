# Empty dependencies file for test_sparse_dense.
# This may be replaced when dependencies are built.
