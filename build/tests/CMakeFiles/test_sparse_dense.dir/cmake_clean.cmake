file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_dense.dir/test_sparse_dense.cpp.o"
  "CMakeFiles/test_sparse_dense.dir/test_sparse_dense.cpp.o.d"
  "test_sparse_dense"
  "test_sparse_dense.pdb"
  "test_sparse_dense[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
