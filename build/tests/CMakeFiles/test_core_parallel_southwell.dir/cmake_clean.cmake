file(REMOVE_RECURSE
  "CMakeFiles/test_core_parallel_southwell.dir/test_core_parallel_southwell.cpp.o"
  "CMakeFiles/test_core_parallel_southwell.dir/test_core_parallel_southwell.cpp.o.d"
  "test_core_parallel_southwell"
  "test_core_parallel_southwell.pdb"
  "test_core_parallel_southwell[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_parallel_southwell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
