# Empty dependencies file for test_core_parallel_southwell.
# This may be replaced when dependencies are built.
