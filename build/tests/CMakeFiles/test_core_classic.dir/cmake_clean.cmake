file(REMOVE_RECURSE
  "CMakeFiles/test_core_classic.dir/test_core_classic.cpp.o"
  "CMakeFiles/test_core_classic.dir/test_core_classic.cpp.o.d"
  "test_core_classic"
  "test_core_classic.pdb"
  "test_core_classic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_classic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
