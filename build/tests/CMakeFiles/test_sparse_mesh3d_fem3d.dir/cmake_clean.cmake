file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_mesh3d_fem3d.dir/test_sparse_mesh3d_fem3d.cpp.o"
  "CMakeFiles/test_sparse_mesh3d_fem3d.dir/test_sparse_mesh3d_fem3d.cpp.o.d"
  "test_sparse_mesh3d_fem3d"
  "test_sparse_mesh3d_fem3d.pdb"
  "test_sparse_mesh3d_fem3d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_mesh3d_fem3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
