# Empty dependencies file for test_sparse_mesh3d_fem3d.
# This may be replaced when dependencies are built.
