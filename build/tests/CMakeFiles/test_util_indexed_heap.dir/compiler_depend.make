# Empty compiler generated dependencies file for test_util_indexed_heap.
# This may be replaced when dependencies are built.
