file(REMOVE_RECURSE
  "CMakeFiles/test_util_indexed_heap.dir/test_util_indexed_heap.cpp.o"
  "CMakeFiles/test_util_indexed_heap.dir/test_util_indexed_heap.cpp.o.d"
  "test_util_indexed_heap"
  "test_util_indexed_heap.pdb"
  "test_util_indexed_heap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_indexed_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
