file(REMOVE_RECURSE
  "CMakeFiles/test_stats_and_schwarz.dir/test_stats_and_schwarz.cpp.o"
  "CMakeFiles/test_stats_and_schwarz.dir/test_stats_and_schwarz.cpp.o.d"
  "test_stats_and_schwarz"
  "test_stats_and_schwarz.pdb"
  "test_stats_and_schwarz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_and_schwarz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
