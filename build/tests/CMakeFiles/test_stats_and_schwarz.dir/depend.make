# Empty dependencies file for test_stats_and_schwarz.
# This may be replaced when dependencies are built.
