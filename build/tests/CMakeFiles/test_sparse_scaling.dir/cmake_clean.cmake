file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_scaling.dir/test_sparse_scaling.cpp.o"
  "CMakeFiles/test_sparse_scaling.dir/test_sparse_scaling.cpp.o.d"
  "test_sparse_scaling"
  "test_sparse_scaling.pdb"
  "test_sparse_scaling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
