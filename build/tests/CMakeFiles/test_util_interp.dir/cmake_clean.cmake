file(REMOVE_RECURSE
  "CMakeFiles/test_util_interp.dir/test_util_interp.cpp.o"
  "CMakeFiles/test_util_interp.dir/test_util_interp.cpp.o.d"
  "test_util_interp"
  "test_util_interp.pdb"
  "test_util_interp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
