# Empty dependencies file for test_util_interp.
# This may be replaced when dependencies are built.
