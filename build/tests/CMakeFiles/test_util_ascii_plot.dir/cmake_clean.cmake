file(REMOVE_RECURSE
  "CMakeFiles/test_util_ascii_plot.dir/test_util_ascii_plot.cpp.o"
  "CMakeFiles/test_util_ascii_plot.dir/test_util_ascii_plot.cpp.o.d"
  "test_util_ascii_plot"
  "test_util_ascii_plot.pdb"
  "test_util_ascii_plot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_ascii_plot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
