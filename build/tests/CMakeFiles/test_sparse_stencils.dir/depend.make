# Empty dependencies file for test_sparse_stencils.
# This may be replaced when dependencies are built.
