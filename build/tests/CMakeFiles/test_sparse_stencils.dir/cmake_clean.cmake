file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_stencils.dir/test_sparse_stencils.cpp.o"
  "CMakeFiles/test_sparse_stencils.dir/test_sparse_stencils.cpp.o.d"
  "test_sparse_stencils"
  "test_sparse_stencils.pdb"
  "test_sparse_stencils[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_stencils.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
