file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_mesh_fem.dir/test_sparse_mesh_fem.cpp.o"
  "CMakeFiles/test_sparse_mesh_fem.dir/test_sparse_mesh_fem.cpp.o.d"
  "test_sparse_mesh_fem"
  "test_sparse_mesh_fem.pdb"
  "test_sparse_mesh_fem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_mesh_fem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
