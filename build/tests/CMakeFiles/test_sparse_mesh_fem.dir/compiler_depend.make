# Empty compiler generated dependencies file for test_sparse_mesh_fem.
# This may be replaced when dependencies are built.
