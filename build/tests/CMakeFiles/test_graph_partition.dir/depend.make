# Empty dependencies file for test_graph_partition.
# This may be replaced when dependencies are built.
