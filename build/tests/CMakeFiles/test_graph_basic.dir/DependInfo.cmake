
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_graph_basic.cpp" "tests/CMakeFiles/test_graph_basic.dir/test_graph_basic.cpp.o" "gcc" "tests/CMakeFiles/test_graph_basic.dir/test_graph_basic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dsouth_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/dsouth_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dsouth_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/dsouth_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dsouth_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/dsouth_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/multigrid/CMakeFiles/dsouth_multigrid.dir/DependInfo.cmake"
  "/root/repo/build/src/krylov/CMakeFiles/dsouth_krylov.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
