# Empty dependencies file for test_core_southwell.
# This may be replaced when dependencies are built.
