file(REMOVE_RECURSE
  "CMakeFiles/test_multigrid_transfer.dir/test_multigrid_transfer.cpp.o"
  "CMakeFiles/test_multigrid_transfer.dir/test_multigrid_transfer.cpp.o.d"
  "test_multigrid_transfer"
  "test_multigrid_transfer.pdb"
  "test_multigrid_transfer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multigrid_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
