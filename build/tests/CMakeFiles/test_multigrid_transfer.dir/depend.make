# Empty dependencies file for test_multigrid_transfer.
# This may be replaced when dependencies are built.
