# Empty compiler generated dependencies file for test_core_dist_southwell_scalar.
# This may be replaced when dependencies are built.
