file(REMOVE_RECURSE
  "CMakeFiles/test_core_dist_southwell_scalar.dir/test_core_dist_southwell_scalar.cpp.o"
  "CMakeFiles/test_core_dist_southwell_scalar.dir/test_core_dist_southwell_scalar.cpp.o.d"
  "test_core_dist_southwell_scalar"
  "test_core_dist_southwell_scalar.pdb"
  "test_core_dist_southwell_scalar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_dist_southwell_scalar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
