# Empty dependencies file for test_graph_coloring.
# This may be replaced when dependencies are built.
