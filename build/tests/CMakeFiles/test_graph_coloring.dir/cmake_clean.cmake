file(REMOVE_RECURSE
  "CMakeFiles/test_graph_coloring.dir/test_graph_coloring.cpp.o"
  "CMakeFiles/test_graph_coloring.dir/test_graph_coloring.cpp.o.d"
  "test_graph_coloring"
  "test_graph_coloring.pdb"
  "test_graph_coloring[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
