file(REMOVE_RECURSE
  "CMakeFiles/test_delayed_delivery.dir/test_delayed_delivery.cpp.o"
  "CMakeFiles/test_delayed_delivery.dir/test_delayed_delivery.cpp.o.d"
  "test_delayed_delivery"
  "test_delayed_delivery.pdb"
  "test_delayed_delivery[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delayed_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
