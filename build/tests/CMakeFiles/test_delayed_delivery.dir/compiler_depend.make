# Empty compiler generated dependencies file for test_delayed_delivery.
# This may be replaced when dependencies are built.
