file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_vec.dir/test_sparse_vec.cpp.o"
  "CMakeFiles/test_sparse_vec.dir/test_sparse_vec.cpp.o.d"
  "test_sparse_vec"
  "test_sparse_vec.pdb"
  "test_sparse_vec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_vec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
