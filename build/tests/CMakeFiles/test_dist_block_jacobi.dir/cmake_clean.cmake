file(REMOVE_RECURSE
  "CMakeFiles/test_dist_block_jacobi.dir/test_dist_block_jacobi.cpp.o"
  "CMakeFiles/test_dist_block_jacobi.dir/test_dist_block_jacobi.cpp.o.d"
  "test_dist_block_jacobi"
  "test_dist_block_jacobi.pdb"
  "test_dist_block_jacobi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_block_jacobi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
