# Empty compiler generated dependencies file for test_dist_block_jacobi.
# This may be replaced when dependencies are built.
