file(REMOVE_RECURSE
  "CMakeFiles/test_dist_multicolor_block_gs.dir/test_dist_multicolor_block_gs.cpp.o"
  "CMakeFiles/test_dist_multicolor_block_gs.dir/test_dist_multicolor_block_gs.cpp.o.d"
  "test_dist_multicolor_block_gs"
  "test_dist_multicolor_block_gs.pdb"
  "test_dist_multicolor_block_gs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_multicolor_block_gs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
