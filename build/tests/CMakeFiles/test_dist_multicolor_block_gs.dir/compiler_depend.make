# Empty compiler generated dependencies file for test_dist_multicolor_block_gs.
# This may be replaced when dependencies are built.
