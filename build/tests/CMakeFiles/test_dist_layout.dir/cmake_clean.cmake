file(REMOVE_RECURSE
  "CMakeFiles/test_dist_layout.dir/test_dist_layout.cpp.o"
  "CMakeFiles/test_dist_layout.dir/test_dist_layout.cpp.o.d"
  "test_dist_layout"
  "test_dist_layout.pdb"
  "test_dist_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
