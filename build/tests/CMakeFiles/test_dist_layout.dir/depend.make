# Empty dependencies file for test_dist_layout.
# This may be replaced when dependencies are built.
