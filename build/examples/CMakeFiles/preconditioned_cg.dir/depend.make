# Empty dependencies file for preconditioned_cg.
# This may be replaced when dependencies are built.
