file(REMOVE_RECURSE
  "CMakeFiles/preconditioned_cg.dir/preconditioned_cg.cpp.o"
  "CMakeFiles/preconditioned_cg.dir/preconditioned_cg.cpp.o.d"
  "preconditioned_cg"
  "preconditioned_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preconditioned_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
