# Empty dependencies file for dmem_southwell.
# This may be replaced when dependencies are built.
