file(REMOVE_RECURSE
  "CMakeFiles/dmem_southwell.dir/dmem_southwell.cpp.o"
  "CMakeFiles/dmem_southwell.dir/dmem_southwell.cpp.o.d"
  "dmem_southwell"
  "dmem_southwell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmem_southwell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
