# Empty compiler generated dependencies file for multigrid_smoothing.
# This may be replaced when dependencies are built.
