file(REMOVE_RECURSE
  "CMakeFiles/multigrid_smoothing.dir/multigrid_smoothing.cpp.o"
  "CMakeFiles/multigrid_smoothing.dir/multigrid_smoothing.cpp.o.d"
  "multigrid_smoothing"
  "multigrid_smoothing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multigrid_smoothing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
