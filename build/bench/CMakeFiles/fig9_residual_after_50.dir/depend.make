# Empty dependencies file for fig9_residual_after_50.
# This may be replaced when dependencies are built.
