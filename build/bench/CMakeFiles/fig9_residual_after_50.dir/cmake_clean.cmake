file(REMOVE_RECURSE
  "CMakeFiles/fig9_residual_after_50.dir/fig9_residual_after_50.cpp.o"
  "CMakeFiles/fig9_residual_after_50.dir/fig9_residual_after_50.cpp.o.d"
  "fig9_residual_after_50"
  "fig9_residual_after_50.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_residual_after_50.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
