file(REMOVE_RECURSE
  "CMakeFiles/fig6_multigrid_smoothing.dir/fig6_multigrid_smoothing.cpp.o"
  "CMakeFiles/fig6_multigrid_smoothing.dir/fig6_multigrid_smoothing.cpp.o.d"
  "fig6_multigrid_smoothing"
  "fig6_multigrid_smoothing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_multigrid_smoothing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
