# Empty dependencies file for fig6_multigrid_smoothing.
# This may be replaced when dependencies are built.
