file(REMOVE_RECURSE
  "libdsouth_bench_support.a"
)
