# Empty dependencies file for dsouth_bench_support.
# This may be replaced when dependencies are built.
