file(REMOVE_RECURSE
  "CMakeFiles/dsouth_bench_support.dir/support/bench_support.cpp.o"
  "CMakeFiles/dsouth_bench_support.dir/support/bench_support.cpp.o.d"
  "libdsouth_bench_support.a"
  "libdsouth_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsouth_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
