file(REMOVE_RECURSE
  "CMakeFiles/table2_target_residual.dir/table2_target_residual.cpp.o"
  "CMakeFiles/table2_target_residual.dir/table2_target_residual.cpp.o.d"
  "table2_target_residual"
  "table2_target_residual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_target_residual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
