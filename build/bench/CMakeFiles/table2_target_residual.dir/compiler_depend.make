# Empty compiler generated dependencies file for table2_target_residual.
# This may be replaced when dependencies are built.
