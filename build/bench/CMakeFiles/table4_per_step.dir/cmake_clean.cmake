file(REMOVE_RECURSE
  "CMakeFiles/table4_per_step.dir/table4_per_step.cpp.o"
  "CMakeFiles/table4_per_step.dir/table4_per_step.cpp.o.d"
  "table4_per_step"
  "table4_per_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_per_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
