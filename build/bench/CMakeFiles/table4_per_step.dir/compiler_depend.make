# Empty compiler generated dependencies file for table4_per_step.
# This may be replaced when dependencies are built.
