# Empty compiler generated dependencies file for fig7_traces.
# This may be replaced when dependencies are built.
