file(REMOVE_RECURSE
  "CMakeFiles/fig7_traces.dir/fig7_traces.cpp.o"
  "CMakeFiles/fig7_traces.dir/fig7_traces.cpp.o.d"
  "fig7_traces"
  "fig7_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
