file(REMOVE_RECURSE
  "CMakeFiles/precond_study.dir/precond_study.cpp.o"
  "CMakeFiles/precond_study.dir/precond_study.cpp.o.d"
  "precond_study"
  "precond_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precond_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
