# Empty compiler generated dependencies file for precond_study.
# This may be replaced when dependencies are built.
