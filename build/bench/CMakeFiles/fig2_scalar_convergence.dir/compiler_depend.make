# Empty compiler generated dependencies file for fig2_scalar_convergence.
# This may be replaced when dependencies are built.
