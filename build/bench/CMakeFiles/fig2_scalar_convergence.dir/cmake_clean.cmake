file(REMOVE_RECURSE
  "CMakeFiles/fig2_scalar_convergence.dir/fig2_scalar_convergence.cpp.o"
  "CMakeFiles/fig2_scalar_convergence.dir/fig2_scalar_convergence.cpp.o.d"
  "fig2_scalar_convergence"
  "fig2_scalar_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_scalar_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
