# Empty compiler generated dependencies file for fig5_distsw_scalar.
# This may be replaced when dependencies are built.
