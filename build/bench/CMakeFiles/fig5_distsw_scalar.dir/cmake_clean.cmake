file(REMOVE_RECURSE
  "CMakeFiles/fig5_distsw_scalar.dir/fig5_distsw_scalar.cpp.o"
  "CMakeFiles/fig5_distsw_scalar.dir/fig5_distsw_scalar.cpp.o.d"
  "fig5_distsw_scalar"
  "fig5_distsw_scalar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_distsw_scalar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
