file(REMOVE_RECURSE
  "CMakeFiles/amg_smoothing.dir/amg_smoothing.cpp.o"
  "CMakeFiles/amg_smoothing.dir/amg_smoothing.cpp.o.d"
  "amg_smoothing"
  "amg_smoothing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amg_smoothing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
