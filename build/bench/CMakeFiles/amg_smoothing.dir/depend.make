# Empty dependencies file for amg_smoothing.
# This may be replaced when dependencies are built.
