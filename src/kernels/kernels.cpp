#include "kernels/kernels.hpp"

#include "util/error.hpp"

namespace dsouth::kernels {

double gs_sweep(const CsrMatrix& a_local, std::span<value_t> x,
                std::span<value_t> r) {
  const index_t m = a_local.rows();
  DSOUTH_CHECK(x.size() == static_cast<std::size_t>(m));
  DSOUTH_CHECK(r.size() == static_cast<std::size_t>(m));
  auto row_ptr = a_local.row_ptr();
  auto col_idx = a_local.col_idx();
  auto vals = a_local.values();
  for (index_t i = 0; i < m; ++i) {
    const value_t aii = a_local.at(i, i);
    DSOUTH_ASSERT(aii != 0.0);
    const value_t delta = r[static_cast<std::size_t>(i)] / aii;
    if (delta == 0.0) continue;
    x[static_cast<std::size_t>(i)] += delta;
    for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      r[static_cast<std::size_t>(col_idx[k])] -= vals[k] * delta;
    }
    // Exact single-equation solve: pin the diagonal update.
    r[static_cast<std::size_t>(i)] = 0.0;
  }
  return 2.0 * static_cast<double>(a_local.nnz()) +
         2.0 * static_cast<double>(m);
}

double gs_sweep_batch(const CsrMatrix& a_local, std::size_t lanes,
                      std::span<value_t> x, std::span<value_t> r) {
  DSOUTH_CHECK(lanes >= 1);
  if (lanes == 1) return gs_sweep(a_local, x, r);
  const index_t m = a_local.rows();
  DSOUTH_CHECK(x.size() == static_cast<std::size_t>(m) * lanes);
  DSOUTH_CHECK(r.size() == static_cast<std::size_t>(m) * lanes);
  auto row_ptr = a_local.row_ptr();
  auto col_idx = a_local.col_idx();
  auto vals = a_local.values();
  // Per-row lane deltas; 64 covers every batch size the benches use and
  // the general path below handles anything larger without allocating.
  constexpr std::size_t kMaxStackLanes = 64;
  value_t delta_buf[kMaxStackLanes];
  DSOUTH_CHECK_MSG(lanes <= kMaxStackLanes,
                   "gs_sweep_batch supports at most " << kMaxStackLanes
                                                      << " lanes per call");
  std::span<value_t> delta(delta_buf, lanes);
  for (index_t i = 0; i < m; ++i) {
    const value_t aii = a_local.at(i, i);
    DSOUTH_ASSERT(aii != 0.0);
    value_t* xi = x.data() + static_cast<std::size_t>(i) * lanes;
    value_t* ri = r.data() + static_cast<std::size_t>(i) * lanes;
    bool all_active = true;
    for (std::size_t l = 0; l < lanes; ++l) {
      delta[l] = ri[l] / aii;
      all_active &= (delta[l] != 0.0);
    }
    if (all_active) {
      // Straight-line SoA row update: every inner loop is unit-stride over
      // the lanes and carries no cross-lane dependence, so the compiler
      // vectorizes it. Per lane the operation order is exactly the scalar
      // sweep's: delta, CSR-order scatter, pin.
      for (std::size_t l = 0; l < lanes; ++l) xi[l] += delta[l];
      for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
        const value_t a = vals[k];
        value_t* rj = r.data() + static_cast<std::size_t>(col_idx[k]) * lanes;
        for (std::size_t l = 0; l < lanes; ++l) rj[l] -= a * delta[l];
      }
      for (std::size_t l = 0; l < lanes; ++l) ri[l] = 0.0;
      continue;
    }
    // Mixed row: some lane has delta == 0.0 and must be skipped outright
    // (see the header: a masked multiply would flip -0.0 residuals).
    for (std::size_t l = 0; l < lanes; ++l) {
      const value_t d = delta[l];
      if (d == 0.0) continue;
      xi[l] += d;
      for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
        r[static_cast<std::size_t>(col_idx[k]) * lanes + l] -= vals[k] * d;
      }
      ri[l] = 0.0;
    }
  }
  return static_cast<double>(lanes) *
         (2.0 * static_cast<double>(a_local.nnz()) +
          2.0 * static_cast<double>(m));
}

value_t norm_sq(std::span<const value_t> r) {
  value_t s = 0.0;
  for (value_t v : r) s += v * v;
  return s;
}

void norm_sq_batch(std::span<const value_t> r, std::size_t lanes,
                   std::span<value_t> out) {
  DSOUTH_CHECK(lanes >= 1);
  DSOUTH_CHECK(out.size() == lanes);
  DSOUTH_CHECK(r.size() % lanes == 0);
  const std::size_t rows = r.size() / lanes;
  for (std::size_t i = 0; i < rows; ++i) {
    const value_t* ri = r.data() + i * lanes;
    for (std::size_t l = 0; l < lanes; ++l) out[l] += ri[l] * ri[l];
  }
}

}  // namespace dsouth::kernels
