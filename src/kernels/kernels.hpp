#pragma once

/// \file kernels.hpp
/// Batched subdomain kernels: the per-row inner loops of the distributed
/// solvers (one Gauss–Seidel sweep, residual norms) extracted into a layer
/// of their own so a batch of B independent systems that share one sparsity
/// pattern can be relaxed together.
///
/// Layout contract: batched vectors are structure-of-arrays with the batch
/// innermost — `x[i * lanes + l]` is row `i` of tenant `l`. Row `i`'s data
/// for all lanes is contiguous, so the per-row arithmetic (`x += d`,
/// `r -= a·d`) is a unit-stride loop over `lanes` that the compiler
/// auto-vectorizes (verified in `bench/micro_kernels`, BM_GsSweepBatch).
///
/// Bit-identity contract (the batching invariant of DESIGN.md §14): lane
/// `l` of a batched call produces bit-for-bit the iterates of an
/// independent scalar call on lane `l`'s data. Two details make that true:
///
///  - Per-lane operation ORDER matches the scalar kernel: for each row, the
///    lane's delta is applied, then its row-scatter entries in CSR order,
///    then its residual pin. Lanes never mix, so IEEE-754 non-associativity
///    cannot reorder any lane's additions.
///
///  - The scalar sweep SKIPS rows whose delta is exactly zero (no x write,
///    no scatter, no residual pin). A masked multiply-by-zero is NOT a
///    faithful substitute: `r -= a * 0.0` turns a stored `-0.0` residual
///    into `+0.0`, and the skipped pin would overwrite a `-0.0` with
///    `+0.0`. The batched sweep therefore branches per lane on
///    `delta != 0.0`; a fast path handles the common all-lanes-active row
///    with straight-line vectorizable code.

#include <cstddef>
#include <span>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace dsouth::kernels {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

/// One Gauss–Seidel sweep over the local block ("when a process updates, a
/// single Gauss-Seidel sweep is carried out on the subdomain", paper §4.2):
/// for each local row i in ascending order, x_i += r_i / a_ii and
/// r_j -= a_ji δ for local j (symmetric block ⇒ column i is row i), with
/// the diagonal update pinned exactly (r_i = 0). Returns the flop count
/// charged to the machine model (≈ 2·nnz + 2·m).
double gs_sweep(const CsrMatrix& a_local, std::span<value_t> x,
                std::span<value_t> r);

/// Batched Gauss–Seidel sweep over `lanes` systems sharing `a_local`'s
/// sparsity AND values, in the SoA layout above (`x.size() == m·lanes`).
/// Lane l is bit-identical to `gs_sweep` on that lane's data. Returns the
/// total flop count across lanes (`lanes ×` the scalar charge).
double gs_sweep_batch(const CsrMatrix& a_local, std::size_t lanes,
                      std::span<value_t> x, std::span<value_t> r);

/// Squared 2-norm of the local residual (the quantity the Southwell
/// methods exchange; squared to avoid needless square roots).
value_t norm_sq(std::span<const value_t> r);

/// Per-lane squared 2-norms of a batched SoA residual block: adds lane l's
/// partial into `out[l]` (callers zero or carry accumulators across
/// subdomain blocks). Lane l's additions happen in the same row order as a
/// scalar `norm_sq` over that lane, so each accumulated sum is
/// bit-identical to the unbatched one.
void norm_sq_batch(std::span<const value_t> r, std::size_t lanes,
                   std::span<value_t> out);

}  // namespace dsouth::kernels
