#include "multigrid/vcycle.hpp"

#include "multigrid/transfer.hpp"
#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/error.hpp"

namespace dsouth::multigrid {

MultigridHierarchy::MultigridHierarchy(index_t n_finest) {
  DSOUTH_CHECK_MSG(n_finest >= 3 && n_finest % 2 == 1,
                   "finest grid dimension must be odd >= 3, got " << n_finest);
  index_t n = n_finest;
  for (;;) {
    Level lvl;
    lvl.dim = n;
    lvl.a = sparse::poisson2d_5pt(n, n);
    lvl.r.resize(static_cast<std::size_t>(n * n));
    if (n > 3) {
      const index_t nc = coarse_dim(n);
      lvl.bc.resize(static_cast<std::size_t>(nc * nc));
      lvl.xc.resize(static_cast<std::size_t>(nc * nc));
    }
    levels_.push_back(std::move(lvl));
    if (n == 3) break;
    n = coarse_dim(n);
    // Dimensions of the form 2^k - 1 reach exactly 3; others would skip it.
    DSOUTH_CHECK_MSG(n >= 3, "grid dimension sequence does not reach 3");
  }
  coarse_solver_ =
      std::make_unique<sparse::DenseCholesky>(levels_.back().a);
}

index_t MultigridHierarchy::level_dim(int l) const {
  DSOUTH_CHECK(l >= 0 && l < num_levels());
  return levels_[static_cast<std::size_t>(l)].dim;
}

const CsrMatrix& MultigridHierarchy::level_matrix(int l) const {
  DSOUTH_CHECK(l >= 0 && l < num_levels());
  return levels_[static_cast<std::size_t>(l)].a;
}

void MultigridHierarchy::cycle_level(int l, std::span<const value_t> b,
                                     std::span<value_t> x,
                                     Smoother& smoother,
                                     const CycleOptions& opt) {
  Level& lvl = levels_[static_cast<std::size_t>(l)];
  if (l == num_levels() - 1) {
    coarse_solver_->solve(b, x);  // exact solve on the 3×3 grid
    return;
  }
  for (int s = 0; s < opt.pre; ++s) smoother.smooth(lvl.a, b, x);
  lvl.a.residual(b, x, lvl.r);                      // r = b - A x
  restrict_full_weighting(lvl.dim, lvl.r, lvl.bc);  // coarse RHS
  // The level operators are the unscaled (4, -1) stencils, i.e. h²·(-Δ):
  // moving the residual equation to the coarse grid (h_c = 2·h_f) needs a
  // factor (h_c/h_f)² = 4 on the right-hand side.
  sparse::scale(4.0, lvl.bc);
  sparse::fill(lvl.xc, 0.0);
  // μ coarse visits: 1 = V-cycle, 2 = W-cycle. Each visit after the first
  // continues from the previous coarse iterate (the standard μ-cycle).
  for (int visit = 0; visit < opt.mu; ++visit) {
    cycle_level(l + 1, lvl.bc, lvl.xc, smoother, opt);
  }
  prolong_bilinear_add(lvl.dim, lvl.xc, x);         // coarse correction
  for (int s = 0; s < opt.post; ++s) smoother.smooth(lvl.a, b, x);
}

void MultigridHierarchy::vcycle(std::span<const value_t> b,
                                std::span<value_t> x, Smoother& smoother) {
  cycle(b, x, smoother, CycleOptions{});
}

void MultigridHierarchy::cycle(std::span<const value_t> b,
                               std::span<value_t> x, Smoother& smoother,
                               const CycleOptions& opt) {
  DSOUTH_CHECK(opt.pre >= 0 && opt.post >= 0 && opt.pre + opt.post >= 1);
  DSOUTH_CHECK(opt.mu >= 1 && opt.mu <= 4);
  const index_t n = levels_.front().dim;
  DSOUTH_CHECK(b.size() == static_cast<std::size_t>(n * n));
  DSOUTH_CHECK(x.size() == static_cast<std::size_t>(n * n));
  cycle_level(0, b, x, smoother, opt);
}

double MultigridHierarchy::solve_relative_residual(std::span<const value_t> b,
                                                   std::span<value_t> x,
                                                   Smoother& smoother,
                                                   int cycles) {
  Level& fine = levels_.front();
  fine.a.residual(b, x, fine.r);
  const value_t r0 = sparse::norm2(fine.r);
  DSOUTH_CHECK_MSG(r0 > 0.0, "initial residual is zero");
  for (int c = 0; c < cycles; ++c) vcycle(b, x, smoother);
  fine.a.residual(b, x, fine.r);
  return sparse::norm2(fine.r) / r0;
}

}  // namespace dsouth::multigrid
