#include "multigrid/amg.hpp"

#include <cmath>

#include "sparse/scaling.hpp"
#include "sparse/spgemm.hpp"
#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/error.hpp"

namespace dsouth::multigrid {

using sparse::CsrMatrix;
using sparse::value_t;

std::vector<index_t> aggregate(const CsrMatrix& a, double strength_threshold,
                               index_t* num_aggregates) {
  DSOUTH_CHECK(a.rows() == a.cols());
  DSOUTH_CHECK(strength_threshold >= 0.0);
  const index_t n = a.rows();
  const auto diag = a.diagonal();
  auto strong = [&](index_t i, index_t j, value_t v) {
    return std::abs(v) >
           strength_threshold *
               std::sqrt(std::abs(diag[static_cast<std::size_t>(i)] *
                                  diag[static_cast<std::size_t>(j)]));
  };

  std::vector<index_t> agg(static_cast<std::size_t>(n), -1);
  index_t count = 0;
  // Pass 1: seed aggregates from rows whose strong neighborhood is fully
  // unaggregated (the classical Vaněk-style greedy pass).
  for (index_t i = 0; i < n; ++i) {
    if (agg[static_cast<std::size_t>(i)] >= 0) continue;
    auto cols = a.row_cols(i);
    auto vals = a.row_vals(i);
    bool free_neighborhood = true;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const index_t j = cols[k];
      if (j != i && strong(i, j, vals[k]) &&
          agg[static_cast<std::size_t>(j)] >= 0) {
        free_neighborhood = false;
        break;
      }
    }
    if (!free_neighborhood) continue;
    const index_t id = count++;
    agg[static_cast<std::size_t>(i)] = id;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const index_t j = cols[k];
      if (j != i && strong(i, j, vals[k])) {
        agg[static_cast<std::size_t>(j)] = id;
      }
    }
  }
  // Pass 2: attach leftovers to a strongly-connected aggregate if any.
  for (index_t i = 0; i < n; ++i) {
    if (agg[static_cast<std::size_t>(i)] >= 0) continue;
    auto cols = a.row_cols(i);
    auto vals = a.row_vals(i);
    value_t best = 0.0;
    index_t best_agg = -1;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const index_t j = cols[k];
      if (j == i || agg[static_cast<std::size_t>(j)] < 0) continue;
      if (strong(i, j, vals[k]) && std::abs(vals[k]) > best) {
        best = std::abs(vals[k]);
        best_agg = agg[static_cast<std::size_t>(j)];
      }
    }
    if (best_agg >= 0) agg[static_cast<std::size_t>(i)] = best_agg;
  }
  // Pass 3: isolated rows (no strong connections at all) become singleton
  // aggregates.
  for (index_t i = 0; i < n; ++i) {
    if (agg[static_cast<std::size_t>(i)] < 0) {
      agg[static_cast<std::size_t>(i)] = count++;
    }
  }
  DSOUTH_CHECK(num_aggregates != nullptr);
  *num_aggregates = count;
  return agg;
}

CsrMatrix aggregation_prolongator(std::span<const index_t> agg,
                                  index_t num_aggregates) {
  const auto n = static_cast<index_t>(agg.size());
  std::vector<index_t> row_ptr(static_cast<std::size_t>(n) + 1);
  std::vector<index_t> col_idx(static_cast<std::size_t>(n));
  std::vector<value_t> values(static_cast<std::size_t>(n), 1.0);
  for (index_t i = 0; i < n; ++i) {
    DSOUTH_CHECK(agg[static_cast<std::size_t>(i)] >= 0 &&
                 agg[static_cast<std::size_t>(i)] < num_aggregates);
    row_ptr[static_cast<std::size_t>(i)] = i;
    col_idx[static_cast<std::size_t>(i)] = agg[static_cast<std::size_t>(i)];
  }
  row_ptr[static_cast<std::size_t>(n)] = n;
  return CsrMatrix(n, num_aggregates, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

AmgHierarchy::AmgHierarchy(CsrMatrix a_fine, const AmgOptions& opt) {
  DSOUTH_CHECK(a_fine.rows() == a_fine.cols());
  DSOUTH_CHECK(opt.coarse_size >= 1 && opt.max_levels >= 1);
  CsrMatrix a = std::move(a_fine);
  for (int l = 0; l < opt.max_levels; ++l) {
    Level lvl;
    lvl.a = std::move(a);
    lvl.r.resize(static_cast<std::size_t>(lvl.a.rows()));
    const bool coarse_enough = lvl.a.rows() <= opt.coarse_size;
    if (!coarse_enough && l + 1 < opt.max_levels) {
      index_t num_agg = 0;
      auto agg = aggregate(lvl.a, opt.strength_threshold, &num_agg);
      const double factor = static_cast<double>(lvl.a.rows()) /
                            static_cast<double>(num_agg);
      if (factor >= opt.min_coarsening_factor) {
        CsrMatrix p = aggregation_prolongator(agg, num_agg);
        if (opt.smoothed_prolongation) {
          // P <- (I − ω D⁻¹A) P_tent. λ_max(D⁻¹A) equals λ_max of the
          // symmetrically scaled operator (similarity).
          auto scaled = sparse::symmetric_unit_diagonal_scale(lvl.a);
          const double lmax =
              sparse::lambda_max_estimate(scaled.a, 30, 0xA3A1ULL);
          const double omega = (4.0 / 3.0) / lmax;
          // S = I − ω D⁻¹ A, assembled by rescaling A's rows.
          CsrMatrix s = lvl.a;
          {
            const auto diag = lvl.a.diagonal();
            auto vals = s.mutable_values();
            auto rp = s.row_ptr();
            auto ci = s.col_idx();
            for (index_t i = 0; i < s.rows(); ++i) {
              const double scale_i =
                  -omega / diag[static_cast<std::size_t>(i)];
              for (index_t k = rp[i]; k < rp[i + 1]; ++k) {
                vals[k] *= scale_i;
                if (ci[k] == i) vals[k] += 1.0;
              }
            }
          }
          p = sparse::spgemm(s, p);
        }
        CsrMatrix a_coarse = sparse::galerkin_product(lvl.a, p);
        lvl.bc.resize(static_cast<std::size_t>(num_agg));
        lvl.xc.resize(static_cast<std::size_t>(num_agg));
        // The prolongator hangs off the *coarser* level in this layout:
        // store it with the fine level for a simpler recursion.
        lvl.p = std::move(p);
        levels_.push_back(std::move(lvl));
        a = std::move(a_coarse);
        continue;
      }
    }
    levels_.push_back(std::move(lvl));
    break;
  }
  coarse_solver_ =
      std::make_unique<sparse::DenseCholesky>(levels_.back().a);
}

const CsrMatrix& AmgHierarchy::level_matrix(int l) const {
  DSOUTH_CHECK(l >= 0 && l < num_levels());
  return levels_[static_cast<std::size_t>(l)].a;
}

double AmgHierarchy::operator_complexity() const {
  double total = 0.0;
  for (const auto& lvl : levels_) total += static_cast<double>(lvl.a.nnz());
  return total / static_cast<double>(levels_.front().a.nnz());
}

void AmgHierarchy::cycle_level(int l, std::span<const value_t> b,
                               std::span<value_t> x, Smoother& smoother) {
  Level& lvl = levels_[static_cast<std::size_t>(l)];
  if (l == num_levels() - 1) {
    coarse_solver_->solve(b, x);
    return;
  }
  smoother.smooth(lvl.a, b, x);   // pre-smooth
  lvl.a.residual(b, x, lvl.r);
  // Restriction = Pᵀ r (general form: P may be smoothed, with several
  // entries per row).
  std::fill(lvl.bc.begin(), lvl.bc.end(), 0.0);
  for (index_t i = 0; i < lvl.p.rows(); ++i) {
    auto cols = lvl.p.row_cols(i);
    auto vals = lvl.p.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      lvl.bc[static_cast<std::size_t>(cols[k])] +=
          vals[k] * lvl.r[static_cast<std::size_t>(i)];
    }
  }
  std::fill(lvl.xc.begin(), lvl.xc.end(), 0.0);
  cycle_level(l + 1, lvl.bc, lvl.xc, smoother);
  // Prolongation: x += P xc.
  lvl.p.spmv_acc(1.0, lvl.xc, x);
  smoother.smooth(lvl.a, b, x);   // post-smooth
}

void AmgHierarchy::vcycle(std::span<const value_t> b, std::span<value_t> x,
                          Smoother& smoother) {
  DSOUTH_CHECK(b.size() ==
               static_cast<std::size_t>(levels_.front().a.rows()));
  DSOUTH_CHECK(x.size() == b.size());
  cycle_level(0, b, x, smoother);
}

double AmgHierarchy::solve_relative_residual(std::span<const value_t> b,
                                             std::span<value_t> x,
                                             Smoother& smoother, int cycles) {
  Level& fine = levels_.front();
  fine.a.residual(b, x, fine.r);
  const value_t r0 = sparse::norm2(fine.r);
  DSOUTH_CHECK_MSG(r0 > 0.0, "initial residual is zero");
  for (int c = 0; c < cycles; ++c) vcycle(b, x, smoother);
  fine.a.residual(b, x, fine.r);
  return sparse::norm2(fine.r) / r0;
}

}  // namespace dsouth::multigrid
