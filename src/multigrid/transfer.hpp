#pragma once

/// \file transfer.hpp
/// Grid transfer operators for geometric multigrid on the 2-D Poisson
/// problem (paper §4.1): full-weighting restriction and bilinear
/// prolongation between square grids of interior dimensions n_f = 2·n_c+1.
/// Vectors are row-major over the interior points; values outside the
/// domain are the homogeneous Dirichlet zero.

#include <span>

#include "sparse/types.hpp"

namespace dsouth::multigrid {

using sparse::index_t;
using sparse::value_t;

/// Coarse dimension for a fine dimension (requires odd n_f >= 3).
index_t coarse_dim(index_t n_fine);

/// Full-weighting restriction: coarse(I,J) = (1/16)·[4·f(c) + 2·(edge
/// neighbors) + 1·(corner neighbors)] around the fine point (2I+1, 2J+1).
void restrict_full_weighting(index_t n_fine, std::span<const value_t> fine,
                             std::span<value_t> coarse);

/// Bilinear prolongation, accumulated into the fine vector
/// (fine += P·coarse) — the form a coarse-grid correction needs.
void prolong_bilinear_add(index_t n_fine, std::span<const value_t> coarse,
                          std::span<value_t> fine);

}  // namespace dsouth::multigrid
