#pragma once

/// \file smoother.hpp
/// Smoother abstraction for the V-cycle, with the two smoothers the paper
/// compares in §4.1: Gauss–Seidel (the baseline) and scalar Distributed
/// Southwell with an exact relaxation budget of one or half a sweep.

#include <cstdint>
#include <memory>
#include <span>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace dsouth::multigrid {

using sparse::CsrMatrix;
using sparse::value_t;

/// A smoothing application: improve x for A x = b in place.
class Smoother {
 public:
  virtual ~Smoother() = default;
  virtual void smooth(const CsrMatrix& a, std::span<const value_t> b,
                      std::span<value_t> x) = 0;
  virtual const char* name() const = 0;
};

/// `sweeps` Gauss–Seidel sweeps in natural order.
std::unique_ptr<Smoother> make_gauss_seidel_smoother(int sweeps = 1);

/// Scalar Distributed Southwell with an exact relaxation budget of
/// `sweep_fraction` × n rounded down (1.0 = "1 sweep", 0.5 = the paper's
/// "1/2 sweep"). The final parallel step relaxes a random subset of the
/// selected rows so the budget is hit exactly (§4.1). The seed advances
/// per call so repeated smoothing applications draw different subsets.
std::unique_ptr<Smoother> make_distributed_southwell_smoother(
    double sweep_fraction, std::uint64_t seed = 0x4d47534d4fULL);

/// Damped Jacobi (ω = 2/3 default), as an extra comparison point.
std::unique_ptr<Smoother> make_jacobi_smoother(value_t omega = 2.0 / 3.0,
                                               int sweeps = 1);

/// Chebyshev polynomial smoother of the given degree: applies the degree-k
/// Chebyshev polynomial of D⁻¹A that is optimal on the smoothing band
/// [λ_max/ratio, λ_max] (λ_max estimated by power iteration per matrix and
/// cached across applications). Classical choice for massively parallel
/// smoothing because, like Jacobi, it needs only SpMV — a natural
/// comparison point for the paper's Block Jacobi/Southwell discussion.
std::unique_ptr<Smoother> make_chebyshev_smoother(int degree = 3,
                                                  double ratio = 30.0);

}  // namespace dsouth::multigrid
