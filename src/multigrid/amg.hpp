#pragma once

/// \file amg.hpp
/// Plain-aggregation algebraic multigrid. The paper's geometric study
/// (§4.1, Figure 6) runs on a structured Poisson grid; AMG extends the
/// same smoothing question — is Distributed Southwell an effective,
/// budget-exact smoother? — to the *unstructured* proxy matrices, where no
/// geometric hierarchy exists. Standard construction:
///
///   1. strength graph: |a_ij| > θ √(a_ii a_jj)
///   2. greedy aggregation of strongly-connected neighborhoods
///   3. piecewise-constant prolongation P (one column per aggregate)
///   4. Galerkin coarse operator A_c = Pᵀ A P (sparse triple product)
///
/// recursing until the operator is small enough for a dense Cholesky.

#include <memory>
#include <span>
#include <vector>

#include "multigrid/smoother.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/types.hpp"

namespace dsouth::multigrid {

using sparse::index_t;

struct AmgOptions {
  /// Strength-of-connection threshold θ in |a_ij| > θ √(a_ii a_jj).
  double strength_threshold = 0.08;
  /// Stop coarsening when the operator has at most this many rows.
  index_t coarse_size = 64;
  /// Safety cap on levels.
  int max_levels = 20;
  /// Stop coarsening if a level shrinks by less than this factor
  /// (aggregation stagnation guard).
  double min_coarsening_factor = 1.2;
  /// Smoothed aggregation: P = (I − ω D⁻¹A) P_tent with
  /// ω = 4/3 / λ_max(D⁻¹A). Plain (piecewise-constant) aggregation
  /// contracts only ~0.6–0.8 per V-cycle; smoothing the prolongator
  /// restores grid-independent rates at a modest operator-complexity
  /// cost. Disable to study the plain variant.
  bool smoothed_prolongation = true;
};

/// Greedy aggregation of the strength graph of `a`: returns per-row
/// aggregate ids (dense from 0) and the number of aggregates. Exposed for
/// tests and for inspecting the hierarchy.
std::vector<index_t> aggregate(const sparse::CsrMatrix& a,
                               double strength_threshold,
                               index_t* num_aggregates);

/// Piecewise-constant prolongator for an aggregation (one unit entry per
/// row).
sparse::CsrMatrix aggregation_prolongator(std::span<const index_t> agg,
                                          index_t num_aggregates);

class AmgHierarchy {
 public:
  /// Build from any SPD matrix (copied into level 0).
  explicit AmgHierarchy(sparse::CsrMatrix a_fine,
                        const AmgOptions& opt = {});

  int num_levels() const { return static_cast<int>(levels_.size()); }
  const sparse::CsrMatrix& level_matrix(int l) const;
  index_t level_rows(int l) const { return level_matrix(l).rows(); }

  /// Total stored nonzeros across levels / nonzeros of the finest level
  /// (the classical grid/operator complexity measure).
  double operator_complexity() const;

  /// One V(1,1) AMG cycle for A₀ x = b.
  void vcycle(std::span<const sparse::value_t> b,
              std::span<sparse::value_t> x, Smoother& smoother);

  /// Run `cycles` V-cycles; returns ‖r‖₂ / ‖r⁰‖₂.
  double solve_relative_residual(std::span<const sparse::value_t> b,
                                 std::span<sparse::value_t> x,
                                 Smoother& smoother, int cycles);

 private:
  struct Level {
    sparse::CsrMatrix a;
    sparse::CsrMatrix p;  // prolongator to THIS level's fine side (empty on
                          // the coarsest level)
    std::vector<sparse::value_t> r, bc, xc;
  };
  void cycle_level(int l, std::span<const sparse::value_t> b,
                   std::span<sparse::value_t> x, Smoother& smoother);

  std::vector<Level> levels_;
  std::unique_ptr<sparse::DenseCholesky> coarse_solver_;
};

}  // namespace dsouth::multigrid
