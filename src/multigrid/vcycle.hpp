#pragma once

/// \file vcycle.hpp
/// Geometric multigrid V-cycle for the 2-D Poisson model problem, matching
/// the paper's §4.1 setup: centered finite differences on a square grid,
/// levels halving down to a 3×3 coarsest grid solved exactly, one
/// pre-smoothing and one post-smoothing application per level.

#include <memory>
#include <span>
#include <vector>

#include "multigrid/smoother.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/types.hpp"

namespace dsouth::multigrid {

using sparse::index_t;

class MultigridHierarchy {
 public:
  /// Build levels for an n×n interior grid (n odd; levels halve until the
  /// 3×3 grid). Each level's operator is the 5-point Poisson matrix on
  /// that grid.
  explicit MultigridHierarchy(index_t n_finest);

  int num_levels() const { return static_cast<int>(levels_.size()); }
  index_t level_dim(int l) const;
  const CsrMatrix& level_matrix(int l) const;

  /// Cycle shape: pre/post smoothing applications per level and the cycle
  /// index μ (1 = V-cycle, 2 = W-cycle).
  struct CycleOptions {
    int pre = 1;
    int post = 1;
    int mu = 1;
  };

  /// One V(1,1) cycle: improve x for A₀ x = b on the finest level.
  /// The same smoother object is used for pre- and post-smoothing on every
  /// level (the paper's "one step of pre-smoothing and one step of
  /// post-smoothing").
  void vcycle(std::span<const value_t> b, std::span<value_t> x,
              Smoother& smoother);

  /// General μ-cycle with configurable smoothing counts.
  void cycle(std::span<const value_t> b, std::span<value_t> x,
             Smoother& smoother, const CycleOptions& opt);

  /// Run `cycles` V-cycles from x and return ‖r‖₂ / ‖r₀‖₂ (the Figure 6
  /// quantity).
  double solve_relative_residual(std::span<const value_t> b,
                                 std::span<value_t> x, Smoother& smoother,
                                 int cycles);

 private:
  struct Level {
    index_t dim;      // interior grid dimension
    CsrMatrix a;      // 5-point operator
    // Work vectors reused across cycles.
    std::vector<value_t> r, bc, xc;
  };
  void cycle_level(int l, std::span<const value_t> b, std::span<value_t> x,
                   Smoother& smoother, const CycleOptions& opt);

  std::vector<Level> levels_;
  std::unique_ptr<sparse::DenseCholesky> coarse_solver_;
};

}  // namespace dsouth::multigrid
