#include "multigrid/transfer.hpp"

#include "util/error.hpp"

namespace dsouth::multigrid {

index_t coarse_dim(index_t n_fine) {
  DSOUTH_CHECK_MSG(n_fine >= 3 && n_fine % 2 == 1,
                   "fine grid dimension must be odd and >= 3, got " << n_fine);
  return (n_fine - 1) / 2;
}

void restrict_full_weighting(index_t n_fine, std::span<const value_t> fine,
                             std::span<value_t> coarse) {
  const index_t nc = coarse_dim(n_fine);
  DSOUTH_CHECK(fine.size() == static_cast<std::size_t>(n_fine * n_fine));
  DSOUTH_CHECK(coarse.size() == static_cast<std::size_t>(nc * nc));
  auto f = [&](index_t i, index_t j) -> value_t {
    if (i < 0 || i >= n_fine || j < 0 || j >= n_fine) return 0.0;
    return fine[static_cast<std::size_t>(j * n_fine + i)];
  };
  for (index_t J = 0; J < nc; ++J) {
    for (index_t I = 0; I < nc; ++I) {
      const index_t i = 2 * I + 1, j = 2 * J + 1;
      const value_t v =
          4.0 * f(i, j) +
          2.0 * (f(i - 1, j) + f(i + 1, j) + f(i, j - 1) + f(i, j + 1)) +
          (f(i - 1, j - 1) + f(i + 1, j - 1) + f(i - 1, j + 1) +
           f(i + 1, j + 1));
      coarse[static_cast<std::size_t>(J * nc + I)] = v / 16.0;
    }
  }
}

void prolong_bilinear_add(index_t n_fine, std::span<const value_t> coarse,
                          std::span<value_t> fine) {
  const index_t nc = coarse_dim(n_fine);
  DSOUTH_CHECK(fine.size() == static_cast<std::size_t>(n_fine * n_fine));
  DSOUTH_CHECK(coarse.size() == static_cast<std::size_t>(nc * nc));
  auto c = [&](index_t I, index_t J) -> value_t {
    if (I < 0 || I >= nc || J < 0 || J >= nc) return 0.0;
    return coarse[static_cast<std::size_t>(J * nc + I)];
  };
  for (index_t j = 0; j < n_fine; ++j) {
    for (index_t i = 0; i < n_fine; ++i) {
      // Fine point (i, j) sits between coarse points ((i-1)/2, (j-1)/2)...
      const bool iodd = (i % 2 == 1), jodd = (j % 2 == 1);
      const index_t I = (i - 1) / 2, J = (j - 1) / 2;
      value_t v;
      if (iodd && jodd) {
        v = c(I, J);
      } else if (iodd) {
        // j even: between (I, J) with J = (j-1)/2 rounding — use the two
        // vertical coarse neighbors (j/2 - 1) and (j/2) at column I.
        v = 0.5 * (c(I, j / 2 - 1) + c(I, j / 2));
      } else if (jodd) {
        v = 0.5 * (c(i / 2 - 1, J) + c(i / 2, J));
      } else {
        v = 0.25 * (c(i / 2 - 1, j / 2 - 1) + c(i / 2, j / 2 - 1) +
                    c(i / 2 - 1, j / 2) + c(i / 2, j / 2));
      }
      fine[static_cast<std::size_t>(j * n_fine + i)] += v;
    }
  }
}

}  // namespace dsouth::multigrid
