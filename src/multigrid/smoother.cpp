#include "multigrid/smoother.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

#include "core/classic.hpp"
#include "core/dist_southwell_scalar.hpp"
#include "core/scalar_engine.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "sparse/vec.hpp"
#include "util/error.hpp"

namespace dsouth::multigrid {

namespace {

class GaussSeidelSmoother final : public Smoother {
 public:
  explicit GaussSeidelSmoother(int sweeps) : sweeps_(sweeps) {
    DSOUTH_CHECK(sweeps >= 1);
  }

  void smooth(const CsrMatrix& a, std::span<const value_t> b,
              std::span<value_t> x) override {
    core::ScalarRelaxationEngine eng(a, b, x, /*check_symmetry=*/false);
    for (int s = 0; s < sweeps_; ++s) {
      for (sparse::index_t i = 0; i < a.rows(); ++i) eng.relax_row(i, 1.0);
    }
    std::copy(eng.x().begin(), eng.x().end(), x.begin());
  }

  const char* name() const override { return "GaussSeidel"; }

 private:
  int sweeps_;
};

class JacobiSmoother final : public Smoother {
 public:
  JacobiSmoother(value_t omega, int sweeps) : omega_(omega), sweeps_(sweeps) {
    DSOUTH_CHECK(omega > 0.0 && omega <= 1.0);
    DSOUTH_CHECK(sweeps >= 1);
  }

  void smooth(const CsrMatrix& a, std::span<const value_t> b,
              std::span<value_t> x) override {
    core::ScalarRelaxationEngine eng(a, b, x, /*check_symmetry=*/false);
    std::vector<sparse::index_t> all(static_cast<std::size_t>(a.rows()));
    std::iota(all.begin(), all.end(), sparse::index_t{0});
    for (int s = 0; s < sweeps_; ++s) eng.relax_simultaneously(all, omega_);
    std::copy(eng.x().begin(), eng.x().end(), x.begin());
  }

  const char* name() const override { return "Jacobi"; }

 private:
  value_t omega_;
  int sweeps_;
};

class DistSouthwellSmoother final : public Smoother {
 public:
  DistSouthwellSmoother(double sweep_fraction, std::uint64_t seed)
      : sweep_fraction_(sweep_fraction), seed_(seed) {
    DSOUTH_CHECK(sweep_fraction > 0.0);
  }

  void smooth(const CsrMatrix& a, std::span<const value_t> b,
              std::span<value_t> x) override {
    core::DistSouthwellScalarOptions opt;
    opt.max_relaxations = std::max<sparse::index_t>(
        1, static_cast<sparse::index_t>(
               sweep_fraction_ * static_cast<double>(a.rows())));
    // A generous step cap; the budget is the real stopping rule.
    opt.max_parallel_steps = opt.max_relaxations * 4 + 16;
    opt.subset_seed = seed_++;
    auto result = core::run_distributed_southwell_scalar(a, b, x, opt);
    std::copy(result.x.begin(), result.x.end(), x.begin());
  }

  const char* name() const override { return "DistSouthwell"; }

 private:
  double sweep_fraction_;
  std::uint64_t seed_;
};

class ChebyshevSmoother final : public Smoother {
 public:
  ChebyshevSmoother(int degree, double ratio)
      : degree_(degree), ratio_(ratio) {
    DSOUTH_CHECK(degree >= 1);
    DSOUTH_CHECK(ratio > 1.0);
  }

  void smooth(const CsrMatrix& a, std::span<const value_t> b,
              std::span<value_t> x) override {
    const auto n = static_cast<std::size_t>(a.rows());
    DSOUTH_CHECK(b.size() == n && x.size() == n);
    // λ_max(D⁻¹A) equals λ_max of the symmetrically scaled operator
    // (similarity); estimate once per matrix and cache by identity — the
    // operators of a multigrid hierarchy are stable across cycles.
    double beta;
    auto it = lambda_cache_.find(&a);
    if (it != lambda_cache_.end()) {
      beta = it->second;
    } else {
      auto scaled = sparse::symmetric_unit_diagonal_scale(a);
      beta = 1.02 * sparse::lambda_max_estimate(scaled.a, 30, 0xC4EBULL);
      lambda_cache_.emplace(&a, beta);
    }
    const double alpha = beta / ratio_;
    const double theta = 0.5 * (beta + alpha);
    const double delta = 0.5 * (beta - alpha);

    auto diag = a.diagonal();
    std::vector<value_t> r(n), z(n), d(n);
    // d₀ = D⁻¹ r / θ; x += d₀.
    a.residual(b, x, r);
    for (std::size_t i = 0; i < n; ++i) {
      d[i] = r[i] / (diag[i] * theta);
      x[i] += d[i];
    }
    const double sigma = theta / delta;
    double rho_prev = 1.0 / sigma;
    for (int k = 1; k < degree_; ++k) {
      const double rho = 1.0 / (2.0 * sigma - rho_prev);
      a.residual(b, x, r);
      for (std::size_t i = 0; i < n; ++i) {
        z[i] = r[i] / diag[i];
        d[i] = rho * rho_prev * d[i] + (2.0 * rho / delta) * z[i];
        x[i] += d[i];
      }
      rho_prev = rho;
    }
  }

  const char* name() const override { return "Chebyshev"; }

 private:
  int degree_;
  double ratio_;
  std::map<const CsrMatrix*, double> lambda_cache_;
};

}  // namespace

std::unique_ptr<Smoother> make_gauss_seidel_smoother(int sweeps) {
  return std::make_unique<GaussSeidelSmoother>(sweeps);
}

std::unique_ptr<Smoother> make_distributed_southwell_smoother(
    double sweep_fraction, std::uint64_t seed) {
  return std::make_unique<DistSouthwellSmoother>(sweep_fraction, seed);
}

std::unique_ptr<Smoother> make_jacobi_smoother(value_t omega, int sweeps) {
  return std::make_unique<JacobiSmoother>(omega, sweeps);
}

std::unique_ptr<Smoother> make_chebyshev_smoother(int degree, double ratio) {
  return std::make_unique<ChebyshevSmoother>(degree, ratio);
}

}  // namespace dsouth::multigrid
