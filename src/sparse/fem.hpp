#pragma once

/// \file fem.hpp
/// P1 (linear triangle) finite element assembly: Poisson and plane-strain
/// linear elasticity, with Dirichlet elimination on the mesh boundary.
///
/// The Poisson assembler reproduces the paper's small FEM test problem
/// (Figures 2 and 5). The elasticity assembler produces the SPD,
/// non-M-matrix systems used by the proxy suite: unlike diffusion operators,
/// elasticity stiffness matrices have positive off-diagonal couplings, so
/// point/small-block Jacobi can diverge on them — which is exactly the
/// Block Jacobi failure mode the paper's evaluation exhibits.

#include "sparse/csr.hpp"
#include "sparse/mesh.hpp"
#include "sparse/mesh3d.hpp"
#include "sparse/types.hpp"

namespace dsouth::sparse {

/// Map from mesh vertices to unknown indices after Dirichlet elimination.
struct DofMap {
  /// vertex -> unknown index, or -1 for eliminated (boundary) vertices.
  /// For vector problems this maps vertex -> first dof of the vertex.
  std::vector<index_t> vertex_to_dof;
  index_t num_dofs = 0;
  int dofs_per_vertex = 1;
};

/// Assemble the P1 stiffness matrix for -∇·(∇u) on the mesh with
/// homogeneous Dirichlet boundary (boundary vertices eliminated).
/// The result has one unknown per interior vertex, is symmetric positive
/// definite, and has only non-positive off-diagonal entries (an M-matrix)
/// on meshes without obtuse perturbations.
CsrMatrix assemble_p1_poisson(const TriMesh& mesh, DofMap* dof_map = nullptr);

/// Material parameters for plane-strain linear elasticity.
struct ElasticityOptions {
  double youngs_modulus = 1.0;
  /// Poisson ratio in [0, 0.5). Larger values (0.4+) strengthen the positive
  /// off-diagonal couplings and widen the spectrum (see file comment).
  double poisson_ratio = 0.4;
  /// Per-element Young's modulus contrast: elements whose centroid falls in
  /// the "high" cells of a jump_blocks × jump_blocks checkerboard use
  /// E·jump_contrast. 1.0 = homogeneous material. Mimics the
  /// composite/layered structures of the paper's reservoir and bone
  /// matrices while staying SPD for any contrast.
  double jump_contrast = 1.0;
  int jump_blocks = 4;
};

/// Assemble the P1 plane-strain elasticity stiffness matrix (2 dofs per
/// vertex, both clamped on the boundary). SPD for poisson_ratio < 0.5.
CsrMatrix assemble_p1_elasticity(const TriMesh& mesh,
                                 const ElasticityOptions& opt = {},
                                 DofMap* dof_map = nullptr);

/// Assemble the P1 3-D isotropic linear elasticity stiffness matrix on a
/// tetrahedral mesh (3 dofs per vertex, all clamped on the boundary).
/// Per-vertex-pair 3×3 block: V·(λ ∇λ_i ∇λ_jᵀ + μ ∇λ_j ∇λ_iᵀ +
/// μ (∇λ_i·∇λ_j) I), with Lamé parameters from E and ν. SPD for ν < 0.5.
/// The jump_contrast field uses a 3-D checkerboard over element centroids.
CsrMatrix assemble_p1_elasticity_3d(const TetMesh& mesh,
                                    const ElasticityOptions& opt = {},
                                    DofMap* dof_map = nullptr);

}  // namespace dsouth::sparse
