#pragma once

/// \file mesh3d.hpp
/// Perturbed structured tetrahedral meshes of a box. Substrate for the 3-D
/// elasticity proxies (DESIGN.md §5): the paper's structural matrices
/// (audikw_1, Flan_1565, bone010, …) are 3-D finite-element problems with
/// ~45-80 nonzeros per row, which a tetrahedralized box with 3 dofs per
/// vertex reproduces.

#include <array>
#include <cstdint>
#include <vector>

#include "sparse/types.hpp"

namespace dsouth::sparse {

/// 3-D tetrahedral mesh with P1 elements in mind.
struct TetMesh {
  index_t nvx = 0, nvy = 0, nvz = 0;  ///< vertices per axis
  std::vector<double> vx, vy, vz;     ///< vertex coordinates
  std::vector<std::array<index_t, 4>> tets;  ///< positively oriented
  std::vector<bool> on_boundary;      ///< per-vertex boundary flag

  index_t num_vertices() const { return static_cast<index_t>(vx.size()); }
  index_t num_tets() const { return static_cast<index_t>(tets.size()); }
  index_t num_interior() const;

  /// Signed volume of tet t (positive for the canonical orientation).
  double signed_volume(index_t t) const;

  bool is_valid() const;
};

/// Build an (nvx × nvy × nvz)-vertex mesh of the box
/// [0, ax] × [0, ay] × [0, az] where a* = (nv* − 1) / max(nv* − 1), i.e.
/// the longest axis spans [0, 1] and the others proportionally (so cells
/// stay nearly cubic; pass unequal vertex counts for thin slabs or beams).
/// Interior vertices are jittered by up to `perturb` × (local spacing) per
/// coordinate; each grid cell is split into six tetrahedra (Kuhn
/// triangulation), all sharing the cell's main diagonal.
TetMesh make_perturbed_box_mesh(index_t nvx, index_t nvy, index_t nvz,
                                double perturb, std::uint64_t seed);

}  // namespace dsouth::sparse
