#pragma once

/// \file mm_io.hpp
/// Matrix Market (coordinate format) I/O. The paper's artifact loads
/// SuiteSparse matrices from .mtx-derived binaries; this reader lets users
/// run the solvers on real SuiteSparse downloads if they have them, and the
/// writer round-trips generated matrices for external inspection.

#include <istream>
#include <ostream>
#include <string>

#include "sparse/csr.hpp"

namespace dsouth::sparse {

/// Read a Matrix Market coordinate file. Supports:
///  - field: real, integer, pattern (pattern entries become 1.0)
///  - symmetry: general, symmetric (symmetric entries are mirrored)
/// Throws CheckError on malformed input or unsupported variants
/// (complex, skew-symmetric, hermitian, array format).
CsrMatrix read_matrix_market(std::istream& in);
CsrMatrix read_matrix_market_file(const std::string& path);

/// Write in coordinate/real format. If `symmetric` is set, only the lower
/// triangle is emitted and the header declares symmetric (the matrix must
/// actually be symmetric; validated).
void write_matrix_market(std::ostream& out, const CsrMatrix& a,
                         bool symmetric = false);
void write_matrix_market_file(const std::string& path, const CsrMatrix& a,
                              bool symmetric = false);

}  // namespace dsouth::sparse
