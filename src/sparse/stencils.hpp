#pragma once

/// \file stencils.hpp
/// Structured-grid SPD matrix generators. These stand in for the paper's
/// SuiteSparse problems (see DESIGN.md §5) and for the 2-D Poisson grids in
/// the multigrid experiment (§4.1 of the paper).
///
/// All generators produce symmetric positive definite matrices assembled as
/// variable-coefficient diffusion operators: the weight of the edge between
/// cells a and b is the harmonic mean of the cell coefficients times a
/// per-direction anisotropy factor, and the diagonal is the sum of incident
/// edge weights plus an optional shift. With default options every generator
/// reduces to the classical constant-coefficient stencil.

#include <cstdint>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace dsouth::sparse {

/// Options shared by the stencil generators.
struct StencilOptions {
  /// Anisotropy multipliers applied to edges with a y / z component
  /// (eps < 1 weakens coupling in that direction).
  double eps_y = 1.0;
  double eps_z = 1.0;
  /// Checkerboard coefficient contrast: blocks of `jump_block` cells
  /// alternate between coefficient 1 and `jump_contrast`.
  double jump_contrast = 1.0;
  index_t jump_block = 8;
  /// Added to every diagonal entry (keeps shifted operators strictly
  /// positive definite; 0 keeps the pure Neumann-free Dirichlet operator).
  double diag_shift = 0.0;
  /// Multiplies every off-diagonal entry after assembly, widening the
  /// spectrum: a unit-diagonal-scaled SPD matrix diverges under point
  /// Jacobi iff λ_max ≥ 2, and boost > 1 pushes λ_max past 2 while the
  /// diagonal shift keeps the matrix SPD. Used by proxies that must make
  /// small-block Jacobi diverge (DESIGN.md §5).
  double offdiag_boost = 1.0;
};

/// 2-D Poisson, 5-point stencil, Dirichlet boundary, nx*ny unknowns.
CsrMatrix poisson2d_5pt(index_t nx, index_t ny,
                        const StencilOptions& opt = {});

/// 2-D, 9-point (8 neighbors), Dirichlet.
CsrMatrix poisson2d_9pt(index_t nx, index_t ny,
                        const StencilOptions& opt = {});

/// 3-D Poisson, 7-point stencil, Dirichlet, nx*ny*nz unknowns.
CsrMatrix poisson3d_7pt(index_t nx, index_t ny, index_t nz,
                        const StencilOptions& opt = {});

/// 3-D, 27-point (26 neighbors), Dirichlet.
CsrMatrix poisson3d_27pt(index_t nx, index_t ny, index_t nz,
                         const StencilOptions& opt = {});

/// Random sparse SPD matrix on a random regular-ish graph: ~`nnz_per_row`
/// off-diagonal entries per row, negative off-diagonal values, diagonal set
/// to `dominance` × (sum of |off-diagonals| in the row). dominance > 1
/// gives strict diagonal dominance (hence SPD).
CsrMatrix random_spd(index_t n, index_t nnz_per_row, double dominance,
                     std::uint64_t seed);

/// Largest-eigenvalue estimate by power iteration (symmetric matrices).
/// Used to characterize Jacobi convergence: after unit-diagonal scaling,
/// point Jacobi converges iff λ_max(A) < 2.
value_t lambda_max_estimate(const CsrMatrix& a, int iterations = 100,
                            std::uint64_t seed = 12345);

}  // namespace dsouth::sparse
