#include "sparse/fem.hpp"

#include <array>

#include "sparse/coo.hpp"
#include "util/error.hpp"

namespace dsouth::sparse {

namespace {

DofMap make_dof_map(const TriMesh& mesh, int dofs_per_vertex) {
  DofMap map;
  map.dofs_per_vertex = dofs_per_vertex;
  map.vertex_to_dof.assign(static_cast<std::size_t>(mesh.num_vertices()), -1);
  index_t next = 0;
  for (index_t v = 0; v < mesh.num_vertices(); ++v) {
    if (!mesh.on_boundary[static_cast<std::size_t>(v)]) {
      map.vertex_to_dof[static_cast<std::size_t>(v)] = next;
      next += dofs_per_vertex;
    }
  }
  map.num_dofs = next;
  return map;
}

/// P1 shape-function gradient coefficients on a triangle:
/// grad(phi_i) = (b_i, c_i) / (2 * area).
struct TriGeom {
  std::array<double, 3> b, c;
  double area;
};

TriGeom tri_geometry(const TriMesh& mesh, index_t t) {
  const auto& tri = mesh.tris[static_cast<std::size_t>(t)];
  const double x0 = mesh.vx[tri[0]], y0 = mesh.vy[tri[0]];
  const double x1 = mesh.vx[tri[1]], y1 = mesh.vy[tri[1]];
  const double x2 = mesh.vx[tri[2]], y2 = mesh.vy[tri[2]];
  TriGeom g;
  g.b = {y1 - y2, y2 - y0, y0 - y1};
  g.c = {x2 - x1, x0 - x2, x1 - x0};
  g.area = mesh.signed_area(t);
  DSOUTH_CHECK_MSG(g.area > 0.0, "degenerate or inverted triangle " << t);
  return g;
}

}  // namespace

CsrMatrix assemble_p1_poisson(const TriMesh& mesh, DofMap* dof_map) {
  DSOUTH_CHECK(mesh.is_valid());
  DofMap map = make_dof_map(mesh, 1);
  DSOUTH_CHECK_MSG(map.num_dofs > 0, "mesh has no interior vertices");
  CooBuilder coo(map.num_dofs, map.num_dofs);
  for (index_t t = 0; t < mesh.num_triangles(); ++t) {
    const TriGeom g = tri_geometry(mesh, t);
    const auto& tri = mesh.tris[static_cast<std::size_t>(t)];
    const double inv4a = 1.0 / (4.0 * g.area);
    for (int i = 0; i < 3; ++i) {
      const index_t di = map.vertex_to_dof[static_cast<std::size_t>(tri[i])];
      if (di < 0) continue;
      for (int j = 0; j < 3; ++j) {
        const index_t dj =
            map.vertex_to_dof[static_cast<std::size_t>(tri[j])];
        if (dj < 0) continue;
        const double k = (g.b[i] * g.b[j] + g.c[i] * g.c[j]) * inv4a;
        coo.add(di, dj, k);
      }
    }
  }
  if (dof_map) *dof_map = std::move(map);
  return coo.to_csr();
}

CsrMatrix assemble_p1_elasticity(const TriMesh& mesh,
                                 const ElasticityOptions& opt,
                                 DofMap* dof_map) {
  DSOUTH_CHECK(mesh.is_valid());
  DSOUTH_CHECK(opt.poisson_ratio >= 0.0 && opt.poisson_ratio < 0.5);
  DSOUTH_CHECK(opt.youngs_modulus > 0.0);
  DSOUTH_CHECK(opt.jump_contrast > 0.0 && opt.jump_blocks > 0);
  DofMap map = make_dof_map(mesh, 2);
  DSOUTH_CHECK_MSG(map.num_dofs > 0, "mesh has no interior vertices");
  // Plane-strain constitutive matrix:
  //   D = E / ((1+nu)(1-2nu)) * [ 1-nu   nu     0        ]
  //                             [ nu     1-nu   0        ]
  //                             [ 0      0      (1-2nu)/2 ]
  const double nu = opt.poisson_ratio;
  const double scale =
      opt.youngs_modulus / ((1.0 + nu) * (1.0 - 2.0 * nu));
  const double d00_base = scale * (1.0 - nu);
  const double d01_base = scale * nu;
  const double d22_base = scale * (1.0 - 2.0 * nu) / 2.0;
  // Checkerboard modulus field over the unit square (E scales D linearly).
  auto element_scale = [&](index_t t) -> double {
    if (opt.jump_contrast == 1.0) return 1.0;
    const auto& tri = mesh.tris[static_cast<std::size_t>(t)];
    const double cx = (mesh.vx[tri[0]] + mesh.vx[tri[1]] + mesh.vx[tri[2]]) / 3.0;
    const double cy = (mesh.vy[tri[0]] + mesh.vy[tri[1]] + mesh.vy[tri[2]]) / 3.0;
    const int bx = std::min(opt.jump_blocks - 1,
                            static_cast<int>(cx * opt.jump_blocks));
    const int by = std::min(opt.jump_blocks - 1,
                            static_cast<int>(cy * opt.jump_blocks));
    return ((bx + by) % 2 == 0) ? 1.0 : opt.jump_contrast;
  };

  CooBuilder coo(map.num_dofs, map.num_dofs);
  for (index_t t = 0; t < mesh.num_triangles(); ++t) {
    const TriGeom g = tri_geometry(mesh, t);
    const double es = element_scale(t);
    const double d00 = d00_base * es;
    const double d01 = d01_base * es;
    const double d22 = d22_base * es;
    const auto& tri = mesh.tris[static_cast<std::size_t>(t)];
    const double inv2a = 1.0 / (2.0 * g.area);
    // Strain-displacement rows for vertex i (B is 3x6):
    //   B(:, 2i)   = [ b_i, 0,   c_i ]ᵀ / 2A     (u_x dof)
    //   B(:, 2i+1) = [ 0,   c_i, b_i ]ᵀ / 2A     (u_y dof)
    // Element stiffness K = area * Bᵀ D B, assembled per 2x2 vertex block.
    for (int i = 0; i < 3; ++i) {
      const index_t di = map.vertex_to_dof[static_cast<std::size_t>(tri[i])];
      if (di < 0) continue;
      const double bi = g.b[i] * inv2a, ci = g.c[i] * inv2a;
      for (int j = 0; j < 3; ++j) {
        const index_t dj =
            map.vertex_to_dof[static_cast<std::size_t>(tri[j])];
        if (dj < 0) continue;
        const double bj = g.b[j] * inv2a, cj = g.c[j] * inv2a;
        // K_block = area * [ bi*d00*bj + ci*d22*cj,  bi*d01*cj + ci*d22*bj ]
        //                  [ ci*d01*bj + bi*d22*cj,  ci*d00*cj + bi*d22*bj ]
        const double kxx = g.area * (bi * d00 * bj + ci * d22 * cj);
        const double kxy = g.area * (bi * d01 * cj + ci * d22 * bj);
        const double kyx = g.area * (ci * d01 * bj + bi * d22 * cj);
        const double kyy = g.area * (ci * d00 * cj + bi * d22 * bj);
        coo.add(di, dj, kxx);
        coo.add(di, dj + 1, kxy);
        coo.add(di + 1, dj, kyx);
        coo.add(di + 1, dj + 1, kyy);
      }
    }
  }
  if (dof_map) *dof_map = std::move(map);
  return coo.to_csr();
}

}  // namespace dsouth::sparse

namespace dsouth::sparse {

CsrMatrix assemble_p1_elasticity_3d(const TetMesh& mesh,
                                    const ElasticityOptions& opt,
                                    DofMap* dof_map) {
  DSOUTH_CHECK(mesh.is_valid());
  DSOUTH_CHECK(opt.poisson_ratio >= 0.0 && opt.poisson_ratio < 0.5);
  DSOUTH_CHECK(opt.youngs_modulus > 0.0);
  DSOUTH_CHECK(opt.jump_contrast > 0.0 && opt.jump_blocks > 0);
  // Dof map: 3 dofs per interior vertex.
  DofMap map;
  map.dofs_per_vertex = 3;
  map.vertex_to_dof.assign(static_cast<std::size_t>(mesh.num_vertices()), -1);
  index_t next = 0;
  for (index_t v = 0; v < mesh.num_vertices(); ++v) {
    if (!mesh.on_boundary[static_cast<std::size_t>(v)]) {
      map.vertex_to_dof[static_cast<std::size_t>(v)] = next;
      next += 3;
    }
  }
  map.num_dofs = next;
  DSOUTH_CHECK_MSG(map.num_dofs > 0, "mesh has no interior vertices");

  const double nu = opt.poisson_ratio;
  const double lambda_base = opt.youngs_modulus * nu /
                             ((1.0 + nu) * (1.0 - 2.0 * nu));
  const double mu_base = opt.youngs_modulus / (2.0 * (1.0 + nu));

  auto element_scale = [&](index_t t) -> double {
    if (opt.jump_contrast == 1.0) return 1.0;
    const auto& tet = mesh.tets[static_cast<std::size_t>(t)];
    double cx = 0, cy = 0, cz = 0;
    for (index_t v : tet) {
      cx += mesh.vx[static_cast<std::size_t>(v)];
      cy += mesh.vy[static_cast<std::size_t>(v)];
      cz += mesh.vz[static_cast<std::size_t>(v)];
    }
    cx /= 4.0;
    cy /= 4.0;
    cz /= 4.0;
    auto block = [&](double c) {
      return std::min(opt.jump_blocks - 1,
                      static_cast<int>(c * opt.jump_blocks));
    };
    return ((block(cx) + block(cy) + block(cz)) % 2 == 0)
               ? 1.0
               : opt.jump_contrast;
  };

  CooBuilder coo(map.num_dofs, map.num_dofs);
  for (index_t t = 0; t < mesh.num_tets(); ++t) {
    const auto& tet = mesh.tets[static_cast<std::size_t>(t)];
    const double vol = mesh.signed_volume(t);
    DSOUTH_CHECK_MSG(vol > 0.0, "degenerate or inverted tet " << t);
    // Barycentric gradients: rows of the inverse of the edge matrix
    // M = [p1-p0 | p2-p0 | p3-p0] give grad(lambda_1..3); grad(lambda_0)
    // closes the partition of unity.
    const double m[3][3] = {
        {mesh.vx[tet[1]] - mesh.vx[tet[0]], mesh.vx[tet[2]] - mesh.vx[tet[0]],
         mesh.vx[tet[3]] - mesh.vx[tet[0]]},
        {mesh.vy[tet[1]] - mesh.vy[tet[0]], mesh.vy[tet[2]] - mesh.vy[tet[0]],
         mesh.vy[tet[3]] - mesh.vy[tet[0]]},
        {mesh.vz[tet[1]] - mesh.vz[tet[0]], mesh.vz[tet[2]] - mesh.vz[tet[0]],
         mesh.vz[tet[3]] - mesh.vz[tet[0]]}};
    const double det = 6.0 * vol;  // det(M)
    // inv(M) via adjugate; grad(lambda_k) = row k-1 of inv(M).
    double grad[4][3];
    const double inv[3][3] = {
        {(m[1][1] * m[2][2] - m[1][2] * m[2][1]) / det,
         (m[0][2] * m[2][1] - m[0][1] * m[2][2]) / det,
         (m[0][1] * m[1][2] - m[0][2] * m[1][1]) / det},
        {(m[1][2] * m[2][0] - m[1][0] * m[2][2]) / det,
         (m[0][0] * m[2][2] - m[0][2] * m[2][0]) / det,
         (m[0][2] * m[1][0] - m[0][0] * m[1][2]) / det},
        {(m[1][0] * m[2][1] - m[1][1] * m[2][0]) / det,
         (m[0][1] * m[2][0] - m[0][0] * m[2][1]) / det,
         (m[0][0] * m[1][1] - m[0][1] * m[1][0]) / det}};
    for (int k = 0; k < 3; ++k) {
      grad[k + 1][0] = inv[k][0];
      grad[k + 1][1] = inv[k][1];
      grad[k + 1][2] = inv[k][2];
    }
    for (int c = 0; c < 3; ++c) {
      grad[0][c] = -(grad[1][c] + grad[2][c] + grad[3][c]);
    }

    const double es = element_scale(t);
    const double lam = lambda_base * es;
    const double mu = mu_base * es;
    for (int i = 0; i < 4; ++i) {
      const index_t di = map.vertex_to_dof[static_cast<std::size_t>(tet[i])];
      if (di < 0) continue;
      for (int j = 0; j < 4; ++j) {
        const index_t dj =
            map.vertex_to_dof[static_cast<std::size_t>(tet[j])];
        if (dj < 0) continue;
        const double dot = grad[i][0] * grad[j][0] +
                           grad[i][1] * grad[j][1] +
                           grad[i][2] * grad[j][2];
        for (int r = 0; r < 3; ++r) {
          for (int c = 0; c < 3; ++c) {
            const double k_rc =
                vol * (lam * grad[i][r] * grad[j][c] +
                       mu * grad[j][r] * grad[i][c] +
                       (r == c ? mu * dot : 0.0));
            coo.add(di + r, dj + c, k_rc);
          }
        }
      }
    }
  }
  if (dof_map) *dof_map = std::move(map);
  return coo.to_csr();
}

}  // namespace dsouth::sparse
