#pragma once

/// \file types.hpp
/// Common index/value typedefs for the sparse kernels.

#include <cstdint>

namespace dsouth::sparse {

/// Row/column index. 64-bit: the proxy suite stays well under 2^31 rows but
/// nnz offsets are also stored with this type and headroom is cheap.
using index_t = std::int64_t;

/// Matrix/vector value type.
using value_t = double;

}  // namespace dsouth::sparse
