#include "sparse/binary_io.hpp"

#include <cstring>
#include <fstream>

#include "sparse/mm_io.hpp"
#include "util/error.hpp"

namespace dsouth::sparse {

namespace {

constexpr char kMagic[8] = {'D', 'S', 'O', 'U', 'C', 'S', 'R', '\0'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void read_pod(std::istream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  DSOUTH_CHECK_MSG(in.good(), "truncated binary CSR stream");
}

template <typename T>
void write_array(std::ostream& out, const std::vector<T>& v) {
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_array(std::istream& in, std::size_t count) {
  std::vector<T> v(count);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  DSOUTH_CHECK_MSG(in.good(), "truncated binary CSR stream");
  return v;
}

}  // namespace

void write_binary_csr(std::ostream& out, const CsrMatrix& a) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::int64_t>(a.rows()));
  write_pod(out, static_cast<std::int64_t>(a.cols()));
  write_pod(out, static_cast<std::int64_t>(a.nnz()));
  write_array(out, std::vector<index_t>(a.row_ptr().begin(),
                                        a.row_ptr().end()));
  write_array(out, std::vector<index_t>(a.col_idx().begin(),
                                        a.col_idx().end()));
  write_array(out, std::vector<value_t>(a.values().begin(),
                                        a.values().end()));
  DSOUTH_CHECK_MSG(out.good(), "write failure in binary CSR stream");
}

void write_binary_csr_file(const std::string& path, const CsrMatrix& a) {
  std::ofstream out(path, std::ios::binary);
  DSOUTH_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  write_binary_csr(out, a);
}

CsrMatrix read_binary_csr(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  DSOUTH_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, 8) == 0,
                   "bad binary CSR magic");
  std::uint32_t version = 0;
  read_pod(in, version);
  DSOUTH_CHECK_MSG(version == kVersion,
                   "unsupported binary CSR version " << version);
  std::int64_t rows = 0, cols = 0, nnz = 0;
  read_pod(in, rows);
  read_pod(in, cols);
  read_pod(in, nnz);
  DSOUTH_CHECK_MSG(rows >= 0 && cols >= 0 && nnz >= 0,
                   "corrupt binary CSR header");
  auto row_ptr = read_array<index_t>(in, static_cast<std::size_t>(rows) + 1);
  auto col_idx = read_array<index_t>(in, static_cast<std::size_t>(nnz));
  auto values = read_array<value_t>(in, static_cast<std::size_t>(nnz));
  CsrMatrix a(rows, cols, std::move(row_ptr), std::move(col_idx),
              std::move(values));
  DSOUTH_CHECK_MSG(a.validate(), "corrupt binary CSR structure");
  return a;
}

CsrMatrix read_binary_csr_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DSOUTH_CHECK_MSG(in.good(), "cannot open '" << path << "'");
  return read_binary_csr(in);
}

CsrMatrix load_matrix_any(const std::string& path) {
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".bin") == 0) {
    return read_binary_csr_file(path);
  }
  return read_matrix_market_file(path);
}

}  // namespace dsouth::sparse
