#pragma once

/// \file scaling.hpp
/// Symmetric diagonal scaling. The paper (§2.2, §4.2) symmetrically scales
/// every system to unit diagonal, which makes the Southwell rule ("largest
/// |r_i|") coincide with the Gauss–Southwell rule ("largest |r_i/a_ii|").
/// All experiments in this repo run on scaled systems too.

#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace dsouth::sparse {

/// Result of symmetric unit-diagonal scaling of Ax = b.
struct ScaledSystem {
  CsrMatrix a;                  ///< D^{-1/2} A D^{-1/2}; unit diagonal
  std::vector<value_t> scale;   ///< d_i^{-1/2} (maps x_scaled = D^{1/2} x)
};

/// Scale A to unit diagonal: A' = D^{-1/2} A D^{-1/2} with D = diag(A).
/// Requires every diagonal entry positive (SPD inputs satisfy this).
ScaledSystem symmetric_unit_diagonal_scale(const CsrMatrix& a);

/// Transform a right-hand side to the scaled system: b' = D^{-1/2} b.
std::vector<value_t> scale_rhs(const ScaledSystem& s,
                               std::span<const value_t> b);

/// Recover the unscaled solution: x = D^{-1/2} x'.
std::vector<value_t> unscale_solution(const ScaledSystem& s,
                                      std::span<const value_t> x_scaled);

/// Rescale a vector in place so that ‖b - A x‖₂ == 1 (paper §4.2 scales
/// the random initial guess — or the RHS — so the initial residual norm is
/// exactly 1). With b == 0 this divides x by ‖A x‖₂. Returns the original
/// residual norm. Requires the original residual to be nonzero.
value_t normalize_initial_residual(const CsrMatrix& a,
                                   std::span<const value_t> b,
                                   std::span<value_t> x);

}  // namespace dsouth::sparse
