#pragma once

/// \file binary_io.hpp
/// Binary CSR serialization. The paper's artifact shipped its SuiteSparse
/// inputs as `.mtx.bin` files because Matrix Market text parsing dominates
/// setup time at these sizes; this is the equivalent facility (own format:
/// magic + version + dims + raw little-endian arrays, with validation on
/// load).

#include <istream>
#include <ostream>
#include <string>

#include "sparse/csr.hpp"

namespace dsouth::sparse {

/// Write a matrix in dsouth binary CSR format.
void write_binary_csr(std::ostream& out, const CsrMatrix& a);
void write_binary_csr_file(const std::string& path, const CsrMatrix& a);

/// Read a matrix written by write_binary_csr. Throws CheckError on bad
/// magic, version mismatch, truncation, or structural corruption.
CsrMatrix read_binary_csr(std::istream& in);
CsrMatrix read_binary_csr_file(const std::string& path);

/// Load a matrix by file extension: ".bin" → binary CSR, anything else →
/// Matrix Market text (mirrors the artifact's -mat_file handling).
CsrMatrix load_matrix_any(const std::string& path);

}  // namespace dsouth::sparse
