#include "sparse/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "util/error.hpp"

namespace dsouth::sparse {

MatrixStats compute_matrix_stats(const CsrMatrix& a, int power_iterations) {
  DSOUTH_CHECK(a.rows() == a.cols());
  MatrixStats s;
  s.rows = a.rows();
  s.nnz = a.nnz();
  if (a.rows() == 0) return s;
  s.nnz_per_row_min = std::numeric_limits<index_t>::max();
  index_t dominant_rows = 0;
  std::size_t offdiag_entries = 0, positive_offdiag = 0;
  bool struct_sym = true, num_sym = true;
  bool full_diag = true;
  for (index_t i = 0; i < a.rows(); ++i) {
    const index_t row_nnz = a.row_nnz(i);
    s.nnz_per_row_min = std::min(s.nnz_per_row_min, row_nnz);
    s.nnz_per_row_max = std::max(s.nnz_per_row_max, row_nnz);
    auto cols = a.row_cols(i);
    auto vals = a.row_vals(i);
    value_t diag = 0.0, off_abs = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const index_t j = cols[k];
      s.bandwidth = std::max(s.bandwidth, std::abs(i - j));
      if (j == i) {
        diag = vals[k];
        continue;
      }
      ++offdiag_entries;
      if (vals[k] > 0.0) ++positive_offdiag;
      off_abs += std::abs(vals[k]);
      // Symmetry probes (O(log) lookup per entry).
      const value_t mirror = a.at(j, i);
      if (mirror == 0.0 && vals[k] != 0.0) struct_sym = false;
      if (std::abs(mirror - vals[k]) > 1e-12) num_sym = false;
    }
    if (diag == 0.0) full_diag = false;
    if (std::abs(diag) >= off_abs) ++dominant_rows;
  }
  s.nnz_per_row_mean =
      static_cast<double>(a.nnz()) / static_cast<double>(a.rows());
  s.structurally_symmetric = struct_sym;
  s.numerically_symmetric = num_sym;
  s.has_full_diagonal = full_diag;
  s.diag_dominant_fraction =
      static_cast<double>(dominant_rows) / static_cast<double>(a.rows());
  s.positive_offdiag_fraction =
      offdiag_entries == 0
          ? 0.0
          : static_cast<double>(positive_offdiag) /
                static_cast<double>(offdiag_entries);
  if (power_iterations > 0) {
    bool positive_diag = true;
    for (value_t d : a.diagonal()) {
      if (d <= 0.0) positive_diag = false;
    }
    if (positive_diag) {
      auto scaled = symmetric_unit_diagonal_scale(a);
      s.scaled_lambda_max = lambda_max_estimate(scaled.a, power_iterations);
    } else {
      s.scaled_lambda_max = std::numeric_limits<double>::quiet_NaN();
    }
  }
  return s;
}

void print_matrix_stats(std::ostream& os, const MatrixStats& s) {
  os << "rows:                   " << s.rows << "\n"
     << "nonzeros:               " << s.nnz << "\n"
     << "nnz/row (min/mean/max): " << s.nnz_per_row_min << " / "
     << s.nnz_per_row_mean << " / " << s.nnz_per_row_max << "\n"
     << "bandwidth:              " << s.bandwidth << "\n"
     << "symmetric:              "
     << (s.numerically_symmetric
             ? "yes"
             : (s.structurally_symmetric ? "structurally only" : "no"))
     << "\n"
     << "full diagonal:          " << (s.has_full_diagonal ? "yes" : "no")
     << "\n"
     << "diag-dominant rows:     " << s.diag_dominant_fraction * 100.0
     << "%\n"
     << "positive off-diagonals: " << s.positive_offdiag_fraction * 100.0
     << "%\n";
  if (s.scaled_lambda_max != 0.0) {
    os << "scaled lambda_max:      " << s.scaled_lambda_max
       << (s.scaled_lambda_max >= 2.0 ? "  (point Jacobi diverges)"
                                      : "  (point Jacobi converges)")
       << "\n";
  }
}

}  // namespace dsouth::sparse
