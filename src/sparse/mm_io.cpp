#include "sparse/mm_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "sparse/coo.hpp"
#include "util/error.hpp"

namespace dsouth::sparse {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

CsrMatrix read_matrix_market(std::istream& in) {
  std::string line;
  DSOUTH_CHECK_MSG(std::getline(in, line), "empty Matrix Market stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  DSOUTH_CHECK_MSG(banner == "%%MatrixMarket", "bad banner '" << banner << "'");
  DSOUTH_CHECK_MSG(lower(object) == "matrix", "unsupported object " << object);
  DSOUTH_CHECK_MSG(lower(format) == "coordinate",
                   "only coordinate format supported, got " << format);
  field = lower(field);
  symmetry = lower(symmetry);
  DSOUTH_CHECK_MSG(field == "real" || field == "integer" || field == "pattern",
                   "unsupported field " << field);
  DSOUTH_CHECK_MSG(symmetry == "general" || symmetry == "symmetric",
                   "unsupported symmetry " << symmetry);

  // Skip comments / blank lines to the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  index_t rows = 0, cols = 0;
  long long entries = 0;
  size_line >> rows >> cols >> entries;
  DSOUTH_CHECK_MSG(rows > 0 && cols > 0 && entries >= 0,
                   "bad size line '" << line << "'");

  CooBuilder coo(rows, cols);
  const bool sym = (symmetry == "symmetric");
  for (long long e = 0; e < entries; ++e) {
    DSOUTH_CHECK_MSG(std::getline(in, line),
                     "unexpected EOF at entry " << e << " of " << entries);
    if (line.empty()) {
      --e;
      continue;
    }
    std::istringstream entry(line);
    index_t i = 0, j = 0;
    value_t v = 1.0;
    entry >> i >> j;
    if (field != "pattern") entry >> v;
    DSOUTH_CHECK_MSG(!entry.fail(), "bad entry line '" << line << "'");
    // Matrix Market is 1-based.
    if (sym) {
      coo.add_sym(i - 1, j - 1, v);
    } else {
      coo.add(i - 1, j - 1, v);
    }
  }
  return coo.to_csr();
}

CsrMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  DSOUTH_CHECK_MSG(in.good(), "cannot open '" << path << "'");
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const CsrMatrix& a,
                         bool symmetric) {
  if (symmetric) DSOUTH_CHECK_MSG(a.is_symmetric(0.0), "matrix not symmetric");
  out << "%%MatrixMarket matrix coordinate real "
      << (symmetric ? "symmetric" : "general") << "\n";
  // Count emitted entries first (lower triangle only when symmetric).
  long long count = 0;
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j : a.row_cols(i)) {
      if (!symmetric || j <= i) ++count;
    }
  }
  out << a.rows() << " " << a.cols() << " " << count << "\n";
  out.precision(17);
  for (index_t i = 0; i < a.rows(); ++i) {
    auto cols = a.row_cols(i);
    auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (symmetric && cols[k] > i) continue;
      out << (i + 1) << " " << (cols[k] + 1) << " " << vals[k] << "\n";
    }
  }
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& a,
                              bool symmetric) {
  std::ofstream out(path);
  DSOUTH_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  write_matrix_market(out, a, symmetric);
}

}  // namespace dsouth::sparse
