#include "sparse/mesh.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsouth::sparse {

index_t TriMesh::num_interior() const {
  index_t count = 0;
  for (bool b : on_boundary) {
    if (!b) ++count;
  }
  return count;
}

double TriMesh::signed_area(index_t t) const {
  const auto& tri = tris[static_cast<std::size_t>(t)];
  const double x0 = vx[tri[0]], y0 = vy[tri[0]];
  const double x1 = vx[tri[1]], y1 = vy[tri[1]];
  const double x2 = vx[tri[2]], y2 = vy[tri[2]];
  return 0.5 * ((x1 - x0) * (y2 - y0) - (x2 - x0) * (y1 - y0));
}

bool TriMesh::is_valid() const {
  if (vx.size() != vy.size()) return false;
  if (on_boundary.size() != vx.size()) return false;
  for (index_t t = 0; t < num_triangles(); ++t) {
    for (index_t v : tris[static_cast<std::size_t>(t)]) {
      if (v < 0 || v >= num_vertices()) return false;
    }
    if (signed_area(t) <= 0.0) return false;
  }
  return true;
}

TriMesh make_perturbed_grid_mesh(index_t nvx, index_t nvy, double perturb,
                                 std::uint64_t seed) {
  DSOUTH_CHECK(nvx >= 2 && nvy >= 2);
  DSOUTH_CHECK(perturb >= 0.0 && perturb < 0.45);
  util::Rng rng(seed);
  TriMesh mesh;
  mesh.nvx = nvx;
  mesh.nvy = nvy;
  const auto nv = static_cast<std::size_t>(nvx) * static_cast<std::size_t>(nvy);
  mesh.vx.resize(nv);
  mesh.vy.resize(nv);
  mesh.on_boundary.resize(nv);
  const double hx = 1.0 / static_cast<double>(nvx - 1);
  const double hy = 1.0 / static_cast<double>(nvy - 1);
  auto id = [&](index_t i, index_t j) { return j * nvx + i; };
  for (index_t j = 0; j < nvy; ++j) {
    for (index_t i = 0; i < nvx; ++i) {
      const auto v = static_cast<std::size_t>(id(i, j));
      const bool boundary = (i == 0 || i == nvx - 1 || j == 0 || j == nvy - 1);
      double px = 0.0, py = 0.0;
      if (!boundary) {
        px = rng.uniform(-perturb, perturb) * hx;
        py = rng.uniform(-perturb, perturb) * hy;
      }
      mesh.vx[v] = static_cast<double>(i) * hx + px;
      mesh.vy[v] = static_cast<double>(j) * hy + py;
      mesh.on_boundary[v] = boundary;
    }
  }
  mesh.tris.reserve(static_cast<std::size_t>(2 * (nvx - 1) * (nvy - 1)));
  for (index_t j = 0; j + 1 < nvy; ++j) {
    for (index_t i = 0; i + 1 < nvx; ++i) {
      const index_t v00 = id(i, j), v10 = id(i + 1, j);
      const index_t v01 = id(i, j + 1), v11 = id(i + 1, j + 1);
      if ((i + j) % 2 == 0) {
        mesh.tris.push_back({v00, v10, v11});
        mesh.tris.push_back({v00, v11, v01});
      } else {
        mesh.tris.push_back({v00, v10, v01});
        mesh.tris.push_back({v10, v11, v01});
      }
    }
  }
  DSOUTH_CHECK_MSG(mesh.is_valid(),
                   "perturbation produced an inverted element; lower perturb");
  return mesh;
}

}  // namespace dsouth::sparse
