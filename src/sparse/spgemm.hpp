#pragma once

/// \file spgemm.hpp
/// Sparse matrix–matrix products. Needed by the algebraic-multigrid
/// hierarchy (Galerkin coarse operators A_c = Pᵀ A P) and useful on its
/// own. Row-merge algorithm with a dense accumulator sized to the result's
/// column count — the standard Gustavson scheme.

#include "sparse/csr.hpp"

namespace dsouth::sparse {

/// C = A · B (dimensions must agree). Result rows have sorted columns;
/// exact zeros produced by cancellation are kept (structural product).
CsrMatrix spgemm(const CsrMatrix& a, const CsrMatrix& b);

/// Galerkin triple product Pᵀ A P for a square A and a tall prolongator P
/// (rows(P) == rows(A)). Computed as spgemm(spgemm(Pᵀ, A), P).
CsrMatrix galerkin_product(const CsrMatrix& a, const CsrMatrix& p);

}  // namespace dsouth::sparse
