#include "sparse/coo.hpp"

#include <algorithm>
#include <numeric>

#include "sparse/csr.hpp"
#include "util/error.hpp"

namespace dsouth::sparse {

CooBuilder::CooBuilder(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
  DSOUTH_CHECK(rows >= 0 && cols >= 0);
}

void CooBuilder::add(index_t i, index_t j, value_t v) {
  DSOUTH_CHECK_MSG(i >= 0 && i < rows_ && j >= 0 && j < cols_,
                   "entry (" << i << "," << j << ") out of " << rows_ << "x"
                             << cols_);
  is_.push_back(i);
  js_.push_back(j);
  vs_.push_back(v);
}

void CooBuilder::add_sym(index_t i, index_t j, value_t v) {
  add(i, j, v);
  if (i != j) add(j, i, v);
}

CsrMatrix CooBuilder::to_csr(bool drop_zeros) const {
  const std::size_t m = is_.size();
  // Sort entry permutation by (row, col); stable so duplicate order is
  // deterministic (summation order affects the last ulp).
  std::vector<std::size_t> perm(m);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::stable_sort(perm.begin(), perm.end(),
                   [this](std::size_t a, std::size_t b) {
                     if (is_[a] != is_[b]) return is_[a] < is_[b];
                     return js_[a] < js_[b];
                   });

  std::vector<index_t> row_ptr(static_cast<std::size_t>(rows_) + 1, 0);
  std::vector<index_t> col_idx;
  std::vector<value_t> values;
  col_idx.reserve(m);
  values.reserve(m);

  std::size_t k = 0;
  while (k < m) {
    const index_t i = is_[perm[k]];
    const index_t j = js_[perm[k]];
    value_t sum = 0.0;
    while (k < m && is_[perm[k]] == i && js_[perm[k]] == j) {
      sum += vs_[perm[k]];
      ++k;
    }
    if (drop_zeros && sum == 0.0) continue;
    col_idx.push_back(j);
    values.push_back(sum);
    ++row_ptr[static_cast<std::size_t>(i) + 1];
  }
  for (index_t i = 0; i < rows_; ++i) {
    row_ptr[static_cast<std::size_t>(i) + 1] +=
        row_ptr[static_cast<std::size_t>(i)];
  }
  return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

}  // namespace dsouth::sparse
