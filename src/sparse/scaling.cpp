#include "sparse/scaling.hpp"

#include <cmath>

#include "sparse/vec.hpp"
#include "util/error.hpp"

namespace dsouth::sparse {

ScaledSystem symmetric_unit_diagonal_scale(const CsrMatrix& a) {
  DSOUTH_CHECK(a.rows() == a.cols());
  std::vector<value_t> d = a.diagonal();
  std::vector<value_t> inv_sqrt(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    DSOUTH_CHECK_MSG(d[i] > 0.0, "diagonal entry " << i << " = " << d[i]
                                                   << " not positive");
    inv_sqrt[i] = 1.0 / std::sqrt(d[i]);
  }
  // Copy and rescale values in place: a'_ij = a_ij * s_i * s_j.
  CsrMatrix scaled = a;
  auto vals = scaled.mutable_values();
  auto row_ptr = scaled.row_ptr();
  auto col_idx = scaled.col_idx();
  for (index_t i = 0; i < scaled.rows(); ++i) {
    for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      vals[k] *= inv_sqrt[static_cast<std::size_t>(i)] *
                 inv_sqrt[static_cast<std::size_t>(col_idx[k])];
    }
  }
  return ScaledSystem{std::move(scaled), std::move(inv_sqrt)};
}

std::vector<value_t> scale_rhs(const ScaledSystem& s,
                               std::span<const value_t> b) {
  DSOUTH_CHECK(b.size() == s.scale.size());
  std::vector<value_t> out(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) out[i] = b[i] * s.scale[i];
  return out;
}

std::vector<value_t> unscale_solution(const ScaledSystem& s,
                                      std::span<const value_t> x_scaled) {
  DSOUTH_CHECK(x_scaled.size() == s.scale.size());
  std::vector<value_t> out(x_scaled.size());
  for (std::size_t i = 0; i < x_scaled.size(); ++i) {
    out[i] = x_scaled[i] * s.scale[i];
  }
  return out;
}

value_t normalize_initial_residual(const CsrMatrix& a,
                                   std::span<const value_t> b,
                                   std::span<value_t> x) {
  DSOUTH_CHECK(x.size() == static_cast<std::size_t>(a.cols()));
  std::vector<value_t> r(static_cast<std::size_t>(a.rows()));
  a.residual(b, x, r);
  value_t rn = norm2(r);
  DSOUTH_CHECK_MSG(rn > 0.0, "initial residual is exactly zero");
  // With a zero RHS, r = -Ax, so dividing x by ||r|| makes ||r|| = 1.
  // (Only the b == 0 case is supported for in-place x normalization; the
  // paper scales whichever of x/b is random while the other is zero.)
  bool b_zero = true;
  for (value_t v : b) {
    if (v != 0.0) {
      b_zero = false;
      break;
    }
  }
  DSOUTH_CHECK_MSG(b_zero,
                   "normalize_initial_residual requires b == 0; scale b "
                   "instead for the x == 0 case");
  scale(1.0 / rn, x);
  return rn;
}

}  // namespace dsouth::sparse
