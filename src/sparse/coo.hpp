#pragma once

/// \file coo.hpp
/// Coordinate-format (triplet) builder. All assemblers (stencils, FEM) and
/// the Matrix Market reader accumulate entries here, then convert to CSR.

#include <vector>

#include "sparse/types.hpp"

namespace dsouth::sparse {

class CsrMatrix;  // csr.hpp

/// Triplet accumulator. Duplicate (i, j) entries are summed on conversion
/// (the natural semantics for finite-element assembly).
class CooBuilder {
 public:
  CooBuilder(index_t rows, index_t cols);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  std::size_t entry_count() const { return is_.size(); }

  /// Append one entry; bounds-checked.
  void add(index_t i, index_t j, value_t v);

  /// Append both (i, j, v) and (j, i, v); for building symmetric matrices
  /// from a lower/upper-triangle description. Diagonal entries are added
  /// once.
  void add_sym(index_t i, index_t j, value_t v);

  /// Convert to CSR: sorts by (row, col), sums duplicates, drops explicit
  /// zeros produced by cancellation only if `drop_zeros` is set.
  CsrMatrix to_csr(bool drop_zeros = false) const;

 private:
  index_t rows_, cols_;
  std::vector<index_t> is_, js_;
  std::vector<value_t> vs_;
};

}  // namespace dsouth::sparse
