#pragma once

/// \file vec.hpp
/// Dense vector kernels used throughout the solvers. Free functions over
/// std::span so they compose with any contiguous storage.

#include <span>
#include <vector>

#include "sparse/types.hpp"

namespace dsouth::sparse {

/// Euclidean dot product.
value_t dot(std::span<const value_t> x, std::span<const value_t> y);

/// 2-norm.
value_t norm2(std::span<const value_t> x);

/// Squared 2-norm (no sqrt; the distributed solvers track squared norms).
value_t norm2_sq(std::span<const value_t> x);

/// Max-norm.
value_t norm_inf(std::span<const value_t> x);

/// y += alpha * x.
void axpy(value_t alpha, std::span<const value_t> x, std::span<value_t> y);

/// x *= alpha.
void scale(value_t alpha, std::span<value_t> x);

/// z = x - y.
void subtract(std::span<const value_t> x, std::span<const value_t> y,
              std::span<value_t> z);

/// Fill with a constant.
void fill(std::span<value_t> x, value_t v);

/// Index of the entry with the largest magnitude (first on ties);
/// -1 for an empty span.
index_t argmax_abs(std::span<const value_t> x);

/// Convenience allocating wrappers used by tests and examples.
std::vector<value_t> zeros(index_t n);
std::vector<value_t> ones(index_t n);

}  // namespace dsouth::sparse
