#include "sparse/vec.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dsouth::sparse {

value_t dot(std::span<const value_t> x, std::span<const value_t> y) {
  DSOUTH_CHECK(x.size() == y.size());
  value_t sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

value_t norm2(std::span<const value_t> x) { return std::sqrt(norm2_sq(x)); }

value_t norm2_sq(std::span<const value_t> x) {
  value_t sum = 0.0;
  for (value_t v : x) sum += v * v;
  return sum;
}

value_t norm_inf(std::span<const value_t> x) {
  value_t m = 0.0;
  for (value_t v : x) m = std::max(m, std::abs(v));
  return m;
}

void axpy(value_t alpha, std::span<const value_t> x, std::span<value_t> y) {
  DSOUTH_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(value_t alpha, std::span<value_t> x) {
  for (value_t& v : x) v *= alpha;
}

void subtract(std::span<const value_t> x, std::span<const value_t> y,
              std::span<value_t> z) {
  DSOUTH_CHECK(x.size() == y.size() && x.size() == z.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] - y[i];
}

void fill(std::span<value_t> x, value_t v) {
  for (value_t& e : x) e = v;
}

index_t argmax_abs(std::span<const value_t> x) {
  if (x.empty()) return -1;
  index_t best = 0;
  value_t best_abs = std::abs(x[0]);
  for (std::size_t i = 1; i < x.size(); ++i) {
    value_t a = std::abs(x[i]);
    if (a > best_abs) {
      best_abs = a;
      best = static_cast<index_t>(i);
    }
  }
  return best;
}

std::vector<value_t> zeros(index_t n) {
  return std::vector<value_t>(static_cast<std::size_t>(n), 0.0);
}

std::vector<value_t> ones(index_t n) {
  return std::vector<value_t>(static_cast<std::size_t>(n), 1.0);
}

}  // namespace dsouth::sparse
