#include "sparse/spgemm.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dsouth::sparse {

CsrMatrix spgemm(const CsrMatrix& a, const CsrMatrix& b) {
  DSOUTH_CHECK_MSG(a.cols() == b.rows(), "spgemm dimension mismatch: "
                                             << a.rows() << "x" << a.cols()
                                             << " * " << b.rows() << "x"
                                             << b.cols());
  const index_t m = a.rows(), n = b.cols();
  std::vector<index_t> row_ptr(static_cast<std::size_t>(m) + 1, 0);
  std::vector<index_t> col_idx;
  std::vector<value_t> values;
  // Gustavson: per output row, accumulate into a dense workspace with a
  // touched-column list (cleared per row, so total work is O(flops)).
  std::vector<value_t> acc(static_cast<std::size_t>(n), 0.0);
  std::vector<char> touched(static_cast<std::size_t>(n), 0);
  std::vector<index_t> cols_in_row;
  for (index_t i = 0; i < m; ++i) {
    cols_in_row.clear();
    auto a_cols = a.row_cols(i);
    auto a_vals = a.row_vals(i);
    for (std::size_t ka = 0; ka < a_cols.size(); ++ka) {
      const index_t k = a_cols[ka];
      const value_t av = a_vals[ka];
      auto b_cols = b.row_cols(k);
      auto b_vals = b.row_vals(k);
      for (std::size_t kb = 0; kb < b_cols.size(); ++kb) {
        const auto j = static_cast<std::size_t>(b_cols[kb]);
        if (!touched[j]) {
          touched[j] = 1;
          cols_in_row.push_back(b_cols[kb]);
        }
        acc[j] += av * b_vals[kb];
      }
    }
    std::sort(cols_in_row.begin(), cols_in_row.end());
    for (index_t j : cols_in_row) {
      col_idx.push_back(j);
      values.push_back(acc[static_cast<std::size_t>(j)]);
      acc[static_cast<std::size_t>(j)] = 0.0;
      touched[static_cast<std::size_t>(j)] = 0;
    }
    row_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<index_t>(col_idx.size());
  }
  return CsrMatrix(m, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix galerkin_product(const CsrMatrix& a, const CsrMatrix& p) {
  DSOUTH_CHECK(a.rows() == a.cols());
  DSOUTH_CHECK(p.rows() == a.rows());
  CsrMatrix pt = p.transpose();
  return spgemm(spgemm(pt, a), p);
}

}  // namespace dsouth::sparse
