#pragma once

/// \file proxy_suite.hpp
/// The 14-matrix proxy suite standing in for the paper's SuiteSparse test
/// set (Table 1), plus the small FEM problem of Figures 2/5. See DESIGN.md
/// §5 for the per-matrix flavor mapping and the rationale.
///
/// Every proxy is symmetric positive definite and is returned already
/// symmetrically scaled to unit diagonal, exactly as the paper preprocesses
/// its matrices (§4.2). Row counts are the paper's scaled by ~1/16 so the
/// full evaluation runs on one core; `size_factor` rescales further
/// (tests use ~0.01-0.05 for sub-second suites).

#include <string>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/mesh.hpp"
#include "sparse/types.hpp"

namespace dsouth::sparse {

/// Metadata describing one proxy matrix.
struct ProxyInfo {
  std::string name;          ///< proxy name, e.g. "Flan_1565p"
  std::string paper_matrix;  ///< SuiteSparse matrix it stands in for
  std::string kind;          ///< generator flavor, e.g. "poisson3d_27pt"
  index_t rows = 0;
  index_t nnz = 0;
};

/// A generated proxy: metadata plus the scaled matrix.
struct ProxyMatrix {
  ProxyInfo info;
  CsrMatrix a;  ///< SPD, unit diagonal
};

/// The 14 proxy names, in the paper's Table 1 order.
const std::vector<std::string>& proxy_names();

/// True if `name` is one of the 14 proxies.
bool is_proxy_name(const std::string& name);

/// Build a proxy by name. `size_factor` scales the number of rows
/// (approximately; linear dimensions are rounded). Throws CheckError for
/// unknown names or degenerate sizes.
ProxyMatrix make_proxy(const std::string& name, double size_factor = 1.0);

/// Seeded tenant variant of a proxy matrix, for batched multi-tenant
/// serving (dist/batch.hpp, bench/throughput): SAME sparsity pattern —
/// tenant layouts built from one partition share the communication
/// structure bit-for-bit — with every symmetric off-diagonal pair scaled
/// by a deterministic per-pair factor in (1 - magnitude, 1], drawn
/// statelessly from `seed` (different seeds = different tenants). The
/// unit diagonal is untouched and off-diagonal magnitudes only shrink, so
/// the variant keeps the base's symmetry, diagonal dominance, and
/// positive definiteness. `magnitude` must lie in (0, 1).
CsrMatrix make_tenant_variant(const CsrMatrix& base, std::uint64_t seed,
                              double magnitude = 0.25);

/// The small irregular-FEM Poisson problem of Figures 2 and 5:
/// P1 elements on a perturbed 81×41-vertex triangulation of the square,
/// 79×39 = 3081 interior unknowns (the paper's example has 3081 rows),
/// symmetrically scaled to unit diagonal. The mesh is returned too so
/// examples can visualize selections on it.
struct SmallFemProblem {
  TriMesh mesh;
  CsrMatrix a;  ///< 3081 × 3081, SPD, unit diagonal
};
SmallFemProblem make_small_fem_problem();

}  // namespace dsouth::sparse
