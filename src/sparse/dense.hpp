#pragma once

/// \file dense.hpp
/// Small dense matrices and a Cholesky factorization. Used for the exact
/// coarse-grid solve in the multigrid hierarchy (the paper solves the 3x3
/// coarsest grid exactly) and as a reference solver in tests.

#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace dsouth::sparse {

/// Row-major dense matrix.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(index_t rows, index_t cols);

  static DenseMatrix from_csr(const CsrMatrix& a);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }

  value_t& operator()(index_t i, index_t j);
  value_t operator()(index_t i, index_t j) const;

  void matvec(std::span<const value_t> x, std::span<value_t> y) const;

 private:
  index_t rows_ = 0, cols_ = 0;
  std::vector<value_t> data_;
};

/// Cholesky factorization A = L Lᵀ of an SPD matrix; throws CheckError if a
/// non-positive pivot is encountered (matrix not SPD to working precision).
class DenseCholesky {
 public:
  explicit DenseCholesky(const DenseMatrix& a);
  explicit DenseCholesky(const CsrMatrix& a);

  index_t order() const { return l_.rows(); }

  /// Solve A x = b.
  void solve(std::span<const value_t> b, std::span<value_t> x) const;

  /// log-determinant of A (sum of 2*log(l_ii)); handy for SPD sanity tests.
  value_t log_det() const;

 private:
  void factor(const DenseMatrix& a);
  DenseMatrix l_;
};

}  // namespace dsouth::sparse
