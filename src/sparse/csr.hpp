#pragma once

/// \file csr.hpp
/// Compressed sparse row matrix: the workhorse storage for every solver in
/// the library. Immutable-by-convention after construction (values may be
/// rescaled in place via friend utilities in scaling.cpp).

#include <span>
#include <vector>

#include "sparse/types.hpp"

namespace dsouth::sparse {

/// CSR sparse matrix. Column indices within each row are sorted ascending
/// (guaranteed by CooBuilder::to_csr and validated by `validate()`).
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Takes ownership of raw CSR arrays. row_ptr.size() == rows + 1.
  CsrMatrix(index_t rows, index_t cols, std::vector<index_t> row_ptr,
            std::vector<index_t> col_idx, std::vector<value_t> values);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return static_cast<index_t>(col_idx_.size()); }

  std::span<const index_t> row_ptr() const { return row_ptr_; }
  std::span<const index_t> col_idx() const { return col_idx_; }
  std::span<const value_t> values() const { return values_; }

  /// Column indices / values of row i.
  std::span<const index_t> row_cols(index_t i) const;
  std::span<const value_t> row_vals(index_t i) const;
  index_t row_nnz(index_t i) const;

  /// Value at (i, j), 0 if not stored. O(log row_nnz) binary search.
  value_t at(index_t i, index_t j) const;

  /// Diagonal entries (0 where absent).
  std::vector<value_t> diagonal() const;

  /// y = A x.
  void spmv(std::span<const value_t> x, std::span<value_t> y) const;

  /// y += alpha * A x.
  void spmv_acc(value_t alpha, std::span<const value_t> x,
                std::span<value_t> y) const;

  /// r = b - A x.
  void residual(std::span<const value_t> b, std::span<const value_t> x,
                std::span<value_t> r) const;

  /// Explicit transpose (O(nnz)).
  CsrMatrix transpose() const;

  /// Structural + numerical symmetry check: |a_ij - a_ji| <= tol for all
  /// stored entries (entries missing on one side compare against 0).
  bool is_symmetric(value_t tol = 0.0) const;

  /// True if every diagonal entry is stored and nonzero.
  bool has_full_diagonal() const;

  /// Submatrix A(rows_sel, cols_sel) where col_map[j] gives the new column
  /// index of global column j, or -1 if the column is dropped. Used by the
  /// distributed layout to cut subdomain diagonal and off-diagonal blocks.
  CsrMatrix extract(std::span<const index_t> rows_sel,
                    std::span<const index_t> col_map, index_t new_cols) const;

  /// Internal consistency check (sorted columns, in-range indices,
  /// monotone row_ptr). Used by tests and after deserialization.
  bool validate() const;

  /// Mutable access for in-place rescaling (scaling.cpp) — deliberately
  /// narrow: structure cannot be changed, only values.
  std::span<value_t> mutable_values() { return values_; }

 private:
  index_t rows_ = 0, cols_ = 0;
  std::vector<index_t> row_ptr_;
  std::vector<index_t> col_idx_;
  std::vector<value_t> values_;
};

}  // namespace dsouth::sparse
