#pragma once

/// \file stats.hpp
/// Matrix diagnostics: the quick numbers one wants before throwing a
/// matrix at an iterative method (the artifact's setup phase printed
/// similar statistics). Used by the examples and the dmem_southwell
/// driver; cheap (one or two passes over the nonzeros, plus an optional
/// power iteration).

#include <ostream>
#include <string>

#include "sparse/csr.hpp"

namespace dsouth::sparse {

struct MatrixStats {
  index_t rows = 0;
  index_t nnz = 0;
  double nnz_per_row_mean = 0.0;
  index_t nnz_per_row_min = 0;
  index_t nnz_per_row_max = 0;
  index_t bandwidth = 0;       ///< max |i - j| over stored entries
  bool structurally_symmetric = false;
  bool numerically_symmetric = false;  ///< |a_ij - a_ji| <= 1e-12
  bool has_full_diagonal = false;
  /// Fraction of rows with |a_ii| >= Σ_{j≠i} |a_ij| (diagonal dominance).
  double diag_dominant_fraction = 0.0;
  /// Fraction of off-diagonal entries that are positive — > 0 flags a
  /// non-M-matrix (where small-block Jacobi may diverge; DESIGN.md §5).
  double positive_offdiag_fraction = 0.0;
  /// λ_max estimate of the unit-diagonal-scaled matrix (power iteration);
  /// ≥ 2 means point Jacobi diverges. NaN if the diagonal is not positive.
  double scaled_lambda_max = 0.0;
};

/// Compute the statistics. `power_iterations` controls the λ_max estimate
/// accuracy (0 skips it, leaving scaled_lambda_max = 0).
MatrixStats compute_matrix_stats(const CsrMatrix& a,
                                 int power_iterations = 60);

/// Human-readable one-stat-per-line dump.
void print_matrix_stats(std::ostream& os, const MatrixStats& stats);

}  // namespace dsouth::sparse
