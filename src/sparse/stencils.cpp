#include "sparse/stencils.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/vec.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsouth::sparse {

namespace {

/// Checkerboard coefficient for a cell (3-D; use iz = 0 for 2-D).
double cell_coeff(const StencilOptions& opt, index_t ix, index_t iy,
                  index_t iz) {
  if (opt.jump_contrast == 1.0) return 1.0;
  DSOUTH_CHECK(opt.jump_block > 0);
  index_t parity = (ix / opt.jump_block) + (iy / opt.jump_block) +
                   (iz / opt.jump_block);
  return (parity % 2 == 0) ? 1.0 : opt.jump_contrast;
}

double harmonic(double a, double b) { return 2.0 * a * b / (a + b); }

/// Generic dim-agnostic assembler: `neighbors` enumerates the stencil
/// offsets of the "upper" half (each edge assembled once, mirrored).
struct Offset3 {
  index_t dx, dy, dz;
};

CsrMatrix assemble(index_t nx, index_t ny, index_t nz,
                   const std::vector<Offset3>& half_stencil,
                   const StencilOptions& opt) {
  DSOUTH_CHECK(nx > 0 && ny > 0 && nz > 0);
  DSOUTH_CHECK(opt.offdiag_boost > 0.0);
  const index_t n = nx * ny * nz;
  auto id = [&](index_t ix, index_t iy, index_t iz) {
    return (iz * ny + iy) * nx + ix;
  };
  CooBuilder coo(n, n);
  std::vector<double> diag(static_cast<std::size_t>(n), opt.diag_shift);
  for (index_t iz = 0; iz < nz; ++iz) {
    for (index_t iy = 0; iy < ny; ++iy) {
      for (index_t ix = 0; ix < nx; ++ix) {
        const index_t a = id(ix, iy, iz);
        const double ka = cell_coeff(opt, ix, iy, iz);
        for (const auto& off : half_stencil) {
          const index_t jx = ix + off.dx, jy = iy + off.dy, jz = iz + off.dz;
          // Dirichlet: off-grid neighbors contribute only to the diagonal.
          double aniso = 1.0;
          if (off.dy != 0) aniso *= opt.eps_y;
          if (off.dz != 0) aniso *= opt.eps_z;
          if (jx < 0 || jx >= nx || jy < 0 || jy >= ny || jz < 0 || jz >= nz) {
            // Boundary edge: couples to the Dirichlet boundary; weight uses
            // the cell's own coefficient.
            diag[static_cast<std::size_t>(a)] += ka * aniso;
            continue;
          }
          const index_t b = id(jx, jy, jz);
          const double w = harmonic(ka, cell_coeff(opt, jx, jy, jz)) * aniso;
          coo.add_sym(a, b, -w * opt.offdiag_boost);
          diag[static_cast<std::size_t>(a)] += w;
          diag[static_cast<std::size_t>(b)] += w;
        }
        // "Lower" half of the boundary edges (the mirrored offsets that fall
        // off the grid also contribute to the diagonal under Dirichlet).
        for (const auto& off : half_stencil) {
          const index_t jx = ix - off.dx, jy = iy - off.dy, jz = iz - off.dz;
          if (jx < 0 || jx >= nx || jy < 0 || jy >= ny || jz < 0 || jz >= nz) {
            double aniso = 1.0;
            if (off.dy != 0) aniso *= opt.eps_y;
            if (off.dz != 0) aniso *= opt.eps_z;
            diag[static_cast<std::size_t>(a)] += ka * aniso;
          }
        }
      }
    }
  }
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, diag[static_cast<std::size_t>(i)]);
  }
  return coo.to_csr();
}

}  // namespace

CsrMatrix poisson2d_5pt(index_t nx, index_t ny, const StencilOptions& opt) {
  return assemble(nx, ny, 1, {{1, 0, 0}, {0, 1, 0}}, opt);
}

CsrMatrix poisson2d_9pt(index_t nx, index_t ny, const StencilOptions& opt) {
  return assemble(nx, ny, 1, {{1, 0, 0}, {0, 1, 0}, {1, 1, 0}, {-1, 1, 0}},
                  opt);
}

CsrMatrix poisson3d_7pt(index_t nx, index_t ny, index_t nz,
                        const StencilOptions& opt) {
  return assemble(nx, ny, nz, {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}, opt);
}

CsrMatrix poisson3d_27pt(index_t nx, index_t ny, index_t nz,
                         const StencilOptions& opt) {
  // Upper half of the 26-neighbor stencil: 13 offsets.
  std::vector<Offset3> half;
  for (index_t dz = -1; dz <= 1; ++dz) {
    for (index_t dy = -1; dy <= 1; ++dy) {
      for (index_t dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        // Keep one representative of each {o, -o} pair.
        if (dz > 0 || (dz == 0 && (dy > 0 || (dy == 0 && dx > 0)))) {
          half.push_back({dx, dy, dz});
        }
      }
    }
  }
  DSOUTH_CHECK(half.size() == 13);
  return assemble(nx, ny, nz, half, opt);
}

CsrMatrix random_spd(index_t n, index_t nnz_per_row, double dominance,
                     std::uint64_t seed) {
  DSOUTH_CHECK(n > 0 && nnz_per_row > 0 && nnz_per_row < n);
  DSOUTH_CHECK(dominance >= 1.0);
  util::Rng rng(seed);
  // Build an undirected random graph with ~nnz_per_row/2 edges added per
  // vertex (each edge contributes to two rows).
  std::set<std::pair<index_t, index_t>> edges;
  const index_t edges_per_vertex = std::max<index_t>(1, nnz_per_row / 2);
  for (index_t i = 0; i < n; ++i) {
    for (index_t e = 0; e < edges_per_vertex; ++e) {
      index_t j = static_cast<index_t>(rng.next_below(
          static_cast<std::uint64_t>(n)));
      if (j == i) continue;
      edges.insert({std::min(i, j), std::max(i, j)});
    }
  }
  CooBuilder coo(n, n);
  std::vector<double> row_abs(static_cast<std::size_t>(n), 0.0);
  for (const auto& [i, j] : edges) {
    double v = -rng.uniform(0.1, 1.0);
    coo.add_sym(i, j, v);
    row_abs[static_cast<std::size_t>(i)] += std::abs(v);
    row_abs[static_cast<std::size_t>(j)] += std::abs(v);
  }
  for (index_t i = 0; i < n; ++i) {
    // Isolated vertices still get a positive diagonal.
    coo.add(i, i, dominance * row_abs[static_cast<std::size_t>(i)] + 0.01);
  }
  return coo.to_csr();
}

value_t lambda_max_estimate(const CsrMatrix& a, int iterations,
                            std::uint64_t seed) {
  DSOUTH_CHECK(a.rows() == a.cols());
  DSOUTH_CHECK(a.rows() > 0);
  util::Rng rng(seed);
  std::vector<value_t> v(static_cast<std::size_t>(a.rows()));
  rng.fill_uniform(v, -1.0, 1.0);
  std::vector<value_t> w(v.size());
  value_t lambda = 0.0;
  for (int it = 0; it < iterations; ++it) {
    value_t nv = norm2(v);
    DSOUTH_CHECK(nv > 0.0);
    scale(1.0 / nv, v);
    a.spmv(v, w);
    lambda = dot(v, w);
    std::swap(v, w);
  }
  return lambda;
}

}  // namespace dsouth::sparse
