#include "sparse/proxy_suite.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>

#include "sparse/fem.hpp"
#include "sparse/mesh3d.hpp"
#include "sparse/scaling.hpp"
#include "sparse/stencils.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsouth::sparse {

namespace {

/// Deterministic seed namespace for proxy mesh jitter.
constexpr std::uint64_t kProxySeedBase = 0x50524f5859ULL;  // "PROXY"

index_t scaled_dim(index_t base, double size_factor, double dim_exponent) {
  DSOUTH_CHECK(size_factor > 0.0);
  const double scaled =
      static_cast<double>(base) * std::pow(size_factor, dim_exponent);
  return std::max<index_t>(4, static_cast<index_t>(std::llround(scaled)));
}

struct ProxyRecipe {
  std::string paper_matrix;
  std::string kind;
  std::function<CsrMatrix(double)> build;  // size_factor -> raw SPD matrix
};

/// 2-D plane-strain elasticity on a perturbed triangulation. The ν and
/// modulus-jump parameters are tuned (DESIGN.md §5) so Block Jacobi at
/// P = 8192 simulated ranks behaves like it does on the corresponding
/// paper matrix: ν ≈ 0.47+ (or strong modulus jumps) make small-block
/// Jacobi diverge; ν just below the threshold gives the paper's
/// "reaches 0.1 then degrades" pattern.
CsrMatrix fem2d(index_t nvx, index_t nvy, double nu, double jump_contrast,
                int jump_blocks, std::uint64_t seed, double size_factor) {
  const index_t dx = scaled_dim(nvx, size_factor, 0.5);
  const index_t dy = scaled_dim(nvy, size_factor, 0.5);
  TriMesh mesh = make_perturbed_grid_mesh(dx, dy, 0.2, seed);
  ElasticityOptions opt;
  opt.poisson_ratio = nu;
  opt.jump_contrast = jump_contrast;
  opt.jump_blocks = jump_blocks;
  return assemble_p1_elasticity(mesh, opt);
}

/// 3-D isotropic elasticity on a perturbed tetrahedralized box (~42
/// nnz/row): the hardest problems in the suite — Parallel Southwell
/// cannot reach the Table-2 target within 50 steps on these, exactly like
/// the paper's Emilia_923 and Fault_639 rows.
CsrMatrix fem3d(index_t nvx, index_t nvy, index_t nvz, double nu,
                std::uint64_t seed, double size_factor) {
  const index_t dx = scaled_dim(nvx, size_factor, 1.0 / 3.0);
  const index_t dy = scaled_dim(nvy, size_factor, 1.0 / 3.0);
  const index_t dz = scaled_dim(nvz, size_factor, 1.0 / 3.0);
  TetMesh mesh = make_perturbed_box_mesh(dx, dy, dz, 0.15, seed);
  ElasticityOptions opt;
  opt.poisson_ratio = nu;
  return assemble_p1_elasticity_3d(mesh, opt);
}

const std::map<std::string, ProxyRecipe>& recipes() {
  static const std::map<std::string, ProxyRecipe> table = [] {
    std::map<std::string, ProxyRecipe> t;
    t["Flan_1565p"] = {"Flan_1565", "fem3d_elasticity_slab", [](double f) {
                         return fem3d(60, 60, 12, 0.40, 999, f);
                       }};
    t["audikw_1p"] = {"audikw_1", "fem2d_elasticity", [](double f) {
                        return fem2d(174, 174, 0.48, 1.0, 4, 777, f);
                      }};
    t["Serenap"] = {"Serena", "fem2d_elasticity_jump", [](double f) {
                      return fem2d(208, 208, 0.42, 1.0e3, 8, 777, f);
                    }};
    t["Geo_1438p"] = {"Geo_1438", "fem2d_elasticity", [](double f) {
                        return fem2d(210, 210, 0.465, 1.0, 4, 777, f);
                      }};
    t["Hook_1498p"] = {"Hook_1498", "fem2d_elasticity", [](double f) {
                         return fem2d(225, 225, 0.48, 1.0, 4, 4242, f);
                       }};
    t["bone010p"] = {"bone010", "fem2d_elasticity_jump", [](double f) {
                       return fem2d(178, 178, 0.46, 50.0, 6, 777, f);
                     }};
    t["ldoorp"] = {"ldoor", "fem2d_elasticity", [](double f) {
                     return fem2d(171, 171, 0.48, 1.0, 4, 778, f);
                   }};
    t["boneS10p"] = {"boneS10", "fem2d_elasticity_jump", [](double f) {
                       return fem2d(174, 174, 0.44, 100.0, 5, 779, f);
                     }};
    t["Emilia_923p"] = {"Emilia_923", "fem3d_elasticity", [](double f) {
                          return fem3d(29, 29, 29, 0.40, 999, f);
                        }};
    t["inline_1p"] = {"inline_1", "fem2d_elasticity", [](double f) {
                        return fem2d(130, 130, 0.48, 1.0, 4, 780, f);
                      }};
    t["Fault_639p"] = {"Fault_639", "fem3d_elasticity", [](double f) {
                         return fem3d(29, 29, 29, 0.42, 555, f);
                       }};
    t["StocF-1465p"] = {"StocF-1465", "fem2d_elasticity_jump", [](double f) {
                          return fem2d(215, 215, 0.42, 1.0e3, 10, 781, f);
                        }};
    t["msdoorp"] = {"msdoor", "fem2d_elasticity", [](double f) {
                      return fem2d(113, 113, 0.47, 1.0, 4, 782, f);
                    }};
    t["af_5_k101p"] = {"af_5_k101", "poisson2d_9pt", [](double f) {
                         index_t d = scaled_dim(177, f, 0.5);
                         return poisson2d_9pt(d, d);
                       }};
    return t;
  }();
  return table;
}

}  // namespace

const std::vector<std::string>& proxy_names() {
  // Table 1 order in the paper.
  static const std::vector<std::string> names = {
      "Flan_1565p", "audikw_1p", "Serenap",     "Geo_1438p", "Hook_1498p",
      "bone010p",   "ldoorp",    "boneS10p",    "Emilia_923p", "inline_1p",
      "Fault_639p", "StocF-1465p", "msdoorp",   "af_5_k101p"};
  return names;
}

bool is_proxy_name(const std::string& name) {
  return recipes().count(name) > 0;
}

ProxyMatrix make_proxy(const std::string& name, double size_factor) {
  auto it = recipes().find(name);
  DSOUTH_CHECK_MSG(it != recipes().end(), "unknown proxy '" << name << "'");
  CsrMatrix raw = it->second.build(size_factor);
  ScaledSystem scaled = symmetric_unit_diagonal_scale(raw);
  ProxyMatrix out;
  out.info.name = name;
  out.info.paper_matrix = it->second.paper_matrix;
  out.info.kind = it->second.kind;
  out.info.rows = scaled.a.rows();
  out.info.nnz = scaled.a.nnz();
  out.a = std::move(scaled.a);
  return out;
}

CsrMatrix make_tenant_variant(const CsrMatrix& base, std::uint64_t seed,
                              double magnitude) {
  DSOUTH_CHECK_MSG(magnitude > 0.0 && magnitude < 1.0,
                   "tenant perturbation magnitude must lie in (0, 1)");
  // Proxy matrices are symmetric up to scaling roundoff (the unit-diagonal
  // scale multiplies (i,j) and (j,i) in different orders), so the guard
  // allows last-bit noise; the shared per-pair factor below preserves
  // whatever symmetry the base has, exactly.
  DSOUTH_CHECK_MSG(base.is_symmetric(1e-12),
                   "tenant variants need a symmetric base");
  std::vector<index_t> row_ptr(base.row_ptr().begin(), base.row_ptr().end());
  std::vector<index_t> col_idx(base.col_idx().begin(), base.col_idx().end());
  std::vector<value_t> values(base.values().begin(), base.values().end());
  const index_t rows = base.rows();
  for (index_t i = 0; i < rows; ++i) {
    const auto beg = static_cast<std::size_t>(row_ptr[i]);
    const auto end = static_cast<std::size_t>(row_ptr[i + 1]);
    for (std::size_t k = beg; k < end; ++k) {
      const index_t j = col_idx[k];
      if (j == i) continue;  // unit diagonal stays exact
      // Stateless per-pair draw keyed on the UNORDERED pair, so (i, j) and
      // (j, i) shrink by the same factor and the variant stays symmetric.
      const auto lo = static_cast<std::uint64_t>(std::min(i, j));
      const auto hi = static_cast<std::uint64_t>(std::max(i, j));
      util::SplitMix64 h(seed ^ (lo << 32 | hi));
      const double u01 =
          static_cast<double>(h.next() >> 11) * 0x1.0p-53;  // [0, 1)
      values[k] *= 1.0 - magnitude * u01;
    }
  }
  return CsrMatrix(rows, base.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

SmallFemProblem make_small_fem_problem() {
  SmallFemProblem p;
  // 81×41 vertices -> 79×39 = 3081 interior unknowns, matching the paper's
  // "3081 rows" example problem.
  p.mesh = make_perturbed_grid_mesh(81, 41, 0.25, kProxySeedBase + 100);
  CsrMatrix raw = assemble_p1_poisson(p.mesh);
  DSOUTH_CHECK(raw.rows() == 3081);
  p.a = symmetric_unit_diagonal_scale(raw).a;
  return p;
}

}  // namespace dsouth::sparse
