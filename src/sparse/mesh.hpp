#pragma once

/// \file mesh.hpp
/// Perturbed structured triangle meshes. The paper's Figures 2 and 5 use a
/// finite-element discretization of the Poisson equation on a square with
/// "irregularly structured linear triangular elements"; this generator
/// reproduces that flavor deterministically: a structured vertex grid whose
/// interior vertices are jittered, then triangulated.

#include <array>
#include <cstdint>
#include <vector>

#include "sparse/types.hpp"

namespace dsouth::sparse {

/// 2-D triangle mesh with P1 (linear) elements in mind.
struct TriMesh {
  index_t nvx = 0;  ///< vertices per row
  index_t nvy = 0;  ///< vertices per column
  std::vector<double> vx, vy;                 ///< vertex coordinates
  std::vector<std::array<index_t, 3>> tris;   ///< CCW vertex triples
  std::vector<bool> on_boundary;              ///< per-vertex boundary flag

  index_t num_vertices() const { return static_cast<index_t>(vx.size()); }
  index_t num_triangles() const { return static_cast<index_t>(tris.size()); }
  index_t num_interior() const;

  /// Signed area of triangle t (positive for CCW orientation).
  double signed_area(index_t t) const;

  /// All triangles positively oriented and no degenerate elements.
  bool is_valid() const;
};

/// Build an (nvx × nvy)-vertex mesh of the unit square. Interior vertices
/// are jittered by up to `perturb` × (local spacing) in each coordinate
/// (perturb in [0, 0.45); 0.25 keeps all elements comfortably non-inverted
/// and is what the proxies use). Each grid cell is split into two triangles
/// along the diagonal whose direction alternates per cell, which avoids the
/// directional bias of a one-diagonal split.
TriMesh make_perturbed_grid_mesh(index_t nvx, index_t nvy, double perturb,
                                 std::uint64_t seed);

}  // namespace dsouth::sparse
