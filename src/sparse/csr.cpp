#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dsouth::sparse {

CsrMatrix::CsrMatrix(index_t rows, index_t cols, std::vector<index_t> row_ptr,
                     std::vector<index_t> col_idx, std::vector<value_t> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  DSOUTH_CHECK(rows_ >= 0 && cols_ >= 0);
  DSOUTH_CHECK(row_ptr_.size() == static_cast<std::size_t>(rows_) + 1);
  DSOUTH_CHECK(col_idx_.size() == values_.size());
  DSOUTH_CHECK(row_ptr_.back() == static_cast<index_t>(col_idx_.size()));
}

std::span<const index_t> CsrMatrix::row_cols(index_t i) const {
  DSOUTH_ASSERT(i >= 0 && i < rows_);
  auto b = static_cast<std::size_t>(row_ptr_[i]);
  auto e = static_cast<std::size_t>(row_ptr_[i + 1]);
  return {col_idx_.data() + b, e - b};
}

std::span<const value_t> CsrMatrix::row_vals(index_t i) const {
  DSOUTH_ASSERT(i >= 0 && i < rows_);
  auto b = static_cast<std::size_t>(row_ptr_[i]);
  auto e = static_cast<std::size_t>(row_ptr_[i + 1]);
  return {values_.data() + b, e - b};
}

index_t CsrMatrix::row_nnz(index_t i) const {
  DSOUTH_ASSERT(i >= 0 && i < rows_);
  return row_ptr_[i + 1] - row_ptr_[i];
}

value_t CsrMatrix::at(index_t i, index_t j) const {
  auto cols = row_cols(i);
  auto it = std::lower_bound(cols.begin(), cols.end(), j);
  if (it == cols.end() || *it != j) return 0.0;
  return values_[static_cast<std::size_t>(row_ptr_[i]) +
                 static_cast<std::size_t>(it - cols.begin())];
}

std::vector<value_t> CsrMatrix::diagonal() const {
  std::vector<value_t> d(static_cast<std::size_t>(rows_), 0.0);
  for (index_t i = 0; i < rows_; ++i) d[static_cast<std::size_t>(i)] = at(i, i);
  return d;
}

void CsrMatrix::spmv(std::span<const value_t> x, std::span<value_t> y) const {
  DSOUTH_CHECK(x.size() == static_cast<std::size_t>(cols_));
  DSOUTH_CHECK(y.size() == static_cast<std::size_t>(rows_));
  for (index_t i = 0; i < rows_; ++i) {
    value_t sum = 0.0;
    const index_t b = row_ptr_[i], e = row_ptr_[i + 1];
    for (index_t k = b; k < e; ++k) sum += values_[k] * x[col_idx_[k]];
    y[i] = sum;
  }
}

void CsrMatrix::spmv_acc(value_t alpha, std::span<const value_t> x,
                         std::span<value_t> y) const {
  DSOUTH_CHECK(x.size() == static_cast<std::size_t>(cols_));
  DSOUTH_CHECK(y.size() == static_cast<std::size_t>(rows_));
  for (index_t i = 0; i < rows_; ++i) {
    value_t sum = 0.0;
    const index_t b = row_ptr_[i], e = row_ptr_[i + 1];
    for (index_t k = b; k < e; ++k) sum += values_[k] * x[col_idx_[k]];
    y[i] += alpha * sum;
  }
}

void CsrMatrix::residual(std::span<const value_t> b, std::span<const value_t> x,
                         std::span<value_t> r) const {
  DSOUTH_CHECK(b.size() == static_cast<std::size_t>(rows_));
  std::copy(b.begin(), b.end(), r.begin());
  spmv_acc(-1.0, x, r);
}

CsrMatrix CsrMatrix::transpose() const {
  std::vector<index_t> t_ptr(static_cast<std::size_t>(cols_) + 1, 0);
  for (index_t j : col_idx_) ++t_ptr[static_cast<std::size_t>(j) + 1];
  for (index_t j = 0; j < cols_; ++j) {
    t_ptr[static_cast<std::size_t>(j) + 1] += t_ptr[static_cast<std::size_t>(j)];
  }
  std::vector<index_t> t_col(col_idx_.size());
  std::vector<value_t> t_val(values_.size());
  std::vector<index_t> cursor(t_ptr.begin(), t_ptr.end() - 1);
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      index_t j = col_idx_[k];
      index_t slot = cursor[static_cast<std::size_t>(j)]++;
      t_col[slot] = i;   // rows visited ascending -> sorted columns
      t_val[slot] = values_[k];
    }
  }
  return CsrMatrix(cols_, rows_, std::move(t_ptr), std::move(t_col),
                   std::move(t_val));
}

bool CsrMatrix::is_symmetric(value_t tol) const {
  if (rows_ != cols_) return false;
  for (index_t i = 0; i < rows_; ++i) {
    auto cols = row_cols(i);
    auto vals = row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (std::abs(vals[k] - at(cols[k], i)) > tol) return false;
    }
  }
  return true;
}

bool CsrMatrix::has_full_diagonal() const {
  if (rows_ != cols_) return false;
  for (index_t i = 0; i < rows_; ++i) {
    if (at(i, i) == 0.0) return false;
  }
  return true;
}

CsrMatrix CsrMatrix::extract(std::span<const index_t> rows_sel,
                             std::span<const index_t> col_map,
                             index_t new_cols) const {
  DSOUTH_CHECK(col_map.size() == static_cast<std::size_t>(cols_));
  std::vector<index_t> new_ptr(rows_sel.size() + 1, 0);
  std::vector<index_t> new_col;
  std::vector<value_t> new_val;
  for (std::size_t out_i = 0; out_i < rows_sel.size(); ++out_i) {
    index_t i = rows_sel[out_i];
    DSOUTH_CHECK(i >= 0 && i < rows_);
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      index_t nj = col_map[static_cast<std::size_t>(col_idx_[k])];
      if (nj < 0) continue;
      DSOUTH_ASSERT(nj < new_cols);
      new_col.push_back(nj);
      new_val.push_back(values_[k]);
    }
    new_ptr[out_i + 1] = static_cast<index_t>(new_col.size());
  }
  // Column maps are monotone within a row only if col_map is monotone on
  // stored columns; sort each row to restore the CSR invariant.
  for (std::size_t out_i = 0; out_i < rows_sel.size(); ++out_i) {
    auto b = static_cast<std::size_t>(new_ptr[out_i]);
    auto e = static_cast<std::size_t>(new_ptr[out_i + 1]);
    // insertion sort: rows are short and usually already sorted
    for (std::size_t k = b + 1; k < e; ++k) {
      index_t c = new_col[k];
      value_t v = new_val[k];
      std::size_t q = k;
      while (q > b && new_col[q - 1] > c) {
        new_col[q] = new_col[q - 1];
        new_val[q] = new_val[q - 1];
        --q;
      }
      new_col[q] = c;
      new_val[q] = v;
    }
  }
  return CsrMatrix(static_cast<index_t>(rows_sel.size()), new_cols,
                   std::move(new_ptr), std::move(new_col), std::move(new_val));
}

bool CsrMatrix::validate() const {
  if (row_ptr_.size() != static_cast<std::size_t>(rows_) + 1) return false;
  if (row_ptr_[0] != 0) return false;
  for (index_t i = 0; i < rows_; ++i) {
    if (row_ptr_[i + 1] < row_ptr_[i]) return false;
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      if (col_idx_[k] < 0 || col_idx_[k] >= cols_) return false;
      if (k > row_ptr_[i] && col_idx_[k] <= col_idx_[k - 1]) return false;
    }
  }
  return row_ptr_.back() == static_cast<index_t>(col_idx_.size());
}

}  // namespace dsouth::sparse
