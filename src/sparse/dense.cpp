#include "sparse/dense.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dsouth::sparse {

DenseMatrix::DenseMatrix(index_t rows, index_t cols)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
            0.0) {
  DSOUTH_CHECK(rows >= 0 && cols >= 0);
}

DenseMatrix DenseMatrix::from_csr(const CsrMatrix& a) {
  DenseMatrix d(a.rows(), a.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    auto cols = a.row_cols(i);
    auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) d(i, cols[k]) = vals[k];
  }
  return d;
}

value_t& DenseMatrix::operator()(index_t i, index_t j) {
  DSOUTH_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
  return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_) +
               static_cast<std::size_t>(j)];
}

value_t DenseMatrix::operator()(index_t i, index_t j) const {
  DSOUTH_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
  return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_) +
               static_cast<std::size_t>(j)];
}

void DenseMatrix::matvec(std::span<const value_t> x,
                         std::span<value_t> y) const {
  DSOUTH_CHECK(x.size() == static_cast<std::size_t>(cols_));
  DSOUTH_CHECK(y.size() == static_cast<std::size_t>(rows_));
  for (index_t i = 0; i < rows_; ++i) {
    value_t sum = 0.0;
    for (index_t j = 0; j < cols_; ++j) sum += (*this)(i, j) * x[j];
    y[i] = sum;
  }
}

DenseCholesky::DenseCholesky(const DenseMatrix& a) { factor(a); }

DenseCholesky::DenseCholesky(const CsrMatrix& a) {
  factor(DenseMatrix::from_csr(a));
}

void DenseCholesky::factor(const DenseMatrix& a) {
  DSOUTH_CHECK(a.rows() == a.cols());
  const index_t n = a.rows();
  l_ = DenseMatrix(n, n);
  for (index_t j = 0; j < n; ++j) {
    value_t d = a(j, j);
    for (index_t k = 0; k < j; ++k) d -= l_(j, k) * l_(j, k);
    DSOUTH_CHECK_MSG(d > 0.0, "non-positive pivot " << d << " at column " << j
                                                    << "; matrix not SPD");
    l_(j, j) = std::sqrt(d);
    for (index_t i = j + 1; i < n; ++i) {
      value_t s = a(i, j);
      for (index_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      l_(i, j) = s / l_(j, j);
    }
  }
}

void DenseCholesky::solve(std::span<const value_t> b,
                          std::span<value_t> x) const {
  const index_t n = l_.rows();
  DSOUTH_CHECK(b.size() == static_cast<std::size_t>(n));
  DSOUTH_CHECK(x.size() == static_cast<std::size_t>(n));
  // Forward solve L y = b (y stored in x).
  for (index_t i = 0; i < n; ++i) {
    value_t s = b[i];
    for (index_t k = 0; k < i; ++k) s -= l_(i, k) * x[k];
    x[i] = s / l_(i, i);
  }
  // Back solve Lᵀ x = y.
  for (index_t i = n - 1; i >= 0; --i) {
    value_t s = x[i];
    for (index_t k = i + 1; k < n; ++k) s -= l_(k, i) * x[k];
    x[i] = s / l_(i, i);
  }
}

value_t DenseCholesky::log_det() const {
  value_t sum = 0.0;
  for (index_t i = 0; i < l_.rows(); ++i) sum += 2.0 * std::log(l_(i, i));
  return sum;
}

}  // namespace dsouth::sparse
