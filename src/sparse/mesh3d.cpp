#include "sparse/mesh3d.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsouth::sparse {

index_t TetMesh::num_interior() const {
  index_t count = 0;
  for (bool b : on_boundary) {
    if (!b) ++count;
  }
  return count;
}

double TetMesh::signed_volume(index_t t) const {
  const auto& tet = tets[static_cast<std::size_t>(t)];
  const double ax = vx[tet[1]] - vx[tet[0]], ay = vy[tet[1]] - vy[tet[0]],
               az = vz[tet[1]] - vz[tet[0]];
  const double bx = vx[tet[2]] - vx[tet[0]], by = vy[tet[2]] - vy[tet[0]],
               bz = vz[tet[2]] - vz[tet[0]];
  const double cx = vx[tet[3]] - vx[tet[0]], cy = vy[tet[3]] - vy[tet[0]],
               cz = vz[tet[3]] - vz[tet[0]];
  // (a × b) · c / 6
  return (ax * (by * cz - bz * cy) - ay * (bx * cz - bz * cx) +
          az * (bx * cy - by * cx)) /
         6.0;
}

bool TetMesh::is_valid() const {
  if (vx.size() != vy.size() || vx.size() != vz.size()) return false;
  if (on_boundary.size() != vx.size()) return false;
  for (index_t t = 0; t < num_tets(); ++t) {
    for (index_t v : tets[static_cast<std::size_t>(t)]) {
      if (v < 0 || v >= num_vertices()) return false;
    }
    if (signed_volume(t) <= 0.0) return false;
  }
  return true;
}

TetMesh make_perturbed_box_mesh(index_t nvx, index_t nvy, index_t nvz,
                                double perturb, std::uint64_t seed) {
  DSOUTH_CHECK(nvx >= 2 && nvy >= 2 && nvz >= 2);
  DSOUTH_CHECK(perturb >= 0.0 && perturb < 0.3);
  util::Rng rng(seed);
  TetMesh mesh;
  mesh.nvx = nvx;
  mesh.nvy = nvy;
  mesh.nvz = nvz;
  const auto nv = static_cast<std::size_t>(nvx) *
                  static_cast<std::size_t>(nvy) *
                  static_cast<std::size_t>(nvz);
  mesh.vx.resize(nv);
  mesh.vy.resize(nv);
  mesh.vz.resize(nv);
  mesh.on_boundary.resize(nv);
  const index_t longest = std::max({nvx, nvy, nvz}) - 1;
  const double h = 1.0 / static_cast<double>(longest);
  auto id = [&](index_t i, index_t j, index_t k) {
    return (k * nvy + j) * nvx + i;
  };
  for (index_t k = 0; k < nvz; ++k) {
    for (index_t j = 0; j < nvy; ++j) {
      for (index_t i = 0; i < nvx; ++i) {
        const auto v = static_cast<std::size_t>(id(i, j, k));
        const bool boundary = (i == 0 || i == nvx - 1 || j == 0 ||
                               j == nvy - 1 || k == 0 || k == nvz - 1);
        double px = 0.0, py = 0.0, pz = 0.0;
        if (!boundary) {
          px = rng.uniform(-perturb, perturb) * h;
          py = rng.uniform(-perturb, perturb) * h;
          pz = rng.uniform(-perturb, perturb) * h;
        }
        mesh.vx[v] = static_cast<double>(i) * h + px;
        mesh.vy[v] = static_cast<double>(j) * h + py;
        mesh.vz[v] = static_cast<double>(k) * h + pz;
        mesh.on_boundary[v] = boundary;
      }
    }
  }
  // Kuhn split: six tets per cell, all containing the main diagonal
  // v000 -> v111. Vertex order per tet chosen for positive orientation on
  // the unperturbed grid.
  mesh.tets.reserve(static_cast<std::size_t>(6 * (nvx - 1) * (nvy - 1) *
                                             (nvz - 1)));
  for (index_t k = 0; k + 1 < nvz; ++k) {
    for (index_t j = 0; j + 1 < nvy; ++j) {
      for (index_t i = 0; i + 1 < nvx; ++i) {
        const index_t v000 = id(i, j, k), v100 = id(i + 1, j, k);
        const index_t v010 = id(i, j + 1, k), v110 = id(i + 1, j + 1, k);
        const index_t v001 = id(i, j, k + 1), v101 = id(i + 1, j, k + 1);
        const index_t v011 = id(i, j + 1, k + 1),
                      v111 = id(i + 1, j + 1, k + 1);
        mesh.tets.push_back({v000, v100, v110, v111});
        mesh.tets.push_back({v000, v110, v010, v111});
        mesh.tets.push_back({v000, v010, v011, v111});
        mesh.tets.push_back({v000, v011, v001, v111});
        mesh.tets.push_back({v000, v001, v101, v111});
        mesh.tets.push_back({v000, v101, v100, v111});
      }
    }
  }
  DSOUTH_CHECK_MSG(mesh.is_valid(),
                   "perturbation produced an inverted tet; lower perturb");
  return mesh;
}

}  // namespace dsouth::sparse
