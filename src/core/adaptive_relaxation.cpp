#include "core/adaptive_relaxation.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "core/scalar_engine.hpp"
#include "util/error.hpp"
#include "util/indexed_heap.hpp"

namespace dsouth::core {

ConvergenceHistory run_sequential_adaptive_relaxation(
    const CsrMatrix& a, std::span<const value_t> b,
    std::span<const value_t> x0, const SequentialAdaptiveOptions& opt) {
  DSOUTH_CHECK(opt.significance >= 0.0);
  ScalarRelaxationEngine eng(a, b, x0);
  const index_t n = a.rows();
  ConvergenceHistory h;
  h.points.push_back({0, eng.residual_norm()});

  // Active set as FIFO + membership flags; seeded with the largest
  // residuals (or everything).
  std::deque<index_t> active;
  std::vector<char> in_set(static_cast<std::size_t>(n), 0);
  if (opt.initial_active <= 0 || opt.initial_active >= n) {
    for (index_t i = 0; i < n; ++i) {
      active.push_back(i);
      in_set[static_cast<std::size_t>(i)] = 1;
    }
  } else {
    util::IndexedMaxHeap<value_t> heap(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      heap.push(static_cast<std::size_t>(i), eng.southwell_weight(i));
    }
    for (index_t k = 0; k < opt.initial_active; ++k) {
      const auto i = static_cast<index_t>(heap.pop());
      active.push_back(i);
      in_set[static_cast<std::size_t>(i)] = 1;
    }
  }

  const index_t max_relaxations = opt.base.max_sweeps * n;
  value_t x_scale = 1.0;
  for (value_t v : eng.x()) x_scale = std::max(x_scale, std::abs(v));
  while (!active.empty() && eng.relaxation_count() < max_relaxations) {
    const index_t i = active.front();
    active.pop_front();
    in_set[static_cast<std::size_t>(i)] = 0;
    // Preliminary relaxation: evaluate the update magnitude first; an
    // insignificant row is dropped from the active set without a change
    // (this is the "discard the update" rule — equivalent to never
    // applying it).
    const value_t delta = eng.residual(i) / eng.diag(i);
    if (std::abs(delta) <= opt.significance * x_scale) continue;
    eng.relax_row(i, 1.0);
    x_scale = std::max(x_scale, std::abs(eng.x()[i]));
    for (index_t j : a.row_cols(i)) {
      if (j != i && !in_set[static_cast<std::size_t>(j)]) {
        active.push_back(j);
        in_set[static_cast<std::size_t>(j)] = 1;
      }
    }
    if (opt.base.record_each_relaxation) {
      h.points.push_back({eng.relaxation_count(), eng.residual_norm()});
    }
    if (opt.base.target_residual > 0.0 &&
        eng.residual_norm() <= opt.base.target_residual) {
      break;
    }
  }
  if (h.points.back().relaxations != eng.relaxation_count() ||
      h.points.size() == 1) {
    h.points.push_back({eng.relaxation_count(), eng.residual_norm()});
  }
  return h;
}

ConvergenceHistory run_simultaneous_adaptive_relaxation(
    const CsrMatrix& a, std::span<const value_t> b,
    std::span<const value_t> x0, const SimultaneousAdaptiveOptions& opt) {
  DSOUTH_CHECK(opt.threshold_fraction > 0.0 && opt.threshold_fraction <= 1.0);
  ScalarRelaxationEngine eng(a, b, x0);
  const index_t n = a.rows();
  ConvergenceHistory h;
  h.points.push_back({0, eng.residual_norm()});

  const index_t max_relaxations = opt.base.max_sweeps * n;
  const index_t max_steps =
      opt.max_parallel_steps > 0 ? opt.max_parallel_steps : max_relaxations;
  std::vector<index_t> selected;
  for (index_t step = 0; step < max_steps; ++step) {
    if (eng.relaxation_count() >= max_relaxations) break;
    value_t max_w = 0.0;
    for (index_t i = 0; i < n; ++i) {
      max_w = std::max(max_w, eng.southwell_weight(i));
    }
    if (max_w == 0.0) break;
    const value_t theta = opt.threshold_fraction * max_w;
    selected.clear();
    for (index_t i = 0; i < n; ++i) {
      if (eng.southwell_weight(i) > theta ||
          eng.southwell_weight(i) == max_w) {
        selected.push_back(i);
      }
    }
    eng.relax_simultaneously(selected, 1.0);
    h.points.push_back({eng.relaxation_count(), eng.residual_norm()});
    h.step_marks.push_back(h.points.size() - 1);
    if (opt.base.target_residual > 0.0 &&
        eng.residual_norm() <= opt.base.target_residual) {
      break;
    }
  }
  return h;
}

}  // namespace dsouth::core
