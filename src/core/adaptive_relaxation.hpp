#pragma once

/// \file adaptive_relaxation.hpp
/// The Southwell-family related-work methods the paper discusses in §5:
///
///  - **Sequential adaptive relaxation** (Rüde [14, 13]): keep a small
///    active set; pop a row, do a preliminary relaxation, and keep the
///    update only if it changes the solution significantly — in which case
///    the row's neighbors join the active set.
///  - **Simultaneous adaptive relaxation** (Rüde [14]): pick a threshold θ
///    and relax all rows with |r_i| > θ simultaneously. Like Jacobi, this
///    is not guaranteed to converge for all SPD matrices (the paper points
///    this out as a contrast with Parallel Southwell's independent sets).
///
/// These give the benches a related-work axis and make the §5 discussion
/// concrete; they are not used by the Distributed Southwell method itself.

#include <span>

#include "core/classic.hpp"
#include "core/history.hpp"
#include "sparse/csr.hpp"

namespace dsouth::core {

struct SequentialAdaptiveOptions {
  ScalarRunOptions base;
  /// Keep an update (and activate neighbors) only if |δ| exceeds this
  /// fraction of the current solution scale max(‖x‖∞, 1).
  value_t significance = 1e-3;
  /// Initial active set: rows with the largest |r| (0 = all rows).
  index_t initial_active = 0;
};

/// Sequential adaptive relaxation. Terminates when the active set drains,
/// the sweep budget is exhausted, or the target residual is met.
ConvergenceHistory run_sequential_adaptive_relaxation(
    const CsrMatrix& a, std::span<const value_t> b,
    std::span<const value_t> x0, const SequentialAdaptiveOptions& opt = {});

struct SimultaneousAdaptiveOptions {
  ScalarRunOptions base;
  /// Rows with |r_i| > θ relax together. θ is re-derived each parallel
  /// step as `threshold_fraction` × max_i |r_i|.
  value_t threshold_fraction = 0.5;
  index_t max_parallel_steps = 0;  ///< 0 = max_sweeps · n
};

/// Simultaneous adaptive relaxation (one parallel step per threshold
/// sweep; every point is a step mark).
ConvergenceHistory run_simultaneous_adaptive_relaxation(
    const CsrMatrix& a, std::span<const value_t> b,
    std::span<const value_t> x0, const SimultaneousAdaptiveOptions& opt = {});

}  // namespace dsouth::core
