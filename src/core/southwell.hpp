#pragma once

/// \file southwell.hpp
/// The Sequential Southwell method (paper §2.2): at every step, relax the
/// row with the largest |r_i / a_ii| (Gauss–Southwell rule; identical to
/// largest |r_i| on the unit-diagonal-scaled systems used throughout).
/// Selection is O(log n) per relaxation via an indexed max-heap whose keys
/// are updated for the O(degree) rows whose residuals a relaxation changes.

#include <span>

#include "core/classic.hpp"
#include "core/history.hpp"
#include "sparse/csr.hpp"

namespace dsouth::core {

/// Run Sequential Southwell for up to max_sweeps·n relaxations (or to the
/// target residual). Each relaxation is recorded (the method is inherently
/// sequential, so there are no parallel-step marks).
ConvergenceHistory run_sequential_southwell(const CsrMatrix& a,
                                            std::span<const value_t> b,
                                            std::span<const value_t> x0,
                                            const ScalarRunOptions& opt = {});

}  // namespace dsouth::core
