#include "core/scalar_engine.hpp"

#include <cmath>

#include "sparse/vec.hpp"
#include "util/error.hpp"

namespace dsouth::core {

ScalarRelaxationEngine::ScalarRelaxationEngine(const CsrMatrix& a,
                                               std::span<const value_t> b,
                                               std::span<const value_t> x0,
                                               bool check_symmetry)
    : a_(&a),
      diag_(a.diagonal()),
      x_(x0.begin(), x0.end()),
      r_(static_cast<std::size_t>(a.rows())),
      b_(b.begin(), b.end()) {
  DSOUTH_CHECK(a.rows() == a.cols());
  DSOUTH_CHECK(b.size() == static_cast<std::size_t>(a.rows()));
  DSOUTH_CHECK(x0.size() == static_cast<std::size_t>(a.rows()));
  if (check_symmetry) {
    DSOUTH_CHECK_MSG(a.is_symmetric(1e-12),
                     "ScalarRelaxationEngine requires a symmetric matrix");
  }
  for (index_t i = 0; i < a.rows(); ++i) {
    DSOUTH_CHECK_MSG(diag_[static_cast<std::size_t>(i)] != 0.0,
                     "zero diagonal at row " << i);
  }
  a.residual(b_, x_, r_);
  sumsq_ = sparse::norm2_sq(r_);
}

value_t ScalarRelaxationEngine::southwell_weight(index_t i) const {
  return std::abs(r_[static_cast<std::size_t>(i)] /
                  diag_[static_cast<std::size_t>(i)]);
}

void ScalarRelaxationEngine::update_sumsq(index_t i, value_t old_value,
                                          value_t new_value) {
  (void)i;
  sumsq_ += new_value * new_value - old_value * old_value;
}

value_t ScalarRelaxationEngine::relax_row(index_t i, value_t omega) {
  DSOUTH_ASSERT(i >= 0 && i < n());
  const auto ui = static_cast<std::size_t>(i);
  const value_t delta = omega * r_[ui] / diag_[ui];
  if (delta == 0.0) {
    ++relaxations_;
    return 0.0;
  }
  x_[ui] += delta;
  // r_j -= a_ji * delta for all j with a_ji != 0; symmetry gives a_ji = a_ij,
  // so walk row i (this also updates r_i itself through the diagonal entry).
  auto cols = a_->row_cols(i);
  auto vals = a_->row_vals(i);
  for (std::size_t k = 0; k < cols.size(); ++k) {
    const auto uj = static_cast<std::size_t>(cols[k]);
    const value_t old_r = r_[uj];
    const value_t new_r = old_r - vals[k] * delta;
    r_[uj] = new_r;
    update_sumsq(cols[k], old_r, new_r);
  }
  if (omega == 1.0) {
    // Exact single-equation solve: kill residual rounding at i.
    update_sumsq(i, r_[ui], 0.0);
    r_[ui] = 0.0;
  }
  ++relaxations_;
  return delta;
}

index_t ScalarRelaxationEngine::relax_simultaneously(
    std::span<const index_t> rows, value_t omega) {
  // Two phases so every increment reads the pre-step residual.
  scratch_delta_.resize(rows.size());
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const auto ui = static_cast<std::size_t>(rows[k]);
    scratch_delta_[k] = omega * r_[ui] / diag_[ui];
  }
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const index_t i = rows[k];
    const value_t delta = scratch_delta_[k];
    if (delta == 0.0) {
      ++relaxations_;
      continue;
    }
    x_[static_cast<std::size_t>(i)] += delta;
    auto cols = a_->row_cols(i);
    auto vals = a_->row_vals(i);
    for (std::size_t c = 0; c < cols.size(); ++c) {
      const auto uj = static_cast<std::size_t>(cols[c]);
      const value_t old_r = r_[uj];
      const value_t new_r = old_r - vals[c] * delta;
      r_[uj] = new_r;
      update_sumsq(cols[c], old_r, new_r);
    }
    ++relaxations_;
  }
  return static_cast<index_t>(rows.size());
}

value_t ScalarRelaxationEngine::residual_norm() {
  // Bound drift: recompute exactly once per n incremental relaxations.
  if (relaxations_ - relaxations_at_recompute_ >= n()) {
    return residual_norm_exact();
  }
  return std::sqrt(std::max(sumsq_, 0.0));
}

value_t ScalarRelaxationEngine::residual_norm_exact() {
  a_->residual(b_, x_, r_);
  sumsq_ = sparse::norm2_sq(r_);
  relaxations_at_recompute_ = relaxations_;
  return std::sqrt(sumsq_);
}

}  // namespace dsouth::core
