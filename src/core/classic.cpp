#include "core/classic.hpp"

#include <numeric>

#include "graph/graph.hpp"
#include "util/error.hpp"

namespace dsouth::core {

namespace {

void record(ConvergenceHistory& h, ScalarRelaxationEngine& eng) {
  h.points.push_back({eng.relaxation_count(), eng.residual_norm()});
}

bool reached(const ConvergenceHistory& h, const ScalarRunOptions& opt) {
  return opt.target_residual > 0.0 &&
         h.points.back().residual_norm <= opt.target_residual;
}

}  // namespace

ConvergenceHistory run_jacobi(const CsrMatrix& a, std::span<const value_t> b,
                              std::span<const value_t> x0,
                              const ScalarRunOptions& opt) {
  ScalarRelaxationEngine eng(a, b, x0);
  ConvergenceHistory h;
  record(h, eng);
  std::vector<index_t> all(static_cast<std::size_t>(a.rows()));
  std::iota(all.begin(), all.end(), index_t{0});
  for (index_t sweep = 0; sweep < opt.max_sweeps; ++sweep) {
    eng.relax_simultaneously(all, opt.omega);
    record(h, eng);
    h.step_marks.push_back(h.points.size() - 1);
    if (reached(h, opt)) break;
  }
  return h;
}

namespace {

ConvergenceHistory run_sweep_order(const CsrMatrix& a,
                                   std::span<const value_t> b,
                                   std::span<const value_t> x0, value_t omega,
                                   const ScalarRunOptions& opt) {
  ScalarRelaxationEngine eng(a, b, x0);
  ConvergenceHistory h;
  record(h, eng);
  for (index_t sweep = 0; sweep < opt.max_sweeps; ++sweep) {
    for (index_t i = 0; i < a.rows(); ++i) {
      eng.relax_row(i, omega);
      if (opt.record_each_relaxation) {
        record(h, eng);
        if (reached(h, opt)) return h;
      }
    }
    if (!opt.record_each_relaxation) {
      record(h, eng);
      if (reached(h, opt)) return h;
    }
  }
  return h;
}

}  // namespace

ConvergenceHistory run_gauss_seidel(const CsrMatrix& a,
                                    std::span<const value_t> b,
                                    std::span<const value_t> x0,
                                    const ScalarRunOptions& opt) {
  return run_sweep_order(a, b, x0, opt.omega, opt);
}

ConvergenceHistory run_sor(const CsrMatrix& a, std::span<const value_t> b,
                           std::span<const value_t> x0, value_t omega,
                           const ScalarRunOptions& opt) {
  DSOUTH_CHECK_MSG(omega > 0.0 && omega < 2.0,
                   "SOR requires omega in (0, 2), got " << omega);
  return run_sweep_order(a, b, x0, omega, opt);
}

ConvergenceHistory run_multicolor_gs(const CsrMatrix& a,
                                     std::span<const value_t> b,
                                     std::span<const value_t> x0,
                                     const ScalarRunOptions& opt,
                                     const graph::Coloring* coloring) {
  graph::Coloring local;
  if (coloring == nullptr) {
    local = graph::greedy_coloring(graph::Graph::from_matrix_structure(a),
                                   graph::ColoringOrder::kBfs);
    coloring = &local;
  }
  DSOUTH_CHECK(coloring->color.size() == static_cast<std::size_t>(a.rows()));
  const auto groups = coloring->groups();
  ScalarRelaxationEngine eng(a, b, x0);
  ConvergenceHistory h;
  record(h, eng);
  for (index_t sweep = 0; sweep < opt.max_sweeps; ++sweep) {
    for (const auto& group : groups) {
      // Rows of one color are independent: simultaneous relaxation equals
      // sequential, and counts as one parallel step.
      eng.relax_simultaneously(group, opt.omega);
      record(h, eng);
      h.step_marks.push_back(h.points.size() - 1);
      if (reached(h, opt)) return h;
    }
  }
  return h;
}

}  // namespace dsouth::core
