#include "core/parallel_southwell.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dsouth::core {

std::vector<index_t> parallel_southwell_selection(
    const CsrMatrix& a, std::span<const value_t> weights) {
  DSOUTH_CHECK(weights.size() == static_cast<std::size_t>(a.rows()));
  std::vector<index_t> selected;
  for (index_t i = 0; i < a.rows(); ++i) {
    const value_t wi = weights[static_cast<std::size_t>(i)];
    if (wi <= 0.0) continue;  // nothing to relax
    bool is_max = true;
    for (index_t j : a.row_cols(i)) {
      if (j == i) continue;
      if (weights[static_cast<std::size_t>(j)] > wi) {
        is_max = false;
        break;
      }
    }
    if (is_max) selected.push_back(i);
  }
  return selected;
}

ConvergenceHistory run_parallel_southwell(const CsrMatrix& a,
                                          std::span<const value_t> b,
                                          std::span<const value_t> x0,
                                          const ParallelSouthwellOptions& opt) {
  ScalarRelaxationEngine eng(a, b, x0);
  ConvergenceHistory h;
  h.points.push_back({0, eng.residual_norm()});

  const index_t max_relaxations = opt.base.max_sweeps * a.rows();
  const index_t max_steps = opt.max_parallel_steps > 0
                                ? opt.max_parallel_steps
                                : max_relaxations;
  std::vector<value_t> weights(static_cast<std::size_t>(a.rows()));
  for (index_t step = 0; step < max_steps; ++step) {
    if (eng.relaxation_count() >= max_relaxations) break;
    for (index_t i = 0; i < a.rows(); ++i) {
      weights[static_cast<std::size_t>(i)] = eng.southwell_weight(i);
    }
    const auto selected = parallel_southwell_selection(a, weights);
    if (selected.empty()) break;  // converged to exact zero residual
    eng.relax_simultaneously(selected, 1.0);
    h.points.push_back({eng.relaxation_count(), eng.residual_norm()});
    h.step_marks.push_back(h.points.size() - 1);
    if (opt.base.target_residual > 0.0 &&
        eng.residual_norm() <= opt.base.target_residual) {
      break;
    }
  }
  return h;
}

}  // namespace dsouth::core
