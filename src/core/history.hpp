#pragma once

/// \file history.hpp
/// Convergence histories recorded by the scalar solvers. Figures 2 and 5 of
/// the paper plot residual norm against the number of relaxations, with
/// markers delineating parallel steps — so a history is a sequence of
/// (cumulative relaxations, residual norm) points plus the indices of the
/// points that end a parallel step.

#include <optional>
#include <vector>

#include "sparse/types.hpp"

namespace dsouth::core {

using sparse::index_t;
using sparse::value_t;

struct ConvergencePoint {
  index_t relaxations = 0;   ///< cumulative relaxations when recorded
  value_t residual_norm = 0; ///< ‖r‖₂ at that moment
};

struct ConvergenceHistory {
  /// First point is the initial state (0 relaxations).
  std::vector<ConvergencePoint> points;
  /// Indices into `points` marking the end of each parallel step
  /// (empty for purely sequential methods).
  std::vector<std::size_t> step_marks;

  index_t total_relaxations() const {
    return points.empty() ? 0 : points.back().relaxations;
  }
  value_t final_residual_norm() const {
    return points.empty() ? 0.0 : points.back().residual_norm;
  }
  std::size_t num_parallel_steps() const { return step_marks.size(); }

  /// Number of relaxations at which the residual first drops to `target`
  /// (linear interpolation between recorded points on the relaxation axis);
  /// nullopt if never reached.
  std::optional<double> relaxations_to_reach(value_t target) const;
};

}  // namespace dsouth::core
