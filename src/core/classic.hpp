#pragma once

/// \file classic.hpp
/// The classical stationary baselines of the paper's Figure 2: Jacobi,
/// Gauss–Seidel, SOR, and Multicolor Gauss–Seidel. All operate through the
/// shared ScalarRelaxationEngine and record ConvergenceHistory in the units
/// the paper plots (cumulative relaxations; parallel-step markers).

#include <span>

#include "core/history.hpp"
#include "core/scalar_engine.hpp"
#include "graph/coloring.hpp"
#include "sparse/csr.hpp"

namespace dsouth::core {

/// Options shared by the scalar runners.
struct ScalarRunOptions {
  /// Run length in sweeps (n relaxations each). Figure 2 uses 3.
  index_t max_sweeps = 3;
  /// Stop early when ‖r‖₂ falls to this value (0 disables).
  value_t target_residual = 0.0;
  /// Sequential methods: record a point after every relaxation (true, the
  /// Figure-2 resolution) or only at sweep boundaries.
  bool record_each_relaxation = true;
  /// Damping factor for Jacobi/GS (1 = undamped); SOR has its own ω.
  value_t omega = 1.0;
};

/// (Point) Jacobi: every sweep relaxes all n rows simultaneously.
/// One sweep == one parallel step.
ConvergenceHistory run_jacobi(const CsrMatrix& a, std::span<const value_t> b,
                              std::span<const value_t> x0,
                              const ScalarRunOptions& opt = {});

/// Gauss–Seidel in natural row order. Each relaxation is a parallel step
/// (the method is sequential).
ConvergenceHistory run_gauss_seidel(const CsrMatrix& a,
                                    std::span<const value_t> b,
                                    std::span<const value_t> x0,
                                    const ScalarRunOptions& opt = {});

/// SOR: Gauss–Seidel with relaxation factor ω in (0, 2).
ConvergenceHistory run_sor(const CsrMatrix& a, std::span<const value_t> b,
                           std::span<const value_t> x0, value_t omega,
                           const ScalarRunOptions& opt = {});

/// Multicolor Gauss–Seidel: one parallel step per color (the paper's
/// comparison point for parallel-step counts). If `coloring` is null, a
/// BFS greedy coloring is computed (the paper's choice).
ConvergenceHistory run_multicolor_gs(const CsrMatrix& a,
                                     std::span<const value_t> b,
                                     std::span<const value_t> x0,
                                     const ScalarRunOptions& opt = {},
                                     const graph::Coloring* coloring = nullptr);

}  // namespace dsouth::core
