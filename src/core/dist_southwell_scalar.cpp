#include "core/dist_southwell_scalar.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsouth::core {

namespace {

/// mirror[k] = CSR position of entry (col_idx[k], i) given k lies in row i.
/// Requires structural symmetry (validated by the engine's symmetry check).
std::vector<index_t> build_mirror(const CsrMatrix& a) {
  std::vector<index_t> mirror(static_cast<std::size_t>(a.nnz()), -1);
  auto row_ptr = a.row_ptr();
  auto col_idx = a.col_idx();
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const index_t j = col_idx[k];
      auto cols = a.row_cols(j);
      auto it = std::lower_bound(cols.begin(), cols.end(), i);
      DSOUTH_CHECK_MSG(it != cols.end() && *it == i,
                       "matrix not structurally symmetric at (" << i << ","
                                                                << j << ")");
      mirror[static_cast<std::size_t>(k)] =
          row_ptr[j] + static_cast<index_t>(it - cols.begin());
    }
  }
  return mirror;
}

}  // namespace

DistSouthwellScalarResult run_distributed_southwell_scalar(
    const CsrMatrix& a, std::span<const value_t> b,
    std::span<const value_t> x0, const DistSouthwellScalarOptions& opt) {
  ScalarRelaxationEngine eng(a, b, x0);
  const index_t n = a.rows();
  auto row_ptr = a.row_ptr();
  auto col_idx = a.col_idx();
  auto vals = a.values();
  const std::vector<index_t> mirror = build_mirror(a);

  // Estimate state per off-diagonal CSR position k (owner = row of k,
  // neighbor = col_idx[k]):
  //   z[k]     — owner's estimate of the neighbor's residual.
  //   tilde[k] — the estimate of the *owner's* residual currently held by
  //              the neighbor. Every message carries the sender's estimate
  //              of the receiver's residual, so tilde[k] == z[mirror[k]]
  //              at every epoch boundary — except transiently on edges
  //              whose two endpoints relaxed in the same epoch (crossing
  //              messages; possible only under stale estimates). The
  //              discrepancy can only cause a redundant correction or mark
  //              the neighbor's estimate as 0 (never an artificial wait),
  //              so deadlock freedom is unaffected, matching Algorithm 3.
  std::vector<value_t> z(static_cast<std::size_t>(a.nnz()), 0.0);
  std::vector<value_t> tilde(static_cast<std::size_t>(a.nnz()), 0.0);
  for (index_t i = 0; i < n; ++i) {
    for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const index_t j = col_idx[k];
      if (j == i) continue;
      z[static_cast<std::size_t>(k)] = eng.residual(j);
      tilde[static_cast<std::size_t>(k)] = eng.residual(i);
    }
  }

  DistSouthwellScalarResult result;
  result.history.points.push_back({0, eng.residual_norm()});

  const index_t budget = opt.max_relaxations > 0 ? opt.max_relaxations
                                                 : opt.base.max_sweeps * n;
  const index_t max_steps =
      opt.max_parallel_steps > 0 ? opt.max_parallel_steps : budget;
  util::Rng subset_rng(opt.subset_seed);

  std::vector<index_t> selected;
  std::vector<value_t> delta(static_cast<std::size_t>(n), 0.0);
  for (index_t step = 0; step < max_steps; ++step) {
    if (eng.relaxation_count() >= budget) break;
    if (opt.base.target_residual > 0.0 &&
        eng.residual_norm() <= opt.base.target_residual) {
      break;
    }

    // ---- Epoch A: select by neighbor *estimates*, relax, solve messages.
    selected.clear();
    for (index_t i = 0; i < n; ++i) {
      const value_t wi = eng.southwell_weight(i);
      if (wi <= 0.0) continue;
      bool is_max = true;
      for (index_t k = row_ptr[i]; k < row_ptr[i + 1] && is_max; ++k) {
        const index_t j = col_idx[k];
        if (j == i) continue;
        const value_t west =
            std::abs(z[static_cast<std::size_t>(k)] / eng.diag(j));
        if (west > wi) is_max = false;
      }
      if (is_max) selected.push_back(i);
    }

    // Enforce the exact relaxation budget with a random final subset
    // (the paper's rule for the multigrid comparison).
    const index_t remaining = budget - eng.relaxation_count();
    if (static_cast<index_t>(selected.size()) > remaining) {
      auto keep = subset_rng.sample_without_replacement(
          selected.size(), static_cast<std::size_t>(remaining));
      std::sort(keep.begin(), keep.end());
      std::vector<index_t> subset;
      subset.reserve(keep.size());
      for (std::size_t s : keep) subset.push_back(selected[s]);
      selected.swap(subset);
    }

    if (!selected.empty()) {
      // Capture δ_i from the pre-step residuals, then let the engine apply
      // the identical simultaneous relaxation to the true x and r.
      for (index_t i : selected) {
        delta[static_cast<std::size_t>(i)] =
            eng.residual(i) / eng.diag(i);
      }
      eng.relax_simultaneously(selected, 1.0);
      // Sender-side local updates: after relaxing, i's estimate of each
      // neighbor moves by its own contribution −a_ji·δ_i (a_ji = a_ij by
      // symmetry), with no communication; i also knows j will now hold the
      // exact value 0 for r_i once the solve message lands.
      for (index_t i : selected) {
        const value_t di = delta[static_cast<std::size_t>(i)];
        for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
          const index_t j = col_idx[k];
          if (j == i) continue;
          z[static_cast<std::size_t>(k)] -= vals[static_cast<std::size_t>(k)] * di;
          tilde[static_cast<std::size_t>(k)] = 0.0;
        }
      }
      // Message delivery: i → j carries (δ_i, r_i at send time = 0, and
      // z[i→j], i's estimate of r_j). The engine already applied the δ
      // effects on true residuals; here we apply the estimate effects.
      // Payloads are snapshotted before any delivery is applied — messages
      // between two simultaneously-relaxing neighbors cross in flight, so
      // neither may see the other's delivery.
      std::vector<std::pair<std::size_t, value_t>> deliveries;
      for (index_t i : selected) {
        for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
          const index_t j = col_idx[k];
          if (j == i) continue;
          const auto m = static_cast<std::size_t>(
              mirror[static_cast<std::size_t>(k)]);
          deliveries.emplace_back(m, z[static_cast<std::size_t>(k)]);
          ++result.solve_messages;
        }
      }
      for (const auto& [m, estimate_of_receiver] : deliveries) {
        z[m] = 0.0;  // receiver learns r_i exactly (0 at send time)
        tilde[m] = estimate_of_receiver;
      }
    }

    // ---- Epoch B: deadlock avoidance. If a neighbor's estimate of r_i is
    // larger in magnitude than the true r_i, it might wait on i forever;
    // send an explicit residual update (and only then).
    bool any_correction = false;
    if (opt.enable_corrections) {
      // Same snapshot-then-apply discipline as Epoch A: two neighbors can
      // correct each other simultaneously, and each message must carry the
      // sender's pre-delivery state.
      struct Correction {
        std::size_t m;        // mirror position (receiver side)
        value_t exact_r;      // sender's true residual
        value_t estimate;     // sender's estimate of the receiver's residual
      };
      std::vector<Correction> corrections;
      for (index_t i = 0; i < n; ++i) {
        const value_t ri = eng.residual(i);
        for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
          const index_t j = col_idx[k];
          if (j == i) continue;
          const auto uk = static_cast<std::size_t>(k);
          if (std::abs(ri) < std::abs(tilde[uk])) {
            corrections.push_back(
                {static_cast<std::size_t>(mirror[uk]), ri, z[uk]});
            tilde[uk] = ri;  // i knows j will now hold the exact value
            ++result.residual_messages;
            any_correction = true;
          }
        }
      }
      for (const auto& c : corrections) {
        z[c.m] = c.exact_r;     // receiver's estimate of r_i corrected
        tilde[c.m] = c.estimate;  // receiver learns what i thinks of r_j
      }
    }

    result.relaxed_per_step.push_back(static_cast<index_t>(selected.size()));
    result.history.points.push_back(
        {eng.relaxation_count(), eng.residual_norm()});
    result.history.step_marks.push_back(result.history.points.size() - 1);

    if (selected.empty() && !any_correction) {
      // Nothing moved and nothing will: with corrections enabled this means
      // the residual is exactly zero; without them, it is the §2.4 stall.
      result.stalled = eng.residual_norm() > 0.0;
      break;
    }
  }
  result.x.assign(eng.x().begin(), eng.x().end());
  return result;
}

}  // namespace dsouth::core
