#pragma once

/// \file dist_southwell_scalar.hpp
/// Scalar (subdomain size 1) Distributed Southwell — the paper's
/// contribution (§3, Algorithm 3) in the scalar form used by Figure 5 and
/// by the multigrid smoothing experiment (§4.1, Figure 6).
///
/// Each row i plays the role of a process. Row i stores, per neighbor j:
///   z[i→j]      — i's local estimate of r_j. Maintained WITHOUT
///                 communication when i relaxes (the update −a_ji·δ_i only
///                 needs column i of A, which i stores), and overwritten
///                 with the exact value whenever j sends a message.
///   r̃[i→j]     — the estimate of r_i currently held by j. Exactly known
///                 by i because every message carries the sender's estimate
///                 of the receiver's residual.
///
/// Per parallel step (two communication epochs, as in Algorithm 3):
///   Epoch A: rows whose Gauss–Southwell weight is maximal among their
///            neighbor *estimates* relax and send solve messages
///            (δ, own new residual, estimate of receiver's residual).
///   Epoch B: deadlock avoidance — if |r_i| < r̃[i→j], neighbor j
///            overestimates i and might wait on i forever; i sends an
///            explicit residual update to j (and only then — this is the
///            "only when necessary" rule that cuts communication vs.
///            Parallel Southwell).
///
/// Exactness note: actual residuals stay exact here because solve updates
/// are always communicated; what drifts are the cross-neighbor *estimates*,
/// exactly as in the block method.

#include <cstdint>
#include <span>
#include <vector>

#include "core/classic.hpp"
#include "core/history.hpp"
#include "sparse/csr.hpp"

namespace dsouth::core {

struct DistSouthwellScalarOptions {
  ScalarRunOptions base;
  /// Cap on parallel steps (0 = max_sweeps·n, a safe upper bound).
  index_t max_parallel_steps = 0;
  /// Exact relaxation budget (0 = max_sweeps·n). When the final step's
  /// selection would overshoot the budget, a random subset of the selected
  /// rows is relaxed so the total is exact — the paper's rule for the
  /// multigrid comparison ("a random subset of the rows selected to be
  /// relaxed are actually relaxed").
  index_t max_relaxations = 0;
  std::uint64_t subset_seed = 0x5355425345ULL;
  /// Ablation switch: disable the Epoch-B deadlock-avoidance corrections
  /// (the method may then stall exactly as §2.4 describes for the
  /// deadlock-prone scheme of Ref. [18]).
  bool enable_corrections = true;
};

struct DistSouthwellScalarResult {
  ConvergenceHistory history;
  std::vector<value_t> x;  ///< final iterate
  /// Message counts (scalar analogue of the paper's Table 3 categories).
  std::uint64_t solve_messages = 0;
  std::uint64_t residual_messages = 0;
  std::vector<index_t> relaxed_per_step;
  /// True if the run ended because no progress was possible (stall): only
  /// observable with corrections disabled.
  bool stalled = false;
};

DistSouthwellScalarResult run_distributed_southwell_scalar(
    const CsrMatrix& a, std::span<const value_t> b,
    std::span<const value_t> x0, const DistSouthwellScalarOptions& opt = {});

}  // namespace dsouth::core
