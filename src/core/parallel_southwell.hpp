#pragma once

/// \file parallel_southwell.hpp
/// Scalar Parallel Southwell (paper §2.3): per parallel step, every row i
/// whose |r_i| is maximal within its closed neighborhood {N_i, i} is
/// relaxed simultaneously. Ties relax on both sides (with exact residuals
/// this guarantees at least the global-max row is always selected, so the
/// method cannot stall).

#include <span>

#include "core/classic.hpp"
#include "core/history.hpp"
#include "sparse/csr.hpp"

namespace dsouth::core {

/// Extra knobs for the parallel-step methods.
struct ParallelSouthwellOptions {
  ScalarRunOptions base;
  /// Safety bound on parallel steps (0 = derive from max_sweeps: a step
  /// relaxes at least one row, so max_sweeps·n steps always suffice).
  index_t max_parallel_steps = 0;
};

/// Run scalar Parallel Southwell; one history point per parallel step,
/// every point also a step mark.
ConvergenceHistory run_parallel_southwell(const CsrMatrix& a,
                                          std::span<const value_t> b,
                                          std::span<const value_t> x0,
                                          const ParallelSouthwellOptions& opt =
                                              {});

/// The selection rule by itself (exposed for tests and the selection-demo
/// example): rows whose Gauss–Southwell weight is >= that of every matrix
/// neighbor. Zero-residual rows are never selected.
std::vector<index_t> parallel_southwell_selection(
    const CsrMatrix& a, std::span<const value_t> weights);

}  // namespace dsouth::core
