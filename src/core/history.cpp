#include "core/history.hpp"

namespace dsouth::core {

std::optional<double> ConvergenceHistory::relaxations_to_reach(
    value_t target) const {
  for (std::size_t k = 0; k < points.size(); ++k) {
    if (points[k].residual_norm <= target) {
      if (k == 0) return 0.0;
      const auto& a = points[k - 1];
      const auto& b = points[k];
      if (b.residual_norm >= a.residual_norm) {
        return static_cast<double>(b.relaxations);
      }
      const double frac =
          (a.residual_norm - target) / (a.residual_norm - b.residual_norm);
      return static_cast<double>(a.relaxations) +
             frac * static_cast<double>(b.relaxations - a.relaxations);
    }
  }
  return std::nullopt;
}

}  // namespace dsouth::core
