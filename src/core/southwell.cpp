#include "core/southwell.hpp"

#include "util/error.hpp"
#include "util/indexed_heap.hpp"

namespace dsouth::core {

ConvergenceHistory run_sequential_southwell(const CsrMatrix& a,
                                            std::span<const value_t> b,
                                            std::span<const value_t> x0,
                                            const ScalarRunOptions& opt) {
  ScalarRelaxationEngine eng(a, b, x0);
  ConvergenceHistory h;
  h.points.push_back({0, eng.residual_norm()});

  util::IndexedMaxHeap<value_t> heap(static_cast<std::size_t>(a.rows()));
  for (index_t i = 0; i < a.rows(); ++i) {
    heap.push(static_cast<std::size_t>(i), eng.southwell_weight(i));
  }

  const index_t max_relaxations = opt.max_sweeps * a.rows();
  for (index_t k = 0; k < max_relaxations; ++k) {
    const auto i = static_cast<index_t>(heap.top());
    eng.relax_row(i, 1.0);
    // Residuals changed for i and its matrix neighbors; refresh their keys.
    heap.update(static_cast<std::size_t>(i), eng.southwell_weight(i));
    for (index_t j : a.row_cols(i)) {
      if (j != i) {
        heap.update(static_cast<std::size_t>(j), eng.southwell_weight(j));
      }
    }
    if (opt.record_each_relaxation || (k + 1) % a.rows() == 0) {
      h.points.push_back({eng.relaxation_count(), eng.residual_norm()});
    }
    if (opt.target_residual > 0.0 &&
        eng.residual_norm() <= opt.target_residual) {
      break;
    }
  }
  if (h.points.back().relaxations != eng.relaxation_count()) {
    h.points.push_back({eng.relaxation_count(), eng.residual_norm()});
  }
  return h;
}

}  // namespace dsouth::core
