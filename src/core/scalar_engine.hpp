#pragma once

/// \file scalar_engine.hpp
/// Shared relaxation machinery for the scalar (one equation per relaxation)
/// methods: Jacobi, Gauss–Seidel, SOR, Multicolor GS, Sequential Southwell,
/// Parallel Southwell and scalar Distributed Southwell all drive this
/// engine. It maintains x, the exact residual r = b − Ax, and an
/// incrementally-updated ‖r‖₂² with periodic exact recomputation to bound
/// floating-point drift.
///
/// The engine requires a *symmetric* matrix: relaxing row i updates the
/// residuals of the rows coupled to i through column i of A, and symmetry
/// lets it read that column as row i (the paper makes the same assumption —
/// all its test matrices are SPD).

#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace dsouth::core {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

class ScalarRelaxationEngine {
 public:
  /// The matrix must outlive the engine. `check_symmetry` runs an O(nnz)
  /// validation (on by default; hot callers constructing many engines can
  /// skip it after validating once).
  ScalarRelaxationEngine(const CsrMatrix& a, std::span<const value_t> b,
                         std::span<const value_t> x0,
                         bool check_symmetry = true);

  index_t n() const { return a_->rows(); }
  const CsrMatrix& matrix() const { return *a_; }

  std::span<const value_t> x() const { return x_; }
  std::span<const value_t> r() const { return r_; }
  value_t residual(index_t i) const { return r_[static_cast<std::size_t>(i)]; }
  value_t diag(index_t i) const { return diag_[static_cast<std::size_t>(i)]; }

  /// Gauss–Southwell weight |r_i / a_ii| (== |r_i| after unit-diagonal
  /// scaling, which all experiments apply).
  value_t southwell_weight(index_t i) const;

  /// Relax row i with damping `omega` (1 = exact single-equation solve):
  /// x_i += ω r_i / a_ii, then update r on i and its neighbors.
  /// Returns the solution increment δ.
  value_t relax_row(index_t i, value_t omega = 1.0);

  /// Jacobi-style simultaneous relaxation of a set of rows: all increments
  /// are computed from the current residual, then applied together.
  /// The rows must be distinct. Returns the number of rows relaxed.
  index_t relax_simultaneously(std::span<const index_t> rows,
                               value_t omega = 1.0);

  /// ‖r‖₂ (incrementally tracked; exact recompute every `n` relaxations).
  value_t residual_norm();

  /// Exact ‖r‖₂ recomputed from scratch (also resets the incremental sum).
  value_t residual_norm_exact();

  index_t relaxation_count() const { return relaxations_; }

 private:
  void update_sumsq(index_t i, value_t old_value, value_t new_value);

  const CsrMatrix* a_;
  std::vector<value_t> diag_;
  std::vector<value_t> x_, r_;
  std::vector<value_t> b_;
  value_t sumsq_ = 0.0;
  index_t relaxations_ = 0;
  index_t relaxations_at_recompute_ = 0;
  std::vector<value_t> scratch_delta_;  // for relax_simultaneously
};

}  // namespace dsouth::core
