#include "krylov/preconditioner.hpp"

#include <algorithm>

#include "dist/solver_base.hpp"
#include "dist/subdomain.hpp"
#include "util/error.hpp"

namespace dsouth::krylov {

namespace {

class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(std::span<const value_t> r, std::span<value_t> z) override {
    DSOUTH_CHECK(r.size() == z.size());
    std::copy(r.begin(), r.end(), z.begin());
  }
  const char* name() const override { return "identity"; }
};

class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const CsrMatrix& a) : inv_diag_(a.diagonal()) {
    for (auto& d : inv_diag_) {
      DSOUTH_CHECK_MSG(d != 0.0, "zero diagonal");
      d = 1.0 / d;
    }
  }
  void apply(std::span<const value_t> r, std::span<value_t> z) override {
    DSOUTH_CHECK(r.size() == inv_diag_.size() && z.size() == r.size());
    for (std::size_t i = 0; i < r.size(); ++i) z[i] = r[i] * inv_diag_[i];
  }
  const char* name() const override { return "jacobi"; }

 private:
  std::vector<value_t> inv_diag_;
};

class SymmetricGsPreconditioner final : public Preconditioner {
 public:
  explicit SymmetricGsPreconditioner(const CsrMatrix& a) : a_(&a) {
    DSOUTH_CHECK(a.rows() == a.cols());
    DSOUTH_CHECK(a.has_full_diagonal());
    diag_ = a.diagonal();
  }
  void apply(std::span<const value_t> r, std::span<value_t> z) override {
    const index_t n = a_->rows();
    DSOUTH_CHECK(r.size() == static_cast<std::size_t>(n));
    DSOUTH_CHECK(z.size() == static_cast<std::size_t>(n));
    // Solve (D + L) D⁻¹ (D + U) z = r via forward substitution, diagonal
    // scaling and back substitution (classical SSOR(1) preconditioner).
    scratch_.assign(static_cast<std::size_t>(n), 0.0);
    // Forward: (D + L) y = r.
    for (index_t i = 0; i < n; ++i) {
      value_t s = r[static_cast<std::size_t>(i)];
      auto cols = a_->row_cols(i);
      auto vals = a_->row_vals(i);
      for (std::size_t k = 0; k < cols.size() && cols[k] < i; ++k) {
        s -= vals[k] * scratch_[static_cast<std::size_t>(cols[k])];
      }
      scratch_[static_cast<std::size_t>(i)] =
          s / diag_[static_cast<std::size_t>(i)];
    }
    // Scale: y <- D y.
    for (index_t i = 0; i < n; ++i) {
      scratch_[static_cast<std::size_t>(i)] *=
          diag_[static_cast<std::size_t>(i)];
    }
    // Backward: (D + U) z = y.
    for (index_t i = n - 1; i >= 0; --i) {
      value_t s = scratch_[static_cast<std::size_t>(i)];
      auto cols = a_->row_cols(i);
      auto vals = a_->row_vals(i);
      for (std::size_t k = cols.size(); k-- > 0 && cols[k] > i;) {
        s -= vals[k] * z[static_cast<std::size_t>(cols[k])];
      }
      z[static_cast<std::size_t>(i)] = s / diag_[static_cast<std::size_t>(i)];
    }
  }
  const char* name() const override { return "symmetric-gs"; }

 private:
  const CsrMatrix* a_;
  std::vector<value_t> diag_;
  std::vector<value_t> scratch_;
};

class DistributedPreconditioner final : public Preconditioner {
 public:
  DistributedPreconditioner(const CsrMatrix& a,
                            const graph::Partition& partition,
                            const DistPreconditionerOptions& opt)
      : layout_(a, partition), opt_(opt), zeros_(a.rows(), 0.0) {
    DSOUTH_CHECK(opt.steps >= 1);
    name_ = std::string(dist::method_abbrev(opt.method)) + "(" +
            std::to_string(opt.steps) + " steps, P=" +
            std::to_string(layout_.num_ranks()) + ")";
  }

  void apply(std::span<const value_t> r, std::span<value_t> z) override {
    DSOUTH_CHECK(r.size() == zeros_.size());
    DSOUTH_CHECK(z.size() == zeros_.size());
    simmpi::Runtime rt(layout_.num_ranks(), opt_.run.machine);
    auto solver =
        dist::make_dist_solver(opt_.method, layout_, rt, r, zeros_, opt_.run);
    for (index_t k = 0; k < opt_.steps; ++k) solver->step();
    auto x = solver->gather_x();
    std::copy(x.begin(), x.end(), z.begin());
    comm_cost_ += rt.stats().comm_cost();
    model_time_ += rt.model_time_seconds();
  }

  const char* name() const override { return name_.c_str(); }
  double comm_cost() const override { return comm_cost_; }
  bool is_variable() const override {
    // The Southwell selections depend on the input residual (genuinely
    // variable), and even fixed-step Block Jacobi uses nonsymmetric local
    // GS sweeps — all three need the flexible-CG pairing.
    return true;
  }
  double model_time() const { return model_time_; }

 private:
  dist::DistLayout layout_;
  DistPreconditionerOptions opt_;
  std::vector<value_t> zeros_;
  std::string name_;
  double comm_cost_ = 0.0;
  double model_time_ = 0.0;
};

}  // namespace

std::unique_ptr<Preconditioner> make_identity_preconditioner() {
  return std::make_unique<IdentityPreconditioner>();
}

std::unique_ptr<Preconditioner> make_jacobi_preconditioner(
    const CsrMatrix& a) {
  return std::make_unique<JacobiPreconditioner>(a);
}

std::unique_ptr<Preconditioner> make_symmetric_gs_preconditioner(
    const CsrMatrix& a) {
  return std::make_unique<SymmetricGsPreconditioner>(a);
}

std::unique_ptr<Preconditioner> make_distributed_preconditioner(
    const CsrMatrix& a, const graph::Partition& partition,
    const DistPreconditionerOptions& opt) {
  return std::make_unique<DistributedPreconditioner>(a, partition, opt);
}

}  // namespace dsouth::krylov
