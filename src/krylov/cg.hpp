#pragma once

/// \file cg.hpp
/// Conjugate gradients with optional preconditioning, plus the flexible
/// (Polak–Ribière) variant needed when the preconditioner varies between
/// applications — which the Southwell preconditioners do, since their
/// relaxation *selection* depends on the input residual.

#include <span>
#include <vector>

#include "krylov/preconditioner.hpp"
#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace dsouth::krylov {

struct CgOptions {
  index_t max_iterations = 1000;
  /// Stop when ‖r‖₂ / ‖r⁰‖₂ <= rel_tolerance.
  value_t rel_tolerance = 1e-8;
  /// Use the flexible (Polak–Ribière) β. Required for variable
  /// preconditioners; run_pcg enables it automatically when the
  /// preconditioner reports is_variable().
  bool flexible = false;
};

struct CgResult {
  bool converged = false;
  index_t iterations = 0;
  std::vector<value_t> residual_history;  ///< ‖r_k‖₂, k = 0..iterations
  value_t final_relative_residual = 0.0;
};

/// Preconditioned CG for SPD systems; x holds the initial guess on entry
/// and the solution on return. `precond` may be null (plain CG).
CgResult run_pcg(const CsrMatrix& a, std::span<const value_t> b,
                 std::span<value_t> x, Preconditioner* precond = nullptr,
                 const CgOptions& opt = {});

}  // namespace dsouth::krylov
