#include "krylov/cg.hpp"

#include <cmath>

#include "sparse/vec.hpp"
#include "util/error.hpp"

namespace dsouth::krylov {

CgResult run_pcg(const CsrMatrix& a, std::span<const value_t> b,
                 std::span<value_t> x, Preconditioner* precond,
                 const CgOptions& opt) {
  DSOUTH_CHECK(a.rows() == a.cols());
  const auto n = static_cast<std::size_t>(a.rows());
  DSOUTH_CHECK(b.size() == n && x.size() == n);
  DSOUTH_CHECK(opt.rel_tolerance > 0.0);

  const bool flexible =
      opt.flexible || (precond != nullptr && precond->is_variable());

  std::vector<value_t> r(n), z(n), p(n), ap(n), z_prev;
  a.residual(b, x, r);
  CgResult result;
  const value_t r0 = sparse::norm2(r);
  result.residual_history.push_back(r0);
  if (r0 == 0.0) {
    result.converged = true;
    return result;
  }

  auto apply_precond = [&](std::span<const value_t> in,
                           std::span<value_t> out) {
    if (precond != nullptr) {
      precond->apply(in, out);
    } else {
      std::copy(in.begin(), in.end(), out.begin());
    }
  };

  apply_precond(r, z);
  p = z;
  value_t rz = sparse::dot(r, z);
  if (flexible) z_prev = z;

  for (index_t it = 0; it < opt.max_iterations; ++it) {
    a.spmv(p, ap);
    const value_t pap = sparse::dot(p, ap);
    DSOUTH_CHECK_MSG(pap > 0.0,
                     "non-positive curvature (pᵀAp = "
                         << pap << "); matrix not SPD or preconditioner "
                                   "broke conjugacy");
    const value_t alpha = rz / pap;
    sparse::axpy(alpha, p, x);
    sparse::axpy(-alpha, ap, r);
    const value_t rn = sparse::norm2(r);
    result.residual_history.push_back(rn);
    result.iterations = it + 1;
    if (rn <= opt.rel_tolerance * r0) {
      result.converged = true;
      break;
    }
    apply_precond(r, z);
    value_t beta;
    if (flexible) {
      // Polak–Ribière: β = rᵀ(z - z_prev) / rz_old — exact for a fixed
      // SPD preconditioner, and robust when it varies.
      value_t num = 0.0;
      for (std::size_t i = 0; i < n; ++i) num += r[i] * (z[i] - z_prev[i]);
      beta = num / rz;
      z_prev = z;
      rz = sparse::dot(r, z);
    } else {
      const value_t rz_new = sparse::dot(r, z);
      beta = rz_new / rz;
      rz = rz_new;
    }
    if (!(std::isfinite(beta))) beta = 0.0;  // restart direction
    if (beta < 0.0) beta = 0.0;              // safeguard (flexible only)
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  result.final_relative_residual = result.residual_history.back() / r0;
  return result;
}

}  // namespace dsouth::krylov
