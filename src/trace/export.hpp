#pragma once

/// \file export.hpp
/// Serializers for TraceLog: JSON Lines for scripting (jq/pandas) and
/// Chrome trace_event JSON for chrome://tracing / Perfetto. The schema is
/// documented in docs/observability.md.
///
/// Determinism: with default options both formats are a pure function of
/// the deterministic TraceLog fields, so two runs that are bit-identical
/// in simulation produce byte-identical files — the trace determinism
/// tests compare exporter output across execution backends directly.
/// `include_wall_clock` opts into the one non-deterministic field.

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace dsouth::trace {

struct TraceExportOptions {
  /// Emit the host wall-clock timestamp per event ("t_wall" / args.wall).
  /// Off by default: it is the only non-deterministic Event field.
  bool include_wall_clock = false;
  /// Free-form run label carried in the JSONL header line and used as the
  /// Chrome process name (e.g. "DS P=32 bone010p").
  std::string run_label;
};

/// JSON Lines: one header object, one object per event (in seq order), one
/// object per metric. See docs/observability.md for the field tables.
void write_jsonl(std::ostream& out, const TraceLog& log,
                 const TraceExportOptions& opt = {});

/// Incremental writer for Chrome trace_event JSON. Each add_run() becomes
/// one Chrome "process" (pid), with simulated ranks as threads (tid) and
/// the fence/runtime lane as tid = num_ranks; `ts` is modeled time in
/// microseconds. finish() closes the JSON document — the file is invalid
/// until then.
class ChromeTraceWriter {
 public:
  explicit ChromeTraceWriter(std::ostream& out);
  ~ChromeTraceWriter();  ///< calls finish() if the caller forgot

  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

  void add_run(const TraceLog& log, const TraceExportOptions& opt = {});

  /// Pid of the most recent add_run (-1 before the first). Lets callers
  /// interleave extra tracks into that run's process — the bench harness
  /// uses this to lay host-profiler spans alongside the modeled timeline.
  int last_pid() const { return next_pid_ - 1; }

  /// Metadata event naming thread `tid` of process `pid` (Perfetto track
  /// label). Names are JSON-escaped.
  void add_thread_name(int pid, int tid, const std::string& name);

  /// One complete ("ph":"X") span on (pid, tid): `ts_us`/`dur_us` are in
  /// Chrome's microsecond unit, whatever clock the caller attributes them
  /// to. Names are JSON-escaped.
  void add_span(int pid, int tid, const std::string& name, double ts_us,
                double dur_us);

  void finish();

 private:
  void emit(const std::string& json_object);

  std::ostream* out_;
  int next_pid_ = 0;
  bool any_event_ = false;
  bool finished_ = false;
};

/// One-run convenience wrapper around ChromeTraceWriter.
void write_chrome_trace(std::ostream& out, const TraceLog& log,
                        const TraceExportOptions& opt = {});

}  // namespace dsouth::trace
