#include "trace/metrics.hpp"

#include "util/error.hpp"

namespace dsouth::trace {

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
  }
  return "?";
}

MetricsRegistry::MetricsRegistry(int num_ranks) : num_ranks_(num_ranks) {
  DSOUTH_CHECK(num_ranks > 0);
}

MetricId MetricsRegistry::register_metric(std::string_view name,
                                          MetricKind kind) {
  DSOUTH_CHECK(!name.empty());
  const MetricId existing = find(name);
  if (existing != kInvalidMetric) {
    DSOUTH_CHECK_MSG(metrics_[static_cast<std::size_t>(existing)].kind == kind,
                     "metric '" << std::string(name)
                                << "' re-registered with a different kind");
    return existing;
  }
  metrics_.push_back(Metric{
      std::string(name), kind,
      std::vector<double>(static_cast<std::size_t>(num_ranks_), 0.0)});
  return static_cast<MetricId>(metrics_.size() - 1);
}

MetricId MetricsRegistry::find(std::string_view name) const {
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i].name == name) return static_cast<MetricId>(i);
  }
  return kInvalidMetric;
}

const std::string& MetricsRegistry::name(MetricId id) const {
  DSOUTH_CHECK(id >= 0 && static_cast<std::size_t>(id) < metrics_.size());
  return metrics_[static_cast<std::size_t>(id)].name;
}

MetricKind MetricsRegistry::kind(MetricId id) const {
  DSOUTH_CHECK(id >= 0 && static_cast<std::size_t>(id) < metrics_.size());
  return metrics_[static_cast<std::size_t>(id)].kind;
}

void MetricsRegistry::add(MetricId id, int rank, double v) {
  if (id == kInvalidMetric) return;
  DSOUTH_ASSERT(id >= 0 && static_cast<std::size_t>(id) < metrics_.size());
  DSOUTH_ASSERT(rank >= 0 && rank < num_ranks_);
  metrics_[static_cast<std::size_t>(id)]
      .slots[static_cast<std::size_t>(rank)] += v;
}

void MetricsRegistry::set(MetricId id, int rank, double v) {
  if (id == kInvalidMetric) return;
  DSOUTH_ASSERT(id >= 0 && static_cast<std::size_t>(id) < metrics_.size());
  DSOUTH_ASSERT(rank >= 0 && rank < num_ranks_);
  metrics_[static_cast<std::size_t>(id)]
      .slots[static_cast<std::size_t>(rank)] = v;
}

double MetricsRegistry::value(MetricId id, int rank) const {
  DSOUTH_CHECK(id >= 0 && static_cast<std::size_t>(id) < metrics_.size());
  DSOUTH_CHECK(rank >= 0 && rank < num_ranks_);
  return metrics_[static_cast<std::size_t>(id)]
      .slots[static_cast<std::size_t>(rank)];
}

const std::vector<double>& MetricsRegistry::per_rank(MetricId id) const {
  DSOUTH_CHECK(id >= 0 && static_cast<std::size_t>(id) < metrics_.size());
  return metrics_[static_cast<std::size_t>(id)].slots;
}

double MetricsRegistry::total(MetricId id) const {
  double sum = 0.0;
  for (double v : per_rank(id)) sum += v;
  return sum;
}

}  // namespace dsouth::trace
