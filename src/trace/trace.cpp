#include "trace/trace.hpp"

#include <chrono>

#include "util/error.hpp"

namespace dsouth::trace {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kPut:
      return "put";
    case EventKind::kFence:
      return "fence";
    case EventKind::kRelax:
      return "relax";
    case EventKind::kAbsorb:
      return "absorb";
    case EventKind::kCompute:
      return "compute";
    case EventKind::kFault:
      return "fault";
    case EventKind::kDeliver:
      return "deliver";
    case EventKind::kHop:
      return "hop";
    case EventKind::kElastic:
      return "elastic";
  }
  return "?";
}

namespace {
std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

Tracer::Tracer(int num_ranks, TraceOptions opt)
    : num_ranks_(num_ranks),
      opt_(opt),
      metrics_(num_ranks),
      lanes_(static_cast<std::size_t>(num_ranks)),
      wall_t0_ns_(steady_now_ns()) {
  DSOUTH_CHECK(num_ranks > 0);
  DSOUTH_CHECK(opt.ring_capacity > 0);
}

double Tracer::wall_now() const {
  return static_cast<double>(steady_now_ns() - wall_t0_ns_) * 1e-9;
}

void Tracer::record(int rank, EventKind kind, int peer, int tag, double a0,
                    double a1, std::uint64_t epoch, double t_model) {
  DSOUTH_ASSERT(rank >= 0 && rank < num_ranks_);
  Lane& lane = lanes_[static_cast<std::size_t>(rank)];
  Event e;
  e.kind = kind;
  e.rank = rank;
  e.peer = peer;
  e.tag = tag;
  e.epoch = epoch;
  e.a0 = a0;
  e.a1 = a1;
  e.t_model = t_model;
  e.t_wall = opt_.record_wall_clock ? wall_now() : 0.0;
  if (lane.count < opt_.ring_capacity) {
    if (lane.buf.size() < opt_.ring_capacity &&
        lane.buf.size() == lane.count) {
      lane.buf.push_back(e);  // storage still growing to capacity
    } else {
      lane.buf[(lane.head + lane.count) % lane.buf.size()] = e;
    }
    ++lane.count;
  } else {
    // Ring full: drop the oldest (deterministic — lane contents depend only
    // on this rank's program order).
    lane.buf[lane.head] = e;
    lane.head = (lane.head + 1) % lane.buf.size();
    ++lane.dropped;
  }
}

void Tracer::merge_lanes() {
  for (Lane& lane : lanes_) {
    for (std::size_t i = 0; i < lane.count; ++i) {
      Event e = lane.buf[(lane.head + i) % lane.buf.size()];
      e.seq = next_seq_++;
      merged_.push_back(e);
    }
    dropped_ += lane.dropped;
    lane.head = 0;
    lane.count = 0;
    lane.dropped = 0;
  }
}

void Tracer::end_epoch(std::uint64_t closed_epoch, double t_model_after,
                       double epoch_seconds, std::uint64_t epoch_msgs) {
  merge_lanes();
  Event e;
  e.kind = EventKind::kFence;
  e.rank = -1;
  e.epoch = closed_epoch;
  e.seq = next_seq_++;
  e.a0 = epoch_seconds;
  e.a1 = static_cast<double>(epoch_msgs);
  e.t_model = t_model_after;
  e.t_wall = opt_.record_wall_clock ? wall_now() : 0.0;
  merged_.push_back(e);
}

void Tracer::flush() { merge_lanes(); }

TraceLog Tracer::take_log() {
  TraceLog log(num_ranks_);
  log.events = std::move(merged_);
  log.metrics = std::move(metrics_);
  log.dropped_events = dropped_;
  merged_.clear();
  return log;
}

}  // namespace dsouth::trace
