#pragma once

/// \file trace.hpp
/// Deterministic structured event tracer for the simulated runtime and the
/// distributed solvers (docs/observability.md).
///
/// Design: each rank records events into its *own* bounded ring lane while
/// an epoch is in flight — the same one-thread-per-rank discipline the
/// simmpi Runtime uses for staging lanes, so recording never contends and
/// never perturbs the simulation. At every fence the lanes are merged into
/// the global event stream in (source rank, record order) order — exactly
/// the order the Runtime merges staged puts — which makes the merged stream
/// **bit-identical across execution backends and thread counts**. The only
/// non-deterministic field is the optional wall-clock timestamp, which the
/// exporters omit by default (export.hpp).
///
/// Overhead contract: tracing is attached by pointer
/// (Runtime::set_tracer); with no tracer attached every hook is an inlined
/// null-pointer test and the simulation's results, CommStats, and modeled
/// time are byte-identical to a build that never heard of tracing. With a
/// tracer attached, recording is an append to a preallocated-on-demand
/// per-rank ring (drop-oldest beyond `ring_capacity`, with a drop count).

#include <cstdint>
#include <vector>

#include "trace/metrics.hpp"

namespace dsouth::trace {

/// What happened. Solver-level kinds (relax/absorb) are recorded through
/// RankContext; runtime-level kinds (put/fence) by the Runtime itself.
enum class EventKind : std::uint8_t {
  kPut = 0,     ///< one-sided put staged (a0 = payload doubles, a1 = bytes)
  kFence = 1,   ///< epoch closed (a0 = epoch model seconds, a1 = epoch msgs)
  kRelax = 2,   ///< a rank relaxed its subdomain (a0 = rows, a1 = new ‖r‖²)
  kAbsorb = 3,  ///< a rank drained its window (a0 = msgs, a1 = payload dbls)
  /// Local computation charged to the machine model (a0 = flops, a1 = 0),
  /// recorded by Runtime::add_flops. Together with the put events this lets
  /// the analysis layer rebuild every per-rank epoch cost term of the α–β–γ
  /// model from the trace alone (src/analysis).
  kCompute = 4,
  /// A fault-injection action applied to a staged message at the fence
  /// (src/faults, docs/resilience.md), recorded by the Runtime into the
  /// *source* rank's lane. `peer` = destination, `tag` = action code
  /// (0 drop, 1 duplicate, 2 reorder, 3 corrupt, 4 truncate, 5 stall),
  /// a0 = the message's per-source send seq, a1 = action detail (extra
  /// epochs for reorder/stall, flipped-bit index for corrupt, delivered
  /// length for truncate, 0 otherwise).
  kFault = 5,
  /// A message matured into a destination window under an asynchronous
  /// delivery policy (simmpi/delivery.hpp), recorded by the Runtime into
  /// the *destination* rank's lane at the delivering fence. `peer` =
  /// source rank, `tag` = the message's simmpi::MsgTag as int, a0 =
  /// staleness (epochs between staging and delivery), a1 = payload
  /// doubles. Bulk-synchronous runs record none of these, keeping their
  /// traces byte-identical to pre-async builds.
  kDeliver = 6,
  /// One physical transfer under a node topology (simmpi/node_topology.hpp,
  /// DESIGN.md §13), recorded by the Runtime at the fence into the *paying*
  /// rank's lane. `peer` = physical destination rank, `tag` = hop kind
  /// (0 intra-node direct, 1 source → leader relay, 2 leader → leader
  /// inter-node, 3 leader → destination relay, 4 inter-node direct),
  /// a0 = modeled bytes of the hop, a1 = logical wire records it carries.
  /// Tier: tags 2 and 4 are inter-node, the rest intra-node. Topology-free
  /// runs record none of these, keeping their traces byte-identical to
  /// pre-node-aware builds.
  kHop = 7,
  /// An elastic checkpoint/recovery action (src/elastic, docs/resilience.md
  /// "Permanent failure and recovery"), recorded by the elastic driver into
  /// rank 0's lane at the step boundary where it acted. `tag` = action code
  /// (0 checkpoint taken, 1 permanent rank death detected, 2 state restored
  /// from checkpoint, 3 repartition applied), a0/a1 = action detail:
  /// checkpoint → bytes encoded / step, kill → dead rank / kill epoch,
  /// restore → restored step / restored epoch, repartition → dead rank /
  /// rows redistributed. Fault-free runs record none of these, keeping
  /// their traces byte-identical to pre-elastic builds.
  kElastic = 8,
};
inline constexpr int kNumEventKinds = 9;

/// Hop kinds carried in a kHop event's tag field.
inline constexpr int kHopIntraDirect = 0;  ///< same-node message
inline constexpr int kHopRelayUp = 1;      ///< source -> its node leader
inline constexpr int kHopInterLeader = 2;  ///< leader -> leader (aggregated)
inline constexpr int kHopRelayDown = 3;    ///< leader -> destination rank
inline constexpr int kHopInterDirect = 4;  ///< cross-node, routing off

/// True when a hop kind crosses the node boundary (pays inter-node α/β).
inline bool hop_is_inter(int hop_tag) {
  return hop_tag == kHopInterLeader || hop_tag == kHopInterDirect;
}

/// Returns "put"/"fence"/"relax"/"absorb"/"compute"/"fault"/"deliver"/"hop".
const char* event_kind_name(EventKind kind);

/// One trace record. All fields except `t_wall` are deterministic.
struct Event {
  EventKind kind = EventKind::kPut;
  std::int32_t rank = -1;  ///< recording rank; -1 for runtime-wide (fence)
  std::int32_t peer = -1;  ///< put: destination rank; otherwise -1
  std::int32_t tag = -1;   ///< put: simmpi::MsgTag as int; otherwise -1
  std::uint64_t epoch = 0;  ///< epoch in flight when recorded
  std::uint64_t seq = 0;    ///< global order, assigned at the fence merge
  double a0 = 0.0;          ///< kind-specific (see EventKind)
  double a1 = 0.0;          ///< kind-specific (see EventKind)
  double t_model = 0.0;  ///< modeled seconds at record time (deterministic)
  double t_wall = 0.0;   ///< host seconds since tracer start (NOT determ.)
};

/// Tracer knobs. `enabled` is consumed by the callers that own the tracer's
/// lifetime (dist::DistRunOptions, the benches' -trace flag); a constructed
/// Tracer is always live.
struct TraceOptions {
  bool enabled = false;
  /// Per-rank ring lane capacity (events held between two fences). Lanes
  /// drain at every fence, so this only bounds pathological epochs; drops
  /// are counted, deterministic, and reported in the export header.
  std::size_t ring_capacity = 4096;
  /// Stamp events with host wall-clock seconds. Recording is cheap but the
  /// values are non-deterministic; exporters omit them unless asked.
  bool record_wall_clock = true;
};

/// The merged result of a traced run (what DistRunResult carries and the
/// exporters consume).
struct TraceLog {
  int num_ranks = 0;
  std::vector<Event> events;  ///< fence-merged, globally ordered by `seq`
  MetricsRegistry metrics;    ///< final per-rank counter/gauge values
  std::uint64_t dropped_events = 0;  ///< ring overflows (0 in healthy runs)

  explicit TraceLog(int ranks) : num_ranks(ranks), metrics(ranks) {}
};

/// Per-rank ring-buffered event recorder with a deterministic fence merge.
/// Thread-safety contract (mirrors Runtime's): during an epoch at most one
/// thread records for a given rank; distinct ranks may record concurrently.
/// end_epoch()/flush() are single-caller, between epochs.
class Tracer {
 public:
  explicit Tracer(int num_ranks, TraceOptions opt = {});

  int num_ranks() const { return num_ranks_; }
  const TraceOptions& options() const { return opt_; }

  /// The metrics registry solvers and the runtime register into.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Record an event into `rank`'s lane. `epoch` and `t_model` come from
  /// the runtime (they are epoch-stable, hence safe to read mid-epoch).
  void record(int rank, EventKind kind, int peer, int tag, double a0,
              double a1, std::uint64_t epoch, double t_model);

  /// Merge all rank lanes into the global stream in (rank, record order)
  /// order, then append the fence event itself. Called by Runtime::fence().
  void end_epoch(std::uint64_t closed_epoch, double t_model_after,
                 double epoch_seconds, std::uint64_t epoch_msgs);

  /// Merge any events still sitting in rank lanes (the absorb phase after
  /// the final fence records there). Call once, at end of run.
  void flush();

  /// Events merged so far (valid between epochs).
  const std::vector<Event>& events() const { return merged_; }
  std::uint64_t dropped_events() const { return dropped_; }

  /// Move the merged stream + metrics out into a TraceLog.
  TraceLog take_log();

 private:
  /// Drop-oldest ring of events; storage grows on demand up to capacity so
  /// idle ranks cost nothing.
  struct Lane {
    std::vector<Event> buf;
    std::size_t head = 0;   // index of oldest element
    std::size_t count = 0;  // live elements
    std::uint64_t dropped = 0;
  };

  void merge_lanes();
  double wall_now() const;

  int num_ranks_;
  TraceOptions opt_;
  MetricsRegistry metrics_;
  std::vector<Lane> lanes_;
  std::vector<Event> merged_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t wall_t0_ns_ = 0;  // steady_clock at construction
};

}  // namespace dsouth::trace
