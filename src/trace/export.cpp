#include "trace/export.hpp"

#include <ostream>

#include "util/error.hpp"
#include "util/json.hpp"

namespace dsouth::trace {

using util::append_json_number;
using util::json_escape;

namespace {

void append_kv(std::string& out, const char* key, double v) {
  out += "\"";
  out += key;
  out += "\":";
  append_json_number(out, v);
}

void append_kv(std::string& out, const char* key, std::uint64_t v) {
  out += "\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void append_kv(std::string& out, const char* key, int v) {
  out += "\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void append_kv(std::string& out, const char* key, const std::string& v) {
  out += "\"";
  out += key;
  out += "\":\"";
  out += json_escape(v);
  out += "\"";
}

}  // namespace

void write_jsonl(std::ostream& out, const TraceLog& log,
                 const TraceExportOptions& opt) {
  std::string line;
  line.reserve(256);

  // Version history: 1 = PR-2 schema (put/fence/relax/absorb);
  // 2 = adds "compute" events (flops charged via Runtime::add_flops) and
  // the "simmpi.flops" counter, consumed by the analysis layer;
  // 3 = adds "fault" events (fault injection, src/faults);
  // 4 = adds "deliver" events (asynchronous delivery, simmpi/delivery.hpp);
  // 5 = adds "hop" events (node-aware routing, simmpi/node_topology.hpp).
  // The header advertises the lowest version whose features the capture
  // actually uses, so traces of fault-free bulk-synchronous runs stay
  // byte-identical to the version-2 schema.
  bool has_fault_events = false;
  bool has_deliver_events = false;
  bool has_hop_events = false;
  bool has_elastic_events = false;
  for (const Event& e : log.events) {
    if (e.kind == EventKind::kFault) has_fault_events = true;
    if (e.kind == EventKind::kDeliver) has_deliver_events = true;
    if (e.kind == EventKind::kHop) has_hop_events = true;
    if (e.kind == EventKind::kElastic) has_elastic_events = true;
  }
  line = has_elastic_events   ? "{\"type\":\"header\",\"version\":6,"
         : has_hop_events     ? "{\"type\":\"header\",\"version\":5,"
         : has_deliver_events ? "{\"type\":\"header\",\"version\":4,"
         : has_fault_events   ? "{\"type\":\"header\",\"version\":3,"
                              : "{\"type\":\"header\",\"version\":2,";
  append_kv(line, "num_ranks", log.num_ranks);
  line += ",";
  append_kv(line, "events", static_cast<std::uint64_t>(log.events.size()));
  line += ",";
  append_kv(line, "dropped_events", log.dropped_events);
  if (!opt.run_label.empty()) {
    line += ",";
    append_kv(line, "run", opt.run_label);
  }
  line += "}\n";
  out << line;

  for (const Event& e : log.events) {
    line = "{\"type\":\"event\",";
    append_kv(line, "kind", std::string(event_kind_name(e.kind)));
    line += ",";
    append_kv(line, "seq", e.seq);
    line += ",";
    append_kv(line, "epoch", e.epoch);
    line += ",";
    append_kv(line, "rank", e.rank);
    if (e.peer >= 0) {
      line += ",";
      append_kv(line, "peer", e.peer);
    }
    if (e.tag >= 0) {
      line += ",";
      append_kv(line, "tag", e.tag);
    }
    line += ",";
    append_kv(line, "t_model", e.t_model);
    line += ",";
    append_kv(line, "a0", e.a0);
    line += ",";
    append_kv(line, "a1", e.a1);
    if (opt.include_wall_clock) {
      line += ",";
      append_kv(line, "t_wall", e.t_wall);
    }
    line += "}\n";
    out << line;
  }

  const MetricsRegistry& m = log.metrics;
  for (std::size_t i = 0; i < m.size(); ++i) {
    const auto id = static_cast<MetricId>(i);
    line = "{\"type\":\"metric\",";
    append_kv(line, "name", m.name(id));
    line += ",";
    append_kv(line, "metric_kind", std::string(metric_kind_name(m.kind(id))));
    line += ",";
    append_kv(line, "total", m.total(id));
    line += ",\"per_rank\":[";
    const auto& slots = m.per_rank(id);
    for (std::size_t r = 0; r < slots.size(); ++r) {
      if (r) line += ",";
      append_json_number(line, slots[r]);
    }
    line += "]}\n";
    out << line;
  }
}

// ---------------------------------------------------------------------------
// Chrome trace_event
// ---------------------------------------------------------------------------

ChromeTraceWriter::ChromeTraceWriter(std::ostream& out) : out_(&out) {
  *out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

ChromeTraceWriter::~ChromeTraceWriter() {
  if (!finished_) finish();
}

void ChromeTraceWriter::emit(const std::string& json_object) {
  if (any_event_) *out_ << ",";
  *out_ << "\n" << json_object;
  any_event_ = true;
}

void ChromeTraceWriter::add_run(const TraceLog& log,
                                const TraceExportOptions& opt) {
  DSOUTH_CHECK(!finished_);
  const int pid = next_pid_++;
  const int runtime_tid = log.num_ranks;  // synthetic lane for fences

  std::string line;
  line.reserve(256);

  // Process / runtime-lane names so Perfetto labels the run.
  line = "{\"name\":\"process_name\",\"ph\":\"M\",";
  append_kv(line, "pid", pid);
  line += ",\"args\":{";
  append_kv(line, "name",
            opt.run_label.empty() ? std::string("traced run")
                                  : opt.run_label);
  line += "}}";
  emit(line);
  line = "{\"name\":\"thread_name\",\"ph\":\"M\",";
  append_kv(line, "pid", pid);
  line += ",";
  append_kv(line, "tid", runtime_tid);
  line += ",\"args\":{\"name\":\"runtime (fences)\"}}";
  emit(line);

  for (const Event& e : log.events) {
    const bool fence = e.kind == EventKind::kFence;
    // clear()+append instead of assignment: GCC 12's -Wrestrict misfires
    // on short const-char* assignments to a loop-carried string.
    line.clear();
    line += "{";
    append_kv(line, "name", std::string(event_kind_name(e.kind)));
    // Instant events, thread-scoped for rank events and process-scoped for
    // fences (Chrome requires a scope for ph:"i").
    line += fence ? ",\"ph\":\"i\",\"s\":\"p\"," : ",\"ph\":\"i\",\"s\":\"t\",";
    append_kv(line, "pid", pid);
    line += ",";
    append_kv(line, "tid", fence ? runtime_tid : static_cast<int>(e.rank));
    line += ",";
    append_kv(line, "ts", e.t_model * 1e6);  // Chrome ts is microseconds
    line += ",\"args\":{";
    append_kv(line, "epoch", e.epoch);
    line += ",";
    append_kv(line, "seq", e.seq);
    switch (e.kind) {
      case EventKind::kPut:
        line += ",";
        append_kv(line, "dest", static_cast<int>(e.peer));
        line += ",";
        append_kv(line, "tag", static_cast<int>(e.tag));
        line += ",";
        append_kv(line, "payload_doubles", e.a0);
        line += ",";
        append_kv(line, "bytes", e.a1);
        break;
      case EventKind::kFence:
        line += ",";
        append_kv(line, "epoch_seconds", e.a0);
        line += ",";
        append_kv(line, "epoch_msgs", e.a1);
        break;
      case EventKind::kRelax:
        line += ",";
        append_kv(line, "rows", e.a0);
        line += ",";
        append_kv(line, "new_norm2", e.a1);
        break;
      case EventKind::kAbsorb:
        line += ",";
        append_kv(line, "msgs", e.a0);
        line += ",";
        append_kv(line, "payload_doubles", e.a1);
        break;
      case EventKind::kCompute:
        line += ",";
        append_kv(line, "flops", e.a0);
        break;
      case EventKind::kFault:
        line += ",";
        append_kv(line, "dest", static_cast<int>(e.peer));
        line += ",";
        append_kv(line, "action", static_cast<int>(e.tag));
        line += ",";
        append_kv(line, "msg_seq", e.a0);
        line += ",";
        append_kv(line, "detail", e.a1);
        break;
      case EventKind::kDeliver:
        line += ",";
        append_kv(line, "src", static_cast<int>(e.peer));
        line += ",";
        append_kv(line, "tag", static_cast<int>(e.tag));
        line += ",";
        append_kv(line, "staleness", e.a0);
        line += ",";
        append_kv(line, "payload_doubles", e.a1);
        break;
      case EventKind::kHop:
        line += ",";
        append_kv(line, "dest", static_cast<int>(e.peer));
        line += ",";
        append_kv(line, "hop", static_cast<int>(e.tag));
        line += ",";
        append_kv(line, "bytes", e.a0);
        line += ",";
        append_kv(line, "records", e.a1);
        break;
      case EventKind::kElastic:
        line += ",";
        append_kv(line, "action", static_cast<int>(e.tag));
        line += ",";
        append_kv(line, "detail0", e.a0);
        line += ",";
        append_kv(line, "detail1", e.a1);
        break;
    }
    if (opt.include_wall_clock) {
      line += ",";
      append_kv(line, "wall", e.t_wall);
    }
    line += "}}";
    emit(line);

    // A counter track of per-epoch message volume — the ⟨m⟩ decay the
    // paper's argument is about, visible directly in Perfetto.
    if (fence) {
      line = "{\"name\":\"epoch messages\",\"ph\":\"C\",";
      append_kv(line, "pid", pid);
      line += ",";
      append_kv(line, "ts", e.t_model * 1e6);
      line += ",\"args\":{";
      append_kv(line, "msgs", e.a1);
      line += "}}";
      emit(line);
    }
  }

  // Final metric totals as one summary event at the end of the run.
  const MetricsRegistry& m = log.metrics;
  if (m.size() > 0) {
    const double ts_end =
        log.events.empty() ? 0.0 : log.events.back().t_model * 1e6;
    line = "{\"name\":\"metrics\",\"ph\":\"i\",\"s\":\"p\",";
    append_kv(line, "pid", pid);
    line += ",";
    append_kv(line, "tid", runtime_tid);
    line += ",";
    append_kv(line, "ts", ts_end);
    line += ",\"args\":{";
    for (std::size_t i = 0; i < m.size(); ++i) {
      const auto id = static_cast<MetricId>(i);
      if (i) line += ",";
      line += "\"";
      line += json_escape(m.name(id));
      line += "\":";
      append_json_number(line, m.total(id));
    }
    line += "}}";
    emit(line);
  }
}

void ChromeTraceWriter::add_thread_name(int pid, int tid,
                                        const std::string& name) {
  DSOUTH_CHECK(!finished_);
  std::string line = "{\"name\":\"thread_name\",\"ph\":\"M\",";
  append_kv(line, "pid", pid);
  line += ",";
  append_kv(line, "tid", tid);
  line += ",\"args\":{";
  append_kv(line, "name", name);
  line += "}}";
  emit(line);
}

void ChromeTraceWriter::add_span(int pid, int tid, const std::string& name,
                                 double ts_us, double dur_us) {
  DSOUTH_CHECK(!finished_);
  std::string line = "{";
  append_kv(line, "name", name);
  line += ",\"ph\":\"X\",";
  append_kv(line, "pid", pid);
  line += ",";
  append_kv(line, "tid", tid);
  line += ",";
  append_kv(line, "ts", ts_us);
  line += ",";
  append_kv(line, "dur", dur_us);
  line += "}";
  emit(line);
}

void ChromeTraceWriter::finish() {
  DSOUTH_CHECK(!finished_);
  *out_ << "\n]}\n";
  finished_ = true;
}

void write_chrome_trace(std::ostream& out, const TraceLog& log,
                        const TraceExportOptions& opt) {
  ChromeTraceWriter writer(out);
  writer.add_run(log, opt);
  writer.finish();
}

}  // namespace dsouth::trace
