#pragma once

/// \file metrics.hpp
/// Named per-rank counters and gauges for the observability layer
/// (docs/observability.md). Solvers and the runtime register metrics at
/// setup time; rank programs then bump their own rank's slot during an
/// epoch with no synchronization — the same one-thread-per-rank discipline
/// the simmpi Runtime relies on, so metric values are bit-identical across
/// execution backends.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dsouth::trace {

/// Handle returned by MetricsRegistry::register_metric. Invalid handles
/// (no tracer attached) are tolerated by the mutation API as no-ops so
/// call sites need no branching.
using MetricId = int;
inline constexpr MetricId kInvalidMetric = -1;

enum class MetricKind : std::uint8_t {
  kCounter,  ///< monotonically accumulated via add()
  kGauge,    ///< last-written value via set()
};

/// Returns "counter" or "gauge".
const char* metric_kind_name(MetricKind kind);

/// Registry of named per-rank metric slots.
///
/// Thread-safety contract: register_metric() must only be called while no
/// epoch is in flight (solver/runtime setup). add()/set() for rank p may be
/// called concurrently with add()/set() for any other rank; at most one
/// thread touches a given rank's slots at a time. Reads (value/total/
/// snapshot) are driver-side, between epochs.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(int num_ranks);

  int num_ranks() const { return num_ranks_; }

  /// Register (or look up) the metric named `name`. Idempotent: a second
  /// registration with the same name returns the existing id (the kind must
  /// match; mismatches throw CheckError).
  MetricId register_metric(std::string_view name, MetricKind kind);

  /// Id of an already-registered metric, or kInvalidMetric.
  MetricId find(std::string_view name) const;

  std::size_t size() const { return metrics_.size(); }
  const std::string& name(MetricId id) const;
  MetricKind kind(MetricId id) const;

  /// Counter increment for `rank`'s slot. No-op when id is kInvalidMetric.
  void add(MetricId id, int rank, double v);

  /// Gauge write for `rank`'s slot. No-op when id is kInvalidMetric.
  void set(MetricId id, int rank, double v);

  double value(MetricId id, int rank) const;
  const std::vector<double>& per_rank(MetricId id) const;

  /// Sum over ranks (counters; for gauges this is rarely meaningful but
  /// still defined).
  double total(MetricId id) const;

 private:
  struct Metric {
    std::string name;
    MetricKind kind;
    std::vector<double> slots;  // one per rank
  };

  int num_ranks_;
  std::vector<Metric> metrics_;
};

}  // namespace dsouth::trace
