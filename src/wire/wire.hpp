#pragma once

/// \file wire.hpp
/// Versioned, typed wire format for the distributed solvers' messages.
///
/// Every payload the dist/ solvers exchange is one of five record types;
/// before this layer each solver hand-rolled its layout as a raw
/// std::vector<double> with implicit field offsets (DESIGN.md §10). The
/// codec makes the layouts explicit and checked while keeping the encoded
/// bytes EXACTLY what the solvers always sent — layout v1 below is the
/// legacy format, so default-mode bench records and baselines are
/// byte-identical across the refactor.
///
/// Layout v1 (doubles; nb = boundary width of the directed channel):
///
///   record         | encoding                                | sender
///   ---------------|-----------------------------------------|----------
///   kGhostDelta    | [dx_0 .. dx_nb)                         | BJ, MCBGS
///   kNormUpdate    | [0, ‖r‖², dx_0 .. dx_nb)                | PS solve
///   kResidualNorm  | [1, ‖r‖²]                               | PS Epoch B
///   kSolveUpdate   | [0, ‖r‖², Γ², dx.. (nb), rb.. (nb)]     | DS solve
///   kCorrection    | [1, ‖r‖², Γ², rb.. (nb)]                | DS Epoch B
///
/// The leading 0/1 discriminator distinguishes the members of a decode
/// *family* — the set of record types one receiving channel can observe
/// (PS windows see kNormUpdate/kResidualNorm, DS windows see
/// kSolveUpdate/kCorrection, BJ/MCBGS windows only kGhostDelta, which is
/// headerless because its family has a single member).
///
/// Frames: the opt-in coalescing mode (comm_plan.hpp) packs several
/// records bound for one neighbor into a single physical message. A frame
/// is marked by a magic quiet-NaN first double (bit-exact compare; no
/// legitimate record starts with that bit pattern — discriminators are
/// 0/1 and Δx values are finite in any non-diverged run), followed by the
/// format version, the record count, and [type, length, body...] per
/// record. Decoding validates every length against the channel width, so
/// a stale or delayed frame can never be misparsed as a bare record or
/// vice versa.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "simmpi/stats.hpp"
#include "util/error.hpp"

namespace dsouth::wire {

/// Wire format version; bumped on any encoding change. Frames carry it
/// explicitly; bare records are implicitly v1 (their layout is frozen —
/// it is the byte-compatibility contract with the committed baselines).
inline constexpr int kWireVersion = 1;

/// Version advertised by sequenced envelopes (resilient mode, below).
inline constexpr int kWireVersionSequenced = 2;

// ---------------------------------------------------------------------------
// Structured decode errors.

/// Why a payload was rejected. Fault-injection tests and the
/// `dsouth-analyze -check` gate assert on the *reason* a corrupted frame
/// was refused, not just that it threw (docs/resilience.md).
enum class DecodeErrorKind : int {
  kTruncated = 0,        ///< payload shorter than the declared content
  kBadDiscriminator,     ///< leading 0/1 (or envelope magic) mismatch
  kBadLength,            ///< length field inconsistent with channel width
  kBadVersion,           ///< frame/envelope version out of range
  kBadType,              ///< frame entry names an unknown record type
  kBadCount,             ///< non-integral count/seq field
  kTrailing,             ///< frame walked clean but left extra doubles
  kBadChecksum,          ///< envelope checksum mismatch (bit corruption)
};

const char* decode_error_kind_name(DecodeErrorKind k);

/// Thrown by every decode-path validation in this file. Derives from
/// util::CheckError so callers that treat malformed payloads as plain
/// check failures keep working; resilience-aware callers catch it and
/// read the structured reason.
class DecodeError : public util::CheckError {
 public:
  DecodeError(DecodeErrorKind kind, std::size_t offset,
              const std::string& what)
      : util::CheckError(what), kind_(kind), offset_(offset) {}

  DecodeErrorKind kind() const { return kind_; }
  /// Offset of the offending field, in doubles from the payload start.
  std::size_t offset() const { return offset_; }

 private:
  DecodeErrorKind kind_;
  std::size_t offset_;
};

[[noreturn]] void throw_decode_error(DecodeErrorKind kind, std::size_t offset,
                                     const std::string& detail);

enum class RecordType : int {
  kGhostDelta = 0,    ///< boundary Δx only (BJ / MCBGS solve)
  kNormUpdate = 1,    ///< ‖r‖² + boundary Δx (PS solve)
  kResidualNorm = 2,  ///< ‖r‖² only (PS explicit residual update)
  kSolveUpdate = 3,   ///< ‖r‖², Γ², Δx, exact boundary residuals (DS solve)
  kCorrection = 4,    ///< ‖r‖², Γ², exact boundary residuals (DS Epoch B)
};
inline constexpr int kNumRecordTypes = 5;

/// The record types one receiving channel can observe. Determines how a
/// bare (headerless-or-discriminated) payload is decoded.
enum class Family : int {
  kDelta = 0,     ///< {kGhostDelta}
  kNorm = 1,      ///< {kNormUpdate, kResidualNorm}
  kEstimate = 2,  ///< {kSolveUpdate, kCorrection}
};

const char* record_type_name(RecordType t);

/// The simmpi tag a record travels under (Table 3's solve vs explicit-
/// residual breakdown).
simmpi::MsgTag tag_of(RecordType t);

Family family_of(RecordType t);

/// Encoded size in doubles for a record of type `t` on a channel whose
/// outgoing boundary width is `nb`.
std::size_t encoded_doubles(RecordType t, std::size_t nb);

/// A decoded record. The spans alias the decoded payload buffer — valid
/// as long as the message it came from.
struct Record {
  RecordType type = RecordType::kGhostDelta;
  double norm2 = 0.0;   ///< sender's ‖r‖² (kNormUpdate/kSolveUpdate: new)
  double gamma2 = 0.0;  ///< sender's Γ² estimate of the receiver (DS only)
  std::span<const double> dx;  ///< boundary Δx (empty if the type has none)
  std::span<const double> rb;  ///< exact boundary residuals (DS types)
};

/// Encode-in-place handle: begin_record() writes the fixed header fields
/// into `out` and hands back the variable segments for the caller to
/// gather boundary values into directly (no intermediate arrays).
struct MutableRecord {
  std::span<double> dx;
  std::span<double> rb;
};

/// Write the v1 header of a `t` record into `out` (which must be exactly
/// encoded_doubles(t, nb) long) and return the dx/rb segments to fill.
/// The caller must write every element of the returned spans.
MutableRecord begin_record(RecordType t, double norm2, double gamma2,
                           std::span<double> out, std::size_t nb);

/// Decode a single bare (non-frame) record of `family` received on a
/// channel of incoming width `nb`. Checks the discriminator and the exact
/// payload length — malformed data throws DecodeError, never misparses.
Record decode_record(Family family, std::span<const double> payload,
                     std::size_t nb);

// ---------------------------------------------------------------------------
// Frames (coalesced physical messages).

/// Frame magic: a specific quiet NaN, compared bit-exactly.
inline constexpr std::uint64_t kFrameMagicBits = 0x7ff8'd500'57e1'1ed1ULL;

inline double frame_magic() { return std::bit_cast<double>(kFrameMagicBits); }

/// True when `payload` is a coalesced frame (magic first double).
inline bool is_frame(std::span<const double> payload) {
  return payload.size() >= 3 &&
         std::bit_cast<std::uint64_t>(payload[0]) == kFrameMagicBits;
}

inline constexpr std::size_t kFrameHeaderDoubles = 3;  ///< magic, ver, count
inline constexpr std::size_t kFrameEntryDoubles = 2;   ///< type, length

/// Total doubles of a frame holding records of the given encoded lengths.
std::size_t frame_doubles(std::span<const std::size_t> record_lengths);

/// Serialize `count` records (concatenated v1 encodings in `bodies`, with
/// per-record types/lengths) into `out` as one frame. `out` must be
/// exactly frame_doubles(lengths) long.
void encode_frame(std::span<const RecordType> types,
                  std::span<const std::size_t> lengths,
                  std::span<const double> bodies, std::span<double> out);

/// Decode every record of a physical payload — a bare record of `family`
/// or a frame — invoking fn(const Record&) per record in send order.
/// Frame entries are validated (version, type, per-record length against
/// `nb`, total size) before fn sees them.
template <typename Fn>
void for_each_record(Family family, std::span<const double> payload,
                     std::size_t nb, Fn&& fn);

// ---------------------------------------------------------------------------
// Sequenced envelopes (wire v2, resilient mode — docs/resilience.md).
//
// Under fault injection a receiver must detect duplicated, stale,
// truncated, and bit-corrupted payloads. The envelope wraps one v1 record
// in a fixed 5-double header:
//
//   [magic, version=2, seq, inner_len, checksum, body...]
//
// `magic` is a quiet NaN distinct from the frame magic (bit-exact
// compare); `seq` is the per-channel send counter the receiver gates
// duplicates/staleness on; `inner_len` pins the body length so
// truncation is detected even when the truncated payload happens to be a
// plausible record size; `checksum` is FNV-1a64 over the byte patterns
// of seq, inner_len, and every body double — any single-bit flip in
// those fields (or in the checksum itself) is detected. Envelopes are
// opt-in per channel (ChannelSet::set_sequencing) and never appear on
// the default path, so v1 byte layouts are untouched.

/// Envelope magic: a quiet NaN one ULP away from the frame magic.
inline constexpr std::uint64_t kEnvelopeMagicBits = 0x7ff8'd500'57e1'1ed2ULL;

inline double envelope_magic() {
  return std::bit_cast<double>(kEnvelopeMagicBits);
}

inline constexpr std::size_t kEnvelopeDoubles = 5;

/// True when `payload` leads with the envelope magic.
inline bool is_envelope(std::span<const double> payload) {
  return payload.size() >= kEnvelopeDoubles &&
         std::bit_cast<std::uint64_t>(payload[0]) == kEnvelopeMagicBits;
}

/// A validated envelope: the channel sequence number and the body span
/// (aliasing the payload — valid as long as the message it came from).
struct EnvelopeView {
  std::uint64_t seq = 0;
  std::span<const double> body;
};

/// Write the envelope header (magic, version, seq, inner length) into
/// `out` and return the body span for the caller to encode the record
/// into. The checksum slot is left unsealed: call seal_envelope(out)
/// after the body is fully written (spans from stage() stay valid until
/// the fence, so sealing may happen at channel flush).
std::span<double> begin_envelope(std::span<double> out, std::uint64_t seq);

/// Compute and store the checksum of a fully-written envelope.
void seal_envelope(std::span<double> out);

/// Validate magic, version, seq/length integrity, and checksum; returns
/// the seq and body. Throws DecodeError with the rejection reason.
EnvelopeView decode_envelope(std::span<const double> payload);

// ---------------------------------------------------------------------------
// Forwarded-record frames (node-aware routing — DESIGN.md §13,
// docs/communication.md).
//
// Node-aware routing aggregates every record crossing one ordered node
// pair (and sharing a MsgTag) into a single leader → leader physical
// message. The frame must carry each record's original (src, dst) channel
// without paying per-record header bytes — otherwise aggregation saves
// messages but not bytes. The trick is that the channel list of a node
// pair is *static* (derivable from the CommPlan + NodeTopology, see
// NodeCommPlan in comm_plan.hpp), identical on both leaders, and in a
// deterministic order — so the frame only needs a presence bitmap over
// that shared list:
//
//   [magic, bitmap_word_0 .. bitmap_word_{W-1}, body .. body]
//
// W = ceil(plan_channels / 64); bit i of the bitmap (word i/64, bit i%64,
// stored as raw uint64 bit patterns) marks channel i of the node plan as
// present, and bodies follow in ascending channel order, at most one per
// channel per frame. Bodies are ordinary physical payloads (bare v1
// records, sequenced envelopes, or coalesced frames) and are
// self-delimiting given the channel's decode family and width, so no
// length fields are needed either. Overhead is 8(1 + W) bytes per frame
// against 16 bytes of message header saved per aggregated record: a
// 3-record frame on a ≤64-channel pair already shrinks inter-node bytes,
// and the runtime ships 1-record groups bare (byte-identical cost) so
// aggregation never costs more than direct sends.

/// Forward-frame magic: a quiet NaN one ULP past the envelope magic.
inline constexpr std::uint64_t kForwardMagicBits = 0x7ff8'd500'57e1'1ed3ULL;

inline double forward_magic() {
  return std::bit_cast<double>(kForwardMagicBits);
}

/// True when `payload` leads with the forward-frame magic.
inline bool is_forward_frame(std::span<const double> payload) {
  return !payload.empty() &&
         std::bit_cast<std::uint64_t>(payload[0]) == kForwardMagicBits;
}

/// Bitmap words needed for a node-pair channel list of `plan_channels`.
inline std::size_t forward_bitmap_words(std::size_t plan_channels) {
  return (plan_channels + 63) / 64;
}

/// Total doubles of a forward frame: magic + bitmap + concatenated bodies.
inline std::size_t forward_frame_doubles(std::size_t plan_channels,
                                         std::size_t total_body_doubles) {
  return 1 + forward_bitmap_words(plan_channels) + total_body_doubles;
}

/// One record in a forward frame: its index into the node pair's static
/// channel list (NodeCommPlan order) and its physical payload.
struct ForwardEntry {
  std::size_t channel = 0;
  std::span<const double> body;
};

/// Serialize `entries` (strictly ascending channel indices, each
/// < plan_channels) into `out`, which must be exactly
/// forward_frame_doubles(plan_channels, sum of body sizes) long.
void encode_forward_frame(std::size_t plan_channels,
                          std::span<const ForwardEntry> entries,
                          std::span<double> out);

/// Length in doubles of the single physical body at the head of `rest`,
/// for a channel decoding `family` records of incoming width `nb` — the
/// self-delimiting rule forward frames rely on: envelopes declare their
/// body length, coalesced frames walk their entry headers, bare records
/// are sized by (family, discriminator, nb). Throws DecodeError when the
/// head is malformed or `rest` is shorter than the computed length.
std::size_t forwarded_body_doubles(Family family, std::size_t nb,
                                   std::span<const double> rest);

/// Walk a forward frame, invoking fn(const ForwardEntry&) per present
/// channel in ascending channel order. `body_len(channel, rest)` returns
/// the size of that channel's body at the head of `rest` (compose
/// forwarded_body_doubles with the channel's family/width — tests and
/// docs/communication.md's worked example do exactly that). Validates the
/// magic, bitmap range, and that the bodies consume the payload exactly.
template <typename LenFn, typename Fn>
void for_each_forwarded(std::span<const double> frame,
                        std::size_t plan_channels, LenFn&& body_len, Fn&& fn);

// ---------------------------------------------------------------------------
// Tenant frames (batched multi-tenant serving — DESIGN.md §14,
// docs/serving.md).
//
// The batch coordinator (dist/batch.hpp) runs B tenant systems — same
// sparsity, different right-hand sides/coefficients — through one runtime,
// and co-scheduled tenants that stage to the same neighbor in the same
// epoch share a single physical put per (peer, tag). Each body keeps its
// tenant's own physical encoding untouched — a bare v1 record, a coalesced
// frame, or a sequenced envelope — so per-tenant decoding is exactly the
// unbatched path; the tenant frame adds only the demux key:
//
//   [magic, version=1, count, {tenant, body_len, body...} × count]
//
// Unlike coalesced frames (one channel, one decode family), a tenant frame
// multiplexes *different logical channels* over one physical message, so
// each entry carries an explicit length: the receiver cannot size body i
// without decoding it as tenant i's family, and the demux must be able to
// skip bodies while dispatching. Entries appear in tenant-schedule order,
// preserving each tenant's own send order — the order the unbatched run
// would have delivered in. A lone entry still ships framed (unlike
// coalescing's bare-single rule): dropping the header would drop the
// tenant id. B = 1 byte-identity is instead achieved one level up — the
// batch coordinator with a single tenant delegates to the unbatched
// driver outright (dist/batch.hpp).

/// Tenant-frame magic: a quiet NaN one ULP past the forward magic.
inline constexpr std::uint64_t kTenantMagicBits = 0x7ff8'd500'57e1'1ed4ULL;

inline double tenant_magic() {
  return std::bit_cast<double>(kTenantMagicBits);
}

inline constexpr std::size_t kTenantHeaderDoubles = 3;  ///< magic, ver, count
inline constexpr std::size_t kTenantEntryDoubles = 2;   ///< tenant, length

/// True when `payload` leads with the tenant-frame magic.
inline bool is_tenant_frame(std::span<const double> payload) {
  return payload.size() >= kTenantHeaderDoubles &&
         std::bit_cast<std::uint64_t>(payload[0]) == kTenantMagicBits;
}

/// One record in a tenant frame: the owning tenant's index in the batch
/// and its physical payload (bare record, coalesced frame, or envelope —
/// the span aliases the frame, valid as long as the message it came from).
struct TenantEntry {
  int tenant = 0;
  std::span<const double> body;
};

/// Total doubles of a tenant frame holding bodies of the given lengths.
std::size_t tenant_frame_doubles(std::span<const std::size_t> body_lengths);

/// Serialize `entries` (any tenant order; bodies copied verbatim) into
/// `out`, which must be exactly tenant_frame_doubles(lengths) long.
void encode_tenant_frame(std::span<const TenantEntry> entries,
                         std::span<double> out);

/// Walk a tenant frame, invoking fn(const TenantEntry&) per entry in frame
/// order. Validates the magic, version, count, tenant ids, entry lengths
/// against the frame size, and that the entries consume the payload
/// exactly; throws DecodeError with the rejection reason. Bodies are NOT
/// decoded — dispatch each to its tenant's ordinary decode path.
template <typename Fn>
void for_each_tenant(std::span<const double> frame, Fn&& fn);

// ---------------------------------------------------------------------------
// Implementation details.

namespace detail {
/// Decode one record whose type is already known (frame entries). Checks
/// body.size() == encoded_doubles(type, nb).
Record decode_typed(RecordType t, std::span<const double> body,
                    std::size_t nb);
/// Validate a frame header and return the record count.
std::size_t check_frame_header(std::span<const double> payload);
/// Validate one frame entry header at `off`; returns (type, length).
struct FrameEntry {
  RecordType type;
  std::size_t length;
};
FrameEntry check_frame_entry(std::span<const double> payload,
                             std::size_t off, std::size_t nb);
/// Validate that a fully-walked frame consumed the whole payload.
void check_frame_end(std::span<const double> payload, std::size_t off);
/// Validate a tenant-frame header and return the entry count.
std::size_t check_tenant_header(std::span<const double> payload);
/// Validate one tenant entry header at `off`; returns (tenant, length)
/// with the body checked to fit inside the payload.
struct TenantEntryHeader {
  int tenant;
  std::size_t length;
};
TenantEntryHeader check_tenant_entry(std::span<const double> payload,
                                     std::size_t off);
}  // namespace detail

template <typename Fn>
void for_each_record(Family family, std::span<const double> payload,
                     std::size_t nb, Fn&& fn) {
  if (!is_frame(payload)) {
    fn(decode_record(family, payload, nb));
    return;
  }
  const std::size_t count = detail::check_frame_header(payload);
  std::size_t off = kFrameHeaderDoubles;
  for (std::size_t i = 0; i < count; ++i) {
    const auto entry = detail::check_frame_entry(payload, off, nb);
    off += kFrameEntryDoubles;
    fn(detail::decode_typed(entry.type, payload.subspan(off, entry.length),
                            nb));
    off += entry.length;
  }
  detail::check_frame_end(payload, off);
}

template <typename Fn>
void for_each_tenant(std::span<const double> frame, Fn&& fn) {
  const std::size_t count = detail::check_tenant_header(frame);
  std::size_t off = kTenantHeaderDoubles;
  for (std::size_t i = 0; i < count; ++i) {
    const auto entry = detail::check_tenant_entry(frame, off);
    off += kTenantEntryDoubles;
    fn(TenantEntry{entry.tenant, frame.subspan(off, entry.length)});
    off += entry.length;
  }
  detail::check_frame_end(frame, off);
}

template <typename LenFn, typename Fn>
void for_each_forwarded(std::span<const double> frame,
                        std::size_t plan_channels, LenFn&& body_len,
                        Fn&& fn) {
  const std::size_t words = forward_bitmap_words(plan_channels);
  if (frame.size() < 1 + words) {
    throw_decode_error(DecodeErrorKind::kTruncated, 0,
                       "forward frame shorter than its bitmap");
  }
  if (!is_forward_frame(frame)) {
    throw_decode_error(DecodeErrorKind::kBadDiscriminator, 0,
                       "forward frame magic mismatch");
  }
  std::size_t off = 1 + words;
  for (std::size_t c = 0; c < plan_channels; ++c) {
    const auto word = std::bit_cast<std::uint64_t>(frame[1 + c / 64]);
    if (((word >> (c % 64)) & 1ULL) == 0) continue;
    const std::size_t len = body_len(c, frame.subspan(off));
    if (off + len > frame.size()) {
      throw_decode_error(DecodeErrorKind::kTruncated, off,
                         "forward frame body truncated");
    }
    fn(ForwardEntry{c, frame.subspan(off, len)});
    off += len;
  }
  if (off != frame.size()) {
    throw_decode_error(DecodeErrorKind::kTrailing, off,
                       "forward frame has trailing doubles");
  }
  // Bits past plan_channels in the last word must be clear (a set stray
  // bit means the sender and receiver disagree on the channel list).
  if (plan_channels % 64 != 0 && words > 0) {
    const auto last = std::bit_cast<std::uint64_t>(frame[words]);
    if ((last >> (plan_channels % 64)) != 0) {
      throw_decode_error(DecodeErrorKind::kBadCount, words,
                         "forward frame bitmap has bits past the plan");
    }
  }
}

}  // namespace dsouth::wire
