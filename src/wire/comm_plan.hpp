#pragma once

/// \file comm_plan.hpp
/// Precomputed communication plans and per-neighbor staging channels.
///
/// A CommPlan is the static half of a rank's communication: who its
/// neighbors are and the directed boundary widths of each channel. It is
/// computed once at layout time (DistLayout owns one) and shared by every
/// solver run on that layout.
///
/// A ChannelSet is the dynamic half: one per (solver, rank), it stages
/// typed wire records (wire.hpp) to the rank's peers. Records encode
/// in place — directly into the runtime's pooled staging buffer in direct
/// mode, or into the channel's persistent per-peer buffer in coalescing
/// mode — so the solver hot paths perform no heap allocation per epoch
/// once buffers are warm.
///
/// Coalescing (DistRunOptions::coalesce_messages): all records a rank
/// stages to one peer within a put phase ship as a single physical
/// message. A group of one record is sent in the bare v1 encoding —
/// byte-identical to direct mode — and only groups of two or more are
/// framed (wire.hpp). The paper's bulk-synchronous solvers stage at most
/// one record per (neighbor, epoch) — each protocol phase already merges
/// everything it knows into one compound record — so for them coalescing
/// is provably behavior-preserving and the logical/physical split it
/// reports (CommStats) *measures* that per-pair minimality; synthetic
/// multi-record traffic (tests, micro-benches) shows the strict physical
/// reduction.
///
/// Thread-safety: a ChannelSet belongs to one rank and is only touched by
/// the thread driving that rank's phase (the ExecutionBackend discipline,
/// simmpi/execution.hpp).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "simmpi/node_topology.hpp"
#include "simmpi/rank_context.hpp"
#include "wire/wire.hpp"

namespace dsouth::wire {

/// Static per-rank communication plan: the peer list with directed
/// channel widths, in the deterministic neighbor order the solvers
/// iterate (ascending peer rank — dist/layout.hpp).
class CommPlan {
 public:
  struct Peer {
    int rank = -1;               ///< peer rank id
    std::size_t send_width = 0;  ///< doubles per boundary segment we send
    std::size_t recv_width = 0;  ///< doubles per boundary segment we receive
  };

  CommPlan() = default;
  explicit CommPlan(std::vector<std::vector<Peer>> peers_per_rank)
      : peers_(std::move(peers_per_rank)) {}

  int num_ranks() const { return static_cast<int>(peers_.size()); }
  std::span<const Peer> peers(int rank) const;

  /// Largest single-record encoding any rank sends (buffer sizing hint).
  std::size_t max_record_doubles() const;

 private:
  std::vector<std::vector<Peer>> peers_;
};

/// The node-level view of a CommPlan under a two-level topology
/// (simmpi/node_topology.hpp): for every ordered node pair (X, Y), the
/// static list of directed rank channels crossing it, in ascending
/// (src, dst) order. This list is the shared header of the forward-frame
/// format (wire.hpp): both leaders derive the identical list from the
/// identical plan + topology, so an aggregated frame only needs a presence
/// bitmap over it to name each record's original channel. Same-node
/// channels never appear (they are not forwarded). Computed once at
/// layout time (DistLayout owns one next to its CommPlan).
class NodeCommPlan {
 public:
  struct Channel {
    int src = -1;            ///< original source rank
    int dst = -1;            ///< original destination rank
    std::size_t width = 0;   ///< src's send width on the channel (doubles)
  };

  NodeCommPlan() = default;
  NodeCommPlan(const CommPlan& plan, const simmpi::NodeTopology& topo);

  int num_nodes() const { return num_nodes_; }

  /// Channels crossing (src_node -> dst_node), ascending (src, dst).
  std::span<const Channel> channels(int src_node, int dst_node) const;

  /// Index of (src, dst) within channels(src_node, dst_node) — the bit a
  /// forward frame sets for that channel — or -1 when the plan has no such
  /// channel.
  int channel_index(int src_node, int dst_node, int src, int dst) const;

  /// Dense num_nodes × num_nodes channel counts (row-major), the shape
  /// the runtime needs to charge forward-frame bitmap words without
  /// depending on this layer (Runtime::set_node_topology).
  std::vector<std::uint32_t> pair_channel_counts() const;

 private:
  int num_nodes_ = 0;
  std::vector<std::vector<Channel>> pairs_;  ///< dense, src_node-major
};

/// Per-rank staging facade over the plan. open() hands out encode-in-place
/// segments; flush() ships whatever coalescing buffered.
class ChannelSet {
 public:
  ChannelSet(const CommPlan& plan, int rank);

  /// Toggle coalescing. Must be called between epochs (checked: no
  /// buffered records). Mutually exclusive with sequencing.
  void set_coalescing(bool on);
  bool coalescing() const { return coalesce_; }

  /// Toggle sequenced envelopes (wire v2, resilient mode). When on, every
  /// record ships wrapped in an envelope carrying a per-peer monotonically
  /// increasing sequence number and a checksum (wire.hpp), which the
  /// receiving solver uses to reject duplicated/stale/corrupted payloads
  /// (docs/resilience.md). Envelope checksums are sealed at flush() —
  /// call flush() at the end of every put phase that used open(), exactly
  /// as in coalescing mode. Mutually exclusive with coalescing (an
  /// enveloped frame would need per-frame and per-record sequencing; the
  /// resilient path keeps one record per physical message instead).
  void set_sequencing(bool on);
  bool sequencing() const { return sequence_; }

  /// Envelopes sent so far to peer `k` (== the next sequence number).
  std::uint64_t sent_seq(std::size_t k) const;

  /// Restore peer `k`'s envelope counter from a checkpoint
  /// (DistStationarySolver::restore_state). Call only between put phases —
  /// an unsealed envelope (pending flush) would already have consumed the
  /// old counter.
  void set_sent_seq(std::size_t k, std::uint64_t seq);

  /// Toggle batch-sink staging (batched multi-tenant serving,
  /// dist/batch.hpp). While on, open() buffers every record — including
  /// sequenced envelopes, whose checksums are sealed at flush() — and
  /// flush() ships nothing: the buffered records wait for ship_batch(),
  /// which merges the staging of all co-scheduled tenants into one tenant
  /// frame per (peer, tag). Must be toggled between epochs (checked: no
  /// buffered records). Mutually exclusive with coalescing — the tenant
  /// frame IS the batching layer's coalescing (it subsumes the per-peer
  /// merge), so the coordinator never enables both.
  void set_batch_staging(bool on);
  bool batch_staging() const { return batch_; }

  /// Ship everything the co-scheduled tenants buffered: for each peer and
  /// each MsgTag (tag-enum order), the buffered records of every set — in
  /// `sets` order, preserving each tenant's own send order — merge into
  /// ONE physical tenant frame (wire.hpp) counted as one logical record
  /// per entry, with each entry's records/doubles attributed to its tenant
  /// (RankContext::add_tenant_records). A lone entry still ships framed:
  /// the receiver needs the tenant id to demux (B = 1 byte-identity is the
  /// coordinator's job — it bypasses batching entirely). All sets must be
  /// batch-staged views of the same (plan, rank); `tenants[i]` is the
  /// batch index of `sets[i]`. Buffers are cleared on return.
  static void ship_batch(simmpi::RankContext& ctx,
                         std::span<ChannelSet* const> sets,
                         std::span<const int> tenants);

  /// Begin a record of type `t` addressed to peer index `k` (plan order ==
  /// layout neighbor order). Direct mode: the record is staged into the
  /// runtime immediately (one physical put, encoded in place). Coalescing
  /// mode: the record is buffered until flush(). Returned spans are valid
  /// until this ChannelSet's next open()/flush() in coalescing mode, and
  /// until the runtime's next fence() in direct mode; the caller must
  /// write every element.
  MutableRecord open(simmpi::RankContext& ctx, std::size_t k, RecordType t,
                     double norm2 = 0.0, double gamma2 = 0.0);

  /// Ship buffered records, and seal any unsealed envelope checksums
  /// (sequencing mode — the staged spans stay valid until the fence, so
  /// sealing here covers everything the phase encoded after open()).
  /// No-op in plain direct mode / for empty buffers.
  /// One record goes out bare (byte-identical to direct mode); two or
  /// more go out as one frame counted as N logical messages. All records
  /// buffered for one peer must share a MsgTag (mixed-tag frames would
  /// make the per-tag Table 3 accounting ambiguous). Call at the end of
  /// every put phase that used open().
  void flush(simmpi::RankContext& ctx);

  /// Records currently buffered for peer `k` (coalescing mode only).
  std::size_t buffered(std::size_t k) const;

  /// True when no put phase is in flight: nothing buffered for any peer
  /// and no envelope awaiting its flush() seal. Checkpointing requires an
  /// idle channel set (solver_base.hpp capture_state).
  bool idle() const;

 private:
  struct PeerBuffer {
    std::vector<double> bodies;  ///< concatenated v1 encodings
    std::vector<RecordType> types;
    std::vector<std::size_t> lengths;
  };

  const CommPlan* plan_;
  int rank_;
  bool coalesce_ = false;
  bool sequence_ = false;
  bool batch_ = false;
  std::vector<PeerBuffer> buffers_;  ///< indexed like peers(rank_)
  std::vector<std::uint64_t> send_seq_;    ///< per-peer envelope counters
  std::vector<std::span<double>> pending_;  ///< envelopes awaiting seal
};

}  // namespace dsouth::wire
