#include "wire/wire.hpp"

#include <sstream>

#include "util/error.hpp"

namespace dsouth::wire {

namespace {
constexpr double kSolveDiscriminator = 0.0;
constexpr double kResidualDiscriminator = 1.0;

/// FNV-1a64 over the byte patterns of a run of doubles. Per-byte FNV
/// steps are injective in the running hash, so flipping any single bit of
/// the hashed fields changes the digest.
std::uint64_t fnv1a64(std::uint64_t h, std::span<const double> values) {
  for (double v : values) {
    std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) {
      h ^= bits & 0xffULL;
      h *= 0x100000001b3ULL;
      bits >>= 8;
    }
  }
  return h;
}

constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;

/// Safely read a double that should hold a non-negative integer <= `max`.
/// Returns false for NaN, negative, fractional, or out-of-range values —
/// corrupted payloads can hold any bit pattern, and casting such doubles
/// to an integer type before validating them is undefined behaviour.
bool integral_in_range(double v, double max, std::uint64_t& out) {
  if (!(v >= 0.0 && v <= max)) return false;  // NaN fails both compares
  const auto u = static_cast<std::uint64_t>(v);
  if (static_cast<double>(u) != v) return false;
  out = u;
  return true;
}

/// Envelope checksum: FNV-1a64 over seq, inner_len, and the body — every
/// field a receiver acts on, skipping the checksum slot itself
/// (magic/version mismatches are caught by their own checks).
std::uint64_t envelope_checksum(std::span<const double> payload) {
  const std::uint64_t h = fnv1a64(kFnvOffsetBasis, payload.subspan(2, 2));
  return fnv1a64(h, payload.subspan(kEnvelopeDoubles));
}
}  // namespace

const char* decode_error_kind_name(DecodeErrorKind k) {
  switch (k) {
    case DecodeErrorKind::kTruncated:
      return "truncated";
    case DecodeErrorKind::kBadDiscriminator:
      return "bad-discriminator";
    case DecodeErrorKind::kBadLength:
      return "bad-length";
    case DecodeErrorKind::kBadVersion:
      return "bad-version";
    case DecodeErrorKind::kBadType:
      return "bad-type";
    case DecodeErrorKind::kBadCount:
      return "bad-count";
    case DecodeErrorKind::kTrailing:
      return "trailing";
    case DecodeErrorKind::kBadChecksum:
      return "bad-checksum";
  }
  return "?";
}

void throw_decode_error(DecodeErrorKind kind, std::size_t offset,
                        const std::string& detail) {
  std::ostringstream os;
  os << "dsouth wire decode error [" << decode_error_kind_name(kind)
     << " at double " << offset << "]";
  if (!detail.empty()) os << ": " << detail;
  throw DecodeError(kind, offset, os.str());
}

const char* record_type_name(RecordType t) {
  switch (t) {
    case RecordType::kGhostDelta:
      return "GhostDelta";
    case RecordType::kNormUpdate:
      return "NormUpdate";
    case RecordType::kResidualNorm:
      return "ResidualNorm";
    case RecordType::kSolveUpdate:
      return "SolveUpdate";
    case RecordType::kCorrection:
      return "Correction";
  }
  return "?";
}

simmpi::MsgTag tag_of(RecordType t) {
  switch (t) {
    case RecordType::kGhostDelta:
    case RecordType::kNormUpdate:
    case RecordType::kSolveUpdate:
      return simmpi::MsgTag::kSolve;
    case RecordType::kResidualNorm:
    case RecordType::kCorrection:
      return simmpi::MsgTag::kResidual;
  }
  return simmpi::MsgTag::kOther;
}

Family family_of(RecordType t) {
  switch (t) {
    case RecordType::kGhostDelta:
      return Family::kDelta;
    case RecordType::kNormUpdate:
    case RecordType::kResidualNorm:
      return Family::kNorm;
    case RecordType::kSolveUpdate:
    case RecordType::kCorrection:
      return Family::kEstimate;
  }
  return Family::kDelta;
}

std::size_t encoded_doubles(RecordType t, std::size_t nb) {
  switch (t) {
    case RecordType::kGhostDelta:
      return nb;
    case RecordType::kNormUpdate:
      return 2 + nb;
    case RecordType::kResidualNorm:
      return 2;
    case RecordType::kSolveUpdate:
      return 3 + 2 * nb;
    case RecordType::kCorrection:
      return 3 + nb;
  }
  DSOUTH_CHECK(false);
  return 0;
}

MutableRecord begin_record(RecordType t, double norm2, double gamma2,
                           std::span<double> out, std::size_t nb) {
  DSOUTH_CHECK(out.size() == encoded_doubles(t, nb));
  MutableRecord rec;
  switch (t) {
    case RecordType::kGhostDelta:
      rec.dx = out;
      break;
    case RecordType::kNormUpdate:
      out[0] = kSolveDiscriminator;
      out[1] = norm2;
      rec.dx = out.subspan(2, nb);
      break;
    case RecordType::kResidualNorm:
      out[0] = kResidualDiscriminator;
      out[1] = norm2;
      break;
    case RecordType::kSolveUpdate:
      out[0] = kSolveDiscriminator;
      out[1] = norm2;
      out[2] = gamma2;
      rec.dx = out.subspan(3, nb);
      rec.rb = out.subspan(3 + nb, nb);
      break;
    case RecordType::kCorrection:
      out[0] = kResidualDiscriminator;
      out[1] = norm2;
      out[2] = gamma2;
      rec.rb = out.subspan(3, nb);
      break;
  }
  return rec;
}

namespace detail {

namespace {
void check_discriminator(std::span<const double> body, double expected) {
  if (body[0] != expected) {
    std::ostringstream os;
    os << "discriminator " << body[0] << ", expected " << expected;
    throw_decode_error(DecodeErrorKind::kBadDiscriminator, 0, os.str());
  }
}
}  // namespace

Record decode_typed(RecordType t, std::span<const double> body,
                    std::size_t nb) {
  if (body.size() != encoded_doubles(t, nb)) {
    std::ostringstream os;
    os << record_type_name(t) << " record has " << body.size()
       << " doubles, channel width " << nb;
    throw_decode_error(body.size() < encoded_doubles(t, nb)
                           ? DecodeErrorKind::kTruncated
                           : DecodeErrorKind::kBadLength,
                       0, os.str());
  }
  Record rec;
  rec.type = t;
  switch (t) {
    case RecordType::kGhostDelta:
      rec.dx = body;
      break;
    case RecordType::kNormUpdate:
      check_discriminator(body, kSolveDiscriminator);
      rec.norm2 = body[1];
      rec.dx = body.subspan(2, nb);
      break;
    case RecordType::kResidualNorm:
      check_discriminator(body, kResidualDiscriminator);
      rec.norm2 = body[1];
      break;
    case RecordType::kSolveUpdate:
      check_discriminator(body, kSolveDiscriminator);
      rec.norm2 = body[1];
      rec.gamma2 = body[2];
      rec.dx = body.subspan(3, nb);
      rec.rb = body.subspan(3 + nb, nb);
      break;
    case RecordType::kCorrection:
      check_discriminator(body, kResidualDiscriminator);
      rec.norm2 = body[1];
      rec.gamma2 = body[2];
      rec.rb = body.subspan(3, nb);
      break;
  }
  return rec;
}

std::size_t check_frame_header(std::span<const double> payload) {
  if (payload.size() < kFrameHeaderDoubles) {
    throw_decode_error(DecodeErrorKind::kTruncated, 0,
                       "frame header truncated");
  }
  std::uint64_t version = 0;
  if (!integral_in_range(payload[1], kWireVersion, version) || version < 1) {
    std::ostringstream os;
    os << "frame version " << payload[1] << " not in [1, " << kWireVersion
       << "]";
    throw_decode_error(DecodeErrorKind::kBadVersion, 1, os.str());
  }
  std::uint64_t count = 0;
  if (!integral_in_range(payload[2], 0x1.0p53, count)) {
    std::ostringstream os;
    os << "frame record count " << payload[2] << " not integral";
    throw_decode_error(DecodeErrorKind::kBadCount, 2, os.str());
  }
  return static_cast<std::size_t>(count);
}

FrameEntry check_frame_entry(std::span<const double> payload, std::size_t off,
                             std::size_t nb) {
  if (off + kFrameEntryDoubles > payload.size()) {
    std::ostringstream os;
    os << "frame entry header truncated at " << off;
    throw_decode_error(DecodeErrorKind::kTruncated, off, os.str());
  }
  std::uint64_t type_val = 0;
  if (!integral_in_range(payload[off], kNumRecordTypes - 1, type_val)) {
    std::ostringstream os;
    os << "frame entry has invalid record type " << payload[off];
    throw_decode_error(DecodeErrorKind::kBadType, off, os.str());
  }
  const auto t = static_cast<RecordType>(type_val);
  std::uint64_t length_val = 0;
  const bool length_ok =
      integral_in_range(payload[off + 1], 0x1.0p53, length_val);
  const auto length = static_cast<std::size_t>(length_val);
  if (!length_ok || length != encoded_doubles(t, nb)) {
    std::ostringstream os;
    os << record_type_name(t) << " frame entry declares length "
       << payload[off + 1] << ", expected " << encoded_doubles(t, nb);
    throw_decode_error(DecodeErrorKind::kBadLength, off + 1, os.str());
  }
  if (off + kFrameEntryDoubles + length > payload.size()) {
    std::ostringstream os;
    os << record_type_name(t) << " frame entry body truncated";
    throw_decode_error(DecodeErrorKind::kTruncated, off + kFrameEntryDoubles,
                       os.str());
  }
  return FrameEntry{t, length};
}

void check_frame_end(std::span<const double> payload, std::size_t off) {
  if (off != payload.size()) {
    std::ostringstream os;
    os << "frame has " << payload.size() - off << " trailing doubles";
    throw_decode_error(DecodeErrorKind::kTrailing, off, os.str());
  }
}

std::size_t check_tenant_header(std::span<const double> payload) {
  if (payload.size() < kTenantHeaderDoubles) {
    throw_decode_error(DecodeErrorKind::kTruncated, 0,
                       "tenant frame header truncated");
  }
  if (std::bit_cast<std::uint64_t>(payload[0]) != kTenantMagicBits) {
    throw_decode_error(DecodeErrorKind::kBadDiscriminator, 0,
                       "payload does not lead with the tenant-frame magic");
  }
  std::uint64_t version = 0;
  if (!integral_in_range(payload[1], kWireVersion, version) || version < 1) {
    std::ostringstream os;
    os << "tenant frame version " << payload[1] << " not in [1, "
       << kWireVersion << "]";
    throw_decode_error(DecodeErrorKind::kBadVersion, 1, os.str());
  }
  std::uint64_t count = 0;
  if (!integral_in_range(payload[2], 0x1.0p53, count)) {
    std::ostringstream os;
    os << "tenant frame entry count " << payload[2] << " not integral";
    throw_decode_error(DecodeErrorKind::kBadCount, 2, os.str());
  }
  return static_cast<std::size_t>(count);
}

TenantEntryHeader check_tenant_entry(std::span<const double> payload,
                                     std::size_t off) {
  if (off + kTenantEntryDoubles > payload.size()) {
    std::ostringstream os;
    os << "tenant entry header truncated at " << off;
    throw_decode_error(DecodeErrorKind::kTruncated, off, os.str());
  }
  std::uint64_t tenant_val = 0;
  if (!integral_in_range(payload[off], 2147483647.0, tenant_val)) {
    std::ostringstream os;
    os << "tenant entry has invalid tenant id " << payload[off];
    throw_decode_error(DecodeErrorKind::kBadType, off, os.str());
  }
  std::uint64_t length_val = 0;
  // A zero-length body is malformed too: every physical encoding a tenant
  // can ship (bare record, frame, envelope) is at least one double.
  if (!integral_in_range(payload[off + 1], 0x1.0p53, length_val) ||
      length_val == 0) {
    std::ostringstream os;
    os << "tenant entry declares body length " << payload[off + 1];
    throw_decode_error(DecodeErrorKind::kBadLength, off + 1, os.str());
  }
  const auto length = static_cast<std::size_t>(length_val);
  if (off + kTenantEntryDoubles + length > payload.size()) {
    std::ostringstream os;
    os << "tenant entry body truncated";
    throw_decode_error(DecodeErrorKind::kTruncated,
                       off + kTenantEntryDoubles, os.str());
  }
  return TenantEntryHeader{static_cast<int>(tenant_val), length};
}

}  // namespace detail

namespace {
bool leading_discriminator(std::span<const double> payload,
                           std::size_t min_doubles) {
  if (payload.size() < min_doubles) {
    throw_decode_error(DecodeErrorKind::kTruncated, 0,
                       "record shorter than its family header");
  }
  const bool solve = payload[0] == kSolveDiscriminator;
  if (!solve && payload[0] != kResidualDiscriminator) {
    std::ostringstream os;
    os << "discriminator " << payload[0] << " is neither 0 nor 1";
    throw_decode_error(DecodeErrorKind::kBadDiscriminator, 0, os.str());
  }
  return solve;
}
}  // namespace

Record decode_record(Family family, std::span<const double> payload,
                     std::size_t nb) {
  switch (family) {
    case Family::kDelta:
      return detail::decode_typed(RecordType::kGhostDelta, payload, nb);
    case Family::kNorm: {
      const bool solve = leading_discriminator(payload, 2);
      return detail::decode_typed(
          solve ? RecordType::kNormUpdate : RecordType::kResidualNorm,
          payload, nb);
    }
    case Family::kEstimate: {
      const bool solve = leading_discriminator(payload, 3);
      return detail::decode_typed(
          solve ? RecordType::kSolveUpdate : RecordType::kCorrection, payload,
          nb);
    }
  }
  DSOUTH_CHECK(false);
  return {};
}

std::size_t frame_doubles(std::span<const std::size_t> record_lengths) {
  std::size_t total = kFrameHeaderDoubles;
  for (std::size_t len : record_lengths) total += kFrameEntryDoubles + len;
  return total;
}

void encode_frame(std::span<const RecordType> types,
                  std::span<const std::size_t> lengths,
                  std::span<const double> bodies, std::span<double> out) {
  DSOUTH_CHECK(types.size() == lengths.size());
  DSOUTH_CHECK(out.size() == frame_doubles(lengths));
  out[0] = frame_magic();
  out[1] = static_cast<double>(kWireVersion);
  out[2] = static_cast<double>(types.size());
  std::size_t body_off = 0;
  std::size_t off = kFrameHeaderDoubles;
  for (std::size_t i = 0; i < types.size(); ++i) {
    out[off] = static_cast<double>(static_cast<int>(types[i]));
    out[off + 1] = static_cast<double>(lengths[i]);
    off += kFrameEntryDoubles;
    DSOUTH_CHECK(body_off + lengths[i] <= bodies.size());
    for (std::size_t j = 0; j < lengths[i]; ++j) {
      out[off + j] = bodies[body_off + j];
    }
    off += lengths[i];
    body_off += lengths[i];
  }
  DSOUTH_CHECK(body_off == bodies.size());
}

std::span<double> begin_envelope(std::span<double> out, std::uint64_t seq) {
  DSOUTH_CHECK(out.size() >= kEnvelopeDoubles);
  // seq rides in a double; the per-channel counters a run can reach are
  // far below 2^53, where every integer is exact.
  DSOUTH_CHECK(seq < (1ULL << 53));
  out[0] = envelope_magic();
  out[1] = static_cast<double>(kWireVersionSequenced);
  out[2] = static_cast<double>(seq);
  out[3] = static_cast<double>(out.size() - kEnvelopeDoubles);
  out[4] = 0.0;  // checksum slot, written by seal_envelope
  return out.subspan(kEnvelopeDoubles);
}

void seal_envelope(std::span<double> out) {
  DSOUTH_CHECK(out.size() >= kEnvelopeDoubles);
  DSOUTH_CHECK(std::bit_cast<std::uint64_t>(out[0]) == kEnvelopeMagicBits);
  out[4] = std::bit_cast<double>(envelope_checksum(out));
}

EnvelopeView decode_envelope(std::span<const double> payload) {
  if (payload.size() < kEnvelopeDoubles) {
    throw_decode_error(DecodeErrorKind::kTruncated, 0,
                       "envelope header truncated");
  }
  if (std::bit_cast<std::uint64_t>(payload[0]) != kEnvelopeMagicBits) {
    throw_decode_error(DecodeErrorKind::kBadDiscriminator, 0,
                       "payload does not lead with the envelope magic");
  }
  std::uint64_t version = 0;
  if (!integral_in_range(payload[1], kWireVersionSequenced, version) ||
      version != kWireVersionSequenced) {
    std::ostringstream os;
    os << "envelope version " << payload[1] << ", expected "
       << kWireVersionSequenced;
    throw_decode_error(DecodeErrorKind::kBadVersion, 1, os.str());
  }
  std::uint64_t seq = 0;
  if (!integral_in_range(payload[2], 0x1.0p53, seq)) {
    std::ostringstream os;
    os << "envelope seq " << payload[2] << " not integral";
    throw_decode_error(DecodeErrorKind::kBadCount, 2, os.str());
  }
  std::uint64_t inner_len = 0;
  const bool len_ok = integral_in_range(payload[3], 0x1.0p53, inner_len);
  if (!len_ok || inner_len != payload.size() - kEnvelopeDoubles) {
    std::ostringstream os;
    os << "envelope declares body length " << payload[3] << ", carries "
       << payload.size() - kEnvelopeDoubles;
    throw_decode_error(len_ok &&
                               inner_len > payload.size() - kEnvelopeDoubles
                           ? DecodeErrorKind::kTruncated
                           : DecodeErrorKind::kBadLength,
                       3, os.str());
  }
  if (std::bit_cast<std::uint64_t>(payload[4]) !=
      envelope_checksum(payload)) {
    throw_decode_error(DecodeErrorKind::kBadChecksum, 4,
                       "envelope checksum mismatch");
  }
  return EnvelopeView{seq, payload.subspan(kEnvelopeDoubles)};
}

void encode_forward_frame(std::size_t plan_channels,
                          std::span<const ForwardEntry> entries,
                          std::span<double> out) {
  const std::size_t words = forward_bitmap_words(plan_channels);
  std::size_t total_body = 0;
  for (const ForwardEntry& e : entries) total_body += e.body.size();
  DSOUTH_CHECK(out.size() == forward_frame_doubles(plan_channels, total_body));
  out[0] = forward_magic();
  for (std::size_t w = 0; w < words; ++w) {
    out[1 + w] = std::bit_cast<double>(std::uint64_t{0});
  }
  std::size_t off = 1 + words;
  std::size_t prev = 0;
  bool first = true;
  for (const ForwardEntry& e : entries) {
    DSOUTH_CHECK_MSG(e.channel < plan_channels,
                     "forward entry channel " << e.channel
                                              << " outside the node plan");
    DSOUTH_CHECK_MSG(first || e.channel > prev,
                     "forward entries must be strictly ascending by channel");
    first = false;
    prev = e.channel;
    double& slot = out[1 + e.channel / 64];
    slot = std::bit_cast<double>(std::bit_cast<std::uint64_t>(slot) |
                                 (1ULL << (e.channel % 64)));
    for (std::size_t j = 0; j < e.body.size(); ++j) out[off + j] = e.body[j];
    off += e.body.size();
  }
}

std::size_t tenant_frame_doubles(std::span<const std::size_t> body_lengths) {
  std::size_t total = kTenantHeaderDoubles;
  for (std::size_t len : body_lengths) total += kTenantEntryDoubles + len;
  return total;
}

void encode_tenant_frame(std::span<const TenantEntry> entries,
                         std::span<double> out) {
  std::size_t total = kTenantHeaderDoubles;
  for (const TenantEntry& e : entries) {
    DSOUTH_CHECK_MSG(e.tenant >= 0, "tenant ids are batch indices (>= 0)");
    DSOUTH_CHECK_MSG(!e.body.empty(), "tenant entry bodies cannot be empty");
    total += kTenantEntryDoubles + e.body.size();
  }
  DSOUTH_CHECK(out.size() == total);
  out[0] = tenant_magic();
  out[1] = static_cast<double>(kWireVersion);
  out[2] = static_cast<double>(entries.size());
  std::size_t off = kTenantHeaderDoubles;
  for (const TenantEntry& e : entries) {
    out[off] = static_cast<double>(e.tenant);
    out[off + 1] = static_cast<double>(e.body.size());
    off += kTenantEntryDoubles;
    for (std::size_t j = 0; j < e.body.size(); ++j) out[off + j] = e.body[j];
    off += e.body.size();
  }
}

std::size_t forwarded_body_doubles(Family family, std::size_t nb,
                                   std::span<const double> rest) {
  if (rest.empty()) {
    throw_decode_error(DecodeErrorKind::kTruncated, 0,
                       "forwarded body is empty");
  }
  std::size_t len = 0;
  if (is_envelope(rest)) {
    // Envelopes pin their body length in the header (offset 3).
    std::uint64_t inner = 0;
    if (!integral_in_range(rest[3], 0x1.0p53, inner)) {
      std::ostringstream os;
      os << "enveloped forwarded body declares length " << rest[3];
      throw_decode_error(DecodeErrorKind::kBadLength, 3, os.str());
    }
    len = kEnvelopeDoubles + static_cast<std::size_t>(inner);
  } else if (is_frame(rest)) {
    // Coalesced frames delimit themselves by walking their entry headers.
    const std::size_t count = detail::check_frame_header(rest);
    len = kFrameHeaderDoubles;
    for (std::size_t i = 0; i < count; ++i) {
      const auto entry = detail::check_frame_entry(rest, len, nb);
      len += kFrameEntryDoubles + entry.length;
    }
  } else if (is_tenant_frame(rest)) {
    // Tenant frames pin every entry's body length in its header, so they
    // delimit themselves without decoding any tenant's body.
    const std::size_t count = detail::check_tenant_header(rest);
    len = kTenantHeaderDoubles;
    for (std::size_t i = 0; i < count; ++i) {
      const auto entry = detail::check_tenant_entry(rest, len);
      len += kTenantEntryDoubles + entry.length;
    }
  } else {
    // Bare v1 records are sized by (family, discriminator, width).
    switch (family) {
      case Family::kDelta:
        len = nb;
        break;
      case Family::kNorm:
        len = rest[0] == kSolveDiscriminator ? 2 + nb : 2;
        break;
      case Family::kEstimate:
        len = rest[0] == kSolveDiscriminator ? 3 + 2 * nb : 3 + nb;
        break;
    }
    if (family != Family::kDelta && rest[0] != kSolveDiscriminator &&
        rest[0] != kResidualDiscriminator) {
      std::ostringstream os;
      os << "forwarded body discriminator " << rest[0]
         << " is neither 0 nor 1";
      throw_decode_error(DecodeErrorKind::kBadDiscriminator, 0, os.str());
    }
  }
  if (len == 0 || len > rest.size()) {
    std::ostringstream os;
    os << "forwarded body of " << len << " doubles exceeds the "
       << rest.size() << " remaining";
    throw_decode_error(DecodeErrorKind::kTruncated, 0, os.str());
  }
  return len;
}

}  // namespace dsouth::wire
