#include "wire/wire.hpp"

#include "util/error.hpp"

namespace dsouth::wire {

namespace {
constexpr double kSolveDiscriminator = 0.0;
constexpr double kResidualDiscriminator = 1.0;
}  // namespace

const char* record_type_name(RecordType t) {
  switch (t) {
    case RecordType::kGhostDelta:
      return "GhostDelta";
    case RecordType::kNormUpdate:
      return "NormUpdate";
    case RecordType::kResidualNorm:
      return "ResidualNorm";
    case RecordType::kSolveUpdate:
      return "SolveUpdate";
    case RecordType::kCorrection:
      return "Correction";
  }
  return "?";
}

simmpi::MsgTag tag_of(RecordType t) {
  switch (t) {
    case RecordType::kGhostDelta:
    case RecordType::kNormUpdate:
    case RecordType::kSolveUpdate:
      return simmpi::MsgTag::kSolve;
    case RecordType::kResidualNorm:
    case RecordType::kCorrection:
      return simmpi::MsgTag::kResidual;
  }
  return simmpi::MsgTag::kOther;
}

Family family_of(RecordType t) {
  switch (t) {
    case RecordType::kGhostDelta:
      return Family::kDelta;
    case RecordType::kNormUpdate:
    case RecordType::kResidualNorm:
      return Family::kNorm;
    case RecordType::kSolveUpdate:
    case RecordType::kCorrection:
      return Family::kEstimate;
  }
  return Family::kDelta;
}

std::size_t encoded_doubles(RecordType t, std::size_t nb) {
  switch (t) {
    case RecordType::kGhostDelta:
      return nb;
    case RecordType::kNormUpdate:
      return 2 + nb;
    case RecordType::kResidualNorm:
      return 2;
    case RecordType::kSolveUpdate:
      return 3 + 2 * nb;
    case RecordType::kCorrection:
      return 3 + nb;
  }
  DSOUTH_CHECK(false);
  return 0;
}

MutableRecord begin_record(RecordType t, double norm2, double gamma2,
                           std::span<double> out, std::size_t nb) {
  DSOUTH_CHECK(out.size() == encoded_doubles(t, nb));
  MutableRecord rec;
  switch (t) {
    case RecordType::kGhostDelta:
      rec.dx = out;
      break;
    case RecordType::kNormUpdate:
      out[0] = kSolveDiscriminator;
      out[1] = norm2;
      rec.dx = out.subspan(2, nb);
      break;
    case RecordType::kResidualNorm:
      out[0] = kResidualDiscriminator;
      out[1] = norm2;
      break;
    case RecordType::kSolveUpdate:
      out[0] = kSolveDiscriminator;
      out[1] = norm2;
      out[2] = gamma2;
      rec.dx = out.subspan(3, nb);
      rec.rb = out.subspan(3 + nb, nb);
      break;
    case RecordType::kCorrection:
      out[0] = kResidualDiscriminator;
      out[1] = norm2;
      out[2] = gamma2;
      rec.rb = out.subspan(3, nb);
      break;
  }
  return rec;
}

namespace detail {

Record decode_typed(RecordType t, std::span<const double> body,
                    std::size_t nb) {
  DSOUTH_CHECK_MSG(body.size() == encoded_doubles(t, nb),
                   record_type_name(t) << " record has " << body.size()
                                       << " doubles, channel width " << nb);
  Record rec;
  rec.type = t;
  switch (t) {
    case RecordType::kGhostDelta:
      rec.dx = body;
      break;
    case RecordType::kNormUpdate:
      DSOUTH_CHECK(body[0] == kSolveDiscriminator);
      rec.norm2 = body[1];
      rec.dx = body.subspan(2, nb);
      break;
    case RecordType::kResidualNorm:
      DSOUTH_CHECK(body[0] == kResidualDiscriminator);
      rec.norm2 = body[1];
      break;
    case RecordType::kSolveUpdate:
      DSOUTH_CHECK(body[0] == kSolveDiscriminator);
      rec.norm2 = body[1];
      rec.gamma2 = body[2];
      rec.dx = body.subspan(3, nb);
      rec.rb = body.subspan(3 + nb, nb);
      break;
    case RecordType::kCorrection:
      DSOUTH_CHECK(body[0] == kResidualDiscriminator);
      rec.norm2 = body[1];
      rec.gamma2 = body[2];
      rec.rb = body.subspan(3, nb);
      break;
  }
  return rec;
}

std::size_t check_frame_header(std::span<const double> payload) {
  DSOUTH_CHECK(payload.size() >= kFrameHeaderDoubles);
  const int version = static_cast<int>(payload[1]);
  DSOUTH_CHECK_MSG(
      payload[1] == static_cast<double>(version) && version >= 1 &&
          version <= kWireVersion,
      "frame version " << payload[1] << " not in [1, " << kWireVersion << "]");
  const auto count = static_cast<std::size_t>(payload[2]);
  DSOUTH_CHECK_MSG(payload[2] == static_cast<double>(count),
                   "frame record count " << payload[2] << " not integral");
  return count;
}

FrameEntry check_frame_entry(std::span<const double> payload, std::size_t off,
                             std::size_t nb) {
  DSOUTH_CHECK_MSG(off + kFrameEntryDoubles <= payload.size(),
                   "frame entry header truncated at " << off);
  const int type_val = static_cast<int>(payload[off]);
  DSOUTH_CHECK_MSG(payload[off] == static_cast<double>(type_val) &&
                       type_val >= 0 && type_val < kNumRecordTypes,
                   "frame entry has invalid record type " << payload[off]);
  const auto t = static_cast<RecordType>(type_val);
  const auto length = static_cast<std::size_t>(payload[off + 1]);
  DSOUTH_CHECK_MSG(payload[off + 1] == static_cast<double>(length) &&
                       length == encoded_doubles(t, nb),
                   record_type_name(t)
                       << " frame entry declares length " << payload[off + 1]
                       << ", expected " << encoded_doubles(t, nb));
  DSOUTH_CHECK_MSG(off + kFrameEntryDoubles + length <= payload.size(),
                   record_type_name(t) << " frame entry body truncated");
  return FrameEntry{t, length};
}

void check_frame_end(std::span<const double> payload, std::size_t off) {
  DSOUTH_CHECK_MSG(off == payload.size(),
                   "frame has " << payload.size() - off
                                << " trailing doubles");
}

}  // namespace detail

Record decode_record(Family family, std::span<const double> payload,
                     std::size_t nb) {
  switch (family) {
    case Family::kDelta:
      return detail::decode_typed(RecordType::kGhostDelta, payload, nb);
    case Family::kNorm: {
      DSOUTH_CHECK(payload.size() >= 2);
      const bool solve = payload[0] == kSolveDiscriminator;
      DSOUTH_CHECK(solve || payload[0] == kResidualDiscriminator);
      return detail::decode_typed(
          solve ? RecordType::kNormUpdate : RecordType::kResidualNorm,
          payload, nb);
    }
    case Family::kEstimate: {
      DSOUTH_CHECK(payload.size() >= 3);
      const bool solve = payload[0] == kSolveDiscriminator;
      DSOUTH_CHECK(solve || payload[0] == kResidualDiscriminator);
      return detail::decode_typed(
          solve ? RecordType::kSolveUpdate : RecordType::kCorrection, payload,
          nb);
    }
  }
  DSOUTH_CHECK(false);
  return {};
}

std::size_t frame_doubles(std::span<const std::size_t> record_lengths) {
  std::size_t total = kFrameHeaderDoubles;
  for (std::size_t len : record_lengths) total += kFrameEntryDoubles + len;
  return total;
}

void encode_frame(std::span<const RecordType> types,
                  std::span<const std::size_t> lengths,
                  std::span<const double> bodies, std::span<double> out) {
  DSOUTH_CHECK(types.size() == lengths.size());
  DSOUTH_CHECK(out.size() == frame_doubles(lengths));
  out[0] = frame_magic();
  out[1] = static_cast<double>(kWireVersion);
  out[2] = static_cast<double>(types.size());
  std::size_t body_off = 0;
  std::size_t off = kFrameHeaderDoubles;
  for (std::size_t i = 0; i < types.size(); ++i) {
    out[off] = static_cast<double>(static_cast<int>(types[i]));
    out[off + 1] = static_cast<double>(lengths[i]);
    off += kFrameEntryDoubles;
    DSOUTH_CHECK(body_off + lengths[i] <= bodies.size());
    for (std::size_t j = 0; j < lengths[i]; ++j) {
      out[off + j] = bodies[body_off + j];
    }
    off += lengths[i];
    body_off += lengths[i];
  }
  DSOUTH_CHECK(body_off == bodies.size());
}

}  // namespace dsouth::wire
