#include "wire/comm_plan.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dsouth::wire {

std::span<const CommPlan::Peer> CommPlan::peers(int rank) const {
  DSOUTH_CHECK(rank >= 0 && rank < num_ranks());
  return peers_[static_cast<std::size_t>(rank)];
}

std::size_t CommPlan::max_record_doubles() const {
  std::size_t mx = 0;
  for (const auto& rank_peers : peers_) {
    for (const auto& peer : rank_peers) {
      mx = std::max(mx, encoded_doubles(RecordType::kSolveUpdate,
                                        peer.send_width));
    }
  }
  return mx;
}

NodeCommPlan::NodeCommPlan(const CommPlan& plan,
                           const simmpi::NodeTopology& topo) {
  DSOUTH_CHECK(plan.num_ranks() == topo.num_ranks());
  num_nodes_ = topo.num_nodes();
  const auto nn = static_cast<std::size_t>(num_nodes_);
  pairs_.assign(nn * nn, {});
  // Ranks ascend and each rank's peer list ascends by peer rank, so every
  // pair's channel list comes out sorted by (src, dst) with no extra pass
  // — the deterministic order both leaders index forward-frame bitmaps by.
  for (int s = 0; s < plan.num_ranks(); ++s) {
    for (const CommPlan::Peer& p : plan.peers(s)) {
      if (topo.same_node(s, p.rank)) continue;
      const auto x = static_cast<std::size_t>(topo.node_of(s));
      const auto y = static_cast<std::size_t>(topo.node_of(p.rank));
      pairs_[x * nn + y].push_back(Channel{s, p.rank, p.send_width});
    }
  }
}

std::span<const NodeCommPlan::Channel> NodeCommPlan::channels(
    int src_node, int dst_node) const {
  DSOUTH_CHECK(src_node >= 0 && src_node < num_nodes_);
  DSOUTH_CHECK(dst_node >= 0 && dst_node < num_nodes_);
  return pairs_[static_cast<std::size_t>(src_node) *
                    static_cast<std::size_t>(num_nodes_) +
                static_cast<std::size_t>(dst_node)];
}

int NodeCommPlan::channel_index(int src_node, int dst_node, int src,
                                int dst) const {
  const auto list = channels(src_node, dst_node);
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i].src == src && list[i].dst == dst) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<std::uint32_t> NodeCommPlan::pair_channel_counts() const {
  std::vector<std::uint32_t> counts(pairs_.size(), 0);
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    counts[i] = static_cast<std::uint32_t>(pairs_[i].size());
  }
  return counts;
}

ChannelSet::ChannelSet(const CommPlan& plan, int rank)
    : plan_(&plan), rank_(rank) {
  DSOUTH_CHECK(rank >= 0 && rank < plan.num_ranks());
  buffers_.resize(plan.peers(rank).size());
  send_seq_.assign(plan.peers(rank).size(), 0);
}

void ChannelSet::set_coalescing(bool on) {
  for (const auto& buf : buffers_) {
    DSOUTH_CHECK_MSG(buf.types.empty(),
                     "cannot toggle coalescing with records buffered");
  }
  DSOUTH_CHECK_MSG(!(on && sequence_),
                   "coalescing and sequencing are mutually exclusive");
  coalesce_ = on;
}

void ChannelSet::set_sequencing(bool on) {
  DSOUTH_CHECK_MSG(!(on && coalesce_),
                   "coalescing and sequencing are mutually exclusive");
  DSOUTH_CHECK_MSG(pending_.empty(),
                   "cannot toggle sequencing with unsealed envelopes");
  sequence_ = on;
}

void ChannelSet::set_batch_staging(bool on) {
  for (const auto& buf : buffers_) {
    DSOUTH_CHECK_MSG(buf.types.empty(),
                     "cannot toggle batch staging with records buffered");
  }
  DSOUTH_CHECK_MSG(!(on && coalesce_),
                   "batch staging subsumes coalescing; enable only one");
  batch_ = on;
}

std::uint64_t ChannelSet::sent_seq(std::size_t k) const {
  DSOUTH_CHECK(k < send_seq_.size());
  return send_seq_[k];
}

void ChannelSet::set_sent_seq(std::size_t k, std::uint64_t seq) {
  DSOUTH_CHECK(k < send_seq_.size());
  DSOUTH_CHECK_MSG(pending_.empty(),
                   "cannot restore sequence counters with envelopes pending");
  send_seq_[k] = seq;
}

std::size_t ChannelSet::buffered(std::size_t k) const {
  DSOUTH_CHECK(k < buffers_.size());
  return buffers_[k].types.size();
}

bool ChannelSet::idle() const {
  if (!pending_.empty()) return false;
  for (const auto& buf : buffers_) {
    if (!buf.types.empty()) return false;
  }
  return true;
}

MutableRecord ChannelSet::open(simmpi::RankContext& ctx, std::size_t k,
                               RecordType t, double norm2, double gamma2) {
  const auto peers = plan_->peers(rank_);
  DSOUTH_CHECK(k < peers.size());
  const auto& peer = peers[k];
  const std::size_t len = encoded_doubles(t, peer.send_width);
  if (batch_) {
    // Batch sink: buffer the record's full physical encoding — an
    // envelope when sequencing, a bare body otherwise — for ship_batch()
    // to merge across tenants. Envelope checksums are sealed at flush()
    // like in direct mode (the caller fills the body after open()
    // returns); the returned spans alias the peer buffer and stay valid
    // until this set's next open(), which is all the encode loops need.
    auto& buf = buffers_[k];
    const std::size_t off = buf.bodies.size();
    const std::size_t total = sequence_ ? kEnvelopeDoubles + len : len;
    buf.bodies.resize(off + total);
    buf.types.push_back(t);
    buf.lengths.push_back(total);
    auto out = std::span<double>(buf.bodies).subspan(off, total);
    if (sequence_) {
      auto body = begin_envelope(out, send_seq_[k]++);
      return begin_record(t, norm2, gamma2, body, peer.send_width);
    }
    return begin_record(t, norm2, gamma2, out, peer.send_width);
  }
  if (!coalesce_) {
    if (sequence_) {
      // Sequenced: the record rides inside a wire-v2 envelope. The
      // envelope header (with this channel's next seq) is written now;
      // the checksum is sealed at flush(), once the caller has filled
      // the record body (the staged span stays valid until the fence).
      auto out = ctx.stage(peer.rank, tag_of(t), kEnvelopeDoubles + len);
      auto body = begin_envelope(out, send_seq_[k]++);
      pending_.push_back(out);
      return begin_record(t, norm2, gamma2, body, peer.send_width);
    }
    // Direct: one physical put per record, encoded straight into the
    // runtime's pooled staging buffer (no copy — see Runtime::stage).
    auto out = ctx.stage(peer.rank, tag_of(t), len);
    return begin_record(t, norm2, gamma2, out, peer.send_width);
  }
  auto& buf = buffers_[k];
  const std::size_t off = buf.bodies.size();
  buf.bodies.resize(off + len);
  buf.types.push_back(t);
  buf.lengths.push_back(len);
  return begin_record(t, norm2, gamma2,
                      std::span<double>(buf.bodies).subspan(off, len),
                      peer.send_width);
}

void ChannelSet::flush(simmpi::RankContext& ctx) {
  if (sequence_) {
    for (auto span : pending_) seal_envelope(span);
    pending_.clear();
  }
  if (batch_) {
    // Batch sink: seal buffered envelopes now that the phase has filled
    // their bodies — re-sealing ones from an earlier flush of the same
    // epoch is harmless (the checksum recomputes over unchanged content)
    // — and keep everything for ship_batch(). Nothing ships here.
    if (sequence_) {
      for (auto& buf : buffers_) {
        std::size_t off = 0;
        for (std::size_t len : buf.lengths) {
          seal_envelope(std::span<double>(buf.bodies).subspan(off, len));
          off += len;
        }
      }
    }
    return;
  }
  if (!coalesce_) return;
  const auto peers = plan_->peers(rank_);
  for (std::size_t k = 0; k < buffers_.size(); ++k) {
    auto& buf = buffers_[k];
    if (buf.types.empty()) continue;
    const simmpi::MsgTag tag = tag_of(buf.types.front());
    for (RecordType t : buf.types) {
      DSOUTH_CHECK_MSG(tag_of(t) == tag,
                       "mixed-tag records coalesced to one peer");
    }
    if (buf.types.size() == 1) {
      // A group of one ships bare — byte-identical to direct mode.
      auto out = ctx.stage(peers[k].rank, tag, buf.lengths.front());
      std::copy(buf.bodies.begin(), buf.bodies.end(), out.begin());
    } else {
      const std::size_t total = frame_doubles(buf.lengths);
      auto out = ctx.stage(peers[k].rank, tag, total, buf.types.size());
      encode_frame(buf.types, buf.lengths, buf.bodies, out);
    }
    buf.bodies.clear();
    buf.types.clear();
    buf.lengths.clear();
  }
}

void ChannelSet::ship_batch(simmpi::RankContext& ctx,
                            std::span<ChannelSet* const> sets,
                            std::span<const int> tenants) {
  DSOUTH_CHECK(!sets.empty());
  DSOUTH_CHECK(sets.size() == tenants.size());
  const ChannelSet& first = *sets.front();
  for (const ChannelSet* s : sets) {
    DSOUTH_CHECK_MSG(s->batch_,
                     "ship_batch needs batch-staged channel sets");
    // Tenant layouts may own distinct (but structurally identical —
    // dist/batch.cpp verifies it) CommPlan objects, so compare shape, not
    // object identity.
    DSOUTH_CHECK_MSG(s->rank_ == first.rank_ &&
                         s->buffers_.size() == first.buffers_.size(),
                     "ship_batch sets must share one rank and peer list");
  }
  const auto peers = first.plan_->peers(first.rank_);
  std::vector<TenantEntry> entries;
  for (std::size_t k = 0; k < peers.size(); ++k) {
    for (int tag_i = 0; tag_i < simmpi::kNumTags; ++tag_i) {
      const auto tag = static_cast<simmpi::MsgTag>(tag_i);
      entries.clear();
      std::size_t total_body = 0;
      for (std::size_t si = 0; si < sets.size(); ++si) {
        const auto& buf = sets[si]->buffers_[k];
        std::size_t off = 0;
        for (std::size_t j = 0; j < buf.types.size(); ++j) {
          if (tag_of(buf.types[j]) == tag) {
            entries.push_back(TenantEntry{
                tenants[si], std::span<const double>(buf.bodies)
                                 .subspan(off, buf.lengths[j])});
            total_body += buf.lengths[j];
          }
          off += buf.lengths[j];
        }
      }
      if (entries.empty()) continue;
      const std::size_t total = kTenantHeaderDoubles +
                                entries.size() * kTenantEntryDoubles +
                                total_body;
      // One physical put carries every tenant's record for this (peer,
      // tag): the frame counts one logical record per entry, and each
      // entry's share — one record, its body's doubles — is attributed to
      // its tenant for the per-tenant CommStats tallies.
      auto out = ctx.stage(peers[k].rank, tag, total, entries.size());
      encode_tenant_frame(entries, out);
      for (const TenantEntry& e : entries) {
        ctx.add_tenant_records(e.tenant, 1, e.body.size());
      }
    }
  }
  for (ChannelSet* s : sets) {
    for (auto& buf : s->buffers_) {
      buf.bodies.clear();
      buf.types.clear();
      buf.lengths.clear();
    }
  }
}

}  // namespace dsouth::wire
